.PHONY: all build test lint check bench bench-json bench-macro scale-quick clean

all: build

build:
	dune build

test:
	dune runtest

# Static checks over lib/: parsetree rules (determinism / zero-alloc
# hot paths / protection boundaries) plus the interprocedural flow
# verifier (guest-taint, transitive alloc, privilege reachability), the
# domain-safety detector (shared mutable state reachable from LP
# callbacks) and the resource-protocol verifier (acquire/release
# lifetimes for grants, pins, contexts and locks) over the installed
# .cmt tree — all four passes in one invocation with a single combined
# exit code. Also runs as part of `dune runtest`; this target
# additionally refreshes the LINT_stats.json artifact and fails if any
# unsuppressed-violation or suppression count grew versus the committed
# baseline (refresh deliberately by committing the new file).
lint:
	dune build @install
	dune exec lint/main.exe -- --stats LINT_stats.json \
	  --flow _build/install/default/lib/cdna \
	  --dom _build/install/default/lib/cdna \
	  --proto _build/install/default/lib/cdna --gate LINT_stats.json lib

# One-shot CI entry: build, full test suite, static analysis + gate.
check:
	dune build
	dune runtest
	$(MAKE) lint

# Full Bechamel run: paper-table regeneration benchmarks + micro set.
bench:
	dune exec bench/main.exe

# Machine-readable micro results (ns/run + minor words/run), checked
# against the committed regression baseline. Refresh the baseline after
# an intentional performance change with:
#   dune exec bench/main.exe -- --json bench/baseline.json --quota 0.5
bench-json:
	dune exec bench/main.exe -- --json BENCH_micro.json --gate bench/baseline.json

# End-to-end sharded-engine benchmark: wall-clock and events/sec for the
# same 4-host scenario at shards 1 and 4, gated >2x against the
# committed baseline. Refresh after an intentional performance change:
#   dune exec bench/main.exe -- --macro bench/baseline_macro.json
# The gate also runs inside `dune runtest`, where the whole suite
# timeshares the machine — after refreshing, give memory-bound subjects
# (macro/open-loop-100k) headroom above their worst contended runtest
# number, not just the idle measurement.
bench-macro:
	dune exec bench/main.exe -- --macro BENCH_macro.json --macro-gate bench/baseline_macro.json

# Quick open-loop flow-scaling sweep (quartered windows): the
# 10^3..10^6 table of EXPERIMENTS.md in miniature. Full-window version:
#   dune exec bin/cdna_sim.exe -- scale
scale-quick:
	dune exec bin/cdna_sim.exe -- scale --quick

clean:
	dune clean
