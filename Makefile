.PHONY: all build test lint bench bench-json clean

all: build

build:
	dune build

test:
	dune runtest

# Static checks (determinism / zero-alloc hot paths / protection
# boundaries) over lib/. Also runs as part of `dune runtest`; this
# target additionally writes the LINT_stats.json artifact so suppression
# counts can be tracked over time.
lint:
	dune exec lint/main.exe -- --stats LINT_stats.json lib

# Full Bechamel run: paper-table regeneration benchmarks + micro set.
bench:
	dune exec bench/main.exe

# Machine-readable micro results (ns/run + minor words/run), checked
# against the committed regression baseline. Refresh the baseline after
# an intentional performance change with:
#   dune exec bench/main.exe -- --json bench/baseline.json --quota 0.5
bench-json:
	dune exec bench/main.exe -- --json BENCH_micro.json --gate bench/baseline.json

clean:
	dune clean
