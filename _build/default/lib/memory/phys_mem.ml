type t = {
  total_pages : int;
  pages : (Addr.pfn, Page.t) Hashtbl.t;
  contents : (Addr.pfn, Bytes.t) Hashtbl.t;
  mutable free_list : Addr.pfn list;
  mutable free_count : int;
}

let create ~total_pages () =
  if total_pages <= 0 then invalid_arg "Phys_mem.create: no pages";
  let rec build p acc = if p < 0 then acc else build (p - 1) (p :: acc) in
  {
    total_pages;
    pages = Hashtbl.create 4096;
    contents = Hashtbl.create 4096;
    free_list = build (total_pages - 1) [];
    free_count = total_pages;
  }

let total_pages t = t.total_pages
let free_pages t = t.free_count

let page t pfn =
  if pfn < 0 || pfn >= t.total_pages then
    invalid_arg "Phys_mem.page: pfn out of range";
  match Hashtbl.find_opt t.pages pfn with
  | Some p -> p
  | None ->
      let p = Page.create ~pfn in
      Hashtbl.add t.pages pfn p;
      p

let alloc t ~owner ~count =
  if count < 0 then invalid_arg "Phys_mem.alloc: negative count";
  if count > t.free_count then Error `Out_of_memory
  else begin
    let rec take n l acc =
      if n = 0 then (List.rev acc, l)
      else
        match l with
        | [] -> (List.rev acc, []) (* unreachable: free_count guards *)
        | p :: rest -> take (n - 1) rest (p :: acc)
    in
    let taken, rest = take count t.free_list [] in
    t.free_list <- rest;
    t.free_count <- t.free_count - count;
    List.iter (fun pfn -> Page.set_owned (page t pfn) owner) taken;
    Ok taken
  end

let reclaim t pfn =
  t.free_list <- pfn :: t.free_list;
  t.free_count <- t.free_count + 1;
  (* Freshly reallocated pages must not leak previous contents. *)
  Hashtbl.remove t.contents pfn

let free t pfn =
  let p = page t pfn in
  Page.release p;
  match Page.state p with
  | Free -> reclaim t pfn
  | Quarantined _ -> ()
  | Owned _ -> assert false

let transfer t pfn ~to_ = Page.transfer (page t pfn) to_
let get_ref t pfn = Page.get_ref (page t pfn)

let put_ref t pfn =
  match Page.put_ref (page t pfn) with
  | `Now_free -> reclaim t pfn
  | `Still_held -> ()

let owned_by t pfn dom =
  pfn >= 0 && pfn < t.total_pages && Page.is_owned_by (page t pfn) dom

let backing t pfn =
  match Hashtbl.find_opt t.contents pfn with
  | Some b -> b
  | None ->
      let b = Bytes.make Addr.page_size '\000' in
      Hashtbl.add t.contents pfn b;
      b

let check_range t ~addr ~len =
  if len < 0 then invalid_arg "Phys_mem: negative length";
  if addr < 0 || addr + len > t.total_pages * Addr.page_size then
    invalid_arg "Phys_mem: address range out of bounds"

let read t ~addr ~len =
  check_range t ~addr ~len;
  let out = Bytes.create len in
  let rec copy addr pos remaining =
    if remaining > 0 then begin
      let pfn = Addr.pfn_of addr in
      let off = Addr.offset addr in
      let chunk = min remaining (Addr.page_size - off) in
      Bytes.blit (backing t pfn) off out pos chunk;
      copy (addr + chunk) (pos + chunk) (remaining - chunk)
    end
  in
  copy addr 0 len;
  out

let write t ~addr data =
  let len = Bytes.length data in
  check_range t ~addr ~len;
  let rec copy addr pos remaining =
    if remaining > 0 then begin
      let pfn = Addr.pfn_of addr in
      let off = Addr.offset addr in
      let chunk = min remaining (Addr.page_size - off) in
      Bytes.blit data pos (backing t pfn) off chunk;
      copy (addr + chunk) (pos + chunk) (remaining - chunk)
    end
  in
  copy addr 0 len

let read_uint t ~addr ~bytes =
  let b = read t ~addr ~len:bytes in
  let rec build i acc =
    if i < 0 then acc else build (i - 1) ((acc lsl 8) lor Char.code (Bytes.get b i))
  in
  build (bytes - 1) 0

let write_uint t ~addr ~bytes v =
  let b = Bytes.create bytes in
  for i = 0 to bytes - 1 do
    Bytes.set b i (Char.chr ((v lsr (8 * i)) land 0xff))
  done;
  write t ~addr b

let read_u16 t ~addr = read_uint t ~addr ~bytes:2
let write_u16 t ~addr v = write_uint t ~addr ~bytes:2 v
let read_u32 t ~addr = read_uint t ~addr ~bytes:4
let write_u32 t ~addr v = write_uint t ~addr ~bytes:4 v
let read_u64 t ~addr = read_uint t ~addr ~bytes:8
let write_u64 t ~addr v = write_uint t ~addr ~bytes:8 v
let materialized_pages t = Hashtbl.length t.contents
