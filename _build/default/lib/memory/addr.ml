type t = int
type pfn = int

let page_shift = 12
let page_size = 1 lsl page_shift
let pfn_of a = a lsr page_shift
let base_of_pfn p = p lsl page_shift
let offset a = a land (page_size - 1)

let pages_spanned ~addr ~len =
  if len < 0 then invalid_arg "Addr.pages_spanned: negative length";
  if len = 0 then []
  else begin
    let first = pfn_of addr and last = pfn_of (addr + len - 1) in
    let rec build p acc = if p < first then acc else build (p - 1) (p :: acc) in
    build last []
  end

let pp ppf a = Format.fprintf ppf "0x%x" a
