lib/memory/addr.mli: Format
