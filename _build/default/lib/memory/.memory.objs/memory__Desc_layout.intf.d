lib/memory/desc_layout.mli: Addr Dma_desc Format Phys_mem
