lib/memory/phys_mem.mli: Addr Bytes Page
