lib/memory/iommu.mli: Addr
