lib/memory/dma_desc.ml: Addr Format Phys_mem
