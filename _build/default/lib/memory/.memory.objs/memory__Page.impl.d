lib/memory/page.ml: Addr Format Printf
