lib/memory/dma_desc.mli: Addr Format Phys_mem
