lib/memory/iommu.ml: Addr Hashtbl
