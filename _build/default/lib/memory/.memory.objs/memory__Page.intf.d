lib/memory/page.mli: Addr Format
