lib/memory/phys_mem.ml: Addr Bytes Char Hashtbl List Page
