lib/memory/desc_layout.ml: Bytes Char Dma_desc Format List Phys_mem Printf
