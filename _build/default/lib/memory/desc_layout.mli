(** Negotiable DMA-descriptor formats (paper section 3.4).

    "There are only three fields of interest in any DMA descriptor: an
    address, a length, and additional flags. ... The NIC would only need
    to specify the size of the descriptor and the location of the
    address, length, and flags [and] the size and location of the
    sequence number field."

    A {!t} is exactly that specification. Devices publish their preferred
    layout; the hypervisor and drivers serialize {!Dma_desc.t} values
    through it without interpreting the flags. {!default} is the 16-byte
    layout used by the NICs in this repository; {!compact} is a 12-byte
    alternative exercising the negotiation (32-bit address, 16-bit
    length). *)

type t = {
  size : int;  (** Total descriptor bytes; ring slots use this stride. *)
  addr_off : int;
  addr_bytes : int;  (** 4-8; bounds the addressable physical memory. *)
  len_off : int;
  len_bytes : int;  (** 2 or 4. *)
  flags_off : int;
  seqno_off : int;  (** Sequence numbers are always 16 bits. *)
}

val default : t
val compact : t

(** [validate t] checks that fields fit inside [size] and do not overlap.
    Returns a description of the first problem found. *)
val validate : t -> (unit, string) result

(** [write t mem ~at d] serializes [d] per the layout.
    @raise Invalid_argument if a field value does not fit its width. *)
val write : t -> Phys_mem.t -> at:Addr.t -> Dma_desc.t -> unit

(** [read t mem ~at] deserializes per the layout. *)
val read : t -> Phys_mem.t -> at:Addr.t -> Dma_desc.t

(** Largest address representable under the layout. *)
val max_addr : t -> Addr.t

(** Largest length representable under the layout. *)
val max_len : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
