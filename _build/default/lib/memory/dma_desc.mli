(** DMA descriptor wire format.

    The paper (section 3.4) observes that any NIC DMA descriptor has three
    fields of interest — address, length, flags — plus, for CDNA, a
    sequence number. We fix one 16-byte little-endian layout:

    {v
    offset 0  : u64  buffer physical address
    offset 8  : u32  buffer length in bytes
    offset 12 : u16  flags
    offset 14 : u16  sequence number
    v}

    Descriptors live in rings in host memory and are read and written
    through {!Phys_mem}, exactly as hardware would fetch them over DMA —
    so a stale or foreign descriptor misbehaves the way the paper
    describes. *)

type t = { addr : Addr.t; len : int; flags : int; seqno : int }

(** Size of one serialized descriptor in bytes (16). *)
val size_bytes : int

(** Flag bits. *)

val flag_end_of_packet : int
val flag_interrupt_on_completion : int

(** [write mem ~at d] serializes [d] at physical address [at].
    @raise Invalid_argument if a field is out of range
    ([len] and [flags], [seqno] must fit their widths). *)
val write : Phys_mem.t -> at:Addr.t -> t -> unit

(** [read mem ~at] deserializes a descriptor. *)
val read : Phys_mem.t -> at:Addr.t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
