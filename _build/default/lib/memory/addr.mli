(** Physical addresses and page frame numbers.

    The x86 DMA model of the paper works in host-physical addresses; the NIC
    and the hypervisor's protection logic both reason about 4 KB page
    frames. *)

(** Physical byte address. *)
type t = int

(** Page frame number. *)
type pfn = int

val page_size : int
val page_shift : int

val pfn_of : t -> pfn
val base_of_pfn : pfn -> t

(** Offset of an address within its page. *)
val offset : t -> int

(** [pages_spanned ~addr ~len] is the list of pfns touched by the byte range
    [\[addr, addr+len)]. Empty for [len = 0].
    @raise Invalid_argument if [len < 0]. *)
val pages_spanned : addr:t -> len:int -> pfn list

val pp : Format.formatter -> t -> unit
