type context_id = int

type t = { table : (context_id * Addr.pfn, unit) Hashtbl.t }

let create () = { table = Hashtbl.create 1024 }

let grant t ~context pfn =
  if not (Hashtbl.mem t.table (context, pfn)) then
    Hashtbl.add t.table (context, pfn) ()

let revoke t ~context pfn = Hashtbl.remove t.table (context, pfn)

let revoke_context t ~context =
  Hashtbl.iter (fun (c, p) () -> if c = context then Hashtbl.remove t.table (c, p))
    (Hashtbl.copy t.table)

let allowed t ~context pfn = Hashtbl.mem t.table (context, pfn)
let entries t = Hashtbl.length t.table
