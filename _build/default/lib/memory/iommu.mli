(** Per-context IOMMU model.

    The paper's section 5.3 discusses replacing CDNA's software DMA
    protection with a context-aware IOMMU (extending AMD's proposed
    per-device IOMMU to a per-context basis). This module provides that
    hardware: a table mapping [(context, pfn)] to an access permission that
    the DMA engine consults on every transfer when an IOMMU is installed.

    Used by the ablation benchmarks comparing hypercall validation against
    IOMMU-based protection. *)

type context_id = int

type t

val create : unit -> t

(** [grant t ~context pfn] permits DMA to/from [pfn] for [context]. *)
val grant : t -> context:context_id -> Addr.pfn -> unit

(** [revoke t ~context pfn] removes a single permission (no-op if absent). *)
val revoke : t -> context:context_id -> Addr.pfn -> unit

(** [revoke_context t ~context] removes all permissions of a context. *)
val revoke_context : t -> context:context_id -> unit

(** [allowed t ~context pfn] checks a DMA access. *)
val allowed : t -> context:context_id -> Addr.pfn -> bool

(** Number of live [(context, pfn)] entries. *)
val entries : t -> int
