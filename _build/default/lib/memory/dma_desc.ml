type t = { addr : Addr.t; len : int; flags : int; seqno : int }

let size_bytes = 16
let flag_end_of_packet = 0x1
let flag_interrupt_on_completion = 0x2

let write mem ~at d =
  if d.len < 0 || d.len > 0xFFFF_FFFF then
    invalid_arg "Dma_desc.write: length out of range";
  if d.flags < 0 || d.flags > 0xFFFF then
    invalid_arg "Dma_desc.write: flags out of range";
  if d.seqno < 0 || d.seqno > 0xFFFF then
    invalid_arg "Dma_desc.write: seqno out of range";
  if d.addr < 0 then invalid_arg "Dma_desc.write: negative address";
  Phys_mem.write_u64 mem ~addr:at d.addr;
  Phys_mem.write_u32 mem ~addr:(at + 8) d.len;
  Phys_mem.write_u16 mem ~addr:(at + 12) d.flags;
  Phys_mem.write_u16 mem ~addr:(at + 14) d.seqno

let read mem ~at =
  {
    addr = Phys_mem.read_u64 mem ~addr:at;
    len = Phys_mem.read_u32 mem ~addr:(at + 8);
    flags = Phys_mem.read_u16 mem ~addr:(at + 12);
    seqno = Phys_mem.read_u16 mem ~addr:(at + 14);
  }

let equal a b =
  a.addr = b.addr && a.len = b.len && a.flags = b.flags && a.seqno = b.seqno

let pp ppf d =
  Format.fprintf ppf "{addr=%a len=%d flags=0x%x seq=%d}" Addr.pp d.addr
    d.len d.flags d.seqno
