type domain_id = int
type state = Free | Owned of domain_id | Quarantined of domain_id

type t = {
  pfn : Addr.pfn;
  mutable state : state;
  mutable refcount : int;
}

let create ~pfn = { pfn; state = Free; refcount = 0 }
let pfn t = t.pfn
let state t = t.state
let refcount t = t.refcount

let set_owned t dom =
  match t.state with
  | Free -> t.state <- Owned dom
  | Owned _ | Quarantined _ ->
      invalid_arg "Page.set_owned: page not free"

let release t =
  match t.state with
  | Owned d ->
      if t.refcount = 0 then t.state <- Free else t.state <- Quarantined d
  | Free | Quarantined _ -> invalid_arg "Page.release: page not owned"

let transfer t dom =
  match t.state with
  | Owned _ ->
      if t.refcount > 0 then Error `Pinned
      else begin
        t.state <- Owned dom;
        Ok ()
      end
  | Free | Quarantined _ -> invalid_arg "Page.transfer: page not owned"

let get_ref t =
  match t.state with
  | Free -> invalid_arg "Page.get_ref: free page"
  | Owned _ | Quarantined _ -> t.refcount <- t.refcount + 1

let put_ref t =
  if t.refcount <= 0 then invalid_arg "Page.put_ref: refcount already zero";
  t.refcount <- t.refcount - 1;
  match t.state with
  | Quarantined _ when t.refcount = 0 ->
      t.state <- Free;
      `Now_free
  | Free | Owned _ | Quarantined _ -> `Still_held

let is_owned_by t dom =
  match t.state with
  | Owned d -> d = dom
  | Free | Quarantined _ -> false

let pp ppf t =
  let state =
    match t.state with
    | Free -> "free"
    | Owned d -> Printf.sprintf "owned(dom%d)" d
    | Quarantined d -> Printf.sprintf "quarantined(dom%d)" d
  in
  Format.fprintf ppf "pfn=%d %s refs=%d" t.pfn state t.refcount
