(** Per-page metadata: ownership and reference counting.

    Equivalent of Xen's [page_info]: each physical page has an owning domain
    and a reference count. The CDNA hypervisor pins pages under outstanding
    DMA by holding a reference, which blocks reallocation (paper section
    3.3). Domains are identified by small integers. *)

type domain_id = int

type state =
  | Free  (** On the allocator free list. *)
  | Owned of domain_id
  | Quarantined of domain_id
      (** Freed by its owner while references were outstanding; withheld
          from reallocation until the count drops to zero. The domain is
          the previous owner (for diagnostics). *)

type t

val create : pfn:Addr.pfn -> t
val pfn : t -> Addr.pfn
val state : t -> state
val refcount : t -> int

(** [set_owned p dom] transitions a [Free] page to [Owned dom].
    @raise Invalid_argument if the page is not free. *)
val set_owned : t -> domain_id -> unit

(** [release p] frees an [Owned] page: to [Free] if unreferenced, else to
    [Quarantined].
    @raise Invalid_argument if the page is not owned. *)
val release : t -> unit

(** [transfer p dom] reassigns an [Owned], unreferenced page to [dom]
    (page flipping). Returns [Error `Pinned] if references are
    outstanding.
    @raise Invalid_argument if the page is not owned. *)
val transfer : t -> domain_id -> (unit, [ `Pinned ]) result

(** [get_ref p] increments the reference count.
    @raise Invalid_argument on a [Free] page. *)
val get_ref : t -> unit

(** [put_ref p] decrements the count. Returns [`Now_free] when this drops a
    quarantined page to zero references (the allocator must reclaim it),
    [`Still_held] otherwise.
    @raise Invalid_argument if the count is already zero. *)
val put_ref : t -> [ `Now_free | `Still_held ]

val is_owned_by : t -> domain_id -> bool
val pp : Format.formatter -> t -> unit
