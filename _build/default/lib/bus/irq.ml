type t = {
  name : string;
  mutable handler : (unit -> unit) option;
  mutable count : int;
  mutable dropped : int;
}

let create ~name = { name; handler = None; count = 0; dropped = 0 }
let name t = t.name
let set_handler t f = t.handler <- Some f

let assert_line t =
  match t.handler with
  | Some f ->
      t.count <- t.count + 1;
      f ()
  | None -> t.dropped <- t.dropped + 1

let count t = t.count
let dropped t = t.dropped
let reset_count t = t.count <- 0
