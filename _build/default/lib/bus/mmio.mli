(** Memory-mapped I/O (programmed I/O) regions.

    A device exposes {!region}s backed by read/write callbacks — e.g. a
    CDNA context's 4 KB mailbox partition in NIC SRAM. The hypervisor hands
    a guest a {!mapping} of a region; because each region is mapped into at
    most the address space the hypervisor chose, a guest can only ever
    reach its own context (paper section 3.1). Revoking the mapping makes
    further accesses fault. *)

exception Fault of string
(** Raised on out-of-range offsets or accesses through a revoked mapping. *)

type region

(** [region ~size ~read ~write] creates a region of [size] bytes. Offsets
    passed to the callbacks are in [\[0, size)] and 4-byte aligned. *)
val region :
  size:int -> read:(offset:int -> int) -> write:(offset:int -> int -> unit) -> region

val size : region -> int

type mapping

(** [map r] creates a live mapping of [r]. *)
val map : region -> mapping

(** [revoke m] invalidates the mapping; subsequent accesses raise
    {!Fault}. Idempotent. *)
val revoke : mapping -> unit

val is_revoked : mapping -> bool

(** 32-bit PIO access through a mapping. [offset] must be 4-byte aligned
    and in range, else {!Fault}. *)

val read32 : mapping -> offset:int -> int
val write32 : mapping -> offset:int -> int -> unit

(** Total PIO writes through this mapping (diagnostic). *)
val write_count : mapping -> int
