exception Fault of string

type region = {
  size : int;
  read : offset:int -> int;
  write : offset:int -> int -> unit;
}

let region ~size ~read ~write =
  if size <= 0 then invalid_arg "Mmio.region: non-positive size";
  { size; read; write }

let size r = r.size

type mapping = { region : region; mutable revoked : bool; mutable writes : int }

let map region = { region; revoked = false; writes = 0 }
let revoke m = m.revoked <- true
let is_revoked m = m.revoked

let check m ~offset =
  if m.revoked then raise (Fault "access through revoked mapping");
  if offset < 0 || offset + 4 > m.region.size then
    raise (Fault (Printf.sprintf "offset %d out of range" offset));
  if offset land 3 <> 0 then
    raise (Fault (Printf.sprintf "offset %d not 4-byte aligned" offset))

let read32 m ~offset =
  check m ~offset;
  m.region.read ~offset

let write32 m ~offset v =
  check m ~offset;
  m.writes <- m.writes + 1;
  m.region.write ~offset v

let write_count m = m.writes
