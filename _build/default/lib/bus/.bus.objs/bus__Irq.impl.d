lib/bus/irq.ml:
