lib/bus/irq.mli:
