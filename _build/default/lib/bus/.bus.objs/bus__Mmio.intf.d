lib/bus/mmio.mli:
