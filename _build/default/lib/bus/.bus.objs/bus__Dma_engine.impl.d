lib/bus/dma_engine.ml: Bytes Memory Sim
