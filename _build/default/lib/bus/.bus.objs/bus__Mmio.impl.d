lib/bus/mmio.ml: Printf
