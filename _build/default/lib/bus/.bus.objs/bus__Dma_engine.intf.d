lib/bus/dma_engine.mli: Bytes Memory Sim
