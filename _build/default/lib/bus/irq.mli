(** Physical interrupt lines.

    Devices raise interrupts; the platform routes every line to a single
    handler — in a virtualized configuration, the hypervisor's interrupt
    dispatcher (paper section 2.1: "Xen receives all interrupts in the
    system"); in the native configuration, the OS's ISR. *)

type t

val create : name:string -> t
val name : t -> string

(** [set_handler t f] installs the receiving handler. *)
val set_handler : t -> (unit -> unit) -> unit

(** [assert_line t] raises one interrupt (edge-triggered): the handler runs
    immediately in the caller's event context. No-op with a warning count
    if no handler is installed. *)
val assert_line : t -> unit

(** Number of interrupts delivered so far. *)
val count : t -> int

(** Interrupts raised while no handler was installed. *)
val dropped : t -> int

val reset_count : t -> unit
