type domain_id = int

type t =
  | Hypervisor
  | Kernel of domain_id
  | User of domain_id
  | Idle

let equal a b =
  match a, b with
  | Hypervisor, Hypervisor | Idle, Idle -> true
  | Kernel a, Kernel b | User a, User b -> a = b
  | (Hypervisor | Kernel _ | User _ | Idle), _ -> false

let rank = function
  | Hypervisor -> 0
  | Kernel _ -> 1
  | User _ -> 2
  | Idle -> 3

let compare a b =
  match a, b with
  | Kernel a, Kernel b | User a, User b -> Int.compare a b
  | _ -> Int.compare (rank a) (rank b)

let domain = function
  | Kernel d | User d -> Some d
  | Hypervisor | Idle -> None

let pp ppf = function
  | Hypervisor -> Format.pp_print_string ppf "hyp"
  | Kernel d -> Format.fprintf ppf "dom%d/kernel" d
  | User d -> Format.fprintf ppf "dom%d/user" d
  | Idle -> Format.pp_print_string ppf "idle"
