(** Execution-time profile (Xenoprof equivalent).

    Accumulates CPU busy time per {!Category.t}. The experiment harness
    resets the profile after warm-up and reads a {!report} at the end of the
    measured window, reproducing the "Domain Execution Profile" columns of
    the paper's Tables 2-4. *)

type t

val create : unit -> t

(** [add t cat dt] charges [dt] of CPU time to [cat]. *)
val add : t -> Category.t -> Sim.Time.t -> unit

(** Total time charged to a category so far. *)
val total : t -> Category.t -> Sim.Time.t

(** Sum over all non-idle categories. *)
val busy : t -> Sim.Time.t

(** Drop all accumulated time (used at the end of warm-up). *)
val reset : t -> unit

(** Fractions of a measurement window, in percent, in the paper's layout. *)
type report = {
  hyp : float;
  driver_kernel : float;
  driver_user : float;
  guest_kernel : float;
  guest_user : float;
  idle : float;
}

(** [report t ~window ~driver_domain] splits busy time between the driver
    domain (if any) and all other domains, and derives idle as the
    unaccounted remainder of [window].
    @raise Invalid_argument if [window] is not positive. *)
val report : t -> window:Sim.Time.t -> driver_domain:Category.domain_id option -> report

val pp_report : Format.formatter -> report -> unit
