(** Execution accounting categories.

    Mirrors the Xenoprof categories used by the paper's Tables 2-4: time is
    attributed to the hypervisor, to a domain's kernel, to a domain's user
    space, or to idle. Domains are identified by small integers assigned by
    the VMM substrate. *)

type domain_id = int

type t =
  | Hypervisor  (** Hypervisor text: hypercalls, interrupt dispatch, scheduling. *)
  | Kernel of domain_id  (** Guest (or driver-domain) kernel. *)
  | User of domain_id  (** Guest (or driver-domain) user space. *)
  | Idle

val equal : t -> t -> bool
val compare : t -> t -> int

(** Domain the category belongs to, if any. *)
val domain : t -> domain_id option

val pp : Format.formatter -> t -> unit
