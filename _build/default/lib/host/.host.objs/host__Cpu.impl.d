lib/host/cpu.ml: Category Float List Profile Queue Sim
