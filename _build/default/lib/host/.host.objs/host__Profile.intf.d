lib/host/profile.mli: Category Format Sim
