lib/host/profile.ml: Category Float Format Hashtbl Sim
