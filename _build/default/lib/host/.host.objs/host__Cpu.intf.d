lib/host/cpu.mli: Category Profile Sim
