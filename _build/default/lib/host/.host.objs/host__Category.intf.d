lib/host/category.mli: Format
