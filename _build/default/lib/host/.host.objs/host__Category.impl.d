lib/host/category.ml: Format Int
