(** Shared I/O channel between netfront and netback.

    Models the pair of shared-memory rings a paravirtualized network
    interface uses (paper section 2.1): a transmit ring carrying
    (frame, page) requests from guest to driver domain, a receive ring
    carrying delivered (frame, page) pairs back, plus the response paths:
    transmit completions and replacement pages from the page-exchange
    protocol. Capacities model the fixed ring sizes; pushes fail when
    full, providing the back-pressure that bounds in-flight work. *)

type entry = { frame : Ethernet.Frame.t; pfn : Memory.Addr.pfn }
type t

val create : capacity:int -> t
val capacity : t -> int

(** {1 Guest -> driver (transmit requests)} *)

val tx_push : t -> entry -> bool
val tx_pop : t -> entry option

(** Next entry without consuming it. *)
val tx_peek : t -> entry option
val tx_used : t -> int
val tx_space : t -> int

(** {1 Driver -> guest (received packets)} *)

val rx_push : t -> entry -> bool
val rx_pop : t -> entry option
val rx_used : t -> int
val rx_space : t -> int

(** {1 Responses} *)

(** Transmit completions (netback -> netfront), with the replacement pages
    from the page exchange. *)
val push_tx_completion : t -> pages:Memory.Addr.pfn list -> count:int -> unit

(** Returns [(count, replacement pages)] accumulated since last taken. *)
val take_tx_completions : t -> int * Memory.Addr.pfn list

(** Completions accumulated and not yet taken. *)
val tx_completions_pending : t -> int

(** Pages returned by the guest to refill netback's exchange pool. *)
val push_returned_page : t -> Memory.Addr.pfn -> unit

val take_returned_pages : t -> Memory.Addr.pfn list
