lib/guestos/netdev.mli: Ethernet
