lib/guestos/netback.mli: Ethernet Netdev Sim Xchan Xen
