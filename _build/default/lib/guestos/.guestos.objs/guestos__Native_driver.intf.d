lib/guestos/native_driver.mli: Ethernet Memory Netdev Nic Os_costs Sim
