lib/guestos/netback.ml: Array Bridge Ethernet Hashtbl List Memory Netdev Queue Sim Xchan Xen
