lib/guestos/netfront.ml: Ethernet List Memory Netdev Option Os_costs Queue Sim Xchan Xen
