lib/guestos/net_stack.ml: Ethernet List Netdev Os_costs Queue Sim
