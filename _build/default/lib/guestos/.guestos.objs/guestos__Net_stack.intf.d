lib/guestos/net_stack.mli: Ethernet Netdev Os_costs Sim
