lib/guestos/netdev.ml: Ethernet List
