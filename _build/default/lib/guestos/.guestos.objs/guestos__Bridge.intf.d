lib/guestos/bridge.mli: Ethernet
