lib/guestos/bridge.ml: Ethernet Hashtbl List
