lib/guestos/native_driver.ml: Array Ethernet List Memory Netdev Nic Option Os_costs Queue Sim
