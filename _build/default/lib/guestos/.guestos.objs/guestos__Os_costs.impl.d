lib/guestos/os_costs.ml: Sim
