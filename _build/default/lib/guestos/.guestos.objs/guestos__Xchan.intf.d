lib/guestos/xchan.mli: Ethernet Memory
