lib/guestos/os_costs.mli: Sim
