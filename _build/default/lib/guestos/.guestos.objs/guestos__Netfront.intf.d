lib/guestos/netfront.mli: Ethernet Netdev Os_costs Xchan Xen
