lib/guestos/xchan.ml: Ethernet List Memory Queue
