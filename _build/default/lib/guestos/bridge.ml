type 'a port = { id : int; payload : 'a }

type 'a t = {
  mutable port_list : 'a port list; (* insertion order *)
  fdb : (Ethernet.Mac_addr.t, 'a port) Hashtbl.t;
  mutable next_id : int;
}

let create () = { port_list = []; fdb = Hashtbl.create 64; next_id = 0 }

let add_port t payload =
  let p = { id = t.next_id; payload } in
  t.next_id <- t.next_id + 1;
  t.port_list <- t.port_list @ [ p ];
  p

let payload p = p.payload
let ports t = t.port_list
let learn t port mac = Hashtbl.replace t.fdb mac port

type 'a decision = To of 'a port | Flood of 'a port list | Drop

let route t ~ingress frame =
  learn t ingress frame.Ethernet.Frame.src;
  let dst = frame.Ethernet.Frame.dst in
  let others () = List.filter (fun p -> p.id <> ingress.id) t.port_list in
  if Ethernet.Mac_addr.is_broadcast dst || Ethernet.Mac_addr.is_multicast dst
  then Flood (others ())
  else
    match Hashtbl.find_opt t.fdb dst with
    | Some p when p.id = ingress.id -> Drop
    | Some p -> To p
    | None -> Flood (others ())

let lookup t mac = Hashtbl.find_opt t.fdb mac
