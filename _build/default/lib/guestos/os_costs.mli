(** Guest-OS CPU cost parameters.

    Per-packet and per-wakeup kernel/user costs of the simulated network
    stack, drivers and benchmark application. The experiments library
    calibrates these so single-guest profiles land on the paper's Tables
    2-3 (see DESIGN.md section "Cost model calibration"). *)

type t = {
  stack_tx_per_pkt : Sim.Time.t;  (** Kernel stack transmit path, per packet. *)
  stack_rx_per_pkt : Sim.Time.t;
  stack_wakeup_fixed : Sim.Time.t;  (** Softirq batch entry. *)
  driver_tx_per_pkt : Sim.Time.t;  (** Descriptor build, buffer handling. *)
  driver_rx_per_pkt : Sim.Time.t;  (** Completion handling, buffer repost. *)
  driver_wakeup_fixed : Sim.Time.t;  (** Interrupt/poll entry, per batch. *)
  app_per_pkt : Sim.Time.t;  (** User-space benchmark work per packet. *)
  app_wakeup : Sim.Time.t;
  rx_poll_budget : int;  (** NAPI-style per-poll packet budget. *)
  tx_batch_limit : int;  (** Max packets accepted per driver send call. *)
}

(** Ballpark defaults for a 2.4 GHz Opteron-era core. *)
val default : t
