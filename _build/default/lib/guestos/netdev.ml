type t = {
  mac : Ethernet.Mac_addr.t;
  send_impl : Ethernet.Frame.t list -> unit;
  tx_space_impl : unit -> int;
  mutable rx_handler : Ethernet.Frame.t list -> unit;
  mutable tx_done_handler : int -> unit;
  mutable writable_hook : unit -> unit;
  mutable sent : int;
  mutable received : int;
}

let create ~mac ~send ~tx_space =
  {
    mac;
    send_impl = send;
    tx_space_impl = tx_space;
    rx_handler = (fun _ -> ());
    tx_done_handler = (fun _ -> ());
    writable_hook = (fun () -> ());
    sent = 0;
    received = 0;
  }

let mac t = t.mac

let send t frames =
  t.sent <- t.sent + List.length frames;
  t.send_impl frames

let tx_space t = t.tx_space_impl ()
let set_rx_handler t f = t.rx_handler <- f
let set_tx_done_handler t f = t.tx_done_handler <- f
let set_writable_hook t f = t.writable_hook <- f

let deliver_rx t frames =
  t.received <- t.received + List.length frames;
  t.rx_handler frames

let notify_tx_done t n = t.tx_done_handler n
let notify_writable t = t.writable_hook ()
let frames_sent t = t.sent
let frames_received t = t.received

let reset_counters t =
  t.sent <- 0;
  t.received <- 0
