(** Simplified guest network stack.

    The kernel layer between the benchmark application and a network
    device. It charges per-packet and per-batch kernel CPU costs in both
    directions, queues transmit bursts when the device is momentarily full
    and drains the queue on transmit completions, and fans received frames
    up to the application handler.

    The paper's per-packet "Guest OS" time is the sum of this module's
    costs and the driver's. *)

type t

(** [create ~post_kernel ~costs ~netdev] — [post_kernel] schedules kernel
    work in the owning domain ([cost] then continuation). *)
val create :
  post_kernel:(cost:Sim.Time.t -> (unit -> unit) -> unit) ->
  costs:Os_costs.t ->
  netdev:Netdev.t ->
  t

val netdev : t -> Netdev.t

(** [send t frames] accepts a burst from the application (call from user
    context; the stack charges its kernel time itself). Frames beyond
    {!capacity} are still queued — the application should respect
    [capacity] to bound memory. *)
val send : t -> Ethernet.Frame.t list -> unit

(** Frames the stack can currently accept without growing its backlog. *)
val capacity : t -> int

(** [set_rx_handler t f] — [f] receives frame batches after kernel receive
    processing; it runs in kernel context, so the application should post
    user work from it. *)
val set_rx_handler : t -> (Ethernet.Frame.t list -> unit) -> unit

(** Fires (in kernel context) when [capacity] becomes positive again. *)
val set_writable_hook : t -> (unit -> unit) -> unit

val frames_sent : t -> int
val frames_received : t -> int
val backlog : t -> int
