type t = {
  stack_tx_per_pkt : Sim.Time.t;
  stack_rx_per_pkt : Sim.Time.t;
  stack_wakeup_fixed : Sim.Time.t;
  driver_tx_per_pkt : Sim.Time.t;
  driver_rx_per_pkt : Sim.Time.t;
  driver_wakeup_fixed : Sim.Time.t;
  app_per_pkt : Sim.Time.t;
  app_wakeup : Sim.Time.t;
  rx_poll_budget : int;
  tx_batch_limit : int;
}

let default =
  {
    stack_tx_per_pkt = Sim.Time.ns 1_400;
    stack_rx_per_pkt = Sim.Time.ns 1_900;
    stack_wakeup_fixed = Sim.Time.ns 900;
    driver_tx_per_pkt = Sim.Time.ns 900;
    driver_rx_per_pkt = Sim.Time.ns 1_100;
    driver_wakeup_fixed = Sim.Time.us 2;
    app_per_pkt = Sim.Time.ns 60;
    app_wakeup = Sim.Time.ns 500;
    rx_poll_budget = 64;
    tx_batch_limit = 64;
  }
