(** Software Ethernet bridge (driver-domain).

    The learning bridge that interconnects the physical NIC(s) and all
    back-end interfaces in Xen's driver domain (paper Figure 1). Pure
    routing decisions: the caller (netback) moves the frames and charges
    the CPU cost. Ports carry an arbitrary payload ['a] identifying where
    the frame should go. *)

type 'a t
type 'a port

val create : unit -> 'a t
val add_port : 'a t -> 'a -> 'a port
val payload : 'a port -> 'a
val ports : 'a t -> 'a port list

(** [learn t port mac] associates [mac] with [port] (also done implicitly
    by {!route} for the frame's source). *)
val learn : 'a t -> 'a port -> Ethernet.Mac_addr.t -> unit

type 'a decision =
  | To of 'a port
  | Flood of 'a port list  (** Unknown/broadcast: all ports but ingress. *)
  | Drop  (** Destination is behind the ingress port. *)

(** [route t ~ingress frame] learns the source and decides the egress. *)
val route : 'a t -> ingress:'a port -> Ethernet.Frame.t -> 'a decision

val lookup : 'a t -> Ethernet.Mac_addr.t -> 'a port option
