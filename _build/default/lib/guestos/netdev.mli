(** Network-device interface between a protocol stack and a driver.

    Every driver flavour — {!Native_driver}, {!Netfront}, and the CDNA
    guest driver — exposes one of these; {!Net_stack} (and {!Netback}, for
    the driver domain) consume it. All callbacks are invoked in the owning
    domain's kernel context; cost accounting happens inside the
    implementations. *)

type t

(** [create ~mac ~send ~tx_space] — [send] submits a batch for
    transmission (the device takes ownership), [tx_space] reports how many
    more frames the device can currently accept. *)
val create :
  mac:Ethernet.Mac_addr.t ->
  send:(Ethernet.Frame.t list -> unit) ->
  tx_space:(unit -> int) ->
  t

val mac : t -> Ethernet.Mac_addr.t
val send : t -> Ethernet.Frame.t list -> unit
val tx_space : t -> int

(** {1 Upcalls installed by the consumer} *)

val set_rx_handler : t -> (Ethernet.Frame.t list -> unit) -> unit
val set_tx_done_handler : t -> (int -> unit) -> unit

(** Fires when transmit space becomes available again after exhaustion. *)
val set_writable_hook : t -> (unit -> unit) -> unit

(** {1 Upcall invocation (driver side)} *)

val deliver_rx : t -> Ethernet.Frame.t list -> unit
val notify_tx_done : t -> int -> unit
val notify_writable : t -> unit

(** {1 Counters} *)

val frames_sent : t -> int
val frames_received : t -> int
val reset_counters : t -> unit
