type entry = { frame : Ethernet.Frame.t; pfn : Memory.Addr.pfn }

type t = {
  capacity : int;
  tx : entry Queue.t;
  rx : entry Queue.t;
  mutable completions : int;
  mutable completion_pages : Memory.Addr.pfn list;
  mutable returned : Memory.Addr.pfn list;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Xchan.create: non-positive capacity";
  {
    capacity;
    tx = Queue.create ();
    rx = Queue.create ();
    completions = 0;
    completion_pages = [];
    returned = [];
  }

let capacity t = t.capacity

let push q cap e = if Queue.length q >= cap then false else (Queue.push e q; true)

let tx_push t e = push t.tx t.capacity e
let tx_pop t = Queue.take_opt t.tx
let tx_peek t = Queue.peek_opt t.tx
let tx_used t = Queue.length t.tx
let tx_space t = t.capacity - Queue.length t.tx
let rx_push t e = push t.rx t.capacity e
let rx_pop t = Queue.take_opt t.rx
let rx_used t = Queue.length t.rx
let rx_space t = t.capacity - Queue.length t.rx

let push_tx_completion t ~pages ~count =
  t.completions <- t.completions + count;
  t.completion_pages <- List.rev_append pages t.completion_pages

let take_tx_completions t =
  let r = (t.completions, t.completion_pages) in
  t.completions <- 0;
  t.completion_pages <- [];
  r

let tx_completions_pending t = t.completions

let push_returned_page t pfn = t.returned <- pfn :: t.returned

let take_returned_pages t =
  let r = t.returned in
  t.returned <- [];
  r
