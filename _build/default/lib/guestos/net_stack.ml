type t = {
  post_kernel : cost:Sim.Time.t -> (unit -> unit) -> unit;
  costs : Os_costs.t;
  netdev : Netdev.t;
  backlog : Ethernet.Frame.t Queue.t;
  mutable rx_handler : Ethernet.Frame.t list -> unit;
  mutable writable_hook : unit -> unit;
  mutable was_full : bool;
  mutable sent : int;
  mutable received : int;
}

let drain t =
  (* Push backlog into the device as space allows; driver cost is charged
     by the device, stack cost was charged at [send]. *)
  let space = Netdev.tx_space t.netdev in
  if space > 0 && not (Queue.is_empty t.backlog) then begin
    let n = min space (Queue.length t.backlog) in
    let batch = List.init n (fun _ -> Queue.pop t.backlog) in
    t.sent <- t.sent + n;
    Netdev.send t.netdev batch
  end;
  if Queue.is_empty t.backlog && t.was_full then begin
    t.was_full <- false;
    t.writable_hook ()
  end

let create ~post_kernel ~costs ~netdev =
  let t =
    {
      post_kernel;
      costs;
      netdev;
      backlog = Queue.create ();
      rx_handler = (fun _ -> ());
      writable_hook = (fun () -> ());
      was_full = false;
      sent = 0;
      received = 0;
    }
  in
  Netdev.set_tx_done_handler netdev (fun _n -> drain t);
  Netdev.set_writable_hook netdev (fun () ->
      drain t;
      (* Propagate upward even if we never backlogged: the application may
         be waiting for the device to come up. *)
      if Queue.is_empty t.backlog then t.writable_hook ());
  Netdev.set_rx_handler netdev (fun frames ->
      let n = List.length frames in
      let cost =
        Sim.Time.add costs.Os_costs.stack_wakeup_fixed
          (Sim.Time.mul_int costs.Os_costs.stack_rx_per_pkt n)
      in
      t.post_kernel ~cost (fun () ->
          t.received <- t.received + n;
          t.rx_handler frames));
  t

let netdev t = t.netdev

let send t frames =
  let n = List.length frames in
  if n > 0 then begin
    let cost =
      Sim.Time.add t.costs.Os_costs.stack_wakeup_fixed
        (Sim.Time.mul_int t.costs.Os_costs.stack_tx_per_pkt n)
    in
    t.post_kernel ~cost (fun () ->
        List.iter (fun f -> Queue.push f t.backlog) frames;
        if Queue.length t.backlog > Netdev.tx_space t.netdev then
          t.was_full <- true;
        drain t)
  end

let capacity t = max 0 (Netdev.tx_space t.netdev - Queue.length t.backlog)
let set_rx_handler t f = t.rx_handler <- f
let set_writable_hook t f = t.writable_hook <- f
let frames_sent t = t.sent
let frames_received t = t.received
let backlog t = Queue.length t.backlog
