(** Hypervisor operation costs.

    CPU time charged for the VMM's own mechanisms. Values are calibrated in
    the experiments library; these defaults are in the range reported for
    Xen 3 on the paper-era Opteron. *)

type t = {
  isr : Sim.Time.t;  (** Physical-interrupt service routine entry/dispatch. *)
  virq_dispatch : Sim.Time.t;
      (** Marking an event channel pending and scheduling the target vcpu. *)
  event_notify : Sim.Time.t;  (** Event-channel notify hypercall. *)
  grant_map : Sim.Time.t;
      (** Grant mapping of a transmit page into the driver domain. *)
  grant_transfer : Sim.Time.t;
      (** Full page transfer (receive path): ownership change plus the
          TLB maintenance that made Xen's receive flipping expensive. *)
  domain_create : Sim.Time.t;
}

val default : t
