lib/xen/domain.ml: Hashtbl Host List Memory
