lib/xen/costs.mli: Sim
