lib/xen/costs.ml: Sim
