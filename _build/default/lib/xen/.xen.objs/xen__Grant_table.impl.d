lib/xen/grant_table.ml: Domain Hypervisor Memory
