lib/xen/hypervisor.mli: Bus Costs Domain Host Memory Sim
