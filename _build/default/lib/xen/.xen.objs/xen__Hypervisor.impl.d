lib/xen/hypervisor.ml: Bus Costs Domain Host List Memory Sim
