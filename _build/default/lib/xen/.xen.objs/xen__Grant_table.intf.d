lib/xen/grant_table.mli: Domain Hypervisor Memory
