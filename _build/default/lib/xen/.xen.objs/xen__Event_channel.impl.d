lib/xen/event_channel.ml: Costs Domain Host Hypervisor Sim
