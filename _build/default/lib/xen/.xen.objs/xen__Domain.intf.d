lib/xen/domain.mli: Host Memory
