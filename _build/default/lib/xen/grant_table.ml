type error = [ `Not_owner | `Pinned ]

let count = ref 0

let flip hyp ~src ~dst pfn =
  let mem = Hypervisor.mem hyp in
  if not (Memory.Phys_mem.owned_by mem pfn (Domain.id src)) then Error `Not_owner
  else
    match Memory.Phys_mem.transfer mem pfn ~to_:(Domain.id dst) with
    | Error `Pinned -> Error `Pinned
    | Ok () ->
        Domain.remove_page src pfn;
        Domain.add_page dst pfn;
        incr count;
        Ok ()

let flips () = !count
let reset_flips () = count := 0
