type t = {
  isr : Sim.Time.t;
  virq_dispatch : Sim.Time.t;
  event_notify : Sim.Time.t;
  grant_map : Sim.Time.t;
  grant_transfer : Sim.Time.t;
  domain_create : Sim.Time.t;
}

let default =
  {
    isr = Sim.Time.ns 1_500;
    virq_dispatch = Sim.Time.ns 800;
    event_notify = Sim.Time.ns 900;
    grant_map = Sim.Time.ns 550;
    grant_transfer = Sim.Time.ns 1_100;
    domain_create = Sim.Time.us 100;
  }
