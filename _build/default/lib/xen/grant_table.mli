(** Grant tables: page transfers between domains.

    Xen's netfront/netback move packet pages between guest and driver
    domain by {e page flipping} — remapping ownership rather than copying
    (paper section 2.1). [flip] validates ownership and transfers the page;
    the caller charges the hypercall cost.

    A page pinned by outstanding DMA (non-zero reference count) cannot be
    flipped, mirroring the reallocation constraint of section 3.3. *)

type error =
  [ `Not_owner  (** Source domain does not own the page. *)
  | `Pinned  (** Page has outstanding DMA references. *) ]

(** [flip hyp ~src ~dst pfn] moves ownership of [pfn] from [src] to
    [dst]. *)
val flip :
  Hypervisor.t -> src:Domain.t -> dst:Domain.t -> Memory.Addr.pfn -> (unit, error) result

(** Completed flips (global diagnostic counter). *)
val flips : unit -> int

val reset_flips : unit -> unit
