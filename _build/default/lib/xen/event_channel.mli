(** Event channels: Xen's virtual interrupts.

    A channel targets one domain and carries a bound handler (the guest's
    virtual ISR). Notifications are {e level-like}: while a delivery is
    pending and not yet handled, further notifies merge into it — the
    batching behaviour that lets guests amortize wakeup costs under load,
    which is central to the scalability shapes of the paper's Figures 3/4.

    Delivery costs: the notifier pays the notify cost (hypercall when a
    domain notifies), the hypervisor pays a dispatch cost, and the target
    pays its ISR cost when scheduled. *)

type t

(** [create hyp ~target ~isr_cost ~handler] binds a channel. [handler]
    runs in the target's kernel context after [isr_cost]. *)
val create :
  Hypervisor.t ->
  target:Domain.t ->
  isr_cost:Sim.Time.t ->
  handler:(unit -> unit) ->
  t

val target : t -> Domain.t

(** [notify t ~from] sends an event from a domain (costs an event-notify
    hypercall on [from]'s vcpu, then hypervisor dispatch). *)
val notify : t -> from:Domain.t -> unit

(** [notify_from_hypervisor t] sends an event from hypervisor context
    (physical-ISR forwarding); costs only the dispatch. *)
val notify_from_hypervisor : t -> unit

(** Virtual interrupts actually delivered (i.e. handler invocations). *)
val deliveries : t -> int

(** Notifies merged into an already-pending delivery. *)
val merged : t -> int

val reset_counters : t -> unit
