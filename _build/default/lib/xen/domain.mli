(** Virtual machine (domain) state.

    A domain bundles an identity, a schedulable CPU entity, and its memory
    allocation. The {e driver domain} is the privileged domain that owns
    physical devices in Xen's software I/O architecture; guests run the
    workloads. *)

type kind =
  | Driver  (** Privileged driver domain (dom0-like). *)
  | Guest
  | Native  (** Bare-metal OS in the unvirtualized baseline. *)

type t

val id : t -> Host.Category.domain_id
val name : t -> string
val kind : t -> kind
val entity : t -> Host.Cpu.entity

(** Convenience categories for work accounting. *)
val kernel : t -> Host.Category.t

val user : t -> Host.Category.t

(** Pages currently owned (allocated at creation; may grow/shrink through
    ballooning or grant transfers). *)
val pages : t -> Memory.Addr.pfn list

val page_count : t -> int

(** Virtual interrupts delivered to this domain so far. *)
val virq_count : t -> int

(** Used by the experiment harness at the end of warm-up. *)
val reset_virq_count : t -> unit

(**/**)

(* Internal constructors for Hypervisor. *)
val make :
  id:Host.Category.domain_id ->
  name:string ->
  kind:kind ->
  entity:Host.Cpu.entity ->
  pages:Memory.Addr.pfn list ->
  t

val add_page : t -> Memory.Addr.pfn -> unit
val remove_page : t -> Memory.Addr.pfn -> unit
val incr_virq : t -> unit
