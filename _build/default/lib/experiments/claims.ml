type verdict = {
  id : string;
  claim : string;
  measured : string;
  pass : bool;
}

let verify ?(quick = false) () =
  let run cfg = Run.run ~quick cfg in
  let base2 = { Config.default with Config.nics = 2; guests = 1 } in
  let cdna pattern guests =
    run
      {
        base2 with
        Config.system = Config.Cdna_sys;
        nic = Config.Ricenic;
        pattern;
        guests;
      }
  in
  let xen pattern guests =
    run
      {
        base2 with
        Config.system = Config.Xen_sw;
        nic = Config.Intel;
        pattern;
        guests;
      }
  in
  (* The measurement set, shared across claims. *)
  let cdna_tx1 = cdna Workload.Pattern.Tx 1 in
  let cdna_rx1 = cdna Workload.Pattern.Rx 1 in
  let xen_tx1 = xen Workload.Pattern.Tx 1 in
  let xen_rx1 = xen Workload.Pattern.Rx 1 in
  let cdna_tx24 = cdna Workload.Pattern.Tx 24 in
  let cdna_rx24 = cdna Workload.Pattern.Rx 24 in
  let xen_tx24 = xen Workload.Pattern.Tx 24 in
  let xen_rx24 = xen Workload.Pattern.Rx 24 in
  let native_tx =
    run
      {
        Config.default with
        Config.system = Config.Native;
        nic = Config.Intel;
        nics = 6;
        pattern = Workload.Pattern.Tx;
      }
  in
  let xen_tx6 =
    run
      {
        Config.default with
        Config.system = Config.Xen_sw;
        nic = Config.Intel;
        nics = 6;
        pattern = Workload.Pattern.Tx;
      }
  in
  let noprot_tx =
    run
      {
        base2 with
        Config.system = Config.Cdna_sys;
        nic = Config.Ricenic;
        pattern = Workload.Pattern.Tx;
        protection = Cdna.Cdna_costs.Disabled;
      }
  in
  let idle m = m.Run.profile.Host.Profile.idle in
  let drv m = m.Run.profile.Host.Profile.driver_kernel in
  [
    {
      id = "C1";
      claim = "a Xen guest achieves about 30% of native throughput (\xc2\xa72.3)";
      measured =
        Printf.sprintf "%.0f%% of native"
          (xen_tx6.Run.tx_mbps /. native_tx.Run.tx_mbps *. 100.);
      pass =
        (let r = xen_tx6.Run.tx_mbps /. native_tx.Run.tx_mbps in
         r > 0.2 && r < 0.45);
    };
    {
      id = "C2";
      claim = "CDNA transmits ~1867 Mb/s with ~51% idle, one guest (abstract)";
      measured =
        Printf.sprintf "%.0f Mb/s, %.0f%% idle" cdna_tx1.Run.tx_mbps
          (idle cdna_tx1);
      pass = cdna_tx1.Run.tx_mbps > 1800. && idle cdna_tx1 > 40.;
    };
    {
      id = "C3";
      claim = "CDNA receives ~1874 Mb/s with ~41% idle, one guest (abstract)";
      measured =
        Printf.sprintf "%.0f Mb/s, %.0f%% idle" cdna_rx1.Run.rx_mbps
          (idle cdna_rx1);
      pass = cdna_rx1.Run.rx_mbps > 1800. && idle cdna_rx1 > 30.;
    };
    {
      id = "C4";
      claim =
        "Xen saturates the CPU yet cannot saturate two NICs (1602/1112 Mb/s)";
      measured =
        Printf.sprintf "tx %.0f, rx %.0f Mb/s at %.0f/%.0f%% idle"
          xen_tx1.Run.tx_mbps xen_rx1.Run.rx_mbps (idle xen_tx1)
          (idle xen_rx1);
      pass =
        xen_tx1.Run.tx_mbps < 1800.
        && xen_rx1.Run.rx_mbps < 1400.
        && idle xen_tx1 < 10.
        && idle xen_rx1 < 10.;
    };
    {
      id = "C5";
      claim = "with 24 guests CDNA still moves >1860 Mb/s in both directions";
      measured =
        Printf.sprintf "tx %.0f, rx %.0f Mb/s" cdna_tx24.Run.tx_mbps
          cdna_rx24.Run.rx_mbps;
      pass = cdna_tx24.Run.tx_mbps > 1800. && cdna_rx24.Run.rx_mbps > 1800.;
    };
    {
      id = "C6";
      claim = "at 24 guests CDNA wins by ~2.1x transmit and ~3.3x receive";
      measured =
        Printf.sprintf "%.1fx tx, %.1fx rx"
          (cdna_tx24.Run.tx_mbps /. xen_tx24.Run.tx_mbps)
          (cdna_rx24.Run.rx_mbps /. xen_rx24.Run.rx_mbps);
      pass =
        cdna_tx24.Run.tx_mbps /. xen_tx24.Run.tx_mbps > 1.5
        && cdna_rx24.Run.rx_mbps /. xen_rx24.Run.rx_mbps > 2.3;
    };
    {
      id = "C7";
      claim =
        "disabling DMA protection adds ~9% idle at unchanged throughput \
         (Table 4)";
      measured =
        Printf.sprintf "+%.1f points idle, %+.0f Mb/s"
          (idle noprot_tx -. idle cdna_tx1)
          (noprot_tx.Run.tx_mbps -. cdna_tx1.Run.tx_mbps);
      pass =
        idle noprot_tx -. idle cdna_tx1 > 4.
        && Float.abs (noprot_tx.Run.tx_mbps -. cdna_tx1.Run.tx_mbps) < 60.;
    };
    {
      id = "C8";
      claim =
        "the driver domain consumes ~35-40% CPU under Xen and none under CDNA";
      measured =
        Printf.sprintf "Xen %.0f%%, CDNA %.1f%%" (drv xen_tx1) (drv cdna_tx1);
      pass = drv xen_tx1 > 25. && drv cdna_tx1 < 1.;
    };
    {
      id = "C9";
      claim = "no corruption, drops or protection faults in any of the above";
      measured =
        (let all =
           [
             cdna_tx1; cdna_rx1; xen_tx1; xen_rx1; cdna_tx24; cdna_rx24;
             native_tx; xen_tx6; noprot_tx;
           ]
         in
         Printf.sprintf "faults=%d integrity=%d"
           (List.fold_left (fun a m -> a + m.Run.faults) 0 all)
           (List.fold_left (fun a m -> a + m.Run.integrity_failures) 0 all));
      pass =
        List.for_all
          (fun m -> m.Run.faults = 0 && m.Run.integrity_failures = 0)
          [
            cdna_tx1; cdna_rx1; xen_tx1; xen_rx1; cdna_tx24; cdna_rx24;
            native_tx; xen_tx6; noprot_tx;
          ];
    };
  ]

let print verdicts =
  Report.print
    ~header:[ ""; "Claim"; "Measured"; "Verdict" ]
    (List.map
       (fun v ->
         [ v.id; v.claim; v.measured; (if v.pass then "PASS" else "FAIL") ])
       verdicts);
  let ok = List.for_all (fun v -> v.pass) verdicts in
  Printf.printf "\n%s\n"
    (if ok then "All of the paper's headline claims hold in the reproduction."
     else "SOME CLAIMS FAILED — see above.");
  ok
