type point = { guests : int; xen : Run.measurement; cdna : Run.measurement }

let paper_guest_counts = [ 1; 2; 4; 8; 12; 16; 20; 24 ]

let sweep ?(quick = false) ~pattern guest_counts =
  let base = { Config.default with Config.nics = 2; pattern } in
  List.map
    (fun guests ->
      let xen =
        Run.run ~quick
          { base with Config.system = Config.Xen_sw; nic = Config.Intel; guests }
      in
      let cdna =
        Run.run ~quick
          {
            base with
            Config.system = Config.Cdna_sys;
            nic = Config.Ricenic;
            guests;
          }
      in
      { guests; xen; cdna })
    guest_counts

let figure3 ?quick ?(guest_counts = paper_guest_counts) () =
  sweep ?quick ~pattern:Workload.Pattern.Tx guest_counts

let figure4 ?quick ?(guest_counts = paper_guest_counts) () =
  sweep ?quick ~pattern:Workload.Pattern.Rx guest_counts

(* Paper anchor values for the endpoints of each series. *)
let paper_anchor ~pattern ~guests ~system =
  match (pattern, system, guests) with
  | Workload.Pattern.Tx, `Xen, 1 -> Some 1602.
  | Workload.Pattern.Tx, `Xen, 24 -> Some 891.
  | Workload.Pattern.Tx, `Cdna, 1 -> Some 1867.
  | Workload.Pattern.Tx, `Cdna, 24 -> Some 1867.
  | Workload.Pattern.Rx, `Xen, 1 -> Some 1112.
  | Workload.Pattern.Rx, `Xen, 24 -> Some 558.
  | Workload.Pattern.Rx, `Cdna, 1 -> Some 1874.
  | Workload.Pattern.Rx, `Cdna, 24 -> Some 1874.
  | _ -> None

let paper_cdna_idle ~pattern ~guests =
  match (pattern, guests) with
  | Workload.Pattern.Tx, 1 -> Some 50.8
  | Workload.Pattern.Tx, 2 -> Some 25.4
  | Workload.Pattern.Tx, 4 -> Some 5.9
  | Workload.Pattern.Tx, _ -> Some 0.
  | Workload.Pattern.Rx, 1 -> Some 40.9
  | Workload.Pattern.Rx, 2 -> Some 29.1
  | Workload.Pattern.Rx, 4 -> Some 12.6
  | Workload.Pattern.Rx, _ -> Some 0.
  | Workload.Pattern.Bidirectional, _ -> None

let opt_str f = function Some v -> f v | None -> "-"

let chart points =
  let xs = List.map (fun p -> p.guests) points in
  Report.ascii_chart ~x_label:"guests" ~y_label:"Mb/s"
    ~series:
      [
        ("CDNA", '#', List.map (fun p -> Run.primary_mbps p.cdna) points);
        ("Xen", 'o', List.map (fun p -> Run.primary_mbps p.xen) points);
      ]
    ~xs

let print_figure ~title ~pattern points =
  print_endline title;
  Report.print
    ~header:
      [
        "Guests"; "Xen Mb/s"; "(paper)"; "CDNA Mb/s"; "(paper)";
        "CDNA idle"; "(paper)";
      ]
    (List.map
       (fun p ->
         [
           string_of_int p.guests;
           Report.mbps (Run.primary_mbps p.xen);
           opt_str Report.mbps
             (paper_anchor ~pattern ~guests:p.guests ~system:`Xen);
           Report.mbps (Run.primary_mbps p.cdna);
           opt_str Report.mbps
             (paper_anchor ~pattern ~guests:p.guests ~system:`Cdna);
           Report.pct p.cdna.Run.profile.Host.Profile.idle;
           opt_str Report.pct (paper_cdna_idle ~pattern ~guests:p.guests);
         ])
       points);
  print_newline ();
  print_string (chart points)

let csv points =
  Report.csv
    ~header:[ "guests"; "xen_mbps"; "cdna_mbps"; "cdna_idle_pct"; "xen_idle_pct" ]
    (List.map
       (fun p ->
         [
           string_of_int p.guests;
           Printf.sprintf "%.1f" (Run.primary_mbps p.xen);
           Printf.sprintf "%.1f" (Run.primary_mbps p.cdna);
           Printf.sprintf "%.1f" p.cdna.Run.profile.Host.Profile.idle;
           Printf.sprintf "%.1f" p.xen.Run.profile.Host.Profile.idle;
         ])
       points)
