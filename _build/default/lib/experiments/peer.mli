(** The ideal traffic peer at the far end of one link.

    Stands in for the paper's load-generator machine, which was "tuned so
    that it could easily saturate two NICs both transmitting and receiving
    so that it would never be the bottleneck": it has no CPU model and
    reacts instantly, limited only by the link rate and by per-connection
    windows.

    - {b Sink role} (guest-transmit tests): receives data frames, records
      them on their connection, and returns window credits to the guest's
      benchmark program after [ack_delay].
    - {b Source role} (guest-receive tests): a window-limited go-back-N
      sender per registered connection, pacing frames onto the link
      back-to-back and round-robin across connections. Receivers accept
      in order ({!Workload.Connection.record_received}); on loss the
      acknowledgement stream stalls and, after [rto], the peer resends
      from the window base — reproducing TCP's goodput collapse under
      receive-side overload, which drives the paper's Figure 4 decline.

    An optional [flow_ok] predicate supports 802.3x-style pause
    experiments; the paper-reproduction runs leave it permissive. *)

type t

val create :
  Sim.Engine.t ->
  link:Ethernet.Link.t ->
  mac:Ethernet.Mac_addr.t ->
  ?ack_delay:Sim.Time.t ->
  (* default 60 us: reverse-path wire + delayed-ack coalescing window *)
  ?rto:Sim.Time.t ->
  (* default 4 ms retransmission timeout *)
  ?rng:Sim.Rng.t ->
  (* jitters the ack delay by +/-25% to decorrelate flows *)
  ?flow_ok:(unit -> bool) ->
  ?materialize:bool ->
  unit ->
  t

val mac : t -> Ethernet.Mac_addr.t

(** [add_sink t conn ~credit] registers a guest-transmit connection;
    [credit n] is invoked with batches of acknowledged packets, coalesced
    over the ack delay (delayed cumulative acks). *)
val add_sink : t -> Workload.Connection.t -> credit:(int -> unit) -> unit

(** [add_source t conn] registers a guest-receive connection (its [src]
    must be this peer's MAC). [from_seq] starts the go-back-N window at
    that sequence number instead of 0 — used when a flow moves between
    peers (e.g. across a context migration): resume from the last
    acknowledged position. *)
val add_source : t -> ?from_seq:int -> Workload.Connection.t -> unit

(** Current [(base, next)] go-back-N window of a source connection. *)
val source_position : t -> Workload.Connection.t -> (int * int) option

(** Begin transmitting on source connections. *)
val start : t -> unit

(** The guest acknowledged [n] packets of a source connection. *)
val on_ack : t -> Workload.Connection.t -> int -> unit

(** Re-evaluate pause state (bind to the NIC's uncongested hook). *)
val kick : t -> unit

(** Frames accepted by sinks / emitted by sources. *)
val sunk : t -> int

val sourced : t -> int

(** Frames resent after a timeout, and timeout events. *)
val retransmissions : t -> int

val timeouts : t -> int

(** Frames that arrived with a destination other than this peer's MAC
    (e.g. bridge flooding); ignored but counted. *)
val ignored : t -> int
