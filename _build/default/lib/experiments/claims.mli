(** Reproduction self-check.

    Runs the experiments behind the paper's headline claims (abstract and
    section 7) and reports a verdict for each — the script an artifact
    evaluation committee would want. Claims are checked against loose
    bands: the reproduction targets the paper's {e shape} (who wins, by
    roughly what factor, what saturates), not its exact numbers. *)

type verdict = {
  id : string;
  claim : string;  (** The paper's statement, paraphrased. *)
  measured : string;  (** What the simulation produced. *)
  pass : bool;
}

(** [verify ()] runs all checks (a dozen simulations; [quick] recommended
    interactively) and returns the verdicts in order. *)
val verify : ?quick:bool -> unit -> verdict list

(** Print verdicts as a table; returns true when everything passed. *)
val print : verdict list -> bool
