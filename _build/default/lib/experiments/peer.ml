type sink = {
  s_conn : Workload.Connection.t;
  s_credit : int -> unit;
  mutable s_pending : int;
  mutable s_flush_armed : bool;
}

(* Go-back-N sender with AIMD congestion control for one guest-receive
   connection: the congestion window halves (to one segment, with the
   slow-start threshold at half the flight size) on timeout and grows by
   slow start / congestion avoidance on acknowledgements — enough TCP to
   reproduce goodput behaviour under receive-side overload. *)
type source = {
  src_conn : Workload.Connection.t;
  mutable base : int; (* lowest unacknowledged sequence number *)
  mutable next : int; (* next sequence number to transmit *)
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable rto_armed : bool;
  mutable armed_base : int;
}

type t = {
  engine : Sim.Engine.t;
  link : Ethernet.Link.t;
  mac : Ethernet.Mac_addr.t;
  ack_delay : Sim.Time.t;
  rto : Sim.Time.t;
  rng : Sim.Rng.t option;
  flow_ok : unit -> bool;
  materialize : bool;
  sinks : (int, sink) Hashtbl.t;
  mutable sources : source array;
  by_conn : (int, source) Hashtbl.t;
  mutable rr : int;
  mutable sending : bool;
  mutable sunk : int;
  mutable sourced : int;
  mutable retransmissions : int;
  mutable timeouts : int;
  mutable ignored : int;
}

let create engine ~link ~mac ?(ack_delay = Sim.Time.us 60)
    ?(rto = Sim.Time.ms 4) ?rng ?(flow_ok = fun () -> true)
    ?(materialize = false) () =
  let t =
    {
      engine;
      link;
      mac;
      ack_delay;
      rto;
      rng;
      flow_ok;
      materialize;
      sinks = Hashtbl.create 64;
      sources = [||];
      by_conn = Hashtbl.create 64;
      rr = 0;
      sending = false;
      sunk = 0;
      sourced = 0;
      retransmissions = 0;
      timeouts = 0;
      ignored = 0;
    }
  in
  Ethernet.Link.attach link Ethernet.Link.B (fun frame ->
      if not (Ethernet.Mac_addr.equal frame.Ethernet.Frame.dst t.mac) then
        t.ignored <- t.ignored + 1
      else
        match Hashtbl.find_opt t.sinks frame.Ethernet.Frame.flow with
        | Some sink -> (
            match
              Workload.Connection.record_received
                ~now:(Sim.Engine.now t.engine) sink.s_conn frame
            with
            | `Rejected -> ()
            | `Accepted ->
                t.sunk <- t.sunk + frame.Ethernet.Frame.segments;
                (* Coalesce acknowledgements, as TCP's delayed cumulative
                   acks do: one credit delivery per connection per ack
                   window. Super-frames acknowledge all their segments. *)
                sink.s_pending <- sink.s_pending + frame.Ethernet.Frame.segments;
                if not sink.s_flush_armed then begin
                  sink.s_flush_armed <- true;
                  let delay =
                    match t.rng with
                    | None -> t.ack_delay
                    | Some rng ->
                        (* +/-25% jitter decorrelates the flows' ack
                           clocks, as real network timing noise does. *)
                        let spread = Sim.Time.div_int t.ack_delay 2 in
                        Sim.Time.add
                          (Sim.Time.diff t.ack_delay (Sim.Time.div_int spread 2))
                          (Sim.Rng.int rng (max 1 spread))
                  in
                  ignore
                    (Sim.Engine.schedule engine ~delay (fun () ->
                         sink.s_flush_armed <- false;
                         let n = sink.s_pending in
                         sink.s_pending <- 0;
                         if n > 0 then sink.s_credit n))
                end)
        | None -> t.ignored <- t.ignored + 1);
  t

let mac t = t.mac

let add_sink t conn ~credit =
  Hashtbl.replace t.sinks
    (Workload.Connection.id conn)
    { s_conn = conn; s_credit = credit; s_pending = 0; s_flush_armed = false }

let add_source t ?(from_seq = 0) conn =
  let s =
    {
      src_conn = conn;
      base = from_seq;
      next = from_seq;
      cwnd = 2.;
      ssthresh = float_of_int (Workload.Connection.window conn);
      rto_armed = false;
      armed_base = 0;
    }
  in
  t.sources <- Array.append t.sources [| s |];
  Hashtbl.replace t.by_conn (Workload.Connection.id conn) s

let source_position t conn =
  Option.map
    (fun s -> (s.base, s.next))
    (Hashtbl.find_opt t.by_conn (Workload.Connection.id conn))

let in_flight s = s.next - s.base

let effective_window s =
  min (Workload.Connection.window s.src_conn) (max 1 (int_of_float s.cwnd))

let can_send s = in_flight s < effective_window s

(* Retransmission timer: if the window base has not advanced within one
   RTO while data is outstanding, go back to the base and resend the
   whole window (go-back-N). *)
let rec arm_rto t s =
  if not s.rto_armed then begin
    s.rto_armed <- true;
    s.armed_base <- s.base;
    ignore
      (Sim.Engine.schedule t.engine ~delay:t.rto (fun () ->
           s.rto_armed <- false;
           if in_flight s > 0 then begin
             if s.base = s.armed_base then begin
               (* Timeout: everything past [base] is presumed lost; back
                  off multiplicatively and slow-start again. *)
               t.timeouts <- t.timeouts + 1;
               t.retransmissions <- t.retransmissions + in_flight s;
               s.ssthresh <- Float.max 2. (float_of_int (in_flight s) /. 2.);
               s.cwnd <- 1.;
               s.next <- s.base
             end;
             arm_rto t s;
             pump t
           end))
  end

(* Keep the wire busy: one frame in flight on our transmitter at a time,
   round-robin over connections with open windows. *)
and pump t =
  if (not t.sending) && t.flow_ok () && Array.length t.sources > 0 then begin
    let n = Array.length t.sources in
    let rec pick i remaining =
      if remaining = 0 then None
      else begin
        let s = t.sources.(i mod n) in
        if can_send s then Some (i mod n) else pick (i + 1) (remaining - 1)
      end
    in
    match pick t.rr n with
    | None -> ()
    | Some i ->
        t.rr <- (i + 1) mod n;
        let s = t.sources.(i) in
        let frame =
          Workload.Connection.frame_with_seq
            ~now:(Sim.Engine.now t.engine) s.src_conn ~seq:s.next
        in
        let frame =
          if t.materialize then Ethernet.Frame.with_data frame else frame
        in
        s.next <- s.next + 1;
        t.sourced <- t.sourced + 1;
        arm_rto t s;
        t.sending <- true;
        Ethernet.Link.send t.link ~from:Ethernet.Link.B frame
          ~on_wire_free:(fun () ->
            t.sending <- false;
            pump t)
  end

let start t = pump t

let on_ack t conn n =
  match Hashtbl.find_opt t.by_conn (Workload.Connection.id conn) with
  | None -> ()
  | Some s ->
      s.base <- min s.next (s.base + n);
      (* Window growth: slow start below the threshold, additive
         increase above it. *)
      let n_f = float_of_int n in
      if s.cwnd < s.ssthresh then s.cwnd <- s.cwnd +. n_f
      else s.cwnd <- s.cwnd +. (n_f /. Float.max 1. s.cwnd);
      let cap = float_of_int (Workload.Connection.window s.src_conn) in
      if s.cwnd > cap then s.cwnd <- cap;
      pump t

let kick t = pump t
let sunk t = t.sunk
let sourced t = t.sourced
let retransmissions t = t.retransmissions
let timeouts t = t.timeouts
let ignored t = t.ignored
