(** Reproductions of the paper's Figures 3 and 4: aggregate throughput as
    the number of guests scales, for Xen software virtualization
    (Intel NIC) and CDNA, with CDNA's idle time annotated. *)

type point = {
  guests : int;
  xen : Run.measurement;
  cdna : Run.measurement;
}

(** Guest counts used by the paper. *)
val paper_guest_counts : int list

(** [figure3 ()] sweeps transmit throughput over guest counts.
    [guest_counts] defaults to the paper's {1,2,4,8,12,16,20,24}. *)
val figure3 : ?quick:bool -> ?guest_counts:int list -> unit -> point list

(** [figure4 ()] — the receive sweep. *)
val figure4 : ?quick:bool -> ?guest_counts:int list -> unit -> point list

val print_figure :
  title:string -> pattern:Workload.Pattern.t -> point list -> unit

(** CSV series (guests, xen_mbps, cdna_mbps, cdna_idle_pct, xen_idle_pct). *)
val csv : point list -> string
