type paper_profile = {
  p_mbps : float;
  p_hyp : float;
  p_drv_os : float;
  p_drv_user : float;
  p_guest_os : float;
  p_guest_user : float;
  p_idle : float;
  p_drv_intr : float;
  p_guest_intr : float;
}

(* Published values (paper Tables 2-4). *)

let paper_t2_xen_intel =
  { p_mbps = 1602.; p_hyp = 19.8; p_drv_os = 35.7; p_drv_user = 0.8;
    p_guest_os = 39.7; p_guest_user = 1.0; p_idle = 3.0;
    p_drv_intr = 7438.; p_guest_intr = 7853. }

let paper_t2_xen_ricenic =
  { p_mbps = 1674.; p_hyp = 13.7; p_drv_os = 41.5; p_drv_user = 0.5;
    p_guest_os = 39.5; p_guest_user = 1.0; p_idle = 3.8;
    p_drv_intr = 8839.; p_guest_intr = 5661. }

let paper_t2_cdna =
  { p_mbps = 1867.; p_hyp = 10.2; p_drv_os = 0.3; p_drv_user = 0.2;
    p_guest_os = 37.8; p_guest_user = 0.7; p_idle = 50.8;
    p_drv_intr = 0.; p_guest_intr = 13659. }

let paper_t3_xen_intel =
  { p_mbps = 1112.; p_hyp = 25.7; p_drv_os = 36.8; p_drv_user = 0.5;
    p_guest_os = 31.0; p_guest_user = 1.0; p_idle = 5.0;
    p_drv_intr = 11138.; p_guest_intr = 5193. }

let paper_t3_xen_ricenic =
  { p_mbps = 1075.; p_hyp = 30.6; p_drv_os = 39.4; p_drv_user = 0.6;
    p_guest_os = 28.8; p_guest_user = 0.6; p_idle = 0.;
    p_drv_intr = 10946.; p_guest_intr = 5163. }

let paper_t3_cdna =
  { p_mbps = 1874.; p_hyp = 9.9; p_drv_os = 0.3; p_drv_user = 0.2;
    p_guest_os = 48.0; p_guest_user = 0.7; p_idle = 40.9;
    p_drv_intr = 0.; p_guest_intr = 7402. }

let paper_t4_tx_on = paper_t2_cdna

let paper_t4_tx_off =
  { p_mbps = 1867.; p_hyp = 1.9; p_drv_os = 0.2; p_drv_user = 0.2;
    p_guest_os = 37.0; p_guest_user = 0.3; p_idle = 60.4;
    p_drv_intr = 0.; p_guest_intr = 13680. }

let paper_t4_rx_on = paper_t3_cdna

let paper_t4_rx_off =
  { p_mbps = 1874.; p_hyp = 1.9; p_drv_os = 0.2; p_drv_user = 0.2;
    p_guest_os = 47.2; p_guest_user = 0.3; p_idle = 50.2;
    p_drv_intr = 0.; p_guest_intr = 7243. }

(* ---------- Table 1 ---------- *)

type t1_row = {
  t1_label : string;
  t1_tx : Run.measurement;
  t1_rx : Run.measurement;
  t1_paper_tx : float;
  t1_paper_rx : float;
}

let table1 ?(quick = false) () =
  let base =
    { Config.default with Config.nics = 6; nic = Config.Intel; guests = 1 }
  in
  let run system pattern =
    Run.run ~quick { base with Config.system; pattern }
  in
  [
    {
      t1_label = "Native Linux";
      t1_tx = run Config.Native Workload.Pattern.Tx;
      t1_rx = run Config.Native Workload.Pattern.Rx;
      t1_paper_tx = 5126.;
      t1_paper_rx = 3629.;
    };
    {
      t1_label = "Xen Guest";
      t1_tx = run Config.Xen_sw Workload.Pattern.Tx;
      t1_rx = run Config.Xen_sw Workload.Pattern.Rx;
      t1_paper_tx = 1602.;
      t1_paper_rx = 1112.;
    };
  ]

let print_table1 rows =
  print_endline "Table 1: transmit/receive, native vs Xen guest (6 Intel NICs)";
  Report.print
    ~header:
      [ "System"; "Tx Mb/s"; "(paper)"; "Rx Mb/s"; "(paper)" ]
    (List.map
       (fun r ->
         [
           r.t1_label;
           Report.mbps r.t1_tx.Run.tx_mbps;
           Report.mbps r.t1_paper_tx;
           Report.mbps r.t1_rx.Run.rx_mbps;
           Report.mbps r.t1_paper_rx;
         ])
       rows)

(* ---------- Tables 2/3 ---------- *)

type t23_row = {
  t23_label : string;
  t23_m : Run.measurement;
  t23_paper : paper_profile;
}

let t23_configs pattern =
  let base = { Config.default with Config.nics = 2; guests = 1; pattern } in
  [
    ( "Xen/Intel",
      { base with Config.system = Config.Xen_sw; nic = Config.Intel } );
    ( "Xen/RiceNIC",
      { base with Config.system = Config.Xen_sw; nic = Config.Ricenic } );
    ( "CDNA/RiceNIC",
      { base with Config.system = Config.Cdna_sys; nic = Config.Ricenic } );
  ]

let table2 ?(quick = false) () =
  List.map2
    (fun (label, cfg) paper ->
      { t23_label = label; t23_m = Run.run ~quick cfg; t23_paper = paper })
    (t23_configs Workload.Pattern.Tx)
    [ paper_t2_xen_intel; paper_t2_xen_ricenic; paper_t2_cdna ]

let table3 ?(quick = false) () =
  List.map2
    (fun (label, cfg) paper ->
      { t23_label = label; t23_m = Run.run ~quick cfg; t23_paper = paper })
    (t23_configs Workload.Pattern.Rx)
    [ paper_t3_xen_intel; paper_t3_xen_ricenic; paper_t3_cdna ]

let profile_cells (m : Run.measurement) =
  let p = m.Run.profile in
  [
    Report.mbps (Run.primary_mbps m);
    Report.pct p.Host.Profile.hyp;
    Report.pct p.Host.Profile.driver_kernel;
    Report.pct p.Host.Profile.driver_user;
    Report.pct p.Host.Profile.guest_kernel;
    Report.pct p.Host.Profile.guest_user;
    Report.pct p.Host.Profile.idle;
    Report.rate m.Run.driver_virq_per_sec;
    Report.rate m.Run.guest_virq_per_sec;
  ]

let paper_cells p =
  [
    Report.mbps p.p_mbps;
    Report.pct p.p_hyp;
    Report.pct p.p_drv_os;
    Report.pct p.p_drv_user;
    Report.pct p.p_guest_os;
    Report.pct p.p_guest_user;
    Report.pct p.p_idle;
    Report.rate p.p_drv_intr;
    Report.rate p.p_guest_intr;
  ]

let t23_header =
  [
    "System"; "Mb/s"; "Hyp"; "Drv-OS"; "Drv-Usr"; "Gst-OS"; "Gst-Usr";
    "Idle"; "Drv-int/s"; "Gst-int/s";
  ]

let print_table23 ~title rows =
  print_endline title;
  Report.print ~header:t23_header
    (List.concat_map
       (fun r ->
         [
           (r.t23_label ^ " (sim)") :: profile_cells r.t23_m;
           (r.t23_label ^ " (paper)") :: paper_cells r.t23_paper;
         ])
       rows)

(* ---------- Table 4 ---------- *)

let table4 ?(quick = false) () =
  let base =
    {
      Config.default with
      Config.nics = 2;
      guests = 1;
      system = Config.Cdna_sys;
      nic = Config.Ricenic;
    }
  in
  let run pattern protection =
    Run.run ~quick { base with Config.pattern; protection }
  in
  [
    {
      t23_label = "CDNA Tx (prot on)";
      t23_m = run Workload.Pattern.Tx Cdna.Cdna_costs.Full;
      t23_paper = paper_t4_tx_on;
    };
    {
      t23_label = "CDNA Tx (prot off)";
      t23_m = run Workload.Pattern.Tx Cdna.Cdna_costs.Disabled;
      t23_paper = paper_t4_tx_off;
    };
    {
      t23_label = "CDNA Rx (prot on)";
      t23_m = run Workload.Pattern.Rx Cdna.Cdna_costs.Full;
      t23_paper = paper_t4_rx_on;
    };
    {
      t23_label = "CDNA Rx (prot off)";
      t23_m = run Workload.Pattern.Rx Cdna.Cdna_costs.Disabled;
      t23_paper = paper_t4_rx_off;
    };
  ]

let print_table4 rows =
  print_endline
    "Table 4: CDNA 2-NIC transmit/receive with and without DMA protection";
  Report.print ~header:t23_header
    (List.concat_map
       (fun r ->
         [
           (r.t23_label ^ " (sim)") :: profile_cells r.t23_m;
           (r.t23_label ^ " (paper)") :: paper_cells r.t23_paper;
         ])
       rows)

let csv_table1 rows =
  Report.csv
    ~header:[ "system"; "tx_mbps"; "tx_paper"; "rx_mbps"; "rx_paper" ]
    (List.map
       (fun r ->
         [
           r.t1_label;
           Report.mbps r.t1_tx.Run.tx_mbps;
           Report.mbps r.t1_paper_tx;
           Report.mbps r.t1_rx.Run.rx_mbps;
           Report.mbps r.t1_paper_rx;
         ])
       rows)

let csv_table23 rows =
  Report.csv
    ~header:
      [
        "system"; "mbps"; "hyp"; "drv_os"; "drv_user"; "guest_os";
        "guest_user"; "idle"; "drv_intr"; "guest_intr";
      ]
    (List.concat_map
       (fun r ->
         [
           (r.t23_label ^ "/sim") :: profile_cells r.t23_m;
           (r.t23_label ^ "/paper") :: paper_cells r.t23_paper;
         ])
       rows)

let print_all ?(quick = false) () =
  print_table1 (table1 ~quick ());
  print_newline ();
  print_table23
    ~title:"Table 2: transmit, single guest, 2 NICs"
    (table2 ~quick ());
  print_newline ();
  print_table23
    ~title:"Table 3: receive, single guest, 2 NICs"
    (table3 ~quick ());
  print_newline ();
  print_table4 (table4 ~quick ())
