(** Reproductions of the paper's Tables 1-4.

    Each [tableN] runs the experiments and returns structured rows;
    [print_tableN] renders them next to the paper's published values so
    the comparison the paper invites is immediate. [quick] shortens runs
    (for tests); [mode] selects full protection (default) where relevant. *)

(** A cell of paper-reference data: the value printed in the paper. *)
type paper_profile = {
  p_mbps : float;
  p_hyp : float;
  p_drv_os : float;
  p_drv_user : float;
  p_guest_os : float;
  p_guest_user : float;
  p_idle : float;
  p_drv_intr : float;
  p_guest_intr : float;
}

(** {1 Table 1: native vs Xen guest, 6 NICs} *)

type t1_row = {
  t1_label : string;
  t1_tx : Run.measurement;
  t1_rx : Run.measurement;
  t1_paper_tx : float;
  t1_paper_rx : float;
}

val table1 : ?quick:bool -> unit -> t1_row list
val print_table1 : t1_row list -> unit

(** {1 Tables 2-3: single-guest transmit/receive, 2 NICs} *)

type t23_row = {
  t23_label : string;
  t23_m : Run.measurement;
  t23_paper : paper_profile;
}

val table2 : ?quick:bool -> unit -> t23_row list
val table3 : ?quick:bool -> unit -> t23_row list
val print_table23 : title:string -> t23_row list -> unit

(** {1 Table 4: CDNA with and without DMA protection} *)

val table4 : ?quick:bool -> unit -> t23_row list
val print_table4 : t23_row list -> unit

(** CSV serializations (same cells as the printed tables). *)
val csv_table1 : t1_row list -> string

val csv_table23 : t23_row list -> string

(** Run and print everything. *)
val print_all : ?quick:bool -> unit -> unit
