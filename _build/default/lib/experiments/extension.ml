type latency_row = {
  l_label : string;
  l_guests : int;
  l_m : Run.measurement;
}

let latency ?(quick = false) ?(guest_counts = [ 1; 4; 8 ]) () =
  let base =
    { Config.default with Config.nics = 2; pattern = Workload.Pattern.Tx }
  in
  List.concat_map
    (fun guests ->
      [
        {
          l_label = "Xen/Intel";
          l_guests = guests;
          l_m =
            Run.run ~quick
              {
                base with
                Config.system = Config.Xen_sw;
                nic = Config.Intel;
                guests;
              };
        };
        {
          l_label = "CDNA";
          l_guests = guests;
          l_m =
            Run.run ~quick
              {
                base with
                Config.system = Config.Cdna_sys;
                nic = Config.Ricenic;
                guests;
              };
        };
      ])
    guest_counts

let print_latency rows =
  print_endline
    "Extension: end-to-end packet latency, transmit (not in the paper)";
  Report.print
    ~header:[ "System"; "Guests"; "Mb/s"; "p50 latency"; "p99 latency" ]
    (List.map
       (fun r ->
         [
           r.l_label;
           string_of_int r.l_guests;
           Report.mbps (Run.primary_mbps r.l_m);
           Printf.sprintf "%.0f us" r.l_m.Run.latency_p50_us;
           Printf.sprintf "%.0f us" r.l_m.Run.latency_p99_us;
         ])
       rows)

type bidir_row = { b_label : string; b_m : Run.measurement }

let bidirectional ?(quick = false) () =
  let base =
    {
      Config.default with
      Config.nics = 2;
      guests = 1;
      pattern = Workload.Pattern.Bidirectional;
    }
  in
  [
    {
      b_label = "Xen/Intel";
      b_m =
        Run.run ~quick
          { base with Config.system = Config.Xen_sw; nic = Config.Intel };
    };
    {
      b_label = "CDNA/RiceNIC";
      b_m =
        Run.run ~quick
          { base with Config.system = Config.Cdna_sys; nic = Config.Ricenic };
    };
  ]

let print_bidirectional rows =
  print_endline
    "Extension: simultaneous transmit + receive, single guest (not in the paper)";
  Report.print
    ~header:[ "System"; "Tx Mb/s"; "Rx Mb/s"; "Total"; "Idle" ]
    (List.map
       (fun r ->
         [
           r.b_label;
           Report.mbps r.b_m.Run.tx_mbps;
           Report.mbps r.b_m.Run.rx_mbps;
           Report.mbps (r.b_m.Run.tx_mbps +. r.b_m.Run.rx_mbps);
           Report.pct r.b_m.Run.profile.Host.Profile.idle;
         ])
       rows)

type weight_row = { w_weight : int; w_m : Run.measurement }

let driver_weight ?(quick = false) ?(weights = [ 256; 512; 1024; 2048 ]) () =
  let base =
    {
      Config.default with
      Config.system = Config.Xen_sw;
      nic = Config.Intel;
      nics = 2;
      guests = 16;
      pattern = Workload.Pattern.Rx;
    }
  in
  List.map
    (fun w ->
      { w_weight = w; w_m = Run.run ~quick { base with Config.driver_weight = w } })
    weights

let print_driver_weight rows =
  print_endline
    "Extension: driver-domain scheduler weight, Xen receive, 16 guests (not in the paper)";
  Report.print
    ~header:[ "dom0 weight"; "Rx Mb/s"; "Drv-OS"; "Hyp"; "Drops" ]
    (List.map
       (fun r ->
         [
           string_of_int r.w_weight;
           Report.mbps r.w_m.Run.rx_mbps;
           Report.pct r.w_m.Run.profile.Host.Profile.driver_kernel;
           Report.pct r.w_m.Run.profile.Host.Profile.hyp;
           string_of_int r.w_m.Run.rx_drops;
         ])
       rows);
  print_endline
    "(Weight barely matters: netback is event-driven and blocks when idle,\n\
    \ so boost-on-wake already gives the driver domain the CPU it asks for\n\
    \ -- consistent with period reports that dom0 weighting did little for\n\
    \ I/O-bound loads. The bottleneck is per-packet work, not scheduling\n\
    \ share.)" 

type payload_row = {
  p_label : string;
  p_payload : int;
  p_m : Run.measurement;
}

let payload_sweep ?(quick = false) ?(sizes = [ 128; 512; 1024; 1500 ]) () =
  let base =
    { Config.default with Config.nics = 2; guests = 1; pattern = Workload.Pattern.Tx }
  in
  List.concat_map
    (fun payload ->
      [
        {
          p_label = "Xen/Intel";
          p_payload = payload;
          p_m =
            Run.run ~quick
              {
                base with
                Config.system = Config.Xen_sw;
                nic = Config.Intel;
                payload;
              };
        };
        {
          p_label = "CDNA";
          p_payload = payload;
          p_m =
            Run.run ~quick
              {
                base with
                Config.system = Config.Cdna_sys;
                nic = Config.Ricenic;
                payload;
              };
        };
      ])
    sizes

let print_payload_sweep rows =
  print_endline
    "Extension: transmit throughput vs packet size, single guest (not in the paper)";
  Report.print
    ~header:[ "System"; "Payload B"; "Goodput Mb/s"; "kpkt/s"; "Idle" ]
    (List.map
       (fun r ->
         let goodput_bytes = max 1 (r.p_payload - 52) in
         let kpps =
           r.p_m.Run.tx_mbps *. 1e6 /. 8.
           /. float_of_int goodput_bytes /. 1e3
         in
         [
           r.p_label;
           string_of_int r.p_payload;
           Report.mbps r.p_m.Run.tx_mbps;
           Printf.sprintf "%.0f" kpps;
           Report.pct r.p_m.Run.profile.Host.Profile.idle;
         ])
       rows)

type tso_row = { t_label : string; t_gso : int; t_m : Run.measurement }

let tso ?(quick = false) ?(segment_counts = [ 1; 4; 8 ]) () =
  let base =
    {
      Config.default with
      Config.system = Config.Cdna_sys;
      nics = 6;
      guests = 1;
      pattern = Workload.Pattern.Tx;
    }
  in
  List.map
    (fun gso ->
      {
        t_label = "CDNA+TSO";
        t_gso = gso;
        t_m = Run.run ~quick { base with Config.gso_segments = gso };
      })
    segment_counts

let print_tso rows =
  print_endline
    "Extension: hypothetical TSO on the CDNA NIC, 6 NICs, transmit (not in the paper)";
  Report.print
    ~header:[ "System"; "GSO segs"; "Goodput Mb/s"; "Gst-OS"; "Hyp"; "Idle" ]
    (List.map
       (fun r ->
         [
           r.t_label;
           string_of_int r.t_gso;
           Report.mbps r.t_m.Run.tx_mbps;
           Report.pct r.t_m.Run.profile.Host.Profile.guest_kernel;
           Report.pct r.t_m.Run.profile.Host.Profile.hyp;
           Report.pct r.t_m.Run.profile.Host.Profile.idle;
         ])
       rows)

let print_all ?(quick = false) () =
  print_latency (latency ~quick ());
  print_newline ();
  print_bidirectional (bidirectional ~quick ());
  print_newline ();
  print_driver_weight (driver_weight ~quick ());
  print_newline ();
  print_payload_sweep (payload_sweep ~quick ());
  print_newline ();
  print_tso (tso ~quick ())
