(** Extension experiments beyond the paper's evaluation.

    The paper measures throughput and CPU; two questions it leaves open
    are directly answerable with this simulator:

    - {b Latency}: CDNA removes the driver-domain store-and-forward hop
      and its scheduling delays from every packet. How much end-to-end
      latency does software I/O virtualization cost, and how does it grow
      with consolidation?
    - {b Bidirectional traffic}: the paper's tests are unidirectional.
      With both directions active the CPU costs of the two paths
      compound; does CDNA still hold its advantage?

    These are reported alongside the tables by the benchmark harness. *)

type latency_row = {
  l_label : string;
  l_guests : int;
  l_m : Run.measurement;
}

(** End-to-end packet latency (median / 99th percentile), Xen vs CDNA,
    transmit direction, at increasing guest counts. *)
val latency : ?quick:bool -> ?guest_counts:int list -> unit -> latency_row list

val print_latency : latency_row list -> unit

type bidir_row = { b_label : string; b_m : Run.measurement }

(** Simultaneous transmit + receive, single guest, 2 NICs. *)
val bidirectional : ?quick:bool -> unit -> bidir_row list

val print_bidirectional : bidir_row list -> unit

type weight_row = { w_weight : int; w_m : Run.measurement }

(** Driver-domain scheduler-weight sensitivity: does favouring the driver
    domain rescue Xen's receive throughput under consolidation? (16
    guests, receive.) A classic Xen-era tuning question the paper's
    testbed could not isolate. *)
val driver_weight : ?quick:bool -> ?weights:int list -> unit -> weight_row list

val print_driver_weight : weight_row list -> unit

type payload_row = {
  p_label : string;
  p_payload : int;
  p_m : Run.measurement;
}

(** Throughput vs. packet size (the paper fixes 1500-byte MTU packets):
    small packets shift the bottleneck entirely onto per-packet CPU costs,
    which is where CDNA's savings are. *)
val payload_sweep : ?quick:bool -> ?sizes:int list -> unit -> payload_row list

val print_payload_sweep : payload_row list -> unit

type tso_row = { t_label : string; t_gso : int; t_m : Run.measurement }

(** What if the RiceNIC had TCP segmentation offload? The paper (with
    Menon et al.) identifies TSO as the main software-only transmit
    optimization; CDNA-with-TSO composes both. Super-frames of N segments
    amortize every per-frame CPU cost while wire timing stays exact. Runs
    with 6 NICs so the CPU, not the wire, is the binding constraint. *)
val tso : ?quick:bool -> ?segment_counts:int list -> unit -> tso_row list

val print_tso : tso_row list -> unit

(** Run and print all extensions. *)
val print_all : ?quick:bool -> unit -> unit
