lib/experiments/report.mli:
