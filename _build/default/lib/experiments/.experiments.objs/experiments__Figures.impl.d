lib/experiments/figures.ml: Config Host List Printf Report Run Workload
