lib/experiments/tables.ml: Cdna Config Host List Report Run Workload
