lib/experiments/testbed.ml: Array Bus Cdna Config Cost_model Ethernet Guestos Hashtbl Host List Memory Nic Peer Printf Sim Workload Xen
