lib/experiments/report.ml: Array Buffer Float Fun List Printf String
