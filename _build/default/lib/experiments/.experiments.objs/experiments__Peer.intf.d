lib/experiments/peer.mli: Ethernet Sim Workload
