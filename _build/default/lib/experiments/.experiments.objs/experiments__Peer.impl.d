lib/experiments/peer.ml: Array Ethernet Float Hashtbl Option Sim Workload
