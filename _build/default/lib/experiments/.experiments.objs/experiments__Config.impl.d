lib/experiments/config.ml: Cdna Printf Sim Workload
