lib/experiments/cost_model.ml: Cdna Config Guestos Sim Xen
