lib/experiments/tables.mli: Run
