lib/experiments/cost_model.mli: Cdna Config Guestos Sim Xen
