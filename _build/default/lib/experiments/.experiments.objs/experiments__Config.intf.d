lib/experiments/config.mli: Cdna Sim Workload
