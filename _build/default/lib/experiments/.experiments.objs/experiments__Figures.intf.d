lib/experiments/figures.mli: Run Workload
