lib/experiments/testbed.mli: Cdna Config Cost_model Guestos Host Memory Nic Peer Sim Workload Xen
