lib/experiments/extension.mli: Run
