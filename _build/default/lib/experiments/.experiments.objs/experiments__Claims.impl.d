lib/experiments/claims.ml: Cdna Config Float Host List Printf Report Run Workload
