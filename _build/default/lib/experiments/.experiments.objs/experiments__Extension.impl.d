lib/experiments/extension.ml: Config Host List Printf Report Run Workload
