lib/experiments/run.ml: Config Format Host List Nic Option Sim Testbed Workload Xen
