lib/experiments/run.mli: Config Format Host
