lib/experiments/claims.mli:
