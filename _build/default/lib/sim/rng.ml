type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = int64 t in
  { state = mix s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Mask to OCaml's non-negative native-int range (62 value bits). *)
  let v = Int64.to_int (int64 t) land max_int in
  v mod bound

let float t bound =
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  (* 53 random bits mapped to [0,1). *)
  float_of_int v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Avoid log 0. *)
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
