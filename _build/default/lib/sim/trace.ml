type sink = time:Time.t -> tag:string -> string -> unit

let current_sink : sink option ref = ref None
let set_sink s = current_sink := s
let enabled () = Option.is_some !current_sink

let emit ~time ~tag msg =
  match !current_sink with
  | None -> ()
  | Some sink -> sink ~time ~tag (msg ())

let formatter_sink ppf ~time ~tag msg =
  Format.fprintf ppf "[%a] %s: %s@." Time.pp time tag msg
