(** Lightweight event tracing.

    Tracing is off by default and costs a closure allocation only when
    enabled, so datapath code can trace freely. Each record carries the
    simulated timestamp, a subsystem tag, and a message. *)

type sink = time:Time.t -> tag:string -> string -> unit

(** [set_sink (Some f)] enables tracing through [f]; [None] disables. *)
val set_sink : sink option -> unit

val enabled : unit -> bool

(** [emit ~time ~tag msg] sends a record to the sink if tracing is on.
    [msg] is lazy so formatting costs nothing when disabled. *)
val emit : time:Time.t -> tag:string -> (unit -> string) -> unit

(** A sink that prints ["\[%a\] %s: %s"] lines to the given formatter. *)
val formatter_sink : Format.formatter -> sink
