(** Simulated time.

    Time is an absolute count of nanoseconds since the start of the
    simulation, represented as a native [int] (63 bits on 64-bit platforms,
    i.e. ~292 simulated years — far beyond any experiment here). Durations
    use the same representation. *)

type t = int

val zero : t

(** {1 Constructors} *)

val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

(** [of_sec_f s] converts a duration in (fractional) seconds, rounding to the
    nearest nanosecond. Raises [Invalid_argument] if [s] is negative or not
    finite. *)
val of_sec_f : float -> t

(** [of_us_f u] converts a duration in (fractional) microseconds. Raises
    [Invalid_argument] on negative or non-finite input. *)
val of_us_f : float -> t

(** {1 Conversions} *)

val to_ns : t -> int
val to_sec_f : t -> float
val to_us_f : t -> float

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t

(** [diff a b] is [a - b], clamped at zero. *)
val diff : t -> t -> t

(** [mul_int d n] scales duration [d] by the non-negative integer [n]. *)
val mul_int : t -> int -> t

(** [div_int d n] divides duration [d] by positive [n]. *)
val div_int : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Derived quantities} *)

(** [rate_per_sec ~events ~elapsed] is the event rate in events/second over
    [elapsed]; 0 if [elapsed] is zero. *)
val rate_per_sec : events:int -> elapsed:t -> float

(** [bits_time ~bits ~rate_bps] is the time to serialize [bits] bits at
    [rate_bps] bits per second. Raises [Invalid_argument] if [rate_bps <= 0]
    or [bits < 0]. *)
val bits_time : bits:int -> rate_bps:int -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
