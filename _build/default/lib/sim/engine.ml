type event = {
  time : Time.t;
  mutable cancelled : bool;
  fn : unit -> unit;
}

type event_id = event

type t = {
  mutable now : Time.t;
  mutable fired : int;
  queue : event Heap.t;
}

let compare_event (a : event) (b : event) = Time.compare a.time b.time
let create () = { now = Time.zero; fired = 0; queue = Heap.create ~compare:compare_event }
let now t = t.now
let fired_count t = t.fired
let pending_count t = Heap.length t.queue

let schedule_at t time fn =
  if Time.compare time t.now < 0 then
    invalid_arg "Engine.schedule_at: time in the past";
  let ev = { time; cancelled = false; fn } in
  Heap.push t.queue ev;
  ev

let schedule t ~delay fn =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (Time.add t.now delay) fn

let cancel _t id = id.cancelled <- true

let fire t ev =
  t.now <- ev.time;
  t.fired <- t.fired + 1;
  ev.fn ()

let step t =
  let rec next () =
    match Heap.pop t.queue with
    | None -> false
    | Some ev when ev.cancelled -> next ()
    | Some ev ->
        fire t ev;
        true
  in
  next ()

let run t ~until =
  let rec loop () =
    match Heap.peek t.queue with
    | Some ev when ev.cancelled ->
        ignore (Heap.pop t.queue);
        loop ()
    | Some ev when Time.compare ev.time until <= 0 ->
        ignore (Heap.pop t.queue);
        fire t ev;
        loop ()
    | Some _ | None -> t.now <- Time.max t.now until
  in
  loop ()

let run_to_completion ?(limit = max_int) t =
  let rec loop n =
    if n >= limit then `Event_limit
    else if step t then loop (n + 1)
    else `Completed
  in
  loop 0
