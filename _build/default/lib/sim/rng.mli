(** Deterministic pseudo-random numbers (SplitMix64).

    Every stochastic choice in the simulator draws from an [Rng.t] so that a
    run is fully determined by its seed. SplitMix64 is small, fast, passes
    BigCrush, and supports cheap stream splitting for independent
    subsystems. *)

type t

val create : seed:int -> t

(** [split t] derives an independent generator; the parent advances. *)
val split : t -> t

val int64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

val bool : t -> bool

(** [exponential t ~mean] draws from an exponential distribution with the
    given mean (used for jittered inter-arrival times). *)
val exponential : t -> mean:float -> float

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
