lib/sim/trace.ml: Format Option Time
