lib/sim/rng.mli:
