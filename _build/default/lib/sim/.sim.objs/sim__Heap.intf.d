lib/sim/heap.mli:
