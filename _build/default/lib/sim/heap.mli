(** Imperative binary min-heap.

    Generic priority queue used by the event queue. Elements are ordered by
    the comparison function supplied at creation; ties are broken by
    insertion order (FIFO), which the discrete-event engine relies on for
    deterministic same-timestamp ordering. *)

type 'a t

(** [create ~compare] makes an empty heap ordered by [compare]. *)
val create : compare:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

(** [peek h] is the minimum element, or [None] when empty. *)
val peek : 'a t -> 'a option

(** [pop h] removes and returns the minimum element, or [None] when empty. *)
val pop : 'a t -> 'a option

(** [pop_exn h] removes and returns the minimum element.
    @raise Invalid_argument when empty. *)
val pop_exn : 'a t -> 'a

val clear : 'a t -> unit

(** [to_list h] is the elements in unspecified order (for debugging). *)
val to_list : 'a t -> 'a list
