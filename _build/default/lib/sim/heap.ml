type 'a entry = { value : 'a; seq : int }

type 'a t = {
  compare : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~compare = { compare; data = [||]; size = 0; next_seq = 0 }
let length h = h.size
let is_empty h = h.size = 0

(* Order by user comparison, then by insertion sequence for stability. *)
let entry_lt h a b =
  let c = h.compare a.value b.value in
  if c <> 0 then c < 0 else a.seq < b.seq

let grow h =
  let cap = Array.length h.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  (* Dummy slots share the first entry; they are never read past [size]. *)
  let data = Array.make new_cap h.data.(0) in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let push h v =
  let e = { value = v; seq = h.next_seq } in
  h.next_seq <- h.next_seq + 1;
  if h.size = 0 && Array.length h.data = 0 then h.data <- Array.make 16 e;
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  (* Sift up. *)
  let i = ref (h.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    entry_lt h h.data.(!i) h.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = h.data.(!i) in
    h.data.(!i) <- h.data.(parent);
    h.data.(parent) <- tmp;
    i := parent
  done

let peek h = if h.size = 0 then None else Some h.data.(0).value

let sift_down h =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.size && entry_lt h h.data.(l) h.data.(!smallest) then
      smallest := l;
    if r < h.size && entry_lt h h.data.(r) h.data.(!smallest) then
      smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(!smallest);
      h.data.(!smallest) <- tmp;
      i := !smallest
    end
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h
    end;
    Some top.value
  end

let pop_exn h =
  match pop h with
  | Some v -> v
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h =
  h.size <- 0;
  h.data <- [||]

let to_list h =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (h.data.(i).value :: acc)
  in
  build (h.size - 1) []
