(** Static NIC configuration. *)

type t = {
  name : string;
  link_rate_bps : int;  (** MAC line rate (1 Gb/s in the paper). *)
  tx_buffer_bytes : int;  (** On-NIC transmit packet buffering, shared. *)
  rx_buffer_bytes : int;  (** On-NIC receive packet buffering, shared. *)
  firmware_delay : Sim.Time.t;
      (** Processing delay between a mailbox event and the firmware acting
          on it (RiceNIC: embedded PowerPC dispatch). *)
  intr_min_gap : Sim.Time.t;
      (** Interrupt coalescing: minimum gap between physical interrupts. *)
  seqno_checking : bool;
      (** CDNA firmware validates descriptor sequence numbers. *)
  tso : bool;  (** TCP segmentation offload available (Intel yes, RiceNIC no). *)
  desc_layout : Memory.Desc_layout.t;
      (** The device's preferred DMA-descriptor format (paper section 3.4);
          drivers and the hypervisor serialize descriptors through it. *)
  materialize_payloads : bool;
      (** Move real payload bytes over DMA (integrity testing) rather than
          timing-only transfers (fast benchmarking). *)
}

(** RiceNIC defaults (128 KB tx + 128 KB rx per context in the paper; the
    shared pools here are sized for 32 contexts). *)
val ricenic : t

(** Intel Pro/1000-like defaults: TSO, 48 KB fifos, no CDNA features. *)
val intel : t

val pp : Format.formatter -> t -> unit
