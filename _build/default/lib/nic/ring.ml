type t = { base : Memory.Addr.t; slots : int; desc_bytes : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~base ~slots ?(desc_bytes = Memory.Dma_desc.size_bytes) () =
  if (not (is_power_of_two slots)) || slots < 2 || slots > 32768 then
    invalid_arg "Ring.create: slots must be a power of two in [2, 32768]";
  if base < 0 then invalid_arg "Ring.create: negative base";
  if desc_bytes <= 0 then invalid_arg "Ring.create: non-positive stride";
  { base; slots; desc_bytes }

let base t = t.base
let slots t = t.slots
let desc_bytes t = t.desc_bytes
let size_bytes t = t.slots * t.desc_bytes
let slot_addr t idx = t.base + ((idx land (t.slots - 1)) * t.desc_bytes)

let available ~prod ~cons =
  let n = prod - cons in
  if n < 0 then invalid_arg "Ring.available: consumer ahead of producer";
  n

let space t ~prod ~cons = t.slots - available ~prod ~cons
let is_empty ~prod ~cons = available ~prod ~cons = 0
let is_full t ~prod ~cons = space t ~prod ~cons = 0
