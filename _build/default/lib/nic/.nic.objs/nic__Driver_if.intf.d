lib/nic/driver_if.mli: Ethernet Memory Ring
