lib/nic/intel_nic.ml: Bus Coalesce Dp Driver_if Nic_config
