lib/nic/nic_config.ml: Format Memory Sim
