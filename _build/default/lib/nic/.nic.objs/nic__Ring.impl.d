lib/nic/ring.ml: Memory
