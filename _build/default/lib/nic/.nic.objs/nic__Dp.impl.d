lib/nic/dp.ml: Array Bus Bytes Char Ethernet Hashtbl List Memory Nic_config Option Pkt_buf Printf Queue Ring Sim
