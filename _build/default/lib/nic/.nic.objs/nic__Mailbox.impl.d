lib/nic/mailbox.ml: Array Bus
