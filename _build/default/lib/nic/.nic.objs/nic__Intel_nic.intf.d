lib/nic/intel_nic.mli: Bus Dp Driver_if Ethernet Memory Nic_config Sim
