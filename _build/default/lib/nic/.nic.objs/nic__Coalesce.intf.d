lib/nic/coalesce.mli: Sim
