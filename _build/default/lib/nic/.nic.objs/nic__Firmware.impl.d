lib/nic/firmware.ml: Array Bus Dp Driver_if Mailbox Memory Nic_config Option Printf Ring Sim
