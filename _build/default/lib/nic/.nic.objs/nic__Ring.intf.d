lib/nic/ring.mli: Memory
