lib/nic/pkt_buf.mli:
