lib/nic/mailbox.mli: Bus
