lib/nic/firmware.mli: Bus Dp Driver_if Mailbox Sim
