lib/nic/ricenic.ml: Bus Coalesce Dp Firmware Nic_config
