lib/nic/pkt_buf.ml:
