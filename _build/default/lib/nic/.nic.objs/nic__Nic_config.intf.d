lib/nic/nic_config.mli: Format Memory Sim
