lib/nic/ricenic.mli: Bus Dp Driver_if Ethernet Firmware Memory Nic_config Sim
