lib/nic/coalesce.ml: Sim
