lib/nic/dp.mli: Bus Ethernet Memory Nic_config Ring Sim
