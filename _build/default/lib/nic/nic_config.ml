type t = {
  name : string;
  link_rate_bps : int;
  tx_buffer_bytes : int;
  rx_buffer_bytes : int;
  firmware_delay : Sim.Time.t;
  intr_min_gap : Sim.Time.t;
  seqno_checking : bool;
  tso : bool;
  desc_layout : Memory.Desc_layout.t;
  materialize_payloads : bool;
}

let ricenic =
  {
    name = "RiceNIC";
    link_rate_bps = 1_000_000_000;
    (* 128 KB per direction per context, 32 contexts, managed globally. *)
    tx_buffer_bytes = 32 * 128 * 1024;
    rx_buffer_bytes = 32 * 128 * 1024;
    firmware_delay = Sim.Time.ns 500;
    intr_min_gap = Sim.Time.us 70;
    seqno_checking = false;
    tso = false;
    desc_layout = Memory.Desc_layout.default;
    materialize_payloads = false;
  }

let intel =
  {
    name = "Intel-Pro1000";
    link_rate_bps = 1_000_000_000;
    tx_buffer_bytes = 48 * 1024;
    rx_buffer_bytes = 48 * 1024;
    firmware_delay = Sim.Time.ns 200;
    intr_min_gap = Sim.Time.us 70;
    seqno_checking = false;
    tso = true;
    desc_layout = Memory.Desc_layout.default;
    materialize_payloads = false;
  }

let pp ppf t =
  Format.fprintf ppf "%s (%d Mb/s, tso=%b, seqno=%b)" t.name
    (t.link_rate_bps / 1_000_000) t.tso t.seqno_checking
