(** Interrupt coalescing.

    Rate-limits interrupt delivery the way NIC interrupt-throttling
    registers do: after firing, further requests within [min_gap] are
    merged into a single deferred firing. This is what keeps the paper's
    interrupt rates in the 5-14k/s range at 90-150k packets/s. *)

type t

(** [create engine ~min_gap ~fire] — [fire] is called for each delivered
    (possibly merged) interrupt. *)
val create : Sim.Engine.t -> min_gap:Sim.Time.t -> fire:(unit -> unit) -> t

(** Request an interrupt. Fires immediately if the gap has passed,
    otherwise schedules a merged firing at the earliest allowed time. *)
val request : t -> unit

(** Interrupts actually delivered. *)
val fired : t -> int

(** Requests merged away by coalescing. *)
val suppressed : t -> int
