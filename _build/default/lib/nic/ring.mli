(** Descriptor-ring layout and producer/consumer index arithmetic.

    A ring is a fixed array of {!Memory.Dma_desc} slots in host memory,
    shared between a driver (producer of tx descriptors / rx buffers) and
    the NIC (consumer). Indices are {e free-running} counters; the slot is
    the index modulo the ring size, and fullness is the index difference —
    the classic lock-free single-producer/single-consumer protocol the
    paper describes in section 2.2. *)

type t

(** [create ~base ~slots ()] describes a ring of [slots] descriptors
    starting at physical address [base]. [slots] must be a power of two in
    [\[2, 32768\]] — the upper bound keeps sequence numbers unambiguous
    (paper section 3.3: the max sequence number must be at least twice the
    ring size). [desc_bytes] is the descriptor stride, from the device's
    negotiated {!Memory.Desc_layout} (default: the 16-byte layout). *)
val create : base:Memory.Addr.t -> slots:int -> ?desc_bytes:int -> unit -> t

(** Descriptor stride in bytes. *)
val desc_bytes : t -> int

val base : t -> Memory.Addr.t
val slots : t -> int

(** Bytes of host memory occupied by the ring. *)
val size_bytes : t -> int

(** Physical address of the slot for free-running index [idx]. *)
val slot_addr : t -> int -> Memory.Addr.t

(** Entries available to the consumer: [prod - cons].
    @raise Invalid_argument if negative (protocol violation). *)
val available : prod:int -> cons:int -> int

(** Free slots left for the producer. *)
val space : t -> prod:int -> cons:int -> int

val is_empty : prod:int -> cons:int -> bool
val is_full : t -> prod:int -> cons:int -> bool
