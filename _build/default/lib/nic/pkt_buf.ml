type t = {
  capacity : int;
  mutable used : int;
  mutable drops : int;
  mutable peak : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Pkt_buf.create: non-positive capacity";
  { capacity; used = 0; drops = 0; peak = 0 }

let capacity t = t.capacity
let in_use t = t.used

let try_reserve t ~bytes =
  if bytes < 0 then invalid_arg "Pkt_buf.try_reserve: negative size";
  if t.used + bytes > t.capacity then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    t.used <- t.used + bytes;
    if t.used > t.peak then t.peak <- t.used;
    true
  end

let release t ~bytes =
  if bytes < 0 || bytes > t.used then invalid_arg "Pkt_buf.release: underflow";
  t.used <- t.used - bytes

let drops t = t.drops
let peak t = t.peak
