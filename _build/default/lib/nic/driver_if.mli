(** Driver-facing hardware interface.

    The synchronous operations a device driver performs on its NIC (or, for
    CDNA, on its private hardware context): ring setup, doorbell writes,
    and completion retrieval. Produced by {!Intel_nic}, {!Ricenic}, and the
    CDNA NIC for a specific context; consumed by the drivers in the
    [guestos] library.

    These closures only mutate simulated hardware state; the CPU cost of
    invoking them is accounted by the calling driver's work items. *)

type t = {
  describe : string;
  desc_layout : Memory.Desc_layout.t;
      (** The device's negotiated descriptor format; the driver (or the
          hypervisor, for CDNA) must serialize descriptors through it. *)
  setup_tx_ring : Ring.t -> unit;
  setup_rx_ring : Ring.t -> unit;
  setup_status : Memory.Addr.t -> unit;
  tx_doorbell : int -> unit;  (** Publish free-running tx producer index. *)
  rx_doorbell : int -> unit;
  stage_tx_meta : Ethernet.Frame.t -> unit;
      (** Out-of-band packet metadata, one per tx descriptor, ring order. *)
  take_tx_completions : unit -> int;
  take_rx_completions : max:int -> (int * Ethernet.Frame.t) list;
  rx_completions_pending : unit -> int;
}
