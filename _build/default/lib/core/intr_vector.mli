(** Interrupt bit vectors (paper section 3.2).

    The CDNA NIC tracks which contexts have new completion state since the
    last physical interrupt in a bit vector, DMA-writes the vector into a
    circular buffer in hypervisor memory, and only then raises the
    physical interrupt. The buffer uses a producer/consumer protocol so
    vectors are never overwritten before the hypervisor processes them.

    The NIC side posts vectors through the DMA engine (real memory
    writes); the hypervisor side drains them from memory in its interrupt
    service routine. *)

type t

(** [create ~mem ~dma ~base ~slots ~dma_context] — the buffer occupies
    [slots] 8-byte vector slots starting at hypervisor address [base].
    [slots] must be a power of two in [\[2, 4096\]]. *)
val create :
  mem:Memory.Phys_mem.t ->
  dma:Bus.Dma_engine.t ->
  base:Memory.Addr.t ->
  slots:int ->
  dma_context:int ->
  t

val slots : t -> int
val base : t -> Memory.Addr.t

(** Free producer slots. *)
val space : t -> int

(** {1 NIC side} *)

(** [try_post t ~bits ~on_done] DMA-writes the vector into the next slot.
    Returns false (without side effects) when the buffer is full — the NIC
    must hold its interrupt and retry. [on_done] fires when the write has
    landed in host memory (the NIC raises its physical interrupt there). *)
val try_post : t -> bits:int -> on_done:(unit -> unit) -> bool

(** {1 Hypervisor side} *)

(** [drain t] reads all pending vectors from memory (in order) and
    advances the consumer. *)
val drain : t -> int list

(** {1 Counters} *)

val posted : t -> int
val drained : t -> int
