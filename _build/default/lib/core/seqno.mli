(** Descriptor sequence numbers (paper section 3.3).

    The hypervisor stamps each enqueued DMA descriptor with a strictly
    increasing sequence number modulo 2^16; the NIC verifies continuity
    before using a descriptor. Because a stale descriptor — one reused
    from an earlier trip around the ring — carries a sequence number
    exactly [ring_slots] behind the expected value, keeping the modulus at
    least twice the ring size guarantees staleness is always detected
    (no aliasing). *)

(** 2^16. *)
val modulus : int

(** Largest ring size for which stale descriptors cannot alias
    ([modulus / 2]). *)
val max_ring_slots : int

(** [next c] advances a counter. *)
val next : int -> int

(** [continuous ~expected ~got] — does [got] continue the sequence? *)
val continuous : expected:int -> got:int -> bool

(** The sequence number a stale descriptor would carry: the expected value
    minus the ring size, modulo {!modulus}. *)
val stale_value : expected:int -> ring_slots:int -> int

(** [aliases ~ring_slots] — true when a stale descriptor would be
    indistinguishable from a fresh one (only for invalid ring sizes). *)
val aliases : ring_slots:int -> bool
