let modulus = 1 lsl 16
let max_ring_slots = modulus / 2
let next c = (c + 1) mod modulus
let continuous ~expected ~got = got = expected mod modulus

let stale_value ~expected ~ring_slots =
  ((expected - ring_slots) mod modulus + modulus) mod modulus

let aliases ~ring_slots = ring_slots mod modulus = 0
