lib/core/seqno.mli:
