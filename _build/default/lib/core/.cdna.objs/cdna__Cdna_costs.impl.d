lib/core/cdna_costs.ml: Sim
