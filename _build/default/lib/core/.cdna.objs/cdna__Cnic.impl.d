lib/core/cnic.ml: Bus Intr_vector Nic Sim
