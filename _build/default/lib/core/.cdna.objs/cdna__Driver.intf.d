lib/core/driver.mli: Guestos Hyp
