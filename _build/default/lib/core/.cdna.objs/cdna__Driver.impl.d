lib/core/driver.ml: Array Cdna_costs Cnic Ethernet Guestos Hyp List Memory Nic Option Queue Sim Xen
