lib/core/hyp.mli: Cdna_costs Cnic Ethernet Host Memory Nic Sim Xen
