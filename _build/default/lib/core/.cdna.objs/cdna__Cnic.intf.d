lib/core/cnic.mli: Bus Ethernet Intr_vector Memory Nic Sim
