lib/core/intr_vector.mli: Bus Memory
