lib/core/seqno.ml:
