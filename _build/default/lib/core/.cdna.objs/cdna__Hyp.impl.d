lib/core/hyp.ml: Array Bus Cdna_costs Cnic Ethernet Host Intr_vector List Memory Nic Printf Queue Seqno Sim Xen
