lib/core/intr_vector.ml: Bus Bytes Char List Memory
