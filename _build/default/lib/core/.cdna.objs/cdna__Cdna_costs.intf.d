lib/core/cdna_costs.mli: Sim
