type t = {
  mem : Memory.Phys_mem.t;
  dma : Bus.Dma_engine.t;
  base : Memory.Addr.t;
  slots : int;
  dma_context : int;
  mutable prod : int; (* next slot the NIC writes; free-running *)
  mutable in_flight : int; (* posts issued, not yet landed *)
  mutable cons : int; (* next slot the hypervisor reads *)
  mutable posted : int;
  mutable drained : int;
}

let slot_bytes = 8

let create ~mem ~dma ~base ~slots ~dma_context =
  if slots < 2 || slots > 4096 || slots land (slots - 1) <> 0 then
    invalid_arg "Intr_vector.create: slots must be a power of two in [2, 4096]";
  {
    mem;
    dma;
    base;
    slots;
    dma_context;
    prod = 0;
    in_flight = 0;
    cons = 0;
    posted = 0;
    drained = 0;
  }

let slots t = t.slots
let base t = t.base
let space t = t.slots - (t.prod - t.cons)

let slot_addr t idx = t.base + (idx land (t.slots - 1)) * slot_bytes

let try_post t ~bits ~on_done =
  if space t <= 0 then false
  else begin
    let idx = t.prod in
    t.prod <- idx + 1;
    t.in_flight <- t.in_flight + 1;
    let data = Bytes.create slot_bytes in
    for i = 0 to slot_bytes - 1 do
      Bytes.set data i (Char.chr ((bits lsr (8 * i)) land 0xff))
    done;
    Bus.Dma_engine.write t.dma ~context:t.dma_context ~addr:(slot_addr t idx)
      ~data (fun _ ->
        t.in_flight <- t.in_flight - 1;
        t.posted <- t.posted + 1;
        on_done ());
    true
  end

let drain t =
  (* Only vectors whose DMA has landed are visible to the host. *)
  let landed = t.prod - t.in_flight in
  let rec take acc =
    if t.cons >= landed then List.rev acc
    else begin
      let v = Memory.Phys_mem.read_u64 t.mem ~addr:(slot_addr t t.cons) in
      t.cons <- t.cons + 1;
      t.drained <- t.drained + 1;
      take (v :: acc)
    end
  in
  take []

let posted t = t.posted
let drained t = t.drained
