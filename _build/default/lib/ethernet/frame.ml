type kind = Data | Ack of int

type t = {
  src : Mac_addr.t;
  dst : Mac_addr.t;
  kind : kind;
  flow : int;
  seq : int;
  segments : int;
  payload_len : int;
  payload_seed : int;
  data : Bytes.t option;
}

let jumbo_limit = 9000

let make ~src ~dst ~kind ~flow ~seq ?(segments = 1) ~payload_len ~payload_seed
    () =
  if segments < 1 then invalid_arg "Frame.make: segments must be positive";
  if payload_len < 0 || payload_len > segments * jumbo_limit then
    invalid_arg "Frame.make: payload length out of range";
  { src; dst; kind; flow; seq; segments; payload_len; payload_seed; data = None }

let materialize_payload ~seed ~len =
  let b = Bytes.create len in
  (* xorshift-style byte stream; cheap and deterministic. *)
  let state = ref (seed lor 1) in
  for i = 0 to len - 1 do
    state := !state lxor (!state lsl 13);
    state := !state lxor (!state lsr 7);
    state := !state lxor (!state lsl 17);
    Bytes.set b i (Char.chr (!state land 0xff))
  done;
  b

let with_data t =
  { t with data = Some (materialize_payload ~seed:t.payload_seed ~len:t.payload_len) }

let data_valid t =
  match t.data with
  | None -> true
  | Some d ->
      Bytes.equal d (materialize_payload ~seed:t.payload_seed ~len:t.payload_len)

let payload_crc t =
  Crc32.digest (materialize_payload ~seed:t.payload_seed ~len:t.payload_len)

let overhead_bytes = 18
let min_payload = 46

let wire_bytes t =
  (overhead_bytes * t.segments) + max min_payload t.payload_len

(* Preamble+SFD (8) and inter-frame gap (12) occupy the wire as well,
   once per segment. *)
let wire_bits t = (wire_bytes t + (20 * t.segments)) * 8

let pp ppf t =
  let kind =
    match t.kind with Data -> "data" | Ack n -> Printf.sprintf "ack(%d)" n
  in
  Format.fprintf ppf "%a->%a %s flow=%d seq=%d len=%d" Mac_addr.pp t.src
    Mac_addr.pp t.dst kind t.flow t.seq t.payload_len
