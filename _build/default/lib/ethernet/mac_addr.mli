(** 48-bit Ethernet MAC addresses.

    CDNA associates a unique MAC address with each NIC context and uses it
    to demultiplex received traffic (paper section 3.1). *)

type t

(** [make i] is a deterministic locally-administered unicast address for
    index [i] (distinct for distinct [i] in [\[0, 2^40)]).
    @raise Invalid_argument outside that range. *)
val make : int -> t

val broadcast : t

(** [of_int48 v] uses the low 48 bits of [v] directly. *)
val of_int48 : int -> t

val to_int48 : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val is_broadcast : t -> bool
val is_multicast : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
