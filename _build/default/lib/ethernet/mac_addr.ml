type t = int (* low 48 bits *)

let mask48 = (1 lsl 48) - 1

let make i =
  if i < 0 || i >= 1 lsl 40 then invalid_arg "Mac_addr.make: index out of range";
  (* 0x02 in the first octet: locally administered, unicast. *)
  (0x02 lsl 40) lor i

let broadcast = mask48
let of_int48 v = v land mask48
let to_int48 t = t
let equal = Int.equal
let compare = Int.compare
let hash t = t
let is_broadcast t = t = broadcast
let is_multicast t = (t lsr 40) land 0x01 = 1

let pp ppf t =
  Format.fprintf ppf "%02x:%02x:%02x:%02x:%02x:%02x" ((t lsr 40) land 0xff)
    ((t lsr 32) land 0xff)
    ((t lsr 24) land 0xff)
    ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff)
    (t land 0xff)

let to_string t = Format.asprintf "%a" pp t
