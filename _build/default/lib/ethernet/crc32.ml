let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let digest_sub b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.digest_sub: bad bounds";
  let table = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code (Bytes.get b i)) land 0xff) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let digest b = digest_sub b ~pos:0 ~len:(Bytes.length b)
