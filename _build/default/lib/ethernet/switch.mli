(** Learning Ethernet switch.

    The external-network substrate: ports deliver frames to attached
    handlers; source MACs are learned so subsequent frames unicast; unknown
    and broadcast destinations flood. The fabric itself is non-blocking
    (links model serialization). *)

type t
type port

val create : unit -> t

(** [add_port t f] attaches a port whose egress is [f]. *)
val add_port : t -> (Frame.t -> unit) -> port

val port_count : t -> int

(** [ingress t port frame] accepts [frame] arriving on [port]: learns the
    source MAC and forwards (never back out the ingress port). *)
val ingress : t -> port -> Frame.t -> unit

(** Where a MAC was last seen, if learned. *)
val lookup : t -> Mac_addr.t -> port option

val port_equal : port -> port -> bool

(** Frames flooded because the destination was unknown (diagnostic). *)
val floods : t -> int
