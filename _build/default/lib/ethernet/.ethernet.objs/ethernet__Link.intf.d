lib/ethernet/link.mli: Frame Sim
