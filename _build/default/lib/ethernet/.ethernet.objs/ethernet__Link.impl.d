lib/ethernet/link.ml: Frame Sim
