lib/ethernet/crc32.mli: Bytes
