lib/ethernet/mac_addr.ml: Format Int
