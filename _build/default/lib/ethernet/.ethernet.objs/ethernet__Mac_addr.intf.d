lib/ethernet/mac_addr.mli: Format
