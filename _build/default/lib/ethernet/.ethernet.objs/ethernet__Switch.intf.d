lib/ethernet/switch.mli: Frame Mac_addr
