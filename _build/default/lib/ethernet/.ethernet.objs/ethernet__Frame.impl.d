lib/ethernet/frame.ml: Bytes Char Crc32 Format Mac_addr Printf
