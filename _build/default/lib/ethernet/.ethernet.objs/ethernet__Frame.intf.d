lib/ethernet/frame.mli: Bytes Format Mac_addr
