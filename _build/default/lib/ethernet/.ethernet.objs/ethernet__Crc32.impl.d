lib/ethernet/crc32.ml: Array Bytes Char Lazy
