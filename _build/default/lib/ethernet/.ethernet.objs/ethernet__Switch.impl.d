lib/ethernet/switch.ml: Frame Hashtbl List Mac_addr
