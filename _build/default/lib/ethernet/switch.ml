type port = { id : int; egress : Frame.t -> unit }

type t = {
  mutable ports : port list; (* insertion order *)
  fdb : (Mac_addr.t, port) Hashtbl.t;
  mutable floods : int;
}

let create () = { ports = []; fdb = Hashtbl.create 64; floods = 0 }

let add_port t egress =
  let p = { id = List.length t.ports; egress } in
  t.ports <- t.ports @ [ p ];
  p

let port_count t = List.length t.ports
let port_equal a b = a.id = b.id

let ingress t port frame =
  Hashtbl.replace t.fdb frame.Frame.src port;
  let dst = frame.Frame.dst in
  if Mac_addr.is_broadcast dst || Mac_addr.is_multicast dst then begin
    t.floods <- t.floods + 1;
    List.iter (fun p -> if p.id <> port.id then p.egress frame) t.ports
  end
  else
    match Hashtbl.find_opt t.fdb dst with
    | Some p when p.id <> port.id -> p.egress frame
    | Some _ -> () (* destination is behind the ingress port; drop *)
    | None ->
        t.floods <- t.floods + 1;
        List.iter (fun p -> if p.id <> port.id then p.egress frame) t.ports

let lookup t mac = Hashtbl.find_opt t.fdb mac
let floods t = t.floods
