(** CRC-32 (IEEE 802.3), used as the frame check sequence and as the
    payload-integrity checksum in end-to-end tests. *)

(** [digest b] is the CRC-32 of all of [b]. *)
val digest : Bytes.t -> int

(** [digest_sub b ~pos ~len] checksums a slice.
    @raise Invalid_argument on bad bounds. *)
val digest_sub : Bytes.t -> pos:int -> len:int -> int
