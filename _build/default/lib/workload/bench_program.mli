(** The guest-side benchmark application.

    Reimplements the paper's lightweight benchmark program (section 5.1):
    it distributes traffic across a configurable number of connections and
    balances bandwidth across them. Per guest, the program owns a set of
    {e streams} — (network stack, connection) pairs, possibly spread over
    several stacks/NICs — and:

    - {b transmit role}: keeps every connection's window full, batching
      refills per stream and paying user-space CPU time per packet;
    - {b receive role}: consumes delivered frames, verifies them against
      their connection, and acknowledges to the peer (out of band — ack
      wire traffic is folded into the CPU cost model; see DESIGN.md).

    Balancing: refills round-robin across a stream's connections, so no
    connection starves another. *)

type t

(** [create engine ~post_user ~costs ~ack:(fun conn n -> ...) ()] —
    [post_user] schedules user-context work for this guest; [ack] tells
    the peer that [n] packets of [conn] were consumed (receive role).
    [min_refill_interval] (default 80 us) paces window refills so that
    acknowledgements batch as they would under a real event loop.
    [gso_segments > 1] hands the stack TSO/GSO super-frames of up to that
    many MTU segments, amortizing all per-frame CPU costs — only
    meaningful when the device can segment in hardware. *)
val create :
  Sim.Engine.t ->
  ?min_refill_interval:Sim.Time.t ->
  ?gso_segments:int ->
  post_user:(cost:Sim.Time.t -> (unit -> unit) -> unit) ->
  costs:Guestos.Os_costs.t ->
  ack:(Connection.t -> int -> unit) ->
  unit ->
  t

(** [add_stream t ~stack ~tx ~rx] registers a stack with the connections
    this program transmits on ([tx] — their windows are kept full) and
    those it only receives from ([rx]). Installs the stack's receive
    handler and writable hook. *)
val add_stream :
  t ->
  stack:Guestos.Net_stack.t ->
  tx:Connection.t list ->
  rx:Connection.t list ->
  unit

(** Start the transmit role: fill all windows. (No-op for pure receivers:
    with no credits consumed nothing is sent.) *)
val start : t -> unit

(** The peer acknowledged [n] packets of [conn]: return the credits and
    keep the window full. Called (indirectly) by the experiment peer. *)
val on_credit : t -> Connection.t -> int -> unit

(** Frames consumed by this guest's application. *)
val consumed : t -> int

(** Frames whose payload failed integrity verification. *)
val integrity_failures : t -> int

(** Frames delivered that matched no registered connection. *)
val stray_frames : t -> int
