type t = {
  id : int;
  window : int;
  payload_len : int;
  src : Ethernet.Mac_addr.t;
  dst : Ethernet.Mac_addr.t;
  mutable in_flight : int;
  mutable next_seq : int;
  mutable expected_rx : int;
  mutable sent : int;
  mutable received : int;
  mutable rejected : int;
  mutable integrity_failures : int;
  (* Send timestamps of in-flight sequence numbers, for latency. *)
  sent_at : (int, Sim.Time.t) Hashtbl.t;
  latency : Sim.Stats.Histogram.t;
}

let create ~id ~window ~payload_len ~src ~dst =
  if window <= 0 then invalid_arg "Connection.create: non-positive window";
  if payload_len <= 0 then invalid_arg "Connection.create: empty payload";
  {
    id;
    window;
    payload_len;
    src;
    dst;
    in_flight = 0;
    next_seq = 0;
    expected_rx = 0;
    sent = 0;
    received = 0;
    rejected = 0;
    integrity_failures = 0;
    sent_at = Hashtbl.create 64;
    latency = Sim.Stats.Histogram.create ();
  }

let id t = t.id
let window t = t.window
let payload_len t = t.payload_len
let src t = t.src
let dst t = t.dst
let credits t = max 0 (t.window - t.in_flight)

let take_credits t n =
  let k = min n (credits t) in
  t.in_flight <- t.in_flight + k;
  k

let add_credits t n = t.in_flight <- max 0 (t.in_flight - n)

let payload_seed ~conn ~seq = (conn * 1_000_003) + seq + 1

let frame_with_seq ?now t ~seq =
  (match now with
  | Some time -> Hashtbl.replace t.sent_at seq time
  | None -> ());
  Ethernet.Frame.make ~src:t.src ~dst:t.dst ~kind:Ethernet.Frame.Data
    ~flow:t.id ~seq ~payload_len:t.payload_len
    ~payload_seed:(payload_seed ~conn:t.id ~seq)
    ()

let make_frame ?now ?(segments = 1) t =
  let seq = t.next_seq in
  t.next_seq <- seq + segments;
  t.sent <- t.sent + segments;
  if segments = 1 then frame_with_seq ?now t ~seq
  else begin
    (match now with
    | Some time -> Hashtbl.replace t.sent_at seq time
    | None -> ());
    Ethernet.Frame.make ~src:t.src ~dst:t.dst ~kind:Ethernet.Frame.Data
      ~flow:t.id ~seq ~segments
      ~payload_len:(t.payload_len * segments)
      ~payload_seed:(payload_seed ~conn:t.id ~seq)
      ()
  end

let record_received ?now t frame =
  if frame.Ethernet.Frame.seq = t.expected_rx then begin
    t.expected_rx <- t.expected_rx + frame.Ethernet.Frame.segments;
    t.received <- t.received + frame.Ethernet.Frame.segments;
    if not (Ethernet.Frame.data_valid frame) then
      t.integrity_failures <- t.integrity_failures + 1;
    (match (now, Hashtbl.find_opt t.sent_at frame.Ethernet.Frame.seq) with
    | Some arrival, Some departure ->
        Hashtbl.remove t.sent_at frame.Ethernet.Frame.seq;
        Sim.Stats.Histogram.add t.latency (Sim.Time.diff arrival departure)
    | _ -> ());
    `Accepted
  end
  else begin
    t.rejected <- t.rejected + 1;
    `Rejected
  end

let latency t = t.latency

let sent t = t.sent
let received t = t.received
let rejected t = t.rejected
let integrity_failures t = t.integrity_failures

let reset_counters t =
  t.sent <- 0;
  t.received <- 0;
  t.rejected <- 0;
  t.integrity_failures <- 0;
  Hashtbl.reset t.sent_at;
  Sim.Stats.Histogram.reset t.latency
