type t = Tx | Rx | Bidirectional

let guest_transmits = function Tx | Bidirectional -> true | Rx -> false
let guest_receives = function Rx | Bidirectional -> true | Tx -> false

let to_string = function
  | Tx -> "transmit"
  | Rx -> "receive"
  | Bidirectional -> "bidirectional"

let pp ppf t = Format.pp_print_string ppf (to_string t)
