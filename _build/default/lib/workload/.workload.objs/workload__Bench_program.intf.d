lib/workload/bench_program.mli: Connection Guestos Sim
