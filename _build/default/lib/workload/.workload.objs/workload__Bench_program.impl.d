lib/workload/bench_program.ml: Array Connection Ethernet Guestos Hashtbl List Sim
