lib/workload/pattern.mli: Format
