lib/workload/connection.ml: Ethernet Hashtbl Sim
