lib/workload/pattern.ml: Format
