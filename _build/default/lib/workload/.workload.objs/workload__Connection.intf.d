lib/workload/connection.mli: Ethernet Sim
