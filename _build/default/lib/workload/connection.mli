(** A benchmark connection.

    The paper's evaluation uses "a multithreaded, event-driven, lightweight
    network benchmark program ... to distribute traffic across a
    configurable number of connections", balancing bandwidth across them.
    A connection here is a closed-loop, window-limited packet stream
    between one guest and the ideal peer: the sender may have at most
    [window] unacknowledged packets in flight, which reproduces TCP's
    flow-control behaviour without a TCP stack (see DESIGN.md).

    One [Connection.t] instance describes the stream; the sending side
    tracks credits, the receiving side counts deliveries and verifies
    payload integrity. *)

type t

(** [create ~id ~window ~payload_len ~src ~dst] — [src]/[dst] are the MACs
    of sender and receiver for the data direction. *)
val create :
  id:int ->
  window:int ->
  payload_len:int ->
  src:Ethernet.Mac_addr.t ->
  dst:Ethernet.Mac_addr.t ->
  t

val id : t -> int
val window : t -> int
val payload_len : t -> int
val src : t -> Ethernet.Mac_addr.t
val dst : t -> Ethernet.Mac_addr.t

(** {1 Sender side} *)

(** Packets that may be sent right now (window minus in-flight). *)
val credits : t -> int

(** [take_credits t n] consumes up to [n] credits, returning the number
    taken, and builds nothing — callers create frames with {!make_frame}. *)
val take_credits : t -> int -> int

(** [add_credits t n] returns credits (acknowledgement arrived). Clamped
    so in-flight never goes negative. *)
val add_credits : t -> int -> unit

(** Next frame of the stream ([seq] advances; payload seed is derived
    deterministically from [(id, seq)]). Passing [now] stamps the send
    time for end-to-end latency measurement. [segments > 1] builds a
    TSO/GSO super-frame covering that many sequence numbers at once, each
    carrying one [payload_len] segment. *)
val make_frame : ?now:Sim.Time.t -> ?segments:int -> t -> Ethernet.Frame.t

(** [frame_with_seq t seq] builds the frame for an explicit sequence
    number without advancing the stream — used by the retransmitting
    peer. Payload contents are identical to the original transmission;
    [now] re-stamps the send time (latency is measured from the last
    transmission, as TCP RTT estimators do). *)
val frame_with_seq : ?now:Sim.Time.t -> t -> seq:int -> Ethernet.Frame.t

val sent : t -> int

(** {1 Receiver side}

    Reception is cumulative and in-order, like TCP: only the next expected
    sequence number is accepted; anything else (a gap after loss, or a
    duplicate from retransmission) is rejected and must be retransmitted
    by the sender. *)

(** [record_received t frame] verifies and accepts or rejects the frame.
    With [now], an accepted frame whose send time was stamped contributes
    to the latency histogram. *)
val record_received :
  ?now:Sim.Time.t -> t -> Ethernet.Frame.t -> [ `Accepted | `Rejected ]

(** End-to-end delivery latencies (ns samples), sender stamp to in-order
    acceptance. *)
val latency : t -> Sim.Stats.Histogram.t

(** In-order frames delivered. *)
val received : t -> int

(** Frames rejected as out-of-order or duplicate. *)
val rejected : t -> int

val integrity_failures : t -> int

(** {1 Measurement} *)

val reset_counters : t -> unit
