(** Traffic direction of a benchmark run. *)

type t =
  | Tx  (** Guests transmit; the peer sinks and acknowledges. *)
  | Rx  (** The peer transmits; guests sink and acknowledge. *)
  | Bidirectional

val guest_transmits : t -> bool
val guest_receives : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
