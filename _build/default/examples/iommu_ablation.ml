(* Protection-mechanism ablation (paper sections 3.3 and 5.3).

   Compares the three ways a CDNA system can keep guest DMA safe:

   - Full     : hypercall validation + page pinning + sequence numbers
                (the paper's implementation);
   - Iommu    : a per-context IOMMU checked by the DMA engine, with the
                hypervisor only maintaining table entries (what the paper
                proposes AMD's IOMMU be extended into);
   - Disabled : no protection at all — the upper bound Table 4 measures.

   Throughput is identical in all three (the NICs are the bottleneck);
   what moves is hypervisor time and therefore idle headroom.

   Run with: dune exec examples/iommu_ablation.exe *)

let run protection =
  Experiments.Run.run ~quick:true
    {
      Experiments.Config.default with
      Experiments.Config.system = Experiments.Config.Cdna_sys;
      pattern = Workload.Pattern.Tx;
      protection;
    }

let label = function
  | Cdna.Cdna_costs.Full -> "full (hypercall validation)"
  | Cdna.Cdna_costs.Iommu -> "iommu (per-context table)"
  | Cdna.Cdna_costs.Disabled -> "disabled (upper bound)"

let () =
  print_endline "CDNA DMA-protection ablation (single guest, 2 NICs, transmit)";
  print_newline ();
  let rows =
    List.map
      (fun p ->
        let m = run p in
        [
          label p;
          Experiments.Report.mbps m.Experiments.Run.tx_mbps;
          Experiments.Report.pct m.Experiments.Run.profile.Host.Profile.hyp;
          Experiments.Report.pct m.Experiments.Run.profile.Host.Profile.idle;
        ])
      [ Cdna.Cdna_costs.Full; Cdna.Cdna_costs.Iommu; Cdna.Cdna_costs.Disabled ]
  in
  Experiments.Report.print
    ~header:[ "Protection"; "Mb/s"; "Hypervisor"; "Idle" ]
    rows;
  print_newline ();
  print_endline
    "The IOMMU path trades descriptor validation for table maintenance —\n\
     cheaper than full software protection but not free, sitting between\n\
     the two bounds, as the paper's section 5.3 anticipates.\n\
     (There would be additional, unmodelled hardware costs per translation.)"
