(* Live context migration.

   The paper notes that "the hypervisor can also revoke a context at any
   time" (section 3.1). Composing revocation with reassignment gives
   context *migration*: moving a guest's direct network access from one
   CDNA NIC to another while traffic is flowing — what a management layer
   would do to drain a NIC for maintenance or rebalance load.

   This example keeps a guest receiving a go-back-N/AIMD stream, migrates
   its context between two NICs mid-flight, and shows the transport
   recovering: in-flight packets on the old NIC are shut down with the
   context, the peer times out and retransmits, and delivery resumes on
   the new NIC with no corruption or protection faults.

   Run with: dune exec examples/live_migration.exe *)

let () =
  print_endline "Live CDNA context migration under receive load";
  print_endline "----------------------------------------------";
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu = Host.Cpu.create engine ~profile () in
  let mem = Memory.Phys_mem.create ~total_pages:16384 () in
  let xen = Xen.Hypervisor.create engine ~cpu ~mem () in
  let guest =
    Xen.Hypervisor.create_domain xen ~name:"guest" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:4096
  in
  let cdna = Cdna.Hyp.create xen () in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let make_nic idx =
    let irq = Bus.Irq.create ~name:(Printf.sprintf "cdna%d" idx) in
    let intr_page = List.hd (Xen.Hypervisor.alloc_hyp_pages xen 1) in
    let nic =
      Cdna.Cnic.create engine ~mem ~dma ~irq ~dma_context_base:(idx * 64)
        ~intr_base:(Memory.Addr.base_of_pfn intr_page)
        ()
    in
    Cdna.Hyp.add_nic cdna nic;
    let link = Ethernet.Link.create engine () in
    Cdna.Cnic.attach_link nic link ~side:Ethernet.Link.A;
    (nic, link)
  in
  let nic_a, link_a = make_nic 0 in
  let nic_b, link_b = make_nic 1 in
  let guest_mac = Ethernet.Mac_addr.make 1 in

  (* Context + driver + stack on NIC A. *)
  let handle =
    match
      Cdna.Hyp.assign_context cdna ~nic:nic_a ~guest ~mac:guest_mac
        ~isr_cost:(Sim.Time.us 1)
    with
    | Ok h -> h
    | Error `No_free_context -> failwith "no context"
  in
  let driver =
    Cdna.Driver.create ~hyp:cdna ~handle ~costs:Guestos.Os_costs.default ()
  in
  let post_kernel ~cost fn = Xen.Hypervisor.kernel_work xen guest ~cost fn in
  let stack =
    Guestos.Net_stack.create ~post_kernel ~costs:Guestos.Os_costs.default
      ~netdev:(Cdna.Driver.netdev driver)
  in

  (* One receive stream per NIC's peer; only the peer on the NIC that
     currently hosts the context can reach the guest. *)
  let conn =
    Workload.Connection.create ~id:7 ~window:32 ~payload_len:1448
      ~src:(Ethernet.Mac_addr.make 200)
      ~dst:guest_mac
  in
  let peer_a =
    Experiments.Peer.create engine ~link:link_a
      ~mac:(Ethernet.Mac_addr.make 200)
      ()
  in
  let peer_b =
    Experiments.Peer.create engine ~link:link_b
      ~mac:(Ethernet.Mac_addr.make 200)
      ()
  in
  (* The peer "moves with the cable": before migration it feeds link A,
     afterwards link B (think of the switch re-learning the MAC). *)
  Experiments.Peer.add_source peer_a conn;
  let active_peer = ref peer_a in
  let bench =
    Workload.Bench_program.create engine
      ~post_user:(fun ~cost fn -> Xen.Hypervisor.user_work xen guest ~cost fn)
      ~costs:Guestos.Os_costs.default
      ~ack:(fun c n ->
        ignore
          (Sim.Engine.schedule engine ~delay:(Sim.Time.us 20) (fun () ->
               Experiments.Peer.on_ack !active_peer c n)))
      ()
  in
  Workload.Bench_program.add_stream bench ~stack ~tx:[] ~rx:[ conn ];

  let report label =
    Printf.printf "%-28s received=%5d  rejected=%3d  faults=%d\n" label
      (Workload.Connection.received conn)
      (Workload.Connection.rejected conn)
      (List.length (Cdna.Hyp.faults cdna))
  in
  Experiments.Peer.start peer_a;
  Sim.Engine.run engine ~until:(Sim.Time.ms 30);
  report "after 30 ms on NIC A:";
  let before_migration = Workload.Connection.received conn in

  (* Migrate. *)
  let handle2 =
    match Cdna.Hyp.migrate cdna handle ~to_nic:nic_b with
    | Ok h -> h
    | Error `No_free_context -> failwith "no context on NIC B"
  in
  Cdna.Driver.rebind driver handle2;
  (* Re-point the traffic source at the new NIC, carrying the go-back-N
     window position across so it retransmits exactly what died with the
     old context. *)
  let resume_from =
    match Experiments.Peer.source_position peer_a conn with
    | Some (base, _next) -> base
    | None -> 0
  in
  Experiments.Peer.add_source peer_b conn ~from_seq:resume_from;
  active_peer := peer_b;
  Experiments.Peer.start peer_b;
  Printf.printf "\n>>> migrated context %d (NIC A) -> context %d (NIC B)\n\n"
    (Cdna.Hyp.ctx_id handle) (Cdna.Hyp.ctx_id handle2);

  Sim.Engine.run engine ~until:(Sim.Time.ms 60);
  report "after 30 ms more on NIC B:";
  let after_migration = Workload.Connection.received conn in
  Printf.printf "retransmissions during recovery: %d\n"
    (Experiments.Peer.retransmissions peer_b);
  if after_migration > before_migration + 100 then
    print_endline
      "\nDelivery resumed on the new NIC: the old context's in-flight\n\
       packets were shut down with the revocation, the transport timed\n\
       out and retransmitted, and in-order delivery continued — no\n\
       protection faults, no corruption, no hypervisor involvement in the\n\
       datapath before or after."
  else begin
    print_endline "\nUNEXPECTED: traffic did not resume";
    exit 1
  end
