examples/iommu_ablation.ml: Cdna Experiments Host List Workload
