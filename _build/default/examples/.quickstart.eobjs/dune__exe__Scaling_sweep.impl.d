examples/scaling_sweep.ml: Experiments Format Host List Workload
