examples/quickstart.ml: Experiments Format Host Workload
