examples/live_migration.ml: Bus Cdna Ethernet Experiments Guestos Host List Memory Printf Sim Workload Xen
