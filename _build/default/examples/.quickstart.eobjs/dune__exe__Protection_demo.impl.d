examples/protection_demo.ml: Bus Bytes Cdna Char Ethernet Host List Memory Nic Printf Sim Xen
