examples/iommu_ablation.mli:
