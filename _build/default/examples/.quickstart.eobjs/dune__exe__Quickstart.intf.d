examples/quickstart.mli:
