(* Server consolidation: how aggregate network throughput behaves as more
   virtual machines share one physical host — the motivating scenario of
   the paper's introduction, and a miniature of its Figures 3 and 4.

   Run with: dune exec examples/scaling_sweep.exe *)

let () =
  print_endline
    "Consolidation sweep: aggregate transmit throughput vs. guest count";
  print_endline
    "(Xen software I/O virtualization vs. concurrent direct network access)";
  print_newline ();
  let points =
    Experiments.Figures.figure3 ~quick:true ~guest_counts:[ 1; 4; 8; 16 ] ()
  in
  Experiments.Figures.print_figure ~title:"Transmit scaling (mini Figure 3)"
    ~pattern:Workload.Pattern.Tx points;
  print_newline ();
  (* Narrate the two effects the paper calls out. *)
  (match (points, List.rev points) with
  | first :: _, last :: _ ->
      let xen_drop =
        Experiments.Run.primary_mbps first.Experiments.Figures.xen
        /. Experiments.Run.primary_mbps last.Experiments.Figures.xen
      in
      Format.printf
        "Xen throughput degrades by %.1fx from %d to %d guests: the driver@\n\
         domain polls more back-end rings per pass, guests batch less, and@\n\
         domain switches burn CPU.@."
        xen_drop first.Experiments.Figures.guests
        last.Experiments.Figures.guests;
      Format.printf
        "CDNA stays at line rate; its idle time (%.1f%% -> %.1f%%) is what@\n\
         shrinks, because one physical interrupt now fans out to many guest@\n\
         virtual interrupts.@."
        first.Experiments.Figures.cdna.Experiments.Run.profile
          .Host.Profile.idle
        last.Experiments.Figures.cdna.Experiments.Run.profile
          .Host.Profile.idle
  | _ -> ())
