(* Quickstart: simulate one CDNA machine with two guests transmitting over
   two NICs, and print what the paper's evaluation would report for it.

   Run with: dune exec examples/quickstart.exe *)

let () =
  print_endline "CDNA quickstart: 2 guests, 2 NICs, transmit workload";
  print_endline "----------------------------------------------------";
  let config =
    {
      Experiments.Config.default with
      Experiments.Config.system = Experiments.Config.Cdna_sys;
      guests = 2;
      pattern = Workload.Pattern.Tx;
    }
  in
  let m = Experiments.Run.run ~quick:true config in
  Format.printf "aggregate transmit goodput : %.0f Mb/s@."
    m.Experiments.Run.tx_mbps;
  let p = m.Experiments.Run.profile in
  Format.printf "execution profile          : %a@." Host.Profile.pp_report p;
  Format.printf "virtual interrupts/s       : %.0f (guests), %.0f (driver)@."
    m.Experiments.Run.guest_virq_per_sec m.Experiments.Run.driver_virq_per_sec;
  Format.printf "protection faults          : %d@." m.Experiments.Run.faults;
  print_newline ();
  (* The same machine under Xen's software I/O virtualization, for
     comparison — the contrast is the point of the paper. *)
  print_endline "Same workload under Xen software I/O virtualization:";
  let xen_config =
    {
      config with
      Experiments.Config.system = Experiments.Config.Xen_sw;
      nic = Experiments.Config.Intel;
    }
  in
  let xm = Experiments.Run.run ~quick:true xen_config in
  Format.printf "aggregate transmit goodput : %.0f Mb/s@."
    xm.Experiments.Run.tx_mbps;
  Format.printf "execution profile          : %a@." Host.Profile.pp_report
    xm.Experiments.Run.profile;
  Format.printf "@.CDNA advantage: %.2fx the throughput at %.0f%% idle.@."
    (m.Experiments.Run.tx_mbps /. xm.Experiments.Run.tx_mbps)
    p.Host.Profile.idle
