(* DMA memory protection in action (paper section 3.3).

   A malicious guest driver tries to use its CDNA context to read another
   domain's memory. With protection enabled the hypervisor and NIC stop
   every attempt; with protection disabled (the paper's Table 4
   configuration) the same attack exfiltrates the victim's bytes onto the
   wire — real bytes, through the simulated DMA engine.

   Run with: dune exec examples/protection_demo.exe *)

let failures = ref 0

let unexpected msg =
  incr failures;
  print_endline ("UNEXPECTED: " ^ msg)

let section title =
  Printf.printf "\n=== %s ===\n" title

(* Build a minimal machine: hypervisor, one CDNA NIC on a link, an
   attacker guest and a victim guest. Returns everything the scenarios
   poke at. *)
let build ~protection =
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu = Host.Cpu.create engine ~profile () in
  let mem = Memory.Phys_mem.create ~total_pages:4096 () in
  let xen = Xen.Hypervisor.create engine ~cpu ~mem () in
  let attacker =
    Xen.Hypervisor.create_domain xen ~name:"attacker" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:64
  in
  let victim =
    Xen.Hypervisor.create_domain xen ~name:"victim" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:64
  in
  let cdna = Cdna.Hyp.create xen ~protection () in
  let irq = Bus.Irq.create ~name:"cdna-nic" in
  let intr_page = List.hd (Xen.Hypervisor.alloc_hyp_pages xen 1) in
  let config =
    { Cdna.Cnic.default_config with Nic.Nic_config.materialize_payloads = true }
  in
  let nic =
    Cdna.Cnic.create engine ~mem ~dma:(Bus.Dma_engine.create engine ~mem ())
      ~config ~irq ~dma_context_base:0
      ~intr_base:(Memory.Addr.base_of_pfn intr_page)
      ()
  in
  Cdna.Hyp.add_nic cdna nic;
  let link = Sim.Engine.now engine |> fun _ -> Ethernet.Link.create engine () in
  Cdna.Cnic.attach_link nic link ~side:Ethernet.Link.A;
  let wire_frames = ref [] in
  Ethernet.Link.attach link Ethernet.Link.B (fun f ->
      wire_frames := f :: !wire_frames);
  (engine, mem, xen, cdna, nic, attacker, victim, wire_frames)

(* Let queued hypercalls, DMA, and wire activity play out. *)
let settle engine =
  Sim.Engine.run engine
    ~until:(Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms 5))

let await engine f =
  let result = ref None in
  f (fun x -> result := Some x);
  settle engine;
  match !result with Some x -> x | None -> failwith "hypercall never completed"

let describe_error = function
  | `Not_owner pfn -> Printf.sprintf "Not_owner(pfn %d)" pfn
  | `Ring_full -> "Ring_full"
  | `Ring_unregistered -> "Ring_unregistered"
  | `Revoked -> "Revoked"

let secret_len = 64

(* Plant a recognizable secret in a victim-owned page. *)
let plant_secret mem xen victim =
  let pfn = List.hd (Xen.Hypervisor.alloc_pages xen victim 1) in
  let secret = Bytes.init secret_len (fun i -> Char.chr (0x41 + (i mod 26))) in
  Memory.Phys_mem.write mem ~addr:(Memory.Addr.base_of_pfn pfn) secret;
  (pfn, secret)

let setup_attacker_context engine cdna nic xen attacker =
  let handle =
    match
      Cdna.Hyp.assign_context cdna ~nic ~guest:attacker
        ~mac:(Ethernet.Mac_addr.make 1) ~isr_cost:(Sim.Time.us 1)
    with
    | Ok h -> h
    | Error `No_free_context -> failwith "no free context"
  in
  let ring_page = List.hd (Xen.Hypervisor.alloc_pages xen attacker 1) in
  (match
     await engine (fun k ->
         Cdna.Hyp.register_ring cdna handle Cdna.Hyp.Tx
           ~base:(Memory.Addr.base_of_pfn ring_page)
           ~slots:64 k)
   with
  | Ok () -> ()
  | Error e -> failwith ("ring registration failed: " ^ describe_error e));
  let rx_ring_page = List.hd (Xen.Hypervisor.alloc_pages xen attacker 1) in
  (match
     await engine (fun k ->
         Cdna.Hyp.register_ring cdna handle Cdna.Hyp.Rx
           ~base:(Memory.Addr.base_of_pfn rx_ring_page)
           ~slots:64 k)
   with
  | Ok () -> ()
  | Error e -> failwith ("rx ring registration failed: " ^ describe_error e));
  let status_page = List.hd (Xen.Hypervisor.alloc_pages xen attacker 1) in
  (match
     await engine (fun k ->
         Cdna.Hyp.register_status cdna handle
           ~addr:(Memory.Addr.base_of_pfn status_page)
           k)
   with
  | Ok () -> ()
  | Error e -> failwith ("status registration failed: " ^ describe_error e));
  handle

let cross_domain_descriptor victim_pfn =
  {
    Memory.Dma_desc.addr = Memory.Addr.base_of_pfn victim_pfn;
    len = secret_len;
    flags = Memory.Dma_desc.flag_end_of_packet;
    seqno = 0;
  }

let leak_frame handle =
  (* Metadata the attacker stages for its stolen-payload packet. *)
  ignore handle;
  Ethernet.Frame.make
    ~src:(Ethernet.Mac_addr.make 1)
    ~dst:(Ethernet.Mac_addr.make 99)
    ~kind:Ethernet.Frame.Data ~flow:666 ~seq:0 ~payload_len:secret_len
    ~payload_seed:0 ()

let () =
  section "1. Protection ON: cross-domain DMA is rejected";
  let engine, _mem, xen, cdna, nic, attacker, victim, _wire =
    build ~protection:Cdna.Cdna_costs.Full
  in
  let victim_pfn, _secret = plant_secret _mem xen victim in
  let handle = setup_attacker_context engine cdna nic xen attacker in
  (match
     await engine (fun k ->
         Cdna.Hyp.enqueue cdna handle Cdna.Hyp.Tx
           [ cross_domain_descriptor victim_pfn ]
           k)
   with
  | Ok _ -> unexpected "hypervisor accepted the descriptor!"
  | Error e ->
      Printf.printf
        "hypervisor rejected the enqueue with %s — the attacker cannot\n\
         name another domain's memory in a DMA descriptor.\n"
        (describe_error e));

  section "2. Protection ON: stale-descriptor replay trips the NIC";
  (* Enqueue one legitimate descriptor, then push the producer index past
     it: the NIC fetches a slot the hypervisor never stamped, sees a
     discontinuous sequence number, and raises a guest-specific fault. *)
  let own_pfn = List.hd (Xen.Hypervisor.alloc_pages xen attacker 1) in
  let own_desc =
    {
      Memory.Dma_desc.addr = Memory.Addr.base_of_pfn own_pfn;
      len = secret_len;
      flags = Memory.Dma_desc.flag_end_of_packet;
      seqno = 0;
    }
  in
  let hw = Cdna.Hyp.driver_if handle in
  (match
     await engine (fun k -> Cdna.Hyp.enqueue cdna handle Cdna.Hyp.Tx [ own_desc ] k)
   with
  | Ok prod ->
      hw.Nic.Driver_if.stage_tx_meta (leak_frame handle);
      hw.Nic.Driver_if.stage_tx_meta (leak_frame handle);
      (* Doorbell one past what the hypervisor enqueued. *)
      hw.Nic.Driver_if.tx_doorbell (prod + 1);
      settle engine;
      let faults = Cdna.Hyp.faults cdna in
      Printf.printf
        "NIC protection faults reported to the hypervisor: %d %s\n"
        (List.length faults)
        (if
           List.exists
             (fun (d, _) -> d = Xen.Domain.id attacker)
             faults
         then "(attributed to the attacker domain)"
         else "");
      Printf.printf "attacker context faulted on the NIC: %b\n"
        (Nic.Dp.is_faulted (Cdna.Cnic.dp nic) ~ctx:(Cdna.Hyp.ctx_id handle))
  | Error e -> Printf.printf "unexpected enqueue failure: %s\n" (describe_error e));

  section "3. Protection ON: pinned pages cannot be reallocated";
  let engine2, mem2, xen2, cdna2, nic2, attacker2, _victim2, _ =
    build ~protection:Cdna.Cdna_costs.Full
  in
  let handle2 = setup_attacker_context engine2 cdna2 nic2 xen2 attacker2 in
  let dma_pfn = List.hd (Xen.Hypervisor.alloc_pages xen2 attacker2 1) in
  (match
     await engine2 (fun k ->
         Cdna.Hyp.enqueue cdna2 handle2 Cdna.Hyp.Rx
           [
             {
               Memory.Dma_desc.addr = Memory.Addr.base_of_pfn dma_pfn;
               len = Memory.Addr.page_size;
               flags = 0;
               seqno = 0;
             };
           ]
           k)
   with
  | Ok _ ->
      Printf.printf "receive buffer enqueued; pinned pages for context: %d\n"
        (Cdna.Hyp.pinned_pages handle2);
      (* The guest frees the page while DMA is outstanding. *)
      Xen.Hypervisor.free_page xen2 attacker2 dma_pfn;
      let page = Memory.Phys_mem.page mem2 dma_pfn in
      (match Memory.Page.state page with
      | Memory.Page.Quarantined _ ->
          print_endline
            "page freed during outstanding DMA is quarantined, not \
             reallocated — exactly the reference-count pinning of paper \
             section 3.3."
      | _ -> unexpected "page was not quarantined")
  | Error e -> Printf.printf "unexpected enqueue failure: %s\n" (describe_error e));

  section "4. Protection OFF (Table 4 mode): the same attack leaks memory";
  let engine3, mem3, xen3, cdna3, nic3, attacker3, victim3, wire3 =
    build ~protection:Cdna.Cdna_costs.Disabled
  in
  let victim_pfn3, secret3 = plant_secret mem3 xen3 victim3 in
  let handle3 = setup_attacker_context engine3 cdna3 nic3 xen3 attacker3 in
  let hw3 = Cdna.Hyp.driver_if handle3 in
  (match
     await engine3 (fun k ->
         Cdna.Hyp.enqueue cdna3 handle3 Cdna.Hyp.Tx
           [ cross_domain_descriptor victim_pfn3 ]
           k)
   with
  | Error e -> Printf.printf "unexpected rejection: %s\n" (describe_error e)
  | Ok prod ->
      hw3.Nic.Driver_if.stage_tx_meta (leak_frame handle3);
      hw3.Nic.Driver_if.tx_doorbell prod;
      settle engine3;
      (match !wire3 with
      | frame :: _ ->
          let leaked =
            match frame.Ethernet.Frame.data with
            | Some data -> Bytes.equal data secret3
            | None -> false
          in
          if leaked then
            print_endline
              "the NIC DMA-read the victim's page and transmitted its \
               bytes on the wire: without hypervisor validation, a buggy \
               or malicious driver compromises other domains."
          else unexpected "frame transmitted but contents differ"
      | [] -> unexpected "no frame reached the wire"));

  section "5. Revocation: the hypervisor can pull a context at any time";
  Cdna.Hyp.revoke cdna3 handle3;
  (try
     hw3.Nic.Driver_if.tx_doorbell 99;
     unexpected "PIO through a revoked mapping succeeded"
   with Bus.Mmio.Fault _ ->
     print_endline
       "PIO through the revoked mailbox mapping faults; the context and \
        its pending operations are gone.");
  print_newline ();
  exit (if !failures = 0 then 0 else 1)
