test/test_ethernet.ml: Alcotest Array Bytes Char Ethernet List QCheck QCheck_alcotest Sim
