test/test_workload.ml: Alcotest Bytes Ethernet Guestos Host List Sim Workload
