test/test_main.ml: Alcotest Test_bus Test_cdna Test_ethernet Test_experiments Test_guestos Test_host Test_memory Test_misc Test_nic Test_sim Test_workload Test_xen
