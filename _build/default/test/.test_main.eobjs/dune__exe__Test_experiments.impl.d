test/test_experiments.ml: Alcotest Cdna Experiments Float Host List Nic Printf QCheck QCheck_alcotest Sim String Workload
