test/test_sim.ml: Alcotest Array Float Fun Gen Int List QCheck QCheck_alcotest Sim
