test/test_guestos.ml: Alcotest Bus Ethernet Guestos Host List Memory Nic Printf Sim Xen
