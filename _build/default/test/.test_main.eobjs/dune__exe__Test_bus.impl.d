test/test_bus.ml: Alcotest Array Bus Bytes Memory Printf Sim
