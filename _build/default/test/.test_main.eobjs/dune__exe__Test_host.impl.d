test/test_host.ml: Alcotest Float Gen Host List Printf QCheck QCheck_alcotest Sim
