test/test_memory.ml: Alcotest Bytes Char List Memory QCheck QCheck_alcotest Result
