test/test_cdna.ml: Alcotest Bus Cdna Ethernet Guestos Host List Memory Nic Option QCheck QCheck_alcotest Sim Xen
