test/test_xen.ml: Alcotest Bus Host List Memory Sim Xen
