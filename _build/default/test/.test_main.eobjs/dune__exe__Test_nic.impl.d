test/test_nic.ml: Alcotest Array Bus Bytes Ethernet Gen Hashtbl List Memory Nic Option Printf QCheck QCheck_alcotest Sim
