test/test_misc.ml: Alcotest Ethernet Experiments Format Guestos Host Memory Nic Printf Sim String Workload Xen
