(* Tests for the bus substrate: MMIO regions/mappings, interrupt lines,
   and the DMA engine's timing, data movement and IOMMU enforcement. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ---------- Mmio ---------- *)

let scratch_region () =
  let store = Array.make 16 0 in
  ( store,
    Bus.Mmio.region ~size:64
      ~read:(fun ~offset -> store.(offset / 4))
      ~write:(fun ~offset v -> store.(offset / 4) <- v) )

let test_mmio_rw () =
  let store, r = scratch_region () in
  let m = Bus.Mmio.map r in
  Bus.Mmio.write32 m ~offset:8 42;
  check_int "backing updated" 42 store.(2);
  check_int "read back" 42 (Bus.Mmio.read32 m ~offset:8);
  check_int "write count" 1 (Bus.Mmio.write_count m)

let test_mmio_bounds_and_alignment () =
  let _, r = scratch_region () in
  let m = Bus.Mmio.map r in
  Alcotest.check_raises "oob" (Bus.Mmio.Fault "offset 64 out of range") (fun () ->
      Bus.Mmio.write32 m ~offset:64 0);
  Alcotest.check_raises "negative" (Bus.Mmio.Fault "offset -4 out of range")
    (fun () -> ignore (Bus.Mmio.read32 m ~offset:(-4)));
  Alcotest.check_raises "unaligned" (Bus.Mmio.Fault "offset 2 not 4-byte aligned")
    (fun () -> Bus.Mmio.write32 m ~offset:2 0)

let test_mmio_revocation () =
  let _, r = scratch_region () in
  let m = Bus.Mmio.map r in
  Bus.Mmio.write32 m ~offset:0 1;
  Bus.Mmio.revoke m;
  check_bool "revoked" true (Bus.Mmio.is_revoked m);
  Alcotest.check_raises "faults" (Bus.Mmio.Fault "access through revoked mapping")
    (fun () -> Bus.Mmio.write32 m ~offset:0 2);
  (* A fresh mapping of the same region still works: revocation is
     per-mapping, exactly what context reassignment needs. *)
  let m2 = Bus.Mmio.map r in
  Bus.Mmio.write32 m2 ~offset:0 3;
  check_int "new mapping works" 3 (Bus.Mmio.read32 m2 ~offset:0)

(* ---------- Irq ---------- *)

let test_irq_delivery () =
  let irq = Bus.Irq.create ~name:"test" in
  let hits = ref 0 in
  Bus.Irq.set_handler irq (fun () -> incr hits);
  Bus.Irq.assert_line irq;
  Bus.Irq.assert_line irq;
  check_int "delivered" 2 !hits;
  check_int "count" 2 (Bus.Irq.count irq);
  Bus.Irq.reset_count irq;
  check_int "reset" 0 (Bus.Irq.count irq)

let test_irq_unrouted () =
  let irq = Bus.Irq.create ~name:"orphan" in
  Bus.Irq.assert_line irq;
  check_int "dropped" 1 (Bus.Irq.dropped irq);
  check_int "not counted" 0 (Bus.Irq.count irq)

(* ---------- Dma_engine ---------- *)

let dma_fixture () =
  let engine = Sim.Engine.create () in
  let mem = Memory.Phys_mem.create ~total_pages:32 () in
  let dma = Bus.Dma_engine.create engine ~mem () in
  (engine, mem, dma)

let test_dma_write_then_read () =
  let engine, _, dma = dma_fixture () in
  let data = Bytes.of_string "dma payload" in
  let read_back = ref Bytes.empty in
  Bus.Dma_engine.write dma ~context:0 ~addr:1000 ~data (fun r ->
      check_bool "write ok" true (r = Ok ());
      Bus.Dma_engine.read dma ~context:0 ~addr:1000 ~len:(Bytes.length data)
        (function
        | Ok b -> read_back := b
        | Error _ -> Alcotest.fail "read failed"));
  ignore (Sim.Engine.run_to_completion engine);
  check Alcotest.string "bytes moved" "dma payload" (Bytes.to_string !read_back)

let test_dma_is_asynchronous () =
  let engine, _, dma = dma_fixture () in
  let completed = ref false in
  Bus.Dma_engine.write dma ~context:0 ~addr:0 ~data:(Bytes.create 1500)
    (fun _ -> completed := true);
  check_bool "not yet complete" false !completed;
  ignore (Sim.Engine.run_to_completion engine);
  check_bool "complete after time passes" true !completed

let test_dma_transfers_serialize () =
  (* Two back-to-back transfers complete later than one: the bus is a
     shared serial resource. *)
  let engine, _, dma = dma_fixture () in
  let t1 = ref 0 and t2 = ref 0 in
  Bus.Dma_engine.write dma ~context:0 ~addr:0 ~data:(Bytes.create 4096)
    (fun _ -> t1 := Sim.Engine.now engine);
  Bus.Dma_engine.write dma ~context:0 ~addr:8192 ~data:(Bytes.create 4096)
    (fun _ -> t2 := Sim.Engine.now engine);
  ignore (Sim.Engine.run_to_completion engine);
  check_bool "second later" true (!t2 > !t1);
  (* Occupancy difference is one transfer's serialization (no latency,
     which is pipelined): 4096B at 8.5 Gb/s ~ 3855ns + 40ns arbitration. *)
  let delta = !t2 - !t1 in
  check_bool
    (Printf.sprintf "gap ~3.9us (got %dns)" delta)
    true
    (delta > 3_500 && delta < 4_500)

let test_dma_bad_range () =
  let engine, _, dma = dma_fixture () in
  let result = ref None in
  Bus.Dma_engine.read dma ~context:0 ~addr:(32 * 4096) ~len:8 (fun r ->
      result := Some r);
  ignore (Sim.Engine.run_to_completion engine);
  check_bool "rejected immediately" true (!result = Some (Error `Bad_range))

let test_dma_iommu_enforcement () =
  let engine, _, dma = dma_fixture () in
  let iommu = Memory.Iommu.create () in
  Memory.Iommu.grant iommu ~context:5 1;
  Bus.Dma_engine.set_iommu dma (Some iommu);
  let ok = ref None and denied = ref None in
  Bus.Dma_engine.write dma ~context:5 ~addr:4096 ~data:(Bytes.create 64)
    (fun r -> ok := Some r);
  Bus.Dma_engine.write dma ~context:5 ~addr:8192 ~data:(Bytes.create 64)
    (fun r -> denied := Some r);
  ignore (Sim.Engine.run_to_completion engine);
  check_bool "granted page ok" true (!ok = Some (Ok ()));
  check_bool "other page denied" true (!denied = Some (Error (`Iommu_denied 2)));
  (* Removing the IOMMU restores trust. *)
  Bus.Dma_engine.set_iommu dma None;
  let after = ref None in
  Bus.Dma_engine.write dma ~context:5 ~addr:8192 ~data:(Bytes.create 64)
    (fun r -> after := Some r);
  ignore (Sim.Engine.run_to_completion engine);
  check_bool "trusted again" true (!after = Some (Ok ()))

let test_dma_iommu_checks_all_pages () =
  (* A transfer spanning two pages needs both granted. *)
  let engine, _, dma = dma_fixture () in
  let iommu = Memory.Iommu.create () in
  Memory.Iommu.grant iommu ~context:1 0;
  Bus.Dma_engine.set_iommu dma (Some iommu);
  let r = ref None in
  Bus.Dma_engine.access dma ~context:1 ~addr:4000 ~len:200 (fun x -> r := Some x);
  ignore (Sim.Engine.run_to_completion engine);
  check_bool "denied on second page" true (!r = Some (Error (`Iommu_denied 1)))

let test_dma_stats () =
  let engine, _, dma = dma_fixture () in
  Bus.Dma_engine.write dma ~context:0 ~addr:0 ~data:(Bytes.create 100) ignore;
  Bus.Dma_engine.access dma ~context:0 ~addr:0 ~len:50 ignore;
  ignore (Sim.Engine.run_to_completion engine);
  check_int "transfers" 2 (Bus.Dma_engine.transfers dma);
  check_int "bytes" 150 (Bus.Dma_engine.bytes_moved dma);
  check_bool "busy time positive" true (Bus.Dma_engine.busy_time dma > 0)

let suite =
  [
    ( "bus.mmio",
      [
        Alcotest.test_case "read/write" `Quick test_mmio_rw;
        Alcotest.test_case "bounds and alignment" `Quick test_mmio_bounds_and_alignment;
        Alcotest.test_case "revocation" `Quick test_mmio_revocation;
      ] );
    ( "bus.irq",
      [
        Alcotest.test_case "delivery" `Quick test_irq_delivery;
        Alcotest.test_case "unrouted" `Quick test_irq_unrouted;
      ] );
    ( "bus.dma",
      [
        Alcotest.test_case "write then read" `Quick test_dma_write_then_read;
        Alcotest.test_case "asynchronous" `Quick test_dma_is_asynchronous;
        Alcotest.test_case "serializes" `Quick test_dma_transfers_serialize;
        Alcotest.test_case "bad range" `Quick test_dma_bad_range;
        Alcotest.test_case "iommu enforcement" `Quick test_dma_iommu_enforcement;
        Alcotest.test_case "iommu all pages" `Quick test_dma_iommu_checks_all_pages;
        Alcotest.test_case "stats" `Quick test_dma_stats;
      ] );
  ]
