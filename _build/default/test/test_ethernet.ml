(* Tests for the Ethernet substrate: MACs, CRC-32, frames, links and the
   learning switch. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ---------- Mac_addr ---------- *)

let test_mac_make () =
  let a = Ethernet.Mac_addr.make 1 and b = Ethernet.Mac_addr.make 2 in
  check_bool "distinct" false (Ethernet.Mac_addr.equal a b);
  check_bool "self equal" true (Ethernet.Mac_addr.equal a a);
  check_bool "unicast" false (Ethernet.Mac_addr.is_multicast a);
  check_bool "not broadcast" false (Ethernet.Mac_addr.is_broadcast a)

let test_mac_broadcast () =
  check_bool "broadcast is broadcast" true
    (Ethernet.Mac_addr.is_broadcast Ethernet.Mac_addr.broadcast);
  check_bool "broadcast is multicast" true
    (Ethernet.Mac_addr.is_multicast Ethernet.Mac_addr.broadcast)

let test_mac_string () =
  check Alcotest.string "format" "02:00:00:00:00:05"
    (Ethernet.Mac_addr.to_string (Ethernet.Mac_addr.make 5))

let test_mac_range () =
  Alcotest.check_raises "range" (Invalid_argument "Mac_addr.make: index out of range")
    (fun () -> ignore (Ethernet.Mac_addr.make (-1)))

(* ---------- Crc32 ---------- *)

let test_crc_known_value () =
  (* CRC-32("123456789") = 0xCBF43926, the standard check value. *)
  check_int "check value" 0xCBF43926
    (Ethernet.Crc32.digest (Bytes.of_string "123456789"))

let test_crc_detects_change () =
  let b = Bytes.of_string "some payload bytes" in
  let c1 = Ethernet.Crc32.digest b in
  Bytes.set b 3 'X';
  check_bool "changed" true (c1 <> Ethernet.Crc32.digest b)

let test_crc_sub () =
  let b = Bytes.of_string "xx123456789yy" in
  check_int "slice" 0xCBF43926 (Ethernet.Crc32.digest_sub b ~pos:2 ~len:9);
  Alcotest.check_raises "bounds" (Invalid_argument "Crc32.digest_sub: bad bounds")
    (fun () -> ignore (Ethernet.Crc32.digest_sub b ~pos:10 ~len:9))

(* ---------- Frame ---------- *)

let mk ?(len = 1500) ?(seed = 7) () =
  Ethernet.Frame.make
    ~src:(Ethernet.Mac_addr.make 1)
    ~dst:(Ethernet.Mac_addr.make 2)
    ~kind:Ethernet.Frame.Data ~flow:1 ~seq:0 ~payload_len:len ~payload_seed:seed
    ()

let test_frame_wire_accounting () =
  let f = mk () in
  check_int "mtu frame" 1518 (Ethernet.Frame.wire_bytes f);
  check_int "wire bits incl preamble+ifg" ((1518 + 20) * 8)
    (Ethernet.Frame.wire_bits f);
  (* Minimum frame padding. *)
  let tiny = mk ~len:10 () in
  check_int "padded to 64" 64 (Ethernet.Frame.wire_bytes tiny)

let test_frame_materialization_deterministic () =
  let a = Ethernet.Frame.materialize_payload ~seed:9 ~len:100 in
  let b = Ethernet.Frame.materialize_payload ~seed:9 ~len:100 in
  let c = Ethernet.Frame.materialize_payload ~seed:10 ~len:100 in
  check_bool "same seed same bytes" true (Bytes.equal a b);
  check_bool "different seed different bytes" false (Bytes.equal a c)

let test_frame_data_validity () =
  let f = Ethernet.Frame.with_data (mk ()) in
  check_bool "valid" true (Ethernet.Frame.data_valid f);
  let corrupted =
    match f.Ethernet.Frame.data with
    | Some d ->
        let d = Bytes.copy d in
        Bytes.set d 0 (Char.chr (Char.code (Bytes.get d 0) lxor 0xFF));
        { f with Ethernet.Frame.data = Some d }
    | None -> assert false
  in
  check_bool "corruption detected" false (Ethernet.Frame.data_valid corrupted);
  check_bool "spec-only trivially valid" true (Ethernet.Frame.data_valid (mk ()))

let test_frame_super_frame_accounting () =
  let f =
    Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
      ~dst:(Ethernet.Mac_addr.make 2) ~kind:Ethernet.Frame.Data ~flow:0 ~seq:0
      ~segments:4 ~payload_len:6000 ~payload_seed:0 ()
  in
  (* 4 segments: 4 headers + 6000 payload bytes on the wire, plus 4
     preamble/IFG allocations. *)
  check_int "wire bytes" ((4 * 18) + 6000) (Ethernet.Frame.wire_bytes f);
  check_int "wire bits" (((4 * 18) + 6000 + (4 * 20)) * 8)
    (Ethernet.Frame.wire_bits f);
  (* Exactly four 1500-byte frames' worth of wire time. *)
  let single = Ethernet.Frame.wire_bits (mk ()) in
  check_int "equals 4 singles" (4 * single) (Ethernet.Frame.wire_bits f);
  Alcotest.check_raises "segments positive"
    (Invalid_argument "Frame.make: segments must be positive") (fun () ->
      ignore
        (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
           ~dst:(Ethernet.Mac_addr.make 2) ~kind:Ethernet.Frame.Data ~flow:0
           ~seq:0 ~segments:0 ~payload_len:100 ~payload_seed:0 ()))

let test_frame_rejects_bad_length () =
  Alcotest.check_raises "jumbo" (Invalid_argument "Frame.make: payload length out of range")
    (fun () -> ignore (mk ~len:9001 ()))

let prop_frame_crc_stable =
  QCheck.Test.make ~name:"payload crc depends only on the spec" ~count:100
    QCheck.(pair (int_range 1 2000) (int_range 0 1_000_000))
    (fun (len, seed) ->
      let f = mk ~len ~seed () in
      Ethernet.Frame.payload_crc f = Ethernet.Frame.payload_crc (mk ~len ~seed ()))

(* ---------- Link ---------- *)

let test_link_delivery_and_timing () =
  let engine = Sim.Engine.create () in
  let link = Ethernet.Link.create engine () in
  let got = ref None and wire_free_at = ref 0 and arrival_at = ref 0 in
  Ethernet.Link.attach link Ethernet.Link.B (fun f ->
      got := Some f;
      arrival_at := Sim.Engine.now engine);
  Ethernet.Link.send link ~from:Ethernet.Link.A (mk ()) ~on_wire_free:(fun () ->
      wire_free_at := Sim.Engine.now engine);
  ignore (Sim.Engine.run_to_completion engine);
  check_bool "delivered" true (!got <> None);
  (* 1538 wire bytes at 1 Gb/s = 12304 ns serialization. *)
  check_int "serialization" 12304 !wire_free_at;
  check_int "arrival = serialization + propagation" (12304 + 500) !arrival_at

let test_link_back_to_back () =
  (* Second frame is delayed by the first one's serialization. *)
  let engine = Sim.Engine.create () in
  let link = Ethernet.Link.create engine () in
  let arrivals = ref [] in
  Ethernet.Link.attach link Ethernet.Link.B (fun _ ->
      arrivals := Sim.Engine.now engine :: !arrivals);
  Ethernet.Link.send link ~from:Ethernet.Link.A (mk ()) ~on_wire_free:ignore;
  Ethernet.Link.send link ~from:Ethernet.Link.A (mk ()) ~on_wire_free:ignore;
  ignore (Sim.Engine.run_to_completion engine);
  match List.rev !arrivals with
  | [ a; b ] -> check_int "full serialization apart" 12304 (b - a)
  | _ -> Alcotest.fail "expected two arrivals"

let test_link_full_duplex () =
  (* Opposite directions do not contend. *)
  let engine = Sim.Engine.create () in
  let link = Ethernet.Link.create engine () in
  let to_b = ref 0 and to_a = ref 0 in
  Ethernet.Link.attach link Ethernet.Link.B (fun _ -> to_b := Sim.Engine.now engine);
  Ethernet.Link.attach link Ethernet.Link.A (fun _ -> to_a := Sim.Engine.now engine);
  Ethernet.Link.send link ~from:Ethernet.Link.A (mk ()) ~on_wire_free:ignore;
  Ethernet.Link.send link ~from:Ethernet.Link.B (mk ()) ~on_wire_free:ignore;
  ignore (Sim.Engine.run_to_completion engine);
  check_int "same arrival A->B" 12804 !to_b;
  check_int "same arrival B->A" 12804 !to_a

let test_link_counters () =
  let engine = Sim.Engine.create () in
  let link = Ethernet.Link.create engine () in
  Ethernet.Link.attach link Ethernet.Link.B (fun _ -> ());
  Ethernet.Link.send link ~from:Ethernet.Link.A (mk ()) ~on_wire_free:ignore;
  ignore (Sim.Engine.run_to_completion engine);
  let frames, bytes = Ethernet.Link.delivered link Ethernet.Link.B in
  check_int "frames" 1 frames;
  check_int "payload bytes" 1500 bytes

let test_link_rate_override () =
  let engine = Sim.Engine.create () in
  let link = Ethernet.Link.create engine ~rate_bps:100_000_000 () in
  let free_at = ref 0 in
  Ethernet.Link.send link ~from:Ethernet.Link.A (mk ())
    ~on_wire_free:(fun () -> free_at := Sim.Engine.now engine);
  ignore (Sim.Engine.run_to_completion engine);
  check_int "10x slower" 123040 !free_at

(* ---------- Switch ---------- *)

let test_switch_learning () =
  let sw = Ethernet.Switch.create () in
  let got1 = ref 0 and got2 = ref 0 and got3 = ref 0 in
  let p1 = Ethernet.Switch.add_port sw (fun _ -> incr got1) in
  let _p2 = Ethernet.Switch.add_port sw (fun _ -> incr got2) in
  let p3 = Ethernet.Switch.add_port sw (fun _ -> incr got3) in
  let m1 = Ethernet.Mac_addr.make 1 and m3 = Ethernet.Mac_addr.make 3 in
  let frame ~src ~dst =
    Ethernet.Frame.make ~src ~dst ~kind:Ethernet.Frame.Data ~flow:0 ~seq:0
      ~payload_len:64 ~payload_seed:0 ()
  in
  (* Unknown destination floods to the other two ports. *)
  Ethernet.Switch.ingress sw p1 (frame ~src:m1 ~dst:m3);
  check_int "flooded p2" 1 !got2;
  check_int "flooded p3" 1 !got3;
  check_int "not back out ingress" 0 !got1;
  (* m3 replies: now learned, unicast only to p1. *)
  Ethernet.Switch.ingress sw p3 (frame ~src:m3 ~dst:m1);
  check_int "unicast to p1" 1 !got1;
  check_int "p2 untouched" 1 !got2;
  (* And m3 is now known. *)
  Ethernet.Switch.ingress sw p1 (frame ~src:m1 ~dst:m3);
  check_int "unicast to p3" 2 !got3;
  check_int "no more flooding" 1 !got2;
  check_int "flood count" 1 (Ethernet.Switch.floods sw)

let test_switch_broadcast () =
  let sw = Ethernet.Switch.create () in
  let counts = Array.make 3 0 in
  let ports =
    Array.init 3 (fun i ->
        Ethernet.Switch.add_port sw (fun _ -> counts.(i) <- counts.(i) + 1))
  in
  let f =
    Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 9)
      ~dst:Ethernet.Mac_addr.broadcast ~kind:Ethernet.Frame.Data ~flow:0 ~seq:0
      ~payload_len:64 ~payload_seed:0 ()
  in
  Ethernet.Switch.ingress sw ports.(0) f;
  check (Alcotest.list Alcotest.int) "all but ingress" [ 0; 1; 1 ]
    (Array.to_list counts)

let test_switch_drop_same_port () =
  let sw = Ethernet.Switch.create () in
  let hits = ref 0 in
  let p1 = Ethernet.Switch.add_port sw (fun _ -> incr hits) in
  let _ = Ethernet.Switch.add_port sw (fun _ -> ()) in
  let m1 = Ethernet.Mac_addr.make 1 and m2 = Ethernet.Mac_addr.make 2 in
  let frame ~src ~dst =
    Ethernet.Frame.make ~src ~dst ~kind:Ethernet.Frame.Data ~flow:0 ~seq:0
      ~payload_len:64 ~payload_seed:0 ()
  in
  (* Learn both stations behind p1. *)
  Ethernet.Switch.ingress sw p1 (frame ~src:m1 ~dst:m2);
  Ethernet.Switch.ingress sw p1 (frame ~src:m2 ~dst:m1);
  let before = !hits in
  (* Traffic between them never leaves p1 — and is not reflected. *)
  Ethernet.Switch.ingress sw p1 (frame ~src:m1 ~dst:m2);
  check_int "not reflected" before !hits

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "ethernet.mac",
      [
        Alcotest.test_case "make" `Quick test_mac_make;
        Alcotest.test_case "broadcast" `Quick test_mac_broadcast;
        Alcotest.test_case "to_string" `Quick test_mac_string;
        Alcotest.test_case "range" `Quick test_mac_range;
      ] );
    ( "ethernet.crc32",
      [
        Alcotest.test_case "known value" `Quick test_crc_known_value;
        Alcotest.test_case "detects change" `Quick test_crc_detects_change;
        Alcotest.test_case "sub-range" `Quick test_crc_sub;
      ] );
    ( "ethernet.frame",
      [
        Alcotest.test_case "wire accounting" `Quick test_frame_wire_accounting;
        Alcotest.test_case "deterministic payload" `Quick
          test_frame_materialization_deterministic;
        Alcotest.test_case "data validity" `Quick test_frame_data_validity;
        Alcotest.test_case "bad length" `Quick test_frame_rejects_bad_length;
        Alcotest.test_case "super-frame accounting" `Quick
          test_frame_super_frame_accounting;
        qcheck prop_frame_crc_stable;
      ] );
    ( "ethernet.link",
      [
        Alcotest.test_case "delivery and timing" `Quick test_link_delivery_and_timing;
        Alcotest.test_case "back to back" `Quick test_link_back_to_back;
        Alcotest.test_case "full duplex" `Quick test_link_full_duplex;
        Alcotest.test_case "counters" `Quick test_link_counters;
        Alcotest.test_case "rate override" `Quick test_link_rate_override;
      ] );
    ( "ethernet.switch",
      [
        Alcotest.test_case "learning" `Quick test_switch_learning;
        Alcotest.test_case "broadcast" `Quick test_switch_broadcast;
        Alcotest.test_case "no reflection" `Quick test_switch_drop_same_port;
      ] );
  ]
