(* Tests for the workload library: connections (windows, in-order
   receive) and the benchmark program. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let conn ?(id = 1) ?(window = 8) () =
  Workload.Connection.create ~id ~window ~payload_len:1000
    ~src:(Ethernet.Mac_addr.make 1)
    ~dst:(Ethernet.Mac_addr.make 2)

(* ---------- Connection ---------- *)

let test_conn_window_accounting () =
  let c = conn () in
  check_int "full credits" 8 (Workload.Connection.credits c);
  check_int "take 3" 3 (Workload.Connection.take_credits c 3);
  check_int "remaining" 5 (Workload.Connection.credits c);
  check_int "take more than left" 5 (Workload.Connection.take_credits c 10);
  check_int "exhausted" 0 (Workload.Connection.credits c);
  Workload.Connection.add_credits c 4;
  check_int "acked" 4 (Workload.Connection.credits c);
  (* Over-crediting clamps. *)
  Workload.Connection.add_credits c 100;
  check_int "clamped at window" 8 (Workload.Connection.credits c)

let test_conn_frames_sequence () =
  let c = conn () in
  let f0 = Workload.Connection.make_frame c in
  let f1 = Workload.Connection.make_frame c in
  check_int "seq 0" 0 f0.Ethernet.Frame.seq;
  check_int "seq 1" 1 f1.Ethernet.Frame.seq;
  check_int "flow id" 1 f0.Ethernet.Frame.flow;
  check_int "sent" 2 (Workload.Connection.sent c);
  (* Retransmission builds the identical frame. *)
  let again = Workload.Connection.frame_with_seq c ~seq:0 in
  check_int "same seed" f0.Ethernet.Frame.payload_seed
    again.Ethernet.Frame.payload_seed

let test_conn_in_order_receive () =
  let tx = conn () in
  let rx = conn () in
  let f0 = Workload.Connection.make_frame tx in
  let f1 = Workload.Connection.make_frame tx in
  let f2 = Workload.Connection.make_frame tx in
  check_bool "accept 0" true (Workload.Connection.record_received rx f0 = `Accepted);
  (* A gap: 2 before 1 is rejected. *)
  check_bool "reject gap" true (Workload.Connection.record_received rx f2 = `Rejected);
  check_bool "accept 1" true (Workload.Connection.record_received rx f1 = `Accepted);
  (* Duplicate of 1 rejected; retransmitted 2 accepted. *)
  check_bool "reject dup" true (Workload.Connection.record_received rx f1 = `Rejected);
  check_bool "accept retx" true (Workload.Connection.record_received rx f2 = `Accepted);
  check_int "received" 3 (Workload.Connection.received rx);
  check_int "rejected" 2 (Workload.Connection.rejected rx)

let test_conn_integrity_check () =
  let tx = conn () in
  let rx = conn () in
  let f = Ethernet.Frame.with_data (Workload.Connection.make_frame tx) in
  ignore (Workload.Connection.record_received rx f);
  check_int "clean" 0 (Workload.Connection.integrity_failures rx);
  let f2 = Workload.Connection.make_frame tx in
  let corrupted =
    { f2 with Ethernet.Frame.data = Some (Bytes.make 1000 'X') }
  in
  ignore (Workload.Connection.record_received rx corrupted);
  check_int "corruption detected" 1 (Workload.Connection.integrity_failures rx)

let test_conn_super_frames () =
  let tx = conn ~window:8 () in
  let rx = conn ~window:8 () in
  check_int "take for gso" 4 (Workload.Connection.take_credits tx 4);
  let super = Workload.Connection.make_frame ~segments:4 tx in
  check_int "covers 4 seqs" 4 super.Ethernet.Frame.segments;
  check_int "sent counts segments" 4 (Workload.Connection.sent tx);
  check_bool "accepted" true
    (Workload.Connection.record_received rx super = `Accepted);
  check_int "received counts segments" 4 (Workload.Connection.received rx);
  (* The stream continues at seq 4. *)
  let next = Workload.Connection.make_frame tx in
  check_int "next seq" 4 next.Ethernet.Frame.seq;
  check_bool "in order continues" true
    (Workload.Connection.record_received rx next = `Accepted)

let test_conn_reset () =
  let c = conn () in
  ignore (Workload.Connection.make_frame c);
  Workload.Connection.reset_counters c;
  check_int "sent zeroed" 0 (Workload.Connection.sent c)

(* ---------- Pattern ---------- *)

let test_pattern () =
  check_bool "tx transmits" true (Workload.Pattern.guest_transmits Workload.Pattern.Tx);
  check_bool "tx no rx" false (Workload.Pattern.guest_receives Workload.Pattern.Tx);
  check_bool "rx receives" true (Workload.Pattern.guest_receives Workload.Pattern.Rx);
  check_bool "bidir both" true
    (Workload.Pattern.guest_transmits Workload.Pattern.Bidirectional
    && Workload.Pattern.guest_receives Workload.Pattern.Bidirectional)

(* ---------- Bench_program ---------- *)

let bench_fixture () =
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu = Host.Cpu.create engine ~profile () in
  let entity = Host.Cpu.add_entity cpu ~name:"app" ~weight:256 ~domain:0 in
  let post_user ~cost fn =
    Host.Cpu.post cpu entity ~category:(Host.Category.User 0) ~cost fn
  in
  let post_kernel ~cost fn =
    Host.Cpu.post cpu entity ~category:(Host.Category.Kernel 0) ~cost fn
  in
  let dev_sent = ref [] in
  let nd =
    Guestos.Netdev.create ~mac:(Ethernet.Mac_addr.make 1)
      ~send:(fun fs -> dev_sent := !dev_sent @ fs)
      ~tx_space:(fun () -> 1000)
  in
  let stack =
    Guestos.Net_stack.create ~post_kernel ~costs:Guestos.Os_costs.default
      ~netdev:nd
  in
  let acks = ref [] in
  let bench =
    Workload.Bench_program.create engine ~post_user
      ~costs:Guestos.Os_costs.default
      ~ack:(fun c n -> acks := (Workload.Connection.id c, n) :: !acks)
      ()
  in
  (engine, nd, stack, bench, dev_sent, acks)

let run engine ms =
  Sim.Engine.run engine
    ~until:(Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms ms))

let test_bench_fills_windows () =
  let engine, _, stack, bench, dev_sent, _ = bench_fixture () in
  let c1 = conn ~id:1 ~window:5 () and c2 = conn ~id:2 ~window:5 () in
  Workload.Bench_program.add_stream bench ~stack ~tx:[ c1; c2 ] ~rx:[];
  Workload.Bench_program.start bench;
  run engine 5;
  check_int "both windows filled" 10 (List.length !dev_sent);
  check_int "c1 exhausted" 0 (Workload.Connection.credits c1);
  check_int "c2 exhausted" 0 (Workload.Connection.credits c2)

let test_bench_balances_connections () =
  let engine, _, stack, bench, dev_sent, _ = bench_fixture () in
  let c1 = conn ~id:1 ~window:6 () and c2 = conn ~id:2 ~window:6 () in
  Workload.Bench_program.add_stream bench ~stack ~tx:[ c1; c2 ] ~rx:[];
  Workload.Bench_program.start bench;
  run engine 5;
  let by_flow flow =
    List.length (List.filter (fun f -> f.Ethernet.Frame.flow = flow) !dev_sent)
  in
  check_int "balanced c1" 6 (by_flow 1);
  check_int "balanced c2" 6 (by_flow 2)

let test_bench_credits_refill () =
  let engine, _, stack, bench, dev_sent, _ = bench_fixture () in
  let c = conn ~id:1 ~window:4 () in
  Workload.Bench_program.add_stream bench ~stack ~tx:[ c ] ~rx:[];
  Workload.Bench_program.start bench;
  run engine 5;
  check_int "window sent" 4 (List.length !dev_sent);
  Workload.Bench_program.on_credit bench c 2;
  run engine 5;
  check_int "refilled" 6 (List.length !dev_sent)

let test_bench_rx_consumes_and_acks () =
  let engine, nd, stack, bench, _, acks = bench_fixture () in
  let tx_side = conn ~id:7 () in
  let rx_conn = conn ~id:7 () in
  Workload.Bench_program.add_stream bench ~stack ~tx:[] ~rx:[ rx_conn ];
  ignore stack;
  let frames = List.init 3 (fun _ -> Workload.Connection.make_frame tx_side) in
  Guestos.Netdev.deliver_rx nd frames;
  run engine 5;
  check_int "consumed" 3 (Workload.Bench_program.consumed bench);
  (* One cumulative ack for the batch. *)
  check_bool "acked" true (List.mem (7, 3) !acks);
  check_int "no strays" 0 (Workload.Bench_program.stray_frames bench)

let test_bench_receiver_role_sends_nothing () =
  let engine, _, stack, bench, dev_sent, _ = bench_fixture () in
  let c = conn ~id:1 () in
  Workload.Bench_program.add_stream bench ~stack ~tx:[] ~rx:[ c ];
  Workload.Bench_program.start bench;
  run engine 5;
  check_int "nothing transmitted" 0 (List.length !dev_sent)

let test_bench_stray_frames_counted () =
  let engine, nd, stack, bench, _, _ = bench_fixture () in
  Workload.Bench_program.add_stream bench ~stack ~tx:[] ~rx:[ conn ~id:1 () ];
  let stranger = conn ~id:999 () in
  Guestos.Netdev.deliver_rx nd [ Workload.Connection.make_frame stranger ];
  run engine 5;
  check_int "stray counted" 1 (Workload.Bench_program.stray_frames bench)

let suite =
  [
    ( "workload.connection",
      [
        Alcotest.test_case "window accounting" `Quick test_conn_window_accounting;
        Alcotest.test_case "frame sequence" `Quick test_conn_frames_sequence;
        Alcotest.test_case "in-order receive" `Quick test_conn_in_order_receive;
        Alcotest.test_case "integrity" `Quick test_conn_integrity_check;
        Alcotest.test_case "super-frames" `Quick test_conn_super_frames;
        Alcotest.test_case "reset" `Quick test_conn_reset;
      ] );
    ("workload.pattern", [ Alcotest.test_case "roles" `Quick test_pattern ]);
    ( "workload.bench_program",
      [
        Alcotest.test_case "fills windows" `Quick test_bench_fills_windows;
        Alcotest.test_case "balances connections" `Quick test_bench_balances_connections;
        Alcotest.test_case "credits refill" `Quick test_bench_credits_refill;
        Alcotest.test_case "rx consumes and acks" `Quick test_bench_rx_consumes_and_acks;
        Alcotest.test_case "receiver sends nothing" `Quick
          test_bench_receiver_role_sends_nothing;
        Alcotest.test_case "stray frames" `Quick test_bench_stray_frames_counted;
      ] );
  ]
