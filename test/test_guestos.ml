(* Tests for the guest OS library: netdev plumbing, the network stack,
   the bridge, the shared channel, the native driver end-to-end against a
   real NIC, and the netfront/netback paravirtual path. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let us = Sim.Time.us

let mk_frame ?(flow = 0) ?(seq = 0) ?(len = 1000) ~src ~dst () =
  Ethernet.Frame.make ~src ~dst ~kind:Ethernet.Frame.Data ~flow ~seq
    ~payload_len:len ~payload_seed:(flow + seq + 1) ()

(* ---------- Netdev ---------- *)

let test_netdev_plumbing () =
  let sent = ref [] in
  let nd =
    Guestos.Netdev.create ~mac:(Ethernet.Mac_addr.make 1)
      ~send:(fun fs -> sent := fs @ !sent)
      ~tx_space:(fun () -> 3)
  in
  let rxed = ref 0 and done_count = ref 0 and writable = ref 0 in
  Guestos.Netdev.set_rx_handler nd (fun fs -> rxed := !rxed + List.length fs);
  Guestos.Netdev.set_tx_done_handler nd (fun n -> done_count := !done_count + n);
  Guestos.Netdev.set_writable_hook nd (fun () -> incr writable);
  let f = mk_frame ~src:(Ethernet.Mac_addr.make 1) ~dst:(Ethernet.Mac_addr.make 2) () in
  Guestos.Netdev.send nd [ f; f ];
  check_int "sent through" 2 (List.length !sent);
  check_int "counter" 2 (Guestos.Netdev.frames_sent nd);
  Guestos.Netdev.deliver_rx nd [ f ];
  check_int "rx delivered" 1 !rxed;
  check_int "rx counter" 1 (Guestos.Netdev.frames_received nd);
  Guestos.Netdev.notify_tx_done nd 2;
  Guestos.Netdev.notify_writable nd;
  check_int "tx done" 2 !done_count;
  check_int "writable" 1 !writable;
  check_int "tx space" 3 (Guestos.Netdev.tx_space nd)

(* ---------- Net_stack ---------- *)

let stack_fixture ~tx_space =
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu = Host.Cpu.create engine ~profile () in
  let entity = Host.Cpu.add_entity cpu ~name:"g" ~weight:256 ~domain:0 in
  let post_kernel ~cost fn =
    Host.Cpu.post cpu entity ~category:(Host.Category.Kernel 0) ~cost fn
  in
  let dev_sent = ref [] in
  let space = ref tx_space in
  let nd =
    Guestos.Netdev.create ~mac:(Ethernet.Mac_addr.make 1)
      ~send:(fun fs ->
        space := !space - List.length fs;
        dev_sent := !dev_sent @ fs)
      ~tx_space:(fun () -> !space)
  in
  let stack =
    Guestos.Net_stack.create ~post_kernel ~costs:Guestos.Os_costs.default
      ~netdev:nd
  in
  (engine, profile, nd, stack, dev_sent, space)

let run engine ms =
  Sim.Engine.run engine
    ~until:(Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms ms))

let test_stack_send_charges_kernel_time () =
  let engine, profile, _, stack, dev_sent, _ = stack_fixture ~tx_space:10 in
  let f = mk_frame ~src:(Ethernet.Mac_addr.make 1) ~dst:(Ethernet.Mac_addr.make 2) () in
  Guestos.Net_stack.send stack [ f; f; f ];
  check_int "nothing before CPU runs" 0 (List.length !dev_sent);
  run engine 1;
  check_int "all pushed" 3 (List.length !dev_sent);
  check_int "sent counter" 3 (Guestos.Net_stack.frames_sent stack);
  check_bool "kernel time charged" true
    (Host.Profile.total profile (Host.Category.Kernel 0) > 0)

let test_stack_backlog_and_drain () =
  let engine, _, nd, stack, dev_sent, space = stack_fixture ~tx_space:2 in
  let f = mk_frame ~src:(Ethernet.Mac_addr.make 1) ~dst:(Ethernet.Mac_addr.make 2) () in
  let writable = ref 0 in
  Guestos.Net_stack.set_writable_hook stack (fun () -> incr writable);
  Guestos.Net_stack.send stack [ f; f; f; f ];
  run engine 1;
  check_int "device limit respected" 2 (List.length !dev_sent);
  check_int "backlog" 2 (Guestos.Net_stack.backlog stack);
  (* The device completes and frees space. *)
  space := 2;
  Guestos.Netdev.notify_tx_done nd 2;
  run engine 1;
  check_int "drained" 4 (List.length !dev_sent);
  check_int "backlog empty" 0 (Guestos.Net_stack.backlog stack);
  check_bool "writable fired" true (!writable > 0)

let test_stack_rx_path () =
  let engine, profile, nd, stack, _, _ = stack_fixture ~tx_space:10 in
  let got = ref 0 in
  Guestos.Net_stack.set_rx_handler stack (fun fs -> got := !got + List.length fs);
  let f = mk_frame ~src:(Ethernet.Mac_addr.make 2) ~dst:(Ethernet.Mac_addr.make 1) () in
  Guestos.Netdev.deliver_rx nd [ f; f ];
  check_int "async" 0 !got;
  run engine 1;
  check_int "delivered after kernel work" 2 !got;
  check_int "received counter" 2 (Guestos.Net_stack.frames_received stack);
  check_bool "rx kernel cost" true
    (Host.Profile.total profile (Host.Category.Kernel 0) > 0)

(* ---------- Bridge ---------- *)

let test_bridge_routing () =
  let b = Guestos.Bridge.create () in
  let p1 = Guestos.Bridge.add_port b "guest1" in
  let p2 = Guestos.Bridge.add_port b "guest2" in
  let pn = Guestos.Bridge.add_port b "nic" in
  let m1 = Ethernet.Mac_addr.make 1
  and m2 = Ethernet.Mac_addr.make 2
  and peer = Ethernet.Mac_addr.make 9 in
  Guestos.Bridge.learn b p1 m1;
  Guestos.Bridge.learn b p2 m2;
  Guestos.Bridge.learn b pn peer;
  (* Known unicast. *)
  (match Guestos.Bridge.route b ~ingress:p1 (mk_frame ~src:m1 ~dst:peer ()) with
  | Guestos.Bridge.To p -> check Alcotest.string "to nic" "nic" (Guestos.Bridge.payload p)
  | _ -> Alcotest.fail "expected unicast");
  (* Inter-guest. *)
  (match Guestos.Bridge.route b ~ingress:p1 (mk_frame ~src:m1 ~dst:m2 ()) with
  | Guestos.Bridge.To p -> check Alcotest.string "to guest2" "guest2" (Guestos.Bridge.payload p)
  | _ -> Alcotest.fail "expected unicast");
  (* Unknown floods, excluding ingress. *)
  (match
     Guestos.Bridge.route b ~ingress:p1
       (mk_frame ~src:m1 ~dst:(Ethernet.Mac_addr.make 77) ())
   with
  | Guestos.Bridge.Flood ports ->
      check_int "two others" 2 (List.length ports);
      check_bool "not ingress" true
        (List.for_all (fun p -> Guestos.Bridge.payload p <> "guest1") ports)
  | _ -> Alcotest.fail "expected flood");
  (* Destination behind ingress drops. *)
  (match Guestos.Bridge.route b ~ingress:p1 (mk_frame ~src:m1 ~dst:m1 ()) with
  | Guestos.Bridge.Drop -> ()
  | _ -> Alcotest.fail "expected drop")

let test_bridge_learns_from_route () =
  let b = Guestos.Bridge.create () in
  let p1 = Guestos.Bridge.add_port b 1 in
  let _p2 = Guestos.Bridge.add_port b 2 in
  let m = Ethernet.Mac_addr.make 42 in
  ignore
    (Guestos.Bridge.route b ~ingress:p1
       (mk_frame ~src:m ~dst:(Ethernet.Mac_addr.make 1) ()));
  check_bool "learned src" true
    (match Guestos.Bridge.lookup b m with
    | Some p -> Guestos.Bridge.payload p = 1
    | None -> false)

(* ---------- Xchan ---------- *)

let test_xchan_capacity () =
  let x = Guestos.Xchan.create ~capacity:2 in
  let e = { Guestos.Xchan.frame = mk_frame ~src:(Ethernet.Mac_addr.make 1) ~dst:(Ethernet.Mac_addr.make 2) (); pfn = 3 } in
  check_bool "push 1" true (Guestos.Xchan.tx_push x e);
  check_bool "push 2" true (Guestos.Xchan.tx_push x e);
  check_bool "full" false (Guestos.Xchan.tx_push x e);
  check_int "used" 2 (Guestos.Xchan.tx_used x);
  ignore (Guestos.Xchan.tx_pop x);
  check_int "space" 1 (Guestos.Xchan.tx_space x)

let test_xchan_completions () =
  let x = Guestos.Xchan.create ~capacity:4 in
  Guestos.Xchan.push_tx_completion x ~pages:[ 1; 2 ] ~count:2;
  Guestos.Xchan.push_tx_completion x ~pages:[ 3 ] ~count:1;
  check_int "pending" 3 (Guestos.Xchan.tx_completions_pending x);
  let count, pages = Guestos.Xchan.take_tx_completions x in
  check_int "count" 3 count;
  check_int "pages" 3 (List.length pages);
  check_int "cleared" 0 (Guestos.Xchan.tx_completions_pending x)

let test_xchan_returned_pages () =
  let x = Guestos.Xchan.create ~capacity:4 in
  Guestos.Xchan.push_returned_page x 7;
  Guestos.Xchan.push_returned_page x 8;
  check_int "taken" 2 (List.length (Guestos.Xchan.take_returned_pages x));
  check_int "empty after" 0 (List.length (Guestos.Xchan.take_returned_pages x))

(* ---------- Native driver end-to-end ---------- *)

type native_fixture = {
  nf_engine : Sim.Engine.t;
  nf_driver : Guestos.Native_driver.t;
  nf_stack : Guestos.Net_stack.t;
  nf_link : Ethernet.Link.t;
}

let native_fixture ?(materialize = false) () =
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu = Host.Cpu.create engine ~profile () in
  let mem = Memory.Phys_mem.create ~total_pages:2048 () in
  let hyp = Xen.Hypervisor.create engine ~cpu ~mem () in
  let dom =
    Xen.Hypervisor.create_domain hyp ~name:"os" ~kind:Xen.Domain.Native
      ~weight:256 ~mem_pages:1024
  in
  let post_kernel ~cost fn = Xen.Hypervisor.kernel_work hyp dom ~cost fn in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let irq = Bus.Irq.create ~name:"nic" in
  let config =
    { Nic.Nic_config.intel with Nic.Nic_config.materialize_payloads = materialize }
  in
  let nic = Nic.Intel_nic.create engine ~mem ~dma ~config ~irq ~dma_context:0 () in
  let link = Ethernet.Link.create engine () in
  Nic.Intel_nic.attach_link nic link ~side:Ethernet.Link.A;
  Nic.Intel_nic.enable nic ~mac:(Ethernet.Mac_addr.make 1);
  let driver_ref = ref None in
  Bus.Irq.set_handler irq (fun () ->
      Host.Cpu.post cpu (Xen.Domain.entity dom)
        ~category:(Xen.Domain.kernel dom) ~cost:(us 1) (fun () ->
          match !driver_ref with
          | Some d -> Guestos.Native_driver.handle_interrupt d
          | None -> ()));
  let driver =
    Guestos.Native_driver.create ~mem ~post_kernel
      ~costs:Guestos.Os_costs.default ~hw:(Nic.Intel_nic.driver_if nic)
      ~mac:(Ethernet.Mac_addr.make 1)
      ~alloc_pages:(fun n -> Xen.Hypervisor.alloc_pages hyp dom n)
      ~materialize ()
  in
  driver_ref := Some driver;
  let stack =
    Guestos.Net_stack.create ~post_kernel ~costs:Guestos.Os_costs.default
      ~netdev:(Guestos.Native_driver.netdev driver)
  in
  { nf_engine = engine; nf_driver = driver; nf_stack = stack; nf_link = link }

let test_native_driver_transmits () =
  let fx = native_fixture () in
  let wire = ref [] in
  Ethernet.Link.attach fx.nf_link Ethernet.Link.B (fun f -> wire := f :: !wire);
  let frames =
    List.init 10 (fun i ->
        mk_frame ~seq:i ~src:(Ethernet.Mac_addr.make 1)
          ~dst:(Ethernet.Mac_addr.make 9) ())
  in
  Guestos.Net_stack.send fx.nf_stack frames;
  run fx.nf_engine 5;
  check_int "all on wire" 10 (List.length !wire);
  check_int "driver tx count" 10 (Guestos.Native_driver.tx_count fx.nf_driver)

let test_native_driver_receives () =
  let fx = native_fixture () in
  let got = ref [] in
  Guestos.Net_stack.set_rx_handler fx.nf_stack (fun fs -> got := fs @ !got);
  for i = 0 to 4 do
    Ethernet.Link.send fx.nf_link ~from:Ethernet.Link.B
      (mk_frame ~seq:i ~src:(Ethernet.Mac_addr.make 9)
         ~dst:(Ethernet.Mac_addr.make 1) ())
      ~on_wire_free:ignore
  done;
  run fx.nf_engine 5;
  check_int "all delivered" 5 (List.length !got);
  check_int "driver rx count" 5 (Guestos.Native_driver.rx_count fx.nf_driver);
  check_bool "polled" true (Guestos.Native_driver.polls fx.nf_driver > 0)

let test_native_driver_ring_wraps () =
  (* More packets than ring slots: recycling must work. *)
  let fx = native_fixture () in
  let wire = ref 0 in
  Ethernet.Link.attach fx.nf_link Ethernet.Link.B (fun _ -> incr wire);
  let total = 600 (* > 256 ring slots, forces multiple wraps *) in
  let rec send_batch i =
    if i < total then begin
      let n = min 50 (total - i) in
      let frames =
        List.init n (fun j ->
            mk_frame ~seq:(i + j) ~src:(Ethernet.Mac_addr.make 1)
              ~dst:(Ethernet.Mac_addr.make 9) ())
      in
      Guestos.Net_stack.send fx.nf_stack frames;
      ignore
        (Sim.Engine.schedule fx.nf_engine ~delay:(Sim.Time.ms 1) (fun () ->
             send_batch (i + n)))
    end
  in
  send_batch 0;
  run fx.nf_engine 100;
  check_int "all made it" total !wire

let test_native_driver_materialized_integrity () =
  let fx = native_fixture ~materialize:true () in
  let wire = ref [] in
  Ethernet.Link.attach fx.nf_link Ethernet.Link.B (fun f -> wire := f :: !wire);
  Guestos.Net_stack.send fx.nf_stack
    [ mk_frame ~len:777 ~src:(Ethernet.Mac_addr.make 1) ~dst:(Ethernet.Mac_addr.make 9) () ];
  run fx.nf_engine 5;
  match !wire with
  | [ f ] ->
      check_bool "payload intact through buffers and DMA" true
        (Ethernet.Frame.data_valid f);
      check_bool "bytes attached" true (f.Ethernet.Frame.data <> None)
  | _ -> Alcotest.fail "expected one frame"

let test_native_driver_scatter_gather () =
  (* With sg_split the driver emits header+payload descriptor pairs; the
     NIC reassembles and the receiver verifies every byte. *)
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu = Host.Cpu.create engine ~profile () in
  let mem = Memory.Phys_mem.create ~total_pages:2048 () in
  let hyp = Xen.Hypervisor.create engine ~cpu ~mem () in
  let dom =
    Xen.Hypervisor.create_domain hyp ~name:"os" ~kind:Xen.Domain.Native
      ~weight:256 ~mem_pages:1024
  in
  let post_kernel ~cost fn = Xen.Hypervisor.kernel_work hyp dom ~cost fn in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let irq = Bus.Irq.create ~name:"nic" in
  Bus.Irq.set_handler irq (fun () -> ());
  let config =
    { Nic.Nic_config.intel with Nic.Nic_config.materialize_payloads = true }
  in
  let nic = Nic.Intel_nic.create engine ~mem ~dma ~config ~irq ~dma_context:0 () in
  let link = Ethernet.Link.create engine () in
  Nic.Intel_nic.attach_link nic link ~side:Ethernet.Link.A;
  Nic.Intel_nic.enable nic ~mac:(Ethernet.Mac_addr.make 1);
  let driver =
    Guestos.Native_driver.create ~mem ~post_kernel
      ~costs:Guestos.Os_costs.default ~hw:(Nic.Intel_nic.driver_if nic)
      ~mac:(Ethernet.Mac_addr.make 1)
      ~alloc_pages:(fun n -> Xen.Hypervisor.alloc_pages hyp dom n)
      ~materialize:true ~sg_split:128 ()
  in
  let stack =
    Guestos.Net_stack.create ~post_kernel ~costs:Guestos.Os_costs.default
      ~netdev:(Guestos.Native_driver.netdev driver)
  in
  let wire = ref [] in
  Ethernet.Link.attach link Ethernet.Link.B (fun f -> wire := f :: !wire);
  (* One short packet (single descriptor) and one long (two). *)
  Guestos.Net_stack.send stack
    [
      mk_frame ~seq:0 ~len:100 ~src:(Ethernet.Mac_addr.make 1)
        ~dst:(Ethernet.Mac_addr.make 9) ();
      mk_frame ~seq:1 ~len:1400 ~src:(Ethernet.Mac_addr.make 1)
        ~dst:(Ethernet.Mac_addr.make 9) ();
    ];
  run engine 5;
  check_int "both frames arrived" 2 (List.length !wire);
  List.iter
    (fun f -> check_bool "payload intact across fragments" true (Ethernet.Frame.data_valid f))
    !wire

(* ---------- Netfront/Netback integration ---------- *)

type pv_fixture = {
  pv_engine : Sim.Engine.t;
  pv_stack : Guestos.Net_stack.t;
  pv_netback : Guestos.Netback.t;
  pv_link : Ethernet.Link.t;
  pv_guest : Xen.Domain.t;
  pv_driver_dom : Xen.Domain.t;
  pv_mem : Memory.Phys_mem.t;
  pv_netfront : Guestos.Netfront.t;
  pv_hyp : Xen.Hypervisor.t;
}

let pv_fixture ?(materialize = false) () =
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu = Host.Cpu.create engine ~profile () in
  let mem = Memory.Phys_mem.create ~total_pages:49152 () in
  let hyp = Xen.Hypervisor.create engine ~cpu ~mem () in
  let driver_dom =
    Xen.Hypervisor.create_domain hyp ~name:"driver" ~kind:Xen.Domain.Driver
      ~weight:256 ~mem_pages:16384
  in
  let guest =
    Xen.Hypervisor.create_domain hyp ~name:"guest" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:8192
  in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let irq = Bus.Irq.create ~name:"nic" in
  let config =
    { Nic.Nic_config.intel with Nic.Nic_config.materialize_payloads = materialize }
  in
  let nic = Nic.Intel_nic.create engine ~mem ~dma ~config ~irq ~dma_context:0 () in
  let link = Ethernet.Link.create engine () in
  Nic.Intel_nic.attach_link nic link ~side:Ethernet.Link.A;
  Nic.Intel_nic.enable nic ~mac:(Ethernet.Mac_addr.make 100);
  let post_driver ~cost fn = Xen.Hypervisor.kernel_work hyp driver_dom ~cost fn in
  let phys_driver =
    Guestos.Native_driver.create ~mem ~post_kernel:post_driver
      ~costs:Guestos.Os_costs.default ~hw:(Nic.Intel_nic.driver_if nic)
      ~mac:(Ethernet.Mac_addr.make 100)
      ~alloc_pages:(fun n -> Xen.Hypervisor.alloc_pages hyp driver_dom n)
      ~materialize ()
  in
  let nic_chan =
    Xen.Event_channel.create hyp ~target:driver_dom ~isr_cost:(us 1)
      ~handler:(fun () -> Guestos.Native_driver.handle_interrupt phys_driver)
  in
  Xen.Hypervisor.route_irq hyp irq (fun () ->
      Xen.Event_channel.notify_from_hypervisor nic_chan);
  let netback =
    Guestos.Netback.create ~hyp ~gnt:(Xen.Grant_table.create hyp) ~dom:driver_dom
      ~costs:Guestos.Netback.default_costs ~materialize ()
  in
  Guestos.Netback.add_physical netback
    (Guestos.Native_driver.netdev phys_driver)
    ~remote_macs:[ Ethernet.Mac_addr.make 200 ];
  let xchan = Guestos.Xchan.create ~capacity:256 in
  let chan_to_driver =
    Xen.Event_channel.create hyp ~target:driver_dom ~isr_cost:(us 1)
      ~handler:(fun () -> Guestos.Netback.schedule netback)
  in
  let netfront =
    Guestos.Netfront.create ~hyp ~gnt:(Xen.Grant_table.create hyp) ~dom:guest ~costs:Guestos.Os_costs.default
      ~xchan ~mac:(Ethernet.Mac_addr.make 1)
      ~notify_backend:(fun () ->
        Xen.Event_channel.notify chan_to_driver ~from:guest)
      ~materialize ()
  in
  let chan_to_guest =
    Xen.Event_channel.create hyp ~target:guest ~isr_cost:(us 1)
      ~handler:(fun () -> Guestos.Netfront.handle_event netfront)
  in
  ignore
    (Guestos.Netback.add_interface netback ~guest_dom:guest
       ~guest_mac:(Ethernet.Mac_addr.make 1) ~xchan
       ~notify_frontend:(fun () ->
         Xen.Event_channel.notify chan_to_guest ~from:driver_dom));
  let post_guest ~cost fn = Xen.Hypervisor.kernel_work hyp guest ~cost fn in
  let stack =
    Guestos.Net_stack.create ~post_kernel:post_guest
      ~costs:Guestos.Os_costs.default
      ~netdev:(Guestos.Netfront.netdev netfront)
  in
  {
    pv_engine = engine;
    pv_stack = stack;
    pv_netback = netback;
    pv_link = link;
    pv_guest = guest;
    pv_driver_dom = driver_dom;
    pv_mem = mem;
    pv_netfront = netfront;
    pv_hyp = hyp;
  }

let test_pv_guest_transmit () =
  let fx = pv_fixture () in
  let wire = ref [] in
  Ethernet.Link.attach fx.pv_link Ethernet.Link.B (fun f -> wire := f :: !wire);
  let frames =
    List.init 20 (fun i ->
        mk_frame ~seq:i ~src:(Ethernet.Mac_addr.make 1)
          ~dst:(Ethernet.Mac_addr.make 200) ())
  in
  Guestos.Net_stack.send fx.pv_stack frames;
  run fx.pv_engine 20;
  check_int "all forwarded to the wire" 20 (List.length !wire);
  check_int "netback counted" 20 (Guestos.Netback.tx_forwarded fx.pv_netback);
  check_int "netfront counted" 20 (Guestos.Netfront.tx_count fx.pv_netfront)

let test_pv_guest_receive () =
  let fx = pv_fixture () in
  let got = ref [] in
  Guestos.Net_stack.set_rx_handler fx.pv_stack (fun fs -> got := fs @ !got);
  for i = 0 to 14 do
    Ethernet.Link.send fx.pv_link ~from:Ethernet.Link.B
      (mk_frame ~seq:i ~src:(Ethernet.Mac_addr.make 200)
         ~dst:(Ethernet.Mac_addr.make 1) ())
      ~on_wire_free:ignore
  done;
  run fx.pv_engine 20;
  check_int "delivered up the guest stack" 15 (List.length !got);
  check_int "netback delivered" 15 (Guestos.Netback.rx_delivered fx.pv_netback)

let test_pv_page_exchange_conserves_pools () =
  let fx = pv_fixture () in
  let pool_before = Guestos.Netfront.pool_size fx.pv_netfront in
  let nb_before = Guestos.Netback.pool_size fx.pv_netback in
  let guest_pages_before = Xen.Domain.page_count fx.pv_guest in
  let frames =
    List.init 30 (fun i ->
        mk_frame ~seq:i ~src:(Ethernet.Mac_addr.make 1)
          ~dst:(Ethernet.Mac_addr.make 200) ())
  in
  Guestos.Net_stack.send fx.pv_stack frames;
  for i = 0 to 29 do
    Ethernet.Link.send fx.pv_link ~from:Ethernet.Link.B
      (mk_frame ~seq:i ~src:(Ethernet.Mac_addr.make 200)
         ~dst:(Ethernet.Mac_addr.make 1) ())
      ~on_wire_free:ignore
  done;
  run fx.pv_engine 50;
  check_int "netfront pool conserved" pool_before
    (Guestos.Netfront.pool_size fx.pv_netfront);
  check_int "netback pool conserved" nb_before
    (Guestos.Netback.pool_size fx.pv_netback);
  check_int "guest page accounting conserved" guest_pages_before
    (Xen.Domain.page_count fx.pv_guest)

(* Attach one more paravirtual guest to an existing fixture's netback. *)
let add_pv_guest fx ~mac_idx =
  let hyp = fx.pv_hyp in
  let dom =
    Xen.Hypervisor.create_domain hyp
      ~name:(Printf.sprintf "guest%d" mac_idx)
      ~kind:Xen.Domain.Guest ~weight:256 ~mem_pages:8192
  in
  let mac = Ethernet.Mac_addr.make mac_idx in
  let xchan = Guestos.Xchan.create ~capacity:256 in
  let chan_to_driver =
    Xen.Event_channel.create hyp ~target:fx.pv_driver_dom ~isr_cost:(us 1)
      ~handler:(fun () -> Guestos.Netback.schedule fx.pv_netback)
  in
  let netfront =
    Guestos.Netfront.create ~hyp ~gnt:(Xen.Grant_table.create hyp) ~dom
      ~costs:Guestos.Os_costs.default ~xchan
      ~mac
      ~notify_backend:(fun () ->
        Xen.Event_channel.notify chan_to_driver ~from:dom)
      ()
  in
  let chan_to_guest =
    Xen.Event_channel.create hyp ~target:dom ~isr_cost:(us 1)
      ~handler:(fun () -> Guestos.Netfront.handle_event netfront)
  in
  ignore
    (Guestos.Netback.add_interface fx.pv_netback ~guest_dom:dom
       ~guest_mac:mac ~xchan
       ~notify_frontend:(fun () ->
         Xen.Event_channel.notify chan_to_guest ~from:fx.pv_driver_dom));
  let post_kernel ~cost fn = Xen.Hypervisor.kernel_work hyp dom ~cost fn in
  Guestos.Net_stack.create ~post_kernel ~costs:Guestos.Os_costs.default
    ~netdev:(Guestos.Netfront.netdev netfront)

let test_pv_inter_guest_traffic () =
  (* Two guests on the same bridge exchange frames without touching the
     physical NIC: guest1 tx -> netback -> bridge -> guest2 rx (paper
     figure 1's bridge interconnects all virtual interfaces). *)
  let fx = pv_fixture () in
  let stack2 = add_pv_guest fx ~mac_idx:2 in
  let got2 = ref [] in
  Guestos.Net_stack.set_rx_handler stack2 (fun fs -> got2 := fs @ !got2);
  let wire = ref 0 in
  Ethernet.Link.attach fx.pv_link Ethernet.Link.B (fun _ -> incr wire);
  let frames =
    List.init 10 (fun i ->
        mk_frame ~seq:i ~src:(Ethernet.Mac_addr.make 1)
          ~dst:(Ethernet.Mac_addr.make 2) ())
  in
  Guestos.Net_stack.send fx.pv_stack frames;
  run fx.pv_engine 20;
  check_int "delivered guest-to-guest" 10 (List.length !got2);
  check_int "nothing left the machine" 0 !wire

let test_netfront_pool_exhaustion_backpressure () =
  (* A netfront with a tiny exchange pool can only expose as much transmit
     capacity as it has pages; the stack backlogs the rest instead of
     losing it, and it drains as completions return pages. *)
  let fx = pv_fixture () in
  ignore fx;
  (* Build a dedicated guest with a 4-page pool on the same fixture. *)
  let hyp = fx.pv_hyp in
  let dom =
    Xen.Hypervisor.create_domain hyp ~name:"tiny" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:4096
  in
  let xchan = Guestos.Xchan.create ~capacity:256 in
  let chan_to_driver =
    Xen.Event_channel.create hyp ~target:fx.pv_driver_dom ~isr_cost:(us 1)
      ~handler:(fun () -> Guestos.Netback.schedule fx.pv_netback)
  in
  let netfront =
    Guestos.Netfront.create ~hyp ~gnt:(Xen.Grant_table.create hyp) ~dom
      ~costs:Guestos.Os_costs.default ~xchan
      ~mac:(Ethernet.Mac_addr.make 33)
      ~notify_backend:(fun () ->
        Xen.Event_channel.notify chan_to_driver ~from:dom)
      ~pool_pages:4 ()
  in
  let chan_to_guest =
    Xen.Event_channel.create hyp ~target:dom ~isr_cost:(us 1)
      ~handler:(fun () -> Guestos.Netfront.handle_event netfront)
  in
  ignore
    (Guestos.Netback.add_interface fx.pv_netback ~guest_dom:dom
       ~guest_mac:(Ethernet.Mac_addr.make 33) ~xchan
       ~notify_frontend:(fun () ->
         Xen.Event_channel.notify chan_to_guest ~from:fx.pv_driver_dom));
  let post_kernel ~cost fn = Xen.Hypervisor.kernel_work hyp dom ~cost fn in
  let stack =
    Guestos.Net_stack.create ~post_kernel ~costs:Guestos.Os_costs.default
      ~netdev:(Guestos.Netfront.netdev netfront)
  in
  let wire = ref 0 in
  Ethernet.Link.attach fx.pv_link Ethernet.Link.B (fun _ -> incr wire);
  check_int "pool bounds capacity" 4
    (Guestos.Net_stack.capacity stack);
  Guestos.Net_stack.send stack
    (List.init 12 (fun i ->
         mk_frame ~seq:i ~src:(Ethernet.Mac_addr.make 33)
           ~dst:(Ethernet.Mac_addr.make 200) ()));
  run fx.pv_engine 30;
  (* Despite the 4-page pool, all 12 frames eventually flow (page
     exchange returns pages with completions). *)
  check_int "all drained through the tiny pool" 12 !wire

let test_pv_materialized_integrity () =
  let fx = pv_fixture ~materialize:true () in
  let wire = ref [] in
  Ethernet.Link.attach fx.pv_link Ethernet.Link.B (fun f -> wire := f :: !wire);
  let got = ref [] in
  Guestos.Net_stack.set_rx_handler fx.pv_stack (fun fs -> got := fs @ !got);
  Guestos.Net_stack.send fx.pv_stack
    [ mk_frame ~len:900 ~src:(Ethernet.Mac_addr.make 1) ~dst:(Ethernet.Mac_addr.make 200) () ];
  Ethernet.Link.send fx.pv_link ~from:Ethernet.Link.B
    (Ethernet.Frame.with_data
       (mk_frame ~len:800 ~src:(Ethernet.Mac_addr.make 200)
          ~dst:(Ethernet.Mac_addr.make 1) ()))
    ~on_wire_free:ignore;
  run fx.pv_engine 20;
  (match !wire with
  | [ f ] -> check_bool "tx payload intact through flips" true (Ethernet.Frame.data_valid f)
  | _ -> Alcotest.fail "expected one tx frame");
  match !got with
  | [ f ] -> check_bool "rx payload intact through flips" true (Ethernet.Frame.data_valid f)
  | _ -> Alcotest.fail "expected one rx frame"

let suite =
  [
    ("guestos.netdev", [ Alcotest.test_case "plumbing" `Quick test_netdev_plumbing ]);
    ( "guestos.net_stack",
      [
        Alcotest.test_case "send charges kernel" `Quick test_stack_send_charges_kernel_time;
        Alcotest.test_case "backlog and drain" `Quick test_stack_backlog_and_drain;
        Alcotest.test_case "rx path" `Quick test_stack_rx_path;
      ] );
    ( "guestos.bridge",
      [
        Alcotest.test_case "routing" `Quick test_bridge_routing;
        Alcotest.test_case "learning" `Quick test_bridge_learns_from_route;
      ] );
    ( "guestos.xchan",
      [
        Alcotest.test_case "capacity" `Quick test_xchan_capacity;
        Alcotest.test_case "completions" `Quick test_xchan_completions;
        Alcotest.test_case "returned pages" `Quick test_xchan_returned_pages;
      ] );
    ( "guestos.native_driver",
      [
        Alcotest.test_case "transmits" `Quick test_native_driver_transmits;
        Alcotest.test_case "receives" `Quick test_native_driver_receives;
        Alcotest.test_case "ring wraps" `Quick test_native_driver_ring_wraps;
        Alcotest.test_case "materialized integrity" `Quick
          test_native_driver_materialized_integrity;
        Alcotest.test_case "scatter/gather" `Quick test_native_driver_scatter_gather;
      ] );
    ( "guestos.paravirtual",
      [
        Alcotest.test_case "guest transmit" `Quick test_pv_guest_transmit;
        Alcotest.test_case "guest receive" `Quick test_pv_guest_receive;
        Alcotest.test_case "page exchange conserves" `Quick
          test_pv_page_exchange_conserves_pools;
        Alcotest.test_case "inter-guest traffic" `Quick test_pv_inter_guest_traffic;
        Alcotest.test_case "pool exhaustion backpressure" `Quick
          test_netfront_pool_exhaustion_backpressure;
        Alcotest.test_case "materialized integrity" `Quick test_pv_materialized_integrity;
      ] );
  ]
