(* Tests for the million-flow open-loop engine: Workload.Flow_table
   (model equivalence against a naive Hashtbl), Workload.Pattern arrival
   processes, Sim.Stats.Histogram multi-quantile read-out, the dynamic
   zero-allocation guarantee of the admission/service path, and
   byte-identical determinism of Experiments.Flows points across shard
   counts. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let qcheck = QCheck_alcotest.to_alcotest

module Ft = Workload.Flow_table
module Arrival = Workload.Pattern.Arrival
module Histogram = Sim.Stats.Histogram

(* ---------- Flow_table unit tests ---------- *)

let test_pack_roundtrip () =
  let k = Ft.pack ~src:123_456 ~dst:987_654 in
  check_int "src" 123_456 (Ft.src_of_key k);
  check_int "dst" 987_654 (Ft.dst_of_key k);
  let m = (1 lsl 31) - 1 in
  let k = Ft.pack ~src:m ~dst:m in
  check_int "src max" m (Ft.src_of_key k);
  check_int "dst max" m (Ft.dst_of_key k);
  check_bool "key non-negative" true (k >= 0);
  Alcotest.check_raises "src out of range"
    (Invalid_argument "Flow_table.pack: endpoint out of range") (fun () ->
      ignore (Ft.pack ~src:(1 lsl 31) ~dst:0))

let test_insert_find_complete () =
  let t = Ft.create ~capacity:4 in
  let key = Ft.pack ~src:1 ~dst:2 in
  let slot = Ft.insert t ~key ~pkts:10 ~now:1_000 in
  check_bool "admitted" true (slot >= 0);
  check_int "find" slot (Ft.find t ~key);
  check_int "live" 1 (Ft.live t);
  check_int "remaining" 10 (Ft.remaining t ~slot);
  check_int "dec" 9 (Ft.dec_remaining t ~slot);
  check_int "latency" 4_000 (Ft.complete t ~slot ~now:5_000);
  check_int "gone" (-1) (Ft.find t ~key);
  check_int "live after" 0 (Ft.live t);
  check_int "completed" 1 (Ft.completed t)

let test_reject_dup_and_full () =
  let t = Ft.create ~capacity:2 in
  let k i = Ft.pack ~src:i ~dst:0 in
  check_bool "first" true (Ft.insert t ~key:(k 1) ~pkts:1 ~now:0 >= 0);
  check_int "dup" (-2) (Ft.insert t ~key:(k 1) ~pkts:1 ~now:0);
  check_bool "second" true (Ft.insert t ~key:(k 2) ~pkts:1 ~now:0 >= 0);
  check_int "full" (-1) (Ft.insert t ~key:(k 3) ~pkts:1 ~now:0);
  check_int "rejected_dup" 1 (Ft.rejected_dup t);
  check_int "rejected_full" 1 (Ft.rejected_full t)

let test_embryonic () =
  let t = Ft.create ~capacity:4 in
  let key = Ft.pack ~src:9 ~dst:9 in
  let slot = Ft.insert t ~key ~pkts:0 ~now:0 in
  check_bool "embryonic" true (Ft.is_embryonic t ~slot);
  Ft.expire t ~slot;
  check_int "expired" 1 (Ft.expired t);
  check_int "live" 0 (Ft.live t)

(* Model equivalence: drive the flat table and a naive [Hashtbl] model
   through the same random interleaving of insert / complete / expire /
   dec_remaining over a small keyspace and a small capacity (so full-table
   rejections and backward-shift deletions inside probe clusters are both
   exercised), then require identical observable state at every step. *)
let prop_flow_table_model =
  QCheck.Test.make ~count:500 ~name:"flow table matches hashtbl model"
    QCheck.(
      list_of_size
        Gen.(int_range 1 120)
        (triple (int_range 0 3) (int_range 0 23) (int_range 0 5)))
    (fun ops ->
      let cap = 6 in
      let t = Ft.create ~capacity:cap in
      (* key -> (remaining, arrived_at) *)
      let model : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
      let now = ref 0 in
      let fail fmt = QCheck.Test.fail_reportf fmt in
      List.iter
        (fun (op, k, pkts) ->
          now := !now + 7;
          let key = Ft.pack ~src:(k land 7) ~dst:(k lsr 3) in
          match op with
          | 0 ->
              let slot = Ft.insert t ~key ~pkts ~now:!now in
              (* The full check runs before the duplicate probe (the hot
                 path never probes a full table), so at capacity even a
                 duplicate key reports -1. *)
              if Hashtbl.length model >= cap then (
                if slot <> -1 then fail "over-capacity admit (slot %d)" slot)
              else if Hashtbl.mem model key then (
                if slot <> -2 then fail "dup key admitted (slot %d)" slot)
              else if slot < 0 then fail "spurious reject (slot %d)" slot
              else Hashtbl.replace model key (pkts, !now)
          | 1 -> (
              let slot = Ft.find t ~key in
              match Hashtbl.find_opt model key with
              | None -> if slot <> -1 then fail "found dead key"
              | Some (_, arrived) ->
                  if slot < 0 then fail "lost live key";
                  let lat = Ft.complete t ~slot ~now:!now in
                  if lat <> !now - arrived then
                    fail "latency %d <> %d" lat (!now - arrived);
                  Hashtbl.remove model key)
          | 2 -> (
              let slot = Ft.find t ~key in
              match Hashtbl.find_opt model key with
              | None -> if slot <> -1 then fail "found dead key"
              | Some _ ->
                  if slot < 0 then fail "lost live key";
                  Ft.expire t ~slot;
                  Hashtbl.remove model key)
          | _ -> (
              let slot = Ft.find t ~key in
              match Hashtbl.find_opt model key with
              | None -> if slot <> -1 then fail "found dead key"
              | Some (rem, arrived) ->
                  if slot < 0 then fail "lost live key";
                  if rem = 0 then ()
                  else
                    let rem' = Ft.dec_remaining t ~slot in
                    if rem' <> rem - 1 then fail "rem %d <> %d" rem' (rem - 1);
                    Hashtbl.replace model key (rem - 1, arrived));
          if Ft.live t <> Hashtbl.length model then
            fail "live %d <> model %d" (Ft.live t) (Hashtbl.length model))
        ops;
      (* Final sweep: membership and per-flow fields agree exactly. *)
      Hashtbl.iter
        (fun key (rem, arrived) ->
          let slot = Ft.find t ~key in
          if slot < 0 then fail "final: lost live key";
          if Ft.key_of_slot t slot <> key then fail "final: wrong slot key";
          if Ft.remaining t ~slot <> rem then fail "final: remaining drift";
          if Ft.arrived_at t ~slot <> arrived then fail "final: arrival drift")
        model;
      let seen = ref 0 in
      Ft.iter_live t (fun slot ->
          incr seen;
          if not (Hashtbl.mem model (Ft.key_of_slot t slot)) then
            fail "final: phantom live slot");
      !seen = Hashtbl.length model)

(* ---------- Pattern.Arrival ---------- *)

let test_arrival_constant () =
  let s = Arrival.source (Arrival.Constant { gap = Sim.Time.us 3 }) in
  for _ = 1 to 5 do
    check_int "gap" 3_000 (Arrival.next_gap s)
  done;
  check (Alcotest.float 1e-6) "mean" 3_000. (Arrival.mean_gap_ns s)

let test_arrival_poisson_mean () =
  let s = Arrival.source ~seed:7 (Arrival.Poisson { mean_gap = Sim.Time.us 10 }) in
  let n = 100_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    let g = Arrival.next_gap s in
    check_bool "positive" true (g >= 1);
    sum := !sum + g
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* Quantized inverse-CDF with 1024 entries: the long-run mean tracks the
     table mean, which sits within a few percent of the continuous 10us. *)
  check_bool "mean near 10us" true (mean > 9_000. && mean < 11_000.);
  let table_mean = Arrival.mean_gap_ns s in
  check_bool "matches table mean" true
    (Float.abs (mean -. table_mean) /. table_mean < 0.02)

let test_arrival_on_off () =
  let gap = Sim.Time.us 1 in
  let s =
    Arrival.source
      (Arrival.On_off { on = Sim.Time.us 4; off = Sim.Time.us 100; gap })
  in
  (* 4us burst at 1us spacing = 4 arrivals per burst; the gap after the
     last burst arrival carries the off-period. *)
  let gaps = Array.init 10 (fun _ -> Arrival.next_gap s) in
  let long = Array.to_list gaps |> List.filter (fun g -> g > 50_000) in
  check_int "one off-gap per burst cycle" 2 (List.length long);
  Array.iter (fun g -> check_bool "gap >= spacing" true (g >= 1_000)) gaps

let test_arrival_incast () =
  let s =
    Arrival.source (Arrival.Incast { fan_in = 4; period = Sim.Time.us 8 })
  in
  (* The first fan of [fan_in] arrivals lands at the start (all-zero
     gaps); afterwards one period-length gap separates consecutive fans
     of [fan_in] simultaneous arrivals. *)
  for i = 1 to 4 do
    check_int (Printf.sprintf "first fan %d" i) 0 (Arrival.next_gap s)
  done;
  for _ = 1 to 3 do
    check_int "period" 8_000 (Arrival.next_gap s);
    check_int "fan 2" 0 (Arrival.next_gap s);
    check_int "fan 3" 0 (Arrival.next_gap s);
    check_int "fan 4" 0 (Arrival.next_gap s)
  done;
  check (Alcotest.float 1e-6) "mean = period / fan_in" 2_000.
    (Arrival.mean_gap_ns s)

let test_arrival_validation () =
  Alcotest.check_raises "zero gap"
    (Invalid_argument "Arrival.source: gap must be positive") (fun () ->
      ignore (Arrival.source (Arrival.Constant { gap = 0 })));
  Alcotest.check_raises "fan_in"
    (Invalid_argument "Arrival.source: fan_in must be >= 1") (fun () ->
      ignore (Arrival.source (Arrival.Incast { fan_in = 0; period = 100 })))

let test_xorshift_nonzero () =
  let s = ref 42 in
  for _ = 1 to 1_000 do
    s := Workload.Pattern.xorshift !s;
    check_bool "never 0" true (!s <> 0);
    check_bool "non-negative" true (!s >= 0)
  done;
  check_int "deterministic" (Workload.Pattern.xorshift 42)
    (Workload.Pattern.xorshift 42)

(* ---------- Histogram multi-quantile ---------- *)

let test_quantiles_basic () =
  let h = Histogram.create () in
  for v = 1 to 1_000 do
    Histogram.add h v
  done;
  let qs = [| 50.; 99.; 99.9 |] in
  let out = Histogram.quantiles h qs in
  check_int "matches percentile p50" (Histogram.percentile h 50.) out.(0);
  check_int "matches percentile p99" (Histogram.percentile h 99.) out.(1);
  check_int "matches percentile p999" (Histogram.percentile h 99.9) out.(2);
  check_bool "p50 near 500" true (out.(0) >= 480 && out.(0) <= 530);
  check_bool "p99 near 990" true (out.(1) >= 960 && out.(1) <= 1_000);
  check_bool "p999 <= max" true (out.(2) <= Histogram.max_value h);
  check_bool "monotone" true (out.(0) <= out.(1) && out.(1) <= out.(2))

let test_quantiles_edge_cases () =
  let h = Histogram.create () in
  let out = Histogram.quantiles h [| 50.; 99. |] in
  check_int "empty p50" 0 out.(0);
  check_int "empty p99" 0 out.(1);
  Histogram.add h 77;
  let out = Histogram.quantiles h [| 0.; 50.; 100. |] in
  check_int "p0 = min" 77 out.(0);
  check_int "p100 = max" 77 out.(2);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Histogram.quantiles_into: length mismatch") (fun () ->
      Histogram.quantiles_into h [| 50. |] (Array.make 2 0));
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Histogram.quantiles_into: quantiles not sorted")
    (fun () -> ignore (Histogram.quantiles h [| 99.; 50. |]))

let test_quantiles_agree_at_scale () =
  let h = Histogram.create () in
  let s = ref 12345 in
  for _ = 1 to 50_000 do
    s := Workload.Pattern.xorshift !s;
    Histogram.add h (!s land 0xFF_FFFF)
  done;
  let qs = [| 10.; 25.; 50.; 75.; 90.; 99.; 99.9; 99.99 |] in
  let out = Histogram.quantiles h qs in
  Array.iteri
    (fun i q ->
      check_int
        (Printf.sprintf "q%.2f matches single-quantile scan" q)
        (Histogram.percentile h q) out.(i))
    qs

(* ---------- Open_loop: dynamic zero-allocation ---------- *)

(* The [cdna_flow] A6 gate proves the admission/service path statically
   allocation-free; this is the dynamic witness. Run an open-loop point
   to a steady state, then measure [Gc.minor_words] across a further
   slab of simulated traffic: the delta must be exactly zero. *)
let test_zero_alloc_steady_state () =
  let engine = Sim.Engine.create () in
  let cfg =
    {
      Workload.Open_loop.default with
      Workload.Open_loop.capacity = 2_048;
      arrival = Arrival.Poisson { mean_gap = Sim.Time.us 2 };
      sizes = Workload.Open_loop.Pareto { alpha = 1.2; min_pkts = 1; max_pkts = 256 };
      base_service_ns = 1_000;
      wire_gap_ns = 800;
      syn_permille = 50;
      syn_timeout = Sim.Time.ms 1;
      seed = 99;
    }
  in
  let ol = Workload.Open_loop.create engine cfg in
  Workload.Open_loop.preload ol ~flows:1_024;
  Workload.Open_loop.start ol ~stop_at:(Sim.Time.ms 50);
  (* Warm up: first service completions, SYN expiries, churn. *)
  ignore (Sim.Engine.run engine ~until:(Sim.Time.ms 10));
  let served0 = Workload.Open_loop.served_pkts ol in
  let w0 = Gc.minor_words () in
  ignore (Sim.Engine.run engine ~until:(Sim.Time.ms 40));
  let w1 = Gc.minor_words () in
  let served1 = Workload.Open_loop.served_pkts ol in
  check_bool "traffic flowed" true (served1 - served0 > 5_000);
  check_int "zero minor words per packet in steady state" 0
    (int_of_float (w1 -. w0))

(* ---------- Flows determinism across shard counts ---------- *)

let side_equal (a : Experiments.Flows.side) (b : Experiments.Flows.side) =
  a.Experiments.Flows.mbps = b.Experiments.Flows.mbps
  && a.served_pkts = b.served_pkts
  && a.completed = b.completed
  && a.rejected = b.rejected
  && a.expired = b.expired
  && a.peak_live = b.peak_live
  && a.live_end = b.live_end
  && a.mouse_n = b.mouse_n
  && a.mouse_q = b.mouse_q
  && a.eleph_n = b.eleph_n
  && a.eleph_q = b.eleph_q
  && String.equal a.metrics_json b.metrics_json

let test_point_deterministic_across_shards () =
  List.iter
    (fun seed ->
      let run shards =
        Experiments.Flows.measure ~quick:true ~shards ~flows:1_000
          ~scenario:Experiments.Flows.Syn_flood ~seed Experiments.Config.Cdna_sys
      in
      let s1 = run 1 and s4 = run 4 and s13 = run 13 in
      check_bool
        (Printf.sprintf "seed %d: shards 1 = 4" seed)
        true (side_equal s1 s4);
      check_bool
        (Printf.sprintf "seed %d: shards 1 = 13" seed)
        true (side_equal s1 s13);
      check_bool "metrics non-empty" true (String.length s1.metrics_json > 2))
    [ 42; 7 ]

let test_point_csv_deterministic () =
  let csv_for shards =
    Experiments.Flows.csv
      [
        Experiments.Flows.point ~quick:true ~shards
          ~scenario:Experiments.Flows.Churn ~seed:1234 ~flows:1_000 ();
      ]
  in
  check Alcotest.string "csv byte-identical across shard counts" (csv_for 1)
    (csv_for 4)

let test_seeds_decorrelate () =
  let run seed =
    Experiments.Flows.measure ~quick:true ~shards:1 ~flows:1_000
      ~scenario:Experiments.Flows.Normal ~seed Experiments.Config.Xen_sw
  in
  let a = run 42 and b = run 7 in
  check_bool "different seeds, different traffic" true
    (a.Experiments.Flows.served_pkts <> b.Experiments.Flows.served_pkts
    || not (String.equal a.metrics_json b.metrics_json))

let suite =
  [
    ( "workload.flow_table",
      [
        Alcotest.test_case "pack roundtrip" `Quick test_pack_roundtrip;
        Alcotest.test_case "insert/find/complete" `Quick test_insert_find_complete;
        Alcotest.test_case "reject dup and full" `Quick test_reject_dup_and_full;
        Alcotest.test_case "embryonic flows" `Quick test_embryonic;
        qcheck prop_flow_table_model;
      ] );
    ( "workload.arrival",
      [
        Alcotest.test_case "constant" `Quick test_arrival_constant;
        Alcotest.test_case "poisson mean" `Quick test_arrival_poisson_mean;
        Alcotest.test_case "on/off bursts" `Quick test_arrival_on_off;
        Alcotest.test_case "incast fan-in" `Quick test_arrival_incast;
        Alcotest.test_case "validation" `Quick test_arrival_validation;
        Alcotest.test_case "xorshift" `Quick test_xorshift_nonzero;
      ] );
    ( "sim.histogram.quantiles",
      [
        Alcotest.test_case "basic" `Quick test_quantiles_basic;
        Alcotest.test_case "edge cases" `Quick test_quantiles_edge_cases;
        Alcotest.test_case "agrees with percentile" `Quick
          test_quantiles_agree_at_scale;
      ] );
    ( "workload.open_loop",
      [
        Alcotest.test_case "zero-alloc steady state" `Quick
          test_zero_alloc_steady_state;
      ] );
    ( "experiments.flows",
      [
        Alcotest.test_case "deterministic across shards" `Quick
          test_point_deterministic_across_shards;
        Alcotest.test_case "csv deterministic" `Quick test_point_csv_deterministic;
        Alcotest.test_case "seeds decorrelate" `Quick test_seeds_decorrelate;
      ] );
  ]
