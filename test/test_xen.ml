(* Tests for the VMM substrate: domains, the hypervisor, event channels
   and the grant table. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let us = Sim.Time.us

let fixture ?(total_pages = 1024) () =
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu = Host.Cpu.create engine ~profile () in
  let mem = Memory.Phys_mem.create ~total_pages () in
  let hyp = Xen.Hypervisor.create engine ~cpu ~mem () in
  (engine, profile, cpu, mem, hyp)

let run engine ms = Sim.Engine.run engine ~until:(Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms ms))

(* ---------- Domains ---------- *)

let test_domain_creation () =
  let _, _, _, mem, hyp = fixture () in
  let d0 =
    Xen.Hypervisor.create_domain hyp ~name:"driver" ~kind:Xen.Domain.Driver
      ~weight:256 ~mem_pages:100
  in
  let d1 =
    Xen.Hypervisor.create_domain hyp ~name:"guest" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:50
  in
  check_int "sequential ids" 0 (Xen.Domain.id d0);
  check_int "next id" 1 (Xen.Domain.id d1);
  check_int "pages" 100 (Xen.Domain.page_count d0);
  check_int "allocator view" (1024 - 150) (Memory.Phys_mem.free_pages mem);
  check_bool "driver domain found" true
    (match Xen.Hypervisor.driver_domain hyp with
    | Some d -> Xen.Domain.id d = 0
    | None -> false);
  check_bool "lookup" true (Xen.Hypervisor.domain_by_id hyp 1 = Some d1);
  (* Every allocated page is owned by the right domain. *)
  List.iter
    (fun p -> check_bool "owned" true (Memory.Phys_mem.owned_by mem p 1))
    (Xen.Domain.pages d1)

let test_domain_oom () =
  let _, _, _, _, hyp = fixture ~total_pages:16 () in
  Alcotest.check_raises "oom"
    (Invalid_argument "Hypervisor.create_domain: out of memory") (fun () ->
      ignore
        (Xen.Hypervisor.create_domain hyp ~name:"big" ~kind:Xen.Domain.Guest
           ~weight:256 ~mem_pages:17))

let test_domain_alloc_free () =
  let _, _, _, mem, hyp = fixture () in
  let d =
    Xen.Hypervisor.create_domain hyp ~name:"g" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:10
  in
  let extra = Xen.Hypervisor.alloc_pages hyp d 5 in
  check_int "grew" 15 (Xen.Domain.page_count d);
  Xen.Hypervisor.free_page hyp d (List.hd extra);
  check_int "shrank" 14 (Xen.Domain.page_count d);
  check_bool "page back in pool" true
    (not (Memory.Phys_mem.owned_by mem (List.hd extra) (Xen.Domain.id d)));
  (* Cannot free someone else's page. *)
  let other =
    Xen.Hypervisor.create_domain hyp ~name:"h" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:1
  in
  Alcotest.check_raises "foreign free"
    (Invalid_argument "Hypervisor.free_page: domain does not own page")
    (fun () -> Xen.Hypervisor.free_page hyp other (List.nth extra 1))

let test_domain_pages_sorted () =
  (* [pages] must come back in ascending pfn order regardless of the
     page-set hashtable's bucket layout: downstream fan-outs (grant
     sweeps, teardown) iterate it and must be deterministic. *)
  let _, _, _, _, hyp = fixture () in
  let d =
    Xen.Hypervisor.create_domain hyp ~name:"g" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:64
  in
  ignore (Xen.Hypervisor.alloc_pages hyp d 33);
  let ps = Xen.Domain.pages d in
  check_int "count" 97 (List.length ps);
  check_bool "ascending" true
    (List.for_all2 ( < ) ps (List.tl ps @ [ max_int ]))

(* ---------- Work posting ---------- *)

let test_hypercall_charged_to_hypervisor () =
  let engine, profile, _, _, hyp = fixture () in
  let d =
    Xen.Hypervisor.create_domain hyp ~name:"g" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:4
  in
  let ran = ref false in
  Xen.Hypervisor.hypercall hyp ~from:d ~cost:(us 3) (fun () -> ran := true);
  Xen.Hypervisor.kernel_work hyp d ~cost:(us 5) ignore;
  Xen.Hypervisor.user_work hyp d ~cost:(us 7) ignore;
  run engine 1;
  check_bool "ran" true !ran;
  check_int "hypercall time is hypervisor time" (us 3)
    (Sim.Time.to_ns
       (Host.Profile.total profile Host.Category.Hypervisor)
    - Sim.Time.to_ns
        ((* subtract the context-switch charge *)
         let switches = Host.Cpu.ctx_switches (Xen.Hypervisor.cpu hyp) in
         Sim.Time.mul_int (Sim.Time.ns 2_500) switches));
  check_int "kernel" (us 5)
    (Host.Profile.total profile (Xen.Domain.kernel d));
  check_int "user" (us 7) (Host.Profile.total profile (Xen.Domain.user d))

let test_route_irq () =
  let engine, profile, _, _, hyp = fixture () in
  let irq = Bus.Irq.create ~name:"nic" in
  let handled = ref 0 in
  Xen.Hypervisor.route_irq hyp irq (fun () -> incr handled);
  Bus.Irq.assert_line irq;
  Bus.Irq.assert_line irq;
  run engine 1;
  check_int "handled" 2 !handled;
  check_int "counted" 2 (Xen.Hypervisor.physical_irqs hyp);
  check_bool "isr time charged" true
    (Host.Profile.total profile Host.Category.Hypervisor > 0);
  Xen.Hypervisor.reset_counters hyp;
  check_int "reset" 0 (Xen.Hypervisor.physical_irqs hyp)

(* ---------- Event channels ---------- *)

let evt_fixture () =
  let engine, profile, _, _, hyp = fixture () in
  let sender =
    Xen.Hypervisor.create_domain hyp ~name:"sender" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:4
  in
  let target =
    Xen.Hypervisor.create_domain hyp ~name:"target" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:4
  in
  (engine, profile, hyp, sender, target)

let test_event_channel_delivery () =
  let engine, _, hyp, sender, target = evt_fixture () in
  let hits = ref 0 in
  let chan =
    Xen.Event_channel.create hyp ~target ~isr_cost:(us 1) ~handler:(fun () ->
        incr hits)
  in
  Xen.Event_channel.notify chan ~from:sender;
  run engine 1;
  check_int "delivered" 1 !hits;
  check_int "deliveries" 1 (Xen.Event_channel.deliveries chan);
  check_int "target virq count" 1 (Xen.Domain.virq_count target);
  check_int "sender unaffected" 0 (Xen.Domain.virq_count sender)

let test_event_channel_merging () =
  (* Notifies while a delivery is pending merge into it, like a
     level-triggered pending bit. Hypervisor-side notifies queue as IRQ
     work, which all drains before the target entity runs its virq — so
     the merge window is deterministic. *)
  let engine, _, hyp, sender, target = evt_fixture () in
  let hits = ref 0 in
  let chan =
    Xen.Event_channel.create hyp ~target ~isr_cost:(us 1) ~handler:(fun () ->
        incr hits)
  in
  for _ = 1 to 5 do
    Xen.Event_channel.notify_from_hypervisor chan
  done;
  run engine 5;
  check_int "one delivery" 1 !hits;
  check_int "four merged" 4 (Xen.Event_channel.merged chan);
  (* After it drains, a fresh notify delivers again. *)
  Xen.Event_channel.notify chan ~from:sender;
  run engine 5;
  check_int "fresh delivery" 2 !hits

let test_event_channel_from_hypervisor () =
  let engine, _, hyp, _, target = evt_fixture () in
  let hits = ref 0 in
  let chan =
    Xen.Event_channel.create hyp ~target ~isr_cost:(us 1) ~handler:(fun () ->
        incr hits)
  in
  Xen.Event_channel.notify_from_hypervisor chan;
  run engine 1;
  check_int "delivered" 1 !hits;
  Xen.Event_channel.reset_counters chan;
  check_int "counters reset" 0 (Xen.Event_channel.deliveries chan)

(* ---------- Grant table ---------- *)

let test_grant_flip () =
  let _, _, _, mem, hyp = fixture () in
  let a =
    Xen.Hypervisor.create_domain hyp ~name:"a" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:4
  in
  let b =
    Xen.Hypervisor.create_domain hyp ~name:"b" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:4
  in
  let p = List.hd (Xen.Domain.pages a) in
  let gnt = Xen.Grant_table.create hyp in
  Xen.Grant_table.reset_flips gnt;
  check_bool "flip ok" true (Xen.Grant_table.flip gnt ~src:a ~dst:b p = Ok ());
  check_bool "owner now b" true (Memory.Phys_mem.owned_by mem p (Xen.Domain.id b));
  check_int "a's accounting" 3 (Xen.Domain.page_count a);
  check_int "b's accounting" 5 (Xen.Domain.page_count b);
  check_int "counted" 1 (Xen.Grant_table.flips gnt);
  (* a no longer owns it. *)
  check_bool "not owner anymore" true
    (Xen.Grant_table.flip gnt ~src:a ~dst:b p = Error `Not_owner)

let test_grant_flip_pinned () =
  let _, _, _, mem, hyp = fixture () in
  let a =
    Xen.Hypervisor.create_domain hyp ~name:"a" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:4
  in
  let b =
    Xen.Hypervisor.create_domain hyp ~name:"b" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:4
  in
  let p = List.hd (Xen.Domain.pages a) in
  let gnt = Xen.Grant_table.create hyp in
  Memory.Phys_mem.get_ref mem p;
  check_bool "pinned refuses" true
    (Xen.Grant_table.flip gnt ~src:a ~dst:b p = Error `Pinned);
  Memory.Phys_mem.put_ref mem p;
  check_bool "unpinned flips" true (Xen.Grant_table.flip gnt ~src:a ~dst:b p = Ok ())

(* Regression for the PR-9 decoupling: the flip counter lives in the
   table, so two independent tables (two hosts / two LPs) issue
   independent counts and resetting one cannot disturb the other. *)
let test_grant_tables_independent () =
  let _, _, _, _, hyp = fixture () in
  let a =
    Xen.Hypervisor.create_domain hyp ~name:"a" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:4
  in
  let b =
    Xen.Hypervisor.create_domain hyp ~name:"b" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:4
  in
  let g1 = Xen.Grant_table.create hyp in
  let g2 = Xen.Grant_table.create hyp in
  let flip g ~src ~dst =
    let p = List.hd (Xen.Domain.pages src) in
    check_bool "flip ok" true (Xen.Grant_table.flip g ~src ~dst p = Ok ())
  in
  flip g1 ~src:a ~dst:b;
  flip g1 ~src:b ~dst:a;
  flip g2 ~src:a ~dst:b;
  check_int "g1 counts its own" 2 (Xen.Grant_table.flips g1);
  check_int "g2 counts its own" 1 (Xen.Grant_table.flips g2);
  Xen.Grant_table.reset_flips g1;
  check_int "g1 reset" 0 (Xen.Grant_table.flips g1);
  check_int "g2 untouched by g1 reset" 1 (Xen.Grant_table.flips g2)

let suite =
  [
    ( "xen.domain",
      [
        Alcotest.test_case "creation" `Quick test_domain_creation;
        Alcotest.test_case "out of memory" `Quick test_domain_oom;
        Alcotest.test_case "alloc/free" `Quick test_domain_alloc_free;
        Alcotest.test_case "pages sorted" `Quick test_domain_pages_sorted;
      ] );
    ( "xen.hypervisor",
      [
        Alcotest.test_case "work categories" `Quick test_hypercall_charged_to_hypervisor;
        Alcotest.test_case "route irq" `Quick test_route_irq;
      ] );
    ( "xen.event_channel",
      [
        Alcotest.test_case "delivery" `Quick test_event_channel_delivery;
        Alcotest.test_case "merging" `Quick test_event_channel_merging;
        Alcotest.test_case "from hypervisor" `Quick test_event_channel_from_hypervisor;
      ] );
    ( "xen.grant_table",
      [
        Alcotest.test_case "flip" `Quick test_grant_flip;
        Alcotest.test_case "pinned" `Quick test_grant_flip_pinned;
        Alcotest.test_case "independent tables" `Quick
          test_grant_tables_independent;
      ] );
  ]
