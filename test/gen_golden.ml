(* Regenerate the golden determinism fixtures under test/golden/.

   The golden test (test_experiments.ml) asserts that a seeded run still
   produces byte-identical --trace-out / --metrics-out artifacts, proving
   datapath optimizations change no simulated behaviour. Refresh the
   fixtures ONLY after a deliberate behavioural or observability change:

     dune exec test/gen_golden.exe -- test/golden

   and review the diff before committing. *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  List.iter
    (fun seed ->
      let trace, metrics = Golden.traced_artifacts ~seed in
      let write name content =
        let path = Filename.concat dir name in
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length content)
      in
      write (Printf.sprintf "trace_seed%d.json" seed) trace;
      write (Printf.sprintf "metrics_seed%d.json" seed) metrics)
    Golden.seeds
