(* Tests for the memory substrate: addresses, page ownership/refcounts,
   physical memory, DMA descriptors, IOMMU. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ---------- Addr ---------- *)

let test_addr_basics () =
  check_int "page size" 4096 Memory.Addr.page_size;
  check_int "pfn" 2 (Memory.Addr.pfn_of 8192);
  check_int "pfn mid-page" 2 (Memory.Addr.pfn_of 8200);
  check_int "base" 8192 (Memory.Addr.base_of_pfn 2);
  check_int "offset" 8 (Memory.Addr.offset 8200)

let test_addr_pages_spanned () =
  check (Alcotest.list Alcotest.int) "within one page" [ 1 ]
    (Memory.Addr.pages_spanned ~addr:4096 ~len:100);
  check (Alcotest.list Alcotest.int) "across boundary" [ 0; 1 ]
    (Memory.Addr.pages_spanned ~addr:4000 ~len:200);
  check (Alcotest.list Alcotest.int) "exact page" [ 3 ]
    (Memory.Addr.pages_spanned ~addr:(3 * 4096) ~len:4096);
  check (Alcotest.list Alcotest.int) "empty" []
    (Memory.Addr.pages_spanned ~addr:4096 ~len:0);
  Alcotest.check_raises "negative" (Invalid_argument "Addr.pages_spanned: negative length")
    (fun () -> ignore (Memory.Addr.pages_spanned ~addr:0 ~len:(-1)))

let prop_pages_spanned_count =
  QCheck.Test.make ~name:"pages_spanned covers the byte range" ~count:200
    QCheck.(pair (int_range 0 100_000) (int_range 1 20_000))
    (fun (addr, len) ->
      let pages = Memory.Addr.pages_spanned ~addr ~len in
      let first = Memory.Addr.pfn_of addr in
      let last = Memory.Addr.pfn_of (addr + len - 1) in
      List.length pages = last - first + 1
      && List.for_all (fun p -> p >= first && p <= last) pages)

(* ---------- Page ---------- *)

let test_page_lifecycle () =
  let p = Memory.Page.create ~pfn:7 in
  check_bool "starts free" true (Memory.Page.state p = Memory.Page.Free);
  Memory.Page.set_owned p 3;
  check_bool "owned" true (Memory.Page.is_owned_by p 3);
  check_bool "not other" false (Memory.Page.is_owned_by p 4);
  Memory.Page.release p;
  check_bool "free again" true (Memory.Page.state p = Memory.Page.Free)

let test_page_quarantine () =
  let p = Memory.Page.create ~pfn:7 in
  Memory.Page.set_owned p 1;
  Memory.Page.get_ref p;
  Memory.Page.get_ref p;
  Memory.Page.release p;
  check_bool "quarantined" true
    (match Memory.Page.state p with Memory.Page.Quarantined 1 -> true | _ -> false);
  check_bool "first put still held" true (Memory.Page.put_ref p = `Still_held);
  check_bool "last put frees" true (Memory.Page.put_ref p = `Now_free);
  check_bool "now free" true (Memory.Page.state p = Memory.Page.Free)

let test_page_transfer () =
  let p = Memory.Page.create ~pfn:1 in
  Memory.Page.set_owned p 1;
  check_bool "transfer ok" true (Memory.Page.transfer p 2 = Ok ());
  check_bool "new owner" true (Memory.Page.is_owned_by p 2);
  Memory.Page.get_ref p;
  check_bool "pinned refuses" true (Memory.Page.transfer p 3 = Error `Pinned)

let test_page_invalid_transitions () =
  let p = Memory.Page.create ~pfn:0 in
  Alcotest.check_raises "ref free page" (Invalid_argument "Page.get_ref: free page")
    (fun () -> Memory.Page.get_ref p);
  Alcotest.check_raises "release free" (Invalid_argument "Page.release: page not owned")
    (fun () -> Memory.Page.release p);
  Memory.Page.set_owned p 1;
  Alcotest.check_raises "double own" (Invalid_argument "Page.set_owned: page not free")
    (fun () -> Memory.Page.set_owned p 2);
  Alcotest.check_raises "put at zero" (Invalid_argument "Page.put_ref: refcount already zero")
    (fun () -> ignore (Memory.Page.put_ref p))

let prop_page_refcount_balance =
  QCheck.Test.make ~name:"balanced get/put leaves refcount zero" ~count:100
    QCheck.(int_range 0 50)
    (fun n ->
      let p = Memory.Page.create ~pfn:0 in
      Memory.Page.set_owned p 1;
      for _ = 1 to n do Memory.Page.get_ref p done;
      for _ = 1 to n do ignore (Memory.Page.put_ref p) done;
      Memory.Page.refcount p = 0)

(* ---------- Phys_mem ---------- *)

let mem () = Memory.Phys_mem.create ~total_pages:64 ()

let test_mem_alloc_free () =
  let m = mem () in
  check_int "all free" 64 (Memory.Phys_mem.free_pages m);
  let pages = Result.get_ok (Memory.Phys_mem.alloc m ~owner:1 ~count:10) in
  check_int "ten allocated" 10 (List.length pages);
  check_int "free count" 54 (Memory.Phys_mem.free_pages m);
  List.iter (fun p -> check_bool "owned" true (Memory.Phys_mem.owned_by m p 1)) pages;
  List.iter (Memory.Phys_mem.free m) pages;
  check_int "all free again" 64 (Memory.Phys_mem.free_pages m)

let test_mem_out_of_memory () =
  let m = mem () in
  check_bool "oom" true
    (Memory.Phys_mem.alloc m ~owner:1 ~count:65 = Error `Out_of_memory);
  (* And nothing was taken. *)
  check_int "intact" 64 (Memory.Phys_mem.free_pages m)

let test_mem_quarantine_blocks_realloc () =
  let m = Memory.Phys_mem.create ~total_pages:2 () in
  let pages = Result.get_ok (Memory.Phys_mem.alloc m ~owner:1 ~count:2) in
  let p = List.hd pages in
  Memory.Phys_mem.get_ref m p;
  Memory.Phys_mem.free m p;
  (* Quarantined: not available. *)
  check_bool "not reallocatable" true
    (Memory.Phys_mem.alloc m ~owner:2 ~count:1 = Error `Out_of_memory);
  Memory.Phys_mem.put_ref m p;
  let re = Result.get_ok (Memory.Phys_mem.alloc m ~owner:2 ~count:1) in
  check (Alcotest.list Alcotest.int) "reclaimed page" [ p ] re

let test_mem_rw_roundtrip () =
  let m = mem () in
  let data = Bytes.of_string "hello, descriptor rings" in
  Memory.Phys_mem.write m ~addr:100 data;
  check Alcotest.string "roundtrip" "hello, descriptor rings"
    (Bytes.to_string (Memory.Phys_mem.read m ~addr:100 ~len:(Bytes.length data)))

let test_mem_rw_across_pages () =
  let m = mem () in
  let data = Bytes.init 8192 (fun i -> Char.chr (i land 0xff)) in
  Memory.Phys_mem.write m ~addr:2048 data;
  let back = Memory.Phys_mem.read m ~addr:2048 ~len:8192 in
  check_bool "multi-page roundtrip" true (Bytes.equal data back)

let test_mem_zero_fill () =
  let m = mem () in
  let b = Memory.Phys_mem.read m ~addr:0 ~len:16 in
  check_bool "untouched memory reads zero" true
    (Bytes.for_all (fun c -> c = '\000') b)

let test_mem_realloc_clears_contents () =
  let m = Memory.Phys_mem.create ~total_pages:1 () in
  let p = List.hd (Result.get_ok (Memory.Phys_mem.alloc m ~owner:1 ~count:1)) in
  Memory.Phys_mem.write m ~addr:(Memory.Addr.base_of_pfn p) (Bytes.of_string "secret");
  Memory.Phys_mem.free m p;
  let p2 = List.hd (Result.get_ok (Memory.Phys_mem.alloc m ~owner:2 ~count:1)) in
  check_int "same frame" p p2;
  let b = Memory.Phys_mem.read m ~addr:(Memory.Addr.base_of_pfn p2) ~len:6 in
  check_bool "no data leak across realloc" true
    (Bytes.for_all (fun c -> c = '\000') b)

let test_mem_u_accessors () =
  let m = mem () in
  Memory.Phys_mem.write_u16 m ~addr:10 0xBEEF;
  Memory.Phys_mem.write_u32 m ~addr:20 0xDEADBEEF;
  Memory.Phys_mem.write_u64 m ~addr:30 0x123456789AB;
  check_int "u16" 0xBEEF (Memory.Phys_mem.read_u16 m ~addr:10);
  check_int "u32" 0xDEADBEEF (Memory.Phys_mem.read_u32 m ~addr:20);
  check_int "u64" 0x123456789AB (Memory.Phys_mem.read_u64 m ~addr:30)

let test_mem_bounds () =
  let m = mem () in
  Alcotest.check_raises "oob read"
    (Invalid_argument "Phys_mem: address range out of bounds") (fun () ->
      ignore (Memory.Phys_mem.read m ~addr:(64 * 4096 - 4) ~len:8));
  Alcotest.check_raises "bad pfn" (Invalid_argument "Phys_mem.page: pfn out of range")
    (fun () -> ignore (Memory.Phys_mem.page m 64))

let test_mem_transfer () =
  let m = mem () in
  let p = List.hd (Result.get_ok (Memory.Phys_mem.alloc m ~owner:1 ~count:1)) in
  check_bool "flip" true (Memory.Phys_mem.transfer m p ~to_:2 = Ok ());
  check_bool "owner changed" true (Memory.Phys_mem.owned_by m p 2);
  check_int "free list untouched" 63 (Memory.Phys_mem.free_pages m)

let prop_mem_alloc_disjoint =
  QCheck.Test.make ~name:"allocations to different owners are disjoint" ~count:50
    QCheck.(pair (int_range 1 20) (int_range 1 20))
    (fun (a, b) ->
      let m = Memory.Phys_mem.create ~total_pages:64 () in
      let pa = Result.get_ok (Memory.Phys_mem.alloc m ~owner:1 ~count:a) in
      let pb = Result.get_ok (Memory.Phys_mem.alloc m ~owner:2 ~count:b) in
      List.for_all (fun p -> not (List.mem p pb)) pa)

(* ---------- Flat-backing equivalence (qcheck) ----------

   The flat [Phys_mem] must be observationally identical to the page-table
   semantics it replaced: a plain zero-initialized byte array is the
   reference model (zero-fill-on-first-touch means untouched memory reads
   as zeros). Random op sequences run against both and every read must
   agree. *)

let model_pages = 16
let model_bytes = model_pages * Memory.Addr.page_size

(* op = (selector, addr-ish, len-ish, value) mapped into range inside the
   property, so shrinking stays meaningful. *)
let op_gen =
  QCheck.(
    quad (int_range 0 3) (int_range 0 (model_bytes - 1)) (int_range 0 9000)
      (int_range 0 max_int))

let le_model_write model ~addr ~bytes v =
  for i = 0 to bytes - 1 do
    Bytes.set model (addr + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let le_model_read model ~addr ~bytes =
  let v = ref 0 in
  for i = bytes - 1 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get model (addr + i))
  done;
  !v

let prop_mem_model_equiv =
  QCheck.Test.make ~name:"flat phys_mem matches byte-array model" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 40) op_gen)
    (fun ops ->
      let m = Memory.Phys_mem.create ~total_pages:model_pages () in
      let model = Bytes.make model_bytes '\000' in
      List.for_all
        (fun (sel, a, l, v) ->
          match sel with
          | 0 ->
              (* write random bytes, possibly page-straddling *)
              let len = min l (model_bytes - a) in
              let data =
                Bytes.init len (fun i -> Char.chr ((v + i) land 0xff))
              in
              Memory.Phys_mem.write m ~addr:a data;
              Bytes.blit data 0 model a len;
              true
          | 1 ->
              (* read and compare against the model *)
              let len = min l (model_bytes - a) in
              Bytes.equal
                (Memory.Phys_mem.read m ~addr:a ~len)
                (Bytes.sub model a len)
          | 2 ->
              (* variable-width little-endian write, widths 1-8; both
                 sides truncate wide values the same way *)
              let bytes = 1 + (l mod 8) in
              let a = min a (model_bytes - bytes) in
              Memory.Phys_mem.write_uint m ~addr:a ~bytes v;
              le_model_write model ~addr:a ~bytes v;
              true
          | _ ->
              (* variable-width read agrees with the model *)
              let bytes = 1 + (l mod 8) in
              let a = min a (model_bytes - bytes) in
              Memory.Phys_mem.read_uint m ~addr:a ~bytes
              = le_model_read model ~addr:a ~bytes)
        ops
      && Bytes.equal (Memory.Phys_mem.read m ~addr:0 ~len:model_bytes) model)

let prop_mem_read_into_equiv =
  QCheck.Test.make ~name:"read_into/write_sub agree with read/write"
    ~count:200
    QCheck.(triple (int_range 0 (model_bytes - 1)) (int_range 0 9000) int)
    (fun (addr, l, seed) ->
      let m = Memory.Phys_mem.create ~total_pages:model_pages () in
      let len = min l (model_bytes - addr) in
      let pos = addr land 63 in
      let src = Bytes.init (pos + len) (fun i -> Char.chr ((seed + i) land 0xff)) in
      Memory.Phys_mem.write_sub m ~addr src ~pos ~len;
      let via_read = Memory.Phys_mem.read m ~addr ~len in
      let dst = Bytes.make (pos + len) '\xAA' in
      Memory.Phys_mem.read_into m ~addr ~len dst ~pos;
      Bytes.equal via_read (Bytes.sub src pos len)
      && Bytes.equal (Bytes.sub dst pos len) via_read)

let prop_mem_uint_widths =
  QCheck.Test.make ~name:"fixed-width accessors agree with read_uint"
    ~count:200
    QCheck.(pair (int_range 0 (model_bytes - 9)) int)
    (fun (addr, v) ->
      let m = Memory.Phys_mem.create ~total_pages:model_pages () in
      let v = abs v in
      Memory.Phys_mem.write_u16 m ~addr (v land 0xFFFF);
      let ok16 =
        Memory.Phys_mem.read_u16 m ~addr
        = Memory.Phys_mem.read_uint m ~addr ~bytes:2
      in
      Memory.Phys_mem.write_u32 m ~addr (v land 0xFFFFFFFF);
      let ok32 =
        Memory.Phys_mem.read_u32 m ~addr
        = Memory.Phys_mem.read_uint m ~addr ~bytes:4
      in
      Memory.Phys_mem.write_u64 m ~addr v;
      let ok64 =
        Memory.Phys_mem.read_u64 m ~addr
        = Memory.Phys_mem.read_uint m ~addr ~bytes:8
        && Memory.Phys_mem.read_u64 m ~addr = v
      in
      ok16 && ok32 && ok64)

let prop_mem_zero_fill_after_reclaim =
  QCheck.Test.make ~name:"reclaimed pages read as zeros" ~count:100
    QCheck.(pair (int_range 0 (Memory.Addr.page_size - 1)) (int_range 1 255))
    (fun (off, byte) ->
      let m = Memory.Phys_mem.create ~total_pages:4 () in
      let p = List.hd (Result.get_ok (Memory.Phys_mem.alloc m ~owner:1 ~count:1)) in
      let addr = Memory.Addr.base_of_pfn p + off in
      Memory.Phys_mem.write m ~addr (Bytes.make 1 (Char.chr byte));
      let materialized = Memory.Phys_mem.materialized_pages m in
      Memory.Phys_mem.free m p;
      let p2 = List.hd (Result.get_ok (Memory.Phys_mem.alloc m ~owner:2 ~count:1)) in
      p = p2
      && materialized = 1
      (* the reclaim dropped the page from the materialized accounting *)
      && Memory.Phys_mem.materialized_pages m = 0
      (* zero-fill-on-reclaim: dirty contents never leak across owners *)
      && Memory.Phys_mem.read m ~addr ~len:1 = Bytes.make 1 '\000')

let prop_mem_valid_range_consistent =
  QCheck.Test.make ~name:"valid_range iff read does not raise" ~count:300
    QCheck.(pair (int_range (-200) (model_bytes + 200)) (int_range (-8) 9000))
    (fun (addr, len) ->
      let m = Memory.Phys_mem.create ~total_pages:model_pages () in
      let valid = Memory.Phys_mem.valid_range m ~addr ~len in
      let read_ok =
        match Memory.Phys_mem.read m ~addr ~len with
        | (_ : Bytes.t) -> true
        | exception Invalid_argument _ -> false
      in
      valid = read_ok)

(* Steady-state accessors must not touch the minor heap: this is what
   keeps the per-descriptor DMA path allocation-free. The epsilon absorbs
   [Gc.minor_words]'s own boxed-float result. *)
let test_mem_zero_alloc_accessors () =
  let m = mem () in
  let buf = Bytes.create 2048 in
  let sink = ref 0 in
  (* Touch everything once so lazy page materialization and CRC table
     construction happen outside the measured window. *)
  Memory.Phys_mem.write_sub m ~addr:100 buf ~pos:0 ~len:2048;
  sink := Ethernet.Crc32.digest_sub buf ~pos:0 ~len:1500;
  let before = Gc.minor_words () in
  for i = 1 to 1000 do
    Memory.Phys_mem.write_u64 m ~addr:64 i;
    sink := !sink + Memory.Phys_mem.read_u64 m ~addr:64;
    Memory.Phys_mem.write_u32 m ~addr:72 i;
    sink := !sink + Memory.Phys_mem.read_u32 m ~addr:72;
    Memory.Phys_mem.write_u16 m ~addr:76 (i land 0xFFFF);
    sink := !sink + Memory.Phys_mem.read_u16 m ~addr:76;
    Memory.Phys_mem.write_sub m ~addr:4000 buf ~pos:16 ~len:1500;
    Memory.Phys_mem.read_into m ~addr:4000 ~len:1500 buf ~pos:16;
    Ethernet.Frame.blit_payload ~seed:i ~len:1500 buf ~pos:0;
    sink := !sink + Ethernet.Crc32.digest_sub buf ~pos:0 ~len:1500
  done;
  let allocated = Gc.minor_words () -. before in
  ignore (Sys.opaque_identity !sink);
  check_bool
    (Printf.sprintf "steady-state accessors allocated %.0f minor words"
       allocated)
    true
    (allocated < 256.)

(* ---------- Dma_desc ---------- *)

let test_desc_roundtrip () =
  let m = mem () in
  let d = { Memory.Dma_desc.addr = 0x12340; len = 1500; flags = 3; seqno = 777 } in
  Memory.Dma_desc.write m ~at:512 d;
  check_bool "roundtrip" true (Memory.Dma_desc.equal d (Memory.Dma_desc.read m ~at:512));
  check_int "size" 16 Memory.Dma_desc.size_bytes

let test_desc_validation () =
  let m = mem () in
  let d = { Memory.Dma_desc.addr = 0; len = 0; flags = 0; seqno = 0 } in
  Alcotest.check_raises "seqno range" (Invalid_argument "Dma_desc.write: seqno out of range")
    (fun () -> Memory.Dma_desc.write m ~at:0 { d with Memory.Dma_desc.seqno = 65536 });
  Alcotest.check_raises "flags range" (Invalid_argument "Dma_desc.write: flags out of range")
    (fun () -> Memory.Dma_desc.write m ~at:0 { d with Memory.Dma_desc.flags = -1 })

let prop_desc_roundtrip =
  QCheck.Test.make ~name:"descriptor serialization roundtrips" ~count:200
    QCheck.(quad (int_range 0 0xFFFFF) (int_range 0 0xFFFF) (int_range 0 0xFFFF)
              (int_range 0 0xFFFF))
    (fun (addr, len, flags, seqno) ->
      let m = Memory.Phys_mem.create ~total_pages:4 () in
      let d = { Memory.Dma_desc.addr; len; flags; seqno } in
      Memory.Dma_desc.write m ~at:64 d;
      Memory.Dma_desc.equal d (Memory.Dma_desc.read m ~at:64))

(* ---------- Desc_layout ---------- *)

let test_layout_validation () =
  check_bool "default valid" true (Memory.Desc_layout.validate Memory.Desc_layout.default = Ok ());
  check_bool "compact valid" true (Memory.Desc_layout.validate Memory.Desc_layout.compact = Ok ());
  let overlap =
    { Memory.Desc_layout.default with Memory.Desc_layout.len_off = 4 }
  in
  check_bool "overlap rejected" true (Result.is_error (Memory.Desc_layout.validate overlap));
  let outside =
    { Memory.Desc_layout.compact with Memory.Desc_layout.seqno_off = 11 }
  in
  check_bool "out of bounds rejected" true
    (Result.is_error (Memory.Desc_layout.validate outside))

let test_layout_compact_roundtrip () =
  let m = mem () in
  let d = { Memory.Dma_desc.addr = 0xFFFF; len = 1500; flags = 7; seqno = 9 } in
  Memory.Desc_layout.write Memory.Desc_layout.compact m ~at:256 d;
  check_bool "roundtrip" true
    (Memory.Dma_desc.equal d (Memory.Desc_layout.read Memory.Desc_layout.compact m ~at:256))

let test_layout_limits () =
  let m = mem () in
  check_int "compact max addr" 0xFFFFFFFF (Memory.Desc_layout.max_addr Memory.Desc_layout.compact);
  check_int "compact max len" 0xFFFF (Memory.Desc_layout.max_len Memory.Desc_layout.compact);
  Alcotest.check_raises "addr too wide"
    (Invalid_argument "Desc_layout.write: address does not fit layout")
    (fun () ->
      Memory.Desc_layout.write Memory.Desc_layout.compact m ~at:0
        { Memory.Dma_desc.addr = 0x1_0000_0000; len = 0; flags = 0; seqno = 0 })

let prop_layout_roundtrip =
  QCheck.Test.make ~name:"any valid layout roundtrips descriptors" ~count:200
    QCheck.(
      pair
        (pair (int_range 4 8) (int_range 0 1))
        (quad (int_range 0 0xFFFF) (int_range 0 0xFFFF) (int_range 0 0xFFFF)
           (int_range 0 0xFFFF)))
    (fun ((addr_bytes, len_sel), (addr, len, flags, seqno)) ->
      let len_bytes = if len_sel = 0 then 2 else 4 in
      let layout =
        {
          Memory.Desc_layout.size = addr_bytes + len_bytes + 4;
          addr_off = 0;
          addr_bytes;
          len_off = addr_bytes;
          len_bytes;
          flags_off = addr_bytes + len_bytes;
          seqno_off = addr_bytes + len_bytes + 2;
        }
      in
      Memory.Desc_layout.validate layout = Ok ()
      &&
      let m = Memory.Phys_mem.create ~total_pages:4 () in
      let len = min len (Memory.Desc_layout.max_len layout) in
      let d = { Memory.Dma_desc.addr; len; flags; seqno } in
      Memory.Desc_layout.write layout m ~at:64 d;
      Memory.Dma_desc.equal d (Memory.Desc_layout.read layout m ~at:64))

(* ---------- Iommu ---------- *)

let test_iommu_grant_revoke () =
  let i = Memory.Iommu.create () in
  check_bool "default deny" false (Memory.Iommu.allowed i ~context:1 5);
  Memory.Iommu.grant i ~context:1 5;
  check_bool "granted" true (Memory.Iommu.allowed i ~context:1 5);
  check_bool "other context denied" false (Memory.Iommu.allowed i ~context:2 5);
  Memory.Iommu.revoke i ~context:1 5;
  check_bool "revoked" false (Memory.Iommu.allowed i ~context:1 5)

let test_iommu_revoke_context () =
  let i = Memory.Iommu.create () in
  Memory.Iommu.grant i ~context:1 5;
  Memory.Iommu.grant i ~context:1 6;
  Memory.Iommu.grant i ~context:2 5;
  Memory.Iommu.revoke_context i ~context:1;
  check_bool "ctx1 gone" false (Memory.Iommu.allowed i ~context:1 5);
  check_bool "ctx2 kept" true (Memory.Iommu.allowed i ~context:2 5);
  check_int "entries" 1 (Memory.Iommu.entries i)

let test_iommu_idempotent_grant () =
  let i = Memory.Iommu.create () in
  Memory.Iommu.grant i ~context:1 5;
  Memory.Iommu.grant i ~context:1 5;
  check_int "one entry" 1 (Memory.Iommu.entries i);
  Memory.Iommu.revoke i ~context:1 5;
  check_bool "fully revoked" false (Memory.Iommu.allowed i ~context:1 5)

let test_iommu_packed_keys () =
  (* Entries are keyed by a packed (context, pfn) int: swapped pairs must
     stay distinct, and out-of-range components must be rejected rather
     than silently aliasing another entry. *)
  let i = Memory.Iommu.create () in
  Memory.Iommu.grant i ~context:1 2;
  Memory.Iommu.grant i ~context:2 1;
  check_int "distinct entries" 2 (Memory.Iommu.entries i);
  check_bool "1/2 allowed" true (Memory.Iommu.allowed i ~context:1 2);
  check_bool "2/1 allowed" true (Memory.Iommu.allowed i ~context:2 1);
  check_bool "2/2 denied" false (Memory.Iommu.allowed i ~context:2 2);
  Memory.Iommu.revoke i ~context:1 2;
  check_bool "revoke is exact" true (Memory.Iommu.allowed i ~context:2 1);
  (* A pfn with bits above the packing width would alias context bits. *)
  Alcotest.check_raises "pfn out of range"
    (Invalid_argument "Iommu: pfn out of range")
    (fun () -> Memory.Iommu.grant i ~context:1 (1 lsl 32));
  Alcotest.check_raises "negative pfn"
    (Invalid_argument "Iommu: pfn out of range")
    (fun () -> Memory.Iommu.grant i ~context:1 (-1));
  Alcotest.check_raises "negative context"
    (Invalid_argument "Iommu: negative context")
    (fun () -> Memory.Iommu.grant i ~context:(-1) 4)

let test_iommu_revoke_context_many () =
  let i = Memory.Iommu.create () in
  for pfn = 0 to 99 do
    Memory.Iommu.grant i ~context:7 pfn;
    if pfn mod 2 = 0 then Memory.Iommu.grant i ~context:8 pfn
  done;
  check_int "populated" 150 (Memory.Iommu.entries i);
  Memory.Iommu.revoke_context i ~context:7;
  check_int "only ctx8 left" 50 (Memory.Iommu.entries i);
  check_bool "ctx7 denied" false (Memory.Iommu.allowed i ~context:7 42);
  check_bool "ctx8 kept" true (Memory.Iommu.allowed i ~context:8 42)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "memory.addr",
      [
        Alcotest.test_case "basics" `Quick test_addr_basics;
        Alcotest.test_case "pages spanned" `Quick test_addr_pages_spanned;
        qcheck prop_pages_spanned_count;
      ] );
    ( "memory.page",
      [
        Alcotest.test_case "lifecycle" `Quick test_page_lifecycle;
        Alcotest.test_case "quarantine" `Quick test_page_quarantine;
        Alcotest.test_case "transfer" `Quick test_page_transfer;
        Alcotest.test_case "invalid transitions" `Quick test_page_invalid_transitions;
        qcheck prop_page_refcount_balance;
      ] );
    ( "memory.phys_mem",
      [
        Alcotest.test_case "alloc/free" `Quick test_mem_alloc_free;
        Alcotest.test_case "out of memory" `Quick test_mem_out_of_memory;
        Alcotest.test_case "quarantine blocks realloc" `Quick
          test_mem_quarantine_blocks_realloc;
        Alcotest.test_case "rw roundtrip" `Quick test_mem_rw_roundtrip;
        Alcotest.test_case "rw across pages" `Quick test_mem_rw_across_pages;
        Alcotest.test_case "zero fill" `Quick test_mem_zero_fill;
        Alcotest.test_case "realloc clears" `Quick test_mem_realloc_clears_contents;
        Alcotest.test_case "u16/u32/u64" `Quick test_mem_u_accessors;
        Alcotest.test_case "bounds" `Quick test_mem_bounds;
        Alcotest.test_case "transfer" `Quick test_mem_transfer;
        Alcotest.test_case "zero-alloc accessors" `Quick
          test_mem_zero_alloc_accessors;
        qcheck prop_mem_alloc_disjoint;
        qcheck prop_mem_model_equiv;
        qcheck prop_mem_read_into_equiv;
        qcheck prop_mem_uint_widths;
        qcheck prop_mem_zero_fill_after_reclaim;
        qcheck prop_mem_valid_range_consistent;
      ] );
    ( "memory.dma_desc",
      [
        Alcotest.test_case "roundtrip" `Quick test_desc_roundtrip;
        Alcotest.test_case "validation" `Quick test_desc_validation;
        qcheck prop_desc_roundtrip;
      ] );
    ( "memory.desc_layout",
      [
        Alcotest.test_case "validation" `Quick test_layout_validation;
        Alcotest.test_case "compact roundtrip" `Quick test_layout_compact_roundtrip;
        Alcotest.test_case "limits" `Quick test_layout_limits;
        qcheck prop_layout_roundtrip;
      ] );
    ( "memory.iommu",
      [
        Alcotest.test_case "grant/revoke" `Quick test_iommu_grant_revoke;
        Alcotest.test_case "revoke context" `Quick test_iommu_revoke_context;
        Alcotest.test_case "idempotent grant" `Quick test_iommu_idempotent_grant;
        Alcotest.test_case "packed keys" `Quick test_iommu_packed_keys;
        Alcotest.test_case "revoke context many" `Quick
          test_iommu_revoke_context_many;
      ] );
  ]
