(* Coverage for the smaller API surfaces: pretty-printers, accessors,
   tracing, and report plumbing not exercised by the behavioural suites. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let test_time_order () =
  check_int "compare" (-1) (Sim.Time.compare 1 2);
  check_bool "equal" true (Sim.Time.equal 5 5);
  check_int "min" 1 (Sim.Time.min 1 2);
  check_int "max" 2 (Sim.Time.max 1 2)

let test_trace_sink () =
  let lines = ref [] in
  Sim.Trace.set_sink
    (Some
       (fun ev ->
         lines := (ev.Sim.Trace.time, ev.Sim.Trace.tag, ev.Sim.Trace.name) :: !lines));
  check_bool "enabled" true (Sim.Trace.enabled ());
  Sim.Trace.emit ~time:(Sim.Time.us 3) ~tag:"test" (fun () -> "hello");
  Sim.Trace.set_sink None;
  check_bool "disabled" false (Sim.Trace.enabled ());
  (* Disabled emit does not run the thunk. *)
  Sim.Trace.emit ~time:0 ~tag:"test" (fun () -> Alcotest.fail "lazy!");
  check_bool "captured" true (!lines = [ (Sim.Time.us 3, "test", "hello") ])

let test_trace_in_datapath () =
  (* A quick CDNA run with tracing on produces datapath records. *)
  let count = ref 0 in
  Sim.Trace.set_sink (Some (fun _ev -> incr count));
  let cfg =
    {
      Experiments.Config.default with
      Experiments.Config.warmup = Sim.Time.ms 2;
      duration = Sim.Time.ms 3;
    }
  in
  ignore (Experiments.Run.run cfg);
  Sim.Trace.set_sink None;
  check_bool (Printf.sprintf "events traced (%d)" !count) true (!count > 100)

let test_mac_misc () =
  let m = Ethernet.Mac_addr.of_int48 0xAABBCCDDEEFF in
  check_int "roundtrip" 0xAABBCCDDEEFF (Ethernet.Mac_addr.to_int48 m);
  check_int "hash is value" 0xAABBCCDDEEFF (Ethernet.Mac_addr.hash m);
  check_int "compare" 0 (Ethernet.Mac_addr.compare m m)

let test_link_busy () =
  let engine = Sim.Engine.create () in
  let link = Ethernet.Link.create engine () in
  check_bool "idle" false (Ethernet.Link.busy link ~from:Ethernet.Link.A);
  Ethernet.Link.send link ~from:Ethernet.Link.A
    (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
       ~dst:(Ethernet.Mac_addr.make 2) ~kind:Ethernet.Frame.Data ~flow:0
       ~seq:0 ~payload_len:1500 ~payload_seed:0 ())
    ~on_wire_free:ignore;
  check_bool "busy while serializing" true
    (Ethernet.Link.busy link ~from:Ethernet.Link.A);
  check_int "rate accessor" 1_000_000_000 (Ethernet.Link.rate_bps link)

let test_switch_misc () =
  let sw = Ethernet.Switch.create () in
  let p = Ethernet.Switch.add_port sw (fun _ -> ()) in
  check_int "ports" 1 (Ethernet.Switch.port_count sw);
  check_bool "port equal" true (Ethernet.Switch.port_equal p p);
  check_bool "unknown mac" true
    (Ethernet.Switch.lookup sw (Ethernet.Mac_addr.make 5) = None)

(* tiny substring helper to avoid a dependency *)
module Astring_like = struct
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i =
      if i + nl > hl then false
      else if String.sub haystack i nl = needle then true
      else scan (i + 1)
    in
    scan 0
end

let test_nic_config_pp () =
  let s = Format.asprintf "%a" Nic.Nic_config.pp Nic.Nic_config.intel in
  check_bool "mentions name" true (Astring_like.contains s "Intel")

let test_category_pp () =
  check Alcotest.string "hyp" "hyp"
    (Format.asprintf "%a" Host.Category.pp Host.Category.Hypervisor);
  check Alcotest.string "kernel" "dom3/kernel"
    (Format.asprintf "%a" Host.Category.pp (Host.Category.Kernel 3));
  check Alcotest.string "idle" "idle"
    (Format.asprintf "%a" Host.Category.pp Host.Category.Idle)

let test_cpu_entity_accessors () =
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu = Host.Cpu.create engine ~profile () in
  let e = Host.Cpu.add_entity cpu ~name:"vcpu0" ~weight:256 ~domain:7 in
  check Alcotest.string "name" "vcpu0" (Host.Cpu.name_of e);
  check_int "domain" 7 (Host.Cpu.domain_of e);
  check_int "runtime starts zero" 0 (Host.Cpu.runtime_of e)

let test_config_describe () =
  let d = Experiments.Config.describe Experiments.Config.default in
  check_bool "mentions system" true (Astring_like.contains d "CDNA");
  check_bool "mentions pattern" true (Astring_like.contains d "transmit")

let test_run_primary_bidir () =
  let m =
    Experiments.Run.run
      {
        Experiments.Config.default with
        Experiments.Config.pattern = Workload.Pattern.Bidirectional;
        warmup = Sim.Time.ms 5;
        duration = Sim.Time.ms 10;
      }
  in
  check (Alcotest.float 0.01) "primary = tx + rx"
    (m.Experiments.Run.tx_mbps +. m.Experiments.Run.rx_mbps)
    (Experiments.Run.primary_mbps m)

let test_pattern_pp () =
  check Alcotest.string "tx" "transmit"
    (Format.asprintf "%a" Workload.Pattern.pp Workload.Pattern.Tx)

let test_netback_counters () =
  (* Counters on a fresh netback. *)
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu = Host.Cpu.create engine ~profile () in
  let mem = Memory.Phys_mem.create ~total_pages:16384 () in
  let hyp = Xen.Hypervisor.create engine ~cpu ~mem () in
  let dom =
    Xen.Hypervisor.create_domain hyp ~name:"drv" ~kind:Xen.Domain.Driver
      ~weight:256 ~mem_pages:8192
  in
  let nb =
    Guestos.Netback.create ~hyp ~gnt:(Xen.Grant_table.create hyp) ~dom
      ~costs:Guestos.Netback.default_costs ()
  in
  check_int "tx" 0 (Guestos.Netback.tx_forwarded nb);
  check_int "rx" 0 (Guestos.Netback.rx_delivered nb);
  check_int "drops" 0 (Guestos.Netback.rx_dropped nb);
  check_int "runs" 0 (Guestos.Netback.runs nb);
  check_int "pool" 4096 (Guestos.Netback.pool_size nb)

let test_dma_desc_pp () =
  let s =
    Format.asprintf "%a" Memory.Dma_desc.pp
      { Memory.Dma_desc.addr = 0x1000; len = 5; flags = 1; seqno = 2 }
  in
  check_bool "formats" true (Astring_like.contains s "0x1000")

let test_desc_layout_pp () =
  let s = Format.asprintf "%a" Memory.Desc_layout.pp Memory.Desc_layout.compact in
  check_bool "formats" true (Astring_like.contains s "size=12");
  check_bool "equal" true
    (Memory.Desc_layout.equal Memory.Desc_layout.compact Memory.Desc_layout.compact)

let test_ascii_chart () =
  let chart =
    Experiments.Report.ascii_chart ~x_label:"guests" ~y_label:"Mb/s"
      ~series:[ ("a", '#', [ 100.; 200.; 300. ]); ("b", 'o', [ 300.; 200.; 100. ]) ]
      ~xs:[ 1; 2; 3 ]
  in
  check_bool "has both markers" true
    (Astring_like.contains chart "#" && Astring_like.contains chart "o");
  check_bool "axis labels" true
    (Astring_like.contains chart "guests" && Astring_like.contains chart "Mb/s");
  check_bool "legend" true (Astring_like.contains chart "# = a")

let suite =
  [
    ( "misc.coverage",
      [
        Alcotest.test_case "time ordering" `Quick test_time_order;
        Alcotest.test_case "trace sink" `Quick test_trace_sink;
        Alcotest.test_case "trace in datapath" `Quick test_trace_in_datapath;
        Alcotest.test_case "mac misc" `Quick test_mac_misc;
        Alcotest.test_case "link busy" `Quick test_link_busy;
        Alcotest.test_case "switch misc" `Quick test_switch_misc;
        Alcotest.test_case "nic_config pp" `Quick test_nic_config_pp;
        Alcotest.test_case "category pp" `Quick test_category_pp;
        Alcotest.test_case "cpu accessors" `Quick test_cpu_entity_accessors;
        Alcotest.test_case "config describe" `Quick test_config_describe;
        Alcotest.test_case "primary bidir" `Quick test_run_primary_bidir;
        Alcotest.test_case "pattern pp" `Quick test_pattern_pp;
        Alcotest.test_case "netback counters" `Quick test_netback_counters;
        Alcotest.test_case "dma_desc pp" `Quick test_dma_desc_pp;
        Alcotest.test_case "desc_layout pp" `Quick test_desc_layout_pp;
        Alcotest.test_case "ascii chart" `Quick test_ascii_chart;
      ] );
  ]
