(* Tests for the core CDNA library: sequence numbers, the interrupt
   bit-vector buffer, the CDNA NIC, the hypervisor protection extension,
   and the guest driver end to end. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let us = Sim.Time.us

(* ---------- Seqno ---------- *)

let test_seqno_basics () =
  check_int "modulus" 65536 Cdna.Seqno.modulus;
  check_int "max ring" 32768 Cdna.Seqno.max_ring_slots;
  check_int "next" 1 (Cdna.Seqno.next 0);
  check_int "wrap" 0 (Cdna.Seqno.next 65535);
  check_bool "continuous" true (Cdna.Seqno.continuous ~expected:5 ~got:5);
  check_bool "not continuous" false (Cdna.Seqno.continuous ~expected:5 ~got:6)

let test_seqno_stale_detection () =
  (* A stale descriptor carries expected - ring_slots; with the modulus at
     least twice the ring size it can never equal the expected value. *)
  check_int "stale value" (65536 - 256) (Cdna.Seqno.stale_value ~expected:0 ~ring_slots:256);
  check_bool "stale never matches" false
    (Cdna.Seqno.continuous ~expected:10
       ~got:(Cdna.Seqno.stale_value ~expected:10 ~ring_slots:256))

let prop_seqno_no_alias =
  QCheck.Test.make
    ~name:"stale seqno never aliases for any valid ring size and position"
    ~count:500
    QCheck.(pair (int_range 0 65535) (int_range 1 32768))
    (fun (expected, ring_slots) ->
      let stale = Cdna.Seqno.stale_value ~expected ~ring_slots in
      not (Cdna.Seqno.continuous ~expected ~got:stale))

let prop_seqno_wraparound_continuity =
  QCheck.Test.make ~name:"sequence remains continuous across wraparound"
    ~count:200
    QCheck.(int_range 0 65535)
    (fun start ->
      let next = Cdna.Seqno.next start in
      Cdna.Seqno.continuous ~expected:next ~got:next
      && next = (start + 1) mod 65536)

(* ---------- Intr_vector ---------- *)

let intr_fixture ?(slots = 4) () =
  let engine = Sim.Engine.create () in
  let mem = Memory.Phys_mem.create ~total_pages:16 () in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let iv =
    Cdna.Intr_vector.create ~mem ~dma ~base:(Memory.Addr.base_of_pfn 1) ~slots
      ~dma_context:0
  in
  (engine, mem, iv)

let test_intr_vector_roundtrip () =
  let engine, _, iv = intr_fixture () in
  let done_count = ref 0 in
  check_bool "post 1" true
    (Cdna.Intr_vector.try_post iv ~bits:0b1010 ~on_done:(fun () -> incr done_count));
  check_bool "post 2" true
    (Cdna.Intr_vector.try_post iv ~bits:0b0001 ~on_done:(fun () -> incr done_count));
  ignore (Sim.Engine.run_to_completion engine);
  check_int "both landed" 2 !done_count;
  check (Alcotest.list Alcotest.int) "drained in order" [ 0b1010; 0b0001 ]
    (Cdna.Intr_vector.drain iv);
  check_int "posted" 2 (Cdna.Intr_vector.posted iv);
  check_int "drained count" 2 (Cdna.Intr_vector.drained iv)

let test_intr_vector_producer_consumer_protocol () =
  (* Vectors must never be overwritten before the host drains them. *)
  let engine, _, iv = intr_fixture ~slots:2 () in
  check_bool "1" true (Cdna.Intr_vector.try_post iv ~bits:1 ~on_done:ignore);
  check_bool "2" true (Cdna.Intr_vector.try_post iv ~bits:2 ~on_done:ignore);
  check_bool "full refuses" false (Cdna.Intr_vector.try_post iv ~bits:3 ~on_done:ignore);
  ignore (Sim.Engine.run_to_completion engine);
  check (Alcotest.list Alcotest.int) "first two preserved" [ 1; 2 ]
    (Cdna.Intr_vector.drain iv);
  (* Space recovered after drain. *)
  check_bool "post after drain" true
    (Cdna.Intr_vector.try_post iv ~bits:3 ~on_done:ignore);
  ignore (Sim.Engine.run_to_completion engine);
  check (Alcotest.list Alcotest.int) "third" [ 3 ] (Cdna.Intr_vector.drain iv)

let test_intr_vector_drain_only_landed () =
  (* A vector whose DMA has not completed is invisible to the host. *)
  let engine, _, iv = intr_fixture () in
  ignore (Cdna.Intr_vector.try_post iv ~bits:7 ~on_done:ignore);
  check (Alcotest.list Alcotest.int) "nothing landed yet" []
    (Cdna.Intr_vector.drain iv);
  ignore (Sim.Engine.run_to_completion engine);
  check (Alcotest.list Alcotest.int) "after DMA" [ 7 ] (Cdna.Intr_vector.drain iv)

(* ---------- Full CDNA system fixture ---------- *)

type fx = {
  engine : Sim.Engine.t;
  mem : Memory.Phys_mem.t;
  xen : Xen.Hypervisor.t;
  cdna : Cdna.Hyp.t;
  nic : Cdna.Cnic.t;
  link : Ethernet.Link.t;
  guest : Xen.Domain.t;
  guest2 : Xen.Domain.t;
}

let fixture ?(protection = Cdna.Cdna_costs.Full) ?(materialize = false) () =
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu = Host.Cpu.create engine ~profile () in
  let mem = Memory.Phys_mem.create ~total_pages:8192 () in
  let xen = Xen.Hypervisor.create engine ~cpu ~mem () in
  let guest =
    Xen.Hypervisor.create_domain xen ~name:"g0" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:2048
  in
  let guest2 =
    Xen.Hypervisor.create_domain xen ~name:"g1" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:2048
  in
  let cdna = Cdna.Hyp.create xen ~protection () in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let irq = Bus.Irq.create ~name:"cdna" in
  let intr_page = List.hd (Xen.Hypervisor.alloc_hyp_pages xen 1) in
  let config =
    {
      Cdna.Cnic.default_config with
      Nic.Nic_config.materialize_payloads = materialize;
    }
  in
  let nic =
    Cdna.Cnic.create engine ~mem ~dma ~config ~irq ~dma_context_base:0
      ~intr_base:(Memory.Addr.base_of_pfn intr_page)
      ()
  in
  Cdna.Hyp.add_nic cdna nic;
  let link = Ethernet.Link.create engine () in
  Cdna.Cnic.attach_link nic link ~side:Ethernet.Link.A;
  { engine; mem; xen; cdna; nic; link; guest; guest2 }

let run fx ms =
  Sim.Engine.run fx.engine
    ~until:(Sim.Time.add (Sim.Engine.now fx.engine) (Sim.Time.ms ms))

let await fx f =
  let r = ref None in
  f (fun x -> r := Some x);
  run fx 5;
  match !r with Some x -> x | None -> Alcotest.fail "hypercall never completed"

let assign fx ?(guest : Xen.Domain.t option) ~mac_idx () =
  let guest = Option.value guest ~default:fx.guest in
  match
    Cdna.Hyp.assign_context fx.cdna ~nic:fx.nic ~guest
      ~mac:(Ethernet.Mac_addr.make mac_idx) ~isr_cost:(us 1)
  with
  | Ok h -> h
  | Error `No_free_context -> Alcotest.fail "no free context"

let setup_rings fx h =
  let guest = Cdna.Hyp.guest_of h in
  let page () = List.hd (Xen.Hypervisor.alloc_pages fx.xen guest 1) in
  let tx = page () and rx = page () and status = page () in
  (match
     await fx (fun k ->
         Cdna.Hyp.register_ring fx.cdna h Cdna.Hyp.Tx
           ~base:(Memory.Addr.base_of_pfn tx) ~slots:64 k)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "tx ring registration failed");
  (match
     await fx (fun k ->
         Cdna.Hyp.register_ring fx.cdna h Cdna.Hyp.Rx
           ~base:(Memory.Addr.base_of_pfn rx) ~slots:64 k)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "rx ring registration failed");
  (match
     await fx (fun k ->
         Cdna.Hyp.register_status fx.cdna h
           ~addr:(Memory.Addr.base_of_pfn status) k)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "status registration failed")

let own_desc fx h ?(len = 500) () =
  let pfn = List.hd (Xen.Hypervisor.alloc_pages fx.xen (Cdna.Hyp.guest_of h) 1) in
  {
    Memory.Dma_desc.addr = Memory.Addr.base_of_pfn pfn;
    len;
    flags = Memory.Dma_desc.flag_end_of_packet;
    seqno = 0;
  }

let meta_frame h ~seq =
  ignore h;
  Ethernet.Frame.make
    ~src:(Ethernet.Mac_addr.make 1)
    ~dst:(Ethernet.Mac_addr.make 99)
    ~kind:Ethernet.Frame.Data ~flow:0 ~seq ~payload_len:500 ~payload_seed:seq ()

(* ---------- Context management (Hyp) ---------- *)

let test_hyp_assign_unique_contexts () =
  let fx = fixture () in
  let h1 = assign fx ~mac_idx:1 () in
  let h2 = assign fx ~guest:fx.guest2 ~mac_idx:2 () in
  check_bool "distinct contexts" true (Cdna.Hyp.ctx_id h1 <> Cdna.Hyp.ctx_id h2);
  check_bool "active on nic" true
    (Nic.Dp.is_active (Cdna.Cnic.dp fx.nic) ~ctx:(Cdna.Hyp.ctx_id h1));
  check_bool "guests recorded" true
    (Xen.Domain.id (Cdna.Hyp.guest_of h2) = Xen.Domain.id fx.guest2)

let test_hyp_context_exhaustion () =
  let fx = fixture () in
  for i = 0 to Cdna.Cnic.num_contexts - 1 do
    ignore (assign fx ~mac_idx:(10 + i) ())
  done;
  check_bool "exhausted" true
    (Cdna.Hyp.assign_context fx.cdna ~nic:fx.nic ~guest:fx.guest
       ~mac:(Ethernet.Mac_addr.make 99) ~isr_cost:(us 1)
    = Error `No_free_context)

let test_hyp_revoke_frees_context () =
  let fx = fixture () in
  let h = assign fx ~mac_idx:1 () in
  let ctx = Cdna.Hyp.ctx_id h in
  Cdna.Hyp.revoke fx.cdna h;
  check_bool "revoked" true (Cdna.Hyp.is_revoked h);
  check_bool "nic context freed" false
    (Nic.Dp.is_active (Cdna.Cnic.dp fx.nic) ~ctx);
  (* The slot is reusable. *)
  let h2 = assign fx ~guest:fx.guest2 ~mac_idx:2 () in
  check_int "same slot reassigned" ctx (Cdna.Hyp.ctx_id h2)

let test_faulted_slot_withheld_until_reset () =
  let fx = fixture () in
  let h = assign fx ~mac_idx:1 () in
  setup_rings fx h;
  let ctx = Cdna.Hyp.ctx_id h in
  let dp = Cdna.Cnic.dp fx.nic in
  let hw = Cdna.Hyp.driver_if h in
  (* Halt the context: doorbell past the last hypervisor-stamped
     descriptor, so the NIC's sequence check fires. *)
  (match
     await fx (fun k ->
         Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Tx [ own_desc fx h () ] k)
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "enqueue failed");
  hw.Nic.Driver_if.stage_tx_meta (meta_frame h ~seq:0);
  hw.Nic.Driver_if.stage_tx_meta (meta_frame h ~seq:1);
  hw.Nic.Driver_if.tx_doorbell 2;
  run fx 5;
  check_bool "context halted" true (Nic.Dp.is_faulted dp ~ctx);
  (* The halted slot keeps its poisoned seqno/ring state until it is
     deactivated: allocation must withhold it, whatever its active flag
     says. *)
  (match Cdna.Cnic.free_context fx.nic with
  | Some s -> check_bool "faulted slot withheld" true (s <> ctx)
  | None -> Alcotest.fail "expected free slots");
  let other = assign fx ~guest:fx.guest2 ~mac_idx:2 () in
  check_bool "new assignment avoids the halted slot" true
    (Cdna.Hyp.ctx_id other <> ctx);
  (* Deactivation fully resets the slot; only then may it be handed out. *)
  Cdna.Hyp.revoke fx.cdna h;
  check_bool "reset clears the fault latch" false (Nic.Dp.is_faulted dp ~ctx);
  (match Cdna.Cnic.free_context fx.nic with
  | Some s -> check_int "reset slot is free again" ctx s
  | None -> Alcotest.fail "expected free slots");
  let fresh = assign fx ~mac_idx:3 () in
  check_int "slot reused" ctx (Cdna.Hyp.ctx_id fresh);
  setup_rings fx fresh;
  let tx_before = (Cdna.Cnic.stats fx.nic).Nic.Dp.tx_frames in
  let faults_before = List.length (Cdna.Hyp.faults fx.cdna) in
  let hw' = Cdna.Hyp.driver_if fresh in
  (match
     await fx (fun k ->
         Cdna.Hyp.enqueue fx.cdna fresh Cdna.Hyp.Tx [ own_desc fx fresh () ] k)
   with
  | Ok prod -> check_int "producer restarts with the slot" 1 prod
  | Error _ -> Alcotest.fail "enqueue on reused slot failed");
  hw'.Nic.Driver_if.stage_tx_meta (meta_frame fresh ~seq:0);
  hw'.Nic.Driver_if.tx_doorbell 1;
  run fx 5;
  check_int "clean transmit from the reused slot" (tx_before + 1)
    (Cdna.Cnic.stats fx.nic).Nic.Dp.tx_frames;
  check_int "no new faults" faults_before
    (List.length (Cdna.Hyp.faults fx.cdna))

(* ---------- DMA protection (Hyp.enqueue) ---------- *)

let test_hyp_enqueue_validates_ownership () =
  let fx = fixture () in
  let h = assign fx ~mac_idx:1 () in
  setup_rings fx h;
  (* Own page: accepted. *)
  (match await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Tx [ own_desc fx h () ] k) with
  | Ok prod -> check_int "producer advanced" 1 prod
  | Error _ -> Alcotest.fail "own page rejected");
  (* Foreign page: rejected with the culprit pfn. *)
  let foreign = List.hd (Xen.Domain.pages fx.guest2) in
  let bad =
    {
      Memory.Dma_desc.addr = Memory.Addr.base_of_pfn foreign;
      len = 100;
      flags = 0;
      seqno = 0;
    }
  in
  match await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Tx [ bad ] k) with
  | Error (`Not_owner pfn) -> check_int "culprit" foreign pfn
  | _ -> Alcotest.fail "foreign page accepted"

let test_hyp_enqueue_rejects_whole_batch () =
  let fx = fixture () in
  let h = assign fx ~mac_idx:1 () in
  setup_rings fx h;
  let foreign = List.hd (Xen.Domain.pages fx.guest2) in
  let bad =
    { Memory.Dma_desc.addr = Memory.Addr.base_of_pfn foreign; len = 10; flags = 0; seqno = 0 }
  in
  (match
     await fx (fun k ->
         Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Tx [ own_desc fx h (); bad ] k)
   with
  | Error (`Not_owner _) -> ()
  | _ -> Alcotest.fail "batch with foreign page accepted");
  (* Nothing was pinned: all-or-nothing. *)
  check_int "no pins" 0 (Cdna.Hyp.pinned_pages h)

let test_hyp_enqueue_pins_and_lazily_unpins () =
  let fx = fixture () in
  let h = assign fx ~mac_idx:1 () in
  setup_rings fx h;
  let hw = Cdna.Hyp.driver_if h in
  let d1 = own_desc fx h () in
  (match await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Tx [ d1 ] k) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "enqueue failed");
  check_int "pinned" 1 (Cdna.Hyp.pinned_pages h);
  check_int "page refcount" 1
    (Memory.Page.refcount (Memory.Phys_mem.page fx.mem (Memory.Addr.pfn_of d1.Memory.Dma_desc.addr)));
  (* Let the NIC consume it. *)
  hw.Nic.Driver_if.stage_tx_meta (meta_frame h ~seq:0);
  hw.Nic.Driver_if.tx_doorbell 1;
  run fx 5;
  (* Still pinned: unpinning is lazy, on the next enqueue. *)
  check_int "still pinned" 1 (Cdna.Hyp.pinned_pages h);
  (match await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Tx [ own_desc fx h () ] k) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "second enqueue failed");
  check_int "old pin dropped, new pin live" 1 (Cdna.Hyp.pinned_pages h);
  check_int "old page unpinned" 0
    (Memory.Page.refcount (Memory.Phys_mem.page fx.mem (Memory.Addr.pfn_of d1.Memory.Dma_desc.addr)))

let test_hyp_pinned_page_cannot_move () =
  let fx = fixture () in
  let h = assign fx ~mac_idx:1 () in
  setup_rings fx h;
  let d = own_desc fx h () in
  (match await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Rx [ d ] k) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "enqueue failed");
  let pfn = Memory.Addr.pfn_of d.Memory.Dma_desc.addr in
  (* Freeing quarantines rather than releasing. *)
  Xen.Hypervisor.free_page fx.xen fx.guest pfn;
  check_bool "quarantined" true
    (match Memory.Page.state (Memory.Phys_mem.page fx.mem pfn) with
    | Memory.Page.Quarantined _ -> true
    | _ -> false)

let test_hyp_enqueue_ring_full () =
  let fx = fixture () in
  let h = assign fx ~mac_idx:1 () in
  setup_rings fx h;
  (* The ring holds 64; the NIC cannot drain without metadata+doorbell,
     and the status page never advances, so the 65th must be refused. *)
  let descs = List.init 65 (fun _ -> own_desc fx h ()) in
  let rec push n = function
    | [] -> n
    | d :: rest -> (
        match await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Tx [ d ] k) with
        | Ok _ -> push (n + 1) rest
        | Error `Ring_full -> n
        | Error _ -> Alcotest.fail "unexpected error")
  in
  check_int "exactly 64 accepted" 64 (push 0 descs)

let test_hyp_enqueue_unregistered_ring () =
  let fx = fixture () in
  let h = assign fx ~mac_idx:1 () in
  match await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Tx [ own_desc fx h () ] k) with
  | Error `Ring_unregistered -> ()
  | _ -> Alcotest.fail "expected Ring_unregistered"

let test_hyp_enqueue_after_revoke () =
  let fx = fixture () in
  let h = assign fx ~mac_idx:1 () in
  setup_rings fx h;
  Cdna.Hyp.revoke fx.cdna h;
  match await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Tx [ own_desc fx h () ] k) with
  | Error `Revoked -> ()
  | _ -> Alcotest.fail "expected Revoked"

let test_hyp_ring_registration_validates () =
  let fx = fixture () in
  let h = assign fx ~mac_idx:1 () in
  let foreign = List.hd (Xen.Domain.pages fx.guest2) in
  match
    await fx (fun k ->
        Cdna.Hyp.register_ring fx.cdna h Cdna.Hyp.Tx
          ~base:(Memory.Addr.base_of_pfn foreign) ~slots:64 k)
  with
  | Error (`Not_owner _) -> ()
  | _ -> Alcotest.fail "foreign ring memory accepted"

let test_hyp_revoke_unpins_everything () =
  let fx = fixture () in
  let h = assign fx ~mac_idx:1 () in
  setup_rings fx h;
  let descs = List.init 5 (fun _ -> own_desc fx h ()) in
  (match await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Rx descs k) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "enqueue failed");
  check_int "pinned" 5 (Cdna.Hyp.pinned_pages h);
  let pfns =
    List.map (fun d -> Memory.Addr.pfn_of d.Memory.Dma_desc.addr) descs
  in
  Cdna.Hyp.revoke fx.cdna h;
  check_int "all unpinned" 0 (Cdna.Hyp.pinned_pages h);
  List.iter
    (fun pfn ->
      check_int "refcount zero" 0
        (Memory.Page.refcount (Memory.Phys_mem.page fx.mem pfn)))
    pfns

(* ---------- Protection fault reporting ---------- *)

let test_fault_attributed_to_guest () =
  let fx = fixture () in
  let h = assign fx ~mac_idx:1 () in
  setup_rings fx h;
  let hw = Cdna.Hyp.driver_if h in
  (match await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Tx [ own_desc fx h () ] k) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "enqueue failed");
  hw.Nic.Driver_if.stage_tx_meta (meta_frame h ~seq:0);
  hw.Nic.Driver_if.stage_tx_meta (meta_frame h ~seq:1);
  (* Doorbell past the last hypervisor-stamped descriptor. *)
  hw.Nic.Driver_if.tx_doorbell 2;
  run fx 5;
  check_bool "fault recorded for the right guest" true
    (List.exists
       (fun (dom, ctx) ->
         dom = Xen.Domain.id fx.guest && ctx = Cdna.Hyp.ctx_id h)
       (Cdna.Hyp.faults fx.cdna))

(* ---------- Disabled and IOMMU modes ---------- *)

let test_disabled_mode_skips_validation () =
  let fx = fixture ~protection:Cdna.Cdna_costs.Disabled () in
  let h = assign fx ~mac_idx:1 () in
  setup_rings fx h;
  let foreign = List.hd (Xen.Domain.pages fx.guest2) in
  let bad =
    { Memory.Dma_desc.addr = Memory.Addr.base_of_pfn foreign; len = 100; flags = 0; seqno = 0 }
  in
  (match await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Tx [ bad ] k) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "disabled mode rejected a descriptor");
  check_int "nothing pinned" 0 (Cdna.Hyp.pinned_pages h)

let test_iommu_mode_blocks_foreign_dma () =
  let fx = fixture ~protection:Cdna.Cdna_costs.Iommu () in
  let h = assign fx ~mac_idx:1 () in
  setup_rings fx h;
  let hw = Cdna.Hyp.driver_if h in
  (* Enqueue a legitimate descriptor, then tamper with the ring memory to
     point it at a foreign page (the guest owns its ring pages only under
     Full protection, so Iommu mode leaves this window — which the IOMMU
     itself must close). *)
  (match await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Tx [ own_desc fx h () ] k) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "enqueue failed");
  check_int "granted to iommu while in flight" 1 (Cdna.Hyp.pinned_pages h);
  (* A transmit from the legitimate page goes through. *)
  hw.Nic.Driver_if.stage_tx_meta (meta_frame h ~seq:0);
  hw.Nic.Driver_if.tx_doorbell 1;
  run fx 5;
  check_int "frame sent" 1 (Cdna.Cnic.stats fx.nic).Nic.Dp.tx_frames

(* Forged-descriptor end-to-end: the guest posts an Rx descriptor naming a
   page owned by another domain, then traffic arrives for it. The whole
   datapath runs with materialized payloads so the DMA writes real bytes.
   Returns the enqueue result and the victim page contents afterwards. *)
let forged_rx_roundtrip ~protection =
  let fx = fixture ~protection ~materialize:true () in
  let h = assign fx ~mac_idx:1 () in
  setup_rings fx h;
  let victim_pfn = List.hd (Xen.Domain.pages fx.guest2) in
  let victim_addr = Memory.Addr.base_of_pfn victim_pfn in
  Memory.Phys_mem.write fx.mem ~addr:victim_addr (Bytes.make 256 'V');
  let forged =
    { Memory.Dma_desc.addr = victim_addr; len = 256; flags = 0; seqno = 0 }
  in
  let result =
    await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Rx [ forged ] k)
  in
  (* If the hypervisor let the descriptor through, hand it to the NIC the
     way a driver would and deliver a frame addressed to this guest. *)
  (match result with
  | Ok prod -> (Cdna.Hyp.driver_if h).Nic.Driver_if.rx_doorbell prod
  | Error _ -> ());
  Ethernet.Link.send fx.link ~from:Ethernet.Link.B
    (Ethernet.Frame.make
       ~src:(Ethernet.Mac_addr.make 99)
       ~dst:(Ethernet.Mac_addr.make 1)
       ~kind:Ethernet.Frame.Data ~flow:0 ~seq:0 ~payload_len:256
       ~payload_seed:7 ())
    ~on_wire_free:ignore;
  run fx 10;
  let victim_bytes = Memory.Phys_mem.read fx.mem ~addr:victim_addr ~len:256 in
  let rx_frames = (Cdna.Cnic.stats fx.nic).Nic.Dp.rx_frames in
  (result, victim_bytes, victim_pfn, rx_frames)

let test_forged_descriptor_blocked_under_full () =
  let result, victim_bytes, victim_pfn, rx_frames =
    forged_rx_roundtrip ~protection:Cdna.Cdna_costs.Full
  in
  (match result with
  | Error (`Not_owner pfn) -> check_int "culprit pfn" victim_pfn pfn
  | Ok _ -> Alcotest.fail "forged descriptor accepted under Full protection"
  | Error _ -> Alcotest.fail "rejected for the wrong reason");
  check_int "no frame landed" 0 rx_frames;
  check_bool "victim page untouched" true
    (Bytes.for_all (fun c -> c = 'V') victim_bytes)

let test_forged_descriptor_corrupts_when_disabled () =
  let result, victim_bytes, victim_pfn, rx_frames =
    forged_rx_roundtrip ~protection:Cdna.Cdna_costs.Disabled
  in
  ignore victim_pfn;
  (match result with
  | Ok prod -> check_int "producer advanced" 1 prod
  | Error _ -> Alcotest.fail "disabled mode rejected the forged descriptor");
  (* The frame really flowed through the NIC into the forged buffer... *)
  check_int "frame delivered" 1 rx_frames;
  (* ...and overwrote another guest's memory: exactly the corruption the
     CDNA validation hypercall exists to prevent (paper section 3.3). *)
  check_bool "victim page corrupted" true
    (Bytes.exists (fun c -> c <> 'V') victim_bytes)

(* ---------- CDNA guest driver end-to-end ---------- *)

let driver_fixture ?(protection = Cdna.Cdna_costs.Full) ?(materialize = false)
    () =
  let fx = fixture ~protection ~materialize () in
  let h = assign fx ~mac_idx:1 () in
  let driver =
    Cdna.Driver.create ~hyp:fx.cdna ~handle:h ~costs:Guestos.Os_costs.default
      ~materialize ()
  in
  let post_kernel ~cost fn = Xen.Hypervisor.kernel_work fx.xen fx.guest ~cost fn in
  let stack =
    Guestos.Net_stack.create ~post_kernel ~costs:Guestos.Os_costs.default
      ~netdev:(Cdna.Driver.netdev driver)
  in
  run fx 5;
  (fx, h, driver, stack)

let test_driver_comes_up () =
  let _fx, _h, driver, _ = driver_fixture () in
  check_bool "ready after async registration" true (Cdna.Driver.ready driver)

let test_driver_transmit_roundtrip () =
  let fx, _h, driver, stack = driver_fixture () in
  let wire = ref [] in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun f -> wire := f :: !wire);
  let frames =
    List.init 25 (fun i ->
        Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
          ~dst:(Ethernet.Mac_addr.make 99) ~kind:Ethernet.Frame.Data ~flow:0
          ~seq:i ~payload_len:1000 ~payload_seed:i ())
  in
  Guestos.Net_stack.send stack frames;
  run fx 20;
  check_int "all transmitted" 25 (List.length !wire);
  check_int "driver counter" 25 (Cdna.Driver.tx_count driver);
  check_int "no enqueue errors" 0 (Cdna.Driver.enqueue_errors driver);
  check_bool "no faults" true (Cdna.Hyp.faults fx.cdna = [])

let test_driver_receive_roundtrip () =
  let fx, _h, driver, stack = driver_fixture () in
  let got = ref [] in
  Guestos.Net_stack.set_rx_handler stack (fun fs -> got := fs @ !got);
  for i = 0 to 19 do
    Ethernet.Link.send fx.link ~from:Ethernet.Link.B
      (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 99)
         ~dst:(Ethernet.Mac_addr.make 1) ~kind:Ethernet.Frame.Data ~flow:0
         ~seq:i ~payload_len:1200 ~payload_seed:i ())
      ~on_wire_free:ignore
  done;
  run fx 20;
  check_int "all received" 20 (List.length !got);
  check_int "driver counter" 20 (Cdna.Driver.rx_count driver)

let test_driver_materialized_integrity () =
  let fx, _h, _driver, stack = driver_fixture ~materialize:true () in
  let wire = ref [] in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun f -> wire := f :: !wire);
  Guestos.Net_stack.send stack
    [
      Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
        ~dst:(Ethernet.Mac_addr.make 99) ~kind:Ethernet.Frame.Data ~flow:0
        ~seq:0 ~payload_len:1234 ~payload_seed:5 ();
    ];
  run fx 20;
  match !wire with
  | [ f ] ->
      check_bool "payload valid through hypercall enqueue + DMA" true
        (Ethernet.Frame.data_valid f)
  | _ -> Alcotest.fail "expected one frame"

let test_driver_virq_flow () =
  (* The full interrupt path: NIC completion -> bit vector DMA -> physical
     irq -> hypervisor decode -> event channel -> driver poll. *)
  let fx, h, _driver, stack = driver_fixture () in
  Guestos.Net_stack.send stack
    [
      Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
        ~dst:(Ethernet.Mac_addr.make 99) ~kind:Ethernet.Frame.Data ~flow:0
        ~seq:0 ~payload_len:100 ~payload_seed:0 ();
    ];
  run fx 20;
  check_bool "virq delivered" true (Cdna.Hyp.virq_deliveries h > 0);
  check_bool "interrupt raised after vector landed" true
    (Cdna.Cnic.interrupts_raised fx.nic > 0);
  check_bool "guest virq counted" true (Xen.Domain.virq_count fx.guest > 0)

let test_driver_two_guests_isolated_traffic () =
  let fx = fixture () in
  let h1 = assign fx ~mac_idx:1 () in
  let h2 = assign fx ~guest:fx.guest2 ~mac_idx:2 () in
  let d1 = Cdna.Driver.create ~hyp:fx.cdna ~handle:h1 ~costs:Guestos.Os_costs.default () in
  let d2 = Cdna.Driver.create ~hyp:fx.cdna ~handle:h2 ~costs:Guestos.Os_costs.default () in
  run fx 5;
  (* Frames addressed to each guest's MAC reach only that context. *)
  for i = 0 to 3 do
    Ethernet.Link.send fx.link ~from:Ethernet.Link.B
      (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 99)
         ~dst:(Ethernet.Mac_addr.make ((i mod 2) + 1))
         ~kind:Ethernet.Frame.Data ~flow:i ~seq:0 ~payload_len:100
         ~payload_seed:0 ())
      ~on_wire_free:ignore
  done;
  run fx 10;
  check_int "guest1 got its two" 2 (Cdna.Driver.rx_count d1);
  check_int "guest2 got its two" 2 (Cdna.Driver.rx_count d2)

let test_revocation_under_load () =
  (* Revoke one guest's context mid-traffic: its pending work is shut
     down, its pins drop, and the other guest's traffic continues
     unharmed. *)
  let fx = fixture () in
  let h1 = assign fx ~mac_idx:1 () in
  let h2 = assign fx ~guest:fx.guest2 ~mac_idx:2 () in
  let d1 = Cdna.Driver.create ~hyp:fx.cdna ~handle:h1 ~costs:Guestos.Os_costs.default () in
  let d2 = Cdna.Driver.create ~hyp:fx.cdna ~handle:h2 ~costs:Guestos.Os_costs.default () in
  run fx 5;
  let post_kernel dom ~cost fn = Xen.Hypervisor.kernel_work fx.xen dom ~cost fn in
  let stack1 =
    Guestos.Net_stack.create ~post_kernel:(post_kernel fx.guest)
      ~costs:Guestos.Os_costs.default ~netdev:(Cdna.Driver.netdev d1)
  in
  let stack2 =
    Guestos.Net_stack.create ~post_kernel:(post_kernel fx.guest2)
      ~costs:Guestos.Os_costs.default ~netdev:(Cdna.Driver.netdev d2)
  in
  let send stack src n =
    Guestos.Net_stack.send stack
      (List.init n (fun i ->
           Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make src)
             ~dst:(Ethernet.Mac_addr.make 99) ~kind:Ethernet.Frame.Data
             ~flow:src ~seq:i ~payload_len:1000 ~payload_seed:i ()))
  in
  send stack1 1 200;
  send stack2 2 200;
  (* Revoke guest 1 while its packets are in flight. *)
  ignore
    (Sim.Engine.schedule fx.engine ~delay:(Sim.Time.us 200) (fun () ->
         Cdna.Hyp.revoke fx.cdna h1));
  run fx 60;
  check_bool "guest1 revoked" true (Cdna.Hyp.is_revoked h1);
  check_int "guest1 pins dropped" 0 (Cdna.Hyp.pinned_pages h1);
  check_bool "guest1 stopped early" true (Cdna.Driver.tx_count d1 < 200);
  check_int "guest2 unaffected" 200 (Cdna.Driver.tx_count d2);
  check_bool "guest2 still owns its context" true
    (Nic.Dp.is_active (Cdna.Cnic.dp fx.nic) ~ctx:(Cdna.Hyp.ctx_id h2))

let test_compact_layout_cdna_end_to_end () =
  (* A CDNA NIC negotiating the 12-byte compact descriptor format: the
     hypervisor serializes through the published layout (paper 3.4). *)
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu = Host.Cpu.create engine ~profile () in
  let mem = Memory.Phys_mem.create ~total_pages:8192 () in
  let xen = Xen.Hypervisor.create engine ~cpu ~mem () in
  let guest =
    Xen.Hypervisor.create_domain xen ~name:"g" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:2048
  in
  let cdna = Cdna.Hyp.create xen () in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let irq = Bus.Irq.create ~name:"cdna" in
  let intr_page = List.hd (Xen.Hypervisor.alloc_hyp_pages xen 1) in
  let config =
    {
      Cdna.Cnic.default_config with
      Nic.Nic_config.desc_layout = Memory.Desc_layout.compact;
    }
  in
  let nic =
    Cdna.Cnic.create engine ~mem ~dma ~config ~irq ~dma_context_base:0
      ~intr_base:(Memory.Addr.base_of_pfn intr_page)
      ()
  in
  Cdna.Hyp.add_nic cdna nic;
  let link = Ethernet.Link.create engine () in
  Cdna.Cnic.attach_link nic link ~side:Ethernet.Link.A;
  let wire = ref 0 in
  Ethernet.Link.attach link Ethernet.Link.B (fun _ -> incr wire);
  let h =
    match
      Cdna.Hyp.assign_context cdna ~nic ~guest ~mac:(Ethernet.Mac_addr.make 1)
        ~isr_cost:(us 1)
    with
    | Ok h -> h
    | Error _ -> Alcotest.fail "assign failed"
  in
  let driver = Cdna.Driver.create ~hyp:cdna ~handle:h ~costs:Guestos.Os_costs.default () in
  Sim.Engine.run engine ~until:(Sim.Time.ms 5);
  Alcotest.(check bool) "driver up" true (Cdna.Driver.ready driver);
  let post_kernel ~cost fn = Xen.Hypervisor.kernel_work xen guest ~cost fn in
  let stack =
    Guestos.Net_stack.create ~post_kernel ~costs:Guestos.Os_costs.default
      ~netdev:(Cdna.Driver.netdev driver)
  in
  Guestos.Net_stack.send stack
    (List.init 8 (fun i ->
         Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
           ~dst:(Ethernet.Mac_addr.make 99) ~kind:Ethernet.Frame.Data ~flow:0
           ~seq:i ~payload_len:1000 ~payload_seed:i ()));
  Sim.Engine.run engine ~until:(Sim.Time.ms 15);
  check_int "all frames through the compact layout" 8 !wire;
  check_bool "no faults" true (Cdna.Hyp.faults cdna = [])

let test_enqueue_call_accounting () =
  let fx = fixture () in
  let h = assign fx ~mac_idx:1 () in
  setup_rings fx h;
  check_int "no calls yet" 0 (Cdna.Hyp.enqueue_calls fx.cdna);
  (match await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Tx [ own_desc fx h () ] k) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "enqueue failed");
  (match await fx (fun k -> Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Rx [ own_desc fx h () ] k) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "enqueue failed");
  check_int "two hypercalls" 2 (Cdna.Hyp.enqueue_calls fx.cdna)

let test_context_migration () =
  (* Move a live guest from one CDNA NIC to another: revoke + reassign
     with the same MAC, driver rebinds, traffic resumes on the new link. *)
  let fx = fixture () in
  (* A second NIC on its own link. *)
  let irq2 = Bus.Irq.create ~name:"cdna2" in
  let intr_page2 = List.hd (Xen.Hypervisor.alloc_hyp_pages fx.xen 1) in
  let nic2 =
    Cdna.Cnic.create fx.engine ~mem:fx.mem
      ~dma:(Cdna.Cnic.dma fx.nic) ~irq:irq2 ~dma_context_base:64
      ~intr_base:(Memory.Addr.base_of_pfn intr_page2)
      ()
  in
  Cdna.Hyp.add_nic fx.cdna nic2;
  let link2 = Ethernet.Link.create fx.engine () in
  Cdna.Cnic.attach_link nic2 link2 ~side:Ethernet.Link.A;
  let wire1 = ref 0 and wire2 = ref 0 in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun _ -> incr wire1);
  Ethernet.Link.attach link2 Ethernet.Link.B (fun _ -> incr wire2);
  let h = assign fx ~mac_idx:1 () in
  let driver = Cdna.Driver.create ~hyp:fx.cdna ~handle:h ~costs:Guestos.Os_costs.default () in
  run fx 5;
  let post_kernel ~cost fn = Xen.Hypervisor.kernel_work fx.xen fx.guest ~cost fn in
  let stack =
    Guestos.Net_stack.create ~post_kernel ~costs:Guestos.Os_costs.default
      ~netdev:(Cdna.Driver.netdev driver)
  in
  let send n =
    Guestos.Net_stack.send stack
      (List.init n (fun i ->
           Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
             ~dst:(Ethernet.Mac_addr.make 99) ~kind:Ethernet.Frame.Data
             ~flow:0 ~seq:i ~payload_len:800 ~payload_seed:i ()))
  in
  send 20;
  run fx 10;
  check_int "before: traffic on link 1" 20 !wire1;
  check_int "before: nothing on link 2" 0 !wire2;
  (* Migrate. *)
  let h2 =
    match Cdna.Hyp.migrate fx.cdna h ~to_nic:nic2 with
    | Ok h2 -> h2
    | Error `No_free_context -> Alcotest.fail "migration failed"
  in
  Cdna.Driver.rebind driver h2;
  run fx 5;
  check_bool "driver back up" true (Cdna.Driver.ready driver);
  check_bool "old handle revoked" true (Cdna.Hyp.is_revoked h);
  check_bool "same mac preserved" true
    (match Nic.Dp.mac_of (Cdna.Cnic.dp nic2) ~ctx:(Cdna.Hyp.ctx_id h2) with
    | Some mac -> Ethernet.Mac_addr.equal mac (Ethernet.Mac_addr.make 1)
    | None -> false);
  send 20;
  run fx 10;
  check_int "after: traffic on link 2" 20 !wire2;
  check_int "after: link 1 silent" 20 !wire1;
  check_bool "no faults" true (Cdna.Hyp.faults fx.cdna = [])

(* ---------- Fault injection and recovery ---------- *)

let test_driver_auto_recovery_from_injected_fault () =
  (* A one-shot injected bus fault on the guest's context: the hypervisor
     revokes, the driver's auto-recovery reassigns and rebinds, and
     traffic resumes on the fresh context. *)
  let fx, h, driver, stack = driver_fixture () in
  Cdna.Driver.enable_auto_recovery driver;
  let ctx = Cdna.Hyp.ctx_id h in
  let fi = Sim.Fault_inject.create ~seed:11 in
  Sim.Fault_inject.arm fi ~site:"dma"
    (Sim.Fault_inject.plan ~ctx:(ctx, ctx) Sim.Fault_inject.One_shot);
  Bus.Dma_engine.set_fault_injector (Cdna.Cnic.dma fx.nic)
    (Some
       (fun ~context ~addr ~len:_ ->
         Sim.Fault_inject.fire fi ~site:"dma" ~ctx:context ~addr ()));
  let wire = ref 0 in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun _ -> incr wire);
  let send n start =
    Guestos.Net_stack.send stack
      (List.init n (fun i ->
           Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
             ~dst:(Ethernet.Mac_addr.make 99) ~kind:Ethernet.Frame.Data
             ~flow:0 ~seq:(start + i) ~payload_len:800
             ~payload_seed:(start + i) ()))
  in
  send 10 0;
  run fx 30;
  check_int "injection recorded" 1
    (Bus.Dma_engine.injected_faults (Cdna.Cnic.dma fx.nic));
  check_bool "fault attributed to the guest" true
    (List.exists
       (fun (dom, _) -> dom = Xen.Domain.id fx.guest)
       (Cdna.Hyp.faults fx.cdna));
  check_int "one automatic recovery" 1 (Cdna.Driver.recoveries driver);
  check_bool "old handle revoked" true (Cdna.Hyp.is_revoked h);
  check_bool "rebound to a live handle" false
    (Cdna.Hyp.is_revoked (Cdna.Driver.handle driver));
  check_bool "driver ready again" true (Cdna.Driver.ready driver);
  (* Same MAC carried over to the replacement context. *)
  check_bool "mac preserved across recovery" true
    (Ethernet.Mac_addr.equal
       (Cdna.Hyp.mac_of (Cdna.Driver.handle driver))
       (Ethernet.Mac_addr.make 1));
  let before = !wire in
  send 5 100;
  run fx 20;
  check_bool "traffic resumes after recovery" true (!wire >= before + 5)

let test_malicious_native_driver_contained () =
  (* Protection disabled: the rogue guest self-programs its context with
     an unmodified native driver whose end-of-packet descriptors carry
     forged sequence numbers. The NIC's own sequence check still halts
     the context; nothing forged reaches the wire and the benign guest is
     untouched. *)
  let fx = fixture ~protection:Cdna.Cdna_costs.Disabled () in
  let h1 = assign fx ~mac_idx:1 () in
  let d1 =
    Cdna.Driver.create ~hyp:fx.cdna ~handle:h1 ~costs:Guestos.Os_costs.default ()
  in
  let h2 = assign fx ~guest:fx.guest2 ~mac_idx:2 () in
  let post_kernel dom ~cost fn = Xen.Hypervisor.kernel_work fx.xen dom ~cost fn in
  let nd =
    Guestos.Native_driver.create ~mem:fx.mem
      ~post_kernel:(post_kernel fx.guest2) ~costs:Guestos.Os_costs.default
      ~hw:(Cdna.Hyp.driver_if h2)
      ~mac:(Ethernet.Mac_addr.make 2)
      ~alloc_pages:(fun n -> Xen.Hypervisor.alloc_pages fx.xen fx.guest2 n)
      ~tx_slots:16 ~rx_slots:16 ()
  in
  Cdna.Hyp.set_event_handler h2 (fun () ->
      Guestos.Native_driver.handle_interrupt nd);
  Guestos.Native_driver.set_malice nd
    (Some Guestos.Native_driver.Out_of_sequence);
  run fx 5;
  let stack1 =
    Guestos.Net_stack.create ~post_kernel:(post_kernel fx.guest)
      ~costs:Guestos.Os_costs.default ~netdev:(Cdna.Driver.netdev d1)
  in
  let stack2 =
    Guestos.Net_stack.create ~post_kernel:(post_kernel fx.guest2)
      ~costs:Guestos.Os_costs.default
      ~netdev:(Guestos.Native_driver.netdev nd)
  in
  let rogue_on_wire = ref 0 and benign_on_wire = ref 0 in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun f ->
      if Ethernet.Mac_addr.equal f.Ethernet.Frame.src (Ethernet.Mac_addr.make 2)
      then incr rogue_on_wire
      else incr benign_on_wire);
  let frames src n =
    List.init n (fun i ->
        Ethernet.Frame.make
          ~src:(Ethernet.Mac_addr.make src)
          ~dst:(Ethernet.Mac_addr.make 99) ~kind:Ethernet.Frame.Data ~flow:src
          ~seq:i ~payload_len:900 ~payload_seed:i ())
  in
  Guestos.Net_stack.send stack2 (frames 2 8);
  Guestos.Net_stack.send stack1 (frames 1 8);
  run fx 20;
  check_int "benign traffic all delivered" 8 !benign_on_wire;
  check_int "no forged frame on the wire" 0 !rogue_on_wire;
  check_bool "descriptors were forged" true
    (Guestos.Native_driver.malicious_descs nd > 0);
  check_bool "fault attributed to the rogue guest" true
    (List.exists
       (fun (dom, ctx) ->
         dom = Xen.Domain.id fx.guest2 && ctx = Cdna.Hyp.ctx_id h2)
       (Cdna.Hyp.faults fx.cdna));
  check_bool "benign context still active" true
    (Nic.Dp.is_active (Cdna.Cnic.dp fx.nic) ~ctx:(Cdna.Hyp.ctx_id h1))

(* ---------- Context oversubscription (hypervisor-mediated paging) ---------- *)

let test_paging_lifecycle_preserves_tx_state () =
  let fx = fixture () in
  Cdna.Hyp.enable_paging fx.cdna;
  let wire = ref 0 in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun _ -> incr wire);
  let h1 = assign fx ~mac_idx:1 () in
  setup_rings fx h1;
  let hw1 = Cdna.Hyp.driver_if h1 in
  let slot0 = Cdna.Hyp.ctx_id h1 in
  (* Two frames before any paging: the hypervisor stamps seqnos 0 and 1. *)
  (match
     await fx (fun k ->
         Cdna.Hyp.enqueue fx.cdna h1 Cdna.Hyp.Tx
           [ own_desc fx h1 (); own_desc fx h1 () ]
           k)
   with
  | Ok prod -> check_int "producer" 2 prod
  | Error _ -> Alcotest.fail "enqueue failed");
  hw1.Nic.Driver_if.stage_tx_meta (meta_frame h1 ~seq:0);
  hw1.Nic.Driver_if.stage_tx_meta (meta_frame h1 ~seq:1);
  hw1.Nic.Driver_if.tx_doorbell 2;
  run fx 5;
  check_int "two frames before paging" 2 !wire;
  (* A sentinel in the general-purpose half of the partition must travel
     with the context image — and never be visible to the slot's next
     owner. *)
  let m0 = Bus.Mmio.map (Cdna.Cnic.region fx.nic ~ctx:slot0) in
  Bus.Mmio.write32 m0 ~offset:512 0xBEEF;
  (* Fill every remaining hardware slot... *)
  for i = 1 to Cdna.Cnic.num_contexts - 1 do
    ignore (assign fx ~guest:fx.guest2 ~mac_idx:(100 + i) ())
  done;
  check_int "no swap while slots remain" 0 (Cdna.Hyp.ctx_swaps fx.cdna);
  (* ...and one more: the LRU context (h1, idle since its transmit) is
     saved to its per-guest area and the newcomer takes its slot. *)
  let h33 = assign fx ~guest:fx.guest2 ~mac_idx:200 () in
  check_int "one save" 1 (Cdna.Hyp.ctx_swaps fx.cdna);
  check_int "newcomer on the victim's slot" slot0 (Cdna.Hyp.ctx_id h33);
  check_int "victim partition scrubbed" 0 (Bus.Mmio.read32 m0 ~offset:512);
  (* Touch the paged-out context: enqueue continues the sequence (2, 3)
     and the doorbell faults the context back in on a freshly evicted
     slot, transparently to the driver. *)
  (match
     await fx (fun k ->
         Cdna.Hyp.enqueue fx.cdna h1 Cdna.Hyp.Tx
           [ own_desc fx h1 (); own_desc fx h1 () ]
           k)
   with
  | Ok prod -> check_int "producer continues" 4 prod
  | Error _ -> Alcotest.fail "enqueue after page-out failed");
  hw1.Nic.Driver_if.stage_tx_meta (meta_frame h1 ~seq:2);
  hw1.Nic.Driver_if.stage_tx_meta (meta_frame h1 ~seq:3);
  hw1.Nic.Driver_if.tx_doorbell 4;
  run fx 5;
  check_int "save of the new victim + restore" 3 (Cdna.Hyp.ctx_swaps fx.cdna);
  check_int "all four frames on the wire" 4 !wire;
  check_bool "seqno continuity across the swap: no faults" true
    (Cdna.Hyp.faults fx.cdna = []);
  let slot' = Cdna.Hyp.ctx_id h1 in
  check_bool "restored on a different slot" true (slot' <> slot0);
  check_bool "restored slot live" true
    (Nic.Dp.is_active (Cdna.Cnic.dp fx.nic) ~ctx:slot');
  let m' = Bus.Mmio.map (Cdna.Cnic.region fx.nic ~ctx:slot') in
  check_int "partition image followed the context" 0xBEEF
    (Bus.Mmio.read32 m' ~offset:512)

(* Random interleavings of transmits and forced evictions on a fully
   subscribed NIC: sequence numbers stay continuous across every
   save/restore (no context ever faults, every staged frame reaches the
   wire), inherited slots never leak the previous owner's partition data,
   and each context's own partition image survives arbitrarily many
   swaps. *)
let prop_paging_interleaving =
  QCheck.Test.make
    ~name:
      "random evict/touch interleavings preserve seqno continuity and \
       partition isolation"
    ~count:12
    QCheck.(list_of_size Gen.(int_range 4 10) (int_range 0 2))
    (fun ops ->
      let fx = fixture () in
      Cdna.Hyp.enable_paging fx.cdna;
      let wire = ref 0 in
      Ethernet.Link.attach fx.link Ethernet.Link.B (fun _ -> incr wire);
      let h1 = assign fx ~mac_idx:1 () in
      setup_rings fx h1;
      let h2 = assign fx ~guest:fx.guest2 ~mac_idx:2 () in
      setup_rings fx h2;
      let sentinel = [| 0xAAAA; 0xBBBB |] in
      List.iteri
        (fun i h ->
          let m =
            Bus.Mmio.map (Cdna.Cnic.region fx.nic ~ctx:(Cdna.Hyp.ctx_id h))
          in
          Bus.Mmio.write32 m ~offset:512 sentinel.(i))
        [ h1; h2 ];
      for i = 1 to Cdna.Cnic.num_contexts - 2 do
        ignore (assign fx ~guest:fx.guest2 ~mac_idx:(100 + i) ())
      done;
      let sent = ref 0 in
      let fresh = ref 0 in
      let ok = ref true in
      let touch h =
        let hw = Cdna.Hyp.driver_if h in
        (match
           await fx (fun k ->
               Cdna.Hyp.enqueue fx.cdna h Cdna.Hyp.Tx [ own_desc fx h () ] k)
         with
        | Ok prod ->
            hw.Nic.Driver_if.stage_tx_meta (meta_frame h ~seq:prod);
            hw.Nic.Driver_if.tx_doorbell prod;
            incr sent
        | Error _ -> ok := false);
        run fx 2
      in
      let evict () =
        incr fresh;
        let hn = assign fx ~guest:fx.guest2 ~mac_idx:(200 + !fresh) () in
        (* The newcomer must find its inherited slot scrubbed. *)
        let m =
          Bus.Mmio.map (Cdna.Cnic.region fx.nic ~ctx:(Cdna.Hyp.ctx_id hn))
        in
        if Bus.Mmio.read32 m ~offset:512 <> 0 then ok := false;
        run fx 2
      in
      List.iter
        (fun op -> match op with 0 -> touch h1 | 1 -> touch h2 | _ -> evict ())
        ops;
      (* Bring both traffic contexts back in and verify their images. *)
      touch h1;
      touch h2;
      List.iteri
        (fun i h ->
          let m =
            Bus.Mmio.map (Cdna.Cnic.region fx.nic ~ctx:(Cdna.Hyp.ctx_id h))
          in
          if Bus.Mmio.read32 m ~offset:512 <> sentinel.(i) then ok := false)
        [ h1; h2 ];
      !ok && !wire = !sent
      && Cdna.Hyp.faults fx.cdna = []
      && (Cdna.Cnic.stats fx.nic).Nic.Dp.faults = 0)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "cdna.seqno",
      [
        Alcotest.test_case "basics" `Quick test_seqno_basics;
        Alcotest.test_case "stale detection" `Quick test_seqno_stale_detection;
        qcheck prop_seqno_no_alias;
        qcheck prop_seqno_wraparound_continuity;
      ] );
    ( "cdna.intr_vector",
      [
        Alcotest.test_case "roundtrip" `Quick test_intr_vector_roundtrip;
        Alcotest.test_case "producer/consumer" `Quick
          test_intr_vector_producer_consumer_protocol;
        Alcotest.test_case "drain only landed" `Quick test_intr_vector_drain_only_landed;
      ] );
    ( "cdna.contexts",
      [
        Alcotest.test_case "unique assignment" `Quick test_hyp_assign_unique_contexts;
        Alcotest.test_case "exhaustion" `Quick test_hyp_context_exhaustion;
        Alcotest.test_case "revoke frees" `Quick test_hyp_revoke_frees_context;
        Alcotest.test_case "faulted slot withheld" `Quick
          test_faulted_slot_withheld_until_reset;
      ] );
    ( "cdna.paging",
      [
        Alcotest.test_case "lifecycle preserves tx state" `Quick
          test_paging_lifecycle_preserves_tx_state;
        qcheck prop_paging_interleaving;
      ] );
    ( "cdna.protection",
      [
        Alcotest.test_case "validates ownership" `Quick test_hyp_enqueue_validates_ownership;
        Alcotest.test_case "all-or-nothing batch" `Quick test_hyp_enqueue_rejects_whole_batch;
        Alcotest.test_case "pins and lazily unpins" `Quick
          test_hyp_enqueue_pins_and_lazily_unpins;
        Alcotest.test_case "pinned page cannot move" `Quick test_hyp_pinned_page_cannot_move;
        Alcotest.test_case "ring full" `Quick test_hyp_enqueue_ring_full;
        Alcotest.test_case "unregistered ring" `Quick test_hyp_enqueue_unregistered_ring;
        Alcotest.test_case "after revoke" `Quick test_hyp_enqueue_after_revoke;
        Alcotest.test_case "ring registration validates" `Quick
          test_hyp_ring_registration_validates;
        Alcotest.test_case "revoke unpins" `Quick test_hyp_revoke_unpins_everything;
        Alcotest.test_case "fault attribution" `Quick test_fault_attributed_to_guest;
        Alcotest.test_case "disabled mode" `Quick test_disabled_mode_skips_validation;
        Alcotest.test_case "iommu mode" `Quick test_iommu_mode_blocks_foreign_dma;
        Alcotest.test_case "forged descriptor blocked (full)" `Quick
          test_forged_descriptor_blocked_under_full;
        Alcotest.test_case "forged descriptor corrupts (disabled)" `Quick
          test_forged_descriptor_corrupts_when_disabled;
      ] );
    ( "cdna.driver",
      [
        Alcotest.test_case "comes up" `Quick test_driver_comes_up;
        Alcotest.test_case "transmit roundtrip" `Quick test_driver_transmit_roundtrip;
        Alcotest.test_case "receive roundtrip" `Quick test_driver_receive_roundtrip;
        Alcotest.test_case "materialized integrity" `Quick test_driver_materialized_integrity;
        Alcotest.test_case "virq flow" `Quick test_driver_virq_flow;
        Alcotest.test_case "two guests isolated" `Quick test_driver_two_guests_isolated_traffic;
        Alcotest.test_case "revocation under load" `Quick test_revocation_under_load;
        Alcotest.test_case "compact layout end-to-end" `Quick
          test_compact_layout_cdna_end_to_end;
        Alcotest.test_case "context migration" `Quick test_context_migration;
        Alcotest.test_case "enqueue accounting" `Quick test_enqueue_call_accounting;
      ] );
    ( "cdna.fault_injection",
      [
        Alcotest.test_case "auto recovery from injected fault" `Quick
          test_driver_auto_recovery_from_injected_fault;
        Alcotest.test_case "malicious native driver contained" `Quick
          test_malicious_native_driver_contained;
      ] );
  ]
