(* Tests for the NIC library: rings, mailboxes, packet buffers, interrupt
   coalescing, the multi-context datapath, the firmware, and the two
   conventional NIC wrappers. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ---------- Ring ---------- *)

let test_ring_layout () =
  let r = Nic.Ring.create ~base:4096 ~slots:8 () in
  check_int "slot 0" 4096 (Nic.Ring.slot_addr r 0);
  check_int "slot 3" (4096 + 48) (Nic.Ring.slot_addr r 3);
  check_int "wraps" (4096 + 16) (Nic.Ring.slot_addr r 9);
  check_int "size" 128 (Nic.Ring.size_bytes r)

let test_ring_occupancy () =
  let r = Nic.Ring.create ~base:0 ~slots:8 () in
  check_int "available" 3 (Nic.Ring.available ~prod:10 ~cons:7);
  check_int "space" 5 (Nic.Ring.space r ~prod:10 ~cons:7);
  check_bool "empty" true (Nic.Ring.is_empty ~prod:7 ~cons:7);
  check_bool "full" true (Nic.Ring.is_full r ~prod:15 ~cons:7);
  Alcotest.check_raises "consumer ahead"
    (Invalid_argument "Ring.available: consumer ahead of producer") (fun () ->
      ignore (Nic.Ring.available ~prod:3 ~cons:4))

let test_ring_validation () =
  Alcotest.check_raises "not power of two"
    (Invalid_argument "Ring.create: slots must be a power of two in [2, 32768]")
    (fun () -> ignore (Nic.Ring.create ~base:0 ~slots:6 ()));
  Alcotest.check_raises "too big"
    (Invalid_argument "Ring.create: slots must be a power of two in [2, 32768]")
    (fun () -> ignore (Nic.Ring.create ~base:0 ~slots:65536 ()))

(* ---------- Mailbox ---------- *)

let test_mailbox_event_hierarchy () =
  let events = ref 0 in
  let mb = Nic.Mailbox.create ~contexts:4 ~on_event:(fun () -> incr events) in
  let region2 = Nic.Mailbox.region mb ~ctx:2 in
  let m = Bus.Mmio.map region2 in
  Bus.Mmio.write32 m ~offset:(5 * 4) 1234;
  check_int "event fired" 1 !events;
  check_int "ctx vector" 0b100 (Nic.Mailbox.pending_contexts mb);
  check_int "box vector" (1 lsl 5) (Nic.Mailbox.pending_boxes mb ~ctx:2);
  check Alcotest.(option (pair int int)) "decode" (Some (2, 5))
    (Nic.Mailbox.next_event mb);
  check_int "value readable" 1234 (Nic.Mailbox.value mb ~ctx:2 ~mbox:5);
  Nic.Mailbox.clear_event mb ~ctx:2 ~mbox:5;
  check Alcotest.(option (pair int int)) "cleared" None (Nic.Mailbox.next_event mb);
  check_int "ctx vector cleared" 0 (Nic.Mailbox.pending_contexts mb)

let test_mailbox_lowest_first () =
  let mb = Nic.Mailbox.create ~contexts:8 ~on_event:ignore in
  let write ctx mbox v =
    let m = Bus.Mmio.map (Nic.Mailbox.region mb ~ctx) in
    Bus.Mmio.write32 m ~offset:(mbox * 4) v
  in
  write 5 3 1;
  write 1 7 2;
  write 1 2 3;
  (* Lowest context first, lowest mailbox within it. *)
  check Alcotest.(option (pair int int)) "1,2 first" (Some (1, 2))
    (Nic.Mailbox.next_event mb);
  Nic.Mailbox.clear_event mb ~ctx:1 ~mbox:2;
  check Alcotest.(option (pair int int)) "then 1,7" (Some (1, 7))
    (Nic.Mailbox.next_event mb);
  Nic.Mailbox.clear_context mb ~ctx:1;
  check Alcotest.(option (pair int int)) "then 5,3" (Some (5, 3))
    (Nic.Mailbox.next_event mb)

let test_mailbox_beyond_mailbox_words () =
  (* Writes past the first 24 words hit shared memory without events. *)
  let events = ref 0 in
  let mb = Nic.Mailbox.create ~contexts:1 ~on_event:(fun () -> incr events) in
  let m = Bus.Mmio.map (Nic.Mailbox.region mb ~ctx:0) in
  Bus.Mmio.write32 m ~offset:(30 * 4) 99;
  check_int "no event" 0 !events;
  check_int "readable" 99 (Bus.Mmio.read32 m ~offset:(30 * 4))

let test_mailbox_poke_silent () =
  let events = ref 0 in
  let mb = Nic.Mailbox.create ~contexts:2 ~on_event:(fun () -> incr events) in
  Nic.Mailbox.poke mb ~ctx:1 ~mbox:3 55;
  check_int "no event from poke" 0 !events;
  check_int "value set" 55 (Nic.Mailbox.value mb ~ctx:1 ~mbox:3)

let prop_mailbox_decode_matches_vectors =
  QCheck.Test.make ~name:"mailbox decode = lowest set bits" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 10) (pair (int_range 0 7) (int_range 0 23)))
    (fun writes ->
      let mb = Nic.Mailbox.create ~contexts:8 ~on_event:ignore in
      List.iter
        (fun (ctx, mbox) ->
          let m = Bus.Mmio.map (Nic.Mailbox.region mb ~ctx) in
          Bus.Mmio.write32 m ~offset:(mbox * 4) 1)
        writes;
      let min_ctx = List.fold_left (fun a (c, _) -> min a c) 99 writes in
      let min_box =
        List.fold_left
          (fun a (c, b) -> if c = min_ctx then min a b else a)
          99 writes
      in
      Nic.Mailbox.next_event mb = Some (min_ctx, min_box))

(* ---------- Pkt_buf ---------- *)

let test_pkt_buf () =
  let b = Nic.Pkt_buf.create ~capacity:1000 in
  check_bool "reserve" true (Nic.Pkt_buf.try_reserve b ~bytes:600);
  check_bool "over capacity" false (Nic.Pkt_buf.try_reserve b ~bytes:600);
  check_int "drop counted" 1 (Nic.Pkt_buf.drops b);
  Nic.Pkt_buf.release b ~bytes:600;
  check_bool "fits after release" true (Nic.Pkt_buf.try_reserve b ~bytes:600);
  check_int "peak" 600 (Nic.Pkt_buf.peak b);
  Alcotest.check_raises "underflow" (Invalid_argument "Pkt_buf.release: underflow")
    (fun () -> Nic.Pkt_buf.release b ~bytes:601)

(* ---------- Coalesce ---------- *)

let test_coalesce_caps_rate () =
  let engine = Sim.Engine.create () in
  let fires = ref 0 in
  let c =
    Nic.Coalesce.create engine ~min_gap:(Sim.Time.us 100) ~fire:(fun () ->
        incr fires)
  in
  (* 1000 requests over 1 ms -> at most ~11 fires with a 100 us gap. *)
  for i = 0 to 999 do
    ignore
      (Sim.Engine.schedule engine ~delay:(Sim.Time.ns (i * 1000)) (fun () ->
           Nic.Coalesce.request c))
  done;
  ignore (Sim.Engine.run_to_completion engine);
  check_bool (Printf.sprintf "capped (%d)" !fires) true (!fires <= 11);
  check_int "nothing lost" 1000 (!fires + Nic.Coalesce.suppressed c)

let test_coalesce_immediate_when_idle () =
  let engine = Sim.Engine.create () in
  let fired_at = ref (-1) in
  let c =
    Nic.Coalesce.create engine ~min_gap:(Sim.Time.us 100) ~fire:(fun () ->
        fired_at := Sim.Engine.now engine)
  in
  ignore
    (Sim.Engine.schedule engine ~delay:(Sim.Time.us 500) (fun () ->
         Nic.Coalesce.request c));
  ignore (Sim.Engine.run_to_completion engine);
  check_int "immediate" (Sim.Time.us 500) !fired_at

let test_coalesce_accounting_invariant () =
  (* Regression: requests = fired + suppressed must hold at every instant,
     including while a merged firing is pending.  The old code only
     counted [fired] at delivery time, so a request that armed the timer
     was momentarily neither fired nor suppressed. *)
  let engine = Sim.Engine.create () in
  let c =
    Nic.Coalesce.create engine ~min_gap:(Sim.Time.us 100) ~fire:(fun () -> ())
  in
  let check_invariant label =
    check_int label (Nic.Coalesce.requests c)
      (Nic.Coalesce.fired c + Nic.Coalesce.suppressed c)
  in
  ignore
    (Sim.Engine.schedule engine ~delay:0 (fun () ->
         Nic.Coalesce.request c;
         check_invariant "after immediate fire"));
  (* 30us after the fire: inside the gap, so this arms a deferred firing. *)
  ignore
    (Sim.Engine.schedule engine ~delay:(Sim.Time.us 30) (fun () ->
         Nic.Coalesce.request c;
         check_invariant "while pending"));
  ignore
    (Sim.Engine.schedule engine ~delay:(Sim.Time.us 50) (fun () ->
         Nic.Coalesce.request c;
         check_invariant "merged into pending"));
  ignore (Sim.Engine.run_to_completion engine);
  check_invariant "after drain";
  check_int "requests" 3 (Nic.Coalesce.requests c);
  check_int "fired" 2 (Nic.Coalesce.fired c);
  check_int "suppressed" 1 (Nic.Coalesce.suppressed c)

(* ---------- Dp (datapath) ---------- *)

type dp_fixture = {
  engine : Sim.Engine.t;
  mem : Memory.Phys_mem.t;
  dp : Nic.Dp.t;
  link : Ethernet.Link.t;
  notifications : (int, int) Hashtbl.t;
  faults : (int * Nic.Dp.dir * Nic.Dp.fault) list ref;
}

let dp_fixture ?(contexts = 4) ?(seqno_checking = false) ?(materialize = false)
    () =
  let engine = Sim.Engine.create () in
  let mem = Memory.Phys_mem.create ~total_pages:256 () in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let notifications = Hashtbl.create 8 in
  let faults = ref [] in
  let config =
    {
      Nic.Nic_config.ricenic with
      Nic.Nic_config.seqno_checking;
      materialize_payloads = materialize;
    }
  in
  let dp =
    Nic.Dp.create engine ~mem ~dma ~config ~contexts ~dma_context_base:0
      ~notify:(fun ~ctx ->
        Hashtbl.replace notifications ctx
          (1 + Option.value ~default:0 (Hashtbl.find_opt notifications ctx)))
      ~on_fault:(fun ~ctx dir f -> faults := (ctx, dir, f) :: !faults)
      ()
  in
  let link = Ethernet.Link.create engine () in
  Nic.Dp.attach_link dp link ~side:Ethernet.Link.A;
  { engine; mem; dp; link; notifications; faults }

(* A miniature trusted driver for one context: rings at fixed pages,
   buffers behind them. *)
type mini_driver = {
  ctx : int;
  tx_ring : Nic.Ring.t;
  rx_ring : Nic.Ring.t;
  tx_pages : int array;
  rx_pages : int array;
  mutable tx_prod : int;
  mutable rx_prod : int;
}

let attach_driver fx ~ctx ~mac =
  let base = 16 * (ctx + 1) in
  let tx_ring = Nic.Ring.create ~base:(Memory.Addr.base_of_pfn base) ~slots:8 () in
  let rx_ring =
    Nic.Ring.create ~base:(Memory.Addr.base_of_pfn (base + 1)) ~slots:8 ()
  in
  let tx_pages = Array.init 8 (fun i -> base + 2 + i) in
  let rx_pages = Array.init 8 (fun i -> base + 10 + i) in
  Nic.Dp.activate fx.dp ~ctx ~mac;
  Nic.Dp.set_tx_ring fx.dp ~ctx tx_ring;
  Nic.Dp.set_rx_ring fx.dp ~ctx rx_ring;
  let d = { ctx; tx_ring; rx_ring; tx_pages; rx_pages; tx_prod = 0; rx_prod = 0 } in
  (* Post all receive buffers. *)
  for _ = 1 to 8 do
    let slot = d.rx_prod in
    Memory.Dma_desc.write fx.mem
      ~at:(Nic.Ring.slot_addr rx_ring slot)
      {
        Memory.Dma_desc.addr = Memory.Addr.base_of_pfn rx_pages.(slot land 7);
        len = Memory.Addr.page_size;
        flags = 0;
        seqno = slot land 0xFFFF;
      };
    d.rx_prod <- slot + 1
  done;
  Nic.Dp.rx_doorbell fx.dp ~ctx ~prod:d.rx_prod;
  d

let send_one fx d ?(len = 1000) ?(seed = 5) () =
  let slot = d.tx_prod in
  let frame =
    Ethernet.Frame.make
      ~src:(Option.get (Nic.Dp.mac_of fx.dp ~ctx:d.ctx))
      ~dst:(Ethernet.Mac_addr.make 500)
      ~kind:Ethernet.Frame.Data ~flow:d.ctx ~seq:slot ~payload_len:len
      ~payload_seed:seed ()
  in
  Memory.Phys_mem.write fx.mem
    ~addr:(Memory.Addr.base_of_pfn d.tx_pages.(slot land 7))
    (Ethernet.Frame.materialize_payload ~seed ~len);
  Memory.Dma_desc.write fx.mem
    ~at:(Nic.Ring.slot_addr d.tx_ring slot)
    {
      Memory.Dma_desc.addr = Memory.Addr.base_of_pfn d.tx_pages.(slot land 7);
      len;
      flags = Memory.Dma_desc.flag_end_of_packet;
      seqno = slot land 0xFFFF;
    };
  Nic.Dp.stage_tx_meta fx.dp ~ctx:d.ctx frame;
  d.tx_prod <- slot + 1;
  Nic.Dp.tx_doorbell fx.dp ~ctx:d.ctx ~prod:d.tx_prod

let run fx ms = Sim.Engine.run fx.engine ~until:(Sim.Time.add (Sim.Engine.now fx.engine) (Sim.Time.ms ms))

let test_dp_transmits () =
  let fx = dp_fixture () in
  let d = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  let got = ref [] in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun f -> got := f :: !got);
  send_one fx d ();
  run fx 1;
  check_int "one frame on wire" 1 (List.length !got);
  check_int "tx completion" 1 (Nic.Dp.take_tx_completions fx.dp ~ctx:0);
  check_int "ctx counter" 1 (Nic.Dp.ctx_tx_frames fx.dp ~ctx:0);
  check_bool "notified" true (Hashtbl.mem fx.notifications 0)

let test_dp_receive_demux_by_mac () =
  let fx = dp_fixture () in
  let _d0 = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  let _d1 = attach_driver fx ~ctx:1 ~mac:(Ethernet.Mac_addr.make 2) in
  let send_to mac =
    Ethernet.Link.send fx.link ~from:Ethernet.Link.B
      (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 500) ~dst:mac
         ~kind:Ethernet.Frame.Data ~flow:9 ~seq:0 ~payload_len:500
         ~payload_seed:1 ())
      ~on_wire_free:ignore
  in
  send_to (Ethernet.Mac_addr.make 1);
  send_to (Ethernet.Mac_addr.make 2);
  send_to (Ethernet.Mac_addr.make 2);
  run fx 1;
  check_int "ctx0 got one" 1 (List.length (Nic.Dp.take_rx_completions fx.dp ~ctx:0 ~max:10));
  check_int "ctx1 got two" 2 (List.length (Nic.Dp.take_rx_completions fx.dp ~ctx:1 ~max:10))

let test_dp_unknown_mac_dropped () =
  let fx = dp_fixture () in
  let _d0 = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  Ethernet.Link.send fx.link ~from:Ethernet.Link.B
    (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 500)
       ~dst:(Ethernet.Mac_addr.make 77) ~kind:Ethernet.Frame.Data ~flow:0
       ~seq:0 ~payload_len:100 ~payload_seed:0 ())
    ~on_wire_free:ignore;
  run fx 1;
  check_int "dropped" 1 (Nic.Dp.stats fx.dp).Nic.Dp.rx_no_ctx_drops

let test_dp_promiscuous () =
  let fx = dp_fixture () in
  let _d0 = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  Nic.Dp.set_promiscuous fx.dp ~ctx:(Some 0);
  Ethernet.Link.send fx.link ~from:Ethernet.Link.B
    (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 500)
       ~dst:(Ethernet.Mac_addr.make 77) ~kind:Ethernet.Frame.Data ~flow:0
       ~seq:0 ~payload_len:100 ~payload_seed:0 ())
    ~on_wire_free:ignore;
  run fx 1;
  check_int "captured by promisc context" 1
    (List.length (Nic.Dp.take_rx_completions fx.dp ~ctx:0 ~max:10))

let test_dp_round_robin_fairness () =
  (* Two contexts with queued transmit work get alternating service. *)
  let fx = dp_fixture () in
  let d0 = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  let d1 = attach_driver fx ~ctx:1 ~mac:(Ethernet.Mac_addr.make 2) in
  let order = ref [] in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun f ->
      order := f.Ethernet.Frame.flow :: !order);
  for _ = 1 to 4 do
    send_one fx d0 ()
  done;
  for _ = 1 to 4 do
    send_one fx d1 ()
  done;
  run fx 2;
  check_int "all sent" 8 (List.length !order);
  (* After the pipeline fills, service alternates: the sequence must not
     be 4 of one then 4 of the other. *)
  let tail = List.filteri (fun i _ -> i < 6) !order in
  check_bool "interleaved" true
    (List.exists (fun c -> c = 0) tail && List.exists (fun c -> c = 1) tail)

let test_dp_materialized_payload_integrity () =
  let fx = dp_fixture ~materialize:true () in
  let d = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  let got = ref None in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun f -> got := Some f);
  send_one fx d ~len:700 ~seed:99 ();
  run fx 1;
  match !got with
  | Some f ->
      check_bool "payload travelled and matches" true (Ethernet.Frame.data_valid f);
      check_bool "bytes present" true (f.Ethernet.Frame.data <> None)
  | None -> Alcotest.fail "no frame"

let test_dp_materialized_rx_lands_in_buffer () =
  let fx = dp_fixture ~materialize:true () in
  let d = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  let frame =
    Ethernet.Frame.with_data
      (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 500)
         ~dst:(Ethernet.Mac_addr.make 1) ~kind:Ethernet.Frame.Data ~flow:3
         ~seq:0 ~payload_len:600 ~payload_seed:42 ())
  in
  Ethernet.Link.send fx.link ~from:Ethernet.Link.B frame ~on_wire_free:ignore;
  run fx 1;
  match Nic.Dp.take_rx_completions fx.dp ~ctx:0 ~max:1 with
  | [ (idx, _) ] ->
      let buf =
        Memory.Phys_mem.read fx.mem
          ~addr:(Memory.Addr.base_of_pfn d.rx_pages.(idx land 7))
          ~len:600
      in
      check_bool "DMA wrote the real bytes" true
        (Bytes.equal buf (Ethernet.Frame.materialize_payload ~seed:42 ~len:600))
  | _ -> Alcotest.fail "expected one completion"

let test_dp_seqno_fault_halts_context () =
  let fx = dp_fixture ~seqno_checking:true () in
  let d = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  Nic.Dp.set_expected_seqno fx.dp ~ctx:0 ~tx:0 ~rx:0;
  send_one fx d ();
  run fx 1;
  check_int "first ok" 1 (Nic.Dp.ctx_tx_frames fx.dp ~ctx:0);
  (* Replay: doorbell past the last written descriptor; the stale slot
     has no valid next seqno. *)
  Nic.Dp.stage_tx_meta fx.dp ~ctx:0
    (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
       ~dst:(Ethernet.Mac_addr.make 500) ~kind:Ethernet.Frame.Data ~flow:0
       ~seq:9 ~payload_len:100 ~payload_seed:0 ());
  Nic.Dp.tx_doorbell fx.dp ~ctx:0 ~prod:(d.tx_prod + 1);
  run fx 1;
  check_bool "faulted" true (Nic.Dp.is_faulted fx.dp ~ctx:0);
  check_bool "fault reported" true
    (List.exists
       (fun (ctx, dir, f) ->
         ctx = 0 && dir = Nic.Dp.Tx
         && match f with Nic.Dp.Seqno_mismatch _ -> true | _ -> false)
       !(fx.faults));
  check_int "no more frames" 1 (Nic.Dp.ctx_tx_frames fx.dp ~ctx:0)

let test_dp_correct_seqnos_pass () =
  let fx = dp_fixture ~seqno_checking:true () in
  let d = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  Nic.Dp.set_expected_seqno fx.dp ~ctx:0 ~tx:0 ~rx:0;
  for _ = 1 to 5 do
    send_one fx d ()
  done;
  run fx 1;
  check_int "all transmitted" 5 (Nic.Dp.ctx_tx_frames fx.dp ~ctx:0);
  check_bool "no faults" true (!(fx.faults) = [])

let test_dp_deactivate_aborts () =
  let fx = dp_fixture () in
  let d = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  let wire = ref 0 in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun _ -> incr wire);
  for _ = 1 to 8 do
    send_one fx d ()
  done;
  (* Revoke immediately: pending operations must be shut down. *)
  Nic.Dp.deactivate fx.dp ~ctx:0;
  run fx 2;
  check_bool "not all reached the wire" true (!wire < 8);
  check_bool "inactive" false (Nic.Dp.is_active fx.dp ~ctx:0);
  check_int "no completions" 0 (Nic.Dp.take_tx_completions fx.dp ~ctx:0);
  (* The context can be reused. *)
  Nic.Dp.activate fx.dp ~ctx:0 ~mac:(Ethernet.Mac_addr.make 9);
  check_bool "reusable" true (Nic.Dp.is_active fx.dp ~ctx:0)

let test_dp_status_writeback () =
  let fx = dp_fixture () in
  let d = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  let status_page = 100 in
  Nic.Dp.set_status_addr fx.dp ~ctx:0 (Memory.Addr.base_of_pfn status_page);
  send_one fx d ();
  send_one fx d ();
  run fx 1;
  check_int "tx cons written back" 2
    (Memory.Phys_mem.read_u32 fx.mem ~addr:(Memory.Addr.base_of_pfn status_page))

let test_dp_rx_waits_for_descriptors () =
  (* A context with no posted buffers holds packets (backpressure), and
     delivers them once descriptors arrive. *)
  let fx = dp_fixture () in
  Nic.Dp.activate fx.dp ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1);
  let rx_ring = Nic.Ring.create ~base:(Memory.Addr.base_of_pfn 40) ~slots:8 () in
  Nic.Dp.set_rx_ring fx.dp ~ctx:0 rx_ring;
  Ethernet.Link.send fx.link ~from:Ethernet.Link.B
    (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 500)
       ~dst:(Ethernet.Mac_addr.make 1) ~kind:Ethernet.Frame.Data ~flow:0 ~seq:0
       ~payload_len:300 ~payload_seed:0 ())
    ~on_wire_free:ignore;
  run fx 1;
  check_int "held, not delivered" 0 (Nic.Dp.rx_completions_pending fx.dp ~ctx:0);
  (* Now post a buffer. *)
  Memory.Dma_desc.write fx.mem ~at:(Nic.Ring.slot_addr rx_ring 0)
    {
      Memory.Dma_desc.addr = Memory.Addr.base_of_pfn 41;
      len = Memory.Addr.page_size;
      flags = 0;
      seqno = 0;
    };
  Nic.Dp.rx_doorbell fx.dp ~ctx:0 ~prod:1;
  run fx 1;
  check_int "delivered after doorbell" 1
    (Nic.Dp.rx_completions_pending fx.dp ~ctx:0)

let test_dp_doorbell_monotonicity () =
  let fx = dp_fixture () in
  let _ = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  Nic.Dp.tx_doorbell fx.dp ~ctx:0 ~prod:0;
  Alcotest.check_raises "tx backwards"
    (Invalid_argument "Dp.tx_doorbell: producer went backwards") (fun () ->
      Nic.Dp.tx_doorbell fx.dp ~ctx:0 ~prod:(-1));
  Alcotest.check_raises "rx backwards"
    (Invalid_argument "Dp.rx_doorbell: producer went backwards") (fun () ->
      Nic.Dp.rx_doorbell fx.dp ~ctx:0 ~prod:0)

let test_dp_congestion_watermarks () =
  (* Fill the receive buffer of a descriptor-less context past the high
     watermark and verify pause state plus the uncongested hook. *)
  let engine = Sim.Engine.create () in
  let mem = Memory.Phys_mem.create ~total_pages:256 () in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let config =
    { Nic.Nic_config.ricenic with Nic.Nic_config.rx_buffer_bytes = 8_000 }
  in
  let dp =
    Nic.Dp.create engine ~mem ~dma ~config ~contexts:1 ~dma_context_base:0
      ~notify:(fun ~ctx:_ -> ())
      ~on_fault:(fun ~ctx:_ _ _ -> ())
      ()
  in
  let link = Ethernet.Link.create engine () in
  Nic.Dp.attach_link dp link ~side:Ethernet.Link.A;
  Nic.Dp.activate dp ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1);
  let uncong = ref 0 in
  Nic.Dp.set_uncongested_hook dp (fun () -> incr uncong);
  (* No rx ring: packets pile into the buffer. 8 kB capacity, ~1538 B
     frames: congested above 6 kB, i.e. after the 4th frame. *)
  for i = 0 to 4 do
    ignore
      (Sim.Engine.schedule engine ~delay:(Sim.Time.us (i * 20)) (fun () ->
           Ethernet.Link.send link ~from:Ethernet.Link.B
             (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 500)
                ~dst:(Ethernet.Mac_addr.make 1) ~kind:Ethernet.Frame.Data
                ~flow:0 ~seq:i ~payload_len:1500 ~payload_seed:0 ())
             ~on_wire_free:ignore))
  done;
  Sim.Engine.run engine ~until:(Sim.Time.ms 1);
  check_bool "congested" true (Nic.Dp.rx_congested dp);
  (* Post descriptors; draining below the low watermark fires the hook. *)
  let rx_ring = Nic.Ring.create ~base:(Memory.Addr.base_of_pfn 40) ~slots:8 () in
  Nic.Dp.set_rx_ring dp ~ctx:0 rx_ring;
  for slot = 0 to 7 do
    Memory.Dma_desc.write mem ~at:(Nic.Ring.slot_addr rx_ring slot)
      {
        Memory.Dma_desc.addr = Memory.Addr.base_of_pfn (50 + slot);
        len = Memory.Addr.page_size;
        flags = 0;
        seqno = 0;
      }
  done;
  Nic.Dp.rx_doorbell dp ~ctx:0 ~prod:8;
  Sim.Engine.run engine ~until:(Sim.Time.ms 2);
  check_bool "uncongested hook fired" true (!uncong > 0);
  check_bool "no longer congested" false (Nic.Dp.rx_congested dp)

let test_dp_compact_descriptor_layout () =
  (* A NIC whose negotiated descriptor format is the 12-byte compact
     layout (paper 3.4): the driver writes through the layout and the
     datapath fetches with the right stride. *)
  let engine = Sim.Engine.create () in
  let mem = Memory.Phys_mem.create ~total_pages:256 () in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let config =
    {
      Nic.Nic_config.ricenic with
      Nic.Nic_config.desc_layout = Memory.Desc_layout.compact;
    }
  in
  let dp =
    Nic.Dp.create engine ~mem ~dma ~config ~contexts:1 ~dma_context_base:0
      ~notify:(fun ~ctx:_ -> ())
      ~on_fault:(fun ~ctx:_ _ _ -> ())
      ()
  in
  let link = Ethernet.Link.create engine () in
  Nic.Dp.attach_link dp link ~side:Ethernet.Link.A;
  Nic.Dp.activate dp ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1);
  let layout = Memory.Desc_layout.compact in
  let ring =
    Nic.Ring.create ~base:(Memory.Addr.base_of_pfn 8) ~slots:8
      ~desc_bytes:layout.Memory.Desc_layout.size ()
  in
  Nic.Dp.set_tx_ring dp ~ctx:0 ring;
  let wire = ref 0 in
  Ethernet.Link.attach link Ethernet.Link.B (fun _ -> incr wire);
  for slot = 0 to 2 do
    Memory.Desc_layout.write layout mem
      ~at:(Nic.Ring.slot_addr ring slot)
      {
        Memory.Dma_desc.addr = Memory.Addr.base_of_pfn (20 + slot);
        len = 600;
        flags = Memory.Dma_desc.flag_end_of_packet;
        seqno = slot;
      };
    Nic.Dp.stage_tx_meta dp ~ctx:0
      (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
         ~dst:(Ethernet.Mac_addr.make 9) ~kind:Ethernet.Frame.Data ~flow:0
         ~seq:slot ~payload_len:600 ~payload_seed:0 ())
  done;
  Nic.Dp.tx_doorbell dp ~ctx:0 ~prod:3;
  Sim.Engine.run engine ~until:(Sim.Time.ms 1);
  check_int "all sent under compact layout" 3 !wire;
  (* The ring really is packed at the 12-byte stride. *)
  check_int "stride" 12 (Nic.Ring.slot_addr ring 1 - Nic.Ring.slot_addr ring 0)

let test_dp_scatter_gather () =
  (* A packet described by three descriptors (flags without EOP until the
     last) is coalesced by the NIC into one wire frame whose payload is
     the concatenation of the fragments. *)
  let fx = dp_fixture ~materialize:true () in
  Nic.Dp.activate fx.dp ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1);
  let ring = Nic.Ring.create ~base:(Memory.Addr.base_of_pfn 8) ~slots:8 () in
  Nic.Dp.set_tx_ring fx.dp ~ctx:0 ring;
  let wire = ref [] in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun f -> wire := f :: !wire);
  (* Stage the full payload across three buffer pages. *)
  let payload = Ethernet.Frame.materialize_payload ~seed:77 ~len:900 in
  let frag_lens = [ 100; 300; 500 ] in
  let offsets = [ 0; 100; 400 ] in
  List.iteri
    (fun i (off, len) ->
      let pfn = 20 + i in
      Memory.Phys_mem.write fx.mem
        ~addr:(Memory.Addr.base_of_pfn pfn)
        (Bytes.sub payload off len);
      Memory.Dma_desc.write fx.mem
        ~at:(Nic.Ring.slot_addr ring i)
        {
          Memory.Dma_desc.addr = Memory.Addr.base_of_pfn pfn;
          len;
          flags =
            (if i = 2 then Memory.Dma_desc.flag_end_of_packet else 0);
          seqno = i;
        })
    (List.combine offsets frag_lens);
  Nic.Dp.stage_tx_meta fx.dp ~ctx:0
    (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
       ~dst:(Ethernet.Mac_addr.make 9) ~kind:Ethernet.Frame.Data ~flow:0
       ~seq:0 ~payload_len:900 ~payload_seed:77 ());
  Nic.Dp.tx_doorbell fx.dp ~ctx:0 ~prod:3;
  run fx 1;
  (match !wire with
  | [ f ] ->
      check_int "one frame from three descriptors" 900
        f.Ethernet.Frame.payload_len;
      check_bool "payload reassembled exactly" true
        (Ethernet.Frame.data_valid f)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 frame, got %d" (List.length l)));
  (* Completions count descriptors, so the driver's ring bookkeeping
     stays in step. *)
  check_int "three descriptors completed" 3
    (Nic.Dp.take_tx_completions fx.dp ~ctx:0);
  check_int "one frame counted" 1 (Nic.Dp.ctx_tx_frames fx.dp ~ctx:0)

let test_dp_scatter_gather_interleaves_contexts () =
  (* A context stalled mid-packet (fragments posted, EOP not yet) must not
     block another context's traffic. *)
  let fx = dp_fixture ~contexts:2 () in
  let d1 = attach_driver fx ~ctx:1 ~mac:(Ethernet.Mac_addr.make 2) in
  Nic.Dp.activate fx.dp ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1);
  let ring = Nic.Ring.create ~base:(Memory.Addr.base_of_pfn 8) ~slots:8 () in
  Nic.Dp.set_tx_ring fx.dp ~ctx:0 ring;
  let wire = ref [] in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun f -> wire := f :: !wire);
  (* ctx 0: first fragment only — no EOP, packet incomplete. *)
  Memory.Dma_desc.write fx.mem ~at:(Nic.Ring.slot_addr ring 0)
    {
      Memory.Dma_desc.addr = Memory.Addr.base_of_pfn 20;
      len = 100;
      flags = 0;
      seqno = 0;
    };
  Nic.Dp.tx_doorbell fx.dp ~ctx:0 ~prod:1;
  (* ctx 1: a complete ordinary packet. *)
  send_one fx d1 ();
  run fx 1;
  check_int "ctx1's packet got through" 1 (List.length !wire);
  check_int "ctx1 frame" 1 (Nic.Dp.ctx_tx_frames fx.dp ~ctx:1);
  check_int "ctx0 still assembling" 0 (Nic.Dp.ctx_tx_frames fx.dp ~ctx:0);
  (* Completing ctx 0's packet releases it. *)
  Memory.Dma_desc.write fx.mem ~at:(Nic.Ring.slot_addr ring 1)
    {
      Memory.Dma_desc.addr = Memory.Addr.base_of_pfn 21;
      len = 200;
      flags = Memory.Dma_desc.flag_end_of_packet;
      seqno = 1;
    };
  Nic.Dp.stage_tx_meta fx.dp ~ctx:0
    (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
       ~dst:(Ethernet.Mac_addr.make 9) ~kind:Ethernet.Frame.Data ~flow:0
       ~seq:0 ~payload_len:300 ~payload_seed:0 ());
  Nic.Dp.tx_doorbell fx.dp ~ctx:0 ~prod:2;
  run fx 1;
  check_int "ctx0 completed" 1 (Nic.Dp.ctx_tx_frames fx.dp ~ctx:0)

let test_dp_revoke_mid_sg_packet_releases_buffer () =
  (* Deactivating a context that is mid-assembly (fragments fetched, no
     EOP yet, fetch engine idle) must release its buffer reservation;
     otherwise repeated revocations leak the transmit buffer dry. *)
  (* Small transmit buffer so a leak exhausts it within a few rounds. *)
  let engine = Sim.Engine.create () in
  let mem = Memory.Phys_mem.create ~total_pages:256 () in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let config =
    { Nic.Nic_config.ricenic with Nic.Nic_config.tx_buffer_bytes = 8_000 }
  in
  let dp =
    Nic.Dp.create engine ~mem ~dma ~config ~contexts:4 ~dma_context_base:0
      ~notify:(fun ~ctx:_ -> ())
      ~on_fault:(fun ~ctx:_ _ _ -> ())
      ()
  in
  let link = Ethernet.Link.create engine () in
  Nic.Dp.attach_link dp link ~side:Ethernet.Link.A;
  let fx =
    { engine; mem; dp; link; notifications = Hashtbl.create 8; faults = ref [] }
  in
  for round = 0 to 40 do
    let mac = Ethernet.Mac_addr.make (100 + round) in
    Nic.Dp.activate fx.dp ~ctx:0 ~mac;
    let ring = Nic.Ring.create ~base:(Memory.Addr.base_of_pfn 8) ~slots:8 () in
    Nic.Dp.set_tx_ring fx.dp ~ctx:0 ring;
    Memory.Dma_desc.write fx.mem ~at:(Nic.Ring.slot_addr ring 0)
      {
        Memory.Dma_desc.addr = Memory.Addr.base_of_pfn 20;
        len = 100;
        flags = 0 (* no EOP: packet stays in assembly *);
        seqno = 0;
      };
    Nic.Dp.tx_doorbell fx.dp ~ctx:0 ~prod:1;
    run fx 1;
    Nic.Dp.deactivate fx.dp ~ctx:0;
    check_int "accounting back to zero each round" 0
      (Nic.Dp.tx_buffer_in_use fx.dp)
  done;
  (* After all those cycles, a fresh context still transmits: the buffer
     was not leaked away. *)
  let d = attach_driver fx ~ctx:1 ~mac:(Ethernet.Mac_addr.make 1) in
  let wire = ref 0 in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun _ -> incr wire);
  send_one fx d ();
  run fx 1;
  check_int "buffer not leaked" 1 !wire

let test_dp_tx_stall_on_full_buffer () =
  (* A transmit buffer with room for a single frame reservation: the fetch
     stage must stall (rather than fetch anyway and later underflow the
     shared-buffer accounting) and drain everything as the wire stage
     frees space. *)
  let engine = Sim.Engine.create () in
  let mem = Memory.Phys_mem.create ~total_pages:256 () in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let config =
    { Nic.Nic_config.ricenic with Nic.Nic_config.tx_buffer_bytes = 2_000 }
  in
  let dp =
    Nic.Dp.create engine ~mem ~dma ~config ~contexts:4 ~dma_context_base:0
      ~notify:(fun ~ctx:_ -> ())
      ~on_fault:(fun ~ctx:_ _ _ -> ())
      ()
  in
  let link = Ethernet.Link.create engine () in
  Nic.Dp.attach_link dp link ~side:Ethernet.Link.A;
  let fx =
    { engine; mem; dp; link; notifications = Hashtbl.create 8; faults = ref [] }
  in
  let d = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  let wire = ref 0 in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun _ -> incr wire);
  for _ = 1 to 6 do
    send_one fx d ()
  done;
  run fx 5;
  check_int "all frames drained through the stall" 6 !wire;
  check_int "no faults" 0 (Nic.Dp.stats fx.dp).Nic.Dp.faults;
  check_int "buffer accounting back to zero" 0 (Nic.Dp.tx_buffer_in_use fx.dp)

let test_dp_rx_short_descriptor_truncates () =
  (* A posted buffer shorter than the arriving frame: only the bytes that
     fit are delivered and the truncation is counted. *)
  let fx = dp_fixture () in
  Nic.Dp.activate fx.dp ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1);
  let rx_ring = Nic.Ring.create ~base:(Memory.Addr.base_of_pfn 40) ~slots:8 () in
  Nic.Dp.set_rx_ring fx.dp ~ctx:0 rx_ring;
  Memory.Dma_desc.write fx.mem ~at:(Nic.Ring.slot_addr rx_ring 0)
    {
      Memory.Dma_desc.addr = Memory.Addr.base_of_pfn 41;
      len = 300;
      flags = 0;
      seqno = 0;
    };
  Nic.Dp.rx_doorbell fx.dp ~ctx:0 ~prod:1;
  Ethernet.Link.send fx.link ~from:Ethernet.Link.B
    (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 500)
       ~dst:(Ethernet.Mac_addr.make 1) ~kind:Ethernet.Frame.Data ~flow:0 ~seq:0
       ~payload_len:1000 ~payload_seed:0 ())
    ~on_wire_free:ignore;
  run fx 1;
  check_int "delivered" 1 (Nic.Dp.rx_completions_pending fx.dp ~ctx:0);
  let st = Nic.Dp.stats fx.dp in
  check_int "truncation counted" 1 st.Nic.Dp.rx_truncated;
  check_int "only delivered bytes counted" 300 st.Nic.Dp.rx_bytes;
  check_int "rx buffer drained" 0 (Nic.Dp.rx_buffer_in_use fx.dp)

let test_dp_deactivate_mid_fetch_releases_buffer () =
  (* Deactivation while the descriptor-fetch DMA is still in flight: the
     completion observes the epoch bump and releases the buffer
     reservation taken at fetch admission. *)
  let fx = dp_fixture () in
  let d = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  send_one fx d ();
  (* No run between doorbell and deactivate: the fetch is in flight. *)
  Nic.Dp.deactivate fx.dp ~ctx:0;
  run fx 2;
  check_int "reservation released" 0 (Nic.Dp.tx_buffer_in_use fx.dp);
  check_int "nothing transmitted" 0 (Nic.Dp.stats fx.dp).Nic.Dp.tx_frames;
  (* The datapath still works for another context. *)
  let d1 = attach_driver fx ~ctx:1 ~mac:(Ethernet.Mac_addr.make 2) in
  let wire = ref 0 in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun _ -> incr wire);
  send_one fx d1 ();
  run fx 1;
  check_int "other context transmits" 1 !wire

let test_dp_injected_dma_fault_isolated () =
  (* A seed-driven injected bus fault on one context faults that context
     only; its neighbor keeps transmitting. *)
  let fx = dp_fixture ~contexts:2 () in
  let d0 = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  let d1 = attach_driver fx ~ctx:1 ~mac:(Ethernet.Mac_addr.make 2) in
  let fi = Sim.Fault_inject.create ~seed:7 in
  Sim.Fault_inject.arm fi ~site:"dma"
    (Sim.Fault_inject.plan ~ctx:(0, 0) Sim.Fault_inject.One_shot);
  Bus.Dma_engine.set_fault_injector (Nic.Dp.dma fx.dp)
    (Some
       (fun ~context ~addr ~len:_ ->
         Sim.Fault_inject.fire fi ~site:"dma" ~ctx:context ~addr ()));
  send_one fx d0 ();
  send_one fx d1 ();
  run fx 2;
  check_bool "ctx0 faulted" true (Nic.Dp.is_faulted fx.dp ~ctx:0);
  check_bool "ctx1 healthy" false (Nic.Dp.is_faulted fx.dp ~ctx:1);
  check_int "ctx1 delivered" 1 (Nic.Dp.ctx_tx_frames fx.dp ~ctx:1);
  check_int "one injection recorded" 1
    (Bus.Dma_engine.injected_faults (Nic.Dp.dma fx.dp));
  check_bool "fault attributed to ctx0" true
    (List.exists (fun (ctx, _, _) -> ctx = 0) !(fx.faults));
  check_int "buffer accounting clean" 0 (Nic.Dp.tx_buffer_in_use fx.dp)

let test_link_tamper_drop_and_corrupt () =
  let fx = dp_fixture () in
  let d = attach_driver fx ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1) in
  let got = ref [] in
  Ethernet.Link.attach fx.link Ethernet.Link.B (fun f -> got := f :: !got);
  let fi = Sim.Fault_inject.create ~seed:3 in
  Sim.Fault_inject.arm fi ~site:"wire"
    (Sim.Fault_inject.plan (Sim.Fault_inject.Nth 2));
  Ethernet.Link.set_tamper fx.link
    (Some
       (fun _ ->
         if Sim.Fault_inject.fire fi ~site:"wire" () then `Drop else `Pass));
  for _ = 1 to 4 do
    send_one fx d ()
  done;
  run fx 2;
  check_int "second frame dropped" 3 (List.length !got);
  check_int "drop counted" 1 (Ethernet.Link.dropped fx.link);
  (* The sender still paid the wire time: all four frames completed. *)
  check_int "sender-side completions" 4 (Nic.Dp.take_tx_completions fx.dp ~ctx:0);
  (* Corruption: delivery happens, but the payload identity is broken. *)
  Ethernet.Link.set_tamper fx.link (Some (fun _ -> `Corrupt));
  got := [];
  send_one fx d ();
  run fx 2;
  (match !got with
  | [ f ] ->
      check_int "payload seed corrupted" (5 lxor 0x5a5a)
        f.Ethernet.Frame.payload_seed
  | l ->
      Alcotest.fail (Printf.sprintf "expected 1 frame, got %d" (List.length l)));
  check_int "corruption counted" 1 (Ethernet.Link.corrupted fx.link);
  Ethernet.Link.set_tamper fx.link None;
  got := [];
  send_one fx d ();
  run fx 2;
  check_int "tamper removed" 5 (List.hd !got).Ethernet.Frame.payload_seed

let prop_dp_conserves_frames =
  (* Random interleavings of sends across contexts: every staged packet
     eventually reaches the wire exactly once and is reported as exactly
     one completion; buffers drain to empty. *)
  QCheck.Test.make ~name:"datapath conserves frames" ~count:25
    QCheck.(list_of_size (Gen.int_range 1 40) (pair (int_range 0 2) (int_range 64 1500)))
    (fun sends ->
      let fx = dp_fixture ~contexts:3 () in
      let drivers =
        Array.init 3 (fun i ->
            attach_driver fx ~ctx:i ~mac:(Ethernet.Mac_addr.make (i + 1)))
      in
      let on_wire = ref 0 in
      Ethernet.Link.attach fx.link Ethernet.Link.B (fun _ -> incr on_wire);
      (* Spread the sends over time so rings never overflow (8 slots). *)
      List.iteri
        (fun i (ctx, len) ->
          ignore
            (Sim.Engine.schedule fx.engine
               ~delay:(Sim.Time.us (i * 120))
               (fun () -> send_one fx drivers.(ctx) ~len ())))
        sends;
      Sim.Engine.run fx.engine ~until:(Sim.Time.ms 50);
      let completions =
        Nic.Dp.take_tx_completions fx.dp ~ctx:0
        + Nic.Dp.take_tx_completions fx.dp ~ctx:1
        + Nic.Dp.take_tx_completions fx.dp ~ctx:2
      in
      !on_wire = List.length sends
      && completions = List.length sends
      && (Nic.Dp.stats fx.dp).Nic.Dp.faults = 0)

(* ---------- Firmware / Ricenic / Intel ---------- *)

let test_firmware_ring_setup_via_mailboxes () =
  let fx = dp_fixture () in
  let fw = Nic.Firmware.create fx.engine ~dp:fx.dp ~process_cost:(Sim.Time.ns 200) () in
  Nic.Dp.activate fx.dp ~ctx:0 ~mac:(Ethernet.Mac_addr.make 1);
  let mapping = Bus.Mmio.map (Nic.Firmware.region fw ~ctx:0) in
  let hw = Nic.Firmware.driver_if fw ~ctx:0 ~mapping in
  hw.Nic.Driver_if.setup_tx_ring
    (Nic.Ring.create ~base:(Memory.Addr.base_of_pfn 20) ~slots:8 ());
  hw.Nic.Driver_if.setup_rx_ring
    (Nic.Ring.create ~base:(Memory.Addr.base_of_pfn 21) ~slots:8 ());
  hw.Nic.Driver_if.setup_status (Memory.Addr.base_of_pfn 22);
  (* Write one descriptor and doorbell through the PIO path. *)
  Memory.Dma_desc.write fx.mem
    ~at:(Memory.Addr.base_of_pfn 20)
    {
      Memory.Dma_desc.addr = Memory.Addr.base_of_pfn 23;
      len = 400;
      flags = Memory.Dma_desc.flag_end_of_packet;
      seqno = 0;
    };
  hw.Nic.Driver_if.stage_tx_meta
    (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
       ~dst:(Ethernet.Mac_addr.make 500) ~kind:Ethernet.Frame.Data ~flow:0
       ~seq:0 ~payload_len:400 ~payload_seed:0 ());
  hw.Nic.Driver_if.tx_doorbell 1;
  run fx 1;
  check_int "frame sent via firmware path" 1 (Nic.Dp.ctx_tx_frames fx.dp ~ctx:0);
  check_bool "events processed" true (Nic.Firmware.events_processed fw >= 6)

let nic_wrapper_roundtrip make_nic =
  (* Loopback two NICs over one link using their native driver-if. *)
  let engine = Sim.Engine.create () in
  let mem = Memory.Phys_mem.create ~total_pages:512 () in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let link = Ethernet.Link.create engine () in
  let irq_a = Bus.Irq.create ~name:"a" and irq_b = Bus.Irq.create ~name:"b" in
  let nic_a, dp_a, hw_a = make_nic engine mem dma irq_a 0 in
  let nic_b, dp_b, hw_b = make_nic engine mem dma irq_b 64 in
  ignore nic_a;
  ignore nic_b;
  ignore hw_b;
  Nic.Dp.attach_link dp_a link ~side:Ethernet.Link.A;
  Nic.Dp.attach_link dp_b link ~side:Ethernet.Link.B;
  (* Set up A's tx ring and B's rx ring. *)
  let tx_ring = Nic.Ring.create ~base:(Memory.Addr.base_of_pfn 10) ~slots:8 () in
  hw_a.Nic.Driver_if.setup_tx_ring tx_ring;
  let rx_ring = Nic.Ring.create ~base:(Memory.Addr.base_of_pfn 11) ~slots:8 () in
  Nic.Dp.set_rx_ring dp_b ~ctx:0 rx_ring;
  for slot = 0 to 7 do
    Memory.Dma_desc.write mem ~at:(Nic.Ring.slot_addr rx_ring slot)
      {
        Memory.Dma_desc.addr = Memory.Addr.base_of_pfn (20 + slot);
        len = Memory.Addr.page_size;
        flags = 0;
        seqno = slot;
      }
  done;
  Nic.Dp.rx_doorbell dp_b ~ctx:0 ~prod:8;
  (* Send a frame from A addressed to B. *)
  Memory.Dma_desc.write mem ~at:(Nic.Ring.slot_addr tx_ring 0)
    {
      Memory.Dma_desc.addr = Memory.Addr.base_of_pfn 30;
      len = 800;
      flags = Memory.Dma_desc.flag_end_of_packet;
      seqno = 0;
    };
  hw_a.Nic.Driver_if.stage_tx_meta
    (Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 1)
       ~dst:(Ethernet.Mac_addr.make 2) ~kind:Ethernet.Frame.Data ~flow:0 ~seq:0
       ~payload_len:800 ~payload_seed:0 ());
  hw_a.Nic.Driver_if.tx_doorbell 1;
  Sim.Engine.run engine ~until:(Sim.Time.ms 2);
  check_int "received by B" 1
    (List.length (hw_b.Nic.Driver_if.take_rx_completions ~max:10));
  check_int "irq raised at B" 1 (Bus.Irq.count irq_b)

let test_intel_nic_roundtrip () =
  nic_wrapper_roundtrip (fun engine mem dma irq base ->
      Bus.Irq.set_handler irq (fun () -> ());
      let nic =
        Nic.Intel_nic.create engine ~mem ~dma ~irq ~dma_context:base ()
      in
      Nic.Intel_nic.enable nic
        ~mac:(Ethernet.Mac_addr.make (if base = 0 then 1 else 2));
      ((), Nic.Intel_nic.dp nic, Nic.Intel_nic.driver_if nic))

let test_ricenic_roundtrip () =
  nic_wrapper_roundtrip (fun engine mem dma irq base ->
      Bus.Irq.set_handler irq (fun () -> ());
      let nic = Nic.Ricenic.create engine ~mem ~dma ~irq ~dma_context:base () in
      Nic.Ricenic.enable nic
        ~mac:(Ethernet.Mac_addr.make (if base = 0 then 1 else 2));
      ((), Nic.Ricenic.dp nic, Nic.Ricenic.driver_if nic))

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "nic.ring",
      [
        Alcotest.test_case "layout" `Quick test_ring_layout;
        Alcotest.test_case "occupancy" `Quick test_ring_occupancy;
        Alcotest.test_case "validation" `Quick test_ring_validation;
      ] );
    ( "nic.mailbox",
      [
        Alcotest.test_case "event hierarchy" `Quick test_mailbox_event_hierarchy;
        Alcotest.test_case "lowest first" `Quick test_mailbox_lowest_first;
        Alcotest.test_case "shared memory words" `Quick test_mailbox_beyond_mailbox_words;
        Alcotest.test_case "poke silent" `Quick test_mailbox_poke_silent;
        qcheck prop_mailbox_decode_matches_vectors;
      ] );
    ("nic.pkt_buf", [ Alcotest.test_case "reserve/release" `Quick test_pkt_buf ]);
    ( "nic.coalesce",
      [
        Alcotest.test_case "caps rate" `Quick test_coalesce_caps_rate;
        Alcotest.test_case "immediate when idle" `Quick test_coalesce_immediate_when_idle;
        Alcotest.test_case "accounting invariant" `Quick
          test_coalesce_accounting_invariant;
      ] );
    ( "nic.dp",
      [
        Alcotest.test_case "transmits" `Quick test_dp_transmits;
        Alcotest.test_case "rx demux by mac" `Quick test_dp_receive_demux_by_mac;
        Alcotest.test_case "unknown mac dropped" `Quick test_dp_unknown_mac_dropped;
        Alcotest.test_case "promiscuous" `Quick test_dp_promiscuous;
        Alcotest.test_case "round robin" `Quick test_dp_round_robin_fairness;
        Alcotest.test_case "materialized tx integrity" `Quick
          test_dp_materialized_payload_integrity;
        Alcotest.test_case "materialized rx buffer" `Quick
          test_dp_materialized_rx_lands_in_buffer;
        Alcotest.test_case "seqno fault halts" `Quick test_dp_seqno_fault_halts_context;
        Alcotest.test_case "correct seqnos pass" `Quick test_dp_correct_seqnos_pass;
        Alcotest.test_case "deactivate aborts" `Quick test_dp_deactivate_aborts;
        Alcotest.test_case "status writeback" `Quick test_dp_status_writeback;
        Alcotest.test_case "rx waits for descriptors" `Quick
          test_dp_rx_waits_for_descriptors;
        Alcotest.test_case "doorbell monotonicity" `Quick test_dp_doorbell_monotonicity;
        Alcotest.test_case "congestion watermarks" `Quick test_dp_congestion_watermarks;
        Alcotest.test_case "compact descriptor layout" `Quick
          test_dp_compact_descriptor_layout;
        Alcotest.test_case "scatter/gather coalescing" `Quick test_dp_scatter_gather;
        Alcotest.test_case "scatter/gather interleaving" `Quick
          test_dp_scatter_gather_interleaves_contexts;
        Alcotest.test_case "revoke mid-sg releases buffer" `Quick
          test_dp_revoke_mid_sg_packet_releases_buffer;
        Alcotest.test_case "tx stall on full buffer" `Quick
          test_dp_tx_stall_on_full_buffer;
        Alcotest.test_case "rx short descriptor truncates" `Quick
          test_dp_rx_short_descriptor_truncates;
        Alcotest.test_case "deactivate mid-fetch releases buffer" `Quick
          test_dp_deactivate_mid_fetch_releases_buffer;
        Alcotest.test_case "injected dma fault isolated" `Quick
          test_dp_injected_dma_fault_isolated;
        Alcotest.test_case "link tamper drop/corrupt" `Quick
          test_link_tamper_drop_and_corrupt;
        qcheck prop_dp_conserves_frames;
      ] );
    ( "nic.wrappers",
      [
        Alcotest.test_case "firmware mailbox path" `Quick
          test_firmware_ring_setup_via_mailboxes;
        Alcotest.test_case "intel roundtrip" `Quick test_intel_nic_roundtrip;
        Alcotest.test_case "ricenic roundtrip" `Quick test_ricenic_roundtrip;
      ] );
  ]
