(* Shared definition of the golden determinism runs: the exact configs
   and the artifact pipeline (trace recorder -> Chrome JSON, metrics
   registry -> JSON) that both the fixture generator (gen_golden.ml) and
   the golden test (test_experiments.ml) use. Keeping it in one place
   guarantees the test compares like with like. *)

let seeds = [ 1234; 77 ]

let cfg ~seed =
  {
    Experiments.Config.default with
    Experiments.Config.system = Experiments.Config.Cdna_sys;
    nic = Experiments.Config.Ricenic;
    pattern = Workload.Pattern.Tx;
    guests = 2;
    nics = 2;
    warmup = Sim.Time.ms 1;
    duration = Sim.Time.ms 2;
    seed;
  }

(* Mirrors `cdna_sim run --trace-out --metrics-out`: record every trace
   event, run, then render both artifacts exactly as the CLI does. *)
let traced_artifacts ~seed =
  let r = Sim.Trace.Recorder.create () in
  Sim.Trace.set_sink (Some (Sim.Trace.Recorder.sink r));
  let _, tb = Experiments.Run.run_tb (cfg ~seed) in
  Sim.Trace.set_sink None;
  Sim.Trace.Recorder.set_process_name r ~pid:0 "hypervisor";
  List.iter
    (fun d ->
      Sim.Trace.Recorder.set_process_name r
        ~pid:(Xen.Domain.id d + 1)
        (Xen.Domain.name d))
    (Xen.Hypervisor.domains tb.Experiments.Testbed.xen);
  ( Sim.Trace.Recorder.to_chrome_string r,
    Sim.Metrics.to_string tb.Experiments.Testbed.metrics )
