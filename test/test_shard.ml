(* Tests for the fixed accounting bugs (engine drain horizon, heap-full
   live count, stale Tw_avg reads) and for the sharded deterministic
   core: Sim.Shard unit behavior plus sequential-vs-sharded
   byte-identity of complete multi-host runs. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ---------- Satellite bugfixes ---------- *)

(* A cancelled entry whose key lies beyond the horizon must survive a
   drain: the horizon check applies before any pop, cancelled or not. *)
let test_drain_past_horizon_cancelled () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ns 10) (fun () -> incr fired));
  let far = Sim.Engine.schedule e ~delay:(Sim.Time.ns 100) (fun () -> incr fired) in
  let far2 = Sim.Engine.schedule e ~delay:(Sim.Time.ns 200) (fun () -> incr fired) in
  Sim.Engine.cancel e far;
  Sim.Engine.cancel e far2;
  Sim.Engine.run e ~until:(Sim.Time.ns 50);
  check_int "one event fired" 1 !fired;
  (* The cancelled entries beyond the horizon must still be queued
     (unswept), not silently popped by the drain. *)
  check_int "cancelled entries still pending" 2 (Sim.Engine.pending_count e);
  check_int "live count excludes cancelled" 0 (Sim.Engine.live_pending_count e);
  Sim.Engine.run e ~until:(Sim.Time.ns 300);
  check_int "cancelled events never fire" 1 !fired;
  check_int "queue empty after horizon passes" 0 (Sim.Engine.pending_count e)

(* Horizon semantics unchanged for live events: an event exactly at the
   horizon fires, one beyond it does not. *)
let test_drain_horizon_inclusive () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ns 50) (fun () -> log := 50 :: !log));
  ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ns 51) (fun () -> log := 51 :: !log));
  Sim.Engine.run e ~until:(Sim.Time.ns 50);
  check (Alcotest.list Alcotest.int) "at-horizon fires" [ 50 ] !log;
  check_int "beyond-horizon pends" 1 (Sim.Engine.live_pending_count e)

(* A schedule rejected by the heap cap must leave the live count (and
   the queue) untouched — the increment happens only after the push. *)
let test_heap_full_live_consistency () =
  let e = Sim.Engine.create ~max_pending:4 () in
  for _ = 1 to 4 do
    ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ns 5) (fun () -> ()))
  done;
  check_int "at cap" 4 (Sim.Engine.live_pending_count e);
  (try
     ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ns 5) (fun () -> ()));
     Alcotest.fail "expected Invalid_argument on heap-full schedule"
   with Invalid_argument _ -> ());
  check_int "live unchanged after failed schedule" 4
    (Sim.Engine.live_pending_count e);
  check_int "pending unchanged after failed schedule" 4
    (Sim.Engine.pending_count e);
  (* The engine must still be fully usable: drain and refill. *)
  ignore (Sim.Engine.run_to_completion e);
  check_int "drained" 0 (Sim.Engine.pending_count e);
  for _ = 1 to 4 do
    ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ns 5) (fun () -> ()))
  done;
  check_int "refillable to cap" 4 (Sim.Engine.live_pending_count e)

(* [mean] with a [now] earlier than the last update must raise instead
   of silently folding in a negative slice. *)
let test_tw_avg_stale_now () =
  let a = Sim.Stats.Tw_avg.create ~now:(Sim.Time.ns 0) ~value:1. in
  Sim.Stats.Tw_avg.set a ~now:(Sim.Time.ns 100) 3.;
  Alcotest.check_raises "stale mean" (Invalid_argument "Tw_avg: time going backwards")
    (fun () -> ignore (Sim.Stats.Tw_avg.mean a ~now:(Sim.Time.ns 50)));
  (* A current read still works. *)
  check (Alcotest.float 1e-9) "mean at last update" 1.
    (Sim.Stats.Tw_avg.mean a ~now:(Sim.Time.ns 100))

(* ---------- Shard unit behavior ---------- *)

let test_partition_validation () =
  let p = Sim.Shard.Partition.create () in
  let a = Sim.Shard.Partition.add p ~name:"a" (Sim.Engine.create ()) in
  let b = Sim.Shard.Partition.add p ~name:"b" (Sim.Engine.create ()) in
  check_int "lp count" 2 (Sim.Shard.Partition.lp_count p);
  check Alcotest.string "name" "a" (Sim.Shard.Partition.name a);
  check_bool "no channels -> no lookahead" true
    (match Sim.Shard.Partition.lookahead p with None -> true | Some _ -> false);
  Alcotest.check_raises "self channel"
    (Invalid_argument "Shard.Partition.connect: a channel must cross LPs")
    (fun () ->
      Sim.Shard.Partition.connect p ~src:a ~dst:a
        ~min_latency:(Sim.Time.ns 10));
  Alcotest.check_raises "zero latency"
    (Invalid_argument "Shard.Partition.connect: lookahead must be positive")
    (fun () ->
      Sim.Shard.Partition.connect p ~src:a ~dst:b ~min_latency:Sim.Time.zero);
  Sim.Shard.Partition.connect p ~src:a ~dst:b ~min_latency:(Sim.Time.ns 100);
  Sim.Shard.Partition.connect p ~src:b ~dst:a ~min_latency:(Sim.Time.ns 40);
  check_int "lookahead = min channel latency" 40
    (Sim.Time.to_ns
       (match Sim.Shard.Partition.lookahead p with
       | Some l -> l
       | None -> Alcotest.fail "expected a lookahead"))

let test_send_contract () =
  let p = Sim.Shard.Partition.create () in
  let a = Sim.Shard.Partition.add p ~name:"a" (Sim.Engine.create ()) in
  let b = Sim.Shard.Partition.add p ~name:"b" (Sim.Engine.create ()) in
  let c = Sim.Shard.Partition.add p ~name:"c" (Sim.Engine.create ()) in
  Sim.Shard.Partition.connect p ~src:a ~dst:b ~min_latency:(Sim.Time.ns 100);
  let t = Sim.Shard.create p in
  Alcotest.check_raises "undeclared channel"
    (Invalid_argument "Shard.send: no channel declared src -> dst")
    (fun () ->
      Sim.Shard.send t ~src:a ~dst:c ~delay:(Sim.Time.ns 500) (fun () -> ()));
  Alcotest.check_raises "delay below lookahead"
    (Invalid_argument "Shard.send: delay below the channel lookahead")
    (fun () ->
      Sim.Shard.send t ~src:a ~dst:b ~delay:(Sim.Time.ns 99) (fun () -> ()));
  (* Exactly the channel latency is legal (tightest conservative send). *)
  Sim.Shard.send t ~src:a ~dst:b ~delay:(Sim.Time.ns 100) (fun () -> ());
  Sim.Shard.run t ~until:(Sim.Time.ns 200);
  check_int "message crossed the barrier" 1 (Sim.Shard.messages_routed t)

(* Messages from different sources meeting at the same instant on the
   same destination deliver in (deliver, src id, seq) order regardless
   of send order. *)
let test_inbox_merge_order () =
  let build () =
    let p = Sim.Shard.Partition.create () in
    let a = Sim.Shard.Partition.add p ~name:"a" (Sim.Engine.create ()) in
    let b = Sim.Shard.Partition.add p ~name:"b" (Sim.Engine.create ()) in
    let d = Sim.Shard.Partition.add p ~name:"d" (Sim.Engine.create ()) in
    Sim.Shard.Partition.connect p ~src:a ~dst:d ~min_latency:(Sim.Time.ns 50);
    Sim.Shard.Partition.connect p ~src:b ~dst:d ~min_latency:(Sim.Time.ns 50);
    (p, a, b, d)
  in
  let run_once ~send_b_first ~shards =
    let p, a, b, d = build () in
    let t = Sim.Shard.create ~shards p in
    let log = ref [] in
    let push tag () = log := tag :: !log in
    let ea = Sim.Shard.Partition.engine a in
    let eb = Sim.Shard.Partition.engine b in
    (* Both sources emit two messages landing at t=50 on d; b also one
       at t=60. Send order varies; delivery order must not. *)
    let send_a () =
      ignore
        (Sim.Engine.schedule ea ~delay:Sim.Time.zero (fun () ->
             Sim.Shard.send t ~src:a ~dst:d ~delay:(Sim.Time.ns 50) (push "a0");
             Sim.Shard.send t ~src:a ~dst:d ~delay:(Sim.Time.ns 50) (push "a1")))
    in
    let send_b () =
      ignore
        (Sim.Engine.schedule eb ~delay:Sim.Time.zero (fun () ->
             Sim.Shard.send t ~src:b ~dst:d ~delay:(Sim.Time.ns 60) (push "b-late");
             Sim.Shard.send t ~src:b ~dst:d ~delay:(Sim.Time.ns 50) (push "b0")))
    in
    if send_b_first then (send_b (); send_a ()) else (send_a (); send_b ());
    ignore d;
    Sim.Shard.run t ~until:(Sim.Time.ns 100);
    List.rev !log
  in
  let expected = [ "a0"; "a1"; "b0"; "b-late" ] in
  List.iter
    (fun shards ->
      check (Alcotest.list Alcotest.string) "merge order (a first)" expected
        (run_once ~send_b_first:false ~shards);
      check (Alcotest.list Alcotest.string) "merge order (b first)" expected
        (run_once ~send_b_first:true ~shards))
    [ 1; 2; 3 ]

let test_lookahead_of_link () =
  (* 1538 wire bytes at 1 Gb/s = 12304 ns serialization + 500 ns
     propagation. *)
  check_int "ethernet lookahead" 12804
    (Sim.Time.to_ns
       (Sim.Shard.lookahead_of_link ~rate_bps:1_000_000_000
          ~propagation:(Sim.Time.ns 500) ~mtu_bytes:1538))

(* A ping-pong across the lookahead boundary: results identical under
   the sequential backend and under forced multi-domain execution
   (workers = shards = 2 spawns a real second domain even on one core). *)
let test_forced_parallel_workers () =
  let run_once ~workers =
    let p = Sim.Shard.Partition.create () in
    let a = Sim.Shard.Partition.add p ~name:"a" (Sim.Engine.create ()) in
    let b = Sim.Shard.Partition.add p ~name:"b" (Sim.Engine.create ()) in
    Sim.Shard.Partition.connect p ~src:a ~dst:b ~min_latency:(Sim.Time.ns 100);
    Sim.Shard.Partition.connect p ~src:b ~dst:a ~min_latency:(Sim.Time.ns 100);
    let t = Sim.Shard.create ~shards:2 ~workers p in
    let hops = ref 0 in
    let rec ping src dst () =
      incr hops;
      Sim.Shard.send t ~src ~dst ~delay:(Sim.Time.ns 100) (ping dst src)
    in
    ignore
      (Sim.Engine.schedule
         (Sim.Shard.Partition.engine a)
         ~delay:Sim.Time.zero
         (fun () ->
           Sim.Shard.send t ~src:a ~dst:b ~delay:(Sim.Time.ns 100) (ping b a)));
    Sim.Shard.run t ~until:(Sim.Time.ns 1_000);
    (!hops, Sim.Shard.messages_routed t, Sim.Shard.workers t)
  in
  let h1, r1, w1 = run_once ~workers:1 in
  let h2, r2, w2 = run_once ~workers:2 in
  check_int "sequential backend" 1 w1;
  check_int "parallel backend really has 2 domains" 2 w2;
  check_int "hops identical" h1 h2;
  check_int "routed identical" r1 r2;
  check_bool "pong actually ran" true (h1 > 0)

(* An exception inside an event on a worker domain propagates to the
   caller and does not wedge the pool. *)
let test_worker_exception_propagates () =
  let p = Sim.Shard.Partition.create () in
  let a = Sim.Shard.Partition.add p ~name:"a" (Sim.Engine.create ()) in
  let b = Sim.Shard.Partition.add p ~name:"b" (Sim.Engine.create ()) in
  Sim.Shard.Partition.connect p ~src:a ~dst:b ~min_latency:(Sim.Time.ns 10);
  let t = Sim.Shard.create ~shards:2 ~workers:2 p in
  ignore
    (Sim.Engine.schedule
       (Sim.Shard.Partition.engine b)
       ~delay:(Sim.Time.ns 5)
       (fun () -> failwith "boom"));
  (try
     Sim.Shard.run t ~until:(Sim.Time.ns 100);
     Alcotest.fail "expected the worker's exception to propagate"
   with Failure msg -> check Alcotest.string "message" "boom" msg)

(* ---------- Sequential vs sharded byte-identity, end to end ---------- *)

(* Render everything observable about a multi-host run: the formatted
   per-host measurements plus every host's full metrics registry
   snapshot. Byte-compare across shard counts and backends. *)
let render_report (rep : Experiments.Multihost.report)
    (t : Experiments.Multihost.t) =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i m ->
      Buffer.add_string buf
        (Format.asprintf "host%d %a@." i Experiments.Run.pp m))
    rep.Experiments.Multihost.measurements;
  Array.iter
    (fun (h : Experiments.Multihost.host) ->
      Buffer.add_string buf
        (Sim.Metrics.to_string
           h.Experiments.Multihost.tb.Experiments.Testbed.metrics);
      Buffer.add_char buf '\n')
    t.Experiments.Multihost.hosts;
  Buffer.add_string buf
    (Printf.sprintf "heartbeats=%d routed=%d\n"
       rep.Experiments.Multihost.heartbeats
       rep.Experiments.Multihost.messages_routed);
  Buffer.contents buf

let small_cfg seed =
  {
    Experiments.Config.default with
    Experiments.Config.system = Experiments.Config.Cdna_sys;
    nic = Experiments.Config.Ricenic;
    guests = 1;
    nics = 1;
    warmup = Sim.Time.us 500;
    duration = Sim.Time.ms 1;
    seed;
  }

let multihost_render ~seed ~shards ?workers () =
  let rep, t =
    Experiments.Multihost.run ~shards ?workers ~hosts:4 (small_cfg seed)
  in
  render_report rep t

(* The acceptance gate: for multiple seeds, every shard count — and a
   forced two-domain backend — produces byte-identical output. *)
let test_multihost_determinism () =
  List.iter
    (fun seed ->
      let reference = multihost_render ~seed ~shards:1 () in
      check_bool "report is non-trivial" true
        (String.length reference > 200);
      List.iter
        (fun shards ->
          check Alcotest.string
            (Printf.sprintf "seed %d: shards=%d == shards=1" seed shards)
            reference
            (multihost_render ~seed ~shards ()))
        [ 2; 4 ];
      check Alcotest.string
        (Printf.sprintf "seed %d: forced 2-domain backend" seed)
        reference
        (multihost_render ~seed ~shards:4 ~workers:2 ()))
    [ 1234; 77 ]

(* Regression for the float-credit scheduler bug: with SMP runqueues and
   cross-runqueue migration in play, credit accounting must be exact
   integer arithmetic or schedules drift apart across shard counts. Runs
   the multi-host scenario with 4-CPU hosts and several guests (so
   migrations and per-runqueue metrics are live) and byte-compares
   shards=1 against shards=4. *)
let test_smp_schedule_shard_invariant () =
  let cfg =
    {
      (small_cfg 99) with
      Experiments.Config.cpus = 4;
      guests = 3;
      conns_per_guest_per_nic = 1;
    }
  in
  let render shards =
    let rep, t = Experiments.Multihost.run ~shards ~hosts:4 cfg in
    render_report rep t
  in
  let reference = render 1 in
  check_bool "report is non-trivial" true (String.length reference > 200);
  check Alcotest.string "smp schedules: shards=4 == shards=1" reference
    (render 4)

(* Dynamic witness for the static domain-safety pass (cdna_dom): the
   grant-flip ledger is per-testbed (per LP) rather than a process
   global, so a forced two-domain Xen-software run must stay
   byte-identical across shard counts while every host accumulates its
   own flips — exactly the coupling the pre-fix [Grant_table.count]
   pattern would have broken. *)
let xen_cfg seed =
  {
    (small_cfg seed) with
    Experiments.Config.system = Experiments.Config.Xen_sw;
  }

let test_grant_ledger_per_lp () =
  let run ~shards ~workers =
    let rep, t =
      Experiments.Multihost.run ~shards ~workers ~hosts:2 (xen_cfg 4242)
    in
    let flips =
      Array.to_list t.Experiments.Multihost.hosts
      |> List.map (fun (h : Experiments.Multihost.host) ->
             Xen.Grant_table.flips
               h.Experiments.Multihost.tb.Experiments.Testbed.grant_table)
    in
    (render_report rep t, flips, t)
  in
  let ref_render, ref_flips, _ = run ~shards:1 ~workers:1 in
  let par_render, par_flips, t = run ~shards:2 ~workers:2 in
  check Alcotest.string "forced two-domain run byte-identical" ref_render
    par_render;
  check (Alcotest.list Alcotest.int) "per-host flip ledgers identical"
    ref_flips par_flips;
  List.iter
    (fun f -> check_bool "host actually flipped pages" true (f > 0))
    ref_flips;
  (* Independence: clearing one host's ledger must not touch the
     other's — with the old global counter this was impossible. *)
  let gnt i =
    t.Experiments.Multihost.hosts.(i).Experiments.Multihost.tb
      .Experiments.Testbed.grant_table
  in
  let f1 = Xen.Grant_table.flips (gnt 1) in
  Xen.Grant_table.reset_flips (gnt 0);
  check_int "host0 ledger cleared" 0 (Xen.Grant_table.flips (gnt 0));
  check_int "host1 ledger untouched by host0 reset" f1
    (Xen.Grant_table.flips (gnt 1))

(* Re-running the same configuration twice in one process is also
   byte-stable (no hidden global state). *)
let test_multihost_rerun_stable () =
  let a = multihost_render ~seed:1234 ~shards:2 () in
  let b = multihost_render ~seed:1234 ~shards:2 () in
  check Alcotest.string "rerun identical" a b

let suite =
  [
    ( "sim.engine.accounting",
      [
        Alcotest.test_case "drain skips cancelled past horizon" `Quick
          test_drain_past_horizon_cancelled;
        Alcotest.test_case "horizon inclusive for live events" `Quick
          test_drain_horizon_inclusive;
        Alcotest.test_case "heap-full keeps live consistent" `Quick
          test_heap_full_live_consistency;
        Alcotest.test_case "tw_avg stale mean raises" `Quick
          test_tw_avg_stale_now;
      ] );
    ( "sim.shard",
      [
        Alcotest.test_case "partition validation" `Quick
          test_partition_validation;
        Alcotest.test_case "send contract" `Quick test_send_contract;
        Alcotest.test_case "inbox merge order" `Quick test_inbox_merge_order;
        Alcotest.test_case "ethernet lookahead" `Quick test_lookahead_of_link;
        Alcotest.test_case "forced parallel workers" `Quick
          test_forced_parallel_workers;
        Alcotest.test_case "worker exception propagates" `Quick
          test_worker_exception_propagates;
      ] );
    ( "sim.shard.determinism",
      [
        Alcotest.test_case "sequential vs sharded byte-identical" `Slow
          test_multihost_determinism;
        Alcotest.test_case "rerun stable" `Quick test_multihost_rerun_stable;
        Alcotest.test_case "grant ledger per LP" `Quick
          test_grant_ledger_per_lp;
        Alcotest.test_case "smp schedules shard-invariant" `Slow
          test_smp_schedule_shard_invariant;
      ] );
  ]
