(* Tests for the host CPU substrate: categories, profile accounting, and
   the credit scheduler. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let us = Sim.Time.us

let make_cpu ?cpus ?ctx_switch_cost ?slice ?migration_cost () =
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu =
    Host.Cpu.create engine ?cpus ?ctx_switch_cost ?slice ?migration_cost
      ~profile ()
  in
  (engine, profile, cpu)

let run_for engine t = Sim.Engine.run engine ~until:t

(* ---------- Category ---------- *)

let test_category_equal () =
  check_bool "hyp = hyp" true Host.Category.(equal Hypervisor Hypervisor);
  check_bool "kernel same dom" true Host.Category.(equal (Kernel 1) (Kernel 1));
  check_bool "kernel diff dom" false Host.Category.(equal (Kernel 1) (Kernel 2));
  check_bool "kernel vs user" false Host.Category.(equal (Kernel 1) (User 1));
  check_bool "idle" true Host.Category.(equal Idle Idle)

let test_category_domain () =
  check Alcotest.(option int) "kernel" (Some 3) (Host.Category.domain (Kernel 3));
  check Alcotest.(option int) "user" (Some 4) (Host.Category.domain (User 4));
  check Alcotest.(option int) "hyp" None (Host.Category.domain Hypervisor)

(* ---------- Profile ---------- *)

let test_profile_accumulates () =
  let p = Host.Profile.create () in
  Host.Profile.add p Host.Category.Hypervisor (us 10);
  Host.Profile.add p Host.Category.Hypervisor (us 5);
  Host.Profile.add p (Host.Category.Kernel 1) (us 20);
  check_int "hyp" (us 15) (Host.Profile.total p Host.Category.Hypervisor);
  check_int "kernel" (us 20) (Host.Profile.total p (Host.Category.Kernel 1));
  check_int "busy" (us 35) (Host.Profile.busy p)

let test_profile_report_split () =
  let p = Host.Profile.create () in
  Host.Profile.add p (Host.Category.Kernel 0) (us 30);
  Host.Profile.add p (Host.Category.User 0) (us 10);
  Host.Profile.add p (Host.Category.Kernel 1) (us 20);
  Host.Profile.add p Host.Category.Hypervisor (us 15);
  let r = Host.Profile.report p ~window:(us 100) ~driver_domain:(Some 0) in
  check (Alcotest.float 0.01) "hyp" 15. r.Host.Profile.hyp;
  check (Alcotest.float 0.01) "driver kernel" 30. r.Host.Profile.driver_kernel;
  check (Alcotest.float 0.01) "driver user" 10. r.Host.Profile.driver_user;
  check (Alcotest.float 0.01) "guest kernel" 20. r.Host.Profile.guest_kernel;
  check (Alcotest.float 0.01) "idle" 25. r.Host.Profile.idle

let test_profile_report_no_driver () =
  let p = Host.Profile.create () in
  Host.Profile.add p (Host.Category.Kernel 0) (us 40);
  let r = Host.Profile.report p ~window:(us 100) ~driver_domain:None in
  check (Alcotest.float 0.01) "all guest" 40. r.Host.Profile.guest_kernel;
  check (Alcotest.float 0.01) "no driver" 0. r.Host.Profile.driver_kernel

let test_profile_reset () =
  let p = Host.Profile.create () in
  Host.Profile.add p Host.Category.Hypervisor (us 10);
  Host.Profile.reset p;
  check_int "cleared" 0 (Host.Profile.busy p)

let test_profile_charge_clamps_to_reset () =
  (* Regression: a slice spanning the measurement reset must only charge
     its post-reset portion; the old code charged the whole slice and the
     report summed past 100%. *)
  let p = Host.Profile.create () in
  Host.Profile.reset ~now:(us 100) p;
  (* Slice ran 60..140us: only 40us falls inside the window. *)
  Host.Profile.charge p (Host.Category.Kernel 0) ~start:(us 60) ~stop:(us 140);
  check_int "clamped to window" (us 40)
    (Host.Profile.total p (Host.Category.Kernel 0));
  (* Entirely pre-reset: nothing charged. *)
  Host.Profile.charge p Host.Category.Hypervisor ~start:(us 10) ~stop:(us 90);
  check_int "pre-reset dropped" 0
    (Host.Profile.total p Host.Category.Hypervisor);
  (* Entirely post-reset: charged in full. *)
  Host.Profile.charge p Host.Category.Hypervisor ~start:(us 200) ~stop:(us 230);
  check_int "post-reset full" (us 30)
    (Host.Profile.total p Host.Category.Hypervisor)

let test_profile_rejects_bad_window () =
  let p = Host.Profile.create () in
  Alcotest.check_raises "zero window"
    (Invalid_argument "Profile.report: non-positive window") (fun () ->
      ignore (Host.Profile.report p ~window:0 ~driver_domain:None))

let prop_profile_conservation =
  QCheck.Test.make ~name:"profile fractions sum to ~100%" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 20) (pair (int_range 0 3) (int_range 1 1000)))
    (fun entries ->
      let p = Host.Profile.create () in
      let total = ref 0 in
      List.iter
        (fun (cat, cost) ->
          let c =
            match cat with
            | 0 -> Host.Category.Hypervisor
            | 1 -> Host.Category.Kernel 1
            | 2 -> Host.Category.User 1
            | _ -> Host.Category.Kernel 0
          in
          total := !total + cost;
          Host.Profile.add p c cost)
        entries;
      let window = max 1 !total in
      let r = Host.Profile.report p ~window ~driver_domain:(Some 0) in
      let sum =
        r.Host.Profile.hyp +. r.Host.Profile.driver_kernel
        +. r.Host.Profile.driver_user +. r.Host.Profile.guest_kernel
        +. r.Host.Profile.guest_user +. r.Host.Profile.idle
      in
      Float.abs (sum -. 100.) < 0.01)

(* ---------- Cpu ---------- *)

let test_cpu_executes_in_order () =
  let engine, _, cpu = make_cpu ~ctx_switch_cost:0 () in
  let e = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  let log = ref [] in
  Host.Cpu.post cpu e ~category:(Host.Category.Kernel 0) ~cost:(us 5) (fun () ->
      log := 1 :: !log);
  Host.Cpu.post cpu e ~category:(Host.Category.Kernel 0) ~cost:(us 5) (fun () ->
      log := 2 :: !log);
  run_for engine (Sim.Time.ms 1);
  check (Alcotest.list Alcotest.int) "order" [ 1; 2 ] (List.rev !log)

let test_cpu_accounts_categories () =
  let engine, profile, cpu = make_cpu ~ctx_switch_cost:0 () in
  let e = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  Host.Cpu.post cpu e ~category:(Host.Category.Kernel 0) ~cost:(us 7) ignore;
  Host.Cpu.post cpu e ~category:(Host.Category.User 0) ~cost:(us 3) ignore;
  Host.Cpu.post_irq cpu ~cost:(us 2) ignore;
  run_for engine (Sim.Time.ms 1);
  check_int "kernel" (us 7) (Host.Profile.total profile (Host.Category.Kernel 0));
  check_int "user" (us 3) (Host.Profile.total profile (Host.Category.User 0));
  check_int "hyp" (us 2) (Host.Profile.total profile Host.Category.Hypervisor)

let test_cpu_irq_preempts () =
  let engine, _, cpu = make_cpu ~ctx_switch_cost:0 () in
  let e = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  let log = ref [] in
  (* Queue two entity items; at the end of the first, post an IRQ: it must
     run before the second entity item. *)
  Host.Cpu.post cpu e ~category:(Host.Category.Kernel 0) ~cost:(us 5) (fun () ->
      Host.Cpu.post_irq cpu ~cost:(us 1) (fun () -> log := `Irq :: !log));
  Host.Cpu.post cpu e ~category:(Host.Category.Kernel 0) ~cost:(us 5) (fun () ->
      log := `Second :: !log);
  run_for engine (Sim.Time.ms 1);
  check_bool "irq before second item" true (!log = [ `Second; `Irq ])

let test_cpu_serializes () =
  (* One CPU: total completion time is the sum of costs. *)
  let engine, _, cpu = make_cpu ~ctx_switch_cost:0 () in
  let a = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  let b = Host.Cpu.add_entity cpu ~name:"b" ~weight:256 ~domain:1 in
  let done_at = ref 0 in
  for _ = 1 to 5 do
    Host.Cpu.post cpu a ~category:(Host.Category.Kernel 0) ~cost:(us 10)
      (fun () -> done_at := Sim.Engine.now engine);
    Host.Cpu.post cpu b ~category:(Host.Category.Kernel 1) ~cost:(us 10)
      (fun () -> done_at := Sim.Engine.now engine)
  done;
  run_for engine (Sim.Time.ms 10);
  check_int "100us total" (us 100) !done_at

let test_cpu_fair_share () =
  (* Two always-busy entities with equal weights get ~equal CPU. *)
  let engine, _, cpu = make_cpu ~slice:(us 100) () in
  let a = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  let b = Host.Cpu.add_entity cpu ~name:"b" ~weight:256 ~domain:1 in
  let rec feed e cat () =
    Host.Cpu.post cpu e ~category:cat ~cost:(us 10) (feed e cat)
  in
  feed a (Host.Category.Kernel 0) ();
  feed b (Host.Category.Kernel 1) ();
  run_for engine (Sim.Time.ms 200);
  let ra = Sim.Time.to_sec_f (Host.Cpu.runtime_of a) in
  let rb = Sim.Time.to_sec_f (Host.Cpu.runtime_of b) in
  let ratio = ra /. rb in
  check_bool
    (Printf.sprintf "fair within 20%% (ratio %.2f)" ratio)
    true
    (ratio > 0.8 && ratio < 1.25)

let test_cpu_weighted_share () =
  (* 3:1 weights give roughly 3:1 runtime. *)
  let engine, _, cpu = make_cpu ~slice:(us 100) () in
  let a = Host.Cpu.add_entity cpu ~name:"heavy" ~weight:768 ~domain:0 in
  let b = Host.Cpu.add_entity cpu ~name:"light" ~weight:256 ~domain:1 in
  let rec feed e cat () =
    Host.Cpu.post cpu e ~category:cat ~cost:(us 10) (feed e cat)
  in
  feed a (Host.Category.Kernel 0) ();
  feed b (Host.Category.Kernel 1) ();
  run_for engine (Sim.Time.ms 400);
  let ra = Sim.Time.to_sec_f (Host.Cpu.runtime_of a) in
  let rb = Sim.Time.to_sec_f (Host.Cpu.runtime_of b) in
  let ratio = ra /. rb in
  check_bool
    (Printf.sprintf "3:1 within 40%% (ratio %.2f)" ratio)
    true
    (ratio > 1.8 && ratio < 4.2)

let test_cpu_credit_cap_is_weighted_share () =
  (* Regression: an idle entity's credit bank must cap at its own weighted
     share of one period, not at the full period.  With 3:1 weights the
     light entity is entitled to 1/4 of each 30ms period (7500us); the old
     cap let it bank the whole 30000us and burst far past its share. *)
  let engine, _, cpu = make_cpu () in
  let _heavy = Host.Cpu.add_entity cpu ~name:"heavy" ~weight:768 ~domain:0 in
  let light = Host.Cpu.add_entity cpu ~name:"light" ~weight:256 ~domain:1 in
  (* Both idle: credits only accumulate, across many replenish periods. *)
  run_for engine (Sim.Time.ms 200);
  let share_us = 30_000. *. 256. /. 1024. in
  let banked = Host.Cpu.credits_of light in
  check_bool
    (Printf.sprintf "banked %.0fus <= weighted share %.0fus" banked share_us)
    true
    (banked <= share_us +. 1e-6)

let test_cpu_boost_on_wake () =
  (* A woken (blocked) entity runs before a busy one finishes its slice. *)
  let engine, _, cpu = make_cpu ~ctx_switch_cost:0 ~slice:(Sim.Time.ms 10) () in
  let busy = Host.Cpu.add_entity cpu ~name:"busy" ~weight:256 ~domain:0 in
  let sleeper = Host.Cpu.add_entity cpu ~name:"sleeper" ~weight:256 ~domain:1 in
  let woke_at = ref 0 in
  let rec feed () =
    Host.Cpu.post cpu busy ~category:(Host.Category.Kernel 0) ~cost:(us 10) feed
  in
  feed ();
  ignore
    (Sim.Engine.schedule engine ~delay:(us 55) (fun () ->
         Host.Cpu.post cpu sleeper ~category:(Host.Category.Kernel 1)
           ~cost:(us 1) (fun () -> woke_at := Sim.Engine.now engine)));
  run_for engine (Sim.Time.ms 5);
  (* Without boost the sleeper would wait for the 10ms slice to expire. *)
  check_bool "woken promptly" true (!woke_at < us 100)

let test_cpu_ctx_switch_charged () =
  let engine, profile, cpu = make_cpu ~ctx_switch_cost:(us 2) () in
  let a = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  Host.Cpu.post cpu a ~category:(Host.Category.Kernel 0) ~cost:(us 5) ignore;
  run_for engine (Sim.Time.ms 1);
  (* First dispatch switches from nothing to [a]: one switch. *)
  check_int "switches" 1 (Host.Cpu.ctx_switches cpu);
  check_int "switch time charged to hypervisor" (us 2)
    (Host.Profile.total profile Host.Category.Hypervisor)

let test_cpu_no_switch_same_entity () =
  let engine, _, cpu = make_cpu ~ctx_switch_cost:(us 2) () in
  let a = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  for _ = 1 to 5 do
    Host.Cpu.post cpu a ~category:(Host.Category.Kernel 0) ~cost:(us 5) ignore
  done;
  run_for engine (Sim.Time.ms 1);
  check_int "one switch for five items" 1 (Host.Cpu.ctx_switches cpu)

let test_cpu_is_idle () =
  let engine, _, cpu = make_cpu () in
  let a = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  check_bool "initially idle" true (Host.Cpu.is_idle cpu);
  Host.Cpu.post cpu a ~category:(Host.Category.Kernel 0) ~cost:(us 5) ignore;
  check_bool "busy" false (Host.Cpu.is_idle cpu);
  run_for engine (Sim.Time.ms 1);
  check_bool "idle again" true (Host.Cpu.is_idle cpu)

let test_cpu_zero_cost_work () =
  let engine, _, cpu = make_cpu () in
  let a = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  let ran = ref false in
  Host.Cpu.post cpu a ~category:(Host.Category.Kernel 0) ~cost:0 (fun () ->
      ran := true);
  run_for engine (Sim.Time.ms 1);
  check_bool "ran" true !ran

let test_cpu_rejects_negative () =
  let _, _, cpu = make_cpu () in
  let a = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  Alcotest.check_raises "negative cost" (Invalid_argument "Cpu.post: negative cost")
    (fun () ->
      Host.Cpu.post cpu a ~category:(Host.Category.Kernel 0) ~cost:(-1) ignore);
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Cpu.add_entity: non-positive weight") (fun () ->
      ignore (Host.Cpu.add_entity cpu ~name:"x" ~weight:0 ~domain:9))

let test_cpu_busy_matches_profile () =
  let engine, profile, cpu = make_cpu ~ctx_switch_cost:0 () in
  let a = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  for _ = 1 to 10 do
    Host.Cpu.post cpu a ~category:(Host.Category.Kernel 0) ~cost:(us 3) ignore
  done;
  run_for engine (Sim.Time.ms 1);
  check_int "total busy = profile busy" (Host.Profile.busy profile |> Sim.Time.to_ns)
    (Host.Cpu.total_busy cpu |> Sim.Time.to_ns)

let test_cpu_stop_cancels_replenish () =
  (* Regression: the credit-replenish timer used to reschedule itself
     forever with an [ignore]d handle, so a finished simulation's engine
     never drained. [stop] must cancel it. *)
  let engine, _, cpu = make_cpu () in
  let a = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  Host.Cpu.post cpu a ~category:(Host.Category.Kernel 0) ~cost:(us 5) ignore;
  run_for engine (Sim.Time.ms 1);
  check_bool "replenish timer keeps the engine live" true
    (Sim.Engine.live_pending_count engine > 0);
  Host.Cpu.stop cpu;
  check_int "stopped cpu leaves no live events" 0
    (Sim.Engine.live_pending_count engine);
  (* Idempotent, and the engine stays drained over any horizon. *)
  Host.Cpu.stop cpu;
  run_for engine (Sim.Time.ms 500);
  check_int "still drained" 0 (Sim.Engine.live_pending_count engine)

let test_cpu_credits_integer_exact () =
  (* Regression: credits were a [float] microsecond count; replenishment
     accumulated rounding drift. Integer-nanosecond credits land an idle
     entity's bank {e exactly} on its weighted share of one period. *)
  let engine, _, cpu = make_cpu () in
  let _heavy = Host.Cpu.add_entity cpu ~name:"heavy" ~weight:768 ~domain:0 in
  let light = Host.Cpu.add_entity cpu ~name:"light" ~weight:256 ~domain:1 in
  run_for engine (Sim.Time.ms 200);
  let share_us = 30_000. *. 256. /. 1024. in
  check (Alcotest.float 0.) "banked exactly the weighted share" share_us
    (Host.Cpu.credits_of light)

(* ---------- SMP runqueues ---------- *)

let test_smp_runs_in_parallel () =
  (* Two entities on two CPUs complete concurrently, not serialized. *)
  let engine, _, cpu = make_cpu ~cpus:2 ~ctx_switch_cost:0 () in
  let a = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  let b = Host.Cpu.add_entity cpu ~name:"b" ~weight:256 ~domain:1 in
  check_int "two runqueues" 2 (Host.Cpu.num_cpus cpu);
  check_int "a on cpu0" 0 (Host.Cpu.cpu_of a);
  check_int "b on cpu1" 1 (Host.Cpu.cpu_of b);
  let done_a = ref 0 and done_b = ref 0 in
  Host.Cpu.post cpu a ~category:(Host.Category.Kernel 0) ~cost:(us 100)
    (fun () -> done_a := Sim.Engine.now engine);
  Host.Cpu.post cpu b ~category:(Host.Category.Kernel 1) ~cost:(us 100)
    (fun () -> done_b := Sim.Engine.now engine);
  run_for engine (Sim.Time.ms 1);
  check_int "a done at 100us" (us 100) !done_a;
  check_int "b done at 100us (concurrent)" (us 100) !done_b

let test_smp_wake_migrates_to_idle_cpu () =
  (* Round-robin placement puts c on cpu0 with a; when c wakes while a is
     busy and cpu1 sits idle, c migrates there (and pays the one-shot
     IPI/cold-cache penalty on its first dispatch). *)
  let engine, _, cpu =
    make_cpu ~cpus:2 ~ctx_switch_cost:0 ~migration_cost:(us 9) ()
  in
  let a = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  let _b = Host.Cpu.add_entity cpu ~name:"b" ~weight:256 ~domain:1 in
  let c = Host.Cpu.add_entity cpu ~name:"c" ~weight:256 ~domain:2 in
  check_int "c starts on cpu0" 0 (Host.Cpu.cpu_of c);
  let rec feed () =
    Host.Cpu.post cpu a ~category:(Host.Category.Kernel 0) ~cost:(us 10) feed
  in
  feed ();
  let c_done = ref 0 in
  ignore
    (Sim.Engine.schedule engine ~delay:(us 5) (fun () ->
         Host.Cpu.post cpu c ~category:(Host.Category.Kernel 2) ~cost:(us 10)
           (fun () -> c_done := Sim.Engine.now engine)));
  run_for engine (Sim.Time.us 200);
  check_int "one migration" 1 (Host.Cpu.migrations cpu);
  check_int "c now on cpu1" 1 (Host.Cpu.cpu_of c);
  (* Woken at 5us, 9us migration penalty, 10us of work. *)
  check_int "c paid the migration penalty" (us 24) !c_done

let test_smp_no_migration_when_home_free () =
  (* An entity whose home runqueue is idle stays put: no spurious
     migrations, no penalty. *)
  let engine, _, cpu =
    make_cpu ~cpus:2 ~ctx_switch_cost:0 ~migration_cost:(us 9) ()
  in
  let a = Host.Cpu.add_entity cpu ~name:"a" ~weight:256 ~domain:0 in
  let b = Host.Cpu.add_entity cpu ~name:"b" ~weight:256 ~domain:1 in
  for _ = 1 to 3 do
    Host.Cpu.post cpu a ~category:(Host.Category.Kernel 0) ~cost:(us 10) ignore;
    Host.Cpu.post cpu b ~category:(Host.Category.Kernel 1) ~cost:(us 10) ignore
  done;
  run_for engine (Sim.Time.ms 1);
  check_int "no migrations" 0 (Host.Cpu.migrations cpu);
  check_int "a stayed home" 0 (Host.Cpu.cpu_of a);
  check_int "b stayed home" 1 (Host.Cpu.cpu_of b)

let test_smp_busy_matches_profile () =
  (* Per-runqueue busy accounting still sums to the shared profile. *)
  let engine, profile, cpu = make_cpu ~cpus:4 ~ctx_switch_cost:0 () in
  let es =
    List.init 4 (fun i ->
        Host.Cpu.add_entity cpu
          ~name:(Printf.sprintf "e%d" i)
          ~weight:256 ~domain:i)
  in
  List.iteri
    (fun i e ->
      for _ = 1 to 5 do
        Host.Cpu.post cpu e ~category:(Host.Category.Kernel i) ~cost:(us 3)
          ignore
      done)
    es;
  run_for engine (Sim.Time.ms 1);
  check_int "total busy = profile busy"
    (Host.Profile.busy profile |> Sim.Time.to_ns)
    (Host.Cpu.total_busy cpu |> Sim.Time.to_ns)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "host.category",
      [
        Alcotest.test_case "equality" `Quick test_category_equal;
        Alcotest.test_case "domain" `Quick test_category_domain;
      ] );
    ( "host.profile",
      [
        Alcotest.test_case "accumulates" `Quick test_profile_accumulates;
        Alcotest.test_case "report split" `Quick test_profile_report_split;
        Alcotest.test_case "report no driver" `Quick test_profile_report_no_driver;
        Alcotest.test_case "reset" `Quick test_profile_reset;
        Alcotest.test_case "charge clamps to reset" `Quick
          test_profile_charge_clamps_to_reset;
        Alcotest.test_case "bad window" `Quick test_profile_rejects_bad_window;
        qcheck prop_profile_conservation;
      ] );
    ( "host.cpu",
      [
        Alcotest.test_case "executes in order" `Quick test_cpu_executes_in_order;
        Alcotest.test_case "accounts categories" `Quick test_cpu_accounts_categories;
        Alcotest.test_case "irq preempts" `Quick test_cpu_irq_preempts;
        Alcotest.test_case "serializes" `Quick test_cpu_serializes;
        Alcotest.test_case "fair share" `Quick test_cpu_fair_share;
        Alcotest.test_case "weighted share" `Quick test_cpu_weighted_share;
        Alcotest.test_case "credit cap is weighted share" `Quick
          test_cpu_credit_cap_is_weighted_share;
        Alcotest.test_case "boost on wake" `Quick test_cpu_boost_on_wake;
        Alcotest.test_case "ctx switch charged" `Quick test_cpu_ctx_switch_charged;
        Alcotest.test_case "no switch same entity" `Quick test_cpu_no_switch_same_entity;
        Alcotest.test_case "is_idle" `Quick test_cpu_is_idle;
        Alcotest.test_case "zero cost work" `Quick test_cpu_zero_cost_work;
        Alcotest.test_case "rejects negative" `Quick test_cpu_rejects_negative;
        Alcotest.test_case "busy matches profile" `Quick test_cpu_busy_matches_profile;
        Alcotest.test_case "stop cancels replenish" `Quick
          test_cpu_stop_cancels_replenish;
        Alcotest.test_case "credits are exact integers" `Quick
          test_cpu_credits_integer_exact;
      ] );
    ( "host.cpu.smp",
      [
        Alcotest.test_case "runs in parallel" `Quick test_smp_runs_in_parallel;
        Alcotest.test_case "wake migrates to idle cpu" `Quick
          test_smp_wake_migrates_to_idle_cpu;
        Alcotest.test_case "no migration when home free" `Quick
          test_smp_no_migration_when_home_free;
        Alcotest.test_case "busy matches profile" `Quick
          test_smp_busy_matches_profile;
      ] );
  ]
