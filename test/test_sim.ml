(* Tests for the discrete-event simulation substrate: Sim.Time, Sim.Heap,
   Sim.Engine, Sim.Rng, Sim.Stats. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ---------- Time ---------- *)

let test_time_units () =
  check_int "us" 1_000 (Sim.Time.us 1);
  check_int "ms" 1_000_000 (Sim.Time.ms 1);
  check_int "sec" 1_000_000_000 (Sim.Time.sec 1);
  check_int "ns passthrough" 7 (Sim.Time.ns 7)

let test_time_float_conversions () =
  check_int "of_sec_f" 1_500_000_000 (Sim.Time.of_sec_f 1.5);
  check_int "of_us_f" 2_500 (Sim.Time.of_us_f 2.5);
  check (Alcotest.float 1e-9) "to_sec_f" 0.25 (Sim.Time.to_sec_f (Sim.Time.ms 250));
  check (Alcotest.float 1e-9) "to_us_f" 3.0 (Sim.Time.to_us_f (Sim.Time.ns 3_000))

let test_time_invalid_floats () =
  Alcotest.check_raises "negative" (Invalid_argument "Time.of_sec_f: negative or non-finite")
    (fun () -> ignore (Sim.Time.of_sec_f (-1.)));
  Alcotest.check_raises "nan"
    (Invalid_argument "Time.of_sec_f: negative or non-finite") (fun () ->
      ignore (Sim.Time.of_sec_f Float.nan))

let test_time_arith () =
  check_int "add" 30 (Sim.Time.add 10 20);
  check_int "sub" (-10) (Sim.Time.sub 10 20);
  check_int "diff clamps" 0 (Sim.Time.diff 10 20);
  check_int "diff" 10 (Sim.Time.diff 20 10);
  check_int "mul_int" 60 (Sim.Time.mul_int 20 3);
  check_int "div_int" 7 (Sim.Time.div_int 21 3)

let test_time_rates () =
  check (Alcotest.float 1e-6) "rate" 1000.
    (Sim.Time.rate_per_sec ~events:1000 ~elapsed:(Sim.Time.sec 1));
  check (Alcotest.float 1e-6) "rate zero elapsed" 0.
    (Sim.Time.rate_per_sec ~events:5 ~elapsed:0);
  (* 12304 bits at 1 Gb/s = 12304 ns *)
  check_int "bits_time" 12304
    (Sim.Time.bits_time ~bits:12304 ~rate_bps:1_000_000_000)

let test_time_pp () =
  check Alcotest.string "ns" "42ns" (Sim.Time.to_string (Sim.Time.ns 42));
  check Alcotest.string "us" "1.500us" (Sim.Time.to_string (Sim.Time.ns 1_500));
  check Alcotest.string "s" "2.000s" (Sim.Time.to_string (Sim.Time.sec 2))

(* ---------- Heap ---------- *)

let test_heap_ordering () =
  let h = Sim.Heap.create ~dummy:0 () in
  List.iter (fun v -> Sim.Heap.push h ~key:v v) [ 5; 3; 8; 1; 9; 2 ];
  check Alcotest.(option int) "min_key" (Some 1) (Sim.Heap.min_key h);
  let order = List.init 6 (fun _ -> Sim.Heap.pop_exn h) in
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 2; 3; 5; 8; 9 ] order

let test_heap_fifo_ties () =
  (* Equal keys must pop in insertion order (determinism). *)
  let h = Sim.Heap.create ~dummy:"" () in
  List.iter
    (fun (k, v) -> Sim.Heap.push h ~key:k v)
    [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let tags = List.init 4 (fun _ -> Sim.Heap.pop_exn h) in
  check (Alcotest.list Alcotest.string) "fifo" [ "z"; "a"; "b"; "c" ] tags

let test_heap_empty () =
  let h = Sim.Heap.create ~dummy:0 () in
  check_bool "empty" true (Sim.Heap.is_empty h);
  check Alcotest.(option int) "peek none" None (Sim.Heap.peek h);
  check Alcotest.(option int) "min_key none" None (Sim.Heap.min_key h);
  check Alcotest.(option int) "pop none" None (Sim.Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Sim.Heap.pop_exn h));
  Alcotest.check_raises "peek_exn" (Invalid_argument "Heap.peek_exn: empty heap")
    (fun () -> ignore (Sim.Heap.peek_exn h));
  Alcotest.check_raises "min_key_exn"
    (Invalid_argument "Heap.min_key_exn: empty heap") (fun () ->
      ignore (Sim.Heap.min_key_exn h))

let test_heap_exn_accessors () =
  (* The option-free primitives must agree with their wrappers and leave
     the heap untouched. *)
  let h = Sim.Heap.create ~dummy:0 () in
  List.iter (fun v -> Sim.Heap.push h ~key:v v) [ 7; 4; 6 ];
  check_int "min_key_exn" 4 (Sim.Heap.min_key_exn h);
  check_int "peek_exn" 4 (Sim.Heap.peek_exn h);
  check_int "peek does not pop" 3 (Sim.Heap.length h);
  check_int "pop_exn" 4 (Sim.Heap.pop_exn h);
  check_int "next min" 6 (Sim.Heap.min_key_exn h)

let test_heap_clear () =
  let h = Sim.Heap.create ~dummy:0 () in
  List.iter (fun v -> Sim.Heap.push h ~key:v v) [ 1; 2; 3 ];
  Sim.Heap.clear h;
  check_int "length" 0 (Sim.Heap.length h);
  Sim.Heap.push h ~key:9 9;
  check Alcotest.(option int) "usable after clear" (Some 9) (Sim.Heap.pop h)

(* Out-of-line so the test body holds no local root to the pushed value;
   only the heap's internal array could keep it alive after the pop. *)
let[@inline never] heap_push_pop_tracked h w =
  let v = Bytes.create 64 in
  Weak.set w 0 (Some v);
  Sim.Heap.push h ~key:1 v;
  ignore (Sim.Heap.pop_exn h)

let test_heap_no_pin () =
  (* Popping must release the heap's reference to the value: the vacated
     array slot is overwritten with the dummy, so a popped payload is
     collectable even while the heap object stays live. *)
  let h = Sim.Heap.create ~dummy:Bytes.empty () in
  let w = Weak.create 1 in
  heap_push_pop_tracked h w;
  Gc.full_major ();
  check_bool "heap retains popped value" false (Weak.check w 0);
  (* Keep [h] live past the GC so retention would have been observable. *)
  check_int "heap empty after pop" 0 (Sim.Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops any int list sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Sim.Heap.create ~dummy:0 () in
      List.iter (fun v -> Sim.Heap.push h ~key:v v) xs;
      let out = List.init (List.length xs) (fun _ -> Sim.Heap.pop_exn h) in
      out = List.sort Int.compare xs)

(* ---------- Engine ---------- *)

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule e ~delay:30 (fun () -> log := 30 :: !log));
  ignore (Sim.Engine.schedule e ~delay:10 (fun () -> log := 10 :: !log));
  ignore (Sim.Engine.schedule e ~delay:20 (fun () -> log := 20 :: !log));
  ignore (Sim.Engine.run_to_completion e);
  check (Alcotest.list Alcotest.int) "order" [ 10; 20; 30 ] (List.rev !log)

let test_engine_same_time_fifo () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule e ~delay:100 (fun () -> log := i :: !log))
  done;
  ignore (Sim.Engine.run_to_completion e);
  check (Alcotest.list Alcotest.int) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_time_advances () =
  let e = Sim.Engine.create () in
  let seen = ref (-1) in
  ignore (Sim.Engine.schedule e ~delay:500 (fun () -> seen := Sim.Engine.now e));
  ignore (Sim.Engine.run_to_completion e);
  check_int "time at fire" 500 !seen;
  check_int "now after" 500 (Sim.Engine.now e)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let id = Sim.Engine.schedule e ~delay:10 (fun () -> fired := true) in
  Sim.Engine.cancel e id;
  ignore (Sim.Engine.run_to_completion e);
  check_bool "not fired" false !fired;
  (* double cancel is a no-op *)
  Sim.Engine.cancel e id

let test_engine_run_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.Engine.schedule e ~delay:(i * 10) (fun () -> incr count))
  done;
  Sim.Engine.run e ~until:50;
  check_int "five fired" 5 !count;
  check_int "clock at until" 50 (Sim.Engine.now e);
  Sim.Engine.run e ~until:200;
  check_int "rest fired" 10 !count

let test_engine_nested_schedule () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule e ~delay:10 (fun () ->
         log := `A :: !log;
         ignore (Sim.Engine.schedule e ~delay:5 (fun () -> log := `B :: !log))));
  ignore (Sim.Engine.run_to_completion e);
  check_int "both fired" 2 (List.length !log);
  check_int "final time" 15 (Sim.Engine.now e)

let test_engine_rejects_past () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:10 (fun () -> ()));
  ignore (Sim.Engine.run_to_completion e);
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> ignore (Sim.Engine.schedule_at e 5 (fun () -> ())));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Sim.Engine.schedule e ~delay:(-1) (fun () -> ())))

let test_engine_event_limit () =
  let e = Sim.Engine.create () in
  (* Self-perpetuating event chain. *)
  let rec loop () = ignore (Sim.Engine.schedule e ~delay:1 loop) in
  loop ();
  match Sim.Engine.run_to_completion ~limit:100 e with
  | `Event_limit -> check_int "fired" 100 (Sim.Engine.fired_count e)
  | `Completed -> Alcotest.fail "should have hit the limit"

let test_engine_live_pending () =
  let e = Sim.Engine.create () in
  let a = Sim.Engine.schedule e ~delay:10 (fun () -> ()) in
  ignore (Sim.Engine.schedule e ~delay:20 (fun () -> ()));
  check_int "two live" 2 (Sim.Engine.live_pending_count e);
  Sim.Engine.cancel e a;
  check_int "cancelled not counted" 1 (Sim.Engine.live_pending_count e);
  Sim.Engine.cancel e a;
  check_int "double cancel no-op" 1 (Sim.Engine.live_pending_count e);
  (* The queue still physically holds the cancelled tombstone. *)
  check_int "queue holds both" 2 (Sim.Engine.pending_count e);
  ignore (Sim.Engine.run_to_completion e);
  check_int "drained" 0 (Sim.Engine.live_pending_count e)

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:7 and b = Sim.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Sim.Rng.int64 a = Sim.Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Sim.Rng.int64 a <> Sim.Rng.int64 b then differs := true
  done;
  check_bool "streams differ" true !differs

let test_rng_bounds () =
  let r = Sim.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: non-positive bound")
    (fun () -> ignore (Sim.Rng.int r 0))

let test_rng_float_range () =
  let r = Sim.Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.float r 2.5 in
    check_bool "in [0, 2.5)" true (v >= 0. && v < 2.5)
  done

let test_rng_split_independent () =
  let parent = Sim.Rng.create ~seed:9 in
  let child = Sim.Rng.split parent in
  check_bool "different values" true (Sim.Rng.int64 parent <> Sim.Rng.int64 child)

let test_rng_shuffle_permutes () =
  let r = Sim.Rng.create ~seed:11 in
  let arr = Array.init 50 Fun.id in
  let copy = Array.copy arr in
  Sim.Rng.shuffle r arr;
  Array.sort Int.compare arr;
  check_bool "same multiset" true (arr = copy)

let prop_rng_exponential_positive =
  QCheck.Test.make ~name:"exponential draws are positive" ~count:100
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let r = Sim.Rng.create ~seed in
      Sim.Rng.exponential r ~mean:5.0 > 0.)

(* ---------- Stats ---------- *)

let test_counter () =
  let c = Sim.Stats.Counter.create () in
  Sim.Stats.Counter.incr c;
  Sim.Stats.Counter.add c 5;
  check_int "value" 6 (Sim.Stats.Counter.value c);
  Sim.Stats.Counter.reset c;
  check_int "reset" 0 (Sim.Stats.Counter.value c)

let test_meter () =
  let m = Sim.Stats.Meter.create () in
  for _ = 1 to 10 do
    Sim.Stats.Meter.mark m ~bytes:1_000
  done;
  check_int "events" 10 (Sim.Stats.Meter.events m);
  check_int "bytes" 10_000 (Sim.Stats.Meter.bytes m);
  (* 10 kB in 1 ms = 80 Mb/s *)
  check (Alcotest.float 1e-6) "mbps" 80.
    (Sim.Stats.Meter.rate_mbps m ~elapsed:(Sim.Time.ms 1))

let test_tw_avg () =
  let a = Sim.Stats.Tw_avg.create ~now:0 ~value:0. in
  Sim.Stats.Tw_avg.set a ~now:(Sim.Time.sec 1) 10.;
  (* 0 for 1s, 10 for 1s -> mean 5 *)
  check (Alcotest.float 1e-6) "mean" 5.
    (Sim.Stats.Tw_avg.mean a ~now:(Sim.Time.sec 2));
  Alcotest.check_raises "backwards" (Invalid_argument "Tw_avg: time going backwards")
    (fun () -> Sim.Stats.Tw_avg.set a ~now:0 3.)

let test_histogram () =
  let h = Sim.Stats.Histogram.create () in
  List.iter (Sim.Stats.Histogram.add h) [ 1; 2; 4; 100; 1000 ];
  check_int "count" 5 (Sim.Stats.Histogram.count h);
  check_int "max" 1000 (Sim.Stats.Histogram.max_value h);
  check_int "min" 1 (Sim.Stats.Histogram.min_value h);
  check (Alcotest.float 1e-6) "mean" 221.4 (Sim.Stats.Histogram.mean h);
  check_bool "p50 below p99" true
    (Sim.Stats.Histogram.percentile h 50. <= Sim.Stats.Histogram.percentile h 99.)

let prop_histogram_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentiles are monotone" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 0 100_000))
    (fun xs ->
      let h = Sim.Stats.Histogram.create () in
      List.iter (Sim.Stats.Histogram.add h) xs;
      let p25 = Sim.Stats.Histogram.percentile h 25. in
      let p50 = Sim.Stats.Histogram.percentile h 50. in
      let p99 = Sim.Stats.Histogram.percentile h 99. in
      p25 <= p50 && p50 <= p99)

(* Regression: p=0 must be exactly the smallest recorded value, not the
   lower edge of bucket 0.  With a single sample of 100, the old scan
   started at bucket 0 and returned 0. *)
let test_histogram_p0_is_min () =
  let h = Sim.Stats.Histogram.create () in
  Sim.Stats.Histogram.add h 100;
  check_int "p0 = min" 100 (Sim.Stats.Histogram.percentile h 0.);
  check_int "negative p clamps to min" 100 (Sim.Stats.Histogram.percentile h (-5.));
  Sim.Stats.Histogram.add h 7;
  Sim.Stats.Histogram.add h 5000;
  check_int "p0 tracks new min" 7 (Sim.Stats.Histogram.percentile h 0.);
  check_bool "p0 <= p50" true
    (Sim.Stats.Histogram.percentile h 0. <= Sim.Stats.Histogram.percentile h 50.)

(* ---------- Json ---------- *)

let test_json_print () =
  let j =
    Sim.Json.Obj
      [
        ("a", Sim.Json.Int 1);
        ("b", Sim.Json.List [ Sim.Json.Bool true; Sim.Json.Null ]);
        ("c", Sim.Json.String "x\"y\n");
        ("d", Sim.Json.Float 1.5);
      ]
  in
  check Alcotest.string "compact"
    {|{"a":1,"b":[true,null],"c":"x\"y\n","d":1.5}|}
    (Sim.Json.to_string j)

let test_json_roundtrip () =
  let j =
    Sim.Json.Obj
      [
        ("n", Sim.Json.Int (-42));
        ("f", Sim.Json.Float 3.25);
        ("s", Sim.Json.String "hello \\ world");
        ("l", Sim.Json.List [ Sim.Json.Int 0; Sim.Json.Obj [] ]);
      ]
  in
  let text = Sim.Json.to_string j in
  match Sim.Json.parse text with
  | Ok j' -> check Alcotest.string "reprint equal" text (Sim.Json.to_string j')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Sim.Json.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    bad

(* ---------- Metrics ---------- *)

let test_metrics_get_or_create () =
  let m = Sim.Metrics.create () in
  let c1 = Sim.Metrics.counter m "hits" ~labels:[ ("x", "1"); ("a", "2") ] in
  (* Same name, same labels in a different order: same underlying counter. *)
  let c2 = Sim.Metrics.counter m "hits" ~labels:[ ("a", "2"); ("x", "1") ] in
  Sim.Stats.Counter.incr c1;
  Sim.Stats.Counter.incr c2;
  check_int "shared" 2 (Sim.Stats.Counter.value c1);
  check_int "one series" 1 (Sim.Metrics.size m)

let test_metrics_kind_mismatch () =
  let m = Sim.Metrics.create () in
  ignore (Sim.Metrics.counter m "thing" ~labels:[]);
  match Sim.Metrics.meter m "thing" ~labels:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on kind mismatch"

let test_metrics_json_sorted_deterministic () =
  let m = Sim.Metrics.create () in
  Sim.Metrics.gauge m "z.last" ~labels:[] (fun () -> 3);
  Sim.Metrics.gauge m "a.first" ~labels:[ ("dom", "1") ] (fun () -> 1);
  Sim.Metrics.gauge_f m "m.mid" ~labels:[] (fun () -> 2.5);
  let s1 = Sim.Json.to_string (Sim.Metrics.to_json m) in
  let s2 = Sim.Json.to_string (Sim.Metrics.to_json m) in
  check Alcotest.string "stable" s1 s2;
  check Alcotest.string "sorted keys"
    {|{"a.first{dom=1}":1,"m.mid":2.5,"z.last":3}|} s1

let test_metrics_histogram_export () =
  let m = Sim.Metrics.create () in
  let h = Sim.Metrics.histogram m "lat" ~labels:[] in
  List.iter (Sim.Stats.Histogram.add h) [ 10; 20; 30 ];
  match Sim.Json.parse (Sim.Json.to_string (Sim.Metrics.to_json m)) with
  | Ok j -> (
      match Sim.Json.member "lat" j with
      | Some lat ->
          check_bool "has count=3" true
            (Sim.Json.member "count" lat = Some (Sim.Json.Int 3))
      | None -> Alcotest.fail "lat series missing")
  | Error e -> Alcotest.failf "metrics JSON unparseable: %s" e

(* ---------- Trace recorder / Chrome export ---------- *)

(* Golden test: a tiny hand-built recording must serialize to exactly this
   Chrome trace_event JSON, byte for byte. *)
let test_recorder_chrome_golden () =
  let r = Sim.Trace.Recorder.create () in
  Sim.Trace.set_sink (Some (Sim.Trace.Recorder.sink r));
  Sim.Trace.set_filter None;
  Sim.Trace.Recorder.set_process_name r ~pid:0 "hypervisor";
  Sim.Trace.instant ~time:(Sim.Time.us 1) ~tag:"hypercall" ~pid:1
    ~args:[ ("cost_ns", Sim.Trace.Int 700) ]
    "grant_map";
  Sim.Trace.complete ~time:(Sim.Time.us 2) ~dur:(Sim.Time.us 3) ~tag:"sched"
    ~pid:2 ~tid:4 "guest0";
  Sim.Trace.set_sink None;
  let expected =
    {|{"traceEvents":[{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"hypervisor"}},{"name":"grant_map","cat":"hypercall","ph":"i","ts":1,"s":"t","pid":1,"tid":0,"args":{"cost_ns":700}},{"name":"guest0","cat":"sched","ph":"X","ts":2,"dur":3,"pid":2,"tid":4}],"displayTimeUnit":"ms"}|}
  in
  check Alcotest.string "golden chrome json" expected
    (Sim.Trace.Recorder.to_chrome_string r)

let test_recorder_filter_and_spans () =
  let r = Sim.Trace.Recorder.create () in
  Sim.Trace.set_sink (Some (Sim.Trace.Recorder.sink r));
  Sim.Trace.set_filter (Some (fun tag -> tag = "dma"));
  Sim.Trace.span_begin ~time:0 ~tag:"dma" "xfer";
  Sim.Trace.span_end ~time:(Sim.Time.us 5) ~tag:"dma" "xfer";
  Sim.Trace.instant ~time:0 ~tag:"sched" "dropped-by-filter";
  Sim.Trace.set_filter None;
  Sim.Trace.set_sink None;
  check_int "only dma events" 2 (Sim.Trace.Recorder.count r);
  match Sim.Json.parse (Sim.Trace.Recorder.to_chrome_string r) with
  | Error e -> Alcotest.failf "chrome json unparseable: %s" e
  | Ok j -> (
      match Sim.Json.member "traceEvents" j with
      | Some (Sim.Json.List evs) -> check_int "B and E" 2 (List.length evs)
      | _ -> Alcotest.fail "traceEvents missing")

let test_recorder_file_roundtrip () =
  let r = Sim.Trace.Recorder.create () in
  Sim.Trace.set_sink (Some (Sim.Trace.Recorder.sink r));
  Sim.Trace.instant ~time:0 ~tag:"irq" "virq";
  Sim.Trace.set_sink None;
  let path = Filename.temp_file "cdna_trace" ".json" in
  let oc = open_out path in
  output_string oc (Sim.Trace.Recorder.to_chrome_string r);
  close_out oc;
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Sim.Json.parse text with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "written trace file unparseable: %s" e

(* ---------- Fault_inject ---------- *)

module FI = Sim.Fault_inject

let bool_series = Alcotest.list Alcotest.bool

let test_fi_trigger_semantics () =
  let fi = FI.create ~seed:1 in
  FI.arm fi ~site:"always" (FI.plan FI.Always);
  FI.arm fi ~site:"once" (FI.plan FI.One_shot);
  FI.arm fi ~site:"third" (FI.plan (FI.Nth 3));
  FI.arm fi ~site:"even" (FI.plan (FI.Every_nth 2));
  let series site = List.init 6 (fun _ -> FI.fire fi ~site ()) in
  check bool_series "always" [ true; true; true; true; true; true ]
    (series "always");
  check bool_series "one shot" [ true; false; false; false; false; false ]
    (series "once");
  check bool_series "nth 3" [ false; false; true; false; false; false ]
    (series "third");
  check bool_series "every 2nd" [ false; true; false; true; false; true ]
    (series "even");
  check_int "observed" 6 (FI.observed fi ~site:"always");
  check_int "injected" 1 (FI.injected fi ~site:"once");
  check_int "total across sites" 11 (FI.total_injected fi)

let test_fi_filters () =
  let fi = FI.create ~seed:1 in
  FI.arm fi ~site:"s" (FI.plan ~ctx:(2, 4) FI.Always);
  check_bool "ctx in range" true (FI.fire fi ~site:"s" ~ctx:3 ());
  check_bool "ctx below" false (FI.fire fi ~site:"s" ~ctx:1 ());
  check_bool "ctx above" false (FI.fire fi ~site:"s" ~ctx:5 ());
  (* An event without the attribute never matches a filtering plan. *)
  check_bool "no ctx attribute" false (FI.fire fi ~site:"s" ());
  FI.arm fi ~site:"a" (FI.plan ~addr:(4096, 8191) FI.Always);
  check_bool "addr in range" true (FI.fire fi ~site:"a" ~addr:4096 ());
  check_bool "addr out of range" false (FI.fire fi ~site:"a" ~addr:8192 ());
  check_bool "unarmed site" false (FI.fire fi ~site:"other" ());
  FI.disarm fi ~site:"s";
  check_bool "disarmed" false (FI.fire fi ~site:"s" ~ctx:3 ());
  (* Observation counting survives disarm. *)
  check_int "still observing" 5 (FI.observed fi ~site:"s")

let test_fi_determinism () =
  let series seed =
    let fi = FI.create ~seed in
    FI.arm fi ~site:"p" (FI.plan (FI.Probability 0.3));
    List.init 200 (fun _ -> FI.fire fi ~site:"p" ())
  in
  check bool_series "same seed, same stream" (series 42) (series 42);
  check_bool "different seed differs" true (series 1 <> series 2);
  (* Plans draw from private split-off streams: firing another plan
     between events must not perturb the decisions. *)
  let interleaved =
    let fi = FI.create ~seed:42 in
    FI.arm fi ~site:"p" (FI.plan (FI.Probability 0.3));
    FI.arm fi ~site:"q" (FI.plan (FI.Probability 0.9));
    List.init 200 (fun _ ->
        ignore (FI.fire fi ~site:"q" ());
        FI.fire fi ~site:"p" ())
  in
  check bool_series "other plans do not perturb" (series 42) interleaved

let test_fi_plan_validation () =
  Alcotest.check_raises "empty ctx range"
    (Invalid_argument "Fault_inject.plan: empty ctx range") (fun () ->
      ignore (FI.plan ~ctx:(5, 4) FI.Always));
  Alcotest.check_raises "empty addr range"
    (Invalid_argument "Fault_inject.plan: empty addr range") (fun () ->
      ignore (FI.plan ~addr:(1, 0) FI.Always));
  Alcotest.check_raises "nth < 1"
    (Invalid_argument "Fault_inject.plan: n must be >= 1") (fun () ->
      ignore (FI.plan (FI.Nth 0)));
  Alcotest.check_raises "every_nth < 1"
    (Invalid_argument "Fault_inject.plan: n must be >= 1") (fun () ->
      ignore (FI.plan (FI.Every_nth 0)));
  Alcotest.check_raises "probability > 1"
    (Invalid_argument "Fault_inject.plan: probability outside [0, 1]")
    (fun () -> ignore (FI.plan (FI.Probability 1.5)));
  Alcotest.check_raises "probability < 0"
    (Invalid_argument "Fault_inject.plan: probability outside [0, 1]")
    (fun () -> ignore (FI.plan (FI.Probability (-0.1))))

let prop_fi_every_nth_rate =
  QCheck.Test.make ~name:"every_nth injects exactly floor(events/n) times"
    ~count:100
    QCheck.(pair (int_range 1 20) (int_range 0 200))
    (fun (n, events) ->
      let fi = FI.create ~seed:5 in
      FI.arm fi ~site:"s" (FI.plan (FI.Every_nth n));
      for _ = 1 to events do
        ignore (FI.fire fi ~site:"s" ())
      done;
      FI.injected fi ~site:"s" = events / n
      && FI.observed fi ~site:"s" = events)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "sim.time",
      [
        Alcotest.test_case "units" `Quick test_time_units;
        Alcotest.test_case "float conversions" `Quick test_time_float_conversions;
        Alcotest.test_case "invalid floats" `Quick test_time_invalid_floats;
        Alcotest.test_case "arithmetic" `Quick test_time_arith;
        Alcotest.test_case "rates" `Quick test_time_rates;
        Alcotest.test_case "pretty printing" `Quick test_time_pp;
      ] );
    ( "sim.heap",
      [
        Alcotest.test_case "ordering" `Quick test_heap_ordering;
        Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "empty" `Quick test_heap_empty;
        Alcotest.test_case "exn accessors" `Quick test_heap_exn_accessors;
        Alcotest.test_case "clear" `Quick test_heap_clear;
        Alcotest.test_case "pop releases value" `Quick test_heap_no_pin;
        qcheck prop_heap_sorts;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "ordering" `Quick test_engine_ordering;
        Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo;
        Alcotest.test_case "time advances" `Quick test_engine_time_advances;
        Alcotest.test_case "cancel" `Quick test_engine_cancel;
        Alcotest.test_case "run until" `Quick test_engine_run_until;
        Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
        Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
        Alcotest.test_case "event limit" `Quick test_engine_event_limit;
        Alcotest.test_case "live pending count" `Quick test_engine_live_pending;
      ] );
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "int bounds" `Quick test_rng_bounds;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "split" `Quick test_rng_split_independent;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        qcheck prop_rng_exponential_positive;
      ] );
    ( "sim.stats",
      [
        Alcotest.test_case "counter" `Quick test_counter;
        Alcotest.test_case "meter" `Quick test_meter;
        Alcotest.test_case "time-weighted avg" `Quick test_tw_avg;
        Alcotest.test_case "histogram" `Quick test_histogram;
        Alcotest.test_case "histogram p0 is min" `Quick test_histogram_p0_is_min;
        qcheck prop_histogram_percentile_monotone;
      ] );
    ( "sim.json",
      [
        Alcotest.test_case "print" `Quick test_json_print;
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
      ] );
    ( "sim.metrics",
      [
        Alcotest.test_case "get-or-create" `Quick test_metrics_get_or_create;
        Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
        Alcotest.test_case "json sorted deterministic" `Quick
          test_metrics_json_sorted_deterministic;
        Alcotest.test_case "histogram export" `Quick test_metrics_histogram_export;
      ] );
    ( "sim.trace",
      [
        Alcotest.test_case "chrome golden" `Quick test_recorder_chrome_golden;
        Alcotest.test_case "filter and spans" `Quick test_recorder_filter_and_spans;
        Alcotest.test_case "file roundtrip" `Quick test_recorder_file_roundtrip;
      ] );
    ( "sim.fault_inject",
      [
        Alcotest.test_case "trigger semantics" `Quick test_fi_trigger_semantics;
        Alcotest.test_case "ctx/addr filters" `Quick test_fi_filters;
        Alcotest.test_case "determinism" `Quick test_fi_determinism;
        Alcotest.test_case "plan validation" `Quick test_fi_plan_validation;
        qcheck prop_fi_every_nth_rate;
      ] );
  ]
