(* Integration tests over the experiment harness: full-system runs with
   millisecond-scale measurement windows. These assert the qualitative
   results of the paper — who wins, that profiles are conserved, that the
   datapath is loss- and corruption-free — rather than exact numbers. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* Tiny but long-enough-to-stabilize windows keep the suite fast. *)
let tiny cfg =
  {
    cfg with
    Experiments.Config.warmup = Sim.Time.ms 20;
    duration = Sim.Time.ms 40;
  }

let cdna_tx =
  tiny
    {
      Experiments.Config.default with
      Experiments.Config.system = Experiments.Config.Cdna_sys;
      pattern = Workload.Pattern.Tx;
    }

let xen_tx =
  tiny
    {
      cdna_tx with
      Experiments.Config.system = Experiments.Config.Xen_sw;
      nic = Experiments.Config.Intel;
    }

let profile_sum (p : Host.Profile.report) =
  p.Host.Profile.hyp +. p.Host.Profile.driver_kernel
  +. p.Host.Profile.driver_user +. p.Host.Profile.guest_kernel
  +. p.Host.Profile.guest_user +. p.Host.Profile.idle

let test_cdna_tx_saturates () =
  let m = Experiments.Run.run cdna_tx in
  check_bool
    (Printf.sprintf "near line rate (%.0f)" m.Experiments.Run.tx_mbps)
    true
    (m.Experiments.Run.tx_mbps > 1800.);
  check_bool "substantial idle" true
    (m.Experiments.Run.profile.Host.Profile.idle > 30.);
  check_int "no faults" 0 m.Experiments.Run.faults;
  check_int "no drops" 0 m.Experiments.Run.rx_drops

let test_cdna_beats_xen_tx () =
  let c = Experiments.Run.run cdna_tx in
  let x = Experiments.Run.run xen_tx in
  check_bool "higher throughput" true
    (c.Experiments.Run.tx_mbps > x.Experiments.Run.tx_mbps);
  check_bool "more idle" true
    (c.Experiments.Run.profile.Host.Profile.idle
    > x.Experiments.Run.profile.Host.Profile.idle);
  (* In Xen the driver domain burns CPU; in CDNA it does essentially
     nothing (the central claim of the paper). *)
  check_bool "xen driver domain busy" true
    (x.Experiments.Run.profile.Host.Profile.driver_kernel > 20.);
  check_bool "cdna driver domain idle" true
    (c.Experiments.Run.profile.Host.Profile.driver_kernel < 1.)

let test_cdna_beats_xen_rx () =
  let c =
    Experiments.Run.run { cdna_tx with Experiments.Config.pattern = Workload.Pattern.Rx }
  in
  let x =
    Experiments.Run.run { xen_tx with Experiments.Config.pattern = Workload.Pattern.Rx }
  in
  check_bool "higher rx throughput" true
    (c.Experiments.Run.rx_mbps > x.Experiments.Run.rx_mbps);
  (* The paper's receive gap is even larger than transmit. *)
  check_bool "receive gap substantial" true
    (c.Experiments.Run.rx_mbps /. x.Experiments.Run.rx_mbps > 1.3)

let test_profiles_conserved () =
  List.iter
    (fun cfg ->
      let m = Experiments.Run.run cfg in
      let s = profile_sum m.Experiments.Run.profile in
      check_bool
        (Printf.sprintf "profile sums to 100 (%s: %.1f)"
           (Experiments.Config.describe cfg) s)
        true
        (Float.abs (s -. 100.) < 1.0))
    [ cdna_tx; xen_tx ]

let test_protection_off_frees_hypervisor_time () =
  let on = Experiments.Run.run cdna_tx in
  let off =
    Experiments.Run.run
      { cdna_tx with Experiments.Config.protection = Cdna.Cdna_costs.Disabled }
  in
  check_bool "same throughput" true
    (Float.abs (on.Experiments.Run.tx_mbps -. off.Experiments.Run.tx_mbps) < 50.);
  check_bool "hypervisor time collapses" true
    (off.Experiments.Run.profile.Host.Profile.hyp
    < on.Experiments.Run.profile.Host.Profile.hyp /. 2.);
  check_bool "idle grows" true
    (off.Experiments.Run.profile.Host.Profile.idle
    > on.Experiments.Run.profile.Host.Profile.idle)

let test_iommu_between_bounds () =
  let full = Experiments.Run.run cdna_tx in
  let iommu =
    Experiments.Run.run
      { cdna_tx with Experiments.Config.protection = Cdna.Cdna_costs.Iommu }
  in
  let off =
    Experiments.Run.run
      { cdna_tx with Experiments.Config.protection = Cdna.Cdna_costs.Disabled }
  in
  let h m = m.Experiments.Run.profile.Host.Profile.hyp in
  check_bool "iommu cheaper than full" true (h iommu < h full);
  check_bool "iommu dearer than nothing" true (h iommu > h off)

let test_xen_scales_down_cdna_does_not () =
  let at guests cfg = { cfg with Experiments.Config.guests } in
  let c1 = Experiments.Run.run (at 1 cdna_tx) in
  let c8 = Experiments.Run.run (at 8 cdna_tx) in
  let x1 = Experiments.Run.run (at 1 xen_tx) in
  let x8 = Experiments.Run.run (at 8 xen_tx) in
  check_bool "cdna flat" true
    (Float.abs (c8.Experiments.Run.tx_mbps -. c1.Experiments.Run.tx_mbps)
     /. c1.Experiments.Run.tx_mbps
    < 0.05);
  check_bool "xen declines" true
    (x8.Experiments.Run.tx_mbps < x1.Experiments.Run.tx_mbps *. 0.9);
  check_bool "cdna idle shrinks" true
    (c8.Experiments.Run.profile.Host.Profile.idle
    < c1.Experiments.Run.profile.Host.Profile.idle)

let test_end_to_end_integrity_materialized () =
  (* Every payload byte crosses the simulated DMA engine and is verified
     at the consumer, on all three systems. *)
  List.iter
    (fun cfg ->
      let cfg =
        {
          cfg with
          Experiments.Config.materialize = true;
          warmup = Sim.Time.ms 5;
          duration = Sim.Time.ms 15;
        }
      in
      let m = Experiments.Run.run cfg in
      check_int
        (Printf.sprintf "no corruption (%s)" (Experiments.Config.describe cfg))
        0 m.Experiments.Run.integrity_failures;
      check_bool "and data flowed" true (Experiments.Run.primary_mbps m > 100.))
    [
      cdna_tx;
      xen_tx;
      { cdna_tx with Experiments.Config.pattern = Workload.Pattern.Rx };
      {
        cdna_tx with
        Experiments.Config.system = Experiments.Config.Native;
        nic = Experiments.Config.Intel;
      };
    ]

let test_bidirectional () =
  let m =
    Experiments.Run.run
      { cdna_tx with Experiments.Config.pattern = Workload.Pattern.Bidirectional }
  in
  check_bool "tx flows" true (m.Experiments.Run.tx_mbps > 500.);
  check_bool "rx flows" true (m.Experiments.Run.rx_mbps > 500.)

let test_native_outperforms_virtualized () =
  let native =
    Experiments.Run.run
      {
        xen_tx with
        Experiments.Config.system = Experiments.Config.Native;
        nics = 6;
      }
  in
  let xen = Experiments.Run.run { xen_tx with Experiments.Config.nics = 6 } in
  check_bool "native much faster" true
    (native.Experiments.Run.tx_mbps > 2. *. xen.Experiments.Run.tx_mbps)

let test_determinism () =
  let a = Experiments.Run.run cdna_tx in
  let b = Experiments.Run.run cdna_tx in
  check (Alcotest.float 0.0001) "identical runs" a.Experiments.Run.tx_mbps
    b.Experiments.Run.tx_mbps;
  check_int "identical event counts" a.Experiments.Run.events_fired
    b.Experiments.Run.events_fired

(* The observability layer must be as deterministic as the simulation:
   the same seeded run recorded twice yields byte-identical Chrome JSON
   and metrics JSON, and both parse with our own JSON parser. *)
let traced_run cfg =
  let r = Sim.Trace.Recorder.create () in
  Sim.Trace.set_sink (Some (Sim.Trace.Recorder.sink r));
  let _, tb = Experiments.Run.run_tb cfg in
  Sim.Trace.set_sink None;
  Sim.Trace.Recorder.set_process_name r ~pid:0 "hypervisor";
  List.iter
    (fun d ->
      Sim.Trace.Recorder.set_process_name r
        ~pid:(Xen.Domain.id d + 1)
        (Xen.Domain.name d))
    (Xen.Hypervisor.domains tb.Experiments.Testbed.xen);
  ( Sim.Trace.Recorder.to_chrome_string r,
    Sim.Metrics.to_string tb.Experiments.Testbed.metrics )

let traced_cfg =
  {
    cdna_tx with
    Experiments.Config.warmup = Sim.Time.ms 2;
    duration = Sim.Time.ms 5;
    seed = 1234;
  }

let test_trace_byte_identical () =
  let trace1, metrics1 = traced_run traced_cfg in
  let trace2, metrics2 = traced_run traced_cfg in
  check_bool "trace byte-identical" true (String.equal trace1 trace2);
  check_bool "metrics byte-identical" true (String.equal metrics1 metrics2)

let test_trace_covers_subsystems () =
  let trace, metrics = traced_run traced_cfg in
  (match Sim.Json.parse trace with
  | Error e -> Alcotest.failf "trace not valid JSON: %s" e
  | Ok j -> (
      match Sim.Json.member "traceEvents" j with
      | Some (Sim.Json.List evs) ->
          check_bool "has events" true (List.length evs > 0);
          let cats =
            List.filter_map
              (fun ev ->
                match Sim.Json.member "cat" ev with
                | Some (Sim.Json.String c) -> Some c
                | _ -> None)
              evs
          in
          List.iter
            (fun want ->
              check_bool ("category " ^ want) true (List.mem want cats))
            [ "sched"; "hypercall"; "dma"; "irq" ]
      | _ -> Alcotest.fail "traceEvents missing"));
  match Sim.Json.parse metrics with
  | Error e -> Alcotest.failf "metrics not valid JSON: %s" e
  | Ok (Sim.Json.Obj fields) ->
      check_bool "metrics non-empty" true (List.length fields > 0);
      (* Per-domain and per-NIC-context series must both be present. *)
      check_bool "per-domain series" true
        (List.exists (fun (k, _) ->
             String.starts_with ~prefix:"cpu.entity." k) fields);
      check_bool "per-ctx series" true
        (List.exists (fun (k, _) ->
             String.starts_with ~prefix:"cdna.ctx." k) fields)
  | Ok _ -> Alcotest.fail "metrics JSON is not an object"

let test_report_rendering () =
  let table =
    Experiments.Report.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  check_bool "has separator" true (String.length table > 0);
  check Alcotest.string "csv"
    "a,bb\n1,2\n"
    (Experiments.Report.csv ~header:[ "a"; "bb" ] [ [ "1"; "2" ] ]);
  check Alcotest.string "rate commas" "13,659" (Experiments.Report.rate 13659.);
  check Alcotest.string "pct" "51.0%" (Experiments.Report.pct 51.0)

let test_latency_measured () =
  let c = Experiments.Run.run cdna_tx in
  let x = Experiments.Run.run xen_tx in
  check_bool "latency measured" true (c.Experiments.Run.latency_p50_us > 0.);
  check_bool "p99 >= p50" true
    (c.Experiments.Run.latency_p99_us >= c.Experiments.Run.latency_p50_us);
  (* CDNA removes the driver-domain hop from every packet. *)
  check_bool "cdna lower latency" true
    (c.Experiments.Run.latency_p50_us < x.Experiments.Run.latency_p50_us)

let test_fairness_across_connections () =
  (* The benchmark balances bandwidth across connections (paper 5.1). *)
  List.iter
    (fun cfg ->
      let m = Experiments.Run.run cfg in
      check_bool
        (Printf.sprintf "Jain index near 1 (%s: %.3f)"
           (Experiments.Config.describe cfg)
           m.Experiments.Run.fairness)
        true
        (m.Experiments.Run.fairness > 0.95))
    [
      { cdna_tx with Experiments.Config.guests = 4 };
      { xen_tx with Experiments.Config.guests = 4 };
      {
        cdna_tx with
        Experiments.Config.guests = 2;
        pattern = Workload.Pattern.Rx;
      };
    ]

let test_seed_changes_timing_not_outcome () =
  (* Different seeds jitter event timing (different event counts) but the
     physics stays put (throughput within a percent). *)
  let a = Experiments.Run.run cdna_tx in
  let b = Experiments.Run.run { cdna_tx with Experiments.Config.seed = 1234 } in
  check_bool "different microtiming" true
    (a.Experiments.Run.events_fired <> b.Experiments.Run.events_fired);
  check_bool "same macro behaviour" true
    (Float.abs (a.Experiments.Run.tx_mbps -. b.Experiments.Run.tx_mbps)
     /. a.Experiments.Run.tx_mbps
    < 0.02)

let test_tso_amortizes_cpu () =
  (* With TSO super-frames, the same goodput costs less CPU (or more
     goodput at the same CPU) — the paper's section 6 observation about
     software-only transmit optimization, composed with CDNA. *)
  let base =
    {
      cdna_tx with
      Experiments.Config.nics = 6;
      warmup = Sim.Time.ms 15;
      duration = Sim.Time.ms 30;
    }
  in
  let plain = Experiments.Run.run base in
  let tso =
    Experiments.Run.run { base with Experiments.Config.gso_segments = 8 }
  in
  check_bool "throughput at least as high" true
    (tso.Experiments.Run.tx_mbps >= plain.Experiments.Run.tx_mbps *. 0.98);
  check_bool "idle much higher" true
    (tso.Experiments.Run.profile.Host.Profile.idle
    > plain.Experiments.Run.profile.Host.Profile.idle +. 20.)

let prop_random_configs_conserve =
  QCheck.Test.make ~name:"random configs: profile conserved, no corruption"
    ~count:8
    QCheck.(
      quad (int_range 0 2) (int_range 1 3) (int_range 0 2) (int_range 8 64))
    (fun (sys_sel, guests, pat_sel, window) ->
      let system =
        match sys_sel with
        | 0 -> Experiments.Config.Native
        | 1 -> Experiments.Config.Xen_sw
        | _ -> Experiments.Config.Cdna_sys
      in
      let pattern =
        match pat_sel with
        | 0 -> Workload.Pattern.Tx
        | 1 -> Workload.Pattern.Rx
        | _ -> Workload.Pattern.Bidirectional
      in
      let cfg =
        {
          Experiments.Config.default with
          Experiments.Config.system;
          nic =
            (if system = Experiments.Config.Cdna_sys then
               Experiments.Config.Ricenic
             else Experiments.Config.Intel);
          guests = (if system = Experiments.Config.Native then 1 else guests);
          pattern;
          window;
          materialize = true;
          warmup = Sim.Time.ms 5;
          duration = Sim.Time.ms 10;
        }
      in
      let m = Experiments.Run.run cfg in
      let s = profile_sum m.Experiments.Run.profile in
      Float.abs (s -. 100.) < 1.0
      && m.Experiments.Run.integrity_failures = 0
      && m.Experiments.Run.faults = 0
      && Experiments.Run.primary_mbps m > 0.)

let qcheck = QCheck_alcotest.to_alcotest

let test_stress_bidirectional_materialized () =
  (* Everything at once: 8 guests, both directions, real payload bytes
     verified end to end, on both systems. *)
  List.iter
    (fun system ->
      let m =
        Experiments.Run.run
          {
            Experiments.Config.default with
            Experiments.Config.system;
            nic =
              (if system = Experiments.Config.Cdna_sys then
                 Experiments.Config.Ricenic
               else Experiments.Config.Intel);
            guests = 8;
            pattern = Workload.Pattern.Bidirectional;
            materialize = true;
            warmup = Sim.Time.ms 8;
            duration = Sim.Time.ms 15;
          }
      in
      check_int "no corruption" 0 m.Experiments.Run.integrity_failures;
      check_int "no faults" 0 m.Experiments.Run.faults;
      check_bool "both directions flowed" true
        (m.Experiments.Run.tx_mbps > 50. && m.Experiments.Run.rx_mbps > 50.))
    [ Experiments.Config.Cdna_sys; Experiments.Config.Xen_sw ]

let test_loss_recovery_engages_under_overload () =
  (* The Figure 4 mechanism: at high guest counts the Xen receive path
     overloads, the Intel NIC's buffer drops packets, and the peers'
     go-back-N machinery retransmits. Guard that this actually happens
     (if it silently stopped, Figure 4 would flatten). *)
  let cfg =
    {
      xen_tx with
      Experiments.Config.guests = 16;
      pattern = Workload.Pattern.Rx;
    }
  in
  let tb = Experiments.Testbed.build cfg in
  tb.Experiments.Testbed.start ();
  Sim.Engine.run tb.Experiments.Testbed.engine ~until:(Sim.Time.ms 80);
  let drops =
    List.fold_left
      (fun a (s : Nic.Dp.stats) -> a + s.Nic.Dp.rx_overflow_drops)
      0
      (tb.Experiments.Testbed.nic_stats ())
  in
  let retx =
    List.fold_left
      (fun a p -> a + Experiments.Peer.retransmissions p)
      0 tb.Experiments.Testbed.peers
  in
  check_bool (Printf.sprintf "drops occurred (%d)" drops) true (drops > 0);
  check_bool (Printf.sprintf "retransmissions occurred (%d)" retx) true (retx > 0);
  (* And the system still made useful progress. *)
  let received =
    List.fold_left
      (fun a c -> a + Workload.Connection.received c)
      0 tb.Experiments.Testbed.conns_rx
  in
  check_bool "goodput continued" true (received > 1000)

let test_payload_sweep_shape () =
  (* At small packets both systems are per-packet-CPU-bound and CDNA's
     cheaper path moves substantially more of them. *)
  let small cfg = { cfg with Experiments.Config.payload = 256 } in
  let c = Experiments.Run.run (small cdna_tx) in
  let x = Experiments.Run.run (small xen_tx) in
  check_bool "both CPU-bound" true
    (c.Experiments.Run.profile.Host.Profile.idle < 5.
    && x.Experiments.Run.profile.Host.Profile.idle < 5.);
  check_bool "cdna moves much more" true
    (c.Experiments.Run.tx_mbps > 1.8 *. x.Experiments.Run.tx_mbps)

let test_testbed_oversubscribes_contexts () =
  (* More guests than hardware contexts used to be a hard build error;
     with hypervisor context paging the testbed enables oversubscription
     instead. Every guest still gets a working handle, and at least one
     assignment must have evicted a resident context. *)
  let tb =
    Experiments.Testbed.build { cdna_tx with Experiments.Config.guests = 33 }
  in
  let hyp = Option.get tb.Experiments.Testbed.cdna_hyp in
  check_bool "paging enabled" true (Cdna.Hyp.paging_enabled hyp);
  check_int "one handle per guest per nic" (33 * 2)
    (List.length tb.Experiments.Testbed.cdna_handles);
  check_bool "assignments paged contexts out" true (Cdna.Hyp.ctx_swaps hyp > 0);
  (* At exactly the context limit nothing is paged and paging stays off. *)
  let tb32 =
    Experiments.Testbed.build { cdna_tx with Experiments.Config.guests = 32 }
  in
  let hyp32 = Option.get tb32.Experiments.Testbed.cdna_hyp in
  check_bool "no paging at capacity" false (Cdna.Hyp.paging_enabled hyp32);
  check_int "no swaps at capacity" 0 (Cdna.Hyp.ctx_swaps hyp32)

let test_paper_claims_hold () =
  let verdicts = Experiments.Claims.verify ~quick:true () in
  List.iter
    (fun v ->
      check_bool
        (Printf.sprintf "%s: %s (%s)" v.Experiments.Claims.id
           v.Experiments.Claims.claim v.Experiments.Claims.measured)
        true v.Experiments.Claims.pass)
    verdicts

(* Golden fixtures: trace and metrics output for fixed seeds, captured
   before the hot-path optimizations landed. Any behavioral drift in the
   engine, memory, DMA, or payload layers shows up here as a byte diff.
   Regenerate (deliberately!) with: dune exec test/gen_golden.exe -- test/golden *)
let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_artifacts () =
  List.iter
    (fun seed ->
      let trace, metrics = Golden.traced_artifacts ~seed in
      check_bool
        (Printf.sprintf "trace for seed %d matches golden fixture" seed)
        true
        (String.equal trace (read_file (Printf.sprintf "golden/trace_seed%d.json" seed)));
      check_bool
        (Printf.sprintf "metrics for seed %d matches golden fixture" seed)
        true
        (String.equal metrics
           (read_file (Printf.sprintf "golden/metrics_seed%d.json" seed))))
    Golden.seeds

let suite =
  [
    ( "experiments.single_guest",
      [
        Alcotest.test_case "cdna saturates" `Slow test_cdna_tx_saturates;
        Alcotest.test_case "cdna beats xen tx" `Slow test_cdna_beats_xen_tx;
        Alcotest.test_case "cdna beats xen rx" `Slow test_cdna_beats_xen_rx;
        Alcotest.test_case "profiles conserved" `Slow test_profiles_conserved;
      ] );
    ( "experiments.protection",
      [
        Alcotest.test_case "disabling frees hyp time" `Slow
          test_protection_off_frees_hypervisor_time;
        Alcotest.test_case "iommu between bounds" `Slow test_iommu_between_bounds;
      ] );
    ( "experiments.scaling",
      [ Alcotest.test_case "xen declines, cdna flat" `Slow test_xen_scales_down_cdna_does_not ] );
    ( "experiments.observability",
      [
        Alcotest.test_case "trace byte-identical" `Slow test_trace_byte_identical;
        Alcotest.test_case "golden artifacts" `Slow test_golden_artifacts;
        Alcotest.test_case "trace covers subsystems" `Slow
          test_trace_covers_subsystems;
      ] );
    ( "experiments.integrity",
      [
        Alcotest.test_case "end-to-end materialized" `Slow
          test_end_to_end_integrity_materialized;
        Alcotest.test_case "bidirectional" `Slow test_bidirectional;
        Alcotest.test_case "latency measured" `Slow test_latency_measured;
        Alcotest.test_case "tso amortizes cpu" `Slow test_tso_amortizes_cpu;
        Alcotest.test_case "fairness" `Slow test_fairness_across_connections;
        Alcotest.test_case "seed jitter" `Slow test_seed_changes_timing_not_outcome;
        Alcotest.test_case "stress bidir materialized" `Slow
          test_stress_bidirectional_materialized;
        Alcotest.test_case "paper claims hold" `Slow test_paper_claims_hold;
        Alcotest.test_case "loss recovery engages" `Slow
          test_loss_recovery_engages_under_overload;
        Alcotest.test_case "payload sweep shape" `Slow test_payload_sweep_shape;
        Alcotest.test_case "testbed context oversubscription" `Quick
          test_testbed_oversubscribes_contexts;
        Alcotest.test_case "native baseline" `Slow test_native_outperforms_virtualized;
      ] );
    ( "experiments.harness",
      [
        Alcotest.test_case "determinism" `Slow test_determinism;
        Alcotest.test_case "report rendering" `Quick test_report_rendering;
        qcheck prop_random_configs_conserve;
      ] );
  ]
