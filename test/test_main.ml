let () =
  Alcotest.run "cdna"
    (Test_sim.suite @ Test_host.suite @ Test_memory.suite @ Test_bus.suite
   @ Test_ethernet.suite @ Test_nic.suite @ Test_xen.suite
   @ Test_guestos.suite @ Test_cdna.suite @ Test_workload.suite
   @ Test_openloop.suite @ Test_experiments.suite @ Test_shard.suite
   @ Test_misc.suite)
