(* Benchmark harness.

   Two jobs in one executable:

   1. {b Reproduce the paper}: regenerate every table (1-4) and both
      figures (3, 4) of the evaluation section, printing the simulated
      rows next to the published values.

   2. {b Bechamel benchmarks}: one [Test.make] per table and figure
      (timing the regeneration of that artifact), protection-mode
      ablations, plus micro-benchmarks of the core mechanisms (descriptor
      serialization, mailbox bit-vector decode, sequence-number checks,
      CRC-32, the event engine, grant flips).

   Run with: dune exec bench/main.exe
   Skip the full sweeps with: dune exec bench/main.exe -- --bench-only *)

open Bechamel
open Toolkit

(* ---------- Micro-benchmark subjects ----------

   Plain named closures, so the same subject feeds both the bechamel
   timing run and the direct [Gc.minor_words] measurement of the --json
   mode. *)

let engine_events_fn () =
  let e = Sim.Engine.create () in
  for i = 1 to 10_000 do
    ignore (Sim.Engine.schedule e ~delay:i (fun () -> ()))
  done;
  ignore (Sim.Engine.run_to_completion e)

let heap_churn_fn () =
  let h = Sim.Heap.create ~dummy:0 () in
  for i = 0 to 999 do
    let v = (i * 7919) land 1023 in
    Sim.Heap.push h ~key:v v
  done;
  while not (Sim.Heap.is_empty h) do
    ignore (Sim.Heap.pop h)
  done

let crc32_fn =
  let payload = Ethernet.Frame.materialize_payload ~seed:1 ~len:1500 in
  fun () -> ignore (Ethernet.Crc32.digest payload)

let materialize_fn () =
  ignore (Ethernet.Frame.materialize_payload ~seed:7 ~len:1500)

let descriptor_roundtrip_fn =
  let mem = Memory.Phys_mem.create ~total_pages:4 () in
  let d = { Memory.Dma_desc.addr = 0x1000; len = 1500; flags = 1; seqno = 42 } in
  fun () ->
    Memory.Dma_desc.write mem ~at:64 d;
    ignore (Memory.Dma_desc.read mem ~at:64)

let mailbox_decode_fn =
  let mb = Nic.Mailbox.create ~contexts:32 ~on_event:ignore in
  let mappings =
    Array.init 32 (fun ctx -> Bus.Mmio.map (Nic.Mailbox.region mb ~ctx))
  in
  fun () ->
    for ctx = 0 to 31 do
      Bus.Mmio.write32 mappings.(ctx) ~offset:20 ctx
    done;
    let rec drain () =
      match Nic.Mailbox.next_event mb with
      | Some (ctx, mbox) ->
          Nic.Mailbox.clear_event mb ~ctx ~mbox;
          drain ()
      | None -> ()
    in
    drain ()

let seqno_check_fn () =
  let seq = ref 0 in
  for _ = 1 to 1000 do
    assert (Cdna.Seqno.continuous ~expected:!seq ~got:!seq);
    seq := Cdna.Seqno.next !seq
  done

let grant_flip_fn =
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu = Host.Cpu.create engine ~profile () in
  let mem = Memory.Phys_mem.create ~total_pages:64 () in
  let hyp = Xen.Hypervisor.create engine ~cpu ~mem () in
  let gnt = Xen.Grant_table.create hyp in
  let a =
    Xen.Hypervisor.create_domain hyp ~name:"a" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:8
  in
  let b =
    Xen.Hypervisor.create_domain hyp ~name:"b" ~kind:Xen.Domain.Guest
      ~weight:256 ~mem_pages:8
  in
  let page = List.hd (Xen.Domain.pages a) in
  let here = ref a and there = ref b in
  fun () ->
    (match Xen.Grant_table.flip gnt ~src:!here ~dst:!there page with
    | Ok () -> ()
    | Error _ -> assert false);
    let t = !here in
    here := !there;
    there := t

let bridge_route_fn =
  let b = Guestos.Bridge.create () in
  let ports = Array.init 26 (fun i -> Guestos.Bridge.add_port b i) in
  Array.iteri
    (fun i p -> Guestos.Bridge.learn b p (Ethernet.Mac_addr.make i))
    ports;
  let frame =
    Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 0)
      ~dst:(Ethernet.Mac_addr.make 13) ~kind:Ethernet.Frame.Data ~flow:0 ~seq:0
      ~payload_len:1500 ~payload_seed:0 ()
  in
  fun () -> ignore (Guestos.Bridge.route b ~ingress:ports.(0) frame)

(* One full admit -> drain cycle over a million-flow table: 1M inserts
   through the open-addressing probe, then 1M find+complete with
   backward-shift deletion. The table is preallocated once (~70 MB of
   flat arrays); the per-run loop is the [@cdna.hot] admission path and
   must show minor_words_per_run = 0 in the --json output. *)
let flow_admit_1m_fn =
  let n = 1_000_000 in
  let t = Workload.Flow_table.create ~capacity:n in
  fun () ->
    for i = 0 to n - 1 do
      let key =
        Workload.Flow_table.pack ~src:(i land 0x7FFF) ~dst:(i lsr 15)
      in
      assert (Workload.Flow_table.insert t ~key ~pkts:1 ~now:i >= 0)
    done;
    for i = 0 to n - 1 do
      let key =
        Workload.Flow_table.pack ~src:(i land 0x7FFF) ~dst:(i lsr 15)
      in
      let slot = Workload.Flow_table.find t ~key in
      ignore (Workload.Flow_table.complete t ~slot ~now:(n + i))
    done

(* Single-scan p50..p99.99 read-out of a populated histogram via
   [quantiles_into] (preallocated output; allocation-free). *)
let histogram_multi_quantile_fn =
  let h = Sim.Stats.Histogram.create () in
  let s = ref 424242 in
  for _ = 1 to 100_000 do
    s := Workload.Pattern.xorshift !s;
    Sim.Stats.Histogram.add h (!s land 0xFFFF_FFF)
  done;
  let qs = [| 10.; 25.; 50.; 75.; 90.; 99.; 99.9; 99.99 |] in
  let out = Array.make (Array.length qs) 0 in
  fun () -> Sim.Stats.Histogram.quantiles_into h qs out

let micro_subjects =
  [
    ("micro/engine-10k-events", engine_events_fn);
    ("micro/heap-push-pop-1k", heap_churn_fn);
    ("micro/crc32-1500B", crc32_fn);
    ("micro/materialize-1500B", materialize_fn);
    ("micro/descriptor-write-read", descriptor_roundtrip_fn);
    ("micro/mailbox-write-decode-32ctx", mailbox_decode_fn);
    ("micro/seqno-check-1k", seqno_check_fn);
    ("micro/grant-flip", grant_flip_fn);
    ("micro/bridge-route-26-ports", bridge_route_fn);
    ("micro/flow-admit-1M", flow_admit_1m_fn);
    ("micro/histogram-multi-quantile", histogram_multi_quantile_fn);
  ]

(* ---------- Macro subjects: one per table / figure ---------- *)

(* Very short measurement windows keep one sample under a second; the
   shapes the bechamel numbers describe are simulator costs, not the
   paper's results (those are printed separately below). *)
let bench_cfg base =
  {
    base with
    Experiments.Config.warmup = Sim.Time.ms 10;
    duration = Sim.Time.ms 20;
  }

let run_quietly cfg = ignore (Experiments.Run.run (bench_cfg cfg))

let table1_subject () =
  List.iter run_quietly
    [
      {
        Experiments.Config.default with
        Experiments.Config.system = Experiments.Config.Native;
        nic = Experiments.Config.Intel;
        nics = 6;
      };
      {
        Experiments.Config.default with
        Experiments.Config.system = Experiments.Config.Xen_sw;
        nic = Experiments.Config.Intel;
        nics = 6;
      };
    ]

let t23_subject pattern () =
  List.iter
    (fun (system, nic) ->
      run_quietly
        {
          Experiments.Config.default with
          Experiments.Config.system;
          nic;
          pattern;
        })
    [
      (Experiments.Config.Xen_sw, Experiments.Config.Intel);
      (Experiments.Config.Xen_sw, Experiments.Config.Ricenic);
      (Experiments.Config.Cdna_sys, Experiments.Config.Ricenic);
    ]

let table4_subject () =
  List.iter
    (fun (pattern, protection) ->
      run_quietly
        {
          Experiments.Config.default with
          Experiments.Config.system = Experiments.Config.Cdna_sys;
          pattern;
          protection;
        })
    [
      (Workload.Pattern.Tx, Cdna.Cdna_costs.Full);
      (Workload.Pattern.Tx, Cdna.Cdna_costs.Disabled);
      (Workload.Pattern.Rx, Cdna.Cdna_costs.Full);
      (Workload.Pattern.Rx, Cdna.Cdna_costs.Disabled);
    ]

let figure_subject pattern () =
  List.iter
    (fun (system, nic, guests) ->
      run_quietly
        {
          Experiments.Config.default with
          Experiments.Config.system;
          nic;
          pattern;
          guests;
        })
    [
      (Experiments.Config.Xen_sw, Experiments.Config.Intel, 1);
      (Experiments.Config.Xen_sw, Experiments.Config.Intel, 8);
      (Experiments.Config.Xen_sw, Experiments.Config.Intel, 24);
      (Experiments.Config.Cdna_sys, Experiments.Config.Ricenic, 1);
      (Experiments.Config.Cdna_sys, Experiments.Config.Ricenic, 8);
      (Experiments.Config.Cdna_sys, Experiments.Config.Ricenic, 24);
    ]

let ablation_subject protection () =
  run_quietly
    {
      Experiments.Config.default with
      Experiments.Config.system = Experiments.Config.Cdna_sys;
      protection;
    }

let macro_tests =
  [
    Test.make ~name:"table1/native-vs-xen-6nic" (Staged.stage table1_subject);
    Test.make ~name:"table2/single-guest-tx"
      (Staged.stage (t23_subject Workload.Pattern.Tx));
    Test.make ~name:"table3/single-guest-rx"
      (Staged.stage (t23_subject Workload.Pattern.Rx));
    Test.make ~name:"table4/protection-on-off" (Staged.stage table4_subject);
    Test.make ~name:"figure3/tx-scaling"
      (Staged.stage (figure_subject Workload.Pattern.Tx));
    Test.make ~name:"figure4/rx-scaling"
      (Staged.stage (figure_subject Workload.Pattern.Rx));
    Test.make ~name:"ablation/protection-full"
      (Staged.stage (ablation_subject Cdna.Cdna_costs.Full));
    Test.make ~name:"ablation/protection-iommu"
      (Staged.stage (ablation_subject Cdna.Cdna_costs.Iommu));
    Test.make ~name:"ablation/protection-disabled"
      (Staged.stage (ablation_subject Cdna.Cdna_costs.Disabled));
  ]

let micro_tests =
  List.map
    (fun (name, fn) -> Test.make ~name (Staged.stage fn))
    micro_subjects

(* ---------- Bechamel driver ---------- *)

let estimate_ns ~quota_s tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second quota_s)
      ~kde:None ~stabilize:false ()
  in
  let raw = Hashtbl.create 16 in
  List.iter
    (fun test ->
      Hashtbl.iter (Hashtbl.add raw) (Benchmark.all cfg instances test))
    (List.map (fun t -> Test.make_grouped ~name:"" ~fmt:"%s%s" [ t ]) tests);
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols_result acc ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (v :: _) -> v
        | _ -> Float.nan
      in
      (name, ns) :: acc)
    results []

let run_bechamel ~quota_s tests =
  let rows = estimate_ns ~quota_s tests in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "  %-42s (no estimate)\n" name
      else if ns > 1e9 then Printf.printf "  %-42s %8.2f s/run\n" name (ns /. 1e9)
      else if ns > 1e6 then
        Printf.printf "  %-42s %8.2f ms/run\n" name (ns /. 1e6)
      else if ns > 1e3 then
        Printf.printf "  %-42s %8.2f us/run\n" name (ns /. 1e3)
      else Printf.printf "  %-42s %8.0f ns/run\n" name ns)
    (List.sort compare rows);
  flush stdout

(* --smoke: tiny end-to-end run that exercises the metrics export path
   and fails loudly if the registry comes back empty or malformed.  Wired
   into [dune runtest] (see bench/dune) so CI validates the observability
   layer's output, not just its types. *)
let smoke () =
  let out =
    let rec find i =
      if i >= Array.length Sys.argv - 1 then "bench-smoke-metrics.json"
      else if Sys.argv.(i) = "--smoke" then Sys.argv.(i + 1)
      else find (i + 1)
    in
    if Array.length Sys.argv > 2 then find 1 else "bench-smoke-metrics.json"
  in
  let cfg =
    {
      Experiments.Config.default with
      Experiments.Config.system = Experiments.Config.Cdna_sys;
      nic = Experiments.Config.Ricenic;
      guests = 1;
      nics = 1;
      warmup = Sim.Time.ms 2;
      duration = Sim.Time.ms 5;
    }
  in
  let _, tb = Experiments.Run.run_tb cfg in
  let json = Sim.Metrics.to_json tb.Experiments.Testbed.metrics in
  let text = Sim.Json.to_string json in
  let oc = open_out out in
  output_string oc text;
  output_char oc '\n';
  close_out oc;
  let reread =
    let ic = open_in out in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  (match Sim.Json.parse reread with
  | Error e -> failwith ("smoke: metrics file is not valid JSON: " ^ e)
  | Ok (Sim.Json.Obj ((_ :: _) as fields)) ->
      Printf.printf "bench smoke: %s ok (%d series)\n" out (List.length fields)
  | Ok _ -> failwith "smoke: metrics JSON is empty or not an object");
  exit 0

(* ---------- --json: machine-readable micro results + regression gate ----------

   [--json FILE] measures every micro subject (bechamel ns/run plus a
   direct [Gc.minor_words] delta per run) and writes them as JSON, then
   re-reads the file through our own parser so a malformed export fails
   loudly. [--gate BASELINE] additionally compares against the committed
   baseline and exits non-zero if any subject regressed more than 2x —
   the CI benchmark regression gate (see bench/dune). *)

let arg_value flag =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = flag then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_json_file ~out entries =
  let oc = open_out out in
  output_string oc (Sim.Json.to_string (Sim.Json.Obj entries));
  output_char oc '\n';
  close_out oc

let json_number = function
  | Some (Sim.Json.Float f) -> Some f
  | Some (Sim.Json.Int i) -> Some (float_of_int i)
  | _ -> None

let gate_factor = 2.0

(* Shared ns_per_run gate: compare [parsed] against the committed
   baseline and exit 1 on any regression beyond [gate_factor]. *)
let gate_ns ~label ~subject_names ~baseline_path parsed =
  let baseline =
    match Sim.Json.parse (read_file baseline_path) with
    | Error e -> failwith (label ^ " gate: bad baseline JSON: " ^ e)
    | Ok v -> v
  in
  let ns_of doc name =
    Option.bind (Sim.Json.member name doc) (fun e ->
        json_number (Sim.Json.member "ns_per_run" e))
  in
  let regressions =
    List.filter_map
      (fun name ->
        match (ns_of baseline name, ns_of parsed name) with
        | Some base, Some now when base > 0. && now > gate_factor *. base ->
            Some (name, base, now)
        | _ -> None)
      subject_names
  in
  List.iter
    (fun (name, base, now) ->
      Printf.printf
        "%s gate: REGRESSION %s: %.0f ns/run vs baseline %.0f (>%.1fx)\n"
        label name now base gate_factor)
    regressions;
  match regressions with
  | [] ->
      Printf.printf "%s gate: all %d subjects within %.1fx of %s\n" label
        (List.length subject_names)
        gate_factor baseline_path
  | _ :: _ -> exit 1

let minor_words_per_run fn =
  fn ();
  (* warm: lazy tables, buffer growth *)
  let n = 20 in
  let before = Gc.minor_words () in
  for _ = 1 to n do
    fn ()
  done;
  (Gc.minor_words () -. before) /. float_of_int n

let json_mode ~out ~gate ~quota_s =
  let rows = estimate_ns ~quota_s micro_tests in
  let entries =
    List.map
      (fun (name, fn) ->
        let ns =
          match List.assoc_opt name rows with
          | Some ns when not (Float.is_nan ns) -> ns
          | Some _ | None -> 0.
        in
        let words = minor_words_per_run fn in
        ( name,
          Sim.Json.Obj
            [
              ("ns_per_run", Sim.Json.Float ns);
              ("minor_words_per_run", Sim.Json.Float words);
            ] ))
      micro_subjects
  in
  write_json_file ~out entries;
  let parsed =
    match Sim.Json.parse (read_file out) with
    | Error e -> failwith ("bench --json: emitted invalid JSON: " ^ e)
    | Ok v -> v
  in
  Printf.printf "bench json: wrote %s (%d subjects)\n" out (List.length entries);
  (match gate with
  | None -> ()
  | Some baseline_path ->
      gate_ns ~label:"bench" ~subject_names:(List.map fst micro_subjects)
        ~baseline_path parsed);
  exit 0

(* ---------- --macro: end-to-end sharded-engine benchmark + gate ----------

   [--macro FILE] times complete multi-host runs on the sharded engine —
   the same scenario at shard counts 1 and 4 — reporting wall-clock per
   run and simulation events per wall-second. Honest numbers: on a
   single-core container both shard counts execute on one worker domain
   and the speedup column is ~1.0; on a multicore host the shards=4 row
   reflects real Domain-level parallelism. [--macro-gate BASELINE]
   applies the same >2x ns_per_run regression gate as the micro set. *)

let macro_hosts = 4

let macro_cfg =
  {
    Experiments.Config.default with
    Experiments.Config.system = Experiments.Config.Cdna_sys;
    nic = Experiments.Config.Ricenic;
    guests = 1;
    nics = 1;
    warmup = Sim.Time.ms 1;
    duration = Sim.Time.ms 4;
  }

(* One timed run: total simulation events fired during measurement plus
   the wall-clock for the whole build+run. *)
let macro_once ~shards () =
  let t0 = Unix.gettimeofday () in
  let rep, _ = Experiments.Multihost.run ~shards ~hosts:macro_hosts macro_cfg in
  let wall_s = Unix.gettimeofday () -. t0 in
  let events =
    List.fold_left
      (fun acc (m : Experiments.Run.measurement) ->
        acc + m.Experiments.Run.events_fired)
      0 rep.Experiments.Multihost.measurements
  in
  (wall_s, events)

(* Oversubscribed CDNA: twice as many guests as hardware contexts, so
   the hypervisor's context paging runs on the hot path (every guest's
   traffic periodically faults its context back in, evicting another).
   Times the whole build+run; the gate catches pathological slowdowns in
   the save/restore machinery. *)
let oversub_cfg =
  {
    Experiments.Config.default with
    Experiments.Config.system = Experiments.Config.Cdna_sys;
    nic = Experiments.Config.Ricenic;
    guests = 2 * Cdna.Cnic.num_contexts;
    nics = 1;
    warmup = Sim.Time.ms 1;
    duration = Sim.Time.ms 4;
  }

let oversub_once () =
  let t0 = Unix.gettimeofday () in
  let m, tb = Experiments.Run.run_tb oversub_cfg in
  let wall_s = Unix.gettimeofday () -. t0 in
  (match tb.Experiments.Testbed.cdna_hyp with
  | Some h when Cdna.Hyp.ctx_swaps h > 0 -> ()
  | Some _ | None -> failwith "macro/guests-oversubscription: no context swaps");
  (wall_s, m.Experiments.Run.events_fired)

(* One open-loop scale point at 10^5 standing flows, both systems (the
   [cdna_sim scale] cell where the software path's flow-state touch
   penalty is fully engaged). "Events" here are datapath packet
   services, the dominant event population of the run. Timed in process
   CPU seconds rather than wall-clock: the subject is single-threaded,
   so the two agree on an idle machine, but the gate stays meaningful
   when `dune runtest` runs this concurrently with the test suite. *)
let open_loop_100k_once () =
  let t0 = Sys.time () in
  let p =
    Experiments.Flows.point ~quick:true ~shards:1
      ~scenario:Experiments.Flows.Normal ~seed:42 ~flows:100_000 ()
  in
  let wall_s = Sys.time () -. t0 in
  let pkts =
    p.Experiments.Flows.xen.Experiments.Flows.served_pkts
    + p.Experiments.Flows.cdna.Experiments.Flows.served_pkts
  in
  if pkts = 0 then failwith "macro/open-loop-100k: no packets served";
  (wall_s, pkts)

let macro_subjects =
  [
    ("macro/multihost4-shards1", macro_once ~shards:1);
    ("macro/multihost4-shards4", macro_once ~shards:4);
    ("macro/guests-oversubscription", oversub_once);
    ("macro/open-loop-100k", open_loop_100k_once);
  ]

let macro_mode ~out ~gate =
  let entries =
    List.map
      (fun (name, fn) ->
        (* Warm once (lazy tables, allocator growth), then best of two. *)
        ignore (fn ());
        let w1, events = fn () in
        let w2, _ = fn () in
        let wall_s = Float.min w1 w2 in
        let eps = if wall_s > 0. then float_of_int events /. wall_s else 0. in
        ( name,
          Sim.Json.Obj
            [
              ("ns_per_run", Sim.Json.Float (wall_s *. 1e9));
              ("events_per_sec", Sim.Json.Float eps);
              ("events", Sim.Json.Int events);
            ] ))
      macro_subjects
  in
  write_json_file ~out entries;
  let parsed =
    match Sim.Json.parse (read_file out) with
    | Error e -> failwith ("bench --macro: emitted invalid JSON: " ^ e)
    | Ok v -> v
  in
  Printf.printf "bench macro: wrote %s (%d subjects)\n" out
    (List.length entries);
  (match gate with
  | None -> ()
  | Some baseline_path ->
      gate_ns ~label:"bench macro"
        ~subject_names:(List.map fst macro_subjects)
        ~baseline_path parsed);
  exit 0

let () =
  (match arg_value "--json" with
  | Some out ->
      let quota_s =
        match arg_value "--quota" with
        | Some s -> float_of_string s
        | None -> 0.25
      in
      json_mode ~out ~gate:(arg_value "--gate") ~quota_s
  | None -> ());
  (match arg_value "--macro" with
  | Some out -> macro_mode ~out ~gate:(arg_value "--macro-gate")
  | None -> ());
  if Array.exists (( = ) "--smoke") Sys.argv then smoke ();
  let bench_only = Array.exists (( = ) "--bench-only") Sys.argv in
  if not bench_only then begin
    print_endline
      "==============================================================";
    print_endline
      " Paper reproduction: every table and figure of the evaluation";
    print_endline
      "==============================================================";
    print_newline ();
    Experiments.Tables.print_all ~quick:true ();
    print_newline ();
    Experiments.Figures.print_figure ~title:"Figure 3: transmit scaling"
      ~pattern:Workload.Pattern.Tx
      (Experiments.Figures.figure3 ~quick:true ());
    print_newline ();
    Experiments.Figures.print_figure ~title:"Figure 4: receive scaling"
      ~pattern:Workload.Pattern.Rx
      (Experiments.Figures.figure4 ~quick:true ());
    print_newline ();
    Experiments.Extension.print_all ~quick:true ();
    print_newline ()
  end;
  print_endline "==============================================================";
  print_endline " Bechamel: simulator wall-clock per artifact regeneration";
  print_endline "==============================================================";
  run_bechamel ~quota_s:2.0 macro_tests;
  print_newline ();
  print_endline "==============================================================";
  print_endline " Bechamel: core-mechanism micro-benchmarks";
  print_endline "==============================================================";
  run_bechamel ~quota_s:0.5 micro_tests
