(* Benchmark harness.

   Two jobs in one executable:

   1. {b Reproduce the paper}: regenerate every table (1-4) and both
      figures (3, 4) of the evaluation section, printing the simulated
      rows next to the published values.

   2. {b Bechamel benchmarks}: one [Test.make] per table and figure
      (timing the regeneration of that artifact), protection-mode
      ablations, plus micro-benchmarks of the core mechanisms (descriptor
      serialization, mailbox bit-vector decode, sequence-number checks,
      CRC-32, the event engine, grant flips).

   Run with: dune exec bench/main.exe
   Skip the full sweeps with: dune exec bench/main.exe -- --bench-only *)

open Bechamel
open Toolkit

(* ---------- Micro-benchmark subjects ---------- *)

let test_engine_events =
  Test.make ~name:"micro/engine-10k-events"
    (Staged.stage (fun () ->
         let e = Sim.Engine.create () in
         for i = 1 to 10_000 do
           ignore (Sim.Engine.schedule e ~delay:i (fun () -> ()))
         done;
         ignore (Sim.Engine.run_to_completion e)))

let test_heap_churn =
  Test.make ~name:"micro/heap-push-pop-1k"
    (Staged.stage (fun () ->
         let h = Sim.Heap.create ~compare:Int.compare in
         for i = 0 to 999 do
           Sim.Heap.push h ((i * 7919) land 1023)
         done;
         while not (Sim.Heap.is_empty h) do
           ignore (Sim.Heap.pop h)
         done))

let test_crc32 =
  let payload = Ethernet.Frame.materialize_payload ~seed:1 ~len:1500 in
  Test.make ~name:"micro/crc32-1500B"
    (Staged.stage (fun () -> ignore (Ethernet.Crc32.digest payload)))

let test_materialize =
  Test.make ~name:"micro/materialize-1500B"
    (Staged.stage (fun () ->
         ignore (Ethernet.Frame.materialize_payload ~seed:7 ~len:1500)))

let test_descriptor_roundtrip =
  let mem = Memory.Phys_mem.create ~total_pages:4 () in
  let d = { Memory.Dma_desc.addr = 0x1000; len = 1500; flags = 1; seqno = 42 } in
  Test.make ~name:"micro/descriptor-write-read"
    (Staged.stage (fun () ->
         Memory.Dma_desc.write mem ~at:64 d;
         ignore (Memory.Dma_desc.read mem ~at:64)))

let test_mailbox_decode =
  let mb = Nic.Mailbox.create ~contexts:32 ~on_event:ignore in
  let mappings =
    Array.init 32 (fun ctx -> Bus.Mmio.map (Nic.Mailbox.region mb ~ctx))
  in
  Test.make ~name:"micro/mailbox-write-decode-32ctx"
    (Staged.stage (fun () ->
         for ctx = 0 to 31 do
           Bus.Mmio.write32 mappings.(ctx) ~offset:20 ctx
         done;
         let rec drain () =
           match Nic.Mailbox.next_event mb with
           | Some (ctx, mbox) ->
               Nic.Mailbox.clear_event mb ~ctx ~mbox;
               drain ()
           | None -> ()
         in
         drain ()))

let test_seqno_check =
  Test.make ~name:"micro/seqno-check-1k"
    (Staged.stage (fun () ->
         let seq = ref 0 in
         for _ = 1 to 1000 do
           assert (Cdna.Seqno.continuous ~expected:!seq ~got:!seq);
           seq := Cdna.Seqno.next !seq
         done))

let test_grant_flip =
  Test.make ~name:"micro/grant-flip"
    (Staged.stage
       (let engine = Sim.Engine.create () in
        let profile = Host.Profile.create () in
        let cpu = Host.Cpu.create engine ~profile () in
        let mem = Memory.Phys_mem.create ~total_pages:64 () in
        let hyp = Xen.Hypervisor.create engine ~cpu ~mem () in
        let a =
          Xen.Hypervisor.create_domain hyp ~name:"a" ~kind:Xen.Domain.Guest
            ~weight:256 ~mem_pages:8
        in
        let b =
          Xen.Hypervisor.create_domain hyp ~name:"b" ~kind:Xen.Domain.Guest
            ~weight:256 ~mem_pages:8
        in
        let page = List.hd (Xen.Domain.pages a) in
        let here = ref a and there = ref b in
        fun () ->
          (match Xen.Grant_table.flip hyp ~src:!here ~dst:!there page with
          | Ok () -> ()
          | Error _ -> assert false);
          let t = !here in
          here := !there;
          there := t))

let test_bridge_route =
  let b = Guestos.Bridge.create () in
  let ports = Array.init 26 (fun i -> Guestos.Bridge.add_port b i) in
  Array.iteri
    (fun i p -> Guestos.Bridge.learn b p (Ethernet.Mac_addr.make i))
    ports;
  let frame =
    Ethernet.Frame.make ~src:(Ethernet.Mac_addr.make 0)
      ~dst:(Ethernet.Mac_addr.make 13) ~kind:Ethernet.Frame.Data ~flow:0 ~seq:0
      ~payload_len:1500 ~payload_seed:0 ()
  in
  Test.make ~name:"micro/bridge-route-26-ports"
    (Staged.stage (fun () ->
         ignore (Guestos.Bridge.route b ~ingress:ports.(0) frame)))

(* ---------- Macro subjects: one per table / figure ---------- *)

(* Very short measurement windows keep one sample under a second; the
   shapes the bechamel numbers describe are simulator costs, not the
   paper's results (those are printed separately below). *)
let bench_cfg base =
  {
    base with
    Experiments.Config.warmup = Sim.Time.ms 10;
    duration = Sim.Time.ms 20;
  }

let run_quietly cfg = ignore (Experiments.Run.run (bench_cfg cfg))

let table1_subject () =
  List.iter run_quietly
    [
      {
        Experiments.Config.default with
        Experiments.Config.system = Experiments.Config.Native;
        nic = Experiments.Config.Intel;
        nics = 6;
      };
      {
        Experiments.Config.default with
        Experiments.Config.system = Experiments.Config.Xen_sw;
        nic = Experiments.Config.Intel;
        nics = 6;
      };
    ]

let t23_subject pattern () =
  List.iter
    (fun (system, nic) ->
      run_quietly
        {
          Experiments.Config.default with
          Experiments.Config.system;
          nic;
          pattern;
        })
    [
      (Experiments.Config.Xen_sw, Experiments.Config.Intel);
      (Experiments.Config.Xen_sw, Experiments.Config.Ricenic);
      (Experiments.Config.Cdna_sys, Experiments.Config.Ricenic);
    ]

let table4_subject () =
  List.iter
    (fun (pattern, protection) ->
      run_quietly
        {
          Experiments.Config.default with
          Experiments.Config.system = Experiments.Config.Cdna_sys;
          pattern;
          protection;
        })
    [
      (Workload.Pattern.Tx, Cdna.Cdna_costs.Full);
      (Workload.Pattern.Tx, Cdna.Cdna_costs.Disabled);
      (Workload.Pattern.Rx, Cdna.Cdna_costs.Full);
      (Workload.Pattern.Rx, Cdna.Cdna_costs.Disabled);
    ]

let figure_subject pattern () =
  List.iter
    (fun (system, nic, guests) ->
      run_quietly
        {
          Experiments.Config.default with
          Experiments.Config.system;
          nic;
          pattern;
          guests;
        })
    [
      (Experiments.Config.Xen_sw, Experiments.Config.Intel, 1);
      (Experiments.Config.Xen_sw, Experiments.Config.Intel, 8);
      (Experiments.Config.Xen_sw, Experiments.Config.Intel, 24);
      (Experiments.Config.Cdna_sys, Experiments.Config.Ricenic, 1);
      (Experiments.Config.Cdna_sys, Experiments.Config.Ricenic, 8);
      (Experiments.Config.Cdna_sys, Experiments.Config.Ricenic, 24);
    ]

let ablation_subject protection () =
  run_quietly
    {
      Experiments.Config.default with
      Experiments.Config.system = Experiments.Config.Cdna_sys;
      protection;
    }

let macro_tests =
  [
    Test.make ~name:"table1/native-vs-xen-6nic" (Staged.stage table1_subject);
    Test.make ~name:"table2/single-guest-tx"
      (Staged.stage (t23_subject Workload.Pattern.Tx));
    Test.make ~name:"table3/single-guest-rx"
      (Staged.stage (t23_subject Workload.Pattern.Rx));
    Test.make ~name:"table4/protection-on-off" (Staged.stage table4_subject);
    Test.make ~name:"figure3/tx-scaling"
      (Staged.stage (figure_subject Workload.Pattern.Tx));
    Test.make ~name:"figure4/rx-scaling"
      (Staged.stage (figure_subject Workload.Pattern.Rx));
    Test.make ~name:"ablation/protection-full"
      (Staged.stage (ablation_subject Cdna.Cdna_costs.Full));
    Test.make ~name:"ablation/protection-iommu"
      (Staged.stage (ablation_subject Cdna.Cdna_costs.Iommu));
    Test.make ~name:"ablation/protection-disabled"
      (Staged.stage (ablation_subject Cdna.Cdna_costs.Disabled));
  ]

let micro_tests =
  [
    test_engine_events;
    test_heap_churn;
    test_crc32;
    test_materialize;
    test_descriptor_roundtrip;
    test_mailbox_decode;
    test_seqno_check;
    test_grant_flip;
    test_bridge_route;
  ]

(* ---------- Bechamel driver ---------- *)

let run_bechamel ~quota_s tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second quota_s)
      ~kde:None ~stabilize:false ()
  in
  let raw = Hashtbl.create 16 in
  List.iter
    (fun test ->
      Hashtbl.iter (Hashtbl.add raw) (Benchmark.all cfg instances test))
    (List.map (fun t -> Test.make_grouped ~name:"" ~fmt:"%s%s" [ t ]) tests);
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (v :: _) -> v
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "  %-42s (no estimate)\n" name
      else if ns > 1e9 then Printf.printf "  %-42s %8.2f s/run\n" name (ns /. 1e9)
      else if ns > 1e6 then
        Printf.printf "  %-42s %8.2f ms/run\n" name (ns /. 1e6)
      else if ns > 1e3 then
        Printf.printf "  %-42s %8.2f us/run\n" name (ns /. 1e3)
      else Printf.printf "  %-42s %8.0f ns/run\n" name ns)
    (List.sort compare rows);
  flush stdout

(* --smoke: tiny end-to-end run that exercises the metrics export path
   and fails loudly if the registry comes back empty or malformed.  Wired
   into [dune runtest] (see bench/dune) so CI validates the observability
   layer's output, not just its types. *)
let smoke () =
  let out =
    let rec find i =
      if i >= Array.length Sys.argv - 1 then "bench-smoke-metrics.json"
      else if Sys.argv.(i) = "--smoke" then Sys.argv.(i + 1)
      else find (i + 1)
    in
    if Array.length Sys.argv > 2 then find 1 else "bench-smoke-metrics.json"
  in
  let cfg =
    {
      Experiments.Config.default with
      Experiments.Config.system = Experiments.Config.Cdna_sys;
      nic = Experiments.Config.Ricenic;
      guests = 1;
      nics = 1;
      warmup = Sim.Time.ms 2;
      duration = Sim.Time.ms 5;
    }
  in
  let _, tb = Experiments.Run.run_tb cfg in
  let json = Sim.Metrics.to_json tb.Experiments.Testbed.metrics in
  let text = Sim.Json.to_string json in
  let oc = open_out out in
  output_string oc text;
  output_char oc '\n';
  close_out oc;
  let reread =
    let ic = open_in out in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  (match Sim.Json.parse reread with
  | Error e -> failwith ("smoke: metrics file is not valid JSON: " ^ e)
  | Ok (Sim.Json.Obj ((_ :: _) as fields)) ->
      Printf.printf "bench smoke: %s ok (%d series)\n" out (List.length fields)
  | Ok _ -> failwith "smoke: metrics JSON is empty or not an object");
  exit 0

let () =
  if Array.exists (( = ) "--smoke") Sys.argv then smoke ();
  let bench_only = Array.exists (( = ) "--bench-only") Sys.argv in
  if not bench_only then begin
    print_endline
      "==============================================================";
    print_endline
      " Paper reproduction: every table and figure of the evaluation";
    print_endline
      "==============================================================";
    print_newline ();
    Experiments.Tables.print_all ~quick:true ();
    print_newline ();
    Experiments.Figures.print_figure ~title:"Figure 3: transmit scaling"
      ~pattern:Workload.Pattern.Tx
      (Experiments.Figures.figure3 ~quick:true ());
    print_newline ();
    Experiments.Figures.print_figure ~title:"Figure 4: receive scaling"
      ~pattern:Workload.Pattern.Rx
      (Experiments.Figures.figure4 ~quick:true ());
    print_newline ();
    Experiments.Extension.print_all ~quick:true ();
    print_newline ()
  end;
  print_endline "==============================================================";
  print_endline " Bechamel: simulator wall-clock per artifact regeneration";
  print_endline "==============================================================";
  run_bechamel ~quota_s:2.0 macro_tests;
  print_newline ();
  print_endline "==============================================================";
  print_endline " Bechamel: core-mechanism micro-benchmarks";
  print_endline "==============================================================";
  run_bechamel ~quota_s:0.5 micro_tests
