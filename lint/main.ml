(* cdna_lint / cdna_flow / cdna_dom / cdna_proto CLI.

   Usage:
     main.exe [--json FILE] [--stats FILE] [--quiet] [--format text|github]
              [--flow CMT_DIR] [--dom CMT_DIR] [--proto CMT_DIR]
              [--only RULE] [--gate BASELINE] [DIR|FILE]...

   Walks every [.ml] under the given roots (default: [lib]) through the
   parsetree checker; with [--flow] additionally runs the interprocedural
   typedtree verifier over the compiled [.cmt] tree rooted at CMT_DIR,
   with [--dom] the domain-safety / race detector over the same tree, and
   with [--proto] the resource-protocol (typestate) verifier. One
   invocation runs all requested passes and exits with a single combined
   code.

   Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

   [--only RULE] restricts the rendered report and the exit code to
   violations of RULE — either a full rule name ("PR1-leak-on-path") or
   its prefix up to the first dash ("PR1", "T1"). Stats artifacts stay
   complete so baselines never depend on the filter.

   [--format github] emits `::error file=...,line=...::msg` annotations
   for CI logs instead of the human-readable report.

   [--json] writes the parsetree diagnostics and [--stats] the combined
   run summary (rules hit, files scanned, suppression counts, per-pass
   reports) as deterministic Sim.Json documents so CI can archive them.
   The stats document also carries a [timing] block (per-pass wall time
   in milliseconds and input count); it is diagnostic only and is never
   consulted by the drift gate.

   [--gate BASELINE] is the suppression-drift gate: after computing the
   current stats it fails (exit 1) if the unsuppressed-violation count or
   any suppression count grew versus the committed BASELINE file. *)

let usage =
  "usage: cdna_lint [--json FILE] [--stats FILE] [--quiet] [--format \
   text|github] [--flow CMT_DIR] [--dom CMT_DIR] [--proto CMT_DIR] \
   [--only RULE] [--gate BASELINE] [PATH]..."

let usage_error msg =
  prerr_endline ("cdna_lint: " ^ msg);
  prerr_endline usage;
  exit 2

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left (fun acc entry -> collect_ml acc (Filename.concat path entry)) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let github_escape s =
  (* The workflow-command grammar reserves %, CR and LF in messages. *)
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string b "%25"
      | '\r' -> Buffer.add_string b "%0D"
      | '\n' -> Buffer.add_string b "%0A"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Suppression-drift gate                                              *)
(* ------------------------------------------------------------------ *)

let json_int ?(default = 0) j path =
  let rec walk j = function
    | [] -> ( match j with Sim.Json.Int n -> Some n | _ -> None)
    | k :: rest -> (
        match j with
        | Sim.Json.Obj fields -> (
            match List.assoc_opt k fields with
            | Some j' -> walk j' rest
            | None -> None)
        | _ -> None)
  in
  match walk j path with Some n -> n | None -> default

let json_obj_total j path =
  match
    let rec walk j = function
      | [] -> Some j
      | k :: rest -> (
          match j with
          | Sim.Json.Obj fields -> (
              match List.assoc_opt k fields with
              | Some j' -> walk j' rest
              | None -> None)
          | _ -> None)
    in
    walk j path
  with
  | Some (Sim.Json.Obj fields) ->
      List.fold_left
        (fun acc (_, v) -> match v with Sim.Json.Int n -> acc + n | _ -> acc)
        0 fields
  | _ -> 0

(* Fails when a tracked count in [current] exceeds the committed
   [baseline]: new unsuppressed violations or new suppression
   annotations both require a deliberate baseline refresh. *)
let run_gate ~baseline_path current =
  let baseline =
    match Sim.Json.parse (read_file baseline_path) with
    | Ok j -> j
    | Error _ | (exception Sys_error _) ->
        prerr_endline
          ("cdna_lint: cannot read gate baseline " ^ baseline_path);
        exit 2
  in
  let checks =
    [
      ("violations", json_int baseline [ "violations" ],
       json_int current [ "violations" ]);
      ("suppressions (total)", json_obj_total baseline [ "suppressions" ],
       json_obj_total current [ "suppressions" ]);
      ("flow violations", json_int baseline [ "flow"; "violations" ],
       json_int current [ "flow"; "violations" ]);
      ("flow suppressions", json_int baseline [ "flow"; "suppressions" ],
       json_int current [ "flow"; "suppressions" ]);
      ("dom violations", json_int baseline [ "dom"; "violations" ],
       json_int current [ "dom"; "violations" ]);
      ("dom suppressions", json_int baseline [ "dom"; "suppressions" ],
       json_int current [ "dom"; "suppressions" ]);
      ("dom domain_shared annotations",
       json_int baseline [ "dom"; "domain_shared" ],
       json_int current [ "dom"; "domain_shared" ]);
      ("dom domain_local annotations",
       json_int baseline [ "dom"; "domain_local" ],
       json_int current [ "dom"; "domain_local" ]);
      ("proto violations", json_int baseline [ "proto"; "violations" ],
       json_int current [ "proto"; "violations" ]);
      ("proto suppressions", json_int baseline [ "proto"; "suppressions" ],
       json_int current [ "proto"; "suppressions" ]);
      ("proto acquire annotations",
       json_int baseline [ "proto"; "acquire_annots" ],
       json_int current [ "proto"; "acquire_annots" ]);
      ("proto release annotations",
       json_int baseline [ "proto"; "release_annots" ],
       json_int current [ "proto"; "release_annots" ]);
    ]
  in
  let drifted =
    List.filter_map
      (fun (what, base, cur) ->
        if cur > base then Some (what, base, cur) else None)
      checks
  in
  List.iter
    (fun (what, base, cur) ->
      Printf.eprintf
        "cdna_lint: gate: %s grew from %d to %d (refresh %s deliberately \
         if intended)\n"
        what base cur baseline_path)
    drifted;
  drifted = []

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let json_out = ref None in
  let stats_out = ref None in
  let quiet = ref false in
  let format = ref `Text in
  let flow_root = ref None in
  let dom_root = ref None in
  let proto_root = ref None in
  let only = ref None in
  let gate = ref None in
  let roots = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: f :: rest ->
        json_out := Some f;
        parse_args rest
    | "--stats" :: f :: rest ->
        stats_out := Some f;
        parse_args rest
    | "--flow" :: d :: rest ->
        flow_root := Some d;
        parse_args rest
    | "--dom" :: d :: rest ->
        dom_root := Some d;
        parse_args rest
    | "--proto" :: d :: rest ->
        proto_root := Some d;
        parse_args rest
    | "--only" :: r :: rest ->
        only := Some r;
        parse_args rest
    | "--gate" :: f :: rest ->
        gate := Some f;
        parse_args rest
    | "--format" :: f :: rest ->
        (match f with
        | "text" -> format := `Text
        | "github" -> format := `Github
        | other -> usage_error ("unknown format " ^ other));
        parse_args rest
    | "--quiet" :: rest ->
        quiet := true;
        parse_args rest
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | [ ("--json" | "--stats" | "--flow" | "--dom" | "--proto" | "--only"
        | "--gate" | "--format") ] ->
        usage_error "missing option argument"
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        usage_error ("unknown option " ^ arg)
    | path :: rest ->
        roots := path :: !roots;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots = if !roots = [] then [ "lib" ] else List.rev !roots in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then
        usage_error ("no such path: " ^ r))
    roots;
  let files =
    List.fold_left collect_ml [] roots
    |> List.sort_uniq String.compare
    |> List.map (fun p -> (p, read_file p))
  in
  (* Per-pass wall time: diagnostic only (stats [timing] block and the
     summary line), deliberately outside the drift gate. *)
  let timings = ref [] in
  let timed name count f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let ms = int_of_float (ceil ((Unix.gettimeofday () -. t0) *. 1000.)) in
    timings := !timings @ [ (name, ms, count r) ];
    r
  in
  let diags, stats =
    timed "lint" (fun _ -> List.length files) (fun () -> Cdna_lint.run files)
  in
  let flow_report =
    match !flow_root with
    | None -> None
    | Some d -> (
        match
          timed "flow"
            (fun r -> match r with Some r -> r.Cdna_flow.cmt_files | None -> 0)
            (fun () -> Some (Cdna_flow.analyze d))
        with
        | r -> r
        | exception Cdna_flow.Flow_error msg ->
            prerr_endline ("cdna_flow: " ^ msg);
            exit 2)
  in
  let dom_report =
    match !dom_root with
    | None -> None
    | Some d -> (
        match
          timed "dom"
            (fun r -> match r with Some r -> r.Cdna_dom.cmt_files | None -> 0)
            (fun () -> Some (Cdna_dom.analyze d))
        with
        | r -> r
        | exception Cdna_dom.Dom_error msg ->
            prerr_endline ("cdna_dom: " ^ msg);
            exit 2)
  in
  let proto_report =
    match !proto_root with
    | None -> None
    | Some d ->
        Some
          (timed "proto"
             (fun r -> r.Cdna_proto.cmt_files)
             (fun () -> Cdna_proto.analyze d))
  in
  (* [--only]: the filtered views drive rendering and the exit code; the
     stats artifact below is always computed from the full reports. *)
  let only = !only in
  let shown_diags =
    List.filter (fun d -> Chain.rule_matches ~only d.Cdna_lint.rule) diags
  in
  let shown_pass vs =
    List.filter (fun v -> Chain.rule_matches ~only v.Chain.rule) vs
  in
  let shown_flow =
    match flow_report with
    | Some r -> shown_pass r.Cdna_flow.violations
    | None -> []
  in
  let shown_dom =
    match dom_report with
    | Some r -> shown_pass r.Cdna_dom.violations
    | None -> []
  in
  let shown_proto =
    match proto_report with
    | Some r -> shown_pass r.Cdna_proto.violations
    | None -> []
  in
  (* Reports. *)
  (match !format with
  | `Text ->
      List.iter
        (fun d -> print_endline (Cdna_lint.diag_to_string d))
        shown_diags;
      List.iter
        (fun v -> print_endline (Chain.violation_to_string v))
        (shown_flow @ shown_dom @ shown_proto)
  | `Github ->
      List.iter
        (fun d ->
          Printf.printf "::error file=%s,line=%d,col=%d::[%s] %s\n"
            d.Cdna_lint.file d.Cdna_lint.line d.Cdna_lint.col
            d.Cdna_lint.rule
            (github_escape d.Cdna_lint.msg))
        shown_diags;
      List.iter
        (fun (v : Chain.violation) ->
          let chain =
            String.concat "\n"
              (List.mapi
                 (fun i (h : Chain.hop) ->
                   Printf.sprintf "%d. %s at %s:%d" (i + 1) h.hop_what
                     h.hop_file h.hop_line)
                 v.chain)
          in
          Printf.printf "::error file=%s,line=%d::[%s] %s\n" v.file v.line
            v.rule
            (github_escape (v.msg ^ "\n" ^ chain)))
        (shown_flow @ shown_dom @ shown_proto));
  (* Artifacts. *)
  let stats_json =
    let base = Cdna_lint.stats_to_json stats in
    let add name block j =
      match (block, j) with
      | Some b, Sim.Json.Obj fields -> Sim.Json.Obj (fields @ [ (name, b) ])
      | _, j -> j
    in
    base
    |> add "flow" (Option.map Cdna_flow.report_to_json flow_report)
    |> add "dom" (Option.map Cdna_dom.report_to_json dom_report)
    |> add "proto" (Option.map Cdna_proto.report_to_json proto_report)
    |> add "timing"
         (Some
            (Sim.Json.Obj
               (List.map
                  (fun (name, ms, n) ->
                    ( name,
                      Sim.Json.Obj
                        [ ("ms", Sim.Json.Int ms); ("inputs", Sim.Json.Int n) ]
                    ))
                  !timings)))
  in
  (* Gate before writing artifacts: [--stats] may legitimately point at
     the same file as [--gate], refreshing the baseline only after the
     comparison against the committed copy has been made. *)
  let gate_ok =
    match !gate with
    | Some baseline_path -> run_gate ~baseline_path stats_json
    | None -> true
  in
  (match !json_out with
  | Some f -> write_file f (Sim.Json.to_string (Cdna_lint.diags_to_json diags) ^ "\n")
  | None -> ());
  (match !stats_out with
  | Some f -> write_file f (Sim.Json.to_string stats_json ^ "\n")
  | None -> ());
  if not !quiet then begin
    Printf.printf
      "cdna_lint: %d file(s), %d hot function(s), %d violation(s), %d \
       suppression annotation(s)\n"
      stats.Cdna_lint.files_scanned stats.Cdna_lint.hot_functions
      stats.Cdna_lint.violations
      (List.fold_left
         (fun acc (_, n) -> acc + n)
         0 stats.Cdna_lint.suppression_counts);
    Option.iter
      (fun r ->
        Printf.printf
          "cdna_flow: %d cmt file(s), %d function(s), %d violation(s), %d \
           suppressed, %d sanitizer(s)\n"
          r.Cdna_flow.cmt_files r.Cdna_flow.functions
          (List.length r.Cdna_flow.violations)
          (List.length r.Cdna_flow.suppressed)
          r.Cdna_flow.sanitizer_fns)
      flow_report;
    Option.iter
      (fun (r : Cdna_dom.report) ->
        Printf.printf
          "cdna_dom: %d cmt file(s), %d state item(s) [%s], %d violation(s), \
           %d suppressed, %d domain-local assertion(s)\n"
          r.cmt_files r.state_items
          (String.concat ", "
             (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) r.classes))
          (List.length r.violations)
          (List.length r.suppressed)
          r.domain_local)
      dom_report;
    Option.iter
      (fun (r : Cdna_proto.report) ->
        Printf.printf
          "cdna_proto: %d cmt file(s), %d function(s), %d protocol(s), %d \
           violation(s), %d suppressed\n"
          r.cmt_files r.functions r.protocols
          (List.length r.violations)
          (List.length r.suppressed))
      proto_report;
    Printf.printf "cdna timing: %s\n"
      (String.concat ", "
         (List.map
            (fun (name, ms, n) -> Printf.sprintf "%s %dms/%d" name ms n)
            !timings))
  end;
  if
    shown_diags <> [] || shown_flow <> [] || shown_dom <> []
    || shown_proto <> [] || not gate_ok
  then exit 1
