(* cdna_lint CLI.

   Usage: main.exe [--json FILE] [--stats FILE] [--quiet] [DIR|FILE]...

   Walks every [.ml] under the given roots (default: [lib]), runs the
   checker, prints human-readable diagnostics, and exits non-zero if any
   violation remains. [--json] writes the diagnostics and [--stats] the
   run summary (rules hit, files scanned, suppression counts) as
   deterministic Sim.Json documents, so CI can archive them and track
   suppression counts over time. *)

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left (fun acc entry -> collect_ml acc (Filename.concat path entry)) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let () =
  let json_out = ref None in
  let stats_out = ref None in
  let quiet = ref false in
  let roots = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: f :: rest ->
        json_out := Some f;
        parse_args rest
    | "--stats" :: f :: rest ->
        stats_out := Some f;
        parse_args rest
    | "--quiet" :: rest ->
        quiet := true;
        parse_args rest
    | ("--help" | "-h") :: _ ->
        print_endline
          "usage: cdna_lint [--json FILE] [--stats FILE] [--quiet] [PATH]...";
        exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        prerr_endline ("cdna_lint: unknown option " ^ arg);
        exit 2
    | path :: rest ->
        roots := path :: !roots;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots = if !roots = [] then [ "lib" ] else List.rev !roots in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        prerr_endline ("cdna_lint: no such path: " ^ r);
        exit 2
      end)
    roots;
  let files =
    List.fold_left collect_ml [] roots
    |> List.sort_uniq String.compare
    |> List.map (fun p -> (p, read_file p))
  in
  let diags, stats = Cdna_lint.run files in
  (match !json_out with
  | Some f -> write_file f (Sim.Json.to_string (Cdna_lint.diags_to_json diags) ^ "\n")
  | None -> ());
  (match !stats_out with
  | Some f -> write_file f (Sim.Json.to_string (Cdna_lint.stats_to_json stats) ^ "\n")
  | None -> ());
  List.iter (fun d -> print_endline (Cdna_lint.diag_to_string d)) diags;
  if not !quiet then
    Printf.printf
      "cdna_lint: %d file(s), %d hot function(s), %d violation(s), %d \
       suppression annotation(s)\n"
      stats.Cdna_lint.files_scanned stats.Cdna_lint.hot_functions
      stats.Cdna_lint.violations
      (List.fold_left
         (fun acc (_, n) -> acc + n)
         0 stats.Cdna_lint.suppression_counts);
  if diags <> [] then exit 1
