(* Fixture suite for cdna_proto: every seeded protocol violation must
   be detected with a complete acquire->witness->exit chain, and the
   deliberately clean variants (Fun.protect, releasing handlers, loops,
   escapes, balanced parameter locking) must stay silent. Runs against
   the .cmt files compiled from proto_fixtures/ (cwd is
   _build/default/lint under dune). *)

let fixture_root = "proto_fixtures"
let report = lazy (Cdna_proto.analyze fixture_root)

let viols_in base =
  let r = Lazy.force report in
  List.filter
    (fun v -> Filename.basename v.Cdna_proto.file = base)
    r.Cdna_proto.violations

let has_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let chain_whats (v : Cdna_proto.violation) =
  String.concat "|"
    (List.map (fun h -> h.Cdna_proto.hop_what) v.Cdna_proto.chain)

let check_chain base (v : Cdna_proto.violation) =
  List.iter
    (fun h ->
      Alcotest.(check bool)
        (base ^ " hop has file:line")
        true
        (h.Cdna_proto.hop_file <> "" && h.Cdna_proto.hop_line > 0))
    v.Cdna_proto.chain

let check_detects ~base ~rule ~n ?(min_hops = 2) () =
  let vs = viols_in base in
  Alcotest.(check int) (base ^ " violation count") n (List.length vs);
  List.iter
    (fun (v : Cdna_proto.violation) ->
      Alcotest.(check string) (base ^ " rule") rule v.Cdna_proto.rule;
      Alcotest.(check bool)
        (base ^ " chain length")
        true
        (List.length v.Cdna_proto.chain >= min_hops);
      check_chain base v)
    vs

(* The simplest PR1: map, read, return — no revoke anywhere. *)
let test_leak_simple () =
  check_detects ~base:"leak_simple.ml" ~rule:"PR1-leak-on-path" ~n:1 ();
  match viols_in "leak_simple.ml" with
  | [ v ] ->
      let w = chain_whats v in
      Alcotest.(check bool)
        "acquire hop present" true
        (has_sub w "acquired by Mmio.map");
      Alcotest.(check bool)
        "exit hop names the leaking function" true
        (has_sub w "function exit Leak_simple.leak_mapping")
  | _ -> Alcotest.fail "expected exactly one leak_simple violation"

(* Ignoring [try_reserve]'s result means no path can release: the chain
   must walk creator -> acquire -> exit. *)
let test_leak_ignored () =
  check_detects ~base:"leak_ignored.ml" ~rule:"PR1-leak-on-path" ~n:1
    ~min_hops:3 ();
  match viols_in "leak_ignored.ml" with
  | [ v ] ->
      let w = chain_whats v in
      Alcotest.(check bool)
        "creator hop present" true
        (has_sub w "created by Pkt_buf.create");
      Alcotest.(check bool)
        "acquire hop present" true
        (has_sub w "acquired by Pkt_buf.try_reserve")
  | _ -> Alcotest.fail "expected exactly one leak_ignored violation"

(* The grant is revoked on the normal return but leaks through the
   [failwith] guard: exactly one violation, whose last hop is the
   raising site. *)
let test_leak_raise () =
  check_detects ~base:"leak_raise.ml" ~rule:"PR1-leak-on-path" ~n:1
    ~min_hops:3 ();
  match viols_in "leak_raise.ml" with
  | [ v ] ->
      Alcotest.(check bool)
        "message flags the raising path" true
        (has_sub v.Cdna_proto.msg "raising path");
      let last =
        List.nth v.Cdna_proto.chain (List.length v.Cdna_proto.chain - 1)
      in
      Alcotest.(check bool)
        "last hop is the raise site" true
        (has_sub last.Cdna_proto.hop_what "raises without releasing")
  | _ -> Alcotest.fail "expected exactly one leak_raise violation"

(* One match arm revokes, the other returns holding the mapping: PR1
   with the partial-release witness hop. *)
let test_leak_early_return () =
  check_detects ~base:"leak_early_return.ml" ~rule:"PR1-leak-on-path" ~n:1
    ~min_hops:3 ();
  match viols_in "leak_early_return.ml" with
  | [ v ] ->
      Alcotest.(check bool)
        "message says some paths" true
        (has_sub v.Cdna_proto.msg "released on some paths");
      Alcotest.(check bool)
        "chain shows the partial release" true
        (has_sub (chain_whats v) "released by Mmio.revoke")
  | _ -> Alcotest.fail "expected exactly one leak_early_return violation"

(* Effect-style acquire on a fresh subject, with an inline-combinator
   lambda that must NOT count as an escape. *)
let test_leak_effect =
  check_detects ~base:"leak_effect.ml" ~rule:"PR1-leak-on-path" ~n:1
    ~min_hops:3

(* The three-module leak: acquired in cross_a, forwarded by cross_b,
   dropped in cross_c. Reported once, at the acquire site, with a chain
   spanning all three files. *)
let test_cross_module () =
  (match viols_in "cross_b.ml" @ viols_in "cross_c.ml" with
  | [] -> ()
  | _ ->
      Alcotest.fail "cross-module leak must report at the acquire site only");
  match viols_in "cross_a.ml" with
  | [ v ] ->
      Alcotest.(check string) "rule" "PR1-leak-on-path" v.Cdna_proto.rule;
      Alcotest.(check bool)
        "chain has at least 6 hops" true
        (List.length v.Cdna_proto.chain >= 6);
      let files =
        List.sort_uniq String.compare
          (List.map
             (fun h -> Filename.basename h.Cdna_proto.hop_file)
             v.Cdna_proto.chain)
      in
      Alcotest.(check (list string))
        "chain spans all three modules"
        [ "cross_a.ml"; "cross_b.ml"; "cross_c.ml" ]
        files;
      let w = chain_whats v in
      List.iter
        (fun step ->
          Alcotest.(check bool) ("chain walks " ^ step) true (has_sub w step))
        [
          "acquired by Mmio.map";
          "acquired via Cross_a.make_mapping";
          "acquired via Cross_b.wrap";
          "function exit Cross_c.leak_through";
        ]
  | vs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one cross_a violation, got %d"
           (List.length vs))

let test_dbl_release () =
  check_detects ~base:"dbl_release.ml" ~rule:"PR2-double-release" ~n:1
    ~min_hops:4 ();
  match viols_in "dbl_release.ml" with
  | [ v ] ->
      Alcotest.(check bool)
        "message cites the first release" true
        (has_sub v.Cdna_proto.msg "already released at")
  | _ -> Alcotest.fail "expected exactly one dbl_release violation"

(* The second revoke reaches the same mapping through an alias. *)
let test_dbl_revoke_alias =
  check_detects ~base:"dbl_revoke_alias.ml" ~rule:"PR2-double-release" ~n:1
    ~min_hops:3

let test_use_after_release () =
  check_detects ~base:"use_after_release.ml" ~rule:"PR3-use-after-release" ~n:1
    ~min_hops:3 ();
  match viols_in "use_after_release.ml" with
  | [ v ] ->
      Alcotest.(check bool)
        "use hop is the declared use" true
        (has_sub (chain_whats v) "used by Mmio.write32")
  | _ -> Alcotest.fail "expected exactly one use_after_release violation"

let test_use_after_alias =
  check_detects ~base:"use_after_alias.ml" ~rule:"PR3-use-after-release" ~n:1
    ~min_hops:3

(* Revoking on a fresh table that never granted: PR4 with the creation
   site as the first hop. *)
let test_rel_no_acq () =
  check_detects ~base:"rel_no_acq.ml" ~rule:"PR4-release-without-acquire" ~n:1
    ();
  match viols_in "rel_no_acq.ml" with
  | [ v ] ->
      Alcotest.(check bool)
        "first hop is the creation" true
        (has_sub
           (List.hd v.Cdna_proto.chain).Cdna_proto.hop_what
           "created by Iommu.create")
  | _ -> Alcotest.fail "expected exactly one rel_no_acq violation"

(* The annotation-declared protocol leaks exactly like a seeded one. *)
let test_annot_leak =
  check_detects ~base:"annot_leak.ml" ~rule:"PR1-leak-on-path" ~n:1

let test_clean_fixtures () =
  List.iter
    (fun base ->
      Alcotest.(check int)
        (base ^ " stays clean")
        0
        (List.length (viols_in base)))
    [
      "proto_env.ml"; "clean_protect.ml"; "clean_handler.ml"; "clean_loop.ml";
      "clean_escape.ml"; "clean_balanced.ml"; "clean_annot.ml";
      "suppressed.ml"; "cross_b.ml"; "cross_c.ml";
    ]

(* The suppressed leak is real and must land in the suppressed channel,
   with its mandatory reason attached. *)
let test_suppressed () =
  let r = Lazy.force report in
  let vs =
    List.filter
      (fun v -> Filename.basename v.Cdna_proto.file = "suppressed.ml")
      r.Cdna_proto.suppressed
  in
  match vs with
  | [ v ] ->
      Alcotest.(check string) "rule" "PR1-leak-on-path" v.Cdna_proto.rule;
      Alcotest.(check bool)
        "reason recorded" true
        (match v.Cdna_proto.suppress with
        | Some r -> has_sub r "intentional leak"
        | None -> false)
  | vs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one suppressed violation, got %d"
           (List.length vs))

let test_totals () =
  let r = Lazy.force report in
  Alcotest.(check int) "total unsuppressed" 12
    (List.length r.Cdna_proto.violations);
  Alcotest.(check int) "total suppressed" 1
    (List.length r.Cdna_proto.suppressed);
  Alcotest.(check int) "protocols active (7 seeded + dma-window)" 8
    r.Cdna_proto.protocols;
  Alcotest.(check int) "acquire annotations" 2 r.Cdna_proto.acq_annots;
  Alcotest.(check int) "release annotations" 2 r.Cdna_proto.rel_annots;
  Alcotest.(check bool) "cmt corpus loaded" true (r.Cdna_proto.cmt_files >= 22)

(* [--only PR1] must keep exactly the PR1 reports — both the bare
   prefix and the full rule name match; a non-prefix does not. *)
let test_rule_filter () =
  let r = Lazy.force report in
  let count only =
    List.length
      (List.filter
         (fun v -> Chain.rule_matches ~only v.Cdna_proto.rule)
         r.Cdna_proto.violations)
  in
  Alcotest.(check int) "PR1 prefix filter" 7 (count (Some "PR1"));
  Alcotest.(check int) "full rule name filter" 2
    (count (Some "PR2-double-release"));
  Alcotest.(check int) "'PR' is not a rule prefix" 0 (count (Some "PR"));
  Alcotest.(check int) "no filter keeps everything" 12 (count None)

(* Byte-identical reports across runs and under reversed corpus
   listing order: the JSON artifact is diffed by the drift gate. *)
let test_deterministic () =
  let a = Cdna_proto.analyze fixture_root in
  let b = Cdna_proto.analyze fixture_root in
  Alcotest.(check string)
    "report JSON identical across runs"
    (Sim.Json.to_string (Cdna_proto.report_to_json a))
    (Sim.Json.to_string (Cdna_proto.report_to_json b));
  let paths = Chain.collect_cmts [] fixture_root |> List.sort String.compare in
  let c = Cdna_proto.analyze_paths (List.rev paths) in
  Alcotest.(check string)
    "report JSON stable under listing order"
    (Sim.Json.to_string (Cdna_proto.report_to_json a))
    (Sim.Json.to_string (Cdna_proto.report_to_json c))

let () =
  Alcotest.run "cdna_proto"
    [
      ( "pr1-leaks",
        [
          Alcotest.test_case "map never revoked" `Quick test_leak_simple;
          Alcotest.test_case "ignored try_reserve" `Quick test_leak_ignored;
          Alcotest.test_case "leak on raising guard" `Quick test_leak_raise;
          Alcotest.test_case "leak on early-return arm" `Quick
            test_leak_early_return;
          Alcotest.test_case "fresh mutex never unlocked" `Quick
            test_leak_effect;
          Alcotest.test_case "three-module leak chain" `Quick test_cross_module;
          Alcotest.test_case "annotation-declared protocol" `Quick
            test_annot_leak;
        ] );
      ( "pr2-pr4",
        [
          Alcotest.test_case "double release" `Quick test_dbl_release;
          Alcotest.test_case "double revoke via alias" `Quick
            test_dbl_revoke_alias;
          Alcotest.test_case "use after release" `Quick test_use_after_release;
          Alcotest.test_case "use after release via alias" `Quick
            test_use_after_alias;
          Alcotest.test_case "release without acquire" `Quick test_rel_no_acq;
        ] );
      ( "hygiene",
        [
          Alcotest.test_case "clean fixtures stay clean" `Quick
            test_clean_fixtures;
          Alcotest.test_case "suppression channel" `Quick test_suppressed;
          Alcotest.test_case "exact totals" `Quick test_totals;
          Alcotest.test_case "--only rule filtering" `Quick test_rule_filter;
          Alcotest.test_case "deterministic output" `Quick test_deterministic;
        ] );
    ]
