[@@@cdna.layer "guestos"]

(* Known-bad: writes [Dom_a.table] through [Dom_b.shared] from an
   LP-resident layer (DM1); the chain must span all three files. *)

let record k v = Hashtbl.replace Dom_b.shared k v
