(* Known-bad: [@cdna.domain_local] asserted on a plain function, which
   is not mutable module-level state (DM3). *)

let helper x = x + 1 [@@cdna.domain_local]
