(* Substrate for the domain fixtures: engine/shard stand-ins whose
   qualified names canonicalize like the real [Sim.Engine] /
   [Sim.Shard] scheduling primitives, so closures handed to them count
   as LP-callback context. *)

module Engine = struct
  type t = Eng

  let create () = Eng
  let schedule (_ : t) (f : unit -> unit) = f ()
  let schedule_at (_ : t) (_ : int) (f : unit -> unit) = f ()
end

module Shard = struct
  let send (f : unit -> unit) = f ()
end
