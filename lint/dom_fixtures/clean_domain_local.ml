[@@@cdna.layer "workload"]

(* Clean-by-assertion: scratch pool used by exactly one LP
   ([@cdna.domain_local] is counted and drift-gated). *)

let pool = Array.make 8 0 [@@cdna.domain_local]
let put i v = Array.unsafe_set pool i v
let get i = Array.unsafe_get pool i
