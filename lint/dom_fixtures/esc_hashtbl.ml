[@@@cdna.layer "host"]

(* Known-bad: toplevel [Hashtbl] mutated directly from two LP-resident
   entry points (DM1, one violation per touching function). *)

let routes : (int, int) Hashtbl.t = Hashtbl.create 32
let learn port dst = Hashtbl.replace routes dst port
let forget dst = Hashtbl.remove routes dst
