[@@@cdna.layer "nic"]

(* Known-bad: memo table captured in a toplevel closure's let-spine,
   mutated from an LP-resident layer (DM2). *)

let lookup =
  let cache = Hashtbl.create 16 in
  fun key ->
    match Hashtbl.find_opt cache key with
    | Some v -> v
    | None ->
        let v = key * 2 in
        Hashtbl.add cache key v;
        v
