[@@@cdna.layer "nic"]

(* Clean: per-domain state behind [Domain.DLS] — each LP reads its own
   copy (dls class). *)

let slot : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let bump () = incr (Domain.DLS.get slot)
