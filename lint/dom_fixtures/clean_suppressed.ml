[@@@cdna.layer "workload"]

(* Clean-by-annotation: deliberately shared diagnostic counter with a
   reason — the DM1 is recorded as suppressed, not a failure. *)

let drops =
  ref 0
[@@cdna.domain_shared
  "fixture: aggregate diagnostic; merged after the run, torn reads \
   acceptable"]

let note_drop () = incr drops
