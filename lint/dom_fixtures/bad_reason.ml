[@@@cdna.layer "nic"]

(* Known-bad: suppression without a reason string — DS1 fires, and the
   DM1 stays unsuppressed. *)

let hits = ref 0 [@@cdna.domain_shared]
let bump () = incr hits
