[@@@cdna.layer "nic"]
[@@@cdna.domain_shared]

(* Known-bad: module-wide suppression missing its reason — DS1, and the
   counter below stays unsuppressed. *)

let errors = ref 0
let note () = incr errors
