(* Known-bad: the write happens two calls below the scheduled closure —
   the witness chain must walk start -> tick -> commit (DM1). *)

let epoch = ref 0
let commit () = epoch := !epoch + 1
let tick () = commit ()
let start eng = Dom_env.Engine.schedule_at eng 5 (fun () -> tick ())
