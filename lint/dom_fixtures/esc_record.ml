[@@@cdna.layer "xen"]

(* Known-bad: toplevel mutable-field record mutated from an LP-resident
   layer (DM1 via field write). *)

type stats = { mutable hits : int; name : string }

let global = { hits = 0; name = "g" }
let bump () = global.hits <- global.hits + 1
let describe () = global.name
