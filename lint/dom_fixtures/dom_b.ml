(* Re-export: a toplevel alias of [Dom_a]'s state. Shares the target's
   identity — must not register as a second independent table. *)

let shared = Dom_a.table
