(* Clean: merge-path state guarded by a mutex in every touching
   function (barrier class). *)

let m = Mutex.create ()
let merged = ref 0

let merge eng v =
  Dom_env.Engine.schedule eng (fun () ->
      Mutex.lock m;
      merged := !merged + v;
      Mutex.unlock m)

let read_merged () =
  Mutex.lock m;
  let v = !merged in
  Mutex.unlock m;
  v
