[@@@cdna.layer "bus"]

(* Known-bad: toplevel [Queue] written from LP code, including a write
   that sits inside an ordinary (non-scheduled) lambda (DM1). *)

let backlog : int Queue.t = Queue.create ()
let push_all xs = List.iter (fun x -> Queue.add x backlog) xs

let drain f =
  Queue.iter f backlog;
  Queue.clear backlog
