(* Clean: control-plane-only cache — mutable and written, but never
   reachable from LP-resident code or a scheduled closure (lp-local
   class). *)

let cache : (string, int) Hashtbl.t = Hashtbl.create 4

let memo k f =
  match Hashtbl.find_opt cache k with
  | Some v -> v
  | None ->
      let v = f k in
      Hashtbl.add cache k v;
      v
