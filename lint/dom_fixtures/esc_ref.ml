(* Known-bad: the pre-fix [Xen.Grant_table.count] pattern — a toplevel
   ref written by a function reachable from an engine callback (DM1). *)

let count = ref 0
let flip () = incr count
let total () = !count
let start eng = Dom_env.Engine.schedule_at eng 10 (fun () -> flip ())
