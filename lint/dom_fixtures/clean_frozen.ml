[@@@cdna.layer "ethernet"]

(* Clean: initializer-built lookup table, read-only afterwards — the
   post-fix [Crc32.tables] shape (frozen class; module initializers run
   on the main domain before any spawn). *)

let table =
  let t = Array.make 256 0 in
  for i = 1 to 255 do
    t.(i) <- (t.(i - 1) + 31) land 0xff
  done;
  t

let hash b = Array.unsafe_get table (b land 0xff)
