(* Known-bad: toplevel [Bytes] scratch filled inside a closure handed
   straight to the engine (DM1, scheduled-use path). *)

let scratch = Bytes.create 64
let arm eng = Dom_env.Engine.schedule eng (fun () -> Bytes.fill scratch 0 64 'x')
