[@@@cdna.layer "core"]

(* Known-bad: the pre-fix [Crc32.tables] pattern — forcing a toplevel
   lazy from LP code races the thunk across domains (DM1). *)

let tables = lazy (Array.init 8 (fun i -> i * 3))
let feed i = Array.get (Lazy.force tables) i
