(* Shared table, declared here; only written through [Dom_b]'s alias
   from [Dom_c] — the violation must land there with the alias hop. *)

let table : (int, int) Hashtbl.t = Hashtbl.create 8
