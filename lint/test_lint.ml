(* Fixture suite for cdna_lint: each known-bad snippet must produce
   exactly the expected multiset of rule hits (under a pretend lib path,
   since the protection rules key off the directory), annotated variants
   none, and the real lib/ tree must be violation-free. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_fixture ~pretend_path fixture =
  let src = read_file (Filename.concat "fixtures" fixture) in
  Cdna_lint.run [ (pretend_path, src) ]

let rules_of diags = List.map (fun d -> d.Cdna_lint.rule) diags

let check_rules name ~pretend_path fixture expected =
  let diags, _ = lint_fixture ~pretend_path fixture in
  Alcotest.(check (list string))
    name (List.sort String.compare expected)
    (List.sort String.compare (rules_of diags))

(* ---------- determinism family ---------- *)

let test_iter_unsorted () =
  check_rules "iter flagged" ~pretend_path:"lib/foo/a.ml" "det_iter_unsorted.ml"
    [ "D1-unordered-iter" ]

let test_fold_unsorted () =
  (* Only the unsorted fold is flagged; both sort-wrapped forms pass. *)
  check_rules "fold flagged once" ~pretend_path:"lib/foo/a.ml"
    "det_fold_unsorted.ml" [ "D1-unordered-iter" ]

let test_alias_hashtbl () =
  (* Aliasing must not launder hash-order iteration: top-level alias,
     let-module alias, and explicit Stdlib qualification all count. *)
  check_rules "aliased Hashtbl flagged" ~pretend_path:"lib/foo/a.ml"
    "det_alias_hashtbl.ml"
    [ "D1-unordered-iter"; "D1-unordered-iter"; "D1-unordered-iter" ]

let test_poly_compare () =
  check_rules "poly compare" ~pretend_path:"lib/foo/a.ml" "det_poly_compare.ml"
    [ "D2-poly-compare"; "D2-poly-compare"; "D2-poly-compare" ]

let test_nondet () =
  check_rules "nondet primitives" ~pretend_path:"lib/foo/a.ml" "det_nondet.ml"
    [ "D3-nondet-primitive"; "D3-nondet-primitive"; "D3-nondet-primitive" ]

(* ---------- zero-alloc family ---------- *)

let test_alloc_construct () =
  check_rules "construction in hot body" ~pretend_path:"lib/foo/a.ml"
    "alloc_construct.ml"
    [ "A1-alloc-construct"; "A1-alloc-construct"; "A1-alloc-construct" ]

let test_alloc_closure () =
  check_rules "closure in hot body" ~pretend_path:"lib/foo/a.ml"
    "alloc_closure.ml" [ "A2-alloc-closure" ]

let test_alloc_call () =
  check_rules "non-hot call in hot body" ~pretend_path:"lib/foo/a.ml"
    "alloc_call.ml" [ "A3-alloc-call" ]

let test_alloc_partial () =
  check_rules "partial application in hot body" ~pretend_path:"lib/foo/a.ml"
    "alloc_partial.ml" [ "A4-partial-app" ]

(* ---------- protection family ---------- *)

let test_prot_ownership () =
  check_rules "ownership mutation outside hypervisor"
    ~pretend_path:"lib/nic/bad.ml" "prot_ownership.ml"
    [
      "P1-ownership-boundary"; "P1-ownership-boundary"; "P1-ownership-boundary";
    ]

let test_prot_ownership_allowed_in_xen () =
  let diags, _ =
    lint_fixture ~pretend_path:"lib/xen/fine.ml" "prot_ownership.ml"
  in
  Alcotest.(check (list string)) "no P1 under lib/xen" [] (rules_of diags)

let test_prot_guest_mem () =
  check_rules "direct guest memory access" ~pretend_path:"lib/guestos/bad.ml"
    "prot_guest_mem.ml"
    [ "P2-guest-memory-boundary"; "P2-guest-memory-boundary" ];
  (* The same code outside the restricted layers is fine. *)
  let diags, _ =
    lint_fixture ~pretend_path:"lib/experiments/fine.ml" "prot_guest_mem.ml"
  in
  Alcotest.(check (list string)) "no P2 outside nic/guestos" [] (rules_of diags)

let test_prot_privileged () =
  let diags, stats =
    lint_fixture ~pretend_path:"lib/nic/priv.ml" "prot_privileged.ml"
  in
  Alcotest.(check (list string)) "privileged module clean" [] (rules_of diags);
  Alcotest.(check int) "privilege counted as suppression" 1
    (match List.assoc_opt "cdna.privileged" stats.Cdna_lint.suppression_counts with
    | Some n -> n
    | None -> 0)

(* ---------- suppression machinery ---------- *)

let test_suppressed () =
  let diags, stats =
    lint_fixture ~pretend_path:"lib/guestos/ok.ml" "suppressed.ml"
  in
  Alcotest.(check (list string)) "all suppressed" [] (rules_of diags);
  let total =
    List.fold_left (fun a (_, n) -> a + n) 0 stats.Cdna_lint.suppression_counts
  in
  Alcotest.(check bool) "suppressions tracked" true (total >= 5)

let test_missing_reason () =
  check_rules "reasonless suppression flagged" ~pretend_path:"lib/foo/a.ml"
    "missing_reason.ml" [ "S1-suppression-reason" ]

let test_hot_clean () =
  check_rules "clean hot code passes" ~pretend_path:"lib/foo/a.ml"
    "hot_clean.ml" []

let test_hot_submodule () =
  check_rules "hot binding in submodule resolves" ~pretend_path:"lib/foo/a.ml"
    "hot_submodule.ml" []

(* ---------- the real tree ---------- *)

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc e -> collect_ml acc (Filename.concat path e))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let test_lib_clean () =
  let root = Filename.concat ".." "lib" in
  if not (Sys.file_exists root) then ()
  else begin
    let files =
      collect_ml [] root
      |> List.sort String.compare
      |> List.map (fun p -> (p, read_file p))
    in
    Alcotest.(check bool) "lib/ has files" true (List.length files > 50);
    let diags, _ = Cdna_lint.run files in
    Alcotest.(check (list string))
      "lib/ is violation-free" []
      (List.map Cdna_lint.diag_to_string diags)
  end

(* [main.exe --only D1] semantics over parsetree diagnostics: the bare
   prefix and the full rule name both select, a non-prefix selects
   nothing. *)
let test_only_filter () =
  let files =
    List.map
      (fun f -> ("lib/foo/" ^ f, read_file (Filename.concat "fixtures" f)))
      [ "det_iter_unsorted.ml"; "det_poly_compare.ml" ]
  in
  let diags, _ = Cdna_lint.run files in
  let count only =
    List.length
      (List.filter (fun d -> Chain.rule_matches ~only d.Cdna_lint.rule) diags)
  in
  Alcotest.(check int) "D1 prefix filter" 1 (count (Some "D1"));
  Alcotest.(check int) "full rule name filter" 3
    (count (Some "D2-poly-compare"));
  Alcotest.(check int) "'D' is not a rule prefix" 0 (count (Some "D"));
  Alcotest.(check int) "no filter keeps everything" 4 (count None)

let () =
  Alcotest.run "cdna_lint"
    [
      ( "determinism",
        [
          Alcotest.test_case "iter unsorted" `Quick test_iter_unsorted;
          Alcotest.test_case "fold unsorted vs sorted" `Quick
            test_fold_unsorted;
          Alcotest.test_case "aliased Hashtbl" `Quick test_alias_hashtbl;
          Alcotest.test_case "poly compare" `Quick test_poly_compare;
          Alcotest.test_case "nondet primitives" `Quick test_nondet;
        ] );
      ( "zero-alloc",
        [
          Alcotest.test_case "construct" `Quick test_alloc_construct;
          Alcotest.test_case "closure" `Quick test_alloc_closure;
          Alcotest.test_case "call" `Quick test_alloc_call;
          Alcotest.test_case "partial app" `Quick test_alloc_partial;
        ] );
      ( "protection",
        [
          Alcotest.test_case "ownership" `Quick test_prot_ownership;
          Alcotest.test_case "ownership allowed in xen" `Quick
            test_prot_ownership_allowed_in_xen;
          Alcotest.test_case "guest memory" `Quick test_prot_guest_mem;
          Alcotest.test_case "privileged module" `Quick test_prot_privileged;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "justified annotations" `Quick test_suppressed;
          Alcotest.test_case "missing reason" `Quick test_missing_reason;
          Alcotest.test_case "clean hot code" `Quick test_hot_clean;
          Alcotest.test_case "hot in submodule" `Quick test_hot_submodule;
        ] );
      ( "tree",
        [
          Alcotest.test_case "lib violation-free" `Quick test_lib_clean;
          Alcotest.test_case "--only rule filtering" `Quick test_only_filter;
        ] );
    ]
