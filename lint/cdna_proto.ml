(* cdna_proto — interprocedural resource-protocol (typestate)
   verification over compiled [.cmt] typedtrees (compiler-libs).

   The fourth static pass (after cdna_lint / cdna_flow / cdna_dom):
   where cdna_flow asks "can guest data reach a DMA sink unsanitized?",
   this pass asks "is every acquired resource released on every exit
   path?" — the leaked-IOMMU-mapping class of bug the Intel ICE audit
   found in a production driver. Resources are declared once in a
   protocol table of acquire/release/use function pairs, seeded from
   the real pairs in lib/ (Iommu.grant->revoke, Hyp.assign_context->
   revoke, Page get_ref->put_ref, Pkt_buf try_reserve->release,
   Mmio map->revoke, Cnic save_context->restore_context_image,
   Mutex lock->unlock) and extensible per-function via annotation.

   Per function, an abstract interpretation over the typedtree tracks
   each resource through an acquired / released / conditionally-
   released / escaped lattice, with fixpoint function summaries
   (returned acquisitions, per-parameter acquires/releases/uses,
   raises) so lifetimes compose across modules. Rules:

   - PR1 leak-on-path: a locally-owned resource reaches a function
     exit — the normal return or a raising call site — still acquired
     (or acquired on some path), unless released by a [Fun.protect]
     finally or a matching exception handler.
   - PR2 double-release: a release on a resource already definitely
     released.
   - PR3 use-after-release: a declared use (e.g. [Mmio.read32])
     whose subject is definitely released.
   - PR4 release-without-acquire: a release whose subject provably
     never held the resource (freshly created and never acquired, or
     on a path where the conditional acquire failed).

   Ownership discipline (the provenance rules that keep ledger-style
   code in lib/ quiet): only *locally owned* resources are leak-checked
   — a resource is locally owned when it is the direct result of a
   declared acquire, or an effect-style acquire whose subject is a
   let-binding of a declared per-protocol creator ([Iommu.create],
   [Pkt_buf.create], [Mutex.create], ...). Acquires/releases on
   *parameter*-rooted subjects are never local leaks; they feed the
   function summary and are netted at call sites instead. Subjects
   that cannot be resolved to a parameter or fresh creator binding
   (projections through unknown calls, container reads) are ignored.

   Escape points (tracking stops, never reported): stored into a
   mutable field / array / container primitive, embedded in a record,
   captured by a closure used as a value, or passed to an unknown
   external callee. [Ok]/[Some]/tuple wrappers are transparent, so
   returned acquisitions are still seen through result types.

   Soundness envelope (documented, deliberate, one-sided — may miss
   leaks, never invents them): raising *exit paths* are direct
   raise-family call sites ([raise]/[failwith]/[invalid_arg]/[assert])
   only — a callee that merely may raise is not an exit, because
   invalid-argument guards are ubiquitous and flagging every held-
   across-call resource would drown the signal; and escaped resources
   are assumed released by their new owner.

   Annotation contract (DESIGN.md):
     [@cdna.acquires "proto"]    the function acquires [proto]; the
                                 resource is its return value, or its
                                 N-th positional argument with
                                 "proto@N"
     [@cdna.releases "proto"]    the function releases [proto] held by
                                 its 0th positional argument (or @N)
     [@cdna.proto_ok "why"]      suppresses protocol violations on the
                                 binding or subtree; the reason is
                                 mandatory (an empty reason does not
                                 suppress) *)

module SSet = Chain.SSet
module SMap = Chain.SMap
module ISet = Chain.ISet
module IdentMap = Chain.IdentMap
module IMap = Map.Make (Int)

type hop = Chain.hop = { hop_what : string; hop_file : string; hop_line : int }

type violation = Chain.violation = {
  rule : string;
  file : string;
  line : int;
  msg : string;
  chain : hop list;
  suppress : string option;
}

let violation_compare = Chain.violation_compare
let violation_to_string = Chain.violation_to_string
let hop = Chain.hop
let loc_file = Chain.loc_file
let loc_line = Chain.loc_line
let canon_of = Chain.canon_of
let last_comp = Chain.last_comp
let find_attr = Chain.find_attr
let attr_reason = Chain.attr_reason

let rule_pr1 = "PR1-leak-on-path"
let rule_pr2 = "PR2-double-release"
let rule_pr3 = "PR3-use-after-release"
let rule_pr4 = "PR4-release-without-acquire"

(* ------------------------------------------------------------------ *)
(* Protocol table                                                      *)
(* ------------------------------------------------------------------ *)

(* Where the resource lives relative to a protocol function: [Ret] — it
   is the function's result (handle style); [Arg i] — it is the i-th
   positional (unlabelled) argument (effect style: grant tables, packet
   buffers, mutexes). *)
type style = Ret | Arg of int

type proto = {
  p_name : string;
  p_acq : (string * style) list;
  p_rel : (string * style) list;
  p_use : (string * style) list;
  p_creators : string list;
}

let seeded_protocols =
  [
    {
      p_name = "iommu-grant";
      p_acq = [ ("Iommu.grant", Arg 0) ];
      p_rel = [ ("Iommu.revoke", Arg 0); ("Iommu.revoke_context", Arg 0) ];
      p_use = [];
      p_creators = [ "Iommu.create" ];
    };
    {
      p_name = "hyp-context";
      p_acq = [ ("Hyp.assign_context", Ret) ];
      p_rel = [ ("Hyp.revoke", Arg 1) ];
      p_use = [];
      p_creators = [];
    };
    {
      p_name = "page-pin";
      p_acq = [ ("Page.get_ref", Arg 0); ("Phys_mem.get_ref", Arg 0) ];
      p_rel = [ ("Page.put_ref", Arg 0); ("Phys_mem.put_ref", Arg 0) ];
      p_use = [];
      p_creators = [ "Page.create" ];
    };
    {
      p_name = "pkt-buf";
      p_acq = [ ("Pkt_buf.try_reserve", Arg 0) ];
      p_rel = [ ("Pkt_buf.release", Arg 0) ];
      p_use = [];
      p_creators = [ "Pkt_buf.create" ];
    };
    {
      p_name = "mmio-map";
      p_acq = [ ("Mmio.map", Ret) ];
      p_rel = [ ("Mmio.revoke", Arg 0) ];
      p_use = [ ("Mmio.read32", Arg 0); ("Mmio.write32", Arg 0) ];
      p_creators = [];
    };
    {
      p_name = "cnic-image";
      p_acq = [ ("Cnic.save_context", Ret) ];
      p_rel = [ ("Cnic.restore_context_image", Arg 1) ];
      p_use = [];
      p_creators = [];
    };
    {
      p_name = "mutex";
      p_acq = [ ("Mutex.lock", Arg 0) ];
      p_rel = [ ("Mutex.unlock", Arg 0) ];
      p_use = [];
      p_creators = [ "Mutex.create" ];
    };
  ]

let raise_family =
  SSet.of_list [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* Container-store primitives: a resource handed to one of these has
   escaped into a structure with its own lifecycle. *)
let store_fns =
  SSet.of_list
    [
      "Hashtbl.add"; "Hashtbl.replace"; "Queue.add"; "Queue.push";
      "Stack.push"; "Array.set"; "Array.unsafe_set"; ":="; "ref";
      "Atomic.set"; "Buffer.add_string";
    ]

(* Higher-order combinators whose literal lambda arguments run inline
   on the current path. *)
let hof_fns =
  SSet.of_list
    [
      "List.iter"; "List.iteri"; "List.map"; "List.mapi"; "List.fold_left";
      "List.filter"; "List.exists"; "List.for_all"; "Array.iter";
      "Array.iteri"; "Array.map"; "Queue.iter"; "Hashtbl.iter";
      "Option.iter"; "Option.map"; "Seq.iter";
    ]

(* ------------------------------------------------------------------ *)
(* Summaries and program representation                                *)
(* ------------------------------------------------------------------ *)

type psum = {
  ps_ret : (string * hop list) list; (* proto, acquire chain *)
  ps_param_acq : (int * string * hop list) list;
  ps_param_rel : (int * string * hop list) list;
  ps_param_use : (int * string * hop list) list;
  ps_raises : bool;
}

let empty_psum =
  {
    ps_ret = [];
    ps_param_acq = [];
    ps_param_rel = [];
    ps_param_use = [];
    ps_raises = false;
  }

let hops_image hs =
  String.concat ","
    (List.map
       (fun h -> Printf.sprintf "%s@%s:%d" h.hop_what h.hop_file h.hop_line)
       hs)

let psum_image s =
  let ret =
    List.map (fun (p, hs) -> p ^ "<" ^ hops_image hs) s.ps_ret
    |> List.sort String.compare
  in
  let tr tag l =
    List.map
      (fun (i, p, hs) -> Printf.sprintf "%s%d:%s<%s" tag i p (hops_image hs))
      l
    |> List.sort String.compare
  in
  String.concat "|"
    (ret @ tr "a" s.ps_param_acq @ tr "r" s.ps_param_rel
   @ tr "u" s.ps_param_use
    @ [ (if s.ps_raises then "!" else "") ])

type fn = {
  f_id : string;
  f_module : string;
  f_file : string;
  f_line : int;
  f_params : (string option * Typedtree.pattern) list;
  f_body : Typedtree.expression;
  f_suppress : string option; (* [@cdna.proto_ok "why"] on the binding *)
  mutable f_summary : psum;
}

type program = {
  mutable fns : fn SMap.t;
  mutable aliases : string SMap.t;
  mutable n_files : int;
  mutable acq_tbl : (string * style) list SMap.t; (* canon fn -> protos *)
  mutable rel_tbl : (string * style) list SMap.t;
  mutable use_tbl : (string * style) list SMap.t;
  mutable creators : string SMap.t; (* canon creator fn -> proto *)
  mutable acq_annots : int;
  mutable rel_annots : int;
}

let tbl_add tbl key v =
  let cur = match SMap.find_opt key tbl with Some l -> l | None -> [] in
  SMap.add key (cur @ [ v ]) tbl

let seed_tables prog =
  List.iter
    (fun p ->
      List.iter
        (fun (k, s) -> prog.acq_tbl <- tbl_add prog.acq_tbl k (p.p_name, s))
        p.p_acq;
      List.iter
        (fun (k, s) -> prog.rel_tbl <- tbl_add prog.rel_tbl k (p.p_name, s))
        p.p_rel;
      List.iter
        (fun (k, s) -> prog.use_tbl <- tbl_add prog.use_tbl k (p.p_name, s))
        p.p_use;
      List.iter
        (fun k -> prog.creators <- SMap.add k p.p_name prog.creators)
        p.p_creators)
    seeded_protocols

(* "proto" -> (proto, default); "proto@2" -> (proto, Arg 2). *)
let parse_proto_payload ~default s =
  match String.index_opt s '@' with
  | None -> (s, default)
  | Some i -> (
      let name = String.sub s 0 i in
      let idx = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt idx with
      | Some n -> (name, Arg n)
      | None -> (name, default))

(* ------------------------------------------------------------------ *)
(* Collection (pass 1)                                                 *)
(* ------------------------------------------------------------------ *)

let rec peel_params (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function
      { arg_label; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ } ->
      let lbl =
        match arg_label with
        | Asttypes.Nolabel -> None
        | Asttypes.Labelled s | Asttypes.Optional s -> Some s
      in
      let params, body = peel_params c_rhs in
      ((lbl, c_lhs) :: params, body)
  | _ -> ([], e)

let register_fn prog ~modname ~file (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with
  | Typedtree.Tpat_var (_, { txt = name; _ }) -> (
      let f_id = modname ^ "." ^ name in
      (match find_attr "cdna.acquires" vb.vb_attributes with
      | Some a -> (
          prog.acq_annots <- prog.acq_annots + 1;
          match attr_reason a with
          | Some payload ->
              let proto, st = parse_proto_payload ~default:Ret payload in
              prog.acq_tbl <- tbl_add prog.acq_tbl f_id (proto, st)
          | None -> ())
      | None -> ());
      (match find_attr "cdna.releases" vb.vb_attributes with
      | Some a -> (
          prog.rel_annots <- prog.rel_annots + 1;
          match attr_reason a with
          | Some payload ->
              let proto, st = parse_proto_payload ~default:(Arg 0) payload in
              prog.rel_tbl <- tbl_add prog.rel_tbl f_id (proto, st)
          | None -> ())
      | None -> ());
      match vb.vb_expr.exp_desc with
      | Typedtree.Texp_function _ ->
          let params, body = peel_params vb.vb_expr in
          let suppress =
            match find_attr "cdna.proto_ok" vb.vb_attributes with
            | Some a -> (
                match attr_reason a with
                | Some r when r <> "" -> Some r
                | _ -> None)
            | None -> None
          in
          let f =
            {
              f_id;
              f_module = modname;
              f_file = file;
              f_line = loc_line vb.vb_loc;
              f_params = params;
              f_body = body;
              f_suppress = suppress;
              f_summary = empty_psum;
            }
          in
          prog.fns <- SMap.add f.f_id f prog.fns
      | _ -> ())
  | _ -> ()

let rec collect_module prog ~modname ~file (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
          List.iter (register_fn prog ~modname ~file) vbs
      | Typedtree.Tstr_module mb -> collect_module_binding prog ~file mb
      | Typedtree.Tstr_recmodule mbs ->
          List.iter (collect_module_binding prog ~file) mbs
      | _ -> ())
    str.str_items

and collect_module_binding prog ~file (mb : Typedtree.module_binding) =
  let name =
    match mb.mb_id with
    | Some id -> Ident.name id
    | None -> ( match mb.mb_name.txt with Some n -> n | None -> "_")
  in
  let rec of_mexpr (me : Typedtree.module_expr) =
    match Chain.module_alias_target me with
    | Some target -> prog.aliases <- SMap.add name target prog.aliases
    | None -> (
        match me.mod_desc with
        | Typedtree.Tmod_structure s -> collect_module prog ~modname:name ~file s
        | Typedtree.Tmod_constraint (m, _, _, _) -> of_mexpr m
        | _ -> ())
  in
  of_mexpr mb.mb_expr

(* ------------------------------------------------------------------ *)
(* Abstract domain                                                     *)
(* ------------------------------------------------------------------ *)

(* Per-resource status; [Vac] marks a path on which the conditional
   acquire did not happen (failed reservation, [Error]/[None] branch of
   an acquire result). *)
type status =
  | Acq
  | Rel of hop (* released; the hop is the release site *)
  | CondRel of hop (* released on some path, still held on another *)
  | Vac of hop (* vacuously clean: not acquired on this path *)
  | Esc

type res = {
  r_id : int;
  r_proto : string;
  r_hops : hop list; (* acquire chain, oldest first *)
  r_what : string; (* display name of the acquire *)
  r_param : int option; (* [Some i]: subject rooted at parameter i *)
}

(* Abstract values flowing through the evaluator. *)
type aval =
  | Nothing
  | Res of ISet.t (* carries these resources *)
  | CondRes of int * bool (* bool acquire result; true = negated *)
  | PVal of int (* parameter-rooted; -1 for labelled params *)
  | FreshVal of string * hop (* creator result: proto, creation site *)

let join_status a b =
  match (a, b) with
  | Esc, _ | _, Esc -> Esc
  | Acq, Acq -> Acq
  | Rel h, Rel _ -> Rel h
  | Vac h, Vac _ -> Vac h
  | Rel h, Vac _ | Vac _, Rel h -> Rel h
  | Acq, Rel h | Rel h, Acq -> CondRel h
  | Acq, Vac h | Vac h, Acq -> CondRel h
  | CondRel h, _ | _, CondRel h -> CondRel h

let join_state a b =
  IMap.union (fun _ x y -> Some (join_status x y)) a b

let res_ids = function Res ids -> ids | _ -> ISet.empty

let join_aval a b =
  match (a, b) with
  | Nothing, x | x, Nothing -> x
  | Res a, Res b -> Res (ISet.union a b)
  | (Res _ as r), _ | _, (Res _ as r) -> r
  | x, _ -> x

(* ------------------------------------------------------------------ *)
(* Evaluation context                                                  *)
(* ------------------------------------------------------------------ *)

type frame = {
  fr_rel : ISet.t; (* released by the handler / finally *)
  fr_absorbs : bool; (* handler catches without reraising *)
}

type ctx = {
  prog : program;
  cur : fn;
  report : bool;
  viols : violation list ref;
  mutable next_id : int;
  mutable resources : res list; (* newest first *)
  subjects : (string, int) Hashtbl.t; (* "root.path#proto" -> r_id *)
  escaped_fresh : (string, unit) Hashtbl.t; (* fresh idents gone shared *)
  mutable frames : frame list; (* innermost first *)
  mutable sum_param_rel : (int * string * hop list) list;
  mutable sum_param_use : (int * string * hop list) list;
  mutable raises : bool;
}

let new_res ctx ~proto ~hops ~what ~param =
  let id = ctx.next_id in
  ctx.next_id <- id + 1;
  let r = { r_id = id; r_proto = proto; r_hops = hops; r_what = what;
            r_param = param } in
  ctx.resources <- r :: ctx.resources;
  r

let find_res ctx id = List.find (fun r -> r.r_id = id) ctx.resources

let record_violation ctx ~sup ~rule ~file ~line ~msg ~chain =
  if ctx.report then
    ctx.viols := { rule; file; line; msg; chain; suppress = sup } :: !(ctx.viols)

let fn_of_name ctx name =
  match SMap.find_opt name ctx.prog.fns with
  | Some f -> Some f
  | None ->
      if String.contains name '.' then None
      else SMap.find_opt (ctx.cur.f_module ^ "." ^ name) ctx.prog.fns

(* Resolve a canonical callee against a table, trying the local-module
   qualification for bare intra-module names. *)
let tbl_find ctx tbl name =
  match SMap.find_opt name tbl with
  | Some l -> Some l
  | None ->
      if String.contains name '.' then None
      else SMap.find_opt (ctx.cur.f_module ^ "." ^ name) tbl

let is_bool_type (e : Typedtree.expression) =
  match Types.get_desc e.Typedtree.exp_type with
  | Types.Tconstr (p, _, _) -> last_comp (Path.name p) = "bool"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Subjects and patterns                                               *)
(* ------------------------------------------------------------------ *)

(* The root-ident[.field]* path of an effect-style subject expression. *)
let rec subject_of (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) -> Some (id, Ident.name id)
  | Typedtree.Texp_field (e', _, ld) ->
      Option.map
        (fun (root, p) -> (root, p ^ "." ^ ld.Types.lbl_name))
        (subject_of e')
  | _ -> None

type subj_kind =
  | KTracked of int (* existing resource *)
  | KFresh of string * hop (* creator-bound local, never acquired *)
  | KParam of int
  | KOther

let classify_subject ctx env ~proto e =
  match subject_of e with
  | None -> (KOther, "")
  | Some (root, path) -> (
      let key = path ^ "#" ^ proto in
      match Hashtbl.find_opt ctx.subjects key with
      | Some id -> (KTracked id, path)
      | None -> (
          match IdentMap.find_opt root env with
          | Some (FreshVal (p, h))
            when p = proto
                 && path = Ident.name root
                 && not (Hashtbl.mem ctx.escaped_fresh (Ident.name root)) ->
              (KFresh (p, h), path)
          | Some (PVal i) -> (KParam i, path)
          | _ -> (KOther, path)))

let rec bind_pat : type k.
    aval IdentMap.t -> k Typedtree.general_pattern -> aval -> aval IdentMap.t =
 fun env p v ->
  match p.pat_desc with
  | Typedtree.Tpat_var (id, _) -> IdentMap.add id v env
  | Typedtree.Tpat_alias (p', id, _) -> bind_pat (IdentMap.add id v env) p' v
  | Typedtree.Tpat_tuple ps ->
      List.fold_left (fun env p' -> bind_pat env p' v) env ps
  | Typedtree.Tpat_record (fields, _) ->
      List.fold_left (fun env (_, _, p') -> bind_pat env p' v) env fields
  | Typedtree.Tpat_construct (_, _, ps, _) ->
      List.fold_left (fun env p' -> bind_pat env p' v) env ps
  | Typedtree.Tpat_variant (_, Some p', _) -> bind_pat env p' v
  | Typedtree.Tpat_variant (_, None, _) -> env
  | Typedtree.Tpat_array ps ->
      List.fold_left (fun env p' -> bind_pat env p' Nothing) env ps
  | Typedtree.Tpat_lazy p' -> bind_pat env p' v
  | Typedtree.Tpat_or (a, b, _) -> bind_pat (bind_pat env a v) b v
  | Typedtree.Tpat_value arg ->
      bind_pat env (arg :> Typedtree.value Typedtree.general_pattern) v
  | Typedtree.Tpat_exception p' -> bind_pat env p' Nothing
  | Typedtree.Tpat_any | Typedtree.Tpat_constant _ -> env

(* Does the case pattern mean "the acquire did not happen"? *)
let rec failure_pattern : type k. k Typedtree.general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Typedtree.Tpat_construct (_, cd, _, _) ->
      cd.Types.cstr_name = "Error" || cd.Types.cstr_name = "None"
  | Typedtree.Tpat_alias (p', _, _) -> failure_pattern p'
  | Typedtree.Tpat_value arg ->
      failure_pattern (arg :> Typedtree.value Typedtree.general_pattern)
  | Typedtree.Tpat_or (a, b, _) -> failure_pattern a && failure_pattern b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Escapes                                                             *)
(* ------------------------------------------------------------------ *)

let set_status st id s = IMap.add id s st

let esc_ids st ids = ISet.fold (fun id st -> set_status st id Esc) ids st

(* Escape every tracked subject rooted at [path] ("m", "pool.m", ...). *)
let esc_subjects ctx st path =
  Hashtbl.fold
    (fun key id st ->
      let root_matches =
        let pl = String.length path and kl = String.length key in
        kl > pl
        && String.sub key 0 pl = path
        && (key.[pl] = '.' || key.[pl] = '#')
      in
      if root_matches then set_status st id Esc else st)
    ctx.subjects st

(* A value leaves the function's ownership: stored, captured, or handed
   to an unknown callee. *)
let escape_val ctx env st v (expr : Typedtree.expression option) =
  let st = esc_ids st (res_ids v) in
  match expr with
  | Some e -> (
      match subject_of e with
      | Some (root, path) ->
          let st = esc_subjects ctx st path in
          (if path = Ident.name root then
             match IdentMap.find_opt root env with
             | Some (FreshVal _) ->
                 Hashtbl.replace ctx.escaped_fresh (Ident.name root) ()
             | _ -> ());
          st
      | None -> st)
  | None -> st

let escape_ident ctx env st (id : Ident.t) =
  let name = Ident.name id in
  let st =
    match IdentMap.find_opt id env with
    | Some (Res ids) -> esc_ids st ids
    | Some (FreshVal _) ->
        Hashtbl.replace ctx.escaped_fresh name ();
        st
    | _ -> st
  in
  esc_subjects ctx st name

(* Free identifiers of a closure body (for capture escapes). *)
let free_idents (e : Typedtree.expression) =
  let acc = ref [] in
  let visit it (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (Path.Pident id, _, _) -> acc := id :: !acc
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr = visit } in
  it.expr it e;
  !acc

(* ------------------------------------------------------------------ *)
(* Protocol actions                                                    *)
(* ------------------------------------------------------------------ *)

let matching_ids ctx ~proto ids =
  ISet.filter (fun id -> (find_res ctx id).r_proto = proto) ids

(* [rel_hops]: the witness chain for this release, last hop = the site
   in the current function. *)
let release_one ctx ~sup st ~rel_hops id =
  let r = find_res ctx id in
  let site = List.nth rel_hops (List.length rel_hops - 1) in
  match IMap.find_opt r.r_id st with
  | Some Acq | Some (CondRel _) -> set_status st id (Rel site)
  | Some (Rel h0) ->
      record_violation ctx ~sup ~rule:rule_pr2 ~file:site.hop_file
        ~line:site.hop_line
        ~msg:
          (Printf.sprintf "'%s' (%s) released again: already released at %s:%d"
             r.r_what r.r_proto h0.hop_file h0.hop_line)
        ~chain:(r.r_hops @ [ h0 ] @ rel_hops);
      st
  | Some (Vac h0) ->
      record_violation ctx ~sup ~rule:rule_pr4 ~file:site.hop_file
        ~line:site.hop_line
        ~msg:
          (Printf.sprintf
             "'%s' (%s) released on a path where the acquire did not happen"
             r.r_what r.r_proto)
        ~chain:(r.r_hops @ [ h0 ] @ rel_hops);
      set_status st id (Rel site)
  | Some Esc | None -> st

let release_at ctx ~sup env st ~proto ~rel_hops arg_expr arg_aval =
  let site = List.nth rel_hops (List.length rel_hops - 1) in
  let ids = matching_ids ctx ~proto (res_ids arg_aval) in
  if not (ISet.is_empty ids) then
    ISet.fold (fun id st -> release_one ctx ~sup st ~rel_hops id) ids st
  else
    match arg_expr with
    | None -> st
    | Some e -> (
        match classify_subject ctx env ~proto e with
        | KTracked id, _ -> release_one ctx ~sup st ~rel_hops id
        | KFresh (_, ch), path ->
            record_violation ctx ~sup ~rule:rule_pr4 ~file:site.hop_file
              ~line:site.hop_line
              ~msg:
                (Printf.sprintf "release of '%s' (%s) which never acquired it"
                   path proto)
              ~chain:(ch :: rel_hops);
            st
        | KParam i, _ when i >= 0 ->
            ctx.sum_param_rel <- (i, proto, rel_hops) :: ctx.sum_param_rel;
            st
        | (KParam _ | KOther), _ -> st)

let use_one ctx ~sup st ~use_hops id =
  let r = find_res ctx id in
  let site = List.nth use_hops (List.length use_hops - 1) in
  (match IMap.find_opt r.r_id st with
  | Some (Rel h0) ->
      record_violation ctx ~sup ~rule:rule_pr3 ~file:site.hop_file
        ~line:site.hop_line
        ~msg:
          (Printf.sprintf "use of '%s' (%s) after release at %s:%d" r.r_what
             r.r_proto h0.hop_file h0.hop_line)
        ~chain:(r.r_hops @ [ h0 ] @ use_hops)
  | _ -> ());
  st

let use_at ctx ~sup env st ~proto ~use_hops arg_expr arg_aval =
  let ids = matching_ids ctx ~proto (res_ids arg_aval) in
  if not (ISet.is_empty ids) then
    ISet.fold (fun id st -> use_one ctx ~sup st ~use_hops id) ids st
  else
    match arg_expr with
    | None -> st
    | Some e -> (
        match classify_subject ctx env ~proto e with
        | KTracked id, _ -> use_one ctx ~sup st ~use_hops id
        | KParam i, _ when i >= 0 ->
            ctx.sum_param_use <- (i, proto, use_hops) :: ctx.sum_param_use;
            st
        | _ -> st)

(* Returns the resource id acquired (for conditional-acquire results)
   and the updated state. *)
let acquire_subject ctx env st ~proto ~acq_hops arg_expr =
  match arg_expr with
  | None -> (None, st)
  | Some e -> (
      match classify_subject ctx env ~proto e with
      | KTracked id, _ -> (Some id, set_status st id Acq)
      | KFresh (_, ch), path ->
          let what =
            match acq_hops with h :: _ -> h.hop_what | [] -> proto
          in
          let r =
            new_res ctx ~proto ~hops:(ch :: acq_hops)
              ~what:(path ^ " " ^ what) ~param:None
          in
          Hashtbl.replace ctx.subjects (path ^ "#" ^ proto) r.r_id;
          (Some r.r_id, set_status st r.r_id Acq)
      | KParam i, path when i >= 0 ->
          let what =
            match acq_hops with h :: _ -> h.hop_what | [] -> proto
          in
          let r =
            new_res ctx ~proto ~hops:acq_hops ~what:(path ^ " " ^ what)
              ~param:(Some i)
          in
          Hashtbl.replace ctx.subjects (path ^ "#" ^ proto) r.r_id;
          (Some r.r_id, set_status st r.r_id Acq)
      | (KParam _ | KOther), _ -> (None, st))

(* A function exit via a raising call: every locally-owned resource
   still (conditionally) held and not protected by an enclosing finally
   or releasing handler leaks. *)
let raise_check ctx ~sup st (loc : Location.t) =
  let rec scan frames protected =
    match frames with
    | [] -> Some protected
    | f :: rest ->
        if f.fr_absorbs then None else scan rest (ISet.union protected f.fr_rel)
  in
  match scan ctx.frames ISet.empty with
  | None -> () (* absorbed by a handler: not a function exit *)
  | Some protected ->
      ctx.raises <- true;
      List.iter
        (fun r ->
          if r.r_param = None && not (ISet.mem r.r_id protected) then
            let leak chain =
              match r.r_hops with
              | h0 :: _ ->
                  record_violation ctx ~sup ~rule:rule_pr1 ~file:h0.hop_file
                    ~line:h0.hop_line
                    ~msg:
                      (Printf.sprintf
                         "'%s' (%s) leaks on a raising path at %s:%d" r.r_what
                         r.r_proto (loc_file loc) (loc_line loc))
                    ~chain
              | [] -> ()
            in
            match IMap.find_opt r.r_id st with
            | Some Acq ->
                leak (r.r_hops @ [ hop "raises without releasing" loc ])
            | Some (CondRel h) ->
                leak (r.r_hops @ [ h; hop "raises without releasing" loc ])
            | _ -> ())
        ctx.resources

(* Syntactic pre-scan of a handler / finally body: which tracked
   resources does it release? *)
let release_targets ctx env (e : Typedtree.expression) =
  let acc = ref ISet.empty in
  let add_expr_target proto (a : Typedtree.expression) =
    (match a.Typedtree.exp_desc with
    | Typedtree.Texp_ident (Path.Pident id, _, _) -> (
        match IdentMap.find_opt id env with
        | Some (Res ids) -> acc := ISet.union (matching_ids ctx ~proto ids) !acc
        | _ -> ())
    | _ -> ());
    match subject_of a with
    | Some (_, path) -> (
        match Hashtbl.find_opt ctx.subjects (path ^ "#" ^ proto) with
        | Some id -> acc := ISet.add id !acc
        | None -> ())
    | None -> ()
  in
  let visit it (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_apply (fe, args) -> (
        match fe.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            let c = canon_of ctx.prog.aliases (Path.name p) in
            match tbl_find ctx ctx.prog.rel_tbl c with
            | Some entries ->
                List.iter
                  (fun (proto, style) ->
                    match style with
                    | Arg i -> (
                        let pos = ref (-1) in
                        List.iter
                          (fun (lbl, a) ->
                            match (lbl, a) with
                            | Asttypes.Nolabel, Some a ->
                                incr pos;
                                if !pos = i then add_expr_target proto a
                            | _ -> ())
                          args)
                    | Ret -> ())
                  entries
            | None -> ())
        | _ -> ());
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr = visit } in
  it.expr it e;
  !acc

let contains_raise ctx (e : Typedtree.expression) =
  let found = ref false in
  let visit it (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_apply (fe, _) -> (
        match fe.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) ->
            let c = canon_of ctx.prog.aliases (Path.name p) in
            if SSet.mem (last_comp c) raise_family then found := true
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr = visit } in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let callee_of ctx (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) ->
      Some (canon_of ctx.prog.aliases (Path.name p))
  | _ -> None

let lambda_body (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function _ ->
      let params, body = peel_params e in
      Some (params, body)
  | _ -> None

let nth_nolabel args i =
  let pos = ref (-1) in
  List.find_map
    (fun (lbl, av, e) ->
      match lbl with
      | None ->
          incr pos;
          if !pos = i then Some (av, e) else None
      | Some _ -> None)
    args

let rec eval ctx ~(sup : string option) env st (e : Typedtree.expression) :
    aval * status IMap.t =
  let sup =
    match find_attr "cdna.proto_ok" e.exp_attributes with
    | Some a -> (
        match attr_reason a with Some r when r <> "" -> Some r | _ -> sup)
    | None -> sup
  in
  match e.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) -> (
      match IdentMap.find_opt id env with
      | Some v -> (v, st)
      | None -> (Nothing, st))
  | Typedtree.Texp_ident _ | Typedtree.Texp_constant _ -> (Nothing, st)
  | Typedtree.Texp_let (_, vbs, body) ->
      let env, st =
        List.fold_left
          (fun (env, st) (vb : Typedtree.value_binding) ->
            let sup =
              match find_attr "cdna.proto_ok" vb.vb_attributes with
              | Some a -> (
                  match attr_reason a with
                  | Some r when r <> "" -> Some r
                  | _ -> sup)
              | None -> sup
            in
            let v, st = eval ctx ~sup env st vb.vb_expr in
            (bind_pat env vb.vb_pat v, st))
          (env, st) vbs
      in
      eval ctx ~sup env st body
  | Typedtree.Texp_function { cases; _ } ->
      (* A closure used as a value: everything it captures escapes. *)
      let st =
        List.fold_left
          (fun st (c : Typedtree.value Typedtree.case) ->
            List.fold_left
              (fun st id -> escape_ident ctx env st id)
              st
              (free_idents c.c_rhs))
          st cases
      in
      (Nothing, st)
  | Typedtree.Texp_apply (fe, args) -> eval_apply ctx ~sup env st e fe args
  | Typedtree.Texp_match (scrut, cases, _) ->
      let sv, st0 = eval ctx ~sup env st scrut in
      let branches =
        List.map
          (fun (c : Typedtree.computation Typedtree.case) ->
            let env_c = bind_pat env c.c_lhs sv in
            let st_c =
              if failure_pattern c.c_lhs then
                ISet.fold
                  (fun id st ->
                    set_status st id
                      (Vac (hop "acquire did not happen on this branch"
                              c.c_lhs.pat_loc)))
                  (res_ids sv) st0
              else st0
            in
            let st_c =
              match c.c_guard with
              | Some g ->
                  let _, st_c = eval ctx ~sup env_c st_c g in
                  st_c
              | None -> st_c
            in
            eval ctx ~sup env_c st_c c.c_rhs)
          cases
      in
      join_branches branches
  | Typedtree.Texp_try (body, cases) ->
      let rel_ids =
        List.fold_left
          (fun acc (c : Typedtree.value Typedtree.case) ->
            ISet.union acc (release_targets ctx env c.c_rhs))
          ISet.empty cases
      in
      let reraises =
        List.exists
          (fun (c : Typedtree.value Typedtree.case) ->
            contains_raise ctx c.c_rhs)
          cases
      in
      ctx.frames <-
        { fr_rel = rel_ids; fr_absorbs = not reraises } :: ctx.frames;
      let av_b, st_b = eval ctx ~sup env st body in
      (ctx.frames <- (match ctx.frames with _ :: t -> t | [] -> []));
      let branches =
        (av_b, st_b)
        :: List.map
             (fun (c : Typedtree.value Typedtree.case) ->
               let env_c = bind_pat env c.c_lhs Nothing in
               eval ctx ~sup env_c st c.c_rhs)
             cases
      in
      join_branches branches
  | Typedtree.Texp_ifthenelse (cond, th, el) ->
      let cv, st0 = eval ctx ~sup env st cond in
      let st_then, st_else =
        match cv with
        | CondRes (id, false) ->
            ( st0,
              set_status st0 id
                (Vac (hop "conditional acquire failed" cond.exp_loc)) )
        | CondRes (id, true) ->
            ( set_status st0 id
                (Vac (hop "conditional acquire failed" cond.exp_loc)),
              st0 )
        | _ -> (st0, st0)
      in
      let tv, st1 = eval ctx ~sup env st_then th in
      let ev, st2 =
        match el with
        | Some el -> eval ctx ~sup env st_else el
        | None -> (Nothing, st_else)
      in
      (join_aval tv ev, join_state st1 st2)
  | Typedtree.Texp_sequence (a, b) ->
      let _, st = eval ctx ~sup env st a in
      eval ctx ~sup env st b
  | Typedtree.Texp_tuple es | Typedtree.Texp_construct (_, _, es) ->
      (* Constructors ([Ok]/[Some]/...) and tuples are transparent
         wrappers: carried resources stay visible to the caller. *)
      let avs, st =
        List.fold_left
          (fun (avs, st) e ->
            let v, st = eval ctx ~sup env st e in
            (v :: avs, st))
          ([], st) es
      in
      let ids =
        List.fold_left (fun acc v -> ISet.union acc (res_ids v)) ISet.empty avs
      in
      ((if ISet.is_empty ids then Nothing else Res ids), st)
  | Typedtree.Texp_record { fields; extended_expression; _ } ->
      (* Embedding in a record hands ownership to the aggregate. *)
      let st =
        match extended_expression with
        | Some e' ->
            let _, st = eval ctx ~sup env st e' in
            st
        | None -> st
      in
      let st =
        Array.fold_left
          (fun st (_, (def : Typedtree.record_label_definition)) ->
            match def with
            | Typedtree.Kept _ -> st
            | Typedtree.Overridden (_, fe) ->
                let v, st = eval ctx ~sup env st fe in
                escape_val ctx env st v (Some fe))
          st fields
      in
      (Nothing, st)
  | Typedtree.Texp_array es ->
      let st =
        List.fold_left
          (fun st e ->
            let v, st = eval ctx ~sup env st e in
            escape_val ctx env st v (Some e))
          st es
      in
      (Nothing, st)
  | Typedtree.Texp_field (e', _, _) ->
      let v, st = eval ctx ~sup env st e' in
      let v' =
        match v with Res _ -> v | PVal i -> PVal i | _ -> Nothing
      in
      (v', st)
  | Typedtree.Texp_setfield (e1, _, _, e2) ->
      let _, st = eval ctx ~sup env st e1 in
      let v2, st = eval ctx ~sup env st e2 in
      (Nothing, escape_val ctx env st v2 (Some e2))
  | Typedtree.Texp_while (c, body) ->
      let _, st0 = eval ctx ~sup env st c in
      let _, st1 = eval ctx ~sup env st0 body in
      (Nothing, join_state st0 st1)
  | Typedtree.Texp_for (_, _, lo, hi, _, body) ->
      let _, st = eval ctx ~sup env st lo in
      let _, st0 = eval ctx ~sup env st hi in
      let _, st1 = eval ctx ~sup env st0 body in
      (Nothing, join_state st0 st1)
  | Typedtree.Texp_assert (e', _) ->
      let _, st = eval ctx ~sup env st e' in
      raise_check ctx ~sup st e.exp_loc;
      (Nothing, st)
  | Typedtree.Texp_letmodule (_, _, _, _, body) | Typedtree.Texp_open (_, body)
    ->
      eval ctx ~sup env st body
  | _ ->
      (* Conservative default: evaluate children left-to-right for their
         state effects. *)
      let st_ref = ref st in
      let visit _ (ce : Typedtree.expression) =
        let _, st' = eval ctx ~sup env !st_ref ce in
        st_ref := st'
      in
      let it = { Tast_iterator.default_iterator with expr = visit } in
      Tast_iterator.default_iterator.expr it e;
      (Nothing, !st_ref)

and join_branches = function
  | [] -> (Nothing, IMap.empty)
  | (av, st) :: rest ->
      List.fold_left
        (fun (av, st) (av', st') -> (join_aval av av', join_state st st'))
        (av, st) rest

and eval_apply ctx ~sup env st (e : Typedtree.expression) fe args =
  let loc = e.Typedtree.exp_loc in
  match callee_of ctx fe with
  | Some c when SSet.mem (last_comp c) raise_family ->
      let st =
        List.fold_left
          (fun st (_, a) ->
            match a with
            | Some a ->
                let _, st = eval ctx ~sup env st a in
                st
            | None -> st)
          st args
      in
      raise_check ctx ~sup st loc;
      (Nothing, st)
  | Some "Fun.protect" -> eval_protect ctx ~sup env st loc args
  | Some c when last_comp c = "not" -> (
      match args with
      | [ (Asttypes.Nolabel, Some a) ] -> (
          let v, st = eval ctx ~sup env st a in
          match v with
          | CondRes (id, n) -> (CondRes (id, not n), st)
          | _ -> (Nothing, st))
      | _ -> eval_unknown ctx ~sup env st args)
  | Some c when last_comp c = "&&" ->
      let avs, st =
        List.fold_left
          (fun (avs, st) (_, a) ->
            match a with
            | Some a ->
                let v, st = eval ctx ~sup env st a in
                (v :: avs, st)
            | None -> (avs, st))
          ([], st) args
      in
      let cond =
        List.find_opt (function CondRes _ -> true | _ -> false) avs
      in
      ((match cond with Some v -> v | None -> Nothing), st)
  | Some c when last_comp c = "ignore" ->
      let st =
        List.fold_left
          (fun st (_, a) ->
            match a with
            | Some a ->
                let _, st = eval ctx ~sup env st a in
                st
            | None -> st)
          st args
      in
      (Nothing, st)
  | Some c -> (
      let acq = tbl_find ctx ctx.prog.acq_tbl c in
      let rel = tbl_find ctx ctx.prog.rel_tbl c in
      let use = tbl_find ctx ctx.prog.use_tbl c in
      let creator =
        match SMap.find_opt c ctx.prog.creators with
        | Some p -> Some p
        | None ->
            if String.contains c '.' then None
            else SMap.find_opt (ctx.cur.f_module ^ "." ^ c) ctx.prog.creators
      in
      let is_hof = SSet.mem c hof_fns in
      let is_store = SSet.mem c store_fns || SSet.mem (last_comp c) store_fns in
      (* Evaluate arguments; literal lambdas to HOF combinators run
         inline instead of escaping their captures. *)
      let eargs, st =
        List.fold_left
          (fun (acc, st) (lbl, a) ->
            match a with
            | None -> (acc, st)
            | Some a -> (
                let lbl =
                  match lbl with
                  | Asttypes.Nolabel -> None
                  | Asttypes.Labelled s | Asttypes.Optional s -> Some s
                in
                match (is_hof, lambda_body a) with
                | true, Some (params, body) ->
                    let env' =
                      List.fold_left
                        (fun env (_, pat) -> bind_pat env pat Nothing)
                        env params
                    in
                    let _, st = eval ctx ~sup env' st body in
                    (acc @ [ (lbl, Nothing, a) ], st)
                | _ ->
                    let v, st = eval ctx ~sup env st a in
                    (acc @ [ (lbl, v, a) ], st)))
          ([], st) args
      in
      let apply_style st entries mk =
        List.fold_left
          (fun st (proto, style) ->
            match style with
            | Arg i -> (
                match nth_nolabel eargs i with
                | Some (av, ae) -> mk st proto (Some ae) av
                | None -> st)
            | Ret -> st)
          st entries
      in
      let st =
        match rel with
        | Some entries ->
            apply_style st entries (fun st proto ae av ->
                release_at ctx ~sup env st ~proto
                  ~rel_hops:[ hop ("released by " ^ c) loc ]
                  ae av)
        | None -> st
      in
      let st =
        match use with
        | Some entries ->
            apply_style st entries (fun st proto ae av ->
                use_at ctx ~sup env st ~proto
                  ~use_hops:[ hop ("used by " ^ c) loc ]
                  ae av)
        | None -> st
      in
      match acq with
      | Some entries ->
          let ret_ids = ref ISet.empty in
          let cond_id = ref None in
          let st =
            List.fold_left
              (fun st (proto, style) ->
                let acq_hops = [ hop ("acquired by " ^ c) loc ] in
                match style with
                | Ret ->
                    let r =
                      new_res ctx ~proto ~hops:acq_hops ~what:c ~param:None
                    in
                    ret_ids := ISet.add r.r_id !ret_ids;
                    set_status st r.r_id Acq
                | Arg i -> (
                    match nth_nolabel eargs i with
                    | Some (_, ae) ->
                        let rid, st =
                          acquire_subject ctx env st ~proto ~acq_hops (Some ae)
                        in
                        (match rid with
                        | Some id when is_bool_type e -> cond_id := Some id
                        | _ -> ());
                        st
                    | None -> st))
              st entries
          in
          let av =
            if not (ISet.is_empty !ret_ids) then Res !ret_ids
            else
              match !cond_id with
              | Some id -> CondRes (id, false)
              | None -> Nothing
          in
          (av, st)
      | None -> (
          match creator with
          | Some proto ->
              (FreshVal (proto, hop ("created by " ^ c) loc), st)
          | None -> (
              if rel <> None || use <> None then (Nothing, st)
              else
                match fn_of_name ctx c with
                | Some callee -> apply_summary ctx ~sup env st ~loc callee eargs
                | None ->
                    if is_store then
                      ( Nothing,
                        List.fold_left
                          (fun st (_, av, ae) ->
                            escape_val ctx env st av (Some ae))
                          st eargs )
                    else
                      ( Nothing,
                        List.fold_left
                          (fun st (_, av, ae) ->
                            escape_val ctx env st av (Some ae))
                          st eargs ))))
  | None ->
      let _, st = eval ctx ~sup env st fe in
      eval_unknown ctx ~sup env st args

and eval_unknown ctx ~sup env st args =
  let st =
    List.fold_left
      (fun st (_, a) ->
        match a with
        | Some a ->
            let v, st = eval ctx ~sup env st a in
            escape_val ctx env st v (Some a)
        | None -> st)
      st args
  in
  (Nothing, st)

and eval_protect ctx ~sup env st _loc args =
  let finally =
    List.find_map
      (fun (lbl, a) ->
        match (lbl, a) with
        | Asttypes.Labelled "finally", Some a -> Some a
        | _ -> None)
      args
  in
  let thunk =
    List.fold_left
      (fun acc (lbl, a) ->
        match (lbl, a) with Asttypes.Nolabel, Some a -> Some a | _ -> acc)
      None args
  in
  match (finally, thunk) with
  | Some fin, Some th ->
      let fin_body =
        match lambda_body fin with Some (_, b) -> Some b | None -> None
      in
      let targets =
        match fin_body with
        | Some b -> release_targets ctx env b
        | None -> ISet.empty
      in
      ctx.frames <- { fr_rel = targets; fr_absorbs = false } :: ctx.frames;
      let av, st =
        match lambda_body th with
        | Some (_, b) -> eval ctx ~sup env st b
        | None -> eval ctx ~sup env st th
      in
      (ctx.frames <- (match ctx.frames with _ :: t -> t | [] -> []));
      let st =
        match fin_body with
        | Some b ->
            let _, st = eval ctx ~sup env st b in
            st
        | None -> st
      in
      (av, st)
  | _ -> eval_unknown ctx ~sup env st args

(* Apply a callee's fixpoint summary at the call site, extending hop
   chains through the call so cross-module lifetimes read end to end. *)
and apply_summary ctx ~sup env st ~loc (callee : fn) eargs =
  let s = callee.f_summary in
  let st =
    List.fold_left
      (fun st (i, proto, hops) ->
        match nth_nolabel eargs i with
        | Some (av, ae) ->
            release_at ctx ~sup env st ~proto
              ~rel_hops:(hops @ [ hop ("released via " ^ callee.f_id) loc ])
              (Some ae) av
        | None -> st)
      st s.ps_param_rel
  in
  let st =
    List.fold_left
      (fun st (i, proto, hops) ->
        match nth_nolabel eargs i with
        | Some (av, ae) ->
            use_at ctx ~sup env st ~proto
              ~use_hops:(hops @ [ hop ("used via " ^ callee.f_id) loc ])
              (Some ae) av
        | None -> st)
      st s.ps_param_use
  in
  let st =
    List.fold_left
      (fun st (i, proto, hops) ->
        match nth_nolabel eargs i with
        | Some (_, ae) ->
            let _, st =
              acquire_subject ctx env st ~proto
                ~acq_hops:(hops @ [ hop ("acquired via " ^ callee.f_id) loc ])
                (Some ae)
            in
            st
        | None -> st)
      st s.ps_param_acq
  in
  let ret_ids, st =
    List.fold_left
      (fun (ids, st) (proto, hops) ->
        let r =
          new_res ctx ~proto
            ~hops:(hops @ [ hop ("acquired via " ^ callee.f_id) loc ])
            ~what:callee.f_id ~param:None
        in
        (ISet.add r.r_id ids, set_status st r.r_id Acq))
      (ISet.empty, st) s.ps_ret
  in
  ((if ISet.is_empty ret_ids then Nothing else Res ret_ids), st)

(* ------------------------------------------------------------------ *)
(* Per-function analysis                                               *)
(* ------------------------------------------------------------------ *)

(* Analyze one function body; returns its (possibly improved) summary.
   With [report=true] also records violations for locally-owned
   resources that fail their protocol on some exit path. *)
let eval_fn prog ~report viols (f : fn) : psum =
  let ctx =
    {
      prog;
      cur = f;
      report;
      viols;
      next_id = 0;
      resources = [];
      subjects = Hashtbl.create 16;
      escaped_fresh = Hashtbl.create 16;
      frames = [];
      sum_param_rel = [];
      sum_param_use = [];
      raises = false;
    }
  in
  let env, _ =
    List.fold_left
      (fun (env, pos) (lbl, pat) ->
        match lbl with
        | None -> (bind_pat env pat (PVal pos), pos + 1)
        | Some _ -> (bind_pat env pat (PVal (-1)), pos))
      (IdentMap.empty, 0) f.f_params
  in
  let sup = f.f_suppress in
  let av, st = eval ctx ~sup env IMap.empty f.f_body in
  let returned = res_ids av in
  let exit_hop =
    {
      hop_what = "function exit " ^ f.f_id;
      hop_file = f.f_file;
      hop_line = f.f_line;
    }
  in
  let ps_ret = ref [] and ps_param_acq = ref [] in
  List.iter
    (fun r ->
      let stat = IMap.find_opt r.r_id st in
      if ISet.mem r.r_id returned then (
        match stat with
        | Some Acq | Some (CondRel _) ->
            ps_ret := (r.r_proto, r.r_hops @ [ exit_hop ]) :: !ps_ret
        | _ -> ())
      else
        match (r.r_param, stat) with
        | None, Some Acq -> (
            match r.r_hops with
            | h0 :: _ ->
                record_violation ctx ~sup ~rule:rule_pr1 ~file:h0.hop_file
                  ~line:h0.hop_line
                  ~msg:
                    (Printf.sprintf "'%s' (%s) is never released" r.r_what
                       r.r_proto)
                  ~chain:(r.r_hops @ [ exit_hop ])
            | [] -> ())
        | None, Some (CondRel h) -> (
            match r.r_hops with
            | h0 :: _ ->
                record_violation ctx ~sup ~rule:rule_pr1 ~file:h0.hop_file
                  ~line:h0.hop_line
                  ~msg:
                    (Printf.sprintf
                       "'%s' (%s) is released on some paths but leaks on \
                        others" r.r_what r.r_proto)
                  ~chain:(r.r_hops @ [ h; exit_hop ])
            | [] -> ())
        | Some i, Some Acq when i >= 0 ->
            ps_param_acq := (i, r.r_proto, r.r_hops) :: !ps_param_acq
        | _ -> ())
    (List.rev ctx.resources);
  {
    ps_ret = List.sort_uniq compare !ps_ret;
    ps_param_acq = List.sort_uniq compare !ps_param_acq;
    ps_param_rel = List.sort_uniq compare ctx.sum_param_rel;
    ps_param_use = List.sort_uniq compare ctx.sum_param_use;
    ps_raises = ctx.raises;
  }

(* ------------------------------------------------------------------ *)
(* Program loading and fixpoint                                        *)
(* ------------------------------------------------------------------ *)

let load_program cmt_paths =
  let prog =
    {
      fns = SMap.empty;
      aliases = SMap.empty;
      n_files = 0;
      acq_tbl = SMap.empty;
      rel_tbl = SMap.empty;
      use_tbl = SMap.empty;
      creators = SMap.empty;
      acq_annots = 0;
      rel_annots = 0;
    }
  in
  seed_tables prog;
  List.iter
    (fun path ->
      let cmt = Cmt_format.read_cmt path in
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          let file =
            match cmt.Cmt_format.cmt_sourcefile with
            | Some f -> f
            | None -> path
          in
          if not (Filename.check_suffix file ".ml-gen") then (
            prog.n_files <- prog.n_files + 1;
            let modname = Chain.strip_wrap cmt.Cmt_format.cmt_modname in
            collect_module prog ~modname ~file str)
      | _ -> ())
    cmt_paths;
  prog

type report = {
  cmt_files : int;
  functions : int;
  protocols : int;
  acq_fns : int;
  rel_fns : int;
  acq_annots : int;
  rel_annots : int;
  violations : violation list;
  suppressed : violation list;
}

let analyze_paths cmt_paths =
  let prog = load_program cmt_paths in
  (* Fixpoint over summaries: re-run until no psum changes (bounded). *)
  let changed = ref true and iters = ref 0 in
  while !changed && !iters < 20 do
    changed := false;
    incr iters;
    SMap.iter
      (fun _ f ->
        let s = eval_fn prog ~report:false (ref []) f in
        if psum_image s <> psum_image f.f_summary then (
          f.f_summary <- s;
          changed := true))
      prog.fns
  done;
  (* Report pass with stable summaries. *)
  let viols = ref [] in
  SMap.iter (fun _ f -> ignore (eval_fn prog ~report:true viols f)) prog.fns;
  let seen = Hashtbl.create 64 in
  let vs =
    List.filter
      (fun v ->
        let key = (v.rule, v.file, v.line, v.msg) in
        if Hashtbl.mem seen key then false
        else (
          Hashtbl.replace seen key ();
          true))
      !viols
    |> List.sort violation_compare
  in
  let suppressed, violations =
    List.partition (fun v -> v.suppress <> None) vs
  in
  let protocols =
    SMap.fold
      (fun _ entries acc ->
        List.fold_left (fun acc (p, _) -> SSet.add p acc) acc entries)
      prog.acq_tbl SSet.empty
  in
  {
    cmt_files = prog.n_files;
    functions = SMap.cardinal prog.fns;
    protocols = SSet.cardinal protocols;
    acq_fns = SMap.cardinal prog.acq_tbl;
    rel_fns = SMap.cardinal prog.rel_tbl;
    acq_annots = prog.acq_annots;
    rel_annots = prog.rel_annots;
    violations;
    suppressed;
  }

let analyze root =
  analyze_paths (Chain.collect_cmts [] root |> List.sort String.compare)

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let report_to_json (r : report) =
  Sim.Json.Obj
    [
      ("cmt_files", Sim.Json.Int r.cmt_files);
      ("functions", Sim.Json.Int r.functions);
      ("protocols", Sim.Json.Int r.protocols);
      ("acquire_fns", Sim.Json.Int r.acq_fns);
      ("release_fns", Sim.Json.Int r.rel_fns);
      ("acquire_annots", Sim.Json.Int r.acq_annots);
      ("release_annots", Sim.Json.Int r.rel_annots);
      ("violations", Sim.Json.Int (List.length r.violations));
      ("suppressions", Sim.Json.Int (List.length r.suppressed));
      ("rules", Chain.rule_counts_json r.violations);
      ( "reports",
        Sim.Json.List (List.map Chain.violation_to_json r.violations) );
      ( "suppressed",
        Sim.Json.List (List.map Chain.violation_to_json r.suppressed) );
    ]
