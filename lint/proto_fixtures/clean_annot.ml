(* Clean: a protocol declared by annotation rather than the seeded
   table — [open_window] acquires "dma-window" (result style),
   [close_window] releases it, and the pairing is balanced. *)

let[@cdna.acquires "dma-window"] open_window slot = slot land 0xff
let[@cdna.releases "dma-window"] close_window w = ignore (w : int)

let balanced () =
  let w = open_window 3 in
  close_window w
