(* Clean: both mappings escape into structures with their own
   lifecycle (a hashtable, a ref cell) — ownership transfers, so no
   leak is reported at this function's exit. *)

let stash_mapping tbl r =
  let m = Proto_env.Mmio.map r in
  Hashtbl.replace tbl 0 m

let publish_mapping cell r =
  let m = Proto_env.Mmio.map r in
  cell := Some m
