(* Hop 1 of the cross-module leak: acquires a mapping and returns it,
   so the acquisition appears in this function's summary. *)

let make_mapping r = Proto_env.Mmio.map r
