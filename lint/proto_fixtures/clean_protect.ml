(* Clean: the mapping is held across a raising region, but a
   [Fun.protect ~finally] revokes it on every exit path. *)

let read_protected r =
  let m = Proto_env.Mmio.map r in
  Fun.protect
    ~finally:(fun () -> Proto_env.Mmio.revoke m)
    (fun () ->
      let v = Proto_env.Mmio.read32 m ~offset:0 in
      if v < 0 then failwith "bad register";
      v)
