(* Hop 3 of the cross-module leak: the mapping acquired two modules
   away is consumed here and never revoked (PR1, with a chain spanning
   cross_a.ml -> cross_b.ml -> cross_c.ml). *)

let leak_through r =
  let m = Cross_b.wrap r in
  ignore (Proto_env.Mmio.read32 m ~offset:0)
