(* Clean: the exception handler revokes the mapping before reraising,
   and the normal path revokes it after the try — no path leaks. *)

let read_with_handler r =
  let m = Proto_env.Mmio.map r in
  let v =
    try Proto_env.Mmio.read32 m ~offset:4
    with Proto_env.Fault _ ->
      Proto_env.Mmio.revoke m;
      raise Exit
  in
  Proto_env.Mmio.revoke m;
  v
