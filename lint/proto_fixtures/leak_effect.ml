(* PR1 for an effect-style acquire on a locally created subject: the
   lock is taken on a fresh mutex and never released. The iteration
   lambda runs inline (List.iter is a known combinator), so capturing
   the mutex does not count as an escape. *)

let sum_locked xs =
  let m = Proto_env.Mutex.create () in
  Proto_env.Mutex.lock m;
  let total = ref 0 in
  List.iter (fun x -> total := !total + x) xs;
  !total
