(* PR3: a declared use ([Mmio.write32]) on a mapping after its revoke —
   the static analogue of the runtime [Fault] the bus raises. *)

let write_after_revoke r =
  let m = Proto_env.Mmio.map r in
  Proto_env.Mmio.revoke m;
  Proto_env.Mmio.write32 m ~offset:0 1
