(* PR2 through an alias: the second revoke reaches the same mapping
   via a different binding. *)

let revoke_twice r =
  let m = Proto_env.Mmio.map r in
  let handle = m in
  Proto_env.Mmio.revoke handle;
  Proto_env.Mmio.revoke m
