(* Self-contained stand-ins for the protocol surface cdna_proto models.

   The analyzer canonicalizes identifiers to their last two path
   components, so [Proto_env.Iommu.grant] matches the seeded pair
   [Iommu.grant]->[Iommu.revoke] exactly as the real [Xen.Iommu] does —
   fixtures exercise the typestate analysis without linking the
   simulator. Bodies are inert; they exist only so fixtures typecheck
   (and so the acquire stand-ins have the right result types: bool for
   [try_reserve], a handle for [map]). *)

exception Fault of int

module Iommu = struct
  type t = { mutable grants : int }

  let create () = { grants = 0 }
  let grant t pfn = t.grants <- t.grants + pfn
  let revoke t pfn = t.grants <- t.grants - pfn
  let revoke_context t ctx = t.grants <- t.grants - ctx
end

module Mmio = struct
  type region = int
  type t = { mutable revoked : bool }

  let region (n : int) : region = n
  let map (_ : region) = { revoked = false }
  let revoke m = m.revoked <- true
  let read32 m ~offset = if m.revoked then raise (Fault offset) else 0
  let write32 m ~offset (_ : int) = if m.revoked then raise (Fault offset)
end

module Pkt_buf = struct
  type t = { mutable used : int }

  let create () = { used = 0 }

  let try_reserve b =
    if b.used < 8 then (
      b.used <- b.used + 1;
      true)
    else false

  let release b = b.used <- b.used - 1
end

module Mutex = struct
  type t = { mutable held : bool }

  let create () = { held = false }
  let lock m = m.held <- true
  let unlock m = m.held <- false
end
