(* PR4: revoking a grant on a freshly created table that provably never
   granted it. *)

let revoke_fresh pfn =
  let t = Proto_env.Iommu.create () in
  Proto_env.Iommu.revoke t pfn
