(* PR3 through an alias: released under one name, used under the
   original binding. *)

let read_after_alias_revoke r =
  let m = Proto_env.Mmio.map r in
  let handle = m in
  Proto_env.Mmio.revoke handle;
  ignore (Proto_env.Mmio.read32 m ~offset:4)
