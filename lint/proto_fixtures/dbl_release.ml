(* PR2: the reserved slot is released twice on the success branch. *)

let double_release () =
  let b = Proto_env.Pkt_buf.create () in
  if Proto_env.Pkt_buf.try_reserve b then (
    Proto_env.Pkt_buf.release b;
    Proto_env.Pkt_buf.release b)
