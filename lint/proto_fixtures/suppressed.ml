(* A real PR1, silenced by [@cdna.proto_ok] with a mandatory reason —
   exercises the suppression channel counted by the stats gate. *)

let[@cdna.proto_ok "fixture: intentional leak kept to exercise the \
                    suppression channel"] leak_but_waived r =
  let m = Proto_env.Mmio.map r in
  ignore m
