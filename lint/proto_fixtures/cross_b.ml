(* Hop 2 of the cross-module leak: forwards the acquired mapping
   through another module boundary. *)

let wrap r = Cross_a.make_mapping r
