(* Clean: lock/unlock balanced on a parameter-rooted mutex. Parameter
   acquisitions are never local leaks — they net out in the function
   summary instead. *)

let run_locked m thunk =
  Proto_env.Mutex.lock m;
  let r = thunk () in
  Proto_env.Mutex.unlock m;
  r

let caller () =
  let m = Proto_env.Mutex.create () in
  run_locked m (fun () -> 0)
