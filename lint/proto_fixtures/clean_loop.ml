(* Clean: reserve/release balanced inside a loop body on a locally
   created pool; the loop join must not invent a held state. *)

let churn () =
  let b = Proto_env.Pkt_buf.create () in
  for _ = 0 to 7 do
    if Proto_env.Pkt_buf.try_reserve b then Proto_env.Pkt_buf.release b
  done
