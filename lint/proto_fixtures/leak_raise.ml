(* PR1 on a raising path: the grant is revoked on the normal return,
   but the [failwith] guard exits with the grant still installed. *)

let grant_checked pfn =
  let t = Proto_env.Iommu.create () in
  Proto_env.Iommu.grant t pfn;
  if pfn < 0 then failwith "negative pfn";
  Proto_env.Iommu.revoke t pfn
