(* PR1 via the annotation-declared protocol: the window opened here is
   never closed. *)

let[@cdna.acquires "dma-window"] open_window slot = slot land 0xff
let[@cdna.releases "dma-window"] close_window w = ignore (w : int)

let unbalanced () =
  let w = open_window 3 in
  ignore w
