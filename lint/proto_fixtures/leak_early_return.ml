(* PR1 on an early-return path: one match arm releases the mapping,
   the other returns without revoking it. *)

let read_first r =
  let m = Proto_env.Mmio.map r in
  match Proto_env.Mmio.read32 m ~offset:0 with
  | 0 -> None
  | v ->
      Proto_env.Mmio.revoke m;
      Some v
