(* PR1: a handle-style acquire ([Mmio.map] returns the resource) that
   is used but never revoked before the normal return. *)

let leak_mapping r =
  let m = Proto_env.Mmio.map r in
  Proto_env.Mmio.read32 m ~offset:0
