(* PR1: an effect-style conditional acquire whose result is ignored.
   Ignoring [try_reserve] means no path ever releases the slot. *)

let leak_reserved () =
  let b = Proto_env.Pkt_buf.create () in
  ignore (Proto_env.Pkt_buf.try_reserve b);
  0
