(* Fixture suite for cdna_dom: every seeded domain-safety violation must
   be detected with a complete decl->witness->use chain, and the
   deliberately clean fixtures must classify without noise. Runs against
   the .cmt files compiled from dom_fixtures/ (cwd is _build/default/lint
   under dune). *)

let fixture_root = "dom_fixtures"

let report = lazy (Cdna_dom.analyze fixture_root)

let viols_in base =
  let r = Lazy.force report in
  List.filter
    (fun v -> Filename.basename v.Cdna_dom.file = base)
    r.Cdna_dom.violations

let check_chain base (v : Cdna_dom.violation) =
  List.iter
    (fun h ->
      Alcotest.(check bool)
        (base ^ " hop has file:line")
        true
        (h.Cdna_dom.hop_file <> "" && h.Cdna_dom.hop_line > 0))
    v.Cdna_dom.chain

let check_detects ~base ~rule ~n ?(min_hops = 1) () =
  let vs = viols_in base in
  Alcotest.(check int) (base ^ " violation count") n (List.length vs);
  List.iter
    (fun (v : Cdna_dom.violation) ->
      Alcotest.(check string) (base ^ " rule") rule v.Cdna_dom.rule;
      Alcotest.(check bool)
        (base ^ " chain length")
        true
        (List.length v.Cdna_dom.chain >= min_hops);
      check_chain base v)
    vs

(* The pre-fix Grant_table.count shape: toplevel ref, written by a
   function only reachable through a scheduled closure. The witness hop
   must name the scheduling function. *)
let test_esc_ref () =
  check_detects ~base:"esc_ref.ml" ~rule:"DM1-shared-mutable" ~n:1
    ~min_hops:3 ();
  match viols_in "esc_ref.ml" with
  | [ v ] ->
      let whats = List.map (fun h -> h.Cdna_dom.hop_what) v.Cdna_dom.chain in
      let has_sub hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i =
          i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        "witness hop names the scheduling entry point" true
        (List.exists (fun w -> has_sub w "Esc_ref.start") whats);
      Alcotest.(check bool)
        "use hop is the incr write" true
        (List.exists (fun w -> has_sub w "write (incr)") whats)
  | _ -> Alcotest.fail "expected exactly one esc_ref violation"

let test_esc_closure =
  check_detects ~base:"esc_closure.ml" ~rule:"DM2-captured-shared" ~n:1
    ~min_hops:3

let test_esc_bytes =
  check_detects ~base:"esc_bytes.ml" ~rule:"DM1-shared-mutable" ~n:1
    ~min_hops:3

let test_esc_lazy =
  check_detects ~base:"esc_lazy.ml" ~rule:"DM1-shared-mutable" ~n:1 ~min_hops:3

(* One violation per LP-resident function touching the record: the
   writer and the torn-read-prone reader. *)
let test_esc_record =
  check_detects ~base:"esc_record.ml" ~rule:"DM1-shared-mutable" ~n:2
    ~min_hops:3

let test_esc_hashtbl =
  check_detects ~base:"esc_hashtbl.ml" ~rule:"DM1-shared-mutable" ~n:2
    ~min_hops:3

let test_esc_queue =
  check_detects ~base:"esc_queue.ml" ~rule:"DM1-shared-mutable" ~n:2
    ~min_hops:3

(* The write sits two calls below the scheduled closure: the chain must
   walk start -> tick -> commit before the use hop. *)
let test_esc_indirect () =
  check_detects ~base:"esc_indirect.ml" ~rule:"DM1-shared-mutable" ~n:1
    ~min_hops:4 ();
  match viols_in "esc_indirect.ml" with
  | [ v ] ->
      let whats =
        String.concat "|"
          (List.map (fun h -> h.Cdna_dom.hop_what) v.Cdna_dom.chain)
      in
      let has_sub needle =
        let nl = String.length needle and hl = String.length whats in
        let rec go i =
          i + nl <= hl && (String.sub whats i nl = needle || go (i + 1))
        in
        go 0
      in
      List.iter
        (fun step -> Alcotest.(check bool) ("chain walks " ^ step) true (has_sub step))
        [ "Esc_indirect.start"; "Esc_indirect.tick"; "Esc_indirect.commit" ]
  | _ -> Alcotest.fail "expected exactly one esc_indirect violation"

(* The three-module alias chain: state in dom_a, alias in dom_b, write in
   dom_c — the report lands at the use site and walks all three files. *)
let test_multi_module () =
  (match viols_in "dom_a.ml" @ viols_in "dom_b.ml" with
  | [] -> ()
  | _ -> Alcotest.fail "alias chain must report at the use site only");
  match viols_in "dom_c.ml" with
  | [ v ] ->
      Alcotest.(check string) "rule" "DM1-shared-mutable" v.Cdna_dom.rule;
      Alcotest.(check bool)
        "chain has at least 4 hops" true
        (List.length v.Cdna_dom.chain >= 4);
      let files =
        List.sort_uniq String.compare
          (List.map
             (fun h -> Filename.basename h.Cdna_dom.hop_file)
             v.Cdna_dom.chain)
      in
      Alcotest.(check (list string))
        "chain spans all three modules"
        [ "dom_a.ml"; "dom_b.ml"; "dom_c.ml" ]
        files
  | vs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one dom_c violation, got %d"
           (List.length vs))

(* Suppressions without a reason: DS1 fires and the underlying DM1 stays
   unsuppressed — both for per-binding and module-wide attributes. *)
let check_bad_reason base () =
  let vs = viols_in base in
  Alcotest.(check int) (base ^ " violation count") 2 (List.length vs);
  let rules = List.sort_uniq String.compare (List.map (fun v -> v.Cdna_dom.rule) vs) in
  Alcotest.(check (list string))
    (base ^ " rules")
    [ "DM1-shared-mutable"; "DS1-suppression-reason" ]
    rules

let test_dl_misuse = check_detects ~base:"dl_misuse.ml" ~rule:"DM3-domain-local-misuse" ~n:1 ~min_hops:0

let test_clean_fixtures () =
  List.iter
    (fun base ->
      Alcotest.(check int) (base ^ " stays clean") 0 (List.length (viols_in base)))
    [
      "dom_env.ml"; "clean_dls.ml"; "clean_mutex.ml"; "clean_frozen.ml";
      "clean_local.ml"; "clean_suppressed.ml"; "clean_domain_local.ml";
      "dom_a.ml"; "dom_b.ml";
    ]

(* The classification lattice over the whole corpus: every class is
   exercised by at least one fixture, with exact counts. *)
let test_classes () =
  let r = Lazy.force report in
  Alcotest.(check int) "state items" 18 r.Cdna_dom.state_items;
  Alcotest.(check (list (pair string int)))
    "class counts"
    [
      ("barrier", 1); ("dls", 1); ("domain-local", 1); ("frozen", 1);
      ("lp-local", 1); ("shared", 12); ("sync", 1);
    ]
    r.Cdna_dom.classes

let test_totals () =
  let r = Lazy.force report in
  Alcotest.(check int) "total unsuppressed" 17
    (List.length r.Cdna_dom.violations);
  Alcotest.(check int) "total suppressed" 1 (List.length r.Cdna_dom.suppressed);
  Alcotest.(check int) "domain-local assertions" 2 r.Cdna_dom.domain_local;
  Alcotest.(check int) "domain-shared annotations" 3 r.Cdna_dom.domain_shared;
  Alcotest.(check bool) "cmt corpus loaded" true (r.Cdna_dom.cmt_files >= 21)

(* [main.exe --only DM1] semantics over this pass's reports: the bare
   prefix and the full rule name both select, a non-prefix selects
   nothing. *)
let test_only_filter () =
  let r = Lazy.force report in
  let count only =
    List.length
      (List.filter
         (fun v -> Chain.rule_matches ~only v.Cdna_dom.rule)
         r.Cdna_dom.violations)
  in
  Alcotest.(check int) "DM1 prefix filter"
    (count (Some "DM1-shared-mutable"))
    (count (Some "DM1"));
  Alcotest.(check bool) "DM1 selects something" true (count (Some "DM1") > 0);
  Alcotest.(check int) "'DM' is not a rule prefix" 0 (count (Some "DM"));
  Alcotest.(check int) "no filter keeps everything" 17 (count None)

(* Byte-identical reports across runs: the JSON artifact is diffed by
   the suppression-drift gate, so ordering must be deterministic. *)
let test_deterministic () =
  let a = Cdna_dom.analyze fixture_root in
  let b = Cdna_dom.analyze fixture_root in
  Alcotest.(check string)
    "report JSON identical across runs"
    (Sim.Json.to_string (Cdna_dom.report_to_json a))
    (Sim.Json.to_string (Cdna_dom.report_to_json b));
  Alcotest.(check (list string))
    "violation rendering identical across runs"
    (List.map Cdna_dom.violation_to_string a.Cdna_dom.violations)
    (List.map Cdna_dom.violation_to_string b.Cdna_dom.violations)

let () =
  Alcotest.run "cdna_dom"
    [
      ( "escape",
        [
          Alcotest.test_case "toplevel ref via scheduled closure" `Quick
            test_esc_ref;
          Alcotest.test_case "closure-captured Hashtbl" `Quick test_esc_closure;
          Alcotest.test_case "Bytes inside scheduled lambda" `Quick
            test_esc_bytes;
          Alcotest.test_case "racing Lazy.force" `Quick test_esc_lazy;
          Alcotest.test_case "mutable-field record" `Quick test_esc_record;
          Alcotest.test_case "Hashtbl from two LP entries" `Quick
            test_esc_hashtbl;
          Alcotest.test_case "Queue incl. nested lambda" `Quick test_esc_queue;
          Alcotest.test_case "write two calls deep" `Quick test_esc_indirect;
          Alcotest.test_case "multi-module alias chain" `Quick
            test_multi_module;
        ] );
      ( "annotations",
        [
          Alcotest.test_case "binding suppression needs reason" `Quick
            (check_bad_reason "bad_reason.ml");
          Alcotest.test_case "module suppression needs reason" `Quick
            (check_bad_reason "bad_module_reason.ml");
          Alcotest.test_case "domain_local on non-state" `Quick test_dl_misuse;
        ] );
      ( "hygiene",
        [
          Alcotest.test_case "clean fixtures stay clean" `Quick
            test_clean_fixtures;
          Alcotest.test_case "lattice class counts" `Quick test_classes;
          Alcotest.test_case "exact totals" `Quick test_totals;
          Alcotest.test_case "--only rule filtering" `Quick test_only_filter;
          Alcotest.test_case "deterministic output" `Quick test_deterministic;
        ] );
    ]
