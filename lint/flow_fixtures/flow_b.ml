(* Stage 2 of the multi-module taint chain: forwards Flow_a's raw guest
   word into Flow_c's sink wrapper. The violation spans three modules;
   the report must carry every hop. *)

let pump mem dma slot =
  let addr = Flow_a.fetch_slot mem slot in
  Flow_c.dma_at dma ~addr
