(* T1: the straight-line violation — a guest-readable word used as a DMA
   address with no sanitizer in between. *)

let pump mem dma =
  let addr = Flow_env.Phys_mem.read_uint mem ~addr:0 ~len:8 in
  Flow_env.Dma_engine.access dma ~addr ~len:64
