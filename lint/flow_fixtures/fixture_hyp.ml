(* The declared hypercall surface of the fixture world: privileged, so
   paths that cross it are legitimate (the behavioral twin of
   [Hyp.enqueue] validating before granting). *)

[@@@cdna.privileged]

let grant_validated iommu pfn =
  if pfn land 1 = 0 then Flow_env.Iommu.grant iommu pfn
