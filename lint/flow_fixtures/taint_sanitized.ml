(* Clean: the same shapes as the violating fixtures, but every guest
   value passes a declared sanitizer before reaching a sink. Must
   produce zero reports. *)

let pump_iommu mem dma iommu =
  let pfn = Flow_env.Phys_mem.read_uint mem ~addr:0 ~len:8 in
  if Flow_env.Iommu.allowed iommu ~context:1 pfn then
    Flow_env.Dma_engine.access dma ~addr:(pfn * 4096) ~len:64

let pump_seqno mem dma =
  let got = Flow_env.Phys_mem.read_uint mem ~addr:8 ~len:2 in
  if Flow_env.Seqno.continuous ~expected:3 ~got then
    Flow_env.Dma_engine.access dma ~addr:got ~len:64
