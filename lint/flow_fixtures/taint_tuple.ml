(* T1 laundering attempt: taint must survive packing into and projecting
   out of a tuple. *)

let pump mem dma =
  let pair = (Flow_env.Phys_mem.read_uint mem ~addr:0 ~len:8, 4096) in
  let addr, len = pair in
  Flow_env.Dma_engine.access dma ~addr ~len
