(* T2: forging a DMA descriptor — guest-controlled bytes become the
   addr/len of a [Dma_desc.t] under construction. *)

let forge mem =
  let guest_addr = Flow_env.Phys_mem.read_uint mem ~addr:0 ~len:8 in
  { Flow_env.Dma_desc.addr = guest_addr; len = 4096; flags = 0; seqno = 0 }
