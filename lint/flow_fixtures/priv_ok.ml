(* Clean: the same nic-layer shape as priv_reach, but the ownership
   mutation happens inside the privileged hypercall surface — the path
   stops at the boundary and no violation is reported. *)

[@@@cdna.layer "nic"]

let handle_doorbell iommu pfn = Fixture_hyp.grant_validated iommu pfn
