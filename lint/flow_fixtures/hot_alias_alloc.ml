(* A6 through a module alias: the hot entry never allocates itself, but
   its helper maps a list through [L] = [List] — an allocation the
   syntactic rules cannot see (alias) at a depth they do not reach
   (one call down). *)

module L = List

let bump xs = L.map (fun x -> x + 1) xs

let[@cdna.hot] pump xs = ignore (bump xs)
