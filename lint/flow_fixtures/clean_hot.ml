(* Clean: a hot entry whose transitive callees stay allocation-free —
   tail-recursive arithmetic, in-place byte writes, and allowlisted
   Bytes calls only. *)

let rec checksum_from buf acc i =
  if i >= Bytes.length buf then acc land 0xffff
  else checksum_from buf (acc + Char.code (Bytes.get buf i)) (i + 1)

let stamp buf v = Bytes.set buf 0 (Char.chr (v land 0xff))

let[@cdna.hot] pump buf =
  let c = checksum_from buf 0 0 in
  stamp buf c;
  c
