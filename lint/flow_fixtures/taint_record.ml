(* T1 laundering attempt: taint must survive a user-defined record
   (field-sensitively — the clean [tag] field must not trip the sink). *)

type box = { payload : int; tag : int }

let pump mem dma =
  let b = { payload = Flow_env.Phys_mem.read_uint mem ~addr:16 ~len:8; tag = 0 } in
  Flow_env.Phys_mem.write_uint mem ~addr:b.payload ~len:4 b.tag;
  Flow_env.Dma_engine.access dma ~addr:b.tag ~len:64
