(* Stage 1 of the multi-module taint chain: reads a descriptor word out
   of guest-visible memory and returns it raw. *)

let fetch_slot mem slot = Flow_env.Phys_mem.read_uint mem ~addr:(slot * 16) ~len:8
