(* P3: a "nic"-layer entry point reaching an ownership-mutating IOMMU
   operation through a local helper, without crossing the declared
   hypercall surface. *)

[@@@cdna.layer "nic"]

let self_grant iommu pfn = Flow_env.Iommu.grant iommu pfn

let handle_doorbell iommu pfn = self_grant iommu pfn
