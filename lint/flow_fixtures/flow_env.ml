(* Self-contained stand-ins for the contract surface cdna_flow models.

   The analyzer canonicalizes identifiers to their last two path
   components, so [Flow_env.Phys_mem.read_uint] matches the declared
   source [Phys_mem.read_uint] exactly as the real [Memory.Phys_mem]
   does — fixtures exercise the analysis without linking the simulator.
   Bodies are irrelevant (contract modules are skipped by the taint
   pass); they exist only so the fixtures typecheck. *)

module Phys_mem = struct
  type t = unit

  let read (_ : t) ~addr ~len = Bytes.make len (Char.chr (addr land 0xff))
  let read_uint (_ : t) ~addr ~len = addr + len
  let write (_ : t) ~addr data = ignore (addr + Bytes.length data)
  let write_uint (_ : t) ~addr ~len v = ignore (addr + len + v)
  let get_ref (_ : t) pfn = ignore (pfn : int)
end

module Dma_engine = struct
  type t = unit

  let read_into (_ : t) ~addr ~len ~dst ~pos =
    ignore (addr + len + Bytes.length dst + pos)

  let write_from (_ : t) ~addr ~len ~src ~pos =
    ignore (addr + len + Bytes.length src + pos)

  let access (_ : t) ~addr ~len = ignore (addr + len)
end

module Iommu = struct
  type t = unit

  let allowed (_ : t) ~context pfn = context >= 0 && pfn land 1 = 0
  let grant (_ : t) pfn = ignore (pfn : int)
end

module Seqno = struct
  let continuous ~expected ~got = expected = got
end

module Dma_desc = struct
  type t = { addr : int; len : int; flags : int; seqno : int }

  let pp t = Printf.sprintf "%d+%d" t.addr t.len
end
