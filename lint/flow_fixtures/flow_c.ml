(* Stage 3 of the multi-module taint chain: an innocent-looking helper
   whose parameter flows straight into the DMA engine. *)

let dma_at dma ~addr = Flow_env.Dma_engine.access dma ~addr ~len:1514
