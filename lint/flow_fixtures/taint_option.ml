(* T1 laundering attempt: taint must survive an option wrap and a match
   destructure. *)

let pump mem dma =
  let staged =
    if Sys.word_size = 64 then
      Some (Flow_env.Phys_mem.read_uint mem ~addr:8 ~len:8)
    else None
  in
  match staged with
  | Some addr -> Flow_env.Dma_engine.access dma ~addr ~len:64
  | None -> ()
