(* A6 two calls deep: hot -> relay -> quiet helper that boxes a pair.
   Only the transitive closure sees it. *)

let pack a b = (a, b)

let relay a b = pack a b

let[@cdna.hot] pump a b =
  let p = relay a b in
  ignore p
