(* cdna_dom: static domain-safety / race detector for the parallel core.

   Third verification layer, over the same compiled .cmt typedtrees as
   [Cdna_flow] (whose call-graph helpers, canonicalization and diagnostic
   types it reuses). [Sim.Shard] runs logical processes (LPs) on worker
   domains; any mutable value shared between LPs without going through
   [Domain.DLS] or the shard pool's mutex/condition merge path is a data
   race waiting for a multicore runner. This pass finds that state
   statically:

   1. {b Collect} every piece of module-level mutable state in the tree:
      toplevel / submodule bindings of mutable type (ref, array, bytes,
      Hashtbl.t, Queue.t, Stack.t, Buffer.t, lazy_t, mutable-field
      records), plus state captured by toplevel closures
      ([let f = let cache = Hashtbl.create .. in fun x -> ..]) and
      toplevel aliases of such state across modules.

   2. {b Reach}: compute which functions can run inside an LP callback.
      Every function in an LP-resident layer (the simulated hardware and
      OS stack: nic / guestos / xen / host / memory / bus / core /
      ethernet / workload) is LP code by construction; elsewhere (sim,
      experiments) a literal closure passed to [Engine.schedule],
      [Engine.schedule_at], [Shard.send] or to any LP-layer function is
      an LP entry, and the set closes over call edges. Witness chains are
      kept per hop, [file:line], like [Cdna_flow]'s taint chains.

   3. {b Classify} each item on the lattice: [dls] (Domain.DLS-backed),
      [sync] (Mutex / Condition / Semaphore / Atomic — synchronization
      primitives, domain-safe by construction), [frozen] (written only by
      its initializer, which runs on the main domain before any
      [Domain.spawn]), [lp-local] (never referenced from LP-capable
      code), [barrier] (every referencing function takes a mutex /
      condition first — the shard pool's merge path), [domain-local]
      (asserted by annotation), or [shared] — mutable, written, and
      reachable from LP context: a violation.

   Annotation contract (drift-gated like all other suppressions):
   - [[@cdna.domain_local]] on the binding: positive assertion that the
     value, though mutable, is only ever touched by a single LP (or only
     between windows). No reason string required; counted in stats.
   - [[@cdna.domain_shared "reason"]] on the binding (or
     [[@@@cdna.domain_shared "reason"]] for a whole module): suppress the
     violation; the reason string is mandatory (rule DS1).

   Rules:
   - DM1-shared-mutable: toplevel mutable state reachable from LP code.
   - DM2-captured-shared: closure-captured state reachable from LP code.
   - DM3-domain-local-misuse: [@cdna.domain_local] on a non-state binding.
   - DS1-suppression-reason: [@cdna.domain_shared] without a reason. *)

exception Dom_error of string

module SSet = Cdna_flow.SSet
module SMap = Cdna_flow.SMap
module IdentMap = Map.Make (Ident)

type hop = Cdna_flow.hop = { hop_what : string; hop_file : string; hop_line : int }

type violation = Cdna_flow.violation = {
  rule : string;
  file : string;
  line : int;
  msg : string;
  chain : hop list;
  suppress : string option;
}

let rule_dm1 = "DM1-shared-mutable"
let rule_dm2 = "DM2-captured-shared"
let rule_dm3 = "DM3-domain-local-misuse"
let rule_ds1 = "DS1-suppression-reason"
let violation_compare = Cdna_flow.violation_compare
let violation_to_string = Cdna_flow.violation_to_string

(* ------------------------------------------------------------------ *)
(* Classification lattice                                              *)
(* ------------------------------------------------------------------ *)

type cls = Dls | Sync | Frozen | Lp_local | Barrier | Domain_local | Shared

let cls_name = function
  | Dls -> "dls"
  | Sync -> "sync"
  | Frozen -> "frozen"
  | Lp_local -> "lp-local"
  | Barrier -> "barrier"
  | Domain_local -> "domain-local"
  | Shared -> "shared"

(* ------------------------------------------------------------------ *)
(* Program representation                                              *)
(* ------------------------------------------------------------------ *)

type item = {
  i_id : string; (* "Mod.name", or "Mod.fn.name" for captured state *)
  i_kind : string; (* "ref", "Hashtbl.t", "mutable record", ... *)
  i_file : string;
  i_line : int;
  i_captured_in : string option; (* defining function, for closures *)
  i_alias_of : string option; (* [let t = A.t]: canonical target *)
  i_domain_local : bool;
  i_suppress : string option; (* domain_shared reason; Some "" = missing *)
  i_sync : bool;
  i_dls : bool;
  mutable i_class : cls;
}

type use = {
  u_item : string; (* item id as referenced (possibly an alias) *)
  u_fn : string;
  u_what : string;
  u_write : bool;
  u_line : int;
  u_sched : bool; (* inside a closure scheduled onto an engine *)
}

type dcall = { dc_callee : string; dc_line : int; dc_sched : bool }

type dfn = {
  d_id : string;
  d_module : string;
  d_file : string;
  d_line : int;
  d_layer : string;
  d_body : Typedtree.expression;
  mutable d_locks : bool; (* takes a mutex / waits a condition *)
  mutable d_calls : dcall list;
}

type prog = {
  mutable fns : dfn SMap.t;
  mutable items : item SMap.t;
  mutable aliases : string SMap.t; (* module aliases, for canon_of *)
  mutable uses : use list;
  mutable extra_viols : violation list; (* DM3 / DS1 *)
  mutable n_files : int;
  mutable n_domain_local : int;
  mutable n_domain_shared : int;
  (* Captured-state idents -> item id, for closure-captured state. *)
  mutable captured : string IdentMap.t;
}

type report = {
  cmt_files : int;
  functions : int;
  state_items : int;
  classes : (string * int) list; (* class name -> count, sorted *)
  violations : violation list; (* unsuppressed, sorted *)
  suppressed : violation list;
  domain_local : int; (* [@cdna.domain_local] assertions *)
  domain_shared : int; (* [@cdna.domain_shared] suppressions *)
}

(* ------------------------------------------------------------------ *)
(* LP layers and scheduling primitives                                 *)
(* ------------------------------------------------------------------ *)

(* Everything in these layers executes inside engine callbacks: the
   simulated hardware/OS stack is driven exclusively by scheduled
   events. [sim] and [experiments] are mixed control-plane/LP code and
   rely on closure reachability instead. *)
let lp_layers =
  SSet.of_list
    [
      "nic"; "guestos"; "xen"; "host"; "memory"; "bus"; "core"; "ethernet";
      "workload";
    ]

let layer_of_file file =
  let l = Cdna_flow.layer_of_file file in
  if l <> "" then l
  else if Cdna_flow.path_has_dir file "lib/ethernet" then "ethernet"
  else if Cdna_flow.path_has_dir file "lib/workload" then "workload"
  else if Cdna_flow.path_has_dir file "lib/cdna" then "cdna-ext"
  else if Cdna_flow.path_has_dir file "lib/sim" then "sim"
  else if Cdna_flow.path_has_dir file "lib/experiments" then "experiments"
  else ""

(* lib/cdna is the CDNA hypervisor extension: LP-resident too. *)
let lp_layers = SSet.add "cdna-ext" lp_layers

(* A literal closure passed to one of these runs as an engine callback
   on whatever domain the LP lands on. *)
let sched_prims =
  SSet.of_list [ "Engine.schedule"; "Engine.schedule_at"; "Shard.send" ]

(* Functions that make the enclosing caller part of the barrier-guarded
   merge path. *)
let lock_fns =
  SSet.of_list
    [ "Mutex.lock"; "Mutex.protect"; "Condition.wait"; "Semaphore.acquire" ]

(* ------------------------------------------------------------------ *)
(* Read / write contract per container                                 *)
(* ------------------------------------------------------------------ *)

(* Canonical ("Mod.fn") or bare operator names that only read their
   container argument. *)
let read_fns =
  SSet.of_list
    [
      "!";
      "Hashtbl.find"; "Hashtbl.find_opt"; "Hashtbl.find_all"; "Hashtbl.mem";
      "Hashtbl.length"; "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq";
      "Hashtbl.to_seq_keys"; "Hashtbl.to_seq_values";
      "Array.get"; "Array.unsafe_get"; "Array.length"; "Array.iter";
      "Array.iteri"; "Array.fold_left"; "Array.fold_right"; "Array.map";
      "Array.mapi"; "Array.to_list"; "Array.mem"; "Array.exists";
      "Array.for_all"; "Array.copy"; "Array.sub";
      "Bytes.get"; "Bytes.unsafe_get"; "Bytes.length"; "Bytes.sub";
      "Bytes.sub_string"; "Bytes.to_string"; "Bytes.copy";
      "Bytes.get_uint8"; "Bytes.get_uint16_le"; "Bytes.get_int32_le";
      "Queue.length"; "Queue.is_empty"; "Queue.peek"; "Queue.peek_opt";
      "Queue.iter"; "Queue.fold"; "Queue.copy";
      "Stack.length"; "Stack.is_empty"; "Stack.top"; "Stack.top_opt";
      "Buffer.contents"; "Buffer.length"; "Buffer.to_bytes"; "Buffer.nth";
      "Lazy.is_val";
      "Atomic.get";
      "DLS.get";
    ]

(* Names that mutate their container argument. [Lazy.force] counts as a
   write: forcing the same suspension from two domains races. *)
let write_fns =
  SSet.of_list
    [
      ":="; "incr"; "decr";
      "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.remove"; "Hashtbl.reset";
      "Hashtbl.clear"; "Hashtbl.filter_map_inplace";
      "Array.set"; "Array.unsafe_set"; "Array.fill"; "Array.blit";
      "Array.sort"; "Array.fast_sort"; "Array.stable_sort";
      "Bytes.set"; "Bytes.unsafe_set"; "Bytes.fill"; "Bytes.blit";
      "Bytes.blit_string"; "Bytes.unsafe_blit";
      "Bytes.set_uint8"; "Bytes.set_uint16_le"; "Bytes.set_int32_le";
      "Queue.push"; "Queue.add"; "Queue.pop"; "Queue.take";
      "Queue.take_opt"; "Queue.clear"; "Queue.transfer";
      "Stack.push"; "Stack.pop"; "Stack.pop_opt"; "Stack.clear";
      "Buffer.add_string"; "Buffer.add_char"; "Buffer.add_bytes";
      "Buffer.add_subbytes"; "Buffer.clear"; "Buffer.reset";
      "Lazy.force"; "Lazy.force_val";
      "Atomic.set"; "Atomic.incr"; "Atomic.decr"; "Atomic.exchange";
      "Atomic.compare_and_set"; "Atomic.fetch_and_add";
      "DLS.set";
    ]

(* ------------------------------------------------------------------ *)
(* Mutability of a binding, from its type                              *)
(* ------------------------------------------------------------------ *)

(* [Some kind] when a value of type [ty] is module-level mutable state;
   [`Dls] / [`Sync] short-circuit the classification. Record types are
   resolved through [env] so abbreviations of mutable-field records are
   caught too. *)
let rec state_kind aliases env fuel ty =
  if fuel = 0 then None
  else
    match Types.get_desc ty with
    | Types.Tconstr (p, _, _) -> (
        let c = Cdna_flow.canon_of aliases (Path.name p) in
        let k = Cdna_flow.last_comp c in
        if c = "DLS.key" then Some `Dls
        else if
          c = "Mutex.t" || c = "Condition.t" || c = "Atomic.t"
          || c = "Semaphore.t" || c = "Binary.t" || c = "Counting.t"
        then Some `Sync
        else if k = "ref" then Some (`Mut "ref")
        else if k = "array" then Some (`Mut "array")
        else if k = "bytes" then Some (`Mut "bytes")
        else if k = "lazy_t" || c = "Lazy.t" then Some (`Mut "lazy")
        else if c = "Hashtbl.t" then Some (`Mut "Hashtbl.t")
        else if c = "Queue.t" then Some (`Mut "Queue.t")
        else if c = "Stack.t" then Some (`Mut "Stack.t")
        else if c = "Buffer.t" then Some (`Mut "Buffer.t")
        else
          (* cmt envs are summaries: a direct lookup misses types the
             summary hasn't materialized, so fall back to rehydrating
             the env through the load path. *)
          let decl =
            match Env.find_type p env with
            | d -> Some d
            | exception Not_found -> (
                match Env.find_type p (Envaux.env_of_only_summary env) with
                | d -> Some d
                | exception _ -> None)
          in
          match decl with
          | None -> None
          | Some decl -> (
              match decl.Types.type_kind with
              | Types.Type_record (lds, _)
                when List.exists
                       (fun ld -> ld.Types.ld_mutable = Asttypes.Mutable)
                       lds ->
                  Some (`Mut "mutable record")
              | _ -> (
                  match decl.Types.type_manifest with
                  | Some ty' -> state_kind aliases env (fuel - 1) ty'
                  | None -> None)))
    | Types.Ttuple tys ->
        List.fold_left
          (fun acc ty' ->
            match acc with
            | Some _ -> acc
            | None -> state_kind aliases env (fuel - 1) ty')
          None tys
    | Types.Tlink ty' | Types.Tsubst (ty', _) ->
        state_kind aliases env (fuel - 1) ty'
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Collection (pass 1): items, functions, module aliases               *)
(* ------------------------------------------------------------------ *)

let loc_line = Cdna_flow.loc_line
let hop = Chain.hop

(* Peel the [let a = .. in let b = .. in fun x -> ..] spine of a
   toplevel closure: returns the captured bindings and whether the spine
   ends in a function. *)
let rec closure_spine (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function _ -> Some []
  | Typedtree.Texp_let (_, vbs, body) -> (
      match closure_spine body with
      | Some captured -> Some (vbs @ captured)
      | None -> None)
  | _ -> None

let add_item prog it = prog.items <- SMap.add it.i_id it prog.items

(* [let x = ..] and [let x : t = ..] bind through different pattern
   constructors. *)
let pat_var (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_var (id, { txt; _ }) -> Some (id, txt)
  | Typedtree.Tpat_alias ({ pat_desc = Typedtree.Tpat_any; _ }, id, { txt; _ })
    ->
      Some (id, txt)
  | _ -> None

let register_binding prog ~modname ~file ~layer ~mod_suppress
    (vb : Typedtree.value_binding) =
  match pat_var vb.Typedtree.vb_pat with
  | Some (ident, name) -> (
      let attrs = vb.Typedtree.vb_attributes in
      let domain_local = Cdna_flow.has_attr "cdna.domain_local" attrs in
      let suppress =
        match Cdna_flow.find_attr "cdna.domain_shared" attrs with
        | Some a -> (
            prog.n_domain_shared <- prog.n_domain_shared + 1;
            match Cdna_flow.attr_reason a with
            | Some r when String.trim r <> "" -> Some r
            | _ ->
                prog.extra_viols <-
                  {
                    rule = rule_ds1;
                    file;
                    line = loc_line vb.vb_loc;
                    msg =
                      Printf.sprintf
                        "[@cdna.domain_shared] on '%s.%s' needs a reason \
                         string explaining why sharing is safe"
                        modname name;
                    chain = [];
                    suppress = None;
                  }
                  :: prog.extra_viols;
                Some "")
        | None -> mod_suppress
      in
      if domain_local then prog.n_domain_local <- prog.n_domain_local + 1;
      let id = modname ^ "." ^ name in
      let env = vb.vb_expr.exp_env in
      let mk kind ?(captured_in = None) ?(alias_of = None) ~sync ~dls () =
        add_item prog
          {
            i_id = id;
            i_kind = kind;
            i_file = file;
            i_line = loc_line vb.vb_loc;
            i_captured_in = captured_in;
            i_alias_of = alias_of;
            i_domain_local = domain_local;
            i_suppress = suppress;
            i_sync = sync;
            i_dls = dls;
            i_class = Lp_local;
          }
      in
      let dm3 () =
        prog.extra_viols <-
          {
            rule = rule_dm3;
            file;
            line = loc_line vb.vb_loc;
            msg =
              Printf.sprintf
                "[@cdna.domain_local] on '%s' which is not mutable \
                 module-level state"
                id;
            chain = [];
            suppress = None;
          }
          :: prog.extra_viols
      in
      match (vb.vb_expr.exp_desc, closure_spine vb.vb_expr) with
      | (Typedtree.Texp_function _ | Typedtree.Texp_let _), Some captured ->
          (* A function, possibly with captured state in its let-spine. *)
          let n_captured = ref 0 in
          List.iter
            (fun (cvb : Typedtree.value_binding) ->
              match pat_var cvb.vb_pat with
              | Some (cident, cname) -> (
                  match
                    state_kind prog.aliases cvb.vb_expr.exp_env 8
                      cvb.vb_expr.exp_type
                  with
                  | Some (`Mut kind) ->
                      incr n_captured;
                      let cid = id ^ "." ^ cname in
                      prog.captured <- IdentMap.add cident cid prog.captured;
                      add_item prog
                        {
                          i_id = cid;
                          i_kind = kind;
                          i_file = file;
                          i_line = loc_line cvb.vb_loc;
                          i_captured_in = Some id;
                          i_alias_of = None;
                          i_domain_local = domain_local;
                          i_suppress = suppress;
                          i_sync = false;
                          i_dls = false;
                          i_class = Lp_local;
                        }
                  | Some `Dls | Some `Sync | None -> ())
              | None -> ())
            captured;
          if domain_local && !n_captured = 0 then dm3 ();
          let fn =
            {
              d_id = id;
              d_module = modname;
              d_file = file;
              d_line = loc_line vb.vb_loc;
              d_layer = layer;
              d_body = vb.vb_expr;
              d_locks = false;
              d_calls = [];
            }
          in
          prog.fns <- SMap.add id fn prog.fns
      | _ -> (
          ignore ident;
          (* [let t = A.t]: an alias shares the target's identity, so it
             must win over the mutable-type check; resolved during
             classification. *)
          let alias_target =
            match vb.vb_expr.exp_desc with
            | Typedtree.Texp_ident (p, _, _) -> (
                match p with
                | Path.Pident id ->
                    let t = modname ^ "." ^ Ident.name id in
                    if SMap.mem t prog.items then Some t else None
                | _ ->
                    let t = Cdna_flow.canon_of prog.aliases (Path.name p) in
                    if String.contains t '.' then Some t else None)
            | _ -> None
          in
          match alias_target with
          | Some target ->
              mk "alias" ~alias_of:(Some target) ~sync:false ~dls:false ()
          | None -> (
              match state_kind prog.aliases env 8 vb.vb_expr.exp_type with
              | Some `Dls -> mk "DLS.key" ~sync:false ~dls:true ()
              | Some `Sync -> mk "sync primitive" ~sync:true ~dls:false ()
              | Some (`Mut kind) -> mk kind ~sync:false ~dls:false ()
              | None -> if domain_local then dm3 ())))
  | _ -> ()

let rec collect_module prog ~modname ~file ~layer (str : Typedtree.structure) =
  (* Module-level attributes: layer override and whole-module
     suppression. *)
  let layer = ref layer and mod_suppress = ref None in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_attribute a -> (
          (if Cdna_flow.attr_name a = "cdna.layer" then
             match Cdna_flow.attr_reason a with
             | Some l -> layer := l
             | None -> ());
          if Cdna_flow.attr_name a = "cdna.domain_shared" then (
            prog.n_domain_shared <- prog.n_domain_shared + 1;
            match Cdna_flow.attr_reason a with
            | Some r when String.trim r <> "" -> mod_suppress := Some r
            | _ ->
                prog.extra_viols <-
                  {
                    rule = rule_ds1;
                    file;
                    line = loc_line a.attr_loc;
                    msg =
                      Printf.sprintf
                        "[@@@cdna.domain_shared] on module %s needs a \
                         reason string explaining why sharing is safe"
                        modname;
                    chain = [];
                    suppress = None;
                  }
                  :: prog.extra_viols;
                mod_suppress := Some ""))
      | _ -> ())
    str.str_items;
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
          List.iter
            (register_binding prog ~modname ~file ~layer:!layer
               ~mod_suppress:!mod_suppress)
            vbs
      | Typedtree.Tstr_module mb ->
          collect_module_binding prog ~file ~layer:!layer mb
      | Typedtree.Tstr_recmodule mbs ->
          List.iter (collect_module_binding prog ~file ~layer:!layer) mbs
      | _ -> ())
    str.str_items

and collect_module_binding prog ~file ~layer (mb : Typedtree.module_binding) =
  let name =
    match mb.mb_id with
    | Some id -> Ident.name id
    | None -> ( match mb.mb_name.txt with Some n -> n | None -> "_")
  in
  let rec of_mexpr (me : Typedtree.module_expr) =
    match Chain.module_alias_target me with
    | Some target -> prog.aliases <- SMap.add name target prog.aliases
    | None -> (
        match me.mod_desc with
        | Typedtree.Tmod_structure s ->
            collect_module prog ~modname:name ~file ~layer s
        | Typedtree.Tmod_constraint (m, _, _, _) -> of_mexpr m
        | _ -> ())
  in
  of_mexpr mb.mb_expr

(* ------------------------------------------------------------------ *)
(* Facts (pass 2): state uses, call edges, scheduled closures          *)
(* ------------------------------------------------------------------ *)

(* Resolve an expression to an item id: direct reference, same-module
   unqualified reference, closure-captured local, or function-local
   alias ([let t = A.table in .. t ..]). *)
let resolve_item prog ~f (local : string IdentMap.t)
    (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> (
      match p with
      | Path.Pident id -> (
          match IdentMap.find_opt id local with
          | Some item -> Some item
          | None -> (
              match IdentMap.find_opt id prog.captured with
              | Some item -> Some item
              | None ->
                  let qualified = f.d_module ^ "." ^ Ident.name id in
                  if SMap.mem qualified prog.items then Some qualified
                  else None))
      | _ ->
          let c = Cdna_flow.canon_of prog.aliases (Path.name p) in
          if SMap.mem c prog.items then Some c else None)
  | _ -> None

let collect_facts prog (f : dfn) =
  let calls = ref [] and uses = ref [] in
  let sched_depth = ref 0 in
  let add_call callee line =
    calls :=
      { dc_callee = callee; dc_line = line; dc_sched = !sched_depth > 0 }
      :: !calls
  in
  let add_use item what ~write line =
    uses :=
      {
        u_item = item;
        u_fn = f.d_id;
        u_what = what;
        u_write = write;
        u_line = line;
        u_sched = !sched_depth > 0;
      }
      :: !uses
  in
  (* Is [callee] an LP entry point for literal closure arguments? *)
  let schedules_closures callee =
    SSet.mem callee sched_prims
    ||
    match SMap.find_opt callee prog.fns with
    | Some g -> SSet.mem g.d_layer lp_layers
    | None -> false
  in
  let rec visit local (e : Typedtree.expression) =
    (* Generic child traversal that keeps [local] in scope. *)
    let default () =
      let it =
        {
          Tast_iterator.default_iterator with
          expr = (fun _ e' -> visit local e');
        }
      in
      Tast_iterator.default_iterator.expr it e
    in
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_let (_, vbs, body) ->
        let local =
          List.fold_left
            (fun local (vb : Typedtree.value_binding) ->
              match
                (pat_var vb.vb_pat, resolve_item prog ~f local vb.vb_expr)
              with
              | Some (id, _), Some item ->
                  (* Pure local alias: track, don't count as a use. *)
                  IdentMap.add id item local
              | _ ->
                  visit local vb.vb_expr;
                  local)
            local vbs
        in
        visit local body
    | Typedtree.Texp_apply (fe, args) -> (
        let callee =
          match fe.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) ->
              Some (Cdna_flow.canon_of prog.aliases (Path.name p))
          | _ -> None
        in
        match callee with
        | Some c ->
            let op = Cdna_flow.last_comp c in
            let line = loc_line e.exp_loc in
            add_call c line;
            let sched_arg = schedules_closures c in
            List.iter
              (fun ((_, a) : _ * Typedtree.expression option) ->
                match a with
                | None -> ()
                | Some a -> (
                    match resolve_item prog ~f local a with
                    | Some item ->
                        if SSet.mem c write_fns || SSet.mem op write_fns then
                          add_use item
                            (Printf.sprintf "write (%s)" op)
                            ~write:true line
                        else if SSet.mem c read_fns || SSet.mem op read_fns
                        then
                          add_use item
                            (Printf.sprintf "read (%s)" op)
                            ~write:false line
                        else
                          (* Conservative: once the container escapes to
                             an arbitrary callee we must assume writes. *)
                          add_use item
                            (Printf.sprintf "escapes to %s" c)
                            ~write:true line
                    | None -> (
                        match a.Typedtree.exp_desc with
                        | Typedtree.Texp_function _ when sched_arg ->
                            incr sched_depth;
                            visit local a;
                            decr sched_depth
                        | _ -> visit local a)))
              args
        | None ->
            visit local fe;
            List.iter
              (fun ((_, a) : _ * Typedtree.expression option) ->
                match a with Some a -> visit local a | None -> ())
              args)
    | Typedtree.Texp_setfield (e1, _, ld, e2) ->
        (match resolve_item prog ~f local e1 with
        | Some item ->
            add_use item
              (Printf.sprintf "field write (%s <-)" ld.Types.lbl_name)
              ~write:true (loc_line e.exp_loc)
        | None -> visit local e1);
        visit local e2
    | Typedtree.Texp_field (e1, _, ld) -> (
        match resolve_item prog ~f local e1 with
        | Some item ->
            add_use item
              (Printf.sprintf "field read (%s)" ld.Types.lbl_name)
              ~write:false (loc_line e.exp_loc)
        | None -> visit local e1)
    | Typedtree.Texp_ident _ -> (
        match resolve_item prog ~f local e with
        | Some item ->
            (* A bare reference we can't see through: escape. *)
            add_use item "referenced (escape)" ~write:true
              (loc_line e.exp_loc)
        | None -> ())
    | _ -> default ()
  in
  visit IdentMap.empty f.d_body;
  (* Intra-module [Pident] callees: qualify against this module. *)
  let resolve c =
    if SMap.mem c prog.fns then c
    else
      let qualified = f.d_module ^ "." ^ c in
      if String.contains c '.' || not (SMap.mem qualified prog.fns) then c
      else qualified
  in
  let calls =
    List.rev_map (fun c -> { c with dc_callee = resolve c.dc_callee }) !calls
  in
  f.d_calls <- calls;
  f.d_locks <-
    List.exists (fun c -> SSet.mem c.dc_callee lock_fns) calls
    || List.exists
         (fun c -> SSet.mem (Cdna_flow.last_comp c.dc_callee) lock_fns)
         calls;
  prog.uses <- !uses @ prog.uses

(* ------------------------------------------------------------------ *)
(* LP reachability (pass 3)                                            *)
(* ------------------------------------------------------------------ *)

(* BFS over call edges from LP roots; [chains] maps each LP-capable
   function to its witness path (oldest hop first). *)
let lp_reachability prog =
  let chains : hop list SMap.t ref = ref SMap.empty in
  let queue = Queue.create () in
  let enqueue id chain =
    if not (SMap.mem id !chains) then begin
      chains := SMap.add id chain !chains;
      Queue.push id queue
    end
  in
  (* Roots, in deterministic order: layer-resident functions first, then
     closures handed to scheduling primitives. *)
  SMap.iter
    (fun id (f : dfn) ->
      if SSet.mem f.d_layer lp_layers then
        enqueue id
          [
            {
              hop_what =
                Printf.sprintf "%s lives in LP-resident layer '%s'" id
                  f.d_layer;
              hop_file = f.d_file;
              hop_line = f.d_line;
            };
          ])
    prog.fns;
  SMap.iter
    (fun _ (f : dfn) ->
      List.iter
        (fun c ->
          if c.dc_sched then
            match SMap.find_opt c.dc_callee prog.fns with
            | Some g ->
                enqueue g.d_id
                  [
                    {
                      hop_what =
                        Printf.sprintf
                          "%s called from a closure scheduled onto the \
                           engine in %s"
                          g.d_id f.d_id;
                      hop_file = f.d_file;
                      hop_line = c.dc_line;
                    };
                  ]
            | None -> ())
        f.d_calls)
    prog.fns;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let chain = SMap.find id !chains in
    match SMap.find_opt id prog.fns with
    | None -> ()
    | Some f ->
        List.iter
          (fun c ->
            match SMap.find_opt c.dc_callee prog.fns with
            | Some g when not (SMap.mem g.d_id !chains) ->
                enqueue g.d_id
                  (chain
                  @ [
                      {
                        hop_what =
                          Printf.sprintf "%s called from %s" g.d_id f.d_id;
                        hop_file = f.d_file;
                        hop_line = c.dc_line;
                      };
                    ])
            | _ -> ())
          f.d_calls
  done;
  !chains

(* ------------------------------------------------------------------ *)
(* Classification and reporting (pass 4)                               *)
(* ------------------------------------------------------------------ *)

(* Follow [let t = A.t] alias links to the root item, collecting one hop
   per link. *)
let resolve_alias prog (it : item) =
  let rec go fuel (it : item) hops =
    match it.i_alias_of with
    | Some target when fuel > 0 -> (
        match SMap.find_opt target prog.items with
        | Some root ->
            go (fuel - 1) root
              (hops
              @ [
                  {
                    hop_what =
                      Printf.sprintf "aliased as %s = %s" it.i_id target;
                    hop_file = it.i_file;
                    hop_line = it.i_line;
                  };
                ])
        | None -> None)
    | Some _ -> None
    | None -> Some (it, hops)
  in
  go 5 it []

let analyze root =
  if not (Sys.file_exists root) then
    raise (Dom_error ("no such cmt root: " ^ root));
  let prog =
    {
      fns = SMap.empty;
      items = SMap.empty;
      aliases = SMap.empty;
      uses = [];
      extra_viols = [];
      n_files = 0;
      n_domain_local = 0;
      n_domain_shared = 0;
      captured = IdentMap.empty;
    }
  in
  let cmts = Cdna_flow.collect_cmts [] root |> List.sort String.compare in
  (* Envs stored in cmt files are summaries; rehydrating them (for the
     mutable-record check in [state_kind]) loads .cmi files, so the load
     path must cover the cmt dirs and the stdlib. *)
  let cmt_dirs =
    List.sort_uniq String.compare (List.map Filename.dirname cmts)
  in
  Load_path.init ~auto_include:Load_path.no_auto_include
    (cmt_dirs @ [ Config.standard_library ]);
  List.iter
    (fun path ->
      match Cmt_format.read_cmt path with
      | exception _ -> ()
      | cmt -> (
          match (cmt.cmt_annots, cmt.cmt_sourcefile) with
          | Cmt_format.Implementation str, Some src
            when not (Filename.check_suffix src ".ml-gen") ->
              prog.n_files <- prog.n_files + 1;
              let modname = Cdna_flow.strip_wrap cmt.cmt_modname in
              let layer = layer_of_file src in
              collect_module prog ~modname ~file:src ~layer str
          | Cmt_format.Implementation str, Some _ ->
              (* dune alias modules: harvest [module X = Lib__X] only. *)
              List.iter
                (fun (item : Typedtree.structure_item) ->
                  match item.str_desc with
                  | Typedtree.Tstr_module mb ->
                      collect_module_binding prog ~file:"" ~layer:"" mb
                  | _ -> ())
                str.str_items
          | _ -> ()))
    cmts;
  let fns_sorted = SMap.bindings prog.fns |> List.map snd in
  List.iter (collect_facts prog) fns_sorted;
  let lp_chains = lp_reachability prog in
  (* Resolve uses through toplevel aliases onto root items. *)
  let resolved_uses =
    List.filter_map
      (fun u ->
        match SMap.find_opt u.u_item prog.items with
        | None -> None
        | Some it -> (
            match resolve_alias prog it with
            | Some (root, hops) -> Some (root.i_id, hops, u)
            | None -> None))
      prog.uses
  in
  let uses_of id =
    List.filter (fun (rid, _, _) -> rid = id) resolved_uses
    |> List.map (fun (_, hops, u) -> (hops, u))
    |> List.sort (fun (_, a) (_, b) ->
           let c = String.compare a.u_fn b.u_fn in
           if c <> 0 then c else Int.compare a.u_line b.u_line)
  in
  let viols = ref prog.extra_viols in
  let roots =
    SMap.bindings prog.items |> List.map snd
    |> List.filter (fun it -> it.i_alias_of = None)
  in
  List.iter
    (fun (it : item) ->
      if it.i_dls then it.i_class <- Dls
      else if it.i_sync then it.i_class <- Sync
      else begin
        let uses = uses_of it.i_id in
        let writes = List.filter (fun (_, u) -> u.u_write) uses in
        let lp_use (_, u) = u.u_sched || SMap.mem u.u_fn lp_chains in
        let lp_uses = List.filter lp_use uses in
        if it.i_domain_local then it.i_class <- Domain_local
        else if writes = [] then it.i_class <- Frozen
        else if lp_uses = [] then it.i_class <- Lp_local
        else if
          List.for_all
            (fun (_, u) ->
              match SMap.find_opt u.u_fn prog.fns with
              | Some f -> f.d_locks
              | None -> false)
            uses
        then it.i_class <- Barrier
        else begin
          it.i_class <- Shared;
          (* One violation per (item, LP-referencing function). *)
          let seen = ref SSet.empty in
          List.iter
            (fun (alias_hops, u) ->
              if not (SSet.mem u.u_fn !seen) then begin
                seen := SSet.add u.u_fn !seen;
                let use_file =
                  match SMap.find_opt u.u_fn prog.fns with
                  | Some g -> g.d_file
                  | None -> it.i_file
                in
                let witness =
                  match SMap.find_opt u.u_fn lp_chains with
                  | Some chain -> chain
                  | None ->
                      [
                        {
                          hop_what =
                            Printf.sprintf
                              "use sits in a closure %s schedules onto the \
                               engine"
                              u.u_fn;
                          hop_file = use_file;
                          hop_line = u.u_line;
                        };
                      ]
                in
                let decl =
                  {
                    hop_what =
                      Printf.sprintf "%s '%s' defined at module level"
                        it.i_kind it.i_id;
                    hop_file = it.i_file;
                    hop_line = it.i_line;
                  }
                in
                let use_hop =
                  {
                    hop_what = Printf.sprintf "%s in %s" u.u_what u.u_fn;
                    hop_file = use_file;
                    hop_line = u.u_line;
                  }
                in
                let rule =
                  if it.i_captured_in <> None then rule_dm2 else rule_dm1
                in
                let msg =
                  Printf.sprintf
                    "%s '%s'%s is mutable, written, and reachable from LP \
                     context via %s — move it into a per-LP/per-instance \
                     record, back it with Domain.DLS, or suppress with \
                     [@cdna.domain_shared \"reason\"]"
                    it.i_kind it.i_id
                    (match it.i_captured_in with
                    | Some f -> " (captured by " ^ f ^ ")"
                    | None -> "")
                    u.u_fn
                in
                viols :=
                  {
                    rule;
                    file = use_file;
                    line = u.u_line;
                    msg;
                    chain = [ decl ] @ alias_hops @ witness @ [ use_hop ];
                    suppress =
                      (match it.i_suppress with
                      | Some r when r <> "" -> Some r
                      | _ -> None);
                  }
                  :: !viols
              end)
            lp_uses
        end
      end)
    roots;
  let suppressed, violations =
    List.partition (fun v -> v.suppress <> None) !viols
  in
  (* Items carrying a non-empty [@cdna.domain_shared] that classified
     Shared are accounted as suppressed above; one with an empty reason
     already produced its DS1. *)
  let class_counts =
    List.fold_left
      (fun acc (it : item) ->
        let k = cls_name it.i_class in
        let n = try List.assoc k acc with Not_found -> 0 in
        (k, n + 1) :: List.remove_assoc k acc)
      [] roots
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    cmt_files = prog.n_files;
    functions = SMap.cardinal prog.fns;
    state_items = List.length roots;
    classes = class_counts;
    violations = List.sort_uniq violation_compare violations;
    suppressed = List.sort_uniq violation_compare suppressed;
    domain_local = prog.n_domain_local;
    domain_shared = prog.n_domain_shared;
  }

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let report_to_json r =
  Sim.Json.Obj
    [
      ("cmt_files", Sim.Json.Int r.cmt_files);
      ("functions", Sim.Json.Int r.functions);
      ("state_items", Sim.Json.Int r.state_items);
      ( "classes",
        Sim.Json.Obj (List.map (fun (k, n) -> (k, Sim.Json.Int n)) r.classes)
      );
      ("violations", Sim.Json.Int (List.length r.violations));
      ("rules", Chain.rule_counts_json r.violations);
      ("suppressions", Sim.Json.Int (List.length r.suppressed));
      ("domain_local", Sim.Json.Int r.domain_local);
      ("domain_shared", Sim.Json.Int r.domain_shared);
    ]
