(* Chain — machinery shared by every [.cmt]-typedtree verification pass
   ([cdna_flow], [cdna_dom], [cdna_proto]): the hop/violation report
   types with their deterministic ordering and rendering, identifier
   canonicalization (dune wrapping prefixes, module aliases, functor
   instances), attribute and location helpers, cmt-corpus discovery, and
   the JSON encoders consumed by [main.exe --stats].

   Each pass keeps its own lattice and walker; what lives here is
   exactly the code that must agree byte-for-byte across passes so that
   a chain rendered by one pass reads like a chain rendered by another
   and the combined stats artifact stays stable. *)

module SSet = Set.Make (String)
module SMap = Map.Make (String)
module ISet = Set.Make (Int)
module IdentMap = Map.Make (Ident)

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

type hop = { hop_what : string; hop_file : string; hop_line : int }

type violation = {
  rule : string;
  file : string;
  line : int;
  msg : string;
  chain : hop list; (* source -> ... -> sink, oldest first *)
  suppress : string option; (* [Some reason] when suppressed *)
}

let violation_compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = String.compare a.rule b.rule in
      if c <> 0 then c else String.compare a.msg b.msg

let violation_to_string v =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "%s:%d: [%s] %s" v.file v.line v.rule v.msg);
  List.iteri
    (fun i h ->
      Buffer.add_string b
        (Printf.sprintf "\n    %d. %s at %s:%d" (i + 1) h.hop_what h.hop_file
           h.hop_line))
    v.chain;
  Buffer.contents b

(* [--only RULE] filtering: accept either the full rule name or its
   prefix up to the first dash ("PR1" matches "PR1-leak-on-path"). *)
let rule_matches ~only rule =
  match only with
  | None -> true
  | Some o ->
      rule = o
      || String.length rule > String.length o
         && String.sub rule 0 (String.length o) = o
         && rule.[String.length o] = '-'

(* ------------------------------------------------------------------ *)
(* Name canonicalization                                               *)
(* ------------------------------------------------------------------ *)

(* "Nic__Dp" -> "Dp": strip the dune wrapping prefix. *)
let strip_wrap comp =
  let n = String.length comp in
  let rec scan i =
    if i + 1 >= n then comp
    else if comp.[i] = '_' && comp.[i + 1] = '_' then
      String.sub comp (i + 2) (n - i - 2)
    else scan (i + 1)
  in
  if n = 0 then comp else scan 0

let split_on_dot s = String.split_on_char '.' s

(* Module aliases and functor instances harvested during collection:
   "H" -> "Hashtbl", "SSet" -> "Stdlib.Set". *)
let expand_alias aliases comps =
  let rec go fuel comps =
    if fuel = 0 then comps
    else
      match comps with
      | first :: rest -> (
          match SMap.find_opt first aliases with
          | Some target when target <> first ->
              go (fuel - 1) (split_on_dot target @ rest)
          | _ -> comps)
      | [] -> comps
  in
  go 5 comps

(* Canonical identifier: alias-expanded, wrap-stripped, reduced to its
   last two components so [Memory.Phys_mem.read], [Env.Phys_mem.read]
   and [Stdlib.Hashtbl.fold] normalize to stable keys. *)
let canon_of aliases name =
  let comps = split_on_dot name |> List.map strip_wrap in
  let comps =
    if List.length comps > 1 then expand_alias aliases comps else comps
  in
  let comps = List.map strip_wrap comps in
  match List.rev comps with
  | [] -> ""
  | [ x ] -> x
  | x :: m :: _ -> m ^ "." ^ x

let last_comp name =
  match List.rev (split_on_dot name) with [] -> "" | x :: _ -> x

(* ------------------------------------------------------------------ *)
(* Attribute helpers (compiler-libs Parsetree)                         *)
(* ------------------------------------------------------------------ *)

let attr_name (a : Parsetree.attribute) = a.Parsetree.attr_name.Location.txt

let attr_reason (a : Parsetree.attribute) =
  match a.Parsetree.attr_payload with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let find_attr name attrs =
  List.find_opt (fun a -> attr_name a = name) attrs

let has_attr name attrs = find_attr name attrs <> None

(* ------------------------------------------------------------------ *)
(* Location helpers                                                    *)
(* ------------------------------------------------------------------ *)

let loc_file (loc : Location.t) = loc.loc_start.Lexing.pos_fname
let loc_line (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let hop what loc =
  { hop_what = what; hop_file = loc_file loc; hop_line = loc_line loc }

let normalize_path p = String.map (fun c -> if c = '\\' then '/' else c) p

let path_has_dir path dir =
  let path = normalize_path path in
  let needle = dir ^ "/" in
  let nl = String.length needle and pl = String.length path in
  let rec scan i =
    if i + nl > pl then false
    else if String.sub path i nl = needle then i = 0 || path.[i - 1] = '/'
    else scan (i + 1)
  in
  scan 0

let layer_of_file file =
  if path_has_dir file "lib/nic" then "nic"
  else if path_has_dir file "lib/guestos" then "guestos"
  else if path_has_dir file "lib/xen" then "xen"
  else if path_has_dir file "lib/host" then "host"
  else if path_has_dir file "lib/memory" then "memory"
  else if path_has_dir file "lib/bus" then "bus"
  else if path_has_dir file "lib/core" then "core"
  else ""

(* ------------------------------------------------------------------ *)
(* Module-alias harvesting                                             *)
(* ------------------------------------------------------------------ *)

(* The alias target recorded for [module M = <mexpr>], if any:
   [module L = List] yields "List"; [module S = Set.Make (O)] resolves
   against the functor's parent module ("Set"), which is where the API
   semantics live. Structures and unpackings yield [None] — the caller
   recurses into those itself. *)
let module_alias_target (me : Typedtree.module_expr) =
  let rec functor_path (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_ident (p, _) -> Some (Path.name p)
    | Typedtree.Tmod_apply (f, _, _) -> functor_path f
    | Typedtree.Tmod_constraint (m, _, _, _) -> functor_path m
    | _ -> None
  in
  match me.Typedtree.mod_desc with
  | Typedtree.Tmod_ident (p, _) ->
      Some
        (String.concat "."
           (List.map strip_wrap (split_on_dot (Path.name p))))
  | Typedtree.Tmod_apply (f, _, _) -> (
      match functor_path f with
      | Some p -> (
          match List.rev (List.map strip_wrap (split_on_dot p)) with
          | _make :: parent ->
              Some (String.concat "." (List.rev parent))
          | [] -> None)
      | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Corpus discovery                                                    *)
(* ------------------------------------------------------------------ *)

let rec collect_cmts acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc e -> collect_cmts acc (Filename.concat path e))
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let hop_to_json h =
  Sim.Json.Obj
    [
      ("what", Sim.Json.String h.hop_what);
      ("file", Sim.Json.String h.hop_file);
      ("line", Sim.Json.Int h.hop_line);
    ]

let violation_to_json v =
  Sim.Json.Obj
    ([
       ("file", Sim.Json.String v.file);
       ("line", Sim.Json.Int v.line);
       ("rule", Sim.Json.String v.rule);
       ("msg", Sim.Json.String v.msg);
       ("chain", Sim.Json.List (List.map hop_to_json v.chain));
     ]
    @
    match v.suppress with
    | Some r -> [ ("suppressed", Sim.Json.String r) ]
    | None -> [])

let rule_counts_json vs =
  let counts =
    List.fold_left
      (fun acc (v : violation) ->
        let n = try List.assoc v.rule acc with Not_found -> 0 in
        (v.rule, n + 1) :: List.remove_assoc v.rule acc)
      [] vs
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Sim.Json.Obj (List.map (fun (k, n) -> (k, Sim.Json.Int n)) counts)
