(* D1: unsorted fold is flagged; the sorted variant is accepted. *)
let keys_bad tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let keys_good tbl =
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let keys_piped tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare
