(* P2 (linted under a pretend lib/guestos/ path): guest memory reached
   directly instead of through Bus.Dma_engine. *)
let poke mem ~addr data = Memory.Phys_mem.write mem ~addr data
let peek mem ~addr = Memory.Phys_mem.read_u32 mem ~addr
