(* D1: Hashtbl.iter in hash order feeding an output path. *)
let dump tbl = Hashtbl.iter (fun k v -> Printf.printf "%d=%d\n" k v) tbl
