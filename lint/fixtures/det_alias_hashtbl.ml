(* D1 must not be evadable by renaming the module: a top-level alias, a
   let-module alias, and a fully qualified Stdlib path all iterate in
   hash order. Expected: three D1 hits. *)

module HH = Hashtbl

let sum_top tbl = HH.fold (fun _ v acc -> acc + v) tbl 0

let sum_local tbl =
  let module H = Hashtbl in
  H.fold (fun _ v acc -> acc + v) tbl 0

let walk tbl f = Stdlib.Hashtbl.iter f tbl
