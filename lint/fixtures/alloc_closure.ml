(* A2: anonymous closures capture and allocate; named local functions
   compiled as direct calls do not. *)
let[@cdna.hot] iter_twice f = f 0; f 1

let[@cdna.hot] bad n = iter_twice (fun i -> ignore (i + n))

let[@cdna.hot] good n =
  let rec spin i = if i < n then spin (i + 1) in
  spin 0
