(* S1: a suppression without a reason string is itself a violation. *)
let[@cdna.unordered_ok] total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
