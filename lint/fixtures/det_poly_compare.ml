(* D2: polymorphic compare/hash, and (=) on structured operands. *)
let sort_pairs l = List.sort compare l
let bucket x = Hashtbl.hash x
let is_first x opt = opt = Some x
