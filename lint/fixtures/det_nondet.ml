(* D3: wall clock, GC observation and Marshal are all nondeterministic. *)
let seed () = int_of_float (Sys.time ())
let words () = int_of_float (Gc.minor_words ())
let blob x = Marshal.to_string x []
