(* A3: a hot body may only call hot functions or allowlisted primitives. *)
let slow x = string_of_int x
let[@cdna.hot] fast x = String.length (slow x)
