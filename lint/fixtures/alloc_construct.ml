(* A1: structure construction inside a [@cdna.hot] body. *)
let[@cdna.hot] minmax a b = if a < b then (a, b) else (b, a)
let[@cdna.hot] wrap x = Some (x + 1)
