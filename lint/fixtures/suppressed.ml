(* Every rule family, silenced by a justified annotation: this file must
   produce zero diagnostics. *)

let[@cdna.unordered_ok "commutative sum: order cannot affect the result"] total
    tbl =
  Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

let[@cdna.nondet_ok "diagnostics only, never in simulated output"] words () =
  Gc.minor_words ()

let[@cdna.polyeq_ok "keys are int pairs, compared structurally on purpose"] same
    a b =
  a = Some b

let[@cdna.hot] wrapped x = Some (x * 2) [@cdna.alloc_ok "boxed result accepted"]

let flip mem pfn dom =
  (Memory.Phys_mem.transfer mem pfn ~to_:dom
  [@cdna.protection_ok "fixture: models a hypervisor-mediated flip"])
