(* Module-level privilege declaration exempts a file from P rules (and is
   counted as a suppression). *)
[@@@cdna.privileged "fixture: stands in for the hypervisor layer"]

let pin mem pfn = Memory.Phys_mem.get_ref mem pfn
