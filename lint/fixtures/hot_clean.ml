(* A clean hot function: int arithmetic, allowlisted primitives, calls to
   other hot functions — zero diagnostics expected. *)
let[@cdna.hot] mask v = v land 0xff

let[@cdna.hot] read16 b i =
  Char.code (Bytes.unsafe_get b i)
  lor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 8)

let[@cdna.hot] sum2 b i = mask (read16 b i) + mask i
