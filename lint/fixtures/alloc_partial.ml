(* A4: partial application of a known hot function builds a closure. *)
let[@cdna.hot] add3 a b c = a + b + c
let[@cdna.hot] stage a = add3 a 1
