(* A [@cdna.hot] binding inside a submodule must resolve for hot callers
   under its innermost-module name (collect_hot descends into
   Pstr_module), mirroring Sim.Stats.Histogram.add. *)

module Histo = struct
  type t = { mutable n : int; mutable sum : int }

  let[@cdna.hot] bump t v =
    t.n <- t.n + 1;
    t.sum <- t.sum + v
end

module Rec_a = struct
  let[@cdna.hot] double x = x * 2
end

let[@cdna.hot] record t v =
  Histo.bump t (Rec_a.double v);
  Histo.bump t v
