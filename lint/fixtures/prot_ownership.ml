(* P1 (linted under a pretend lib/nic/ path): ownership mutation outside
   the hypervisor layers. *)
let steal mem pfn dom =
  ignore (Memory.Phys_mem.transfer mem pfn ~to_:dom);
  Memory.Phys_mem.get_ref mem pfn

let leak iommu ~context pfn = Memory.Iommu.grant iommu ~context pfn
