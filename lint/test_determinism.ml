(* Determinism of the combined four-pass stats artifact and of the
   rendered violation output: LINT_stats.json is diffed by the
   suppression-drift gate and archived by CI, so two runs over the same
   corpus must agree byte-for-byte, and the result must not depend on
   the order the fixture directories happen to be listed in.

   This assembles the combined document exactly as [main.exe --stats]
   does — parsetree block plus one block per .cmt pass — except for the
   [timing] block, which is wall-clock by definition and therefore
   excluded from both the gate and this comparison. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry -> collect_ml acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

(* The combined stats document (sans timing) over all four fixture
   corpora, with every pass's rendered violations appended. *)
let combined ~order =
  let files =
    collect_ml [] "fixtures"
    |> List.sort_uniq String.compare
    |> List.map (fun p -> (p, read_file p))
  in
  let diags, stats = Cdna_lint.run files in
  let flow = Cdna_flow.analyze "flow_fixtures" in
  let dom = Cdna_dom.analyze "dom_fixtures" in
  let proto =
    let paths =
      Chain.collect_cmts [] "proto_fixtures" |> List.sort String.compare
    in
    Cdna_proto.analyze_paths (order paths)
  in
  let json =
    match Cdna_lint.stats_to_json stats with
    | Sim.Json.Obj fields ->
        Sim.Json.Obj
          (fields
          @ [
              ("flow", Cdna_flow.report_to_json flow);
              ("dom", Cdna_dom.report_to_json dom);
              ("proto", Cdna_proto.report_to_json proto);
            ])
    | j -> j
  in
  let rendered =
    List.map Cdna_lint.diag_to_string diags
    @ List.map Chain.violation_to_string flow.Cdna_flow.violations
    @ List.map Chain.violation_to_string dom.Cdna_dom.violations
    @ List.map Chain.violation_to_string proto.Cdna_proto.violations
  in
  (Sim.Json.to_string json, String.concat "\n" rendered)

let test_two_runs () =
  let json_a, text_a = combined ~order:(fun p -> p) in
  let json_b, text_b = combined ~order:(fun p -> p) in
  Alcotest.(check string) "combined stats JSON byte-identical" json_a json_b;
  Alcotest.(check string) "rendered violations byte-identical" text_a text_b;
  Alcotest.(check bool) "corpus is non-trivial" true
    (String.length text_a > 0)

(* Feeding the .cmt corpus in reverse listing order must not change a
   byte: discovery order is an accident of the filesystem. *)
let test_listing_order () =
  let json_a, text_a = combined ~order:(fun p -> p) in
  let json_b, text_b = combined ~order:List.rev in
  Alcotest.(check string) "stats JSON stable under listing order" json_a
    json_b;
  Alcotest.(check string) "rendering stable under listing order" text_a text_b

let () =
  Alcotest.run "determinism"
    [
      ( "four-pass",
        [
          Alcotest.test_case "byte-identical across runs" `Quick test_two_runs;
          Alcotest.test_case "stable under listing order" `Quick
            test_listing_order;
        ] );
    ]
