(* cdna_flow — interprocedural guest-taint and DMA-safety verification
   over compiled [.cmt] typedtrees (compiler-libs).

   Complements the purely syntactic [cdna_lint] (parsetree) with three
   whole-program analyses sharing one call graph built across every
   module handed to [analyze]:

   - (T1/T2) guest-taint: values originating from guest-readable memory
     ([Phys_mem.read_*], descriptor reads via [Desc_layout.read],
     [Mailbox] PIO payloads, [Xchan] messages) are tainted and must pass
     through a declared sanitizer ([Iommu.allowed], [Seqno.continuous],
     or any function marked [@cdna.sanitizer]) before flowing into an
     address/length argument of a DMA sink ([Bus.Dma_engine.*],
     [Phys_mem] writes, [Desc_layout.write], [Iommu.grant],
     [Phys_mem.get_ref]) or into the addr/len fields of a
     [Memory.Dma_desc.t] record under construction. Violations carry the
     full source -> call chain -> sink path with file:line per hop.
   - (A6) transitive zero-alloc: a [@cdna.hot] function may only
     (transitively) reach allocation-free functions. The parsetree rules
     A1-A5 vet a hot body itself; A6 closes the loophole of a hot
     function calling a quietly-allocating non-hot helper, resolving
     module aliases ([module L = List]) and functor instances
     ([module M = Map.Make (...)]) the parsetree walker cannot see.
   - (P3) privilege reachability: no call path from a lib/nic or
     lib/guestos entry point reaches an ownership-mutating operation
     ([Phys_mem.alloc/free/transfer/get_ref/put_ref], [Iommu.grant/
     revoke/revoke_context]) except through the declared hypercall
     surface (a [@@@cdna.privileged] module, e.g. [Hyp], or the
     xen/host/memory layers).

   Annotation contract (DESIGN.md section 10):
     [@cdna.sanitizer]       the function validates guest data; applying
                             it to a variable cleanses that binding for
                             the rest of the enclosing function
     [@cdna.source]          the function returns guest-controlled data
     [@cdna.flow_ok "why"]   suppresses a flow violation on the subtree
     [@@@cdna.layer "nic"]   (module level) overrides the path-derived
                             layer, for fixtures compiled out of tree

   Soundness envelope (documented, deliberate): taint does not propagate
   through mutable state (Queue/Hashtbl/mutable fields act as cuts — the
   datapath drains them under its own sequencing discipline), and a
   local closure analyzed at its binding site assumes clean parameters.
   Both limits are one-sided: they can miss flows, never invent them. *)

module SSet = Chain.SSet
module SMap = Chain.SMap
module ISet = Chain.ISet
module IdentMap = Chain.IdentMap

(* ------------------------------------------------------------------ *)
(* Diagnostics (shared shapes re-exported from [Chain])                *)
(* ------------------------------------------------------------------ *)

type hop = Chain.hop = { hop_what : string; hop_file : string; hop_line : int }

type violation = Chain.violation = {
  rule : string;
  file : string;
  line : int;
  msg : string;
  chain : hop list; (* source -> ... -> sink, oldest first *)
  suppress : string option; (* [Some reason] when [@cdna.flow_ok] *)
}

type report = {
  cmt_files : int;
  functions : int;
  violations : violation list; (* unsuppressed, sorted *)
  suppressed : violation list;
  sanitizer_fns : int;
}

let rule_t1 = "T1-guest-taint"
let rule_t2 = "T2-desc-construct"
let rule_a6 = "A6-transitive-alloc"
let rule_p3 = "P3-priv-reachability"

let violation_compare = Chain.violation_compare
let violation_to_string = Chain.violation_to_string

(* ------------------------------------------------------------------ *)
(* Source / sink / sanitizer contract                                  *)
(* ------------------------------------------------------------------ *)

let declared_sources =
  SSet.of_list
    [
      "Phys_mem.read"; "Phys_mem.read_uint"; "Phys_mem.read_u16";
      "Phys_mem.read_u32"; "Phys_mem.read_u64"; "Desc_layout.read";
      "Mailbox.value"; "Xchan.tx_peek"; "Xchan.tx_pop"; "Xchan.rx_pop";
      "Xchan.take_tx_completions"; "Xchan.take_returned_pages";
    ]

let declared_sanitizers = SSet.of_list [ "Iommu.allowed"; "Seqno.continuous" ]

(* Sensitive arguments per sink: labelled args by label, positional args
   by 0-based index among the [Nolabel] arguments. *)
type sens = Lab of string | Pos of int

let declared_sinks : sens list SMap.t =
  SMap.of_seq
    (List.to_seq
       [
         ("Dma_engine.read", [ Lab "addr"; Lab "len" ]);
         ("Dma_engine.read_into", [ Lab "addr"; Lab "len" ]);
         ("Dma_engine.write", [ Lab "addr" ]);
         ("Dma_engine.write_from", [ Lab "addr"; Lab "len" ]);
         ("Dma_engine.access", [ Lab "addr"; Lab "len" ]);
         ("Phys_mem.write", [ Lab "addr" ]);
         ("Phys_mem.write_sub", [ Lab "addr"; Lab "len" ]);
         ("Phys_mem.write_uint", [ Lab "addr" ]);
         ("Phys_mem.write_u16", [ Lab "addr" ]);
         ("Phys_mem.write_u32", [ Lab "addr" ]);
         ("Phys_mem.write_u64", [ Lab "addr" ]);
         ("Desc_layout.write", [ Lab "at" ]);
         ("Iommu.grant", [ Pos 1 ]);
         ("Phys_mem.get_ref", [ Pos 1 ]);
       ])

(* Modules modeled purely by the contract above: their bodies implement
   the primitives (bounds checks, IOMMU walks) and are exempt from taint
   evaluation — analyzing them would re-flag the very validation code
   the contract declares trusted. Call/alloc facts are still collected
   for the A6 and P3 graphs. *)
let contract_modules =
  SSet.of_list
    [
      "Phys_mem"; "Iommu"; "Dma_engine"; "Desc_layout"; "Mailbox"; "Xchan";
      "Addr"; "Dma_desc"; "Seqno";
    ]

(* P3: ownership / IOMMU-permission mutation (mirrors cdna_lint's P1). *)
let ownership_fns =
  SSet.of_list
    [
      "Phys_mem.alloc"; "Phys_mem.free"; "Phys_mem.transfer";
      "Phys_mem.get_ref"; "Phys_mem.put_ref"; "Iommu.grant"; "Iommu.revoke";
      "Iommu.revoke_context";
    ]

(* Higher-order stdlib combinators: a literal lambda argument has its
   parameters bound to the joined taint of the other (collection)
   arguments, so element flows survive [List.iter (fun e -> ...) xs]. *)
let hof_fns =
  SSet.of_list
    [
      "List.iter"; "List.iteri"; "List.map"; "List.mapi"; "List.rev_map";
      "List.concat_map"; "List.filter_map"; "List.filter"; "List.fold_left";
      "List.fold_right"; "List.exists"; "List.for_all"; "List.find";
      "List.find_opt"; "List.partition"; "Array.iter"; "Array.iteri";
      "Array.map"; "Array.mapi"; "Array.fold_left"; "Queue.iter";
      "Queue.fold"; "Hashtbl.iter"; "Hashtbl.fold"; "Option.iter";
      "Option.map"; "Option.bind"; "Option.fold"; "Seq.iter"; "Seq.map";
      "Seq.fold_left";
    ]

let named_operators =
  SSet.of_list
    [ "or"; "mod"; "land"; "lor"; "lxor"; "lnot"; "lsl"; "lsr"; "asr" ]

let is_operator_name name =
  String.length name > 0
  && (String.contains "!$%&*+-./:<=>?@^|~" name.[0]
     || SSet.mem name named_operators)

(* Calls whose arguments leave the steady-state path. *)
let cold_exits =
  SSet.of_list
    [
      "raise"; "raise_notrace"; "invalid_arg"; "failwith"; "Stdlib.raise";
      "Stdlib.raise_notrace"; "Stdlib.invalid_arg"; "Stdlib.failwith";
      "Stdlib.assert"; "Printf.sprintf"; "Format.asprintf";
    ]

let alloc_operators = SSet.of_list [ "^"; "@"; "^^" ]

(* ------------------------------------------------------------------ *)
(* Name canonicalization                                               *)
(* ------------------------------------------------------------------ *)

let strip_wrap = Chain.strip_wrap
let split_on_dot = Chain.split_on_dot
let expand_alias = Chain.expand_alias
let canon_of = Chain.canon_of
let last_comp = Chain.last_comp

(* ------------------------------------------------------------------ *)
(* Attribute helpers (compiler-libs Parsetree)                         *)
(* ------------------------------------------------------------------ *)

let attr_name = Chain.attr_name
let attr_reason = Chain.attr_reason
let find_attr = Chain.find_attr
let has_attr = Chain.has_attr

(* ------------------------------------------------------------------ *)
(* Program representation                                              *)
(* ------------------------------------------------------------------ *)

type call = {
  c_callee : string; (* canonical *)
  c_line : int;
  c_susp : bool; (* under [@cdna.alloc_ok] / [@cdna.flow_ok] *)
}

type origin = {
  o_src : string;
  o_hops : hop list; (* head = the source read itself *)
}

type taint =
  | Clean
  | Fn of string * taint (* known function value, return taint *)
  | T of origin option * ISet.t (* source- and/or parameter-tainted *)
  | Fields of taint SMap.t

type flow = { fl_param : int; fl_sink : string; fl_hops : hop list }

type summary = { s_ret : taint; s_flows : flow list }

type fn = {
  f_id : string; (* canonical "Mod.name" *)
  f_module : string;
  f_file : string;
  f_line : int;
  f_params : (string option * Typedtree.pattern) list;
  f_body : Typedtree.expression;
  f_hot : bool;
  f_sanitizer : bool;
  f_source : bool;
  f_privileged : bool;
  f_layer : string;
  f_contract : bool;
  mutable f_calls : call list;
  mutable f_allocs : (string * int) list; (* description, line *)
  mutable f_summary : summary;
}

let empty_summary = { s_ret = Clean; s_flows = [] }

(* ------------------------------------------------------------------ *)
(* Taint lattice                                                       *)
(* ------------------------------------------------------------------ *)

let norm = function T (None, s) when ISet.is_empty s -> Clean | t -> t

let rec collapse = function
  | Fields m -> SMap.fold (fun _ v acc -> join (collapse v) acc) m Clean
  | Fn _ -> Clean
  | t -> t

and join a b =
  match (norm a, norm b) with
  | Clean, x | x, Clean -> x
  | Fn _, x | x, Fn _ -> x
  | Fields f, Fields g ->
      Fields
        (SMap.union (fun _ x y -> Some (join x y)) f g)
  | (Fields _ as f), x | x, (Fields _ as f) -> join (collapse f) x
  | T (o1, p1), T (o2, p2) ->
      T ((match o1 with Some _ -> o1 | None -> o2), ISet.union p1 p2)

let proj t lbl =
  match t with
  | Fields m -> ( match SMap.find_opt lbl m with Some x -> x | None -> Clean)
  | t -> collapse t

(* Canonical image for fixpoint comparison (Set internals are not
   structurally stable across construction orders). *)
let rec taint_image = function
  | Clean -> "c"
  | Fn (n, t) -> "f(" ^ n ^ "," ^ taint_image t ^ ")"
  | T (o, ps) ->
      Printf.sprintf "t(%s;%s)"
        (match o with
        | None -> "-"
        | Some o ->
            o.o_src ^ ":"
            ^ String.concat ","
                (List.map
                   (fun h ->
                     Printf.sprintf "%s@%s:%d" h.hop_what h.hop_file h.hop_line)
                   o.o_hops))
        (String.concat "," (List.map string_of_int (ISet.elements ps)))
  | Fields m ->
      "{"
      ^ String.concat ";"
          (List.map
             (fun (k, v) -> k ^ "=" ^ taint_image v)
             (SMap.bindings m))
      ^ "}"

let flow_image f =
  Printf.sprintf "%d>%s:%s" f.fl_param f.fl_sink
    (String.concat ","
       (List.map
          (fun h -> Printf.sprintf "%s@%s:%d" h.hop_what h.hop_file h.hop_line)
          f.fl_hops))

let summary_image s =
  taint_image s.s_ret ^ "|"
  ^ String.concat "|" (List.sort String.compare (List.map flow_image s.s_flows))

(* ------------------------------------------------------------------ *)
(* Location helpers                                                    *)
(* ------------------------------------------------------------------ *)

let loc_file = Chain.loc_file
let loc_line = Chain.loc_line
let path_has_dir = Chain.path_has_dir
let layer_of_file = Chain.layer_of_file

(* ------------------------------------------------------------------ *)
(* Collection (pass 1): functions, aliases, module attributes          *)
(* ------------------------------------------------------------------ *)

type program = {
  mutable fns : fn SMap.t;
  mutable aliases : string SMap.t;
  mutable n_files : int;
  mutable sanitizer_count : int;
}

let rec peel_params (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function
      { arg_label; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ } ->
      let lbl =
        match arg_label with
        | Asttypes.Nolabel -> None
        | Asttypes.Labelled s | Asttypes.Optional s -> Some s
      in
      let params, body = peel_params c_rhs in
      ((lbl, c_lhs) :: params, body)
  | _ -> ([], e)

let register_fn prog ~modname ~file ~layer ~privileged ~contract
    (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with
  | Typedtree.Tpat_var (_, { txt = name; _ }) -> (
      match vb.vb_expr.exp_desc with
      | Typedtree.Texp_function _ ->
          let params, body = peel_params vb.vb_expr in
          let sanitizer = has_attr "cdna.sanitizer" vb.vb_attributes in
          if sanitizer then prog.sanitizer_count <- prog.sanitizer_count + 1;
          let f =
            {
              f_id = modname ^ "." ^ name;
              f_module = modname;
              f_file = file;
              f_line = loc_line vb.vb_loc;
              f_params = params;
              f_body = body;
              f_hot = has_attr "cdna.hot" vb.vb_attributes;
              f_sanitizer = sanitizer;
              f_source = has_attr "cdna.source" vb.vb_attributes;
              f_privileged = privileged;
              f_layer = layer;
              f_contract = contract;
              f_calls = [];
              f_allocs = [];
              f_summary = empty_summary;
            }
          in
          prog.fns <- SMap.add f.f_id f prog.fns
      | _ -> ())
  | _ -> ()

let rec collect_module prog ~modname ~file ~layer ~privileged
    (str : Typedtree.structure) =
  (* Module-level attributes may refine the layer / privilege level. *)
  let layer = ref layer and privileged = ref privileged in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_attribute a -> (
          if attr_name a = "cdna.privileged" then privileged := true;
          if attr_name a = "cdna.layer" then
            match attr_reason a with Some l -> layer := l | None -> ())
      | _ -> ())
    str.str_items;
  let contract = SSet.mem modname contract_modules in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
          List.iter
            (register_fn prog ~modname ~file ~layer:!layer
               ~privileged:!privileged ~contract)
            vbs
      | Typedtree.Tstr_module mb -> collect_module_binding prog ~file
            ~layer:!layer ~privileged:!privileged mb
      | Typedtree.Tstr_recmodule mbs ->
          List.iter
            (collect_module_binding prog ~file ~layer:!layer
               ~privileged:!privileged)
            mbs
      | _ -> ())
    str.str_items

and collect_module_binding prog ~file ~layer ~privileged
    (mb : Typedtree.module_binding) =
  let name =
    match mb.mb_id with
    | Some id -> Ident.name id
    | None -> ( match mb.mb_name.txt with Some n -> n | None -> "_")
  in
  let rec of_mexpr (me : Typedtree.module_expr) =
    match Chain.module_alias_target me with
    | Some target -> prog.aliases <- SMap.add name target prog.aliases
    | None -> (
        match me.mod_desc with
        | Typedtree.Tmod_structure s ->
            collect_module prog ~modname:name ~file ~layer ~privileged s
        | Typedtree.Tmod_constraint (m, _, _, _) -> of_mexpr m
        | _ -> ())
  in
  of_mexpr mb.mb_expr

(* ------------------------------------------------------------------ *)
(* Facts (pass 2): call edges and allocation sites, for all modules    *)
(* ------------------------------------------------------------------ *)

let callee_of prog (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some (canon_of prog.aliases (Path.name p))
  | _ -> None

let collect_facts prog (f : fn) =
  let calls = ref [] and allocs = ref [] in
  let susp = ref 0 in
  let add_call c line =
    calls := { c_callee = c; c_line = line; c_susp = !susp > 0 } :: !calls
  in
  let add_alloc what line = if !susp = 0 then allocs := (what, line) :: !allocs in
  let rec visit (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    let suspends =
      List.exists
        (fun a ->
          let n = attr_name a in
          n = "cdna.alloc_ok" || n = "cdna.flow_ok")
        e.exp_attributes
    in
    if suspends then incr susp;
    (match e.exp_desc with
    | Typedtree.Texp_apply (fe, args) -> (
        match callee_of prog fe with
        | Some c when SSet.mem c cold_exits || SSet.mem (last_comp c) cold_exits
          ->
            (* Error-path arguments may allocate; leave the subtree. *)
            ()
        | Some c ->
            add_call c (loc_line e.exp_loc);
            if SSet.mem (last_comp c) alloc_operators then
              add_alloc ("operator " ^ last_comp c) (loc_line e.exp_loc);
            List.iter
              (fun (_, a) -> match a with Some a -> visit it a | None -> ())
              args
        | None ->
            visit it fe;
            List.iter
              (fun (_, a) -> match a with Some a -> visit it a | None -> ())
              args)
    | Typedtree.Texp_ident (p, _, _) ->
        let c = canon_of prog.aliases (Path.name p) in
        if SMap.mem c prog.fns then add_call c (loc_line e.exp_loc)
    | _ ->
        (match e.exp_desc with
        | Typedtree.Texp_record _ -> add_alloc "record" (loc_line e.exp_loc)
        | Typedtree.Texp_tuple _ -> add_alloc "tuple" (loc_line e.exp_loc)
        | Typedtree.Texp_construct (_, _, args) when args <> [] ->
            add_alloc "constructor" (loc_line e.exp_loc)
        | Typedtree.Texp_array (_ :: _) ->
            add_alloc "array" (loc_line e.exp_loc)
        | Typedtree.Texp_function _ -> add_alloc "closure" (loc_line e.exp_loc)
        | Typedtree.Texp_lazy _ -> add_alloc "lazy" (loc_line e.exp_loc)
        | _ -> ());
        Tast_iterator.default_iterator.expr it e);
    if suspends then decr susp
  in
  let it = { Tast_iterator.default_iterator with expr = visit } in
  it.expr it f.f_body;
  (* Intra-module references are [Pident]s; resolve them to this module's
     functions so same-file call chains link up. *)
  let resolve c =
    if SMap.mem c prog.fns then c
    else
      let local = f.f_module ^ "." ^ c in
      if String.contains c '.' || not (SMap.mem local prog.fns) then c
      else local
  in
  f.f_calls <-
    List.rev_map (fun c -> { c with c_callee = resolve c.c_callee }) !calls;
  f.f_allocs <- List.rev !allocs

(* ------------------------------------------------------------------ *)
(* Taint evaluation (passes 3-4)                                       *)
(* ------------------------------------------------------------------ *)

type ctx = {
  prog : program;
  cur : fn;
  report : bool;
  viols : violation list ref;
  flows : flow list ref;
}

let hop = Chain.hop

let fn_of_name ctx name =
  match SMap.find_opt name ctx.prog.fns with
  | Some f -> Some f
  | None ->
      if String.contains name '.' then None
      else SMap.find_opt (ctx.cur.f_module ^ "." ^ name) ctx.prog.fns

let is_source ctx name =
  SSet.mem name declared_sources
  || match fn_of_name ctx name with Some f -> f.f_source | None -> false

let is_sanitizer ctx name =
  SSet.mem name declared_sanitizers
  || match fn_of_name ctx name with Some f -> f.f_sanitizer | None -> false

let record_violation ctx ~sup ~rule ~loc ~msg ~chain =
  let v =
    {
      rule;
      file = loc_file loc;
      line = loc_line loc;
      msg;
      chain;
      suppress = sup;
    }
  in
  ctx.viols := v :: !(ctx.viols)

(* The root variable of an access path ([desc], [e] in [e.Xchan.pfn]),
   used to cleanse bindings when a sanitizer inspects them. *)
let rec root_ident (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) -> Some id
  | Typedtree.Texp_field (e, _, _) -> root_ident e
  | _ -> None

let rec bind_pat : type k. taint IdentMap.t -> k Typedtree.general_pattern
    -> taint -> taint IdentMap.t =
 fun env p t ->
  match p.pat_desc with
  | Typedtree.Tpat_var (id, _) -> IdentMap.add id t env
  | Typedtree.Tpat_alias (p', id, _) -> bind_pat (IdentMap.add id t env) p' t
  | Typedtree.Tpat_tuple ps ->
      List.fold_left
        (fun env (i, p') -> bind_pat env p' (proj t (string_of_int i)))
        env
        (List.mapi (fun i p' -> (i, p')) ps)
  | Typedtree.Tpat_record (fields, _) ->
      List.fold_left
        (fun env (_, (ld : Types.label_description), p') ->
          bind_pat env p' (proj t ld.lbl_name))
        env
        (List.map (fun (a, b, c) -> (a, b, c)) fields)
  | Typedtree.Tpat_construct (_, _, ps, _) ->
      List.fold_left (fun env p' -> bind_pat env p' (collapse t)) env ps
  | Typedtree.Tpat_variant (_, Some p', _) -> bind_pat env p' (collapse t)
  | Typedtree.Tpat_variant (_, None, _) -> env
  | Typedtree.Tpat_array ps ->
      List.fold_left (fun env p' -> bind_pat env p' (collapse t)) env ps
  | Typedtree.Tpat_lazy p' -> bind_pat env p' t
  | Typedtree.Tpat_or (a, b, _) -> bind_pat (bind_pat env a t) b t
  | Typedtree.Tpat_value arg ->
      bind_pat env (arg :> Typedtree.value Typedtree.general_pattern) t
  | Typedtree.Tpat_exception p' -> bind_pat env p' Clean
  | Typedtree.Tpat_any | Typedtree.Tpat_constant _ -> env

let env_join a b = IdentMap.union (fun _ x y -> Some (join x y)) a b

(* Instantiate a callee origin at a call site: extend its hop chain with
   the call itself so cross-module paths read end to end. *)
let extend_origin o ~callee ~caller loc =
  {
    o with
    o_hops =
      o.o_hops
      @ [ hop (Printf.sprintf "return of %s flows into %s" callee caller) loc ];
  }

let sens_args args specs =
  (* [args]: (label string option, taint, expr option) in call order. *)
  let pos = ref (-1) in
  List.filter_map
    (fun (lbl, t, e) ->
      (match lbl with None -> incr pos | Some _ -> ());
      let hit =
        List.exists
          (function
            | Lab l -> Some l = lbl
            | Pos i -> lbl = None && i = !pos)
          specs
      in
      if hit then Some (lbl, t, e) else None)
    args

let dma_desc_record (e : Typedtree.expression) =
  match Types.get_desc e.exp_type with
  | Types.Tconstr (p, _, _) ->
      let n = Path.name p in
      let n = canon_of SMap.empty n in
      n = "Dma_desc.t"
  | _ -> false

let rec eval ctx ~(sup : string option) env (e : Typedtree.expression) :
    taint * taint IdentMap.t =
  let sup =
    match find_attr "cdna.flow_ok" e.exp_attributes with
    | Some a -> Some (match attr_reason a with Some r -> r | None -> "")
    | None -> sup
  in
  match e.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) -> (
      match IdentMap.find_opt id env with
      | Some t -> (t, env)
      | None -> (
          let name = Ident.name id in
          match fn_of_name ctx name with
          | Some f -> (Fn (f.f_id, Clean), env)
          | None -> (Clean, env)))
  | Typedtree.Texp_ident (p, _, _) ->
      let c = canon_of ctx.prog.aliases (Path.name p) in
      if SMap.mem c ctx.prog.fns then (Fn (c, Clean), env) else (Clean, env)
  | Typedtree.Texp_constant _ -> (Clean, env)
  | Typedtree.Texp_let (rf, vbs, body) ->
      let env =
        List.fold_left (fun env vb -> bind_vb ctx ~sup ~rf env vb) env vbs
      in
      eval ctx ~sup env body
  | Typedtree.Texp_function _ ->
      (* Anonymous closure: analyze the body now, in the capturing
         environment, with unknown (clean) parameters. *)
      let ret = eval_closure ctx ~sup env e Clean in
      (Fn ("<closure>", ret), env)
  | Typedtree.Texp_apply (fe, args) -> eval_apply ctx ~sup env e fe args
  | Typedtree.Texp_match (scrut, cases, _) ->
      let t, env = eval ctx ~sup env scrut in
      eval_cases ctx ~sup env t cases
  | Typedtree.Texp_try (body, cases) ->
      let t, env = eval ctx ~sup env body in
      let t2, env2 = eval_cases ctx ~sup env Clean cases in
      (join t t2, env_join env env2)
  | Typedtree.Texp_tuple es ->
      let env, fields =
        List.fold_left
          (fun (env, acc) e' ->
            let t, env = eval ctx ~sup env e' in
            (env, acc @ [ t ]))
          (env, []) es
      in
      ( Fields
          (SMap.of_seq
             (List.to_seq
                (List.mapi (fun i t -> (string_of_int i, t)) fields))),
        env )
  | Typedtree.Texp_construct (_, _, es) ->
      let env, t =
        List.fold_left
          (fun (env, acc) e' ->
            let t, env = eval ctx ~sup env e' in
            (env, join acc (collapse t)))
          (env, Clean) es
      in
      (t, env)
  | Typedtree.Texp_variant (_, Some e') ->
      let t, env = eval ctx ~sup env e' in
      (collapse t, env)
  | Typedtree.Texp_variant (_, None) -> (Clean, env)
  | Typedtree.Texp_record { fields; extended_expression; _ } ->
      let base, env =
        match extended_expression with
        | Some e' -> eval ctx ~sup env e'
        | None -> (Clean, env)
      in
      let env = ref env in
      let m =
        Array.fold_left
          (fun m ((ld : Types.label_description), def) ->
            let t =
              match def with
              | Typedtree.Overridden (_, e') ->
                  let t, env' = eval ctx ~sup !env e' in
                  env := env';
                  t
              | Typedtree.Kept _ -> proj base ld.lbl_name
            in
            SMap.add ld.lbl_name t m)
          SMap.empty fields
      in
      (* T2: a DMA descriptor built from guest-controlled addr/len is a
         forged descriptor in the making. *)
      if dma_desc_record e then
        List.iter
          (fun fld ->
            match SMap.find_opt fld m with
            | Some (T (Some o, _)) when ctx.report ->
                record_violation ctx ~sup ~rule:rule_t2 ~loc:e.exp_loc
                  ~msg:
                    (Printf.sprintf
                       "Dma_desc.%s built from guest-tainted value (source %s) \
                        without sanitization"
                       fld o.o_src)
                  ~chain:
                    (o.o_hops
                    @ [ hop ("Dma_desc." ^ fld ^ " construction") e.exp_loc ])
            | _ -> ())
          [ "addr"; "len" ];
      (Fields m, !env)
  | Typedtree.Texp_field (e', _, ld) ->
      let t, env = eval ctx ~sup env e' in
      (proj t ld.lbl_name, env)
  | Typedtree.Texp_setfield (e1, _, _, e2) ->
      (* Mutable store: taint is cut here (documented limitation). *)
      let _, env = eval ctx ~sup env e1 in
      let _, env = eval ctx ~sup env e2 in
      (Clean, env)
  | Typedtree.Texp_array es ->
      let env, t =
        List.fold_left
          (fun (env, acc) e' ->
            let t, env = eval ctx ~sup env e' in
            (env, join acc (collapse t)))
          (env, Clean) es
      in
      (t, env)
  | Typedtree.Texp_ifthenelse (c, th, el) ->
      let _, env = eval ctx ~sup env c in
      let t1, env1 = eval ctx ~sup env th in
      let t2, env2 =
        match el with
        | Some el -> eval ctx ~sup env el
        | None -> (Clean, env)
      in
      (join t1 t2, env_join env1 env2)
  | Typedtree.Texp_sequence (a, b) ->
      let _, env = eval ctx ~sup env a in
      eval ctx ~sup env b
  | Typedtree.Texp_while (c, body) ->
      let _, env = eval ctx ~sup env c in
      let _, env' = eval ctx ~sup env body in
      (Clean, env_join env env')
  | Typedtree.Texp_for (id, _, lo, hi, _, body) ->
      let _, env = eval ctx ~sup env lo in
      let _, env = eval ctx ~sup env hi in
      let _, env' = eval ctx ~sup (IdentMap.add id Clean env) body in
      (Clean, env_join env env')
  | Typedtree.Texp_assert (e', _) ->
      let _, env = eval ctx ~sup env e' in
      (Clean, env)
  | Typedtree.Texp_lazy e' -> eval ctx ~sup env e'
  | Typedtree.Texp_open (_, e') -> eval ctx ~sup env e'
  | Typedtree.Texp_letmodule (_, _, _, _, body) -> eval ctx ~sup env body
  | _ ->
      (* Constructs without a dedicated rule: evaluate children in the
         ambient environment; the result is unknown, hence clean. *)
      let it =
        {
          Tast_iterator.default_iterator with
          expr = (fun _ sub -> ignore (eval ctx ~sup env sub));
        }
      in
      Tast_iterator.default_iterator.expr it e;
      (Clean, env)

and eval_cases : type k. ctx -> sup:string option -> taint IdentMap.t -> taint
    -> k Typedtree.case list -> taint * taint IdentMap.t =
 fun ctx ~sup env scrut_t cases ->
  List.fold_left
    (fun (acc_t, acc_env) (c : k Typedtree.case) ->
      let env_c = bind_pat env c.c_lhs scrut_t in
      let env_c =
        match c.c_guard with
        | Some g ->
            let _, env_c = eval ctx ~sup env_c g in
            env_c
        | None -> env_c
      in
      let t, env' = eval ctx ~sup env_c c.c_rhs in
      (join acc_t t, env_join acc_env env'))
    (Clean, env) cases

(* Analyze a literal lambda in the current (capturing) environment with
   its parameters bound to [param_t]; returns the body's taint. *)
and eval_closure ctx ~sup env (e : Typedtree.expression) param_t =
  let params, body = peel_params e in
  let env =
    List.fold_left (fun env (_, p) -> bind_pat env p param_t) env params
  in
  match body.exp_desc with
  | Typedtree.Texp_function { cases; _ } ->
      let t, _ = eval_cases ctx ~sup env param_t cases in
      t
  | _ ->
      let t, _ = eval ctx ~sup env body in
      t

and bind_vb ctx ~sup ~rf env (vb : Typedtree.value_binding) =
  let sup =
    match find_attr "cdna.flow_ok" vb.vb_attributes with
    | Some a -> Some (match attr_reason a with Some r -> r | None -> "")
    | None -> sup
  in
  match vb.vb_expr.exp_desc with
  | Typedtree.Texp_function _ -> (
      (* Local function: analyze once at the binding site. Captured
         bindings keep their current taint; parameters are assumed
         clean. The binding carries the body's return taint so
         [let r = f x] at a later call site stays tracked. *)
      let self_env =
        match (rf, vb.vb_pat.pat_desc) with
        | Asttypes.Recursive, Typedtree.Tpat_var (id, _) ->
            IdentMap.add id (Fn ("<local>", Clean)) env
        | _ -> env
      in
      let ret = eval_closure ctx ~sup self_env vb.vb_expr Clean in
      match vb.vb_pat.pat_desc with
      | Typedtree.Tpat_var (id, _) ->
          IdentMap.add id (Fn ("<local>", ret)) env
      | _ -> env)
  | _ ->
      let t, env = eval ctx ~sup env vb.vb_expr in
      bind_pat env vb.vb_pat t

and eval_apply ctx ~sup env (e : Typedtree.expression) fe args =
  let loc = e.Typedtree.exp_loc in
  (* Resolve the callee. *)
  let callee_name, callee_taint =
    match fe.Typedtree.exp_desc with
    | Typedtree.Texp_ident (Path.Pident id, _, _) -> (
        match IdentMap.find_opt id env with
        | Some (Fn (n, r)) -> (Some n, Some (Fn (n, r)))
        | Some _ | None -> (Some (Ident.name id), None))
    | Typedtree.Texp_ident (p, _, _) ->
        (Some (canon_of ctx.prog.aliases (Path.name p)), None)
    | _ ->
        let _, _ = eval ctx ~sup env fe in
        (None, None)
  in
  let is_lambda (e' : Typedtree.expression) =
    match e'.Typedtree.exp_desc with Typedtree.Texp_function _ -> true | _ -> false
  in
  let name = match callee_name with Some n -> n | None -> "" in
  let hofish = SSet.mem name hof_fns in
  (* Evaluate non-lambda arguments first; literal lambdas are deferred so
     HOFs can bind their parameters to the element taint. *)
  let env = ref env in
  let evald =
    List.map
      (fun ((lbl : Asttypes.arg_label), a) ->
        let lbl_s =
          match lbl with
          | Asttypes.Nolabel -> None
          | Asttypes.Labelled s | Asttypes.Optional s -> Some s
        in
        match a with
        | Some a when hofish && is_lambda a -> (lbl_s, None, Some a)
        | Some a ->
            let t, env' = eval ctx ~sup !env a in
            env := env';
            (lbl_s, Some (t, a), None)
        | None -> (lbl_s, None, None))
      args
  in
  let elem_taint =
    List.fold_left
      (fun acc (_, ta, _) ->
        match ta with Some (t, _) -> join acc (collapse t) | None -> acc)
      Clean evald
  in
  (* Now analyze deferred lambdas with parameters bound to the element
     taint of the traversed collection. *)
  List.iter
    (fun (_, _, lam) ->
      match lam with
      | Some l -> ignore (eval_closure ctx ~sup !env l elem_taint)
      | None -> ())
    evald;
  let arg_taints =
    List.filter_map
      (fun (lbl, ta, _) -> match ta with Some (t, a) -> Some (lbl, t, Some a) | None -> None)
      evald
  in
  let joined_args =
    List.fold_left (fun acc (_, t, _) -> join acc (collapse t)) Clean arg_taints
  in
  match callee_name with
  | Some c when is_sanitizer ctx c ->
      (* Sanitizer application cleanses the inspected bindings for the
         rest of the function. *)
      let env' =
        List.fold_left
          (fun env (_, _, a) ->
            match a with
            | Some a -> (
                match root_ident a with
                | Some id -> IdentMap.add id Clean env
                | None -> env)
            | None -> env)
          !env arg_taints
      in
      (Clean, env')
  | Some c when is_source ctx c ->
      ( T
          ( Some
              {
                o_src = c;
                o_hops =
                  [ hop (Printf.sprintf "source %s in %s" c ctx.cur.f_id) loc ];
              },
            ISet.empty ),
        !env )
  | Some c when SMap.mem c declared_sinks ->
      let specs = SMap.find c declared_sinks in
      List.iter
        (fun (lbl, t, _) ->
          match collapse t with
          | T (Some o, _) when ctx.report ->
              let what =
                match lbl with Some l -> "~" ^ l | None -> "argument"
              in
              record_violation ctx ~sup ~rule:rule_t1 ~loc
                ~msg:
                  (Printf.sprintf
                     "guest-tainted value (source %s) reaches DMA sink %s %s \
                      without sanitization"
                     o.o_src c what)
                ~chain:(o.o_hops @ [ hop (Printf.sprintf "sink %s %s" c what) loc ])
          | T (_, ps) when not (ISet.is_empty ps) ->
              ISet.iter
                (fun i ->
                  ctx.flows :=
                    {
                      fl_param = i;
                      fl_sink = c;
                      fl_hops = [ hop (Printf.sprintf "sink %s" c) loc ];
                    }
                    :: !(ctx.flows))
                ps
          | _ -> ())
        (sens_args arg_taints specs);
      (Clean, !env)
  | Some c -> (
      match fn_of_name ctx c with
      | Some callee when not callee.f_contract ->
          (* Apply the callee's summary. *)
          let assigned = assign_params callee arg_taints in
          let call_hop =
            hop (Printf.sprintf "call %s from %s" callee.f_id ctx.cur.f_id) loc
          in
          (* Param-to-sink flows recorded in the callee surface here. *)
          List.iter
            (fun fl ->
              match List.assoc_opt fl.fl_param assigned with
              | Some t -> (
                  match collapse t with
                  | T (Some o, _) when ctx.report ->
                      record_violation ctx ~sup ~rule:rule_t1 ~loc
                        ~msg:
                          (Printf.sprintf
                             "guest-tainted value (source %s) reaches DMA \
                              sink %s via %s without sanitization"
                             o.o_src fl.fl_sink callee.f_id)
                        ~chain:(o.o_hops @ (call_hop :: fl.fl_hops))
                  | _ -> ());
                  (match collapse t with
                  | T (_, ps) ->
                      ISet.iter
                        (fun i ->
                          ctx.flows :=
                            {
                              fl_param = i;
                              fl_sink = fl.fl_sink;
                              fl_hops = call_hop :: fl.fl_hops;
                            }
                            :: !(ctx.flows))
                        ps
                  | _ -> ())
              | None -> ())
            callee.f_summary.s_flows;
          (* Instantiate the return taint. *)
          let ret = instantiate callee.f_summary.s_ret assigned ~callee:callee.f_id
              ~caller:ctx.cur.f_id loc in
          (ret, !env)
      | _ -> (
          match callee_taint with
          | Some (Fn (_, ret)) ->
              (* Local function value: its return taint was computed at
                 the binding site. *)
              (ret, !env)
          | _ ->
              (* Unknown / external / contract-primitive call: the result
                 conservatively carries the joined argument taint. *)
              (joined_args, !env)))
  | None -> (joined_args, !env)

and assign_params (callee : fn) arg_taints =
  (* Map evaluated arguments to the callee's parameter indices: labelled
     args match labels, positional args fill positional slots in order. *)
  let labels = List.mapi (fun i (l, _) -> (i, l)) callee.f_params in
  let positional =
    List.filter_map (fun (i, l) -> if l = None then Some i else None) labels
  in
  let next_pos = ref positional in
  List.filter_map
    (fun (lbl, t, _) ->
      match lbl with
      | Some l -> (
          match
            List.find_opt (fun (_, pl) -> pl = Some l) labels
          with
          | Some (i, _) -> Some (i, t)
          | None -> None)
      | None -> (
          match !next_pos with
          | i :: rest ->
              next_pos := rest;
              Some (i, t)
          | [] -> None))
    arg_taints

and instantiate ret assigned ~callee ~caller loc =
  let rec go = function
    | Clean -> Clean
    | Fn _ -> Clean
    | Fields m -> Fields (SMap.map go m)
    | T (o, ps) ->
        let from_params =
          ISet.fold
            (fun i acc ->
              match List.assoc_opt i assigned with
              | Some t -> join acc (collapse t)
              | None -> acc)
            ps Clean
        in
        let from_src =
          match o with
          | Some o -> T (Some (extend_origin o ~callee ~caller loc), ISet.empty)
          | None -> Clean
        in
        join from_src from_params
  in
  norm (go ret)

(* One taint pass over a function body; returns the new summary. *)
let eval_fn prog ~report viols (f : fn) =
  let ctx = { prog; cur = f; report; viols; flows = ref [] } in
  let env =
    List.fold_left
      (fun (env, i) (_, p) -> (bind_pat env p (T (None, ISet.singleton i)), i + 1))
      (IdentMap.empty, 0) f.f_params
    |> fst
  in
  let ret, _ = eval ctx ~sup:None env f.f_body in
  (* Keep one flow per (param, sink) pair — the first found is the
     shortest chain under our evaluation order. *)
  let seen = Hashtbl.create 8 in
  let flows =
    List.rev !(ctx.flows)
    |> List.filter (fun fl ->
           let k = (fl.fl_param, fl.fl_sink) in
           if Hashtbl.mem seen k then false
           else begin
             Hashtbl.add seen k ();
             true
           end)
  in
  let ret =
    match norm ret with
    | Fields m -> norm (Fields (SMap.map (fun t -> norm (collapse t)) m))
    | t -> t
  in
  { s_ret = ret; s_flows = flows }

(* ------------------------------------------------------------------ *)
(* A6: transitive zero-alloc closure                                   *)
(* ------------------------------------------------------------------ *)

let alloc_allowlist = Cdna_lint.allow_qualified

let external_allowed c =
  (* Unqualified names are parameters or local bindings — their bodies
     (if any) are walked inline, so only module-qualified externals are
     judged here. Typedtree paths are fully resolved, so a stdlib call
     is always qualified even under [open]. *)
  (not (String.contains c '.'))
  || SSet.mem c alloc_allowlist
  || is_operator_name (last_comp c)
  || SSet.mem c cold_exits
  || SSet.mem (last_comp c) cold_exits

let check_transitive_alloc prog viols =
  let reported = Hashtbl.create 16 in
  let report_once key v =
    if not (Hashtbl.mem reported key) then begin
      Hashtbl.add reported key ();
      viols := v :: !viols
    end
  in
  let hot_fns =
    SMap.bindings prog.fns |> List.map snd
    |> List.filter (fun f -> f.f_hot)
  in
  List.iter
    (fun (h : fn) ->
      let visited = Hashtbl.create 16 in
      let rec walk path (f : fn) =
        List.iter
          (fun c ->
            if not c.c_susp then
              match SMap.find_opt c.c_callee prog.fns with
              | Some g when g.f_id = f.f_id -> ()
              | Some g when g.f_hot -> () (* vetted by A1-A5 *)
              | Some g ->
                  if not (Hashtbl.mem visited g.f_id) then begin
                    Hashtbl.add visited g.f_id ();
                    let path' =
                      path
                      @ [
                          hop
                            (Printf.sprintf "%s calls %s" f.f_id g.f_id)
                            { Location.none with
                              loc_start =
                                {
                                  Lexing.pos_fname = f.f_file;
                                  pos_lnum = c.c_line;
                                  pos_bol = 0;
                                  pos_cnum = 0;
                                };
                            };
                        ]
                    in
                    List.iter
                      (fun (what, line) ->
                        report_once
                          ("alloc:" ^ g.f_id ^ ":" ^ string_of_int line)
                          {
                            rule = rule_a6;
                            file = g.f_file;
                            line;
                            msg =
                              Printf.sprintf
                                "[@cdna.hot] %s transitively reaches %s, \
                                 which allocates (%s)"
                                h.f_id g.f_id what;
                            chain = path';
                            suppress = None;
                          })
                      g.f_allocs;
                    List.iter
                      (fun c' ->
                        if
                          (not c'.c_susp)
                          && (not (SMap.mem c'.c_callee prog.fns))
                          && not (external_allowed c'.c_callee)
                        then
                          report_once
                            ("ext:" ^ g.f_id ^ ":" ^ c'.c_callee)
                            {
                              rule = rule_a6;
                              file = g.f_file;
                              line = c'.c_line;
                              msg =
                                Printf.sprintf
                                  "[@cdna.hot] %s transitively reaches %s, \
                                   which calls %s (not on the zero-alloc \
                                   allowlist)"
                                  h.f_id g.f_id c'.c_callee;
                              chain = path';
                              suppress = None;
                            })
                      g.f_calls;
                    walk path' g
                  end
              | None -> ())
          f.f_calls
      in
      walk
        [
          hop
            (Printf.sprintf "hot entry %s" h.f_id)
            {
              Location.none with
              loc_start =
                {
                  Lexing.pos_fname = h.f_file;
                  pos_lnum = h.f_line;
                  pos_bol = 0;
                  pos_cnum = 0;
                };
            };
        ]
        h)
    hot_fns

(* ------------------------------------------------------------------ *)
(* P3: privilege reachability                                          *)
(* ------------------------------------------------------------------ *)

let priv_stop_layers = SSet.of_list [ "xen"; "host"; "memory" ]

let check_priv_reachability prog viols =
  let reported = Hashtbl.create 16 in
  let entries =
    SMap.bindings prog.fns |> List.map snd
    |> List.filter (fun f ->
           (f.f_layer = "nic" || f.f_layer = "guestos")
           && (not f.f_privileged) && not f.f_contract)
  in
  List.iter
    (fun (entry : fn) ->
      let visited = Hashtbl.create 16 in
      let rec walk path (f : fn) =
        List.iter
          (fun c ->
            let site =
              {
                Location.none with
                loc_start =
                  {
                    Lexing.pos_fname = f.f_file;
                    pos_lnum = c.c_line;
                    pos_bol = 0;
                    pos_cnum = 0;
                  };
              }
            in
            if SSet.mem c.c_callee ownership_fns then begin
              let key = f.f_id ^ ":" ^ string_of_int c.c_line ^ ":" ^ c.c_callee in
              if not (Hashtbl.mem reported key) then begin
                Hashtbl.add reported key ();
                viols :=
                  {
                    rule = rule_p3;
                    file = f.f_file;
                    line = c.c_line;
                    msg =
                      Printf.sprintf
                        "%s entry point %s reaches ownership-mutating %s \
                         outside the declared hypercall surface"
                        entry.f_layer entry.f_id c.c_callee;
                    chain =
                      path @ [ hop ("ownership op " ^ c.c_callee) site ];
                    suppress = (if c.c_susp then Some "annotated" else None);
                  }
                  :: !viols
              end
            end
            else
              match SMap.find_opt c.c_callee prog.fns with
              | Some g
                when g.f_privileged || g.f_contract
                     || SSet.mem g.f_layer priv_stop_layers ->
                  () (* the declared privilege boundary *)
              | Some g when not (Hashtbl.mem visited g.f_id) ->
                  Hashtbl.add visited g.f_id ();
                  walk
                    (path
                    @ [ hop (Printf.sprintf "%s calls %s" f.f_id g.f_id) site ])
                    g
              | _ -> ())
          f.f_calls
      in
      walk
        [
          hop
            (Printf.sprintf "entry %s (%s layer)" entry.f_id entry.f_layer)
            {
              Location.none with
              loc_start =
                {
                  Lexing.pos_fname = entry.f_file;
                  pos_lnum = entry.f_line;
                  pos_bol = 0;
                  pos_cnum = 0;
                };
            };
        ]
        entry)
    entries

(* ------------------------------------------------------------------ *)
(* Loading and driving                                                 *)
(* ------------------------------------------------------------------ *)

exception Flow_error of string

let collect_cmts = Chain.collect_cmts

let load_program root =
  if not (Sys.file_exists root) then
    raise (Flow_error ("no such cmt root: " ^ root));
  let prog =
    { fns = SMap.empty; aliases = SMap.empty; n_files = 0; sanitizer_count = 0 }
  in
  let cmts = collect_cmts [] root |> List.sort String.compare in
  List.iter
    (fun path ->
      match Cmt_format.read_cmt path with
      | exception _ -> ()
      | cmt -> (
          match (cmt.cmt_annots, cmt.cmt_sourcefile) with
          | Cmt_format.Implementation str, Some src
            when not (Filename.check_suffix src ".ml-gen") ->
              prog.n_files <- prog.n_files + 1;
              let modname = strip_wrap cmt.cmt_modname in
              let layer = layer_of_file src in
              collect_module prog ~modname ~file:src ~layer ~privileged:false
                str
          | Cmt_format.Implementation str, Some src ->
              (* dune alias modules: harvest [module X = Lib__X] aliases
                 only. *)
              ignore src;
              List.iter
                (fun (item : Typedtree.structure_item) ->
                  match item.str_desc with
                  | Typedtree.Tstr_module mb ->
                      collect_module_binding prog ~file:"" ~layer:""
                        ~privileged:false mb
                  | _ -> ())
                str.str_items
          | _ -> ()))
    cmts;
  prog

let analyze root =
  let prog = load_program root in
  let fns_sorted = SMap.bindings prog.fns |> List.map snd in
  List.iter (collect_facts prog) fns_sorted;
  (* Taint fixpoint over summaries, then one reporting pass. *)
  let analyzed =
    List.filter (fun f -> (not f.f_contract) && not f.f_privileged) fns_sorted
  in
  let dummy = ref [] in
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 20 do
    incr iters;
    changed := false;
    List.iter
      (fun f ->
        let s = eval_fn prog ~report:false dummy f in
        if summary_image s <> summary_image f.f_summary then begin
          f.f_summary <- s;
          changed := true
        end)
      analyzed
  done;
  let viols = ref [] in
  List.iter (fun f -> ignore (eval_fn prog ~report:true viols f)) analyzed;
  check_transitive_alloc prog viols;
  check_priv_reachability prog viols;
  (* Deduplicate and order deterministically. *)
  let seen = Hashtbl.create 64 in
  let all =
    List.rev !viols
    |> List.filter (fun v ->
           let k = (v.rule, v.file, v.line, v.msg) in
           if Hashtbl.mem seen k then false
           else begin
             Hashtbl.add seen k ();
             true
           end)
    |> List.sort violation_compare
  in
  let unsuppressed, suppressed =
    List.partition (fun v -> v.suppress = None) all
  in
  {
    cmt_files = prog.n_files;
    functions = List.length fns_sorted;
    violations = unsuppressed;
    suppressed;
    sanitizer_fns = prog.sanitizer_count;
  }

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let hop_to_json = Chain.hop_to_json
let violation_to_json = Chain.violation_to_json

let report_to_json r =
  Sim.Json.Obj
    [
      ("cmt_files", Sim.Json.Int r.cmt_files);
      ("functions", Sim.Json.Int r.functions);
      ("violations", Sim.Json.Int (List.length r.violations));
      ("rules", Chain.rule_counts_json r.violations);
      ("suppressions", Sim.Json.Int (List.length r.suppressed));
      ("sanitizer_fns", Sim.Json.Int r.sanitizer_fns);
    ]
