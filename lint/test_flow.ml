(* Fixture suite for cdna_flow: every seeded violation must be detected
   with a complete source->sink chain, and the deliberately clean
   fixtures must produce nothing. Runs against the .cmt files compiled
   from flow_fixtures/ (cwd is _build/default/lint under dune). *)

let fixture_root = "flow_fixtures"

let report = lazy (Cdna_flow.analyze fixture_root)

let viols_in base =
  let r = Lazy.force report in
  List.filter
    (fun v -> Filename.basename v.Cdna_flow.file = base)
    r.Cdna_flow.violations

let check_detects ~base ~rule ~n () =
  let vs = viols_in base in
  Alcotest.(check int) (base ^ " violation count") n (List.length vs);
  List.iter
    (fun v ->
      Alcotest.(check string) (base ^ " rule") rule v.Cdna_flow.rule;
      Alcotest.(check bool) (base ^ " has chain") true (v.Cdna_flow.chain <> []);
      List.iter
        (fun h ->
          Alcotest.(check bool)
            (base ^ " hop has file:line")
            true
            (h.Cdna_flow.hop_file <> "" && h.Cdna_flow.hop_line > 0))
        v.Cdna_flow.chain)
    vs

let test_taint_direct = check_detects ~base:"taint_direct.ml" ~rule:"T1-guest-taint" ~n:1
let test_taint_tuple = check_detects ~base:"taint_tuple.ml" ~rule:"T1-guest-taint" ~n:1
let test_taint_option = check_detects ~base:"taint_option.ml" ~rule:"T1-guest-taint" ~n:1
let test_taint_desc = check_detects ~base:"taint_desc.ml" ~rule:"T2-desc-construct" ~n:1
let test_hot_trans = check_detects ~base:"hot_trans_alloc.ml" ~rule:"A6-transitive-alloc" ~n:1
let test_priv_reach = check_detects ~base:"priv_reach.ml" ~rule:"P3-priv-reachability" ~n:1

(* Field sensitivity: exactly the tainted [payload] sink fires; the
   clean [tag] field flowing into the second sink must not. *)
let test_taint_record () =
  check_detects ~base:"taint_record.ml" ~rule:"T1-guest-taint" ~n:1 ();
  match viols_in "taint_record.ml" with
  | [ v ] ->
      Alcotest.(check bool)
        "violation is the write_uint sink, not the clean-tag access" true
        (let has_sub hay needle =
           let nl = String.length needle and hl = String.length hay in
           let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
           go 0
         in
         has_sub v.Cdna_flow.msg "Phys_mem.write_uint")
  | _ -> Alcotest.fail "expected exactly one taint_record violation"

(* The alias'd-List + closure allocations one call below a hot entry:
   both the intrinsic closure and the alias-resolved List.map report. *)
let test_hot_alias () =
  let vs = viols_in "hot_alias_alloc.ml" in
  Alcotest.(check int) "hot_alias_alloc violation count" 2 (List.length vs);
  List.iter
    (fun v ->
      Alcotest.(check string) "rule" "A6-transitive-alloc" v.Cdna_flow.rule)
    vs;
  let msgs = String.concat "|" (List.map (fun v -> v.Cdna_flow.msg) vs) in
  let has_sub needle =
    let nl = String.length needle and hl = String.length msgs in
    let rec go i = i + nl <= hl && (String.sub msgs i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "List.map resolved through alias" true (has_sub "List.map");
  Alcotest.(check bool) "intrinsic closure allocation seen" true (has_sub "closure")

(* The three-module chain: source in flow_a, relay in flow_b, sink in
   flow_c — the report must walk all three files. *)
let test_multi_module () =
  match viols_in "flow_b.ml" with
  | [ v ] ->
      Alcotest.(check string) "rule" "T1-guest-taint" v.Cdna_flow.rule;
      Alcotest.(check bool)
        "chain has at least 4 hops" true
        (List.length v.Cdna_flow.chain >= 4);
      let files =
        List.sort_uniq String.compare
          (List.map
             (fun h -> Filename.basename h.Cdna_flow.hop_file)
             v.Cdna_flow.chain)
      in
      Alcotest.(check (list string))
        "chain spans all three modules"
        [ "flow_a.ml"; "flow_b.ml"; "flow_c.ml" ]
        files
  | vs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one flow_b violation, got %d"
           (List.length vs))

let test_clean_fixtures () =
  List.iter
    (fun base ->
      Alcotest.(check int) (base ^ " stays clean") 0 (List.length (viols_in base)))
    [
      "taint_sanitized.ml"; "clean_hot.ml"; "priv_ok.ml"; "fixture_hyp.ml";
      "flow_env.ml";
    ]

let test_totals () =
  let r = Lazy.force report in
  Alcotest.(check int) "total unsuppressed" 10 (List.length r.Cdna_flow.violations);
  Alcotest.(check int) "total suppressed" 0 (List.length r.Cdna_flow.suppressed);
  Alcotest.(check bool) "cmt corpus loaded" true (r.Cdna_flow.cmt_files >= 16)

(* Byte-identical reports across runs: the JSON artifact is diffed by
   the suppression gate, so ordering must be deterministic. *)
let test_deterministic () =
  let a = Cdna_flow.analyze fixture_root in
  let b = Cdna_flow.analyze fixture_root in
  Alcotest.(check string)
    "report JSON identical across runs"
    (Sim.Json.to_string (Cdna_flow.report_to_json a))
    (Sim.Json.to_string (Cdna_flow.report_to_json b));
  Alcotest.(check (list string))
    "violation rendering identical across runs"
    (List.map Cdna_flow.violation_to_string a.Cdna_flow.violations)
    (List.map Cdna_flow.violation_to_string b.Cdna_flow.violations)

(* [main.exe --only T1] semantics over this pass's reports: the bare
   prefix and the full rule name both select, a non-prefix selects
   nothing. *)
let test_only_filter () =
  let r = Lazy.force report in
  let count only =
    List.length
      (List.filter
         (fun v -> Chain.rule_matches ~only v.Cdna_flow.rule)
         r.Cdna_flow.violations)
  in
  Alcotest.(check int) "T1 prefix filter" 5 (count (Some "T1"));
  Alcotest.(check int) "full rule name filter" 3
    (count (Some "A6-transitive-alloc"));
  Alcotest.(check int) "'T' is not a rule prefix" 0 (count (Some "T"));
  Alcotest.(check int) "no filter keeps everything" 10 (count None)

let () =
  Alcotest.run "cdna_flow"
    [
      ( "taint",
        [
          Alcotest.test_case "direct source->sink" `Quick test_taint_direct;
          Alcotest.test_case "laundered through tuple" `Quick test_taint_tuple;
          Alcotest.test_case "laundered through record" `Quick test_taint_record;
          Alcotest.test_case "laundered through option" `Quick test_taint_option;
          Alcotest.test_case "forged Dma_desc" `Quick test_taint_desc;
          Alcotest.test_case "multi-module chain" `Quick test_multi_module;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "alias'd List one call deep" `Quick test_hot_alias;
          Alcotest.test_case "transitive tuple alloc" `Quick test_hot_trans;
        ] );
      ( "priv",
        [ Alcotest.test_case "nic reaches Iommu.grant" `Quick test_priv_reach ] );
      ( "hygiene",
        [
          Alcotest.test_case "clean fixtures stay clean" `Quick test_clean_fixtures;
          Alcotest.test_case "exact totals" `Quick test_totals;
          Alcotest.test_case "--only rule filtering" `Quick test_only_filter;
          Alcotest.test_case "deterministic output" `Quick test_deterministic;
        ] );
    ]
