(* cdna_lint — compiler-AST static analysis for the CDNA simulator.

   Enforces, as compile-time properties of every [.ml] under [lib/], the
   three invariant families the runtime test-suite can only spot-check:

   - (D) Determinism: no unordered [Hashtbl] iteration feeding anything
     (unless sorted or justified), no polymorphic compare/hash on
     structured values, no wall-clock / GC / Marshal primitives.
   - (A) Zero-allocation hot paths: functions annotated [@cdna.hot] must
     not syntactically allocate and may only call other hot functions or
     a small allowlist of non-allocating primitives.
   - (P) Protection boundaries: page-ownership and IOMMU-permission
     mutation is confined to the hypervisor-side layers, and the NIC /
     guest-OS layers reach guest memory only through [Bus.Dma_engine]
     (the paper's validated-descriptor rule, PAPER.md §3.2).

   The checker is purely syntactic (ppxlib parsetree): it never needs
   build artifacts, runs on sources that do not typecheck, and is
   conservative — anything it cannot prove safe must either be rewritten
   or carry a justification annotation, which is counted and exported so
   suppressions are tracked over time.

   Annotation contract (see DESIGN.md §9):
     [@cdna.hot]                  marks a top-level function hot (A rules apply)
     [@cdna.unordered_ok "why"]   suppresses D1 on the annotated subtree
     [@cdna.polyeq_ok "why"]      suppresses D2
     [@cdna.nondet_ok "why"]      suppresses D3
     [@cdna.alloc_ok "why"]       suppresses A1-A5
     [@cdna.protection_ok "why"]  suppresses P1-P2
     [@@@cdna.privileged "why"]   (module level) exempts the file from P rules
   A suppression without a non-empty reason string is itself a violation
   (S1). *)

open Ppxlib

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

type diag = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

type stats = {
  files_scanned : int;
  hot_functions : int;
  violations : int;
  rule_counts : (string * int) list;
  suppression_counts : (string * int) list;
}

let diag_compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let diag_to_string d =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.msg

(* ------------------------------------------------------------------ *)
(* Rules: names and identifier tables                                  *)
(* ------------------------------------------------------------------ *)

let rule_d1 = "D1-unordered-iter"
let rule_d2 = "D2-poly-compare"
let rule_d3 = "D3-nondet-primitive"
let rule_a1 = "A1-alloc-construct"
let rule_a2 = "A2-alloc-closure"
let rule_a3 = "A3-alloc-call"
let rule_a4 = "A4-partial-app"
let rule_a5 = "A5-boxed-arith"
let rule_p1 = "P1-ownership-boundary"
let rule_p2 = "P2-guest-memory-boundary"
let rule_s1 = "S1-suppression-reason"
let rule_parse = "S0-parse-error"

let all_rules =
  [
    rule_d1; rule_d2; rule_d3; rule_a1; rule_a2; rule_a3; rule_a4; rule_a5;
    rule_p1; rule_p2; rule_s1; rule_parse;
  ]

module SSet = Set.Make (String)
module SMap = Map.Make (String)

(* Suppression kinds, keyed by the attribute that activates them. *)
let suppression_attrs =
  [
    ("cdna.unordered_ok", [ rule_d1 ]);
    ("cdna.polyeq_ok", [ rule_d2 ]);
    ("cdna.nondet_ok", [ rule_d3 ]);
    ("cdna.alloc_ok", [ rule_a1; rule_a2; rule_a3; rule_a4; rule_a5 ]);
    ("cdna.protection_ok", [ rule_p1; rule_p2 ]);
  ]

let unordered_fns =
  SSet.of_list
    [
      "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
      "Hashtbl.to_seq_values"; "Hashtbl.filter_map_inplace";
    ]

let sort_fns =
  SSet.of_list
    [
      "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq";
      "Array.sort"; "Array.stable_sort"; "Array.fast_sort";
    ]

(* Polymorphic comparison / hashing entry points that are hazardous on any
   structured value; flagged at every occurrence, even as a bare value. *)
let poly_idents =
  SSet.of_list
    [
      "compare"; "Stdlib.compare"; "Pervasives.compare"; "Hashtbl.hash";
      "Hashtbl.hash_param"; "Hashtbl.seeded_hash";
    ]

let cmp_ops = SSet.of_list [ "="; "<>"; "<"; ">"; "<="; ">=" ]

(* Nondeterministic primitives: wall clock, self-seeding, GC observation,
   Marshal (output depends on sharing/flags, and is unreadable in traces). *)
let forbidden_idents =
  SSet.of_list
    [
      "Random.self_init"; "Sys.time"; "Unix.gettimeofday"; "Unix.time";
      "Unix.gmtime"; "Unix.localtime";
    ]

let forbidden_modules = SSet.of_list [ "Gc"; "Marshal" ]

(* P1: ownership / IOMMU-permission mutation. *)
let ownership_fns =
  SSet.of_list
    [
      "Phys_mem.alloc"; "Phys_mem.free"; "Phys_mem.transfer";
      "Phys_mem.get_ref"; "Phys_mem.put_ref"; "Iommu.grant"; "Iommu.revoke";
      "Iommu.revoke_context";
    ]

(* P2: direct byte access to simulated physical memory. *)
let byte_access_fns =
  SSet.of_list
    [
      "Phys_mem.read"; "Phys_mem.write"; "Phys_mem.read_into";
      "Phys_mem.write_sub"; "Phys_mem.read_uint"; "Phys_mem.write_uint";
      "Phys_mem.read_u16"; "Phys_mem.write_u16"; "Phys_mem.read_u32";
      "Phys_mem.write_u32"; "Phys_mem.read_u64"; "Phys_mem.write_u64";
    ]

(* Non-allocating primitives callable from hot code. *)
let allow_qualified =
  SSet.of_list
    [
      "Bytes.length"; "Bytes.get"; "Bytes.set"; "Bytes.unsafe_get";
      "Bytes.unsafe_set"; "Bytes.blit"; "Bytes.unsafe_blit";
      "Bytes.blit_string"; "Bytes.fill"; "Bytes.unsafe_fill";
      "Bytes.get_uint8"; "Bytes.set_uint8";
      "String.length"; "String.get"; "String.unsafe_get";
      "Array.length"; "Array.get"; "Array.set"; "Array.unsafe_get";
      "Array.unsafe_set"; "Array.blit"; "Array.unsafe_blit"; "Array.fill";
      "Char.code"; "Char.chr"; "Char.unsafe_chr";
      "Int.compare"; "Int.equal"; "Int.min"; "Int.max"; "Int.abs";
      "Int.logand"; "Int.logor"; "Int.logxor"; "Int.shift_left";
      "Int.shift_right"; "Int.shift_right_logical";
      "Lazy.force"; "Sys.opaque_identity";
      (* Per-domain slot read; allocates only on a key's first access on
         a new domain (one-time init, like Lazy.force). Both spellings:
         the parsetree sees [Domain.DLS.get], the typedtree [DLS.get]. *)
      "Domain.DLS.get"; "DLS.get";
      "Hashtbl.mem"; "Hashtbl.remove"; "Hashtbl.length";
      "Queue.length"; "Queue.is_empty";
      "Stdlib.min"; "Stdlib.max"; "Stdlib.abs"; "Stdlib.succ";
      "Stdlib.pred"; "Stdlib.not"; "Stdlib.ignore"; "Stdlib.fst";
      "Stdlib.snd"; "Stdlib.incr"; "Stdlib.decr"; "Stdlib.invalid_arg";
      "Stdlib.failwith"; "Stdlib.raise"; "Stdlib.compare_lengths";
      (* Project-local: [Sim.Trace.tag_enabled] is a pure flag check. *)
      "Trace.tag_enabled";
    ]

(* [ref] is accepted: a local ref that never escapes is unboxed by
   ocamlopt, and the escape vectors (capture by a closure, storage in a
   structure) are caught by A1/A2 themselves. *)
let allow_bare =
  SSet.of_list
    [
      "min"; "max"; "abs"; "succ"; "pred"; "not"; "ignore"; "fst"; "snd";
      "incr"; "decr"; "ref"; "invalid_arg"; "failwith"; "raise";
      "raise_notrace"; "assert";
    ]

(* Calls that leave the steady-state path: their arguments may allocate
   (exception payloads are error-path only). *)
let cold_exits =
  SSet.of_list
    [ "raise"; "raise_notrace"; "invalid_arg"; "failwith";
      "Stdlib.raise"; "Stdlib.invalid_arg"; "Stdlib.failwith" ]

let alloc_operators = SSet.of_list [ "^"; "@"; "^^" ]

let float_operators =
  SSet.of_list
    [ "+."; "-."; "*."; "/."; "**"; "~-."; "float_of_int"; "abs_float";
      "mod_float"; "Float.of_int" ]

let boxed_arith_modules = SSet.of_list [ "Int64"; "Int32"; "Nativeint" ]

let is_operator_name name =
  String.length name > 0
  && (String.contains "!$%&*+-./:<=>?@^|~" name.[0]
     || SSet.mem name
          (SSet.of_list
             [ "or"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr" ]))

(* ------------------------------------------------------------------ *)
(* Path classification                                                 *)
(* ------------------------------------------------------------------ *)

let normalize_path p = String.map (fun c -> if c = '\\' then '/' else c) p

let path_has_dir path dir =
  let path = normalize_path path in
  let needle = dir ^ "/" in
  let nl = String.length needle and pl = String.length path in
  let rec scan i =
    if i + nl > pl then false
    else if String.sub path i nl = needle then
      (* Match whole path segments only. *)
      i = 0 || path.[i - 1] = '/'
    else scan (i + 1)
  in
  scan 0

(* Layers allowed to mutate page ownership / IOMMU permissions:
   the Xen-like VMM substrate, the host model, and the memory subsystem
   itself. Everything else needs [@@@cdna.privileged]. *)
let ownership_privileged path =
  path_has_dir path "lib/xen" || path_has_dir path "lib/host"
  || path_has_dir path "lib/memory"

(* Layers that may reach guest memory only through [Bus.Dma_engine]. *)
let guest_restricted path =
  path_has_dir path "lib/nic" || path_has_dir path "lib/guestos"

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)
(* ------------------------------------------------------------------ *)

let flatten_lid lid = try Longident.flatten_exn lid with _ -> []

(* Qualified name reduced to its last two components ("Phys_mem.read"),
   so aliases like [Memory.Phys_mem.read] and [Stdlib.Hashtbl.fold]
   normalize to the same key. *)
let key2 parts =
  match List.rev parts with
  | [] -> ""
  | [ x ] -> x
  | x :: m :: _ -> m ^ "." ^ x

let key1 parts = match List.rev parts with [] -> "" | x :: _ -> x

let owning_module parts =
  match List.rev parts with _ :: m :: _ -> m | _ -> ""

(* ------------------------------------------------------------------ *)
(* Hot-function table (pass 1)                                         *)
(* ------------------------------------------------------------------ *)

let module_of_path path =
  Filename.basename path |> Filename.remove_extension
  |> String.capitalize_ascii

let has_attr name attrs =
  List.exists (fun (a : attribute) -> a.attr_name.txt = name) attrs

let fn_arity (e : expression) =
  match e.pexp_desc with
  | Pexp_function (params, _, body) ->
      List.length params
      + (match body with Pfunction_cases _ -> 1 | Pfunction_body _ -> 0)
  | _ -> 0

(* Maps "Module.fn" -> arity for every [@cdna.hot] binding. Descends into
   submodules, registering under the innermost module name — callers
   reference [Sim.Stats.Histogram.add] and [key2] reduces that to
   "Histogram.add", so the innermost name is the one that resolves. *)
let collect_hot parsed =
  let table = Hashtbl.create 64 in
  let rec scan_items modname items =
    List.iter
      (fun (item : structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : value_binding) ->
                if has_attr "cdna.hot" vb.pvb_attributes then
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt; _ } ->
                      Hashtbl.replace table
                        (modname ^ "." ^ txt)
                        (fn_arity vb.pvb_expr)
                  | _ -> ())
              vbs
        | Pstr_module mb -> scan_module_binding mb
        | Pstr_recmodule mbs -> List.iter scan_module_binding mbs
        | _ -> ())
      items
  and scan_module_binding (mb : module_binding) =
    match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
    | Some sub, Pmod_structure items -> scan_items sub items
    | _ -> ()
  in
  List.iter
    (fun (path, structure) ->
      match structure with
      | None -> ()
      | Some structure -> scan_items (module_of_path path) structure)
    parsed;
  table

(* ------------------------------------------------------------------ *)
(* Checker (pass 2)                                                    *)
(* ------------------------------------------------------------------ *)

type context = {
  hot_table : (string, int) Hashtbl.t;
  mutable diags : diag list;
  suppressions : (string, int) Hashtbl.t;
}

let bump tbl k = Hashtbl.replace tbl k (1 + try Hashtbl.find tbl k with Not_found -> 0)

class checker (ctx : context) (file : string) (local_toplevel : SSet.t)
  (local_hot : SSet.t) (privileged : bool) =
  object (self)
    inherit Ast_traverse.iter as super

    val mutable in_hot = false
    val mutable suppressed : SSet.t = SSet.empty

    (* Physical identity sets (small, per-file). *)
    val mutable sorted_ok : expression list = []
    val mutable allowed_funs : expression list = []

    (* [module H = Hashtbl] / [let module H = Hashtbl in ...]: local
       name -> flattened target, so aliased calls cannot evade the
       name-keyed rules (D1 etc.). *)
    val mutable mod_aliases : string list SMap.t = SMap.empty

    (* Rewrite the leading component of a qualified name through the
       alias table ([H.iter] -> [Stdlib.Hashtbl.iter]); fuel-bounded in
       case of degenerate self-aliases. *)
    method private expand parts =
      let rec go fuel = function
        | first :: rest when fuel > 0 -> (
            match SMap.find_opt first mod_aliases with
            | Some target -> go (fuel - 1) (target @ rest)
            | None -> first :: rest)
        | parts -> parts
      in
      (* Only multi-component names can be module-qualified. *)
      match parts with [] | [ _ ] -> parts | _ -> go 4 parts

    method private record_alias (name : string option) (m : module_expr) =
      match name with
      | None -> ()
      | Some name -> (
          let rec target (m : module_expr) =
            match m.pmod_desc with
            | Pmod_ident { txt; _ } -> Some (flatten_lid txt)
            | Pmod_constraint (m', _) -> target m'
            | _ -> None
          in
          match target m with
          | Some (_ :: _ as parts) ->
              (* Expand at record time so chained aliases resolve. *)
              mod_aliases <- SMap.add name (self#expand parts) mod_aliases
          | _ -> ())

    method! module_binding mb =
      self#record_alias mb.pmb_name.txt mb.pmb_expr;
      super#module_binding mb

    method private report (loc : Location.t) rule msg =
      if not (SSet.mem rule suppressed) then
        let p = loc.loc_start in
        ctx.diags <-
          {
            file;
            line = p.pos_lnum;
            col = p.pos_cnum - p.pos_bol;
            rule;
            msg;
          }
          :: ctx.diags

    (* Record a suppression attribute: count it, validate its reason, and
       return the rule names it masks. *)
    method private suppression_rules (attrs : attributes) =
      List.concat_map
        (fun (a : attribute) ->
          match List.assoc_opt a.attr_name.txt suppression_attrs with
          | None -> []
          | Some rules ->
              bump ctx.suppressions a.attr_name.txt;
              (match a.attr_payload with
              | PStr
                  [
                    {
                      pstr_desc =
                        Pstr_eval
                          ( {
                              pexp_desc =
                                Pexp_constant (Pconst_string (reason, _, _));
                              _;
                            },
                            _ );
                      _;
                    };
                  ]
                when String.trim reason <> "" ->
                  ()
              | _ ->
                  self#report a.attr_loc rule_s1
                    (Printf.sprintf
                       "[@%s] must carry a non-empty reason string"
                       a.attr_name.txt));
              rules)
        attrs

    method private check_ident (loc : Location.t) parts =
      let k2 = key2 parts and k1 = key1 parts in
      (* D2: polymorphic compare / hash entry points, any occurrence. *)
      if SSet.mem k2 poly_idents || (List.length parts = 1 && SSet.mem k1 poly_idents)
      then
        self#report loc rule_d2
          (Printf.sprintf
             "polymorphic %s: use a typed comparison (Int.compare, \
              String.compare, ...) or annotate [@cdna.polyeq_ok]"
             k2);
      (* D3: nondeterministic primitives. *)
      if SSet.mem k2 forbidden_idents then
        self#report loc rule_d3
          (Printf.sprintf
             "%s is nondeterministic; route randomness through Sim.Rng and \
              time through Sim.Engine, or annotate [@cdna.nondet_ok]"
             k2)
      else if SSet.mem (owning_module parts) forbidden_modules then
        self#report loc rule_d3
          (Printf.sprintf
             "%s: %s is forbidden in lib/ (nondeterministic or \
              representation-dependent); annotate [@cdna.nondet_ok] if this \
              is diagnostics-only"
             k2 (owning_module parts));
      (* P1 / P2: protection boundaries. *)
      if not privileged then begin
        if SSet.mem k2 ownership_fns && not (ownership_privileged file) then
          self#report loc rule_p1
            (Printf.sprintf
               "%s mutates page ownership / DMA permissions; only lib/xen, \
                lib/host and lib/memory may (or declare the module \
                [@@@cdna.privileged \"reason\"])"
               k2);
        if SSet.mem k2 byte_access_fns && guest_restricted file then
          self#report loc rule_p2
            (Printf.sprintf
               "%s bypasses DMA protection: lib/nic and lib/guestos must \
                reach guest memory through Bus.Dma_engine (or justify with \
                [@cdna.protection_ok])"
               k2)
      end

    (* A-rule helper: a constructor payload that the compiler allocates
       statically (structured constant) is not a runtime allocation. *)
    method private static_payload (e : expression) =
      let rec const (e : expression) =
        match e.pexp_desc with
        | Pexp_constant _ -> true
        | Pexp_construct (_, None) -> true
        | Pexp_construct (_, Some arg) -> const arg
        | Pexp_variant (_, None) -> true
        | Pexp_variant (_, Some arg) -> const arg
        | Pexp_tuple es -> List.for_all const es
        | _ -> false
      in
      const e

    method private check_hot_call (loc : Location.t) parts nargs =
      let k2 = key2 parts and k1 = key1 parts in
      let qualified = List.length parts > 1 in
      if qualified then begin
        if SSet.mem k2 allow_qualified then ()
        else if SSet.mem (owning_module parts) boxed_arith_modules then
          self#report loc rule_a5
            (Printf.sprintf "%s works on boxed numbers in a [@cdna.hot] body"
               k2)
        else
          match Hashtbl.find_opt ctx.hot_table k2 with
          | Some arity ->
              if arity > 0 && nargs < arity then
                self#report loc rule_a4
                  (Printf.sprintf
                     "partial application of %s (%d of %d args) builds a \
                      closure in a [@cdna.hot] body"
                     k2 nargs arity)
          | None ->
              self#report loc rule_a3
                (Printf.sprintf
                   "[@cdna.hot] body calls %s, which is neither [@cdna.hot] \
                    nor an allowlisted primitive"
                   k2)
      end
      else if SSet.mem k1 float_operators then
        self#report loc rule_a5
          (Printf.sprintf
             "float operator %s boxes its result in a [@cdna.hot] body" k1)
      else if SSet.mem k1 alloc_operators then
        self#report loc rule_a1
          (Printf.sprintf "%s allocates in a [@cdna.hot] body" k1)
      else if is_operator_name k1 then ()
      else if SSet.mem k1 allow_bare then ()
      else if SSet.mem k1 local_hot then begin
        match
          Hashtbl.find_opt ctx.hot_table (module_of_path file ^ "." ^ k1)
        with
        | Some arity when arity > 0 && nargs < arity ->
            self#report loc rule_a4
              (Printf.sprintf
                 "partial application of %s (%d of %d args) builds a closure \
                  in a [@cdna.hot] body"
                 k1 nargs arity)
        | _ -> ()
      end
      else if SSet.mem k1 local_toplevel then
        self#report loc rule_a3
          (Printf.sprintf
             "[@cdna.hot] body calls %s, a module-level function that is not \
              [@cdna.hot]"
             k1)
      (* Bare non-toplevel idents are parameters or locals (callbacks,
         closures passed in): allowed — the caller is responsible. *)

    method! value_binding vb =
      let saved_hot = in_hot and saved_sup = suppressed in
      let rules = self#suppression_rules vb.pvb_attributes in
      suppressed <- SSet.union suppressed (SSet.of_list rules);
      if has_attr "cdna.hot" vb.pvb_attributes then in_hot <- true;
      (* The binding's own leading [fun] chain is the function itself,
         and a *named* local function is compiled statically when every
         use is a direct call (escapes show up as A1/A2/A3 at the escape
         site) — neither is a closure allocation. *)
      if in_hot then begin
        match vb.pvb_expr.pexp_desc with
        | Pexp_function _ -> allowed_funs <- vb.pvb_expr :: allowed_funs
        | _ -> ()
      end;
      super#value_binding vb;
      in_hot <- saved_hot;
      suppressed <- saved_sup

    method! expression e =
      let saved_hot = in_hot and saved_sup = suppressed in
      let saved_aliases = mod_aliases in
      let rules = self#suppression_rules e.pexp_attributes in
      suppressed <- SSet.union suppressed (SSet.of_list rules);
      (* A let-module alias scopes over the body walked below;
         [saved_aliases] restores it on exit. *)
      (match e.pexp_desc with
      | Pexp_letmodule (name, me, _) -> self#record_alias name.txt me
      | _ -> ());
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } ->
          self#check_ident loc (self#expand (flatten_lid txt))
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> begin
          let parts = self#expand (flatten_lid txt) in
          let k2 = key2 parts and k1 = key1 parts in
          (* Mark arguments fed into a sort as order-safe. *)
          let mark_if_unordered (arg : expression) =
            match arg.pexp_desc with
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt = f; _ }; _ }, _)
              when SSet.mem (key2 (self#expand (flatten_lid f))) unordered_fns
              ->
                sorted_ok <- arg :: sorted_ok
            | _ -> ()
          in
          if SSet.mem k2 sort_fns then
            List.iter (fun (_, a) -> mark_if_unordered a) args
          else if k1 = "|>" then begin
            match args with
            | [ (_, lhs); (_, rhs) ] -> (
                match rhs.pexp_desc with
                | Pexp_apply
                    ({ pexp_desc = Pexp_ident { txt = f; _ }; _ }, _)
                  when SSet.mem (key2 (self#expand (flatten_lid f))) sort_fns ->
                    mark_if_unordered lhs
                | _ -> ())
            | _ -> ()
          end
          else if k1 = "@@" then begin
            match args with
            | [ (_, lhs); (_, rhs) ] -> (
                match lhs.pexp_desc with
                | Pexp_apply
                    ({ pexp_desc = Pexp_ident { txt = f; _ }; _ }, _)
                  when SSet.mem (key2 (self#expand (flatten_lid f))) sort_fns ->
                    mark_if_unordered rhs
                | _ -> ())
            | _ -> ()
          end;
          (* D1: unordered iteration, unless sorted or annotated. *)
          if
            SSet.mem k2 unordered_fns
            && not (List.memq e sorted_ok)
          then
            self#report e.pexp_loc rule_d1
              (Printf.sprintf
                 "%s iterates in hash order; sort the result by a stable key \
                  (List.sort around the fold) or annotate [@cdna.unordered_ok \
                  \"reason\"]"
                 k2);
          (* D2: comparison operators on syntactically structured operands. *)
          if SSet.mem k1 cmp_ops && List.length parts = 1 then begin
            let compound (arg : expression) =
              match arg.pexp_desc with
              | Pexp_tuple _ | Pexp_record _ | Pexp_array _ | Pexp_lazy _ ->
                  true
              | Pexp_construct ({ txt = Lident "()"; _ }, None) -> false
              | Pexp_construct (_, Some _) -> true
              | Pexp_variant (_, Some _) -> true
              | _ -> false
            in
            if List.exists (fun (_, a) -> compound a) args then
              self#report e.pexp_loc rule_d2
                (Printf.sprintf
                   "polymorphic (%s) on a structured value; compare the \
                    fields explicitly or use a typed equal"
                   k1)
          end;
          (* A: hot-path call discipline. *)
          if in_hot then
            if SSet.mem k2 cold_exits || (List.length parts = 1 && SSet.mem k1 cold_exits)
            then begin
              (* Error exits leave the steady-state path: skip allocation
                 checks inside their payload, but keep D/P checks. *)
              in_hot <- false
            end
            else self#check_hot_call e.pexp_loc parts (List.length args)
        end
      | Pexp_tuple _ when in_hot && not (self#static_payload e) ->
          self#report e.pexp_loc rule_a1
            "tuple construction allocates in a [@cdna.hot] body"
      | Pexp_record _ when in_hot ->
          self#report e.pexp_loc rule_a1
            "record construction allocates in a [@cdna.hot] body"
      | Pexp_array _ when in_hot ->
          self#report e.pexp_loc rule_a1
            "array literal allocates in a [@cdna.hot] body"
      | Pexp_construct (_, Some _) when in_hot && not (self#static_payload e)
        ->
          self#report e.pexp_loc rule_a1
            "constructor application allocates in a [@cdna.hot] body \
             (return bare values, or annotate [@cdna.alloc_ok])"
      | Pexp_variant (_, Some _) when in_hot && not (self#static_payload e) ->
          self#report e.pexp_loc rule_a1
            "polymorphic-variant payload allocates in a [@cdna.hot] body"
      | Pexp_lazy _ when in_hot ->
          self#report e.pexp_loc rule_a1
            "lazy suspension allocates in a [@cdna.hot] body"
      | (Pexp_object _ | Pexp_pack _ | Pexp_letmodule _) when in_hot ->
          self#report e.pexp_loc rule_a1
            "first-class module / object allocates in a [@cdna.hot] body"
      | Pexp_constant (Pconst_float _) when in_hot ->
          self#report e.pexp_loc rule_a5
            "float literal in a [@cdna.hot] body (float results are boxed)"
      | Pexp_function _ when in_hot && not (List.memq e allowed_funs) ->
          self#report e.pexp_loc rule_a2
            "anonymous function captures its environment (closure \
             allocation) in a [@cdna.hot] body; name it with [let] or \
             annotate [@cdna.alloc_ok]"
      | _ -> ());
      super#expression e;
      in_hot <- saved_hot;
      suppressed <- saved_sup;
      mod_aliases <- saved_aliases
  end

(* ------------------------------------------------------------------ *)
(* Per-file driver                                                     *)
(* ------------------------------------------------------------------ *)

let parse_file path contents =
  let lexbuf = Lexing.from_string contents in
  lexbuf.lex_curr_p <-
    { pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  Parse.implementation lexbuf

let toplevel_names structure =
  List.fold_left
    (fun (all, hot) (item : structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.fold_left
            (fun (all, hot) (vb : value_binding) ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } ->
                  ( SSet.add txt all,
                    if has_attr "cdna.hot" vb.pvb_attributes then
                      SSet.add txt hot
                    else hot )
              | _ -> (all, hot))
            (all, hot) vbs
      | _ -> (all, hot))
    (SSet.empty, SSet.empty) structure

let file_privileged ctx structure =
  List.exists
    (fun (item : structure_item) ->
      match item.pstr_desc with
      | Pstr_attribute a when a.attr_name.txt = "cdna.privileged" ->
          bump ctx.suppressions "cdna.privileged";
          true
      | _ -> false)
    structure

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* [run files] lints [(path, contents)] pairs. [path] determines both
   diagnostics and which boundary rules apply. *)
let run (files : (string * string) list) : diag list * stats =
  let ctx =
    { hot_table = Hashtbl.create 64; diags = []; suppressions = Hashtbl.create 8 }
  in
  let parsed =
    List.map
      (fun (path, contents) ->
        match parse_file path contents with
        | structure -> (path, Some structure)
        | exception exn ->
            let msg =
              match Location.Error.of_exn exn with
              | Some e -> Location.Error.message e
              | None -> Printexc.to_string exn
            in
            ctx.diags <-
              { file = path; line = 1; col = 0; rule = rule_parse; msg }
              :: ctx.diags;
            (path, None))
      files
  in
  let hot_table = collect_hot parsed in
  Hashtbl.iter (fun k v -> Hashtbl.replace ctx.hot_table k v) hot_table;
  List.iter
    (fun (path, structure) ->
      match structure with
      | None -> ()
      | Some structure ->
          let all, hot = toplevel_names structure in
          let privileged = file_privileged ctx structure in
          let c = new checker ctx path all hot privileged in
          c#structure structure)
    parsed;
  let diags = List.sort diag_compare ctx.diags in
  let rule_counts =
    List.filter_map
      (fun r ->
        match List.length (List.filter (fun d -> d.rule = r) diags) with
        | 0 -> None
        | n -> Some (r, n))
      all_rules
  in
  let suppression_counts =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.suppressions []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  ( diags,
    {
      files_scanned = List.length files;
      hot_functions = Hashtbl.length ctx.hot_table;
      violations = List.length diags;
      rule_counts;
      suppression_counts;
    } )

let diags_to_json diags =
  Sim.Json.List
    (List.map
       (fun d ->
         Sim.Json.Obj
           [
             ("file", Sim.Json.String d.file);
             ("line", Sim.Json.Int d.line);
             ("col", Sim.Json.Int d.col);
             ("rule", Sim.Json.String d.rule);
             ("msg", Sim.Json.String d.msg);
           ])
       diags)

let stats_to_json s =
  Sim.Json.Obj
    [
      ("files_scanned", Sim.Json.Int s.files_scanned);
      ("hot_functions", Sim.Json.Int s.hot_functions);
      ("violations", Sim.Json.Int s.violations);
      ( "rules",
        Sim.Json.Obj
          (List.map (fun (r, n) -> (r, Sim.Json.Int n)) s.rule_counts) );
      ( "suppressions",
        Sim.Json.Obj
          (List.map
             (fun (r, n) -> (r, Sim.Json.Int n))
             s.suppression_counts) );
    ]
