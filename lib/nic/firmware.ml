let mbox_tx_ring_slots = 0
let mbox_tx_ring_base = 1
let mbox_rx_ring_slots = 2
let mbox_rx_ring_base = 3
let mbox_status_addr = 4
let mbox_tx_prod = 5
let mbox_rx_prod = 6

type t = {
  engine : Sim.Engine.t;
  dp : Dp.t;
  process_cost : Sim.Time.t;
  mutable mailbox : Mailbox.t option; (* tied after creation (cyclic dep) *)
  (* Firmware scratch: last ring geometry written per context. *)
  tx_slots : int array;
  rx_slots : int array;
  mutable running : bool;
  mutable processed : int;
}

let mailbox t = Option.get t.mailbox

let dispatch t ~ctx ~mbox =
  let v = Mailbox.value (mailbox t) ~ctx ~mbox in
  if mbox = mbox_tx_ring_slots then t.tx_slots.(ctx) <- v
  else if mbox = mbox_rx_ring_slots then t.rx_slots.(ctx) <- v
  else if mbox = mbox_tx_ring_base then begin
    let desc_bytes =
      (Dp.config t.dp).Nic_config.desc_layout.Memory.Desc_layout.size
    in
    Dp.set_tx_ring t.dp ~ctx
      (Ring.create ~base:v ~slots:t.tx_slots.(ctx) ~desc_bytes ())
  end
  else if mbox = mbox_rx_ring_base then begin
    let desc_bytes =
      (Dp.config t.dp).Nic_config.desc_layout.Memory.Desc_layout.size
    in
    Dp.set_rx_ring t.dp ~ctx
      (Ring.create ~base:v ~slots:t.rx_slots.(ctx) ~desc_bytes ())
  end
  else if mbox = mbox_status_addr then Dp.set_status_addr t.dp ~ctx v
  else if mbox = mbox_tx_prod then Dp.tx_doorbell t.dp ~ctx ~prod:v
  else if mbox = mbox_rx_prod then Dp.rx_doorbell t.dp ~ctx ~prod:v
(* Other mailboxes: general-purpose, ignored by this firmware. *)

let rec process_loop t () =
  match Mailbox.next_event (mailbox t) with
  | None -> t.running <- false
  | Some (ctx, mbox) ->
      Mailbox.clear_event (mailbox t) ~ctx ~mbox;
      t.processed <- t.processed + 1;
      dispatch t ~ctx ~mbox;
      ignore (Sim.Engine.schedule t.engine ~delay:t.process_cost (process_loop t))

let on_event t () =
  if not t.running then begin
    t.running <- true;
    ignore (Sim.Engine.schedule t.engine ~delay:t.process_cost (process_loop t))
  end

let create engine ~dp ~process_cost () =
  let contexts = Dp.contexts dp in
  let t =
    {
      engine;
      dp;
      process_cost;
      mailbox = None;
      tx_slots = Array.make contexts 0;
      rx_slots = Array.make contexts 0;
      running = false;
      processed = 0;
    }
  in
  t.mailbox <- Some (Mailbox.create ~contexts ~on_event:(fun () -> on_event t ()));
  t

let region t ~ctx = Mailbox.region (mailbox t) ~ctx

let driver_if t ~ctx ~mapping : Driver_if.t =
  let write mbox v = Bus.Mmio.write32 mapping ~offset:(mbox * 4) v in
  {
    describe = Printf.sprintf "ricenic-fw ctx%d" ctx;
    desc_layout = (Dp.config t.dp).Nic_config.desc_layout;
    setup_tx_ring =
      (fun ring ->
        write mbox_tx_ring_slots (Ring.slots ring);
        write mbox_tx_ring_base (Ring.base ring));
    setup_rx_ring =
      (fun ring ->
        write mbox_rx_ring_slots (Ring.slots ring);
        write mbox_rx_ring_base (Ring.base ring));
    setup_status = (fun addr -> write mbox_status_addr addr);
    tx_doorbell = (fun prod -> write mbox_tx_prod prod);
    rx_doorbell = (fun prod -> write mbox_rx_prod prod);
    stage_tx_meta = (fun frame -> Dp.stage_tx_meta t.dp ~ctx frame);
    take_tx_completions = (fun () -> Dp.take_tx_completions t.dp ~ctx);
    take_rx_completions = (fun ~max -> Dp.take_rx_completions t.dp ~ctx ~max);
    rx_completions_pending = (fun () -> Dp.rx_completions_pending t.dp ~ctx);
  }

type saved_scratch = { saved_tx_slots : int; saved_rx_slots : int }

let save_scratch t ~ctx =
  let s =
    { saved_tx_slots = t.tx_slots.(ctx); saved_rx_slots = t.rx_slots.(ctx) }
  in
  t.tx_slots.(ctx) <- 0;
  t.rx_slots.(ctx) <- 0;
  s

let restore_scratch t ~ctx s =
  t.tx_slots.(ctx) <- s.saved_tx_slots;
  t.rx_slots.(ctx) <- s.saved_rx_slots

let events_processed t = t.processed
