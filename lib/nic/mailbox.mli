(** Per-context mailbox SRAM with the two-level event bit-vector hierarchy.

    Models the RiceNIC CDNA hardware of paper section 4: 128 KB of SRAM
    divided into 32 page-sized (4 KB) partitions, one per hardware context.
    The lowest 24 words of each partition are {e mailboxes}. Any PIO write
    to a mailbox sets the corresponding bit in a per-context bit vector and
    the context's bit in a global bit vector; the firmware finds work by
    decoding the hierarchy (lowest set bit first) and clears events
    per-context.

    Each partition is exposed as an {!Bus.Mmio.region} so the hypervisor
    can map exactly one partition into a guest. *)

type t

val mailboxes_per_context : int
(** 24, as in the RiceNIC implementation. *)

val partition_bytes : int
(** 4096: one host page, so a partition maps into one guest page. *)

(** [create ~contexts ~on_event] builds the SRAM block. [on_event] fires on
    every mailbox write (the hardware's "global mailbox event"), after the
    bit vectors have been updated. *)
val create : contexts:int -> on_event:(unit -> unit) -> t

val contexts : t -> int

(** MMIO region of one context's 4 KB partition. Reads return the last
    value written; writes beyond the mailbox words hit general-purpose
    shared memory (also readable/writable). *)
val region : t -> ctx:int -> Bus.Mmio.region

(** Firmware side: current value of a mailbox word. *)
val value : t -> ctx:int -> mbox:int -> int

(** Firmware side: write a mailbox word without raising an event (used for
    NIC-to-driver communication through the shared partition). *)
val poke : t -> ctx:int -> mbox:int -> int -> unit

(** First-level bit vector: bit [c] set iff context [c] has pending
    events. *)
val pending_contexts : t -> int

(** Second-level vector for one context. *)
val pending_boxes : t -> ctx:int -> int

(** [next_event t] decodes the hierarchy: lowest pending context, lowest
    pending mailbox within it — without clearing. *)
val next_event : t -> (int * int) option

(** [clear_event t ~ctx ~mbox] clears one event bit (and the context's
    first-level bit when no events remain). *)
val clear_event : t -> ctx:int -> mbox:int -> unit

(** [clear_context t ~ctx] clears all events of a context at once (the
    hardware supports multi-event clear messages). *)
val clear_context : t -> ctx:int -> unit

(** Opaque image of one partition: word contents plus pending-event bits.
    Used by hypervisor-mediated context paging when guests oversubscribe
    the hardware contexts. *)
type saved_partition

(** [save_partition t ~ctx] copies the partition's words and pending-event
    bits into a save area, then zeroes the partition and clears its events
    — the next guest mapped onto [ctx] must not observe the victim's data. *)
val save_partition : t -> ctx:int -> saved_partition

(** [restore_partition t ~ctx s] writes a saved image back into partition
    [ctx]. Pending events saved with the image are re-armed (and [on_event]
    fired) without counting as new hardware events. *)
val restore_partition : t -> ctx:int -> saved_partition -> unit

(** Total mailbox-write events generated so far. *)
val events_generated : t -> int

(** Expose [mailbox.events] as a gauge under [labels]. *)
val register_metrics :
  t -> Sim.Metrics.t -> labels:(string * string) list -> unit
