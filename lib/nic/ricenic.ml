type t = {
  dp : Dp.t;
  firmware : Firmware.t;
  mapping : Bus.Mmio.mapping;
  coalescer : Coalesce.t;
}

let create engine ~mem ~dma ?(config = Nic_config.ricenic) ~irq ~dma_context () =
  let coalescer = ref None in
  let notify ~ctx:_ =
    match !coalescer with Some c -> Coalesce.request c | None -> ()
  in
  let on_fault ~ctx:_ _dir _fault = () in
  let dp =
    Dp.create engine ~mem ~dma ~config ~contexts:1
      ~dma_context_base:dma_context ~notify ~on_fault ()
  in
  let c =
    Coalesce.create engine ~min_gap:config.Nic_config.intr_min_gap
      ~fire:(fun () -> Bus.Irq.assert_line irq)
  in
  coalescer := Some c;
  let firmware =
    Firmware.create engine ~dp
      ~process_cost:config.Nic_config.firmware_delay ()
  in
  let mapping = Bus.Mmio.map (Firmware.region firmware ~ctx:0) in
  { dp; firmware; mapping; coalescer = c }

let attach_link t link ~side = Dp.attach_link t.dp link ~side

let enable t ~mac =
  Dp.activate t.dp ~ctx:0 ~mac;
  Dp.set_promiscuous t.dp ~ctx:(Some 0)

let disable t =
  Dp.set_promiscuous t.dp ~ctx:None;
  Dp.deactivate t.dp ~ctx:0

let driver_if t = Firmware.driver_if t.firmware ~ctx:0 ~mapping:t.mapping
let dp t = t.dp
let firmware t = t.firmware
let stats t = Dp.stats t.dp
let set_uncongested_hook t f = Dp.set_uncongested_hook t.dp f
let rx_congested t = Dp.rx_congested t.dp

let register_metrics t m ~labels =
  Dp.register_metrics t.dp m ~labels;
  Coalesce.register_metrics t.coalescer m ~labels;
  Mailbox.register_metrics (Firmware.mailbox t.firmware) m ~labels;
  Sim.Metrics.gauge m ~labels "firmware.events_processed" (fun () ->
      Firmware.events_processed t.firmware)
