(** RiceNIC with basic (non-CDNA) firmware.

    The FPGA NIC of paper section 4 running its standard single-context
    firmware: the driver interacts through context 0's mailbox partition
    (real PIO writes decoded by the firmware event loop), descriptors are
    fetched by DMA, and one coalesced physical interrupt line notifies the
    host. "Unvirtualized device drivers would use a single context's
    mailboxes to interact with the base firmware."

    The CDNA variant of the same hardware lives in the [cdna] library. *)

type t

val create :
  Sim.Engine.t ->
  mem:Memory.Phys_mem.t ->
  dma:Bus.Dma_engine.t ->
  ?config:Nic_config.t ->
  irq:Bus.Irq.t ->
  dma_context:int ->
  unit ->
  t

val attach_link : t -> Ethernet.Link.t -> side:Ethernet.Link.side -> unit
val enable : t -> mac:Ethernet.Mac_addr.t -> unit
val disable : t -> unit

(** Driver interface through context 0's mailbox partition. *)
val driver_if : t -> Driver_if.t

val dp : t -> Dp.t
val firmware : t -> Firmware.t
val stats : t -> Dp.stats
val set_uncongested_hook : t -> (unit -> unit) -> unit
val rx_congested : t -> bool

(** Expose datapath, coalescer, mailbox and firmware gauges under
    [labels] (e.g. [[("nic", "nic0")]]). *)
val register_metrics :
  t -> Sim.Metrics.t -> labels:(string * string) list -> unit
