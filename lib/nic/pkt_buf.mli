(** On-NIC packet-buffer accounting.

    The CDNA NIC's transmit and receive packet buffers are "managed
    globally, and hence packet buffering is shared across all contexts"
    (paper section 4). This module tracks capacity; actual bytes live in
    the frames in flight. *)

type t

val create : capacity:int -> t
val capacity : t -> int
val in_use : t -> int

(** [try_reserve t ~bytes] reserves space, or returns false (caller drops
    the packet). @raise Invalid_argument if [bytes < 0]. *)
val try_reserve : t -> bytes:int -> bool

(** [release t ~bytes] returns space.
    @raise Invalid_argument on underflow. *)
val release : t -> bytes:int -> unit

(** Reservations refused because the buffer was full (receive-path
    refusals are drops; transmit-path refusals are fetch-stage stalls that
    retry when space frees up). *)
val drops : t -> int

(** High-water mark of occupancy. *)
val peak : t -> int
