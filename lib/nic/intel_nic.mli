(** Conventional single-context NIC (Intel Pro/1000 MT model).

    The software-virtualization baseline NIC of the paper's evaluation: one
    hardware context, register-style doorbells, TSO capable, interrupts
    coalesced onto a single physical line. Under Xen it is owned by the
    driver domain and runs in promiscuous mode behind the software
    bridge. *)

type t

(** [create engine ~mem ~dma ~irq ~dma_context ()] — [dma_context] is this
    device's IOMMU context id. *)
val create :
  Sim.Engine.t ->
  mem:Memory.Phys_mem.t ->
  dma:Bus.Dma_engine.t ->
  ?config:Nic_config.t ->
  irq:Bus.Irq.t ->
  dma_context:int ->
  unit ->
  t

val attach_link : t -> Ethernet.Link.t -> side:Ethernet.Link.side -> unit

(** Bring the device up with its MAC (also enables promiscuous receive,
    as required behind a bridge). *)
val enable : t -> mac:Ethernet.Mac_addr.t -> unit

val disable : t -> unit

(** Driver-facing operations (register writes are immediate). *)
val driver_if : t -> Driver_if.t

val dp : t -> Dp.t
val stats : t -> Dp.stats
val irq : t -> Bus.Irq.t

(** Flow-control hook: fires when the receive buffer drains below the low
    watermark (used by the ideal peer for 802.3x-style pause). *)
val set_uncongested_hook : t -> (unit -> unit) -> unit

val rx_congested : t -> bool

(** Expose datapath and coalescer gauges under [labels]
    (e.g. [[("nic", "nic0")]]). *)
val register_metrics :
  t -> Sim.Metrics.t -> labels:(string * string) list -> unit
