type fault =
  | Seqno_mismatch of { expected : int; got : int }
  | Missing_meta
  | Dma_fault of Bus.Dma_engine.fault

type dir = Tx | Rx

(* Maximum Ethernet frame footprint used for optimistic buffer
   reservation in the transmit pipeline. *)
let max_frame_bytes = 1538
let ready_depth = 4
let seqno_mod = 1 lsl 16

type ctx = {
  id : int;
  mutable active : bool;
  mutable faulted : bool;
  mutable epoch : int;
  mutable mac : Ethernet.Mac_addr.t option;
  mutable tx_ring : Ring.t option;
  mutable rx_ring : Ring.t option;
  mutable status_addr : Memory.Addr.t option;
  (* Free-running indices. [*_prod] is the driver's published producer;
     [tx_fetch_next]/[rx_use_next] are the firmware cursors; [*_cons] count
     fully completed descriptors. *)
  mutable tx_prod : int;
  mutable tx_fetch_next : int;
  mutable tx_cons : int;
  mutable rx_prod : int;
  mutable rx_use_next : int;
  mutable rx_cons : int;
  mutable tx_expected_seqno : int;
  mutable rx_expected_seqno : int;
  tx_meta : Ethernet.Frame.t Queue.t;
  (* Scatter/gather assembly: payload fragments of the packet being
     assembled land in [sg_buf[0, sg_len)] (grow-on-demand, reused across
     packets) until a descriptor with the end-of-packet flag arrives.
     Safe because the fetch engine admits one fragment DMA at a time
     ([fetch_busy]), so the buffer is never grown under an in-flight
     [read_into]. *)
  mutable sg_buf : Bytes.t;
  mutable sg_len : int;
  mutable sg_frag_descs : int;
  rx_backlog : (Ethernet.Frame.t * int) Queue.t; (* frame, epoch *)
  mutable tx_completed_unread : int;
  rx_completions : (int * Ethernet.Frame.t) Queue.t;
  mutable tx_frames : int;
  mutable rx_frames : int;
}

type stats = {
  tx_frames : int;
  tx_bytes : int;
  rx_frames : int;
  rx_bytes : int;
  rx_no_ctx_drops : int;
  rx_overflow_drops : int;
  rx_truncated : int;
  faults : int;
}

type t = {
  engine : Sim.Engine.t;
  mem : Memory.Phys_mem.t;
  dma : Bus.Dma_engine.t;
  cfg : Nic_config.t;
  dma_context_base : int;
  notify : ctx:int -> unit;
  on_fault : ctx:int -> dir -> fault -> unit;
  ctxs : ctx array;
  mac_table : (Ethernet.Mac_addr.t, int) Hashtbl.t;
  mutable promiscuous : int option;
  tx_buf : Pkt_buf.t;
  rx_buf : Pkt_buf.t;
  (* Staging buffer for the one in-flight receive delivery ([rx_busy]
     serializes them): payload bytes are generated or truncated here and
     DMAed out with [write_from], so steady-state receive allocates
     nothing per frame. *)
  mutable rx_scratch : Bytes.t;
  mutable link : (Ethernet.Link.t * Ethernet.Link.side) option;
  (* Transmit pipeline: fetch stage feeding a small ready FIFO ahead of the
     wire stage. *)
  ready : (int * int * Ethernet.Frame.t * int * int) Queue.t;
  (* ctx id, epoch, frame, reserved bytes, descriptors consumed *)
  mutable fetch_busy : bool;
  mutable fetch_ctx : int option; (* context the in-flight fetch serves *)
  (* Whether the in-flight fetch already consumed a sequence number (its
     descriptor passed [check_seqno] and the payload DMA is in flight).
     Context save needs this to roll the expected seqno back exactly. *)
  mutable fetch_checked : bool;
  mutable wire_busy : bool;
  (* (ctx id, epoch, descriptors) of the frame currently on the wire;
     context save credits it as completed since the bits are already
     leaving the NIC. *)
  mutable wire_cur : (int * int * int) option;
  mutable tx_rr : int;
  mutable rx_busy : bool;
  (* (ctx id, epoch) of the in-flight receive delivery, and whether its
     descriptor already consumed a sequence number. *)
  mutable rx_cur : (int * int) option;
  mutable rx_cur_checked : bool;
  mutable rx_rr : int;
  mutable congested : bool;
  mutable uncongested_hook : unit -> unit;
  (* aggregate statistics *)
  mutable s_tx_frames : int;
  mutable s_tx_bytes : int;
  mutable s_rx_frames : int;
  mutable s_rx_bytes : int;
  mutable s_no_ctx : int;
  mutable s_overflow : int;
  mutable s_truncated : int;
  mutable s_faults : int;
}

let make_ctx id =
  {
    id;
    active = false;
    faulted = false;
    epoch = 0;
    mac = None;
    tx_ring = None;
    rx_ring = None;
    status_addr = None;
    tx_prod = 0;
    tx_fetch_next = 0;
    tx_cons = 0;
    rx_prod = 0;
    rx_use_next = 0;
    rx_cons = 0;
    tx_expected_seqno = 0;
    rx_expected_seqno = 0;
    tx_meta = Queue.create ();
    sg_buf = Bytes.empty;
    sg_len = 0;
    sg_frag_descs = 0;
    rx_backlog = Queue.create ();
    tx_completed_unread = 0;
    rx_completions = Queue.create ();
    tx_frames = 0;
    rx_frames = 0;
  }

let create engine ~mem ~dma ~config ~contexts ~dma_context_base ~notify
    ~on_fault () =
  if contexts <= 0 || contexts > 32 then
    invalid_arg "Dp.create: contexts out of range";
  {
    engine;
    mem;
    dma;
    cfg = config;
    dma_context_base;
    notify;
    on_fault;
    ctxs = Array.init contexts make_ctx;
    mac_table = Hashtbl.create 64;
    promiscuous = None;
    tx_buf = Pkt_buf.create ~capacity:config.Nic_config.tx_buffer_bytes;
    rx_buf = Pkt_buf.create ~capacity:config.Nic_config.rx_buffer_bytes;
    rx_scratch = Bytes.empty;
    link = None;
    ready = Queue.create ();
    fetch_busy = false;
    fetch_ctx = None;
    fetch_checked = false;
    wire_busy = false;
    wire_cur = None;
    tx_rr = 0;
    rx_busy = false;
    rx_cur = None;
    rx_cur_checked = false;
    rx_rr = 0;
    congested = false;
    uncongested_hook = (fun () -> ());
    s_tx_frames = 0;
    s_tx_bytes = 0;
    s_rx_frames = 0;
    s_rx_bytes = 0;
    s_no_ctx = 0;
    s_overflow = 0;
    s_truncated = 0;
    s_faults = 0;
  }

let config t = t.cfg
let contexts t = Array.length t.ctxs
let dma t = t.dma

let ctx t i =
  if i < 0 || i >= Array.length t.ctxs then
    invalid_arg "Dp: context out of range";
  t.ctxs.(i)

let dma_ctx t (c : ctx) = t.dma_context_base + c.id

(* Structured datapath events, tagged with the NIC's config name. *)
let trace_event t ?(args = []) ~tid name =
  if Sim.Trace.tag_enabled t.cfg.Nic_config.name then
    Sim.Trace.instant ~time:(Sim.Engine.now t.engine)
      ~tag:t.cfg.Nic_config.name ~tid ~args name

let fault t (c : ctx) dir f =
  t.s_faults <- t.s_faults + 1;
  c.faulted <- true;
  trace_event t ~tid:c.id
    ~args:
      [
        ("ctx", Sim.Trace.Int c.id);
        ("dir", Sim.Trace.Str (match dir with Tx -> "tx" | Rx -> "rx"));
      ]
    "protection-fault";
  t.on_fault ~ctx:c.id dir f

(* Congestion watermarks: pause above 3/4, resume below 1/2. *)
let hi_watermark t = Pkt_buf.capacity t.rx_buf * 3 / 4
let lo_watermark t = Pkt_buf.capacity t.rx_buf / 2

let release_rx_bytes t bytes =
  Pkt_buf.release t.rx_buf ~bytes;
  if t.congested && Pkt_buf.in_use t.rx_buf <= lo_watermark t then begin
    t.congested <- false;
    t.uncongested_hook ()
  end

let reserve_rx_bytes t bytes =
  if Pkt_buf.try_reserve t.rx_buf ~bytes then begin
    if Pkt_buf.in_use t.rx_buf >= hi_watermark t then t.congested <- true;
    true
  end
  else false

(* Sequence-number continuity check (paper section 3.3). *)
let seqno_ok ~expected ~got = got = expected mod seqno_mod

(* The NIC-side admission point for guest descriptors: a descriptor that
   passes continuity here is the one the hypervisor validated and
   stamped (Hyp.enqueue), so cdna_flow treats this check as the
   sanitizer on the device datapath. *)
let[@cdna.sanitizer] check_seqno t c dir (desc : Memory.Dma_desc.t) =
  if not t.cfg.Nic_config.seqno_checking then true
  else begin
    let expected =
      match dir with Tx -> c.tx_expected_seqno | Rx -> c.rx_expected_seqno
    in
    if seqno_ok ~expected ~got:desc.seqno then begin
      (match dir with
      | Tx -> c.tx_expected_seqno <- (expected + 1) mod seqno_mod
      | Rx -> c.rx_expected_seqno <- (expected + 1) mod seqno_mod);
      true
    end
    else begin
      fault t c dir
        (Seqno_mismatch { expected = expected mod seqno_mod; got = desc.seqno });
      false
    end
  end

let writeback_status t (c : ctx) =
  match c.status_addr with
  | None -> ()
  | Some addr ->
      let b = Bytes.create 8 in
      let put32 off v =
        for i = 0 to 3 do
          Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
        done
      in
      put32 0 (c.tx_cons land 0xFFFFFFFF);
      put32 4 (c.rx_cons land 0xFFFFFFFF);
      Bus.Dma_engine.write t.dma ~context:(dma_ctx t c) ~addr ~data:b
        (fun _ -> ())

(* ---------- Transmit pipeline ---------- *)

let ensure_capacity buf ~len ~keep =
  if Bytes.length buf >= len then buf
  else begin
    let cap = max len (max 2048 (2 * Bytes.length buf)) in
    let b = Bytes.create cap in
    if keep > 0 then Bytes.blit buf 0 b 0 keep;
    b
  end

let tx_work_available (c : ctx) =
  c.active && (not c.faulted) && c.tx_ring <> None
  && c.tx_fetch_next < c.tx_prod

(* Round-robin pick of the next context with transmit work: the CDNA NIC
   "services all of the hardware contexts fairly". *)
let pick_ctx t ~rr ~has_work =
  let n = Array.length t.ctxs in
  let rec scan i remaining =
    if remaining = 0 then None
    else begin
      let c = t.ctxs.(i mod n) in
      if has_work c then Some c else scan (i + 1) (remaining - 1)
    end
  in
  scan (rr + 1) n

let rec run_tx_fetch t =
  if t.fetch_busy || Queue.length t.ready >= ready_depth then ()
  else
    match pick_ctx t ~rr:t.tx_rr ~has_work:tx_work_available with
    | None -> ()
    | Some c ->
        let first_fragment = c.sg_frag_descs = 0 in
        (* The reservation itself is the admission check: if it fails the
           fetch stage stalls until the wire stage frees buffer space (a
           wire completion re-runs the fetch stage). Ignoring a failed
           reservation here would make the wire stage's later release
           underflow the shared-buffer accounting. *)
        if
          first_fragment
          && not (Pkt_buf.try_reserve t.tx_buf ~bytes:max_frame_bytes)
        then () (* stalled until the wire stage frees buffer space *)
        else begin
          t.tx_rr <- c.id;
          t.fetch_busy <- true;
          t.fetch_ctx <- Some c.id;
          t.fetch_checked <- false;
          let epoch = c.epoch in
          let idx = c.tx_fetch_next in
          c.tx_fetch_next <- idx + 1;
          let ring = Option.get c.tx_ring in
          let daddr = Ring.slot_addr ring idx in
          Bus.Dma_engine.access t.dma ~context:(dma_ctx t c) ~addr:daddr
            ~len:t.cfg.Nic_config.desc_layout.Memory.Desc_layout.size
            (fun res -> fetch_descriptor_done t c ~epoch ~daddr res)
        end

and abandon_fetch t c =
  c.sg_len <- 0;
  c.sg_frag_descs <- 0;
  Pkt_buf.release t.tx_buf ~bytes:max_frame_bytes;
  t.fetch_busy <- false;
  t.fetch_ctx <- None;
  run_tx_fetch t

and fetch_descriptor_done t c ~epoch ~daddr res =
  if c.epoch <> epoch then abandon_fetch t c
  else
    match res with
    | Error e ->
        fault t c Tx (Dma_fault e);
        abandon_fetch t c
    | Ok () ->
        let desc =
          Memory.Desc_layout.read t.cfg.Nic_config.desc_layout t.mem ~at:daddr
        in
        if not (check_seqno t c Tx desc) then abandon_fetch t c
        else begin
          t.fetch_checked <- true;
          let fetch_payload k =
            if t.cfg.Nic_config.materialize_payloads then begin
              (* Fragment bytes land directly in the assembly buffer at
                 completion time; grow it before submitting, never while
                 the DMA is in flight. *)
              c.sg_buf <-
                ensure_capacity c.sg_buf ~len:(c.sg_len + desc.len)
                  ~keep:c.sg_len;
              Bus.Dma_engine.read_into t.dma ~context:(dma_ctx t c)
                ~addr:desc.addr ~len:desc.len ~dst:c.sg_buf ~pos:c.sg_len k
            end
            else
              Bus.Dma_engine.access t.dma ~context:(dma_ctx t c)
                ~addr:desc.addr ~len:desc.len k
          in
          fetch_payload (fun res ->
              if c.epoch <> epoch then abandon_fetch t c
              else
                match res with
                | Error e ->
                    fault t c Tx (Dma_fault e);
                    abandon_fetch t c
                | Ok () ->
                    if t.cfg.Nic_config.materialize_payloads then
                      c.sg_len <- c.sg_len + desc.len;
                    c.sg_frag_descs <- c.sg_frag_descs + 1;
                    if desc.flags land Memory.Dma_desc.flag_end_of_packet = 0
                    then begin
                      (* Scatter/gather: more fragments follow. Release
                         the fetch engine; the next descriptor of this
                         packet (or another context's work) proceeds. *)
                      t.fetch_busy <- false;
                      t.fetch_ctx <- None;
                      run_tx_fetch t
                    end
                    else
                      match Queue.take_opt c.tx_meta with
                      | None ->
                          fault t c Tx Missing_meta;
                          abandon_fetch t c
                      | Some frame ->
                          (* The packet is fully assembled. The frame
                             carries whatever bytes were actually in host
                             memory; a corrupt descriptor shows up at the
                             receiver as a payload mismatch. One copy per
                             packet here, since the frame outlives the
                             reusable assembly buffer. *)
                          let total = c.sg_len in
                          let n_descs = c.sg_frag_descs in
                          c.sg_len <- 0;
                          c.sg_frag_descs <- 0;
                          let frame =
                            if t.cfg.Nic_config.materialize_payloads then
                              {
                                frame with
                                Ethernet.Frame.data =
                                  Some (Bytes.sub c.sg_buf 0 total);
                              }
                            else frame
                          in
                          (* Adjust the optimistic reservation to the real
                             footprint (TSO super-frames can exceed it). *)
                          let actual = Ethernet.Frame.wire_bytes frame + 20 in
                          let reserved =
                            if actual <= max_frame_bytes then begin
                              Pkt_buf.release t.tx_buf
                                ~bytes:(max_frame_bytes - actual);
                              actual
                            end
                            else if
                              Pkt_buf.try_reserve t.tx_buf
                                ~bytes:(actual - max_frame_bytes)
                            then actual
                            else max_frame_bytes
                          in
                          Queue.push
                            (c.id, epoch, frame, reserved, n_descs)
                            t.ready;
                          t.fetch_busy <- false;
                          t.fetch_ctx <- None;
                          run_tx_wire t;
                          run_tx_fetch t)
        end

and run_tx_wire t =
  match t.link with
  | None -> ()
  | Some (link, side) ->
      if t.wire_busy then ()
      else begin
        match Queue.take_opt t.ready with
        | None -> ()
        | Some (cid, epoch, frame, reserved, n_descs) ->
            let c = t.ctxs.(cid) in
            if c.epoch <> epoch then begin
              (* Context revoked while staged: shut down the pending op. *)
              Pkt_buf.release t.tx_buf ~bytes:reserved;
              run_tx_wire t
            end
            else begin
              t.wire_busy <- true;
              t.wire_cur <- Some (cid, epoch, n_descs);
              Ethernet.Link.send link ~from:side frame
                ~on_wire_free:(fun () ->
                  t.wire_busy <- false;
                  t.wire_cur <- None;
                  Pkt_buf.release t.tx_buf ~bytes:reserved;
                  t.s_tx_frames <- t.s_tx_frames + 1;
                  t.s_tx_bytes <- t.s_tx_bytes + frame.Ethernet.Frame.payload_len;
                  if c.epoch = epoch then begin
                    trace_event t ~tid:c.id
                      ~args:
                        [
                          ("ctx", Sim.Trace.Int c.id);
                          ("seq", Sim.Trace.Int frame.Ethernet.Frame.seq);
                          ( "len",
                            Sim.Trace.Int frame.Ethernet.Frame.payload_len );
                        ]
                      "tx";
                    c.tx_frames <- c.tx_frames + 1;
                    c.tx_cons <- c.tx_cons + n_descs;
                    c.tx_completed_unread <- c.tx_completed_unread + n_descs;
                    writeback_status t c;
                    t.notify ~ctx:c.id
                  end;
                  run_tx_wire t;
                  run_tx_fetch t)
            end
      end

(* ---------- Receive path ---------- *)

let rx_work_available (c : ctx) =
  c.active && (not c.faulted) && c.rx_ring <> None
  && (not (Queue.is_empty c.rx_backlog))
  && c.rx_use_next < c.rx_prod

let rec run_rx t =
  if t.rx_busy then ()
  else
    match pick_ctx t ~rr:t.rx_rr ~has_work:rx_work_available with
    | None -> ()
    | Some c ->
        t.rx_rr <- c.id;
        t.rx_busy <- true;
        let frame, epoch = Queue.pop c.rx_backlog in
        if epoch <> c.epoch then begin
          (* Stale after revocation (normally cleared there already). *)
          release_rx_bytes t (Ethernet.Frame.wire_bytes frame);
          t.rx_busy <- false;
          run_rx t
        end
        else begin
          let idx = c.rx_use_next in
          c.rx_use_next <- idx + 1;
          t.rx_cur <- Some (c.id, epoch);
          t.rx_cur_checked <- false;
          let ring = Option.get c.rx_ring in
          let daddr = Ring.slot_addr ring idx in
          Bus.Dma_engine.access t.dma ~context:(dma_ctx t c) ~addr:daddr
            ~len:t.cfg.Nic_config.desc_layout.Memory.Desc_layout.size
            (fun res -> rx_descriptor_done t c ~epoch ~idx ~daddr ~frame res)
        end

and rx_abandon t frame =
  release_rx_bytes t (Ethernet.Frame.wire_bytes frame);
  t.rx_busy <- false;
  t.rx_cur <- None;
  run_rx t

and rx_descriptor_done t c ~epoch ~idx ~daddr ~frame res =
  if c.epoch <> epoch then rx_abandon t frame
  else
    match res with
    | Error e ->
        fault t c Rx (Dma_fault e);
        rx_abandon t frame
    | Ok () ->
        let desc =
          Memory.Desc_layout.read t.cfg.Nic_config.desc_layout t.mem ~at:daddr
        in
        if not (check_seqno t c Rx desc) then rx_abandon t frame
        else begin
          t.rx_cur_checked <- true;
          let len = min frame.Ethernet.Frame.payload_len desc.len in
          let deliver res =
            if c.epoch <> epoch then rx_abandon t frame
            else
              match res with
              | Error e ->
                  fault t c Rx (Dma_fault e);
                  rx_abandon t frame
              | Ok () ->
                  release_rx_bytes t (Ethernet.Frame.wire_bytes frame);
                  trace_event t ~tid:c.id
                    ~args:
                      [
                        ("ctx", Sim.Trace.Int c.id);
                        ("seq", Sim.Trace.Int frame.Ethernet.Frame.seq);
                        ("len", Sim.Trace.Int len);
                      ]
                    "rx";
                  c.rx_cons <- c.rx_cons + 1;
                  c.rx_frames <- c.rx_frames + 1;
                  t.s_rx_frames <- t.s_rx_frames + 1;
                  (* Only the bytes that fit the posted buffer were
                     delivered; a short descriptor truncates the frame. *)
                  t.s_rx_bytes <- t.s_rx_bytes + len;
                  if len < frame.Ethernet.Frame.payload_len then
                    t.s_truncated <- t.s_truncated + 1;
                  Queue.push (idx, frame) c.rx_completions;
                  writeback_status t c;
                  t.notify ~ctx:c.id;
                  t.rx_busy <- false;
                  t.rx_cur <- None;
                  run_rx t
          in
          if t.cfg.Nic_config.materialize_payloads then begin
            (* Deliver through the per-NIC staging buffer: spec-only
               frames generate their payload straight into it, frames
               that already carry bytes are staged (and truncated to the
               posted buffer) without a fresh allocation. [rx_busy] keeps
               the scratch untouched until [deliver] fires. *)
            (match frame.Ethernet.Frame.data with
            | None ->
                t.rx_scratch <- ensure_capacity t.rx_scratch ~len ~keep:0;
                Ethernet.Frame.blit_payload ~seed:frame.Ethernet.Frame.payload_seed
                  ~len t.rx_scratch ~pos:0
            | Some data ->
                t.rx_scratch <- ensure_capacity t.rx_scratch ~len ~keep:0;
                Bytes.blit data 0 t.rx_scratch 0 len);
            Bus.Dma_engine.write_from t.dma ~context:(dma_ctx t c)
              ~addr:desc.addr ~src:t.rx_scratch ~pos:0 ~len deliver
          end
          else
            Bus.Dma_engine.access t.dma ~context:(dma_ctx t c) ~addr:desc.addr
              ~len deliver
        end

let on_rx_frame t frame =
  let dst = frame.Ethernet.Frame.dst in
  let target =
    match Hashtbl.find_opt t.mac_table dst with
    | Some i when t.ctxs.(i).active -> Some t.ctxs.(i)
    | Some _ | None -> (
        match t.promiscuous with
        | Some i when t.ctxs.(i).active -> Some t.ctxs.(i)
        | Some _ | None -> None)
  in
  match target with
  | None -> t.s_no_ctx <- t.s_no_ctx + 1
  | Some c ->
      if reserve_rx_bytes t (Ethernet.Frame.wire_bytes frame) then begin
        Queue.push (frame, c.epoch) c.rx_backlog;
        run_rx t
      end
      else t.s_overflow <- t.s_overflow + 1

let attach_link t link ~side =
  t.link <- Some (link, side);
  Ethernet.Link.attach link side (fun frame -> on_rx_frame t frame)

(* ---------- Context control ---------- *)

let activate t ~ctx:i ~mac =
  let c = ctx t i in
  if c.active then invalid_arg "Dp.activate: context already active";
  trace_event t ~tid:i
    ~args:
      [
        ("ctx", Sim.Trace.Int i);
        ("mac", Sim.Trace.Str (Ethernet.Mac_addr.to_string mac));
      ]
    "activate";
  c.active <- true;
  c.faulted <- false;
  c.mac <- Some mac;
  Hashtbl.replace t.mac_table mac i;
  run_tx_fetch t;
  run_rx t

let deactivate t ~ctx:i =
  let c = ctx t i in
  if c.active || c.faulted then begin
    (match c.mac with
    | Some mac
      when match Hashtbl.find_opt t.mac_table mac with
           | Some owner -> Int.equal owner i
           | None -> false ->
        Hashtbl.remove t.mac_table mac
    | Some _ | None -> ());
    c.active <- false;
    c.faulted <- false;
    c.mac <- None;
    c.epoch <- c.epoch + 1;
    (* A packet abandoned mid-assembly holds a transmit-buffer
       reservation; release it here unless an in-flight fetch for this
       context will do so when its completion observes the epoch bump. *)
    let fetch_serves_this_ctx =
      match t.fetch_ctx with Some j -> Int.equal j c.id | None -> false
    in
    if c.sg_frag_descs > 0 && not fetch_serves_this_ctx then
      Pkt_buf.release t.tx_buf ~bytes:max_frame_bytes;
    Queue.iter
      (fun (frame, _) ->
        release_rx_bytes t (Ethernet.Frame.wire_bytes frame))
      c.rx_backlog;
    Queue.clear c.rx_backlog;
    Queue.clear c.tx_meta;
    c.sg_len <- 0;
    c.sg_frag_descs <- 0;
    Queue.clear c.rx_completions;
    c.tx_completed_unread <- 0;
    c.tx_ring <- None;
    c.rx_ring <- None;
    c.status_addr <- None;
    c.tx_prod <- 0;
    c.tx_fetch_next <- 0;
    c.tx_cons <- 0;
    c.rx_prod <- 0;
    c.rx_use_next <- 0;
    c.rx_cons <- 0;
    c.tx_expected_seqno <- 0;
    c.rx_expected_seqno <- 0
  end

(* ---------- Context paging (save/restore) ---------- *)

type saved_ctx = {
  sv_mac : Ethernet.Mac_addr.t option;
  sv_tx_ring : Ring.t option;
  sv_rx_ring : Ring.t option;
  sv_status_addr : Memory.Addr.t option;
  sv_tx_prod : int;
  sv_tx_fetch_next : int;
  sv_tx_cons : int;
  sv_rx_prod : int;
  sv_rx_use_next : int;
  sv_rx_cons : int;
  sv_tx_expected_seqno : int;
  sv_rx_expected_seqno : int;
  sv_tx_meta : Ethernet.Frame.t list;
  sv_tx_completed_unread : int;
  sv_rx_completions : (int * Ethernet.Frame.t) list;
  sv_tx_frames : int;
  sv_rx_frames : int;
}

(* Snapshot a context's architectural state so the hypervisor can page it
   out and later restore it on any free slot, without losing transmit
   work. Read-only: the caller revokes/deactivates the slot afterwards,
   and the normal epoch machinery unwinds whatever is in flight.

   Transmit must be lossless — guests have no retransmit path — so the
   fetch cursor and expected seqno are rolled back over everything the
   engine consumed but did not finish wiring: staged ready-FIFO packets
   (their metas are re-staged for the restore), partially assembled
   scatter/gather fragments, and the in-flight descriptor fetch if any.
   The one frame currently on the wire is instead credited as completed:
   its bits are already leaving the NIC, and its completion callback will
   observe the epoch bump and skip the accounting we do here. Receive is
   allowed to be lossy (peers retransmit); only an in-flight descriptor
   fetch that has not yet consumed a seqno rolls the cursor back, keeping
   cursor and seqno in lockstep. *)
let[@cdna.acquires "dp-image"] save_context t ~ctx:i =
  let c = ctx t i in
  if not c.active then invalid_arg "Dp.save_context: context not active";
  if c.faulted then invalid_arg "Dp.save_context: context faulted";
  let ready_descs = ref 0 and ready_frames = ref [] in
  Queue.iter
    (fun (cid, ep, frame, _reserved, n) ->
      if Int.equal cid i && ep = c.epoch then begin
        ready_descs := !ready_descs + n;
        ready_frames := frame :: !ready_frames
      end)
    t.ready;
  let ready_frames = List.rev !ready_frames in
  let in_fetch =
    t.fetch_busy
    && match t.fetch_ctx with Some j -> Int.equal j i | None -> false
  in
  let rollback_cursor =
    !ready_descs + c.sg_frag_descs + (if in_fetch then 1 else 0)
  in
  let rollback_seq =
    !ready_descs + c.sg_frag_descs
    + (if in_fetch && t.fetch_checked then 1 else 0)
  in
  let rx_unchecked =
    match t.rx_cur with
    | Some (j, ep) -> Int.equal j i && ep = c.epoch && not t.rx_cur_checked
    | None -> false
  in
  let wire_descs =
    match t.wire_cur with
    | Some (j, ep, n) when Int.equal j i && ep = c.epoch -> n
    | Some _ | None -> 0
  in
  let seq_back s r = (((s - r) mod seqno_mod) + seqno_mod) mod seqno_mod in
  trace_event t ~tid:i
    ~args:
      [
        ("ctx", Sim.Trace.Int i);
        ("rollback_descs", Sim.Trace.Int rollback_cursor);
      ]
    "ctx-save";
  {
    sv_mac = c.mac;
    sv_tx_ring = c.tx_ring;
    sv_rx_ring = c.rx_ring;
    sv_status_addr = c.status_addr;
    sv_tx_prod = c.tx_prod;
    sv_tx_fetch_next = c.tx_fetch_next - rollback_cursor;
    sv_tx_cons = c.tx_cons + wire_descs;
    sv_rx_prod = c.rx_prod;
    sv_rx_use_next = c.rx_use_next - (if rx_unchecked then 1 else 0);
    sv_rx_cons = c.rx_cons;
    sv_tx_expected_seqno = seq_back c.tx_expected_seqno rollback_seq;
    sv_rx_expected_seqno = c.rx_expected_seqno;
    sv_tx_meta = ready_frames @ List.of_seq (Queue.to_seq c.tx_meta);
    sv_tx_completed_unread = c.tx_completed_unread + wire_descs;
    sv_rx_completions = List.of_seq (Queue.to_seq c.rx_completions);
    sv_tx_frames = c.tx_frames + (if wire_descs > 0 then 1 else 0);
    sv_rx_frames = c.rx_frames;
  }

(* Install a saved image on a fully reset slot. The ring geometry, the
   cursors and the expected seqnos are written directly (hardware-side
   restore, not driver doorbells — the doorbell paths reject producer
   rewinds by design), then the engines are kicked to resume exactly
   where the save left off. *)
let[@cdna.releases "dp-image@1"] restore_context t ~ctx:i s =
  let c = ctx t i in
  if c.active || c.faulted then
    invalid_arg "Dp.restore_context: slot not reset";
  trace_event t ~tid:i ~args:[ ("ctx", Sim.Trace.Int i) ] "ctx-restore";
  c.active <- true;
  c.faulted <- false;
  c.mac <- s.sv_mac;
  (match s.sv_mac with
  | Some mac -> Hashtbl.replace t.mac_table mac i
  | None -> ());
  c.tx_ring <- s.sv_tx_ring;
  c.rx_ring <- s.sv_rx_ring;
  c.status_addr <- s.sv_status_addr;
  c.tx_prod <- s.sv_tx_prod;
  c.tx_fetch_next <- s.sv_tx_fetch_next;
  c.tx_cons <- s.sv_tx_cons;
  c.rx_prod <- s.sv_rx_prod;
  c.rx_use_next <- s.sv_rx_use_next;
  c.rx_cons <- s.sv_rx_cons;
  c.tx_expected_seqno <- s.sv_tx_expected_seqno;
  c.rx_expected_seqno <- s.sv_rx_expected_seqno;
  List.iter (fun f -> Queue.push f c.tx_meta) s.sv_tx_meta;
  c.tx_completed_unread <- s.sv_tx_completed_unread;
  List.iter (fun it -> Queue.push it c.rx_completions) s.sv_rx_completions;
  c.tx_frames <- s.sv_tx_frames;
  c.rx_frames <- s.sv_rx_frames;
  (* Completions that were pending at save time may have had their
     interrupt consumed before the swap; re-notify so the driver drains
     them (coalescing absorbs any redundancy). *)
  if
    s.sv_tx_completed_unread > 0
    || (match s.sv_rx_completions with [] -> false | _ :: _ -> true)
  then t.notify ~ctx:i;
  run_tx_fetch t;
  run_rx t

let is_active t ~ctx:i = (ctx t i).active
let mac_of t ~ctx:i = (ctx t i).mac

let set_promiscuous t ~ctx:i =
  (match i with Some i -> ignore (ctx t i) | None -> ());
  t.promiscuous <- i

let is_faulted t ~ctx:i = (ctx t i).faulted

let set_tx_ring t ~ctx:i ring = (ctx t i).tx_ring <- Some ring
let set_rx_ring t ~ctx:i ring = (ctx t i).rx_ring <- Some ring
let set_status_addr t ~ctx:i addr = (ctx t i).status_addr <- Some addr

let set_expected_seqno t ~ctx:i ~tx ~rx =
  let c = ctx t i in
  c.tx_expected_seqno <- tx mod seqno_mod;
  c.rx_expected_seqno <- rx mod seqno_mod

let tx_doorbell t ~ctx:i ~prod =
  let c = ctx t i in
  if prod < c.tx_prod then invalid_arg "Dp.tx_doorbell: producer went backwards";
  c.tx_prod <- prod;
  run_tx_fetch t

let rx_doorbell t ~ctx:i ~prod =
  let c = ctx t i in
  if prod < c.rx_prod then invalid_arg "Dp.rx_doorbell: producer went backwards";
  c.rx_prod <- prod;
  run_rx t

let stage_tx_meta t ~ctx:i frame = Queue.push frame (ctx t i).tx_meta

let take_tx_completions t ~ctx:i =
  let c = ctx t i in
  let n = c.tx_completed_unread in
  c.tx_completed_unread <- 0;
  n

let take_rx_completions t ~ctx:i ~max =
  let c = ctx t i in
  let rec drain n acc =
    if n = 0 then List.rev acc
    else
      match Queue.take_opt c.rx_completions with
      | None -> List.rev acc
      | Some item -> drain (n - 1) (item :: acc)
  in
  drain max []

let rx_completions_pending t ~ctx:i = Queue.length (ctx t i).rx_completions
let rx_congested t = t.congested
let set_uncongested_hook t f = t.uncongested_hook <- f

let stats t =
  {
    tx_frames = t.s_tx_frames;
    tx_bytes = t.s_tx_bytes;
    rx_frames = t.s_rx_frames;
    rx_bytes = t.s_rx_bytes;
    rx_no_ctx_drops = t.s_no_ctx;
    rx_overflow_drops = t.s_overflow;
    rx_truncated = t.s_truncated;
    faults = t.s_faults;
  }

let ctx_tx_frames t ~ctx:i = (ctx t i).tx_frames
let ctx_rx_frames t ~ctx:i = (ctx t i).rx_frames
let tx_buffer_in_use t = Pkt_buf.in_use t.tx_buf
let rx_buffer_in_use t = Pkt_buf.in_use t.rx_buf

let register_metrics t m ~labels =
  let g name read = Sim.Metrics.gauge m ~labels name read in
  g "nic.tx_frames" (fun () -> t.s_tx_frames);
  g "nic.tx_bytes" (fun () -> t.s_tx_bytes);
  g "nic.rx_frames" (fun () -> t.s_rx_frames);
  g "nic.rx_bytes" (fun () -> t.s_rx_bytes);
  g "nic.rx_no_ctx_drops" (fun () -> t.s_no_ctx);
  g "nic.rx_overflow_drops" (fun () -> t.s_overflow);
  g "nic.rx_truncated" (fun () -> t.s_truncated);
  g "nic.faults" (fun () -> t.s_faults);
  Array.iter
    (fun c ->
      let labels = labels @ [ ("ctx", string_of_int c.id) ] in
      Sim.Metrics.gauge m ~labels "nic.ctx.tx_frames" (fun () -> c.tx_frames);
      Sim.Metrics.gauge m ~labels "nic.ctx.rx_frames" (fun () -> c.rx_frames))
    t.ctxs
