(** Interrupt coalescing.

    Rate-limits interrupt delivery the way NIC interrupt-throttling
    registers do: after firing, further requests within [min_gap] are
    merged into a single deferred firing. This is what keeps the paper's
    interrupt rates in the 5-14k/s range at 90-150k packets/s. *)

type t

(** [create engine ~min_gap ~fire] — [fire] is called for each delivered
    (possibly merged) interrupt. *)
val create : Sim.Engine.t -> min_gap:Sim.Time.t -> fire:(unit -> unit) -> t

(** Request an interrupt. Fires immediately if the gap has passed,
    otherwise schedules a merged firing at the earliest allowed time. *)
val request : t -> unit

(** Total {!request} calls. [requests t = fired t + suppressed t] holds at
    every instant. *)
val requests : t -> int

(** Interrupts delivered or committed (a scheduled firing counts as soon
    as it is committed; it equals actual deliveries once the engine
    drains). *)
val fired : t -> int

(** Requests merged into an already-pending delivery. *)
val suppressed : t -> int

(** Expose the three counters as gauges ([coalesce.requests] /
    [coalesce.fired] / [coalesce.suppressed]) under [labels]. *)
val register_metrics :
  t -> Sim.Metrics.t -> labels:(string * string) list -> unit
