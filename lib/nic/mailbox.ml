let mailboxes_per_context = 24
let partition_bytes = 4096

type t = {
  n : int;
  (* Full partition contents, one int per 32-bit word. *)
  words : int array array;
  mutable ctx_vector : int;
  box_vectors : int array;
  on_event : unit -> unit;
  mutable events : int;
}

let create ~contexts ~on_event =
  if contexts <= 0 || contexts > 62 then
    invalid_arg "Mailbox.create: contexts out of range";
  {
    n = contexts;
    words = Array.init contexts (fun _ -> Array.make (partition_bytes / 4) 0);
    ctx_vector = 0;
    box_vectors = Array.make contexts 0;
    on_event;
    events = 0;
  }

let contexts t = t.n

let check_ctx t ctx =
  if ctx < 0 || ctx >= t.n then invalid_arg "Mailbox: context out of range"

let check_mbox mbox =
  if mbox < 0 || mbox >= mailboxes_per_context then
    invalid_arg "Mailbox: mailbox index out of range"

let region t ~ctx =
  check_ctx t ctx;
  let words = t.words.(ctx) in
  Bus.Mmio.region ~size:partition_bytes
    ~read:(fun ~offset -> words.(offset / 4))
    ~write:(fun ~offset v ->
      let w = offset / 4 in
      words.(w) <- v;
      if w < mailboxes_per_context then begin
        (* Snooping hardware: update the event hierarchy and fire. *)
        t.box_vectors.(ctx) <- t.box_vectors.(ctx) lor (1 lsl w);
        t.ctx_vector <- t.ctx_vector lor (1 lsl ctx);
        t.events <- t.events + 1;
        t.on_event ()
      end)

let value t ~ctx ~mbox =
  check_ctx t ctx;
  check_mbox mbox;
  t.words.(ctx).(mbox)

let poke t ~ctx ~mbox v =
  check_ctx t ctx;
  check_mbox mbox;
  t.words.(ctx).(mbox) <- v

let pending_contexts t = t.ctx_vector

let pending_boxes t ~ctx =
  check_ctx t ctx;
  t.box_vectors.(ctx)

let lowest_bit v =
  let rec scan i = if v land (1 lsl i) <> 0 then i else scan (i + 1) in
  if v = 0 then None else Some (scan 0)

let next_event t =
  match lowest_bit t.ctx_vector with
  | None -> None
  | Some ctx -> (
      match lowest_bit t.box_vectors.(ctx) with
      | Some mbox -> Some (ctx, mbox)
      | None -> None (* inconsistent hierarchy; unreachable *))

let clear_event t ~ctx ~mbox =
  check_ctx t ctx;
  check_mbox mbox;
  t.box_vectors.(ctx) <- t.box_vectors.(ctx) land lnot (1 lsl mbox);
  if t.box_vectors.(ctx) = 0 then
    t.ctx_vector <- t.ctx_vector land lnot (1 lsl ctx)

let clear_context t ~ctx =
  check_ctx t ctx;
  t.box_vectors.(ctx) <- 0;
  t.ctx_vector <- t.ctx_vector land lnot (1 lsl ctx)

type saved_partition = { saved_words : int array; saved_boxes : int }

let save_partition t ~ctx =
  check_ctx t ctx;
  let s =
    { saved_words = Array.copy t.words.(ctx); saved_boxes = t.box_vectors.(ctx) }
  in
  (* Scrub the partition so the next resident guest cannot read the
     victim's words (page isolation), and drop its pending events from
     the live hierarchy — they travel with the save area. *)
  Array.fill t.words.(ctx) 0 (Array.length t.words.(ctx)) 0;
  clear_context t ~ctx;
  s

let restore_partition t ~ctx s =
  check_ctx t ctx;
  Array.blit s.saved_words 0 t.words.(ctx) 0 (Array.length s.saved_words);
  if s.saved_boxes <> 0 then begin
    t.box_vectors.(ctx) <- s.saved_boxes;
    t.ctx_vector <- t.ctx_vector lor (1 lsl ctx);
    (* Re-arm the firmware's event processing for the restored pending
       mailboxes. The hardware-event counter is not bumped: no new PIO
       write happened. *)
    t.on_event ()
  end

let events_generated t = t.events

let register_metrics t m ~labels =
  Sim.Metrics.gauge m ~labels "mailbox.events" (fun () -> t.events)
