type t = {
  dp : Dp.t;
  irq : Bus.Irq.t;
  coalescer : Coalesce.t;
}

let create engine ~mem ~dma ?(config = Nic_config.intel) ~irq ~dma_context () =
  let coalescer = ref None in
  let notify ~ctx:_ =
    match !coalescer with Some c -> Coalesce.request c | None -> ()
  in
  let on_fault ~ctx:_ _dir _fault = () in
  let dp =
    Dp.create engine ~mem ~dma ~config ~contexts:1
      ~dma_context_base:dma_context ~notify ~on_fault ()
  in
  let c =
    Coalesce.create engine ~min_gap:config.Nic_config.intr_min_gap
      ~fire:(fun () -> Bus.Irq.assert_line irq)
  in
  coalescer := Some c;
  { dp; irq; coalescer = c }

let attach_link t link ~side = Dp.attach_link t.dp link ~side

let enable t ~mac =
  Dp.activate t.dp ~ctx:0 ~mac;
  Dp.set_promiscuous t.dp ~ctx:(Some 0)

let disable t =
  Dp.set_promiscuous t.dp ~ctx:None;
  Dp.deactivate t.dp ~ctx:0

let driver_if t : Driver_if.t =
  {
    describe = "intel-e1000";
    desc_layout = (Dp.config t.dp).Nic_config.desc_layout;
    setup_tx_ring = (fun ring -> Dp.set_tx_ring t.dp ~ctx:0 ring);
    setup_rx_ring = (fun ring -> Dp.set_rx_ring t.dp ~ctx:0 ring);
    setup_status = (fun addr -> Dp.set_status_addr t.dp ~ctx:0 addr);
    tx_doorbell = (fun prod -> Dp.tx_doorbell t.dp ~ctx:0 ~prod);
    rx_doorbell = (fun prod -> Dp.rx_doorbell t.dp ~ctx:0 ~prod);
    stage_tx_meta = (fun frame -> Dp.stage_tx_meta t.dp ~ctx:0 frame);
    take_tx_completions = (fun () -> Dp.take_tx_completions t.dp ~ctx:0);
    take_rx_completions =
      (fun ~max -> Dp.take_rx_completions t.dp ~ctx:0 ~max);
    rx_completions_pending = (fun () -> Dp.rx_completions_pending t.dp ~ctx:0);
  }

let dp t = t.dp
let stats t = Dp.stats t.dp
let irq t = t.irq
let set_uncongested_hook t f = Dp.set_uncongested_hook t.dp f
let rx_congested t = Dp.rx_congested t.dp

let register_metrics t m ~labels =
  Dp.register_metrics t.dp m ~labels;
  Coalesce.register_metrics t.coalescer m ~labels
