(** NIC firmware: mailbox event decoding.

    Models the RiceNIC embedded-processor firmware of paper section 4: PIO
    writes into a context's mailbox partition raise hardware events; the
    firmware loop decodes the two-level bit-vector hierarchy (which
    context, which mailbox), reads the written value from SRAM, and acts on
    the datapath — setting up rings or publishing producer indices. Each
    event costs [process_cost] of NIC-processor time; events are cleared
    per context as they are handled.

    Mailbox word assignments (driver-side protocol): ring geometry must be
    written before the base address, which commits the ring. *)

val mbox_tx_ring_slots : int
val mbox_tx_ring_base : int
val mbox_rx_ring_slots : int
val mbox_rx_ring_base : int
val mbox_status_addr : int
val mbox_tx_prod : int
val mbox_rx_prod : int

type t

(** [create engine ~dp ~process_cost ()] builds the firmware and its
    mailbox SRAM (one partition per datapath context). *)
val create : Sim.Engine.t -> dp:Dp.t -> process_cost:Sim.Time.t -> unit -> t

val mailbox : t -> Mailbox.t

(** The MMIO region of one context's partition, for mapping into the
    owning domain. *)
val region : t -> ctx:int -> Bus.Mmio.region

(** [driver_if t ~ctx ~mapping] is the driver-facing interface of context
    [ctx], performing its hardware writes as PIO through [mapping] (so a
    revoked mapping faults, and every write goes through the mailbox event
    machinery). *)
val driver_if : t -> ctx:int -> mapping:Bus.Mmio.mapping -> Driver_if.t

(** Opaque image of the firmware's per-context scratch (last ring geometry
    written), for hypervisor-mediated context paging. *)
type saved_scratch

(** [save_scratch t ~ctx] copies the context's scratch into a save area and
    zeroes it, so the slot's next occupant starts from reset state. *)
val save_scratch : t -> ctx:int -> saved_scratch

val restore_scratch : t -> ctx:int -> saved_scratch -> unit

(** Mailbox events processed so far. *)
val events_processed : t -> int
