(** Multi-context NIC datapath.

    The hardware engine shared by every NIC model in this repository:

    - the conventional {!Intel_nic} and {!Ricenic} instantiate it with one
      context (plus promiscuous receive, for the driver-domain bridge);
    - the CDNA NIC instantiates it with 32 contexts, sequence-number
      checking and bit-vector interrupt delivery (see the [cdna] library).

    Mechanics, mirroring paper sections 2.2 and 4:

    - Each context owns transmit and receive descriptor rings in {e host}
      memory ({!Ring}); the NIC learns about new descriptors via doorbells
      and fetches them with real DMA transfers through the shared
      {!Bus.Dma_engine}.
    - Transmit is two-stage (descriptor/payload fetch pipelined with wire
      serialization) and services active contexts round-robin — the
      fair interleaving of paper section 3.1.
    - Receive demultiplexes by destination MAC into the owning context,
      buffers packets in the shared on-NIC packet buffer, consumes the
      context's posted receive descriptors, and DMA-writes payloads to
      host buffers.
    - Completion state (consumer indices) is DMA-written back to a
      per-context status block, then the wrapper is notified so it can
      raise a (coalesced) interrupt.
    - When [seqno_checking] is on, every descriptor's sequence number must
      continue the per-context sequence; a mismatch raises a {e guest-
      specific protection fault} and halts the context (paper 3.3).

    Flow control: instead of dropping on receive-buffer exhaustion the
    datapath exposes congestion state (802.3x-style pause), which the ideal
    peer consults — reproducing TCP's closed-loop behaviour without
    modelling retransmission. Drops still occur if the buffer truly
    overflows. *)

type t

type fault =
  | Seqno_mismatch of { expected : int; got : int }
  | Missing_meta  (** Descriptor with no staged packet metadata. *)
  | Dma_fault of Bus.Dma_engine.fault

(** Direction of the ring a doorbell/fault refers to. *)
type dir = Tx | Rx

val create :
  Sim.Engine.t ->
  mem:Memory.Phys_mem.t ->
  dma:Bus.Dma_engine.t ->
  config:Nic_config.t ->
  contexts:int ->
  dma_context_base:int ->
  (* IOMMU context id of context [i] is [dma_context_base + i]. *)
  notify:(ctx:int -> unit) ->
  on_fault:(ctx:int -> dir -> fault -> unit) ->
  unit ->
  t

val config : t -> Nic_config.t
val contexts : t -> int

(** The shared DMA engine this NIC uses (for IOMMU installation). *)
val dma : t -> Bus.Dma_engine.t

(** Attach the MAC to its link; [side] is this NIC's side. *)
val attach_link : t -> Ethernet.Link.t -> side:Ethernet.Link.side -> unit

(** {1 Context control (hypervisor / firmware)} *)

(** [activate t ~ctx ~mac] brings a context up with its unique MAC.
    @raise Invalid_argument if active or out of range. *)
val activate : t -> ctx:int -> mac:Ethernet.Mac_addr.t -> unit

(** [deactivate t ~ctx] revokes a context: pending work is aborted,
    in-flight DMA abandoned, queued completions dropped. Idempotent. *)
val deactivate : t -> ctx:int -> unit

(** Opaque architectural image of one context, for hypervisor-mediated
    context paging when guests oversubscribe the hardware contexts. *)
type saved_ctx

(** [save_context t ~ctx] snapshots an active context's rings, cursors,
    expected seqnos, staged metadata and unread completions. Read-only —
    the caller must still revoke/deactivate the slot, whose epoch bump
    unwinds in-flight work. Transmit state is rolled back losslessly over
    staged-but-unwired packets (they are re-fetched after restore); the
    frame currently on the wire, if this context's, is credited as
    completed. Receive losses are left to peer retransmission.
    @raise Invalid_argument if the context is inactive or faulted. *)
val save_context : t -> ctx:int -> saved_ctx

(** [restore_context t ~ctx s] installs a saved image on a reset slot and
    kicks the engines: transmission resumes exactly where the save left
    off. Cursors and seqnos are written hardware-side (not through the
    doorbell paths, which reject producer rewinds). Pending completions
    re-notify the wrapper.
    @raise Invalid_argument if the slot is active or faulted. *)
val restore_context : t -> ctx:int -> saved_ctx -> unit

val is_active : t -> ctx:int -> bool
val mac_of : t -> ctx:int -> Ethernet.Mac_addr.t option

(** A context that receives all frames not matching any context MAC
    (promiscuous mode for the software-bridge configurations). *)
val set_promiscuous : t -> ctx:int option -> unit

(** Contexts halted by a protection fault resume only after
    reactivation. *)
val is_faulted : t -> ctx:int -> bool

(** {1 Ring and status setup} *)

val set_tx_ring : t -> ctx:int -> Ring.t -> unit
val set_rx_ring : t -> ctx:int -> Ring.t -> unit

(** Host address receiving the 8-byte [(tx_cons, rx_cons)] writeback. *)
val set_status_addr : t -> ctx:int -> Memory.Addr.t -> unit

(** Reset the expected next sequence number for both rings of a context
    (done by the hypervisor at context assignment). *)
val set_expected_seqno : t -> ctx:int -> tx:int -> rx:int -> unit

(** {1 Doorbells (from mailbox writes)} *)

(** [tx_doorbell t ~ctx ~prod] publishes the driver's new transmit
    producer index (free-running). *)
val tx_doorbell : t -> ctx:int -> prod:int -> unit

val rx_doorbell : t -> ctx:int -> prod:int -> unit

(** {1 Driver-side packet metadata}

    Real hardware parses packet headers out of the DMA-ed bytes; the
    simulator carries frame metadata out of band. The driver stages one
    frame of metadata per transmit descriptor, in ring order. *)

val stage_tx_meta : t -> ctx:int -> Ethernet.Frame.t -> unit

(** {1 Completions (drained by the driver)} *)

(** [take_tx_completions t ~ctx] returns and clears the count of transmit
    descriptors completed since last asked. *)
val take_tx_completions : t -> ctx:int -> int

(** [take_rx_completions t ~ctx ~max] returns up to [max] received frames
    with their free-running receive-ring indices. *)
val take_rx_completions : t -> ctx:int -> max:int -> (int * Ethernet.Frame.t) list

(** Received frames waiting in the context's completion queue. *)
val rx_completions_pending : t -> ctx:int -> int

(** {1 Flow control} *)

(** True when the shared receive buffer is above the high watermark. *)
val rx_congested : t -> bool

(** Hook fired when occupancy falls back below the low watermark. *)
val set_uncongested_hook : t -> (unit -> unit) -> unit

(** {1 Statistics} *)

type stats = {
  tx_frames : int;
  tx_bytes : int;  (** payload bytes *)
  rx_frames : int;
  rx_bytes : int;
  rx_no_ctx_drops : int;  (** No active context matched the MAC. *)
  rx_overflow_drops : int;  (** Shared packet buffer full. *)
  rx_truncated : int;
      (** Frames delivered short because the posted receive descriptor was
          smaller than the frame; [rx_bytes] counts delivered bytes only. *)
  faults : int;
}

val stats : t -> stats
val ctx_tx_frames : t -> ctx:int -> int
val ctx_rx_frames : t -> ctx:int -> int

(** Shared packet-buffer occupancy (accounting diagnostics; both return to
    zero when the datapath is idle). *)
val tx_buffer_in_use : t -> int

val rx_buffer_in_use : t -> int

(** Expose aggregate ([nic.tx_frames], [nic.rx_bytes], drop/fault
    counters, ...) and per-context ([nic.ctx.tx_frames] /
    [nic.ctx.rx_frames], with a ["ctx"] label appended) gauges. [labels]
    must uniquely identify this NIC instance, e.g. [[("nic", "nic0")]]. *)
val register_metrics :
  t -> Sim.Metrics.t -> labels:(string * string) list -> unit
