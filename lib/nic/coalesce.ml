type t = {
  engine : Sim.Engine.t;
  min_gap : Sim.Time.t;
  fire : unit -> unit;
  mutable last_fire : Sim.Time.t;
  mutable armed : bool;
  mutable requests : int;
  mutable fired : int;
  mutable suppressed : int;
  mutable ever_fired : bool;
}

let create engine ~min_gap ~fire =
  {
    engine;
    min_gap;
    fire;
    last_fire = Sim.Time.zero;
    armed = false;
    requests = 0;
    fired = 0;
    suppressed = 0;
    ever_fired = false;
  }

let deliver t =
  t.armed <- false;
  t.last_fire <- Sim.Engine.now t.engine;
  t.ever_fired <- true;
  t.fire ()

(* Every request is accounted exactly once, at request time: either it is
   merged into an already-pending delivery ([suppressed]) or it commits a
   delivery — immediate or scheduled, nothing cancels it ([fired]). The
   invariant [fired + suppressed = requests] therefore holds at every
   instant, not just when the engine drains. *)
let request t =
  t.requests <- t.requests + 1;
  if t.armed then t.suppressed <- t.suppressed + 1
  else begin
    let now = Sim.Engine.now t.engine in
    let allowed =
      if not t.ever_fired then now else Sim.Time.add t.last_fire t.min_gap
    in
    t.fired <- t.fired + 1;
    if Sim.Time.compare allowed now <= 0 then deliver t
    else begin
      t.armed <- true;
      ignore (Sim.Engine.schedule_at t.engine allowed (fun () -> deliver t))
    end
  end

let requests t = t.requests
let fired t = t.fired
let suppressed t = t.suppressed

let register_metrics t m ~labels =
  Sim.Metrics.gauge m ~labels "coalesce.requests" (fun () -> t.requests);
  Sim.Metrics.gauge m ~labels "coalesce.fired" (fun () -> t.fired);
  Sim.Metrics.gauge m ~labels "coalesce.suppressed" (fun () -> t.suppressed)
