(** Execute one experiment and collect the paper's metrics.

    A run builds a {!Testbed}, lets it warm up (windows fill, schedulers
    settle), resets all counters, then measures for the configured
    duration: goodput per direction, the Xenoprof-style execution profile,
    and virtual/physical interrupt rates. *)

type measurement = {
  config : Config.t;
  tx_mbps : float;  (** Aggregate guest-transmit goodput (payload bits). *)
  rx_mbps : float;  (** Aggregate guest-receive goodput. *)
  profile : Host.Profile.report;
  driver_virq_per_sec : float;  (** Virtual interrupts into the driver domain. *)
  guest_virq_per_sec : float;  (** Virtual interrupts into all guests. *)
  phys_irq_per_sec : float;
  rx_drops : int;  (** NIC buffer overflow drops during measurement. *)
  faults : int;  (** NIC protection faults during measurement. *)
  integrity_failures : int;  (** Payload corruption detections. *)
  latency_p50_us : float;  (** Median end-to-end packet latency. *)
  latency_p99_us : float;
  fairness : float;
      (** Jain's fairness index over per-connection goodput in the
          measured direction (1.0 = perfectly balanced). The paper's
          benchmark "balances the bandwidth across all connections to
          ensure fairness"; this checks the reproduction does too. *)
  events_fired : int;  (** Simulation events (diagnostic). *)
}

(** Primary throughput of the run's traffic pattern (tx for Tx, rx for Rx,
    sum for bidirectional). *)
val primary_mbps : measurement -> float

(** L3/L4 header bytes excluded from goodput accounting (IP + TCP +
    timestamps), shared with the open-loop {!Flows} experiment. *)
val l3_header_bytes : int

(** {2 Measurement phases}

    {!run} is [build -> warm up -> reset -> measure -> collect]; the
    phases are exposed so drivers that advance time differently (the
    sharded multi-host runner in {!Multihost}) can reuse the exact same
    accounting and stay measurement-compatible with single-host runs. *)

(** Shrink warm-up (1/2) and measurement (1/4) when [quick] is set. *)
val apply_quick : quick:bool -> Config.t -> Config.t

(** Counter readings taken at the end of warm-up, subtracted by
    {!collect}. *)
type baselines

(** Zero every counter the measurement reads and snapshot the rest. Call
    with the testbed's engine standing exactly at [cfg.warmup]. *)
val reset_after_warmup : Config.t -> Testbed.t -> baselines

(** Assemble the measurement after the engine has reached
    [cfg.warmup + cfg.duration]. *)
val collect : Config.t -> Testbed.t -> baselines -> measurement

(** [run cfg] builds and measures. [quick] shrinks warm-up/measurement to
    ~1/4 duration for tests. *)
val run : ?quick:bool -> Config.t -> measurement

(** Like {!run}, but also returns the testbed so the caller can read its
    metrics registry or inspect component state after measurement. *)
val run_tb : ?quick:bool -> Config.t -> measurement * Testbed.t

val pp : Format.formatter -> measurement -> unit
