type point = {
  guests : int;
  cpus : int;
  xen : Run.measurement;
  cdna : Run.measurement;
  ctx_swaps : int;
}

let paper_guest_counts = [ 8; 12; 16; 20; 24 ]
let default_guest_counts = [ 8; 16; 24; 32; 48; 64; 96; 128; 192; 256 ]
let default_cpu_counts = [ 1; 2; 4 ]

(* One measured run that also reads the CDNA hypervisor's context-swap
   counter over exactly the measurement window (swaps during warm-up are
   excluded, like every other counter). The testbed's engine is driven
   through {!Sim.Shard} as a single LP: with no channels that is one
   window per phase — event-for-event the plain {!Run} execution — so
   every [shards] value (clamped to the one LP) yields byte-identical
   results, which is what the CLI's [--shards] flag advertises. *)
let measure ~quick ~shards (cfg : Config.t) =
  let cfg = Run.apply_quick ~quick cfg in
  let tb = Testbed.build cfg in
  let p = Sim.Shard.Partition.create () in
  let (_ : Sim.Shard.Partition.lp) =
    Sim.Shard.Partition.add p ~name:"host0" tb.Testbed.engine
  in
  let shard = Sim.Shard.create ~shards p in
  tb.Testbed.start ();
  Sim.Shard.run shard ~until:cfg.Config.warmup;
  let b = Run.reset_after_warmup cfg tb in
  let swaps0 =
    match tb.Testbed.cdna_hyp with Some h -> Cdna.Hyp.ctx_swaps h | None -> 0
  in
  let stop = Sim.Time.add cfg.Config.warmup cfg.Config.duration in
  Sim.Shard.run shard ~until:stop;
  let m = Run.collect cfg tb b in
  let swaps =
    match tb.Testbed.cdna_hyp with
    | Some h -> Cdna.Hyp.ctx_swaps h - swaps0
    | None -> 0
  in
  (m, swaps)

(* The rx-heavy preset: receive-dominated traffic does more work per
   context touch (netback RX is the expensive side; CDNA RX touches the
   paged context per delivery), and a 10x smaller scheduler slice
   multiplies context switches — together they push context-swap rates
   toward the regime where paging overhead could hand the win back to
   the software path. *)
let rx_heavy_slice = Sim.Time.us 100

let sweep ?(quick = false) ?(shards = 1) ?(pattern = Workload.Pattern.Tx)
    ?slice ?(guest_counts = default_guest_counts)
    ?(cpu_counts = default_cpu_counts) () =
  let base = { Config.default with Config.nics = 2; pattern; slice } in
  List.concat_map
    (fun cpus ->
      List.map
        (fun guests ->
          let xen, _ =
            measure ~quick ~shards
              {
                base with
                Config.system = Config.Xen_sw;
                nic = Config.Intel;
                guests;
                cpus;
              }
          in
          let cdna, ctx_swaps =
            measure ~quick ~shards
              {
                base with
                Config.system = Config.Cdna_sys;
                nic = Config.Ricenic;
                guests;
                cpus;
              }
          in
          { guests; cpus; xen; cdna; ctx_swaps })
        guest_counts)
    cpu_counts

(* Smallest guest count (per CPU count) at which context-swap overhead
   drags CDNA to or below the software path; [None] when CDNA wins
   everywhere measured. *)
let crossover points ~cpus =
  List.fold_left
    (fun acc p ->
      if
        p.cpus = cpus
        && Run.primary_mbps p.cdna <= Run.primary_mbps p.xen
        && match acc with None -> true | Some g -> p.guests < g
      then Some p.guests
      else acc)
    None points

let swaps_per_sec p =
  float_of_int p.ctx_swaps
  /. Sim.Time.to_sec_f p.cdna.Run.config.Config.duration

let print_table points =
  Report.print
    ~header:
      [
        "CPUs"; "Guests"; "Xen Mb/s"; "CDNA Mb/s"; "Ctx swaps"; "Swaps/s";
        "CDNA idle";
      ]
    (List.map
       (fun p ->
         [
           string_of_int p.cpus;
           string_of_int p.guests;
           Report.mbps (Run.primary_mbps p.xen);
           Report.mbps (Run.primary_mbps p.cdna);
           string_of_int p.ctx_swaps;
           Printf.sprintf "%.0f" (swaps_per_sec p);
           Report.pct p.cdna.Run.profile.Host.Profile.idle;
         ])
       points);
  let cpu_counts =
    List.sort_uniq Int.compare (List.map (fun p -> p.cpus) points)
  in
  List.iter
    (fun cpus ->
      match crossover points ~cpus with
      | Some g ->
          Printf.printf
            "%d CPU(s): CDNA falls to the software path at %d guests\n" cpus g
      | None ->
          Printf.printf "%d CPU(s): CDNA ahead at every measured point\n" cpus)
    cpu_counts

let chart points ~cpus =
  let pts = List.filter (fun p -> p.cpus = cpus) points in
  match pts with
  | [] -> ""
  | _ ->
      let xs = List.map (fun p -> p.guests) pts in
      Report.ascii_chart ~x_label:"guests" ~y_label:"Mb/s"
        ~series:
          [
            ("CDNA", '#', List.map (fun p -> Run.primary_mbps p.cdna) pts);
            ("Xen", 'o', List.map (fun p -> Run.primary_mbps p.xen) pts);
          ]
        ~xs

let csv points =
  Report.csv
    ~header:
      [
        "cpus"; "guests"; "xen_mbps"; "cdna_mbps"; "ctx_swaps";
        "ctx_swaps_per_sec"; "cdna_idle_pct";
      ]
    (List.map
       (fun p ->
         [
           string_of_int p.cpus;
           string_of_int p.guests;
           Printf.sprintf "%.1f" (Run.primary_mbps p.xen);
           Printf.sprintf "%.1f" (Run.primary_mbps p.cdna);
           string_of_int p.ctx_swaps;
           Printf.sprintf "%.1f" (swaps_per_sec p);
           Printf.sprintf "%.1f" p.cdna.Run.profile.Host.Profile.idle;
         ])
       points)
