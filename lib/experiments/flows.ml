(* The `cdna_sim scale` experiment: open-loop flow scaling 10^3 -> 10^6
   concurrent flows, Xen-software vs CDNA.

   Each point runs Workload.Open_loop against an abstract per-packet
   datapath whose costs are derived from Cost_model (the same numbers
   the full testbed charges per packet on the transmit path):

   - Xen software path: guest stack + netfront driver + grant transfer
     + netback + bridge + driver-domain driver per packet, plus a
     flow-state touch penalty of one [touch_step] per doubling of live
     flows above 4096 — software flow lookup state falls out of cache
     as the flow table grows (Kedia & Bansal's collapse regime).
   - CDNA: guest stack + native driver + doorbell PIO + descriptor
     validate + IOMMU check; per-context state lives in NIC SRAM, so
     there is no live-flow penalty and the path is wire-limited.

   A point preloads the standing population of N flows at t=0 (the
   swept concurrency), then runs open-loop churn arrivals at ~1.05x the
   CDNA service capacity — identical offered load for both systems, so
   the slower path visibly collapses (occupancy pinned at capacity,
   admissions rejected, tails censored by the window) while the faster
   one keeps pace.

   The engine is driven through a single-LP Sim.Shard exactly like
   Scaling.measure, so every --shards value is byte-identical. *)

type scenario = Normal | Syn_flood | Churn | Incast

let scenario_to_string = function
  | Normal -> "normal"
  | Syn_flood -> "syn-flood"
  | Churn -> "churn"
  | Incast -> "incast"

let scenario_of_string = function
  | "normal" -> Some Normal
  | "syn-flood" -> Some Syn_flood
  | "churn" -> Some Churn
  | "incast" -> Some Incast
  | _ -> None

type side = {
  mbps : float;
  served_pkts : int;
  completed : int;
  rejected : int;
  expired : int;
  peak_live : int;
  live_end : int;
  mouse_n : int;
  mouse_q : int array; (* p50 / p99 / p999, ns *)
  eleph_n : int;
  eleph_q : int array;
  metrics_json : string; (* full Sim.Metrics snapshot, for determinism *)
}

type point = { flows : int; scenario : scenario; xen : side; cdna : side }

let default_flow_counts = [ 1_000; 10_000; 100_000; 1_000_000 ]
let quantile_spec = [| 50.; 99.; 99.9 |]

(* Packet framing shared with Run: 1500 B payload; 18 B L2 overhead plus
   20 B preamble/IFG on the wire; 52 B of L3/L4 headers excluded from
   goodput. *)
let payload_bytes = 1500
let wire_bits_per_pkt = (Ethernet.Frame.overhead_bytes + payload_bytes + 20) * 8
let goodput_bits_per_pkt = (payload_bytes - Run.l3_header_bytes) * 8
let link_rate_bps = 1_000_000_000

(* Per-packet datapath cost in ns, from the calibrated cost model. *)
let datapath_ns (system : Config.system) =
  let nic : Config.nic_kind =
    match system with Config.Cdna_sys -> Config.Ricenic | _ -> Config.Intel
  in
  let cm = Cost_model.for_config system nic in
  let ns = Sim.Time.to_ns in
  let g = cm.Cost_model.guest_os in
  match system with
  | Config.Cdna_sys ->
      let base =
        ns g.Guestos.Os_costs.stack_tx_per_pkt
        + ns g.Guestos.Os_costs.driver_tx_per_pkt
        + ns cm.Cost_model.cdna.Cdna.Cdna_costs.pio_doorbell
        + ns cm.Cost_model.cdna.Cdna.Cdna_costs.validate_per_desc
        + ns cm.Cost_model.cdna.Cdna.Cdna_costs.iommu_per_desc
      in
      (base, 0)
  | Config.Xen_sw | Config.Native ->
      let base =
        ns g.Guestos.Os_costs.stack_tx_per_pkt
        + ns g.Guestos.Os_costs.driver_tx_per_pkt
        + ns cm.Cost_model.xen.Xen.Costs.grant_transfer
        + ns cm.Cost_model.netback.Guestos.Netback.per_pkt_tx
        + ns cm.Cost_model.netback.Guestos.Netback.bridge_per_pkt
        + ns cm.Cost_model.driver_os.Guestos.Os_costs.driver_tx_per_pkt
      in
      (base, 800)

let wire_gap_ns ~nics =
  Sim.Time.to_ns (Sim.Time.bits_time ~bits:wire_bits_per_pkt ~rate_bps:link_rate_bps)
  / nics

(* CDNA per-packet service capacity bounds the offered load for both
   systems: same arrivals, different drain rates. *)
let cdna_service_ns ~nics =
  let base, _ = datapath_ns Config.Cdna_sys in
  Stdlib.max base (wire_gap_ns ~nics)

let sizes_of_scenario = function
  | Churn -> Workload.Open_loop.Log_uniform { min_pkts = 1; max_pkts = 8 }
  | Normal | Syn_flood | Incast ->
      Workload.Open_loop.Pareto { alpha = 1.2; min_pkts = 1; max_pkts = 16384 }

(* Offered churn load at ~1.05x CDNA capacity (packets), expressed as a
   mean flow inter-arrival gap. Scenarios reshape the process around
   the same or a deliberately harsher rate. *)
let arrival_of_scenario scenario ~mean_size ~nics =
  let cap_gap = float_of_int (cdna_service_ns ~nics) in
  let mean_gap_ns = mean_size *. cap_gap /. 1.05 in
  let gap f = Sim.Time.ns (Stdlib.max 1 (int_of_float (mean_gap_ns /. f))) in
  match scenario with
  | Normal -> Workload.Pattern.Arrival.Poisson { mean_gap = gap 1. }
  | Syn_flood ->
      (* 8x the arrival rate, half of it embryonic: table pressure *)
      Workload.Pattern.Arrival.Poisson { mean_gap = gap 8. }
  | Churn ->
      (* tiny flows in on/off bursts at 4x rate: insert/remove pressure *)
      Workload.Pattern.Arrival.On_off
        { on = Sim.Time.ms 2; off = Sim.Time.ms 2; gap = gap 8. }
  | Incast ->
      let fan_in = 64 in
      Workload.Pattern.Arrival.Incast
        {
          fan_in;
          period = Sim.Time.ns (Stdlib.max 1 (int_of_float mean_gap_ns) * fan_in);
        }

let config_for ~flows ~scenario ~seed ~nics (system : Config.system) =
  let base, touch_step = datapath_ns system in
  let sizes = sizes_of_scenario scenario in
  let mean_size = Workload.Open_loop.mean_size_of sizes in
  {
    Workload.Open_loop.capacity = flows + (flows / 4) + 64;
    arrival = arrival_of_scenario scenario ~mean_size ~nics;
    sizes;
    base_service_ns = base;
    wire_gap_ns = wire_gap_ns ~nics;
    touch_step_ns = touch_step;
    touch_floor = 4096;
    (* Processor sharing over a standing population of ~[flows] means a
       k-packet flow needs ~k full ring rounds of ~[flows] services
       each, while the window covers ~8 rounds — flows much bigger than
       8 packets are window-censored at every scale. 8 is therefore the
       largest class boundary whose upper class still completes. *)
    elephant_min_pkts = 8;
    syn_permille = (match scenario with Syn_flood -> 500 | _ -> 0);
    syn_timeout = Sim.Time.ms 250;
    seed;
  }

(* Window: 1.3x the time CDNA needs to drain the standing population,
   floored at 50 ms so small points still accumulate churn statistics. *)
let window ~quick ~flows ~mean_size ~nics =
  let drain =
    1.3 *. float_of_int flows *. mean_size *. float_of_int (cdna_service_ns ~nics)
  in
  let w = Stdlib.max 50_000_000 (int_of_float drain) in
  Sim.Time.ns (if quick then Stdlib.max 10_000_000 (w / 4) else w)

(* One system at one point, engine driven through a single-LP shard so
   [--shards] is byte-identical by construction (cf. Scaling.measure). *)
let measure ?(quick = false) ?(shards = 1) ~flows ~scenario ~seed system =
  let nics = 2 in
  let engine = Sim.Engine.create () in
  let p = Sim.Shard.Partition.create () in
  let (_ : Sim.Shard.Partition.lp) =
    Sim.Shard.Partition.add p ~name:"openloop" engine
  in
  let shard = Sim.Shard.create ~shards p in
  let metrics = Sim.Metrics.create () in
  let cfg = config_for ~flows ~scenario ~seed ~nics system in
  let ol = Workload.Open_loop.create ~metrics engine cfg in
  let mean_size = Workload.Open_loop.mean_size_pkts ol in
  let until = window ~quick ~flows ~mean_size ~nics in
  Workload.Open_loop.preload ol ~flows;
  Workload.Open_loop.start ol ~stop_at:until;
  Sim.Shard.run shard ~until;
  let tbl = Workload.Open_loop.table ol in
  let served = Workload.Open_loop.served_pkts ol in
  let elapsed = Sim.Time.to_sec_f until in
  let q h = Sim.Stats.Histogram.quantiles h quantile_spec in
  let mice = Workload.Open_loop.mice_latency ol in
  let eleph = Workload.Open_loop.elephant_latency ol in
  {
    mbps = float_of_int (served * goodput_bits_per_pkt) /. elapsed /. 1e6;
    served_pkts = served;
    completed = Workload.Flow_table.completed tbl;
    rejected = Workload.Flow_table.rejected_full tbl;
    expired = Workload.Flow_table.expired tbl;
    peak_live = Workload.Flow_table.peak_live tbl;
    live_end = Workload.Flow_table.live tbl;
    mouse_n = Sim.Stats.Histogram.count mice;
    mouse_q = q mice;
    eleph_n = Sim.Stats.Histogram.count eleph;
    eleph_q = q eleph;
    metrics_json = Sim.Metrics.to_string metrics;
  }

let point ?quick ?shards ?(scenario = Normal) ?(seed = 1234) ~flows () =
  let xen = measure ?quick ?shards ~flows ~scenario ~seed Config.Xen_sw in
  let cdna = measure ?quick ?shards ~flows ~scenario ~seed Config.Cdna_sys in
  { flows; scenario; xen; cdna }

let sweep ?quick ?shards ?scenario ?seed
    ?(flow_counts = default_flow_counts) () =
  List.map (fun flows -> point ?quick ?shards ?scenario ?seed ~flows ())
    flow_counts

let ms ns = float_of_int ns /. 1e6

let print_table points =
  Report.print
    ~header:
      [
        "Flows"; "Xen Mb/s"; "CDNA Mb/s"; "Xen p50ms"; "Xen p99ms";
        "Xen p999ms"; "CDNA p50ms"; "CDNA p99ms"; "CDNA p999ms"; "Xen rej";
        "CDNA rej";
      ]
    (List.map
       (fun p ->
         [
           string_of_int p.flows;
           Report.mbps p.xen.mbps;
           Report.mbps p.cdna.mbps;
           Printf.sprintf "%.1f" (ms p.xen.mouse_q.(0));
           Printf.sprintf "%.1f" (ms p.xen.mouse_q.(1));
           Printf.sprintf "%.1f" (ms p.xen.mouse_q.(2));
           Printf.sprintf "%.1f" (ms p.cdna.mouse_q.(0));
           Printf.sprintf "%.1f" (ms p.cdna.mouse_q.(1));
           Printf.sprintf "%.1f" (ms p.cdna.mouse_q.(2));
           string_of_int p.xen.rejected;
           string_of_int p.cdna.rejected;
         ])
       points);
  match points with
  | [] -> ()
  | p :: _ ->
      Printf.printf
        "(scenario %s; mouse-flow completion latency; elephants in --csv)\n"
        (scenario_to_string p.scenario)

let csv points =
  Report.csv
    ~header:
      [
        "flows"; "scenario"; "system"; "mbps"; "served_pkts"; "completed";
        "rejected"; "expired"; "peak_live"; "live_end"; "mouse_n";
        "mouse_p50_ns"; "mouse_p99_ns"; "mouse_p999_ns"; "eleph_n";
        "eleph_p50_ns"; "eleph_p99_ns"; "eleph_p999_ns";
      ]
    (List.concat_map
       (fun p ->
         List.map
           (fun (name, s) ->
             [
               string_of_int p.flows;
               scenario_to_string p.scenario;
               name;
               Printf.sprintf "%.1f" s.mbps;
               string_of_int s.served_pkts;
               string_of_int s.completed;
               string_of_int s.rejected;
               string_of_int s.expired;
               string_of_int s.peak_live;
               string_of_int s.live_end;
               string_of_int s.mouse_n;
               string_of_int s.mouse_q.(0);
               string_of_int s.mouse_q.(1);
               string_of_int s.mouse_q.(2);
               string_of_int s.eleph_n;
               string_of_int s.eleph_q.(0);
               string_of_int s.eleph_q.(1);
               string_of_int s.eleph_q.(2);
             ])
           [ ("xen_sw", p.xen); ("cdna", p.cdna) ])
       points)

let chart points =
  match points with
  | [] -> ""
  | _ ->
      let xs = List.map (fun p -> p.flows) points in
      Report.ascii_chart ~x_label:"concurrent flows" ~y_label:"Mb/s"
        ~series:
          [
            ("CDNA", '#', List.map (fun p -> p.cdna.mbps) points);
            ("Xen", 'o', List.map (fun p -> p.xen.mbps) points);
          ]
        ~xs
