let render ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> width.(i) <- max width.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 1024 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < cols - 1 then
          Buffer.add_string buf (String.make (width.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  emit
    (List.mapi (fun i _ -> String.make width.(i) '-')
       (List.init cols Fun.id));
  List.iter emit rows;
  Buffer.contents buf

let print ~header rows = print_string (render ~header rows)

let csv ~header rows =
  let line row = String.concat "," row in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let mbps v = Printf.sprintf "%.0f" v
let pct v = Printf.sprintf "%.1f%%" v
let verdict b = if b then "yes" else "NO"
let ratio got expected = Printf.sprintf "%d/%d" got expected

let rate v =
  let n = int_of_float (Float.round v) in
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf


let ascii_chart ~x_label ~y_label ~series ~xs =
  let height = 16 in
  let buf = Buffer.create 2048 in
  let all_ys = List.concat_map (fun (_, _, ys) -> ys) series in
  let y_max = List.fold_left Float.max 1. all_ys in
  (* Column position of each x sample, spread over a fixed width. *)
  let n = List.length xs in
  let width = max 24 (n * 8) in
  let col i = if n <= 1 then 0 else i * (width - 1) / (n - 1) in
  let grid = Array.make_matrix (height + 1) width ' ' in
  List.iter
    (fun (_, marker, ys) ->
      List.iteri
        (fun i y ->
          if i < n then begin
            let row =
              height - int_of_float (Float.round (y /. y_max *. float_of_int height))
            in
            let row = max 0 (min height row) in
            grid.(row).(col i) <- marker
          end)
        ys)
    series;
  Buffer.add_string buf (Printf.sprintf "%s\n" y_label);
  Array.iteri
    (fun r line ->
      let y_val = y_max *. float_of_int (height - r) /. float_of_int height in
      Buffer.add_string buf (Printf.sprintf "%7.0f |" y_val);
      Buffer.add_string buf (String.init width (Array.get line));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (Printf.sprintf "%7s +%s\n" "" (String.make width '-'));
  (* x tick labels *)
  let labels = Array.make width ' ' in
  List.iteri
    (fun i x ->
      let s = string_of_int x in
      let c = min (width - String.length s) (col i) in
      String.iteri (fun j ch -> labels.(c + j) <- ch) s)
    xs;
  Buffer.add_string buf (Printf.sprintf "%8s%s  (%s)\n" "" (String.init width (Array.get labels)) x_label);
  List.iter
    (fun (name, marker, _) ->
      Buffer.add_string buf (Printf.sprintf "%8s%c = %s\n" "" marker name))
    series;
  Buffer.contents buf
