(** Multi-host scenario on the sharded engine.

    [K] complete testbed replicas — one {!Sim.Shard} logical process
    each — linked in a cross-host heartbeat ring whose channel lookahead
    comes from the Ethernet link model
    ({!Sim.Shard.lookahead_of_link}: one full-size wire frame at
    1 Gb/s + 500 ns propagation, ~12.8 us). Host [i] uses seed
    [cfg.seed + 7919 * i]. Every per-host measurement is produced by the
    same {!Run} phase helpers as a single-host run, and outputs are
    byte-identical for every [shards]/[workers] choice. *)

type host = {
  id : int;
  tb : Testbed.t;
  lp : Sim.Shard.Partition.lp;
  heartbeats_rx : Sim.Stats.Counter.t;
      (** Heartbeats delivered {e to} this host (counted in its metrics
          registry as ["xhost.heartbeat_rx"]). *)
}

type t = {
  hosts : host array;  (** Indexed by host id. *)
  shard : Sim.Shard.t;
}

type report = {
  measurements : Run.measurement list;  (** In fixed host order. *)
  heartbeats : int;  (** Total cross-host heartbeats delivered. *)
  messages_routed : int;  (** All cross-shard messages through barriers. *)
  shards : int;  (** Effective logical shard count. *)
  workers : int;  (** OS domains that actually drained shards. *)
}

(** The cross-host channel lookahead (also the heartbeat send delay). *)
val lookahead : Sim.Time.t

val heartbeat_period : Sim.Time.t

(** Build [hosts] testbed replicas and freeze the partition.
    [shards]/[workers] as in {!Sim.Shard.create}. *)
val build : ?shards:int -> ?workers:int -> hosts:int -> Config.t -> t

(** Build, start, warm up, measure — {!Run}'s phases driven by
    {!Sim.Shard.run}. [prepare] runs after build and before any event
    fires; use it to attach per-host trace sinks
    ({!Sim.Shard.Partition.set_sink}). *)
val run :
  ?quick:bool ->
  ?shards:int ->
  ?workers:int ->
  ?prepare:(t -> unit) ->
  hosts:int ->
  Config.t ->
  report * t

val pp_report : Format.formatter -> report -> unit
