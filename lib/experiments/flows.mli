(** The [cdna_sim scale] experiment: open-loop flow scaling.

    Sweeps the standing concurrent-flow population 10^3 -> 10^6 for the
    Xen software path vs CDNA, driving {!Workload.Open_loop} with
    per-packet datapath costs derived from {!Cost_model}. Both systems
    see identical offered load (~1.05x CDNA's service capacity), so the
    software path's collapse under production-shaped traffic — falling
    throughput as live-flow state outgrows the cache, pinned occupancy,
    rejected admissions, exploding tails — is directly visible next to
    CDNA's wire-limited flat line.

    Every point runs through a single-LP {!Sim.Shard}, so output is
    byte-identical for every [--shards] value. *)

type scenario =
  | Normal  (** Poisson arrivals, bounded-Pareto elephants-and-mice *)
  | Syn_flood  (** 8x arrivals, half embryonic SYNs with a fixed timeout *)
  | Churn  (** tiny flows in on/off bursts: insert/remove pressure *)
  | Incast  (** 64-way synchronized fan-in arrivals *)

val scenario_to_string : scenario -> string
val scenario_of_string : string -> scenario option

(** Per-system read-out of one point. Quantile arrays are
    p50/p99/p99.9 completion latency in ns. *)
type side = {
  mbps : float;
  served_pkts : int;
  completed : int;
  rejected : int;
  expired : int;
  peak_live : int;
  live_end : int;
  mouse_n : int;
  mouse_q : int array;
  eleph_n : int;
  eleph_q : int array;
  metrics_json : string;
      (** full [Sim.Metrics] snapshot of the point — the determinism
          tests compare this byte-for-byte across shard counts *)
}

type point = { flows : int; scenario : scenario; xen : side; cdna : side }

val default_flow_counts : int list

(** [measure ?quick ?shards ~flows ~scenario ~seed system] runs one
    system at one concurrency point. [quick] quarters the window. *)
val measure :
  ?quick:bool ->
  ?shards:int ->
  flows:int ->
  scenario:scenario ->
  seed:int ->
  Config.system ->
  side

val point :
  ?quick:bool ->
  ?shards:int ->
  ?scenario:scenario ->
  ?seed:int ->
  flows:int ->
  unit ->
  point

val sweep :
  ?quick:bool ->
  ?shards:int ->
  ?scenario:scenario ->
  ?seed:int ->
  ?flow_counts:int list ->
  unit ->
  point list

val print_table : point list -> unit
val csv : point list -> string
val chart : point list -> string
