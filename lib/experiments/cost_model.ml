let us = Sim.Time.of_us_f

type t = {
  guest_os : Guestos.Os_costs.t;
  driver_os : Guestos.Os_costs.t;
  netback : Guestos.Netback.costs;
  xen : Xen.Costs.t;
  cdna : Cdna.Cdna_costs.t;
  evtchn_isr : Sim.Time.t;
  nic_evtchn_isr : Sim.Time.t;
  native_isr : Sim.Time.t;
  intr_min_gap : Sim.Time.t;
  cpu_migration : Sim.Time.t;
      (* IPI delivery + cold-cache refill when a vcpu wakes on another CPU *)
}

(* Guest OS costs on the paravirtualized (netfront) path. *)
let xen_guest_os =
  {
    Guestos.Os_costs.stack_tx_per_pkt = us 1.5;
    stack_rx_per_pkt = us 1.62;
    stack_wakeup_fixed = us 0.8;
    driver_tx_per_pkt = us 1.05;
    driver_rx_per_pkt = us 1.45;
    driver_wakeup_fixed = us 1.5;
    app_per_pkt = us 0.015;
    app_wakeup = us 0.25;
    rx_poll_budget = 64;
    tx_batch_limit = 64;
  }

(* CDNA guests run a native-style driver against their own context; the
   per-packet driver work is lighter than netfront's (no shared-ring
   bookkeeping, no page exchange). *)
let cdna_guest_os =
  {
    xen_guest_os with
    Guestos.Os_costs.driver_tx_per_pkt = us 0.55;
    driver_rx_per_pkt = us 0.72;
  }

(* Bare-metal Linux: TSO and no virtualization layers. *)
let native_guest_os =
  {
    xen_guest_os with
    Guestos.Os_costs.stack_tx_per_pkt = us 1.2;
    stack_rx_per_pkt = us 1.9;
    driver_tx_per_pkt = us 0.55;
    driver_rx_per_pkt = us 0.9;
  }

(* The driver domain's unmodified native driver. *)
let driver_domain_os =
  {
    xen_guest_os with
    Guestos.Os_costs.driver_tx_per_pkt = us 0.7;
    driver_rx_per_pkt = us 1.4;
    driver_wakeup_fixed = us 1.5;
  }

let netback_intel =
  {
    Guestos.Netback.default_costs with
    Guestos.Netback.per_pkt_tx = us 1.35;
    per_pkt_rx = us 2.0;
    bridge_per_pkt = us 0.55;
    wakeup_fixed = us 2.0;
    per_ring_visit = us 0.7;
  }

(* Without TSO the guest stack emits MTU-sized packets all the way, which
   showed up in the paper as more driver-domain time per packet. *)
let netback_ricenic =
  {
    netback_intel with
    Guestos.Netback.per_pkt_tx = us 1.6;
    per_pkt_rx = us 2.3;
  }

let xen_costs_intel =
  {
    Xen.Costs.isr = us 1.3;
    virq_dispatch = us 0.75;
    event_notify = us 0.9;
    grant_map = us 0.55;
    grant_transfer = us 1.35;
    domain_create = us 100.;
  }

let xen_costs_ricenic =
  {
    xen_costs_intel with
    Xen.Costs.grant_map = us 0.28;
    grant_transfer = us 1.5;
  }

let cdna_costs =
  {
    Cdna.Cdna_costs.hypercall_fixed = us 0.75;
    validate_per_desc = us 0.3;
    unpin_per_desc = us 0.05;
    iommu_per_desc = us 0.1;
    intr_decode_fixed = us 0.45;
    map_context = us 20.;
    pio_doorbell = us 0.12;
    context_swap = us 45.;
  }

let base ~nic_kind =
  let netback, xen =
    match (nic_kind : Config.nic_kind) with
    | Config.Intel -> (netback_intel, xen_costs_intel)
    | Config.Ricenic -> (netback_ricenic, xen_costs_ricenic)
  in
  {
    guest_os = xen_guest_os;
    driver_os = driver_domain_os;
    netback;
    xen;
    cdna = cdna_costs;
    evtchn_isr = us 0.7;
    nic_evtchn_isr = us 0.5;
    native_isr = us 1.5;
    intr_min_gap =
      (match nic_kind with
      | Config.Intel -> us 240.
      | Config.Ricenic -> us 140.);
    cpu_migration = us 9.;
  }

(* The CDNA interrupt path is a short bit-vector decode, without Xen's
   full upcall machinery. *)
let xen_costs_cdna =
  { xen_costs_ricenic with Xen.Costs.isr = us 0.8; virq_dispatch = us 0.55 }

let for_config system nic_kind =
  let b = base ~nic_kind in
  match (system : Config.system) with
  | Config.Native -> { b with guest_os = native_guest_os }
  | Config.Xen_sw -> b
  | Config.Cdna_sys ->
      { b with guest_os = cdna_guest_os; xen = xen_costs_cdna }
