(** Plain-text table and CSV rendering for experiment results. *)

(** [render ~header rows] lays out an aligned fixed-width text table. *)
val render : header:string list -> string list list -> string

(** [print ~header rows] writes the table to stdout. *)
val print : header:string list -> string list list -> unit

val csv : header:string list -> string list list -> string

(** Formatting helpers. *)

val mbps : float -> string

val pct : float -> string

(** Pass/fail cell: ["yes"] / ["NO"] (failures stand out in a table of
    passes). *)
val verdict : bool -> string

(** ["got/expected"] fraction cell. *)
val ratio : int -> int -> string

(** Rate in events/second with thousands separators, as the paper prints
    interrupt rates ("13,659"). *)
val rate : float -> string

(** [ascii_chart ~x_label ~y_label ~series points] renders a simple text
    chart of one or more [(name, marker, ys)] series over shared x values
    — enough to eyeball the shape of the paper's figures in a terminal.
    The y axis starts at zero. *)
val ascii_chart :
  x_label:string ->
  y_label:string ->
  series:(string * char * float list) list ->
  xs:int list ->
  string
