(* Multi-host scenario on the sharded engine.

   Each simulated host is a complete, independent testbed replica — its
   own engine, hypervisor, NICs, peers and workload — registered as one
   logical process with {!Sim.Shard}. Hosts exchange periodic heartbeats
   over a cross-host control ring whose lookahead is derived from the
   testbed's Ethernet link model, so the scenario genuinely exercises
   the conservative-window and inbox-merge machinery while each host's
   traffic measurement stays exactly {!Run}'s.

   Host [i] runs with seed [cfg.seed + 7919 * i] so replicas are
   distinct but every run of the same (cfg, hosts) is reproducible. *)

type host = {
  id : int;
  tb : Testbed.t;
  lp : Sim.Shard.Partition.lp;
  heartbeats_rx : Sim.Stats.Counter.t;
}

type t = {
  hosts : host array;
  shard : Sim.Shard.t;
}

type report = {
  measurements : Run.measurement list; (* fixed host order: 0, 1, ... *)
  heartbeats : int; (* cross-host heartbeats delivered, all hosts *)
  messages_routed : int;
  shards : int;
  workers : int;
}

let host_seed base i = base + (7919 * i)

(* Cross-host channel lookahead: one full-size wire frame (1500 B
   payload + 18 B Ethernet overhead + 20 B preamble/IFG = 1538 B) at the
   testbed links' default 1 Gb/s and 500 ns propagation — the same
   bound {!Ethernet.Link} enforces, so no cross-host interaction can
   undercut it. *)
let lookahead =
  Sim.Shard.lookahead_of_link ~rate_bps:1_000_000_000
    ~propagation:(Sim.Time.ns 500) ~mtu_bytes:1538

let heartbeat_period = Sim.Time.us 200

let build ?(shards = 1) ?workers ~hosts (cfg : Config.t) =
  if hosts < 1 then invalid_arg "Multihost.build: hosts must be >= 1";
  let p = Sim.Shard.Partition.create () in
  let hs =
    Array.init hosts (fun i ->
        let hcfg = { cfg with Config.seed = host_seed cfg.Config.seed i } in
        let tb = Testbed.build hcfg in
        let lp =
          Sim.Shard.Partition.add p
            ~name:(Printf.sprintf "host%d" i)
            tb.Testbed.engine
        in
        let heartbeats_rx =
          Sim.Metrics.counter tb.Testbed.metrics "xhost.heartbeat_rx"
        in
        { id = i; tb; lp; heartbeats_rx })
  in
  if hosts > 1 then
    Array.iter
      (fun h ->
        let nxt = hs.((h.id + 1) mod hosts) in
        Sim.Shard.Partition.connect p ~src:h.lp ~dst:nxt.lp
          ~min_latency:lookahead)
      hs;
  { hosts = hs; shard = Sim.Shard.create ~shards ?workers p }

(* Each host beats on its own engine; the delivery increments the next
   host's counter through the shard barrier. The delay equals the
   channel lookahead — the tightest send the conservative contract
   allows, so every window boundary carries traffic. *)
let start_heartbeats t =
  let n = Array.length t.hosts in
  if n > 1 then
    Array.iter
      (fun h ->
        let nxt = t.hosts.((h.id + 1) mod n) in
        let eng = h.tb.Testbed.engine in
        let rec beat () =
          Sim.Shard.send t.shard ~src:h.lp ~dst:nxt.lp ~delay:lookahead
            (fun () -> Sim.Stats.Counter.incr nxt.heartbeats_rx);
          ignore
            (Sim.Engine.schedule_at eng
               (Sim.Time.add (Sim.Engine.now eng) heartbeat_period)
               beat)
        in
        ignore (Sim.Engine.schedule_at eng heartbeat_period beat))
      t.hosts

let run ?(quick = false) ?(shards = 1) ?workers ?prepare ~hosts
    (cfg : Config.t) =
  let cfg = Run.apply_quick ~quick cfg in
  let t = build ~shards ?workers ~hosts cfg in
  (match prepare with Some f -> f t | None -> ());
  Array.iter (fun h -> h.tb.Testbed.start ()) t.hosts;
  start_heartbeats t;
  Sim.Shard.run t.shard ~until:cfg.Config.warmup;
  let baselines =
    Array.map (fun h -> Run.reset_after_warmup h.tb.Testbed.config h.tb) t.hosts
  in
  let stop = Sim.Time.add cfg.Config.warmup cfg.Config.duration in
  Sim.Shard.run t.shard ~until:stop;
  let measurements =
    Array.to_list
      (Array.mapi
         (fun i h -> Run.collect h.tb.Testbed.config h.tb baselines.(i))
         t.hosts)
  in
  ( {
      measurements;
      heartbeats =
        Array.fold_left
          (fun acc h -> acc + Sim.Stats.Counter.value h.heartbeats_rx)
          0 t.hosts;
      messages_routed = Sim.Shard.messages_routed t.shard;
      shards = Sim.Shard.shards t.shard;
      workers = Sim.Shard.workers t.shard;
    },
    t )

let pp_report ppf r =
  List.iteri
    (fun i m -> Format.fprintf ppf "host %d | %a@." i Run.pp m)
    r.measurements;
  Format.fprintf ppf
    "x-host: hosts=%d shards=%d workers=%d heartbeats=%d routed=%d@."
    (List.length r.measurements)
    r.shards r.workers r.heartbeats r.messages_routed
