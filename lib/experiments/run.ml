type measurement = {
  config : Config.t;
  tx_mbps : float;
  rx_mbps : float;
  profile : Host.Profile.report;
  driver_virq_per_sec : float;
  guest_virq_per_sec : float;
  phys_irq_per_sec : float;
  rx_drops : int;
  faults : int;
  integrity_failures : int;
  latency_p50_us : float;
  latency_p99_us : float;
  fairness : float;
  events_fired : int;
}

let primary_mbps m =
  match m.config.Config.pattern with
  | Workload.Pattern.Tx -> m.tx_mbps
  | Workload.Pattern.Rx -> m.rx_mbps
  | Workload.Pattern.Bidirectional -> m.tx_mbps +. m.rx_mbps

(* The paper reports application-level (TCP payload) throughput; our
   frames carry 1500 bytes of IP payload, of which 52 are TCP/IP
   headers. *)
let l3_header_bytes = 52

let sum_received conns =
  List.fold_left (fun acc c -> acc + Workload.Connection.received c) 0 conns

let sum_integrity conns =
  List.fold_left
    (fun acc c -> acc + Workload.Connection.integrity_failures c)
    0 conns

(* Aggregate a latency percentile across connections, weighted by simply
   pooling the histograms' percentile of percentiles (the per-connection
   distributions are near-identical by symmetry). *)
let latency_percentile conns p =
  let samples =
    List.filter_map
      (fun c ->
        let h = Workload.Connection.latency c in
        if Sim.Stats.Histogram.count h = 0 then None
        else Some (float_of_int (Sim.Stats.Histogram.percentile h p)))
      conns
  in
  match samples with
  | [] -> 0.
  | _ ->
      List.fold_left ( +. ) 0. samples
      /. float_of_int (List.length samples)
      /. 1e3 (* ns -> us *)

(* Jain's index: (sum x)^2 / (n * sum x^2); 1.0 when all equal. *)
let jain_fairness conns =
  let xs =
    List.map (fun c -> float_of_int (Workload.Connection.received c)) conns
  in
  match xs with
  | [] -> 1.
  | _ ->
      let n = float_of_int (List.length xs) in
      let s = List.fold_left ( +. ) 0. xs in
      let s2 = List.fold_left (fun a x -> a +. (x *. x)) 0. xs in
      if s2 = 0. then 1. else s *. s /. (n *. s2)

let nic_drops stats =
  List.fold_left
    (fun acc (s : Nic.Dp.stats) -> acc + s.Nic.Dp.rx_overflow_drops)
    0 stats

let nic_faults stats =
  List.fold_left (fun acc (s : Nic.Dp.stats) -> acc + s.Nic.Dp.faults) 0 stats

let apply_quick ~quick (cfg : Config.t) =
  if quick then
    {
      cfg with
      Config.warmup = Sim.Time.div_int cfg.Config.warmup 2;
      duration = Sim.Time.div_int cfg.Config.duration 4;
    }
  else cfg

type baselines = {
  drops0 : int;
  faults0 : int;
  irqs0 : int;
  events0 : int;
}

(* End of warm-up: zero every counter the measurement reads. The engine
   must stand exactly at [cfg.warmup]. *)
let reset_after_warmup (cfg : Config.t) (tb : Testbed.t) =
  Host.Profile.reset ~now:cfg.Config.warmup tb.Testbed.profile;
  List.iter Xen.Domain.reset_virq_count (Xen.Hypervisor.domains tb.Testbed.xen);
  List.iter Workload.Connection.reset_counters tb.Testbed.conns_tx;
  List.iter Workload.Connection.reset_counters tb.Testbed.conns_rx;
  Xen.Hypervisor.reset_counters tb.Testbed.xen;
  {
    drops0 = nic_drops (tb.Testbed.nic_stats ());
    faults0 = nic_faults (tb.Testbed.nic_stats ());
    irqs0 = tb.Testbed.nic_interrupts ();
    events0 = Sim.Engine.fired_count tb.Testbed.engine;
  }

let collect (cfg : Config.t) (tb : Testbed.t) (b : baselines) =
  let { drops0; faults0; irqs0; events0 } = b in
  let secs = Sim.Time.to_sec_f cfg.Config.duration in
  let goodput_per_pkt = max 1 (cfg.Config.payload - l3_header_bytes) in
  let mbps conns =
    float_of_int (sum_received conns * goodput_per_pkt * 8) /. secs /. 1e6
  in
  let profile =
    Host.Profile.report tb.Testbed.profile ~window:cfg.Config.duration
      ~driver_domain:
        (Option.map Xen.Domain.id tb.Testbed.driver_dom)
  in
  let driver_virq =
    match tb.Testbed.driver_dom with
    | Some d -> float_of_int (Xen.Domain.virq_count d) /. secs
    | None -> 0.
  in
  let guest_virq =
    List.fold_left
      (fun acc d -> acc +. float_of_int (Xen.Domain.virq_count d))
      0. tb.Testbed.guest_doms
    /. secs
  in
  let phys_irq =
    match cfg.Config.system with
    | Config.Native ->
        float_of_int (tb.Testbed.nic_interrupts () - irqs0) /. secs
    | Config.Xen_sw | Config.Cdna_sys ->
        float_of_int (Xen.Hypervisor.physical_irqs tb.Testbed.xen) /. secs
  in
  let measured_conns =
    match cfg.Config.pattern with
    | Workload.Pattern.Tx -> tb.Testbed.conns_tx
    | Workload.Pattern.Rx -> tb.Testbed.conns_rx
    | Workload.Pattern.Bidirectional ->
        tb.Testbed.conns_tx @ tb.Testbed.conns_rx
  in
  {
    config = cfg;
    tx_mbps = mbps tb.Testbed.conns_tx;
    rx_mbps = mbps tb.Testbed.conns_rx;
    profile;
    driver_virq_per_sec = driver_virq;
    guest_virq_per_sec = guest_virq;
    phys_irq_per_sec = phys_irq;
    rx_drops = nic_drops (tb.Testbed.nic_stats ()) - drops0;
    faults = nic_faults (tb.Testbed.nic_stats ()) - faults0;
    integrity_failures =
      sum_integrity tb.Testbed.conns_tx + sum_integrity tb.Testbed.conns_rx;
    latency_p50_us = latency_percentile measured_conns 50.;
    latency_p99_us = latency_percentile measured_conns 99.;
    fairness = jain_fairness measured_conns;
    events_fired = Sim.Engine.fired_count tb.Testbed.engine - events0;
  }

let run_tb ?(quick = false) (cfg : Config.t) =
  let cfg = apply_quick ~quick cfg in
  let tb = Testbed.build cfg in
  tb.Testbed.start ();
  Sim.Engine.run tb.Testbed.engine ~until:cfg.Config.warmup;
  let b = reset_after_warmup cfg tb in
  let stop = Sim.Time.add cfg.Config.warmup cfg.Config.duration in
  Sim.Engine.run tb.Testbed.engine ~until:stop;
  (collect cfg tb b, tb)

let run ?quick cfg = fst (run_tb ?quick cfg)

let pp ppf m =
  Format.fprintf ppf
    "%s: tx=%.0f Mb/s rx=%.0f Mb/s | %a | virq drv=%.0f/s guest=%.0f/s \
     phys=%.0f/s | latency p50=%.0fus p99=%.0fus"
    (Config.describe m.config) m.tx_mbps m.rx_mbps Host.Profile.pp_report
    m.profile m.driver_virq_per_sec m.guest_virq_per_sec m.phys_irq_per_sec
    m.latency_p50_us m.latency_p99_us
