(** Full-machine assembly.

    Builds one complete simulated testbed from a {!Config.t}: the CPU and
    memory, the hypervisor (for virtualized systems), the NICs on their
    links with an ideal {!Peer} per link, the driver stacks appropriate to
    the chosen system, and the benchmark workload:

    - {b Native}: one bare-metal OS; one native driver + stack per NIC;
      interrupts go straight to the OS.
    - {b Xen_sw}: driver domain owning the physical NICs (native drivers,
      netback, software bridge) and N paravirtualized guests (netfront
      over shared channels, event-channel notifications, page flipping).
    - {b Cdna_sys}: N guests, each with its own hardware context on every
      CDNA NIC (its own MAC, rings, mailbox mapping), the CDNA hypervisor
      extension providing DMA protection and bit-vector interrupt
      delivery. The driver domain exists but does no datapath work.

    Every guest talks to every NIC's peer through
    [conns_per_guest_per_nic] window-limited connections. *)

type t = {
  config : Config.t;
  model : Cost_model.t;
  engine : Sim.Engine.t;
  cpu : Host.Cpu.t;
  profile : Host.Profile.t;
  mem : Memory.Phys_mem.t;
  xen : Xen.Hypervisor.t;
  grant_table : Xen.Grant_table.t;
      (** The host's page-flip ledger; one per testbed, so multi-host
          (multi-LP) runs share no grant state. *)
  metrics : Sim.Metrics.t;
      (** Registry with every component's gauges pre-registered: scheduler,
          DMA bus, hypervisor, NICs (per-context), netback/netfront or
          CDNA contexts as the system dictates. *)
  driver_dom : Xen.Domain.t option;
  guest_doms : Xen.Domain.t list;
  benches : Workload.Bench_program.t list;
  conns_tx : Workload.Connection.t list;  (** Guest-transmit connections. *)
  conns_rx : Workload.Connection.t list;  (** Guest-receive connections. *)
  peers : Peer.t list;
  cdna_hyp : Cdna.Hyp.t option;
  cdna_handles : Cdna.Hyp.ctx_handle list;
  netback : Guestos.Netback.t option;
  nic_stats : unit -> Nic.Dp.stats list;
  nic_interrupts : unit -> int;  (** Physical interrupts raised by NICs. *)
  start : unit -> unit;  (** Arm the workload (peers + benchmark apps). *)
}

val build : Config.t -> t
