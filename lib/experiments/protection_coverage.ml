module FI = Sim.Fault_inject
module H = Cdna.Hyp
module Frame = Ethernet.Frame
module Mac = Ethernet.Mac_addr

type fault_class =
  | Out_of_sequence
  | Foreign_page
  | Over_length
  | Dma_access
  | Link_drop
  | Link_corrupt

let all_classes =
  [ Out_of_sequence; Foreign_page; Over_length; Dma_access; Link_drop; Link_corrupt ]

let class_name = function
  | Out_of_sequence -> "out-of-sequence"
  | Foreign_page -> "foreign-page"
  | Over_length -> "over-length"
  | Dma_access -> "dma-access"
  | Link_drop -> "link-drop"
  | Link_corrupt -> "link-corrupt"

let mode_name = function
  | Cdna.Cdna_costs.Full -> "Full"
  | Cdna.Cdna_costs.Iommu -> "Iommu"
  | Cdna.Cdna_costs.Disabled -> "Disabled"

(* Which protection mechanism is on the hook for each cell of the sweep.
   Static knowledge: the scenario construction (below) decides which
   attack channel is even available in each mode. *)
let mechanism mode fault =
  match (mode, fault) with
  | _, Link_drop -> "receiver gap accounting"
  | _, Link_corrupt -> "sink integrity check"
  | _, Dma_access -> "bus fault + reassign"
  | _, Out_of_sequence -> "NIC seqno check"
  | Cdna.Cdna_costs.Full, (Foreign_page | Over_length) -> "hypercall validation"
  | Cdna.Cdna_costs.Iommu, (Foreign_page | Over_length) -> "IOMMU"
  | Cdna.Cdna_costs.Disabled, (Foreign_page | Over_length) -> "(none)"

type row = {
  r_mode : Cdna.Cdna_costs.protection;
  r_fault : fault_class;
  r_mechanism : string;
  r_injected : int;
  r_detected : int;
  r_leaked : int;
  r_contained : bool;
  r_victim : (int * int) option;  (* delivered/baseline for the targeted benign flow *)
  r_others : int * int;  (* delivered/baseline for untargeted benign flows *)
  r_recoveries : int;
}

(* ---------- The world: one CDNA NIC, two benign guests, one rogue ---------- *)

let mac_a = Mac.make 1
let mac_b = Mac.make 2
let mac_att = Mac.make 3
let us = Sim.Time.us
let ms = Sim.Time.ms

type sink = {
  mutable s_a : int;  (* intact flow-a frames *)
  mutable s_b : int;
  mutable s_att : int;  (* anything bearing the rogue's MAC *)
  mutable s_corrupt : int;  (* benign frames whose payload fails the check *)
}

type world = {
  engine : Sim.Engine.t;
  mem : Memory.Phys_mem.t;
  xen : Xen.Hypervisor.t;
  cdna : H.t;
  nic : Cdna.Cnic.t;
  dma : Bus.Dma_engine.t;
  link : Ethernet.Link.t;
  guest_a : Xen.Domain.t;
  guest_b : Xen.Domain.t;
  rogue : Xen.Domain.t;
  h_a : H.ctx_handle;
  h_att : H.ctx_handle;
  d_a : Cdna.Driver.t;
  d_b : Cdna.Driver.t;
  stack_a : Guestos.Net_stack.t;
  stack_b : Guestos.Net_stack.t;
  sink : sink;
}

let build ~mode () =
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu = Host.Cpu.create engine ~profile () in
  let mem = Memory.Phys_mem.create ~total_pages:8192 () in
  let xen = Xen.Hypervisor.create engine ~cpu ~mem () in
  let dom name = Xen.Hypervisor.create_domain xen ~name ~kind:Xen.Domain.Guest ~weight:256 in
  let guest_a = dom "benign-a" ~mem_pages:1024 in
  let guest_b = dom "benign-b" ~mem_pages:1024 in
  let rogue = dom "rogue" ~mem_pages:256 in
  let cdna = H.create xen ~protection:mode () in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let irq = Bus.Irq.create ~name:"cdna" in
  let intr_page = List.hd (Xen.Hypervisor.alloc_hyp_pages xen 1) in
  let nic =
    Cdna.Cnic.create engine ~mem ~dma ~irq ~dma_context_base:0
      ~intr_base:(Memory.Addr.base_of_pfn intr_page)
      ()
  in
  H.add_nic cdna nic;
  let link = Ethernet.Link.create engine () in
  Cdna.Cnic.attach_link nic link ~side:Ethernet.Link.A;
  let assign guest mac =
    match H.assign_context cdna ~nic ~guest ~mac ~isr_cost:(us 1) with
    | Ok h -> h
    | Error `No_free_context -> failwith "protection_coverage: no free context"
  in
  let h_a = assign guest_a mac_a in
  let h_b = assign guest_b mac_b in
  let h_att = assign rogue mac_att in
  let driver h = Cdna.Driver.create ~hyp:cdna ~handle:h ~costs:Guestos.Os_costs.default () in
  let d_a = driver h_a and d_b = driver h_b in
  Cdna.Driver.enable_auto_recovery d_a;
  Cdna.Driver.enable_auto_recovery d_b;
  let stack dom d =
    Guestos.Net_stack.create
      ~post_kernel:(fun ~cost fn -> Xen.Hypervisor.kernel_work xen dom ~cost fn)
      ~costs:Guestos.Os_costs.default ~netdev:(Cdna.Driver.netdev d)
  in
  let stack_a = stack guest_a d_a and stack_b = stack guest_b d_b in
  let sink = { s_a = 0; s_b = 0; s_att = 0; s_corrupt = 0 } in
  Ethernet.Link.attach link Ethernet.Link.B (fun f ->
      if Mac.equal f.Frame.src mac_att then sink.s_att <- sink.s_att + 1
      else if
        (* Benign flows stamp payload_seed = seq, so the sink can vet the
           payload without materialized bytes. *)
        f.Frame.payload_seed <> f.Frame.seq
      then sink.s_corrupt <- sink.s_corrupt + 1
      else if Mac.equal f.Frame.src mac_a then sink.s_a <- sink.s_a + 1
      else if Mac.equal f.Frame.src mac_b then sink.s_b <- sink.s_b + 1);
  {
    engine; mem; xen; cdna; nic; dma; link; guest_a; guest_b; rogue;
    h_a; h_att; d_a; d_b; stack_a; stack_b; sink;
  }

(* Both benign guests transmit [frames] 1000-byte frames in batches of 5
   every 250 us: ~160 Mb/s aggregate, far below the 1 Gb/s link, so the
   fault-free run delivers every frame and the containment comparison is
   exact rather than congestion-noisy. *)
let batch = 5
let interval = us 250
let traffic_start = ms 5

let start_traffic w ~frames =
  let send stack src i =
    Guestos.Net_stack.send stack
      (List.init batch (fun j ->
           let seq = (i * batch) + j in
           Frame.make ~src:(Mac.make src) ~dst:(Mac.make 99)
             ~kind:Frame.Data ~flow:src ~seq ~payload_len:1000
             ~payload_seed:seq ()))
  in
  let n_batches = (frames + batch - 1) / batch in
  for i = 0 to n_batches - 1 do
    ignore
      (Sim.Engine.schedule_at w.engine
         (Sim.Time.add traffic_start (Sim.Time.mul_int interval i))
         (fun () ->
           send w.stack_a 1 i;
           send w.stack_b 2 i))
  done;
  Sim.Time.add (Sim.Time.add traffic_start (Sim.Time.mul_int interval n_batches))
    (ms 10)

(* ---------- Attack channels ---------- *)

let eop = Memory.Dma_desc.flag_end_of_packet

let attack_frame ~seq =
  Frame.make ~src:mac_att ~dst:(Mac.make 99) ~kind:Frame.Data ~flow:3 ~seq
    ~payload_len:1000 ~payload_seed:seq ()

let alloc_rogue_page w =
  List.hd (Xen.Hypervisor.alloc_pages w.xen w.rogue 1)

let setup_rogue_tx_ring w k =
  let tx = alloc_rogue_page w in
  let status = alloc_rogue_page w in
  H.register_ring w.cdna w.h_att H.Tx ~base:(Memory.Addr.base_of_pfn tx)
    ~slots:16 (fun _ ->
      H.register_status w.cdna w.h_att ~addr:(Memory.Addr.base_of_pfn status)
        (fun _ -> k ~ring_base:(Memory.Addr.base_of_pfn tx)))

let over_length_len = (4 * Memory.Addr.page_size) + 512

(* Full protection confines the rogue to the hypercall + doorbell channel
   (it cannot write hypervisor-owned rings); the attack is a batch of
   forged enqueue attempts, which the hypervisor must reject. *)
let attack_full w kind ~attempts ~injected ~rejected =
  setup_rogue_tx_ring w (fun ~ring_base:_ ->
      match kind with
      | Foreign_page | Over_length ->
          let desc () =
            match kind with
            | Foreign_page ->
                let foreign = List.hd (Xen.Domain.pages w.guest_a) in
                {
                  Memory.Dma_desc.addr = Memory.Addr.base_of_pfn foreign;
                  len = 1000;
                  flags = eop;
                  seqno = 0;
                }
            | _ ->
                (* From the rogue's highest page so the span runs off the
                   end of everything it owns. *)
                let last =
                  List.fold_left max 0 (Xen.Domain.pages w.rogue)
                in
                {
                  Memory.Dma_desc.addr = Memory.Addr.base_of_pfn last;
                  len = over_length_len;
                  flags = eop;
                  seqno = 0;
                }
          in
          for _ = 1 to attempts do
            incr injected;
            H.enqueue w.cdna w.h_att H.Tx [ desc () ] (function
              | Error (`Not_owner _) -> incr rejected
              | Error _ -> incr rejected
              | Ok _ -> ())
          done
      | _ ->
          (* Out-of-sequence: a doorbell past the last hypervisor-stamped
             descriptor makes the NIC fetch ring slots the hypervisor
             never sequence-stamped. *)
          incr injected;
          let hw = H.driver_if w.h_att in
          hw.Nic.Driver_if.stage_tx_meta (attack_frame ~seq:0);
          hw.Nic.Driver_if.tx_doorbell 2)

(* Under Iommu the hypervisor still stamps rings via hypercall, but the
   guest owns (and can scribble on) its ring memory: enqueue one honest
   descriptor, then overwrite the stamped slot with a forged one before
   ringing the doorbell. Only the IOMMU (or the NIC's seqno check) stands
   between the forgery and the bus. *)
let attack_iommu w kind ~injected =
  setup_rogue_tx_ring w (fun ~ring_base ->
      let own = alloc_rogue_page w in
      let honest =
        { Memory.Dma_desc.addr = Memory.Addr.base_of_pfn own; len = 1000; flags = eop; seqno = 0 }
      in
      H.enqueue w.cdna w.h_att H.Tx [ honest ] (function
        | Error _ -> ()
        | Ok prod ->
            incr injected;
            let forged =
              match kind with
              | Foreign_page ->
                  let foreign = List.hd (Xen.Domain.pages w.guest_a) in
                  { honest with Memory.Dma_desc.addr = Memory.Addr.base_of_pfn foreign }
              | Over_length -> { honest with Memory.Dma_desc.len = over_length_len }
              | _ -> { honest with Memory.Dma_desc.seqno = 7 }
            in
            let hw = H.driver_if w.h_att in
            Memory.Desc_layout.write hw.Nic.Driver_if.desc_layout w.mem
              ~at:ring_base forged;
            hw.Nic.Driver_if.stage_tx_meta (attack_frame ~seq:0);
            hw.Nic.Driver_if.tx_doorbell prod))

(* With protection disabled the context behaves like a native NIC, so the
   rogue runs an unmodified native driver in malicious mode: every
   descriptor it writes (directly, no hypercall) is forged. *)
let attack_disabled w kind ~frames ~driver_out =
  let hw = H.driver_if w.h_att in
  let nd =
    Guestos.Native_driver.create ~mem:w.mem
      ~post_kernel:(fun ~cost fn -> Xen.Hypervisor.kernel_work w.xen w.rogue ~cost fn)
      ~costs:Guestos.Os_costs.default ~hw ~mac:mac_att
      ~alloc_pages:(fun n -> Xen.Hypervisor.alloc_pages w.xen w.rogue n)
      ~tx_slots:16 ~rx_slots:16 ()
  in
  H.set_event_handler w.h_att (fun () -> Guestos.Native_driver.handle_interrupt nd);
  Guestos.Native_driver.set_malice nd
    (Some
       (match kind with
       | Foreign_page ->
           Guestos.Native_driver.Foreign_page (List.hd (Xen.Domain.pages w.guest_a))
       | Over_length -> Guestos.Native_driver.Over_length
       | _ -> Guestos.Native_driver.Out_of_sequence));
  driver_out := Some nd;
  let stack =
    Guestos.Net_stack.create
      ~post_kernel:(fun ~cost fn -> Xen.Hypervisor.kernel_work w.xen w.rogue ~cost fn)
      ~costs:Guestos.Os_costs.default ~netdev:(Guestos.Native_driver.netdev nd)
  in
  Guestos.Net_stack.send stack (List.init frames (fun i -> attack_frame ~seq:i))

(* ---------- One cell of the sweep ---------- *)

let faults_for w guest =
  List.length
    (List.filter
       (fun (dom, _) -> dom = Xen.Domain.id guest)
       (H.faults w.cdna))

let run_cell ~mode ~seed ~frames ~baseline fault =
  let w = build ~mode () in
  let fi = FI.create ~seed in
  let traffic_end = start_traffic w ~frames in
  let attack_at = Sim.Time.add traffic_start (ms 2) in
  let injected = ref 0 and rejected = ref 0 in
  let rogue_nd = ref None in
  (match fault with
  | Dma_access ->
      (* One injected bus fault on benign guest A's context, mid-run; its
         driver must auto-recover onto a fresh context. *)
      FI.arm fi ~site:"dma.access"
        (FI.plan ~ctx:(H.ctx_id w.h_a, H.ctx_id w.h_a) (FI.Nth 40));
      Bus.Dma_engine.set_fault_injector w.dma
        (Some
           (fun ~context ~addr ~len ->
             ignore len;
             FI.fire fi ~site:"dma.access" ~ctx:context ~addr ()))
  | Link_drop | Link_corrupt ->
      FI.arm fi ~site:"link.tx" (FI.plan (FI.Probability 0.1));
      let verdict : Ethernet.Link.verdict =
        if fault = Link_drop then `Drop else `Corrupt
      in
      Ethernet.Link.set_tamper w.link
        (Some
           (fun f ->
             (* Target flow A only, so flow B doubles as the containment
                control. *)
             if
               Mac.equal f.Frame.src mac_a
               && FI.fire fi ~site:"link.tx" ()
             then verdict
             else `Pass))
  | Out_of_sequence | Foreign_page | Over_length ->
      ignore
        (Sim.Engine.schedule_at w.engine attack_at (fun () ->
             match mode with
             | Cdna.Cdna_costs.Full ->
                 attack_full w fault ~attempts:8 ~injected ~rejected
             | Cdna.Cdna_costs.Iommu -> attack_iommu w fault ~injected
             | Cdna.Cdna_costs.Disabled ->
                 attack_disabled w fault ~frames:10 ~driver_out:rogue_nd)));
  Sim.Engine.run w.engine ~until:traffic_end;
  let base_a, base_b = baseline in
  let injected =
    match fault with
    | Dma_access -> Bus.Dma_engine.injected_faults w.dma
    | Link_drop | Link_corrupt -> FI.injected fi ~site:"link.tx"
    | _ -> (
        match !rogue_nd with
        | Some nd -> Guestos.Native_driver.malicious_descs nd
        | None -> !injected)
  in
  let detected =
    match fault with
    | Dma_access -> faults_for w w.guest_a
    | Link_drop -> frames - w.sink.s_a - w.sink.s_corrupt
    | Link_corrupt -> w.sink.s_corrupt
    | Foreign_page | Over_length when mode = Cdna.Cdna_costs.Full -> !rejected
    | _ -> faults_for w w.rogue
  in
  let leaked = w.sink.s_att in
  let victim, others =
    match fault with
    | Dma_access | Link_drop | Link_corrupt ->
        (Some (w.sink.s_a, base_a), (w.sink.s_b, base_b))
    | _ -> (None, (w.sink.s_a + w.sink.s_b, base_a + base_b))
  in
  let contained =
    let got, base = others in
    base > 0 && abs (got - base) * 100 <= base
  in
  {
    r_mode = mode;
    r_fault = fault;
    r_mechanism = mechanism mode fault;
    r_injected = injected;
    r_detected = detected;
    r_leaked = leaked;
    r_contained = contained;
    r_victim = victim;
    r_others = others;
    r_recoveries = Cdna.Driver.recoveries w.d_a + Cdna.Driver.recoveries w.d_b;
  }

let run_baseline ~mode ~frames =
  let w = build ~mode () in
  let traffic_end = start_traffic w ~frames in
  Sim.Engine.run w.engine ~until:traffic_end;
  (w.sink.s_a, w.sink.s_b)

let default_modes =
  [ Cdna.Cdna_costs.Full; Cdna.Cdna_costs.Iommu; Cdna.Cdna_costs.Disabled ]

let sweep ?(quick = false) ?(seed = 42) ?(modes = default_modes)
    ?(faults = all_classes) () =
  let frames = if quick then 60 else 200 in
  List.concat_map
    (fun mode ->
      let baseline = run_baseline ~mode ~frames in
      List.map (fun fault -> run_cell ~mode ~seed ~frames ~baseline fault) faults)
    modes

let print rows =
  print_endline
    "Protection coverage: injected faults x protection modes (paper sections 3.3, 5.3)";
  Report.print
    ~header:
      [ "Mode"; "Fault"; "Mechanism"; "Inj"; "Det"; "Leak"; "Contained";
        "Victim"; "Others"; "Recov" ]
    (List.map
       (fun r ->
         [
           mode_name r.r_mode;
           class_name r.r_fault;
           r.r_mechanism;
           string_of_int r.r_injected;
           string_of_int r.r_detected;
           string_of_int r.r_leaked;
           Report.verdict r.r_contained;
           (match r.r_victim with
           | Some (got, base) -> Report.ratio got base
           | None -> "-");
           (let got, base = r.r_others in
            Report.ratio got base);
           string_of_int r.r_recoveries;
         ])
       rows);
  print_endline
    "(Det = protection events: hypercall rejections, NIC/IOMMU faults, or\n\
    \ receiver-side integrity/gap detections. Leak = rogue-sourced frames\n\
    \ that reached the wire sink. Contained = untargeted guests' delivery\n\
    \ within 1% of the fault-free baseline.)"
