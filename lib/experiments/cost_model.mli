(** Calibrated CPU cost parameters per testbed assembly.

    The simulator's per-packet and per-event costs are free parameters;
    this module pins them so that the {e single-guest} runs land near the
    paper's Tables 1-3 (throughput, execution profile, interrupt rates).
    Everything else — scaling with guest count, protection on/off deltas,
    crossovers — is emergent behaviour of the mechanisms, not curve fit.

    Derivation sketch (see DESIGN.md for the arithmetic): the paper's
    profiles give, per 1500-byte packet, roughly

    - Xen/Intel tx: guest 2.97 us, driver domain 2.67 us, hypervisor 1.48 us
    - Xen/Intel rx: guest 3.35 us, driver domain 3.97 us, hypervisor 2.77 us
    - CDNA tx: guest 2.43 us, hypervisor 0.66 us
    - CDNA rx: guest 3.07 us, hypervisor 0.63 us
    - Native: 2.34 us (tx) / 3.31 us (rx) total

    which this module splits across stack/driver/netback/bridge/grant
    costs. *)

type t = {
  guest_os : Guestos.Os_costs.t;  (** Guest stack/driver/app costs. *)
  driver_os : Guestos.Os_costs.t;  (** Driver-domain native-driver costs. *)
  netback : Guestos.Netback.costs;
  xen : Xen.Costs.t;
  cdna : Cdna.Cdna_costs.t;
  evtchn_isr : Sim.Time.t;  (** Guest virtual-ISR entry cost. *)
  nic_evtchn_isr : Sim.Time.t;  (** Driver-domain NIC virq entry cost. *)
  native_isr : Sim.Time.t;  (** Bare-metal ISR cost (no hypervisor). *)
  intr_min_gap : Sim.Time.t;  (** NIC interrupt-coalescing gap. *)
  cpu_migration : Sim.Time.t;
      (** IPI delivery + cold-cache refill charged when a vcpu wakes on a
          different CPU of an SMP host. *)
}

(** Calibrated parameters for an assembly. *)
val for_config : Config.system -> Config.nic_kind -> t
