(** Experiment configuration.

    One value of {!t} describes a complete testbed assembly and workload —
    everything needed to reproduce one cell of the paper's tables or one
    point of its figures. *)

type system =
  | Native  (** Bare-metal Linux baseline (Table 1). *)
  | Xen_sw  (** Xen software I/O virtualization (driver domain + bridge). *)
  | Cdna_sys  (** Concurrent direct network access. *)

type nic_kind = Intel | Ricenic

type t = {
  system : system;
  nic : nic_kind;  (** NIC used by Native/Xen_sw; CDNA always uses RiceNIC. *)
  nics : int;  (** Physical NICs (2 in Tables 2-4, 6 in Table 1). *)
  guests : int;
  cpus : int;
      (** Host CPUs, each with its own credit runqueue (1 = the paper's
          single-CPU testbed, event-for-event identical to the historical
          scheduler). *)
  driver_weight : int;
      (** Credit-scheduler weight of the driver domain (guests use 256).
          The paper-era tuning question: should dom0 be favoured? *)
  pattern : Workload.Pattern.t;
  conns_per_guest_per_nic : int;
  window : int;  (** Per-connection packets in flight. *)
  payload : int;  (** Payload bytes per packet (1500 = MTU-sized TCP). *)
  gso_segments : int;
      (** TSO/GSO: MTU segments per super-frame handed to the stack
          (1 = off). Requires a segmenting NIC; see the TSO extension. *)
  protection : Cdna.Cdna_costs.protection;  (** CDNA only. *)
  materialize : bool;  (** Move and verify real payload bytes. *)
  seed : int;
  warmup : Sim.Time.t;
  duration : Sim.Time.t;  (** Measured window after warm-up. *)
  slice : Sim.Time.t option;
      (** Credit-scheduler stickiness slice override ([None] = the
          scheduler's 1 ms default). Small slices raise context-switch —
          and, with paged CDNA contexts, context-swap — rates. *)
}

(** Single guest, 2 NICs, transmit, full protection, 200 ms measured. *)
val default : t

val describe : t -> string
val system_name : system -> string
val nic_name : nic_kind -> string
