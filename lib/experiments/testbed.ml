type t = {
  config : Config.t;
  model : Cost_model.t;
  engine : Sim.Engine.t;
  cpu : Host.Cpu.t;
  profile : Host.Profile.t;
  mem : Memory.Phys_mem.t;
  xen : Xen.Hypervisor.t;
  grant_table : Xen.Grant_table.t;
  metrics : Sim.Metrics.t;
  driver_dom : Xen.Domain.t option;
  guest_doms : Xen.Domain.t list;
  benches : Workload.Bench_program.t list;
  conns_tx : Workload.Connection.t list;
  conns_rx : Workload.Connection.t list;
  peers : Peer.t list;
  cdna_hyp : Cdna.Hyp.t option;
  cdna_handles : Cdna.Hyp.ctx_handle list;
  netback : Guestos.Netback.t option;
  nic_stats : unit -> Nic.Dp.stats list;
  nic_interrupts : unit -> int;
  start : unit -> unit;
}

let peer_mac i = Ethernet.Mac_addr.make (0x100000 + i)
let native_nic_mac i = Ethernet.Mac_addr.make (0x200000 + i)
let xen_guest_mac g = Ethernet.Mac_addr.make (0x300000 + g)
let cdna_guest_mac ~guest ~nic = Ethernet.Mac_addr.make (0x400000 + (guest * 64) + nic)

(* Mutable builder state shared by the per-system assembly code. *)
type builder = {
  cfg : Config.t;
  cm : Cost_model.t;
  b_engine : Sim.Engine.t;
  b_cpu : Host.Cpu.t;
  b_mem : Memory.Phys_mem.t;
  b_xen : Xen.Hypervisor.t;
  b_gnt : Xen.Grant_table.t;
  b_metrics : Sim.Metrics.t;
  dma : Bus.Dma_engine.t;
  links : Ethernet.Link.t array;
  mutable next_conn_id : int;
  mutable tx_conns : Workload.Connection.t list;
  mutable rx_conns : Workload.Connection.t list;
  mutable peers_rev : Peer.t list;
  rng : Sim.Rng.t;
  mutable stats_fns : (unit -> Nic.Dp.stats) list;
  mutable irq_fns : (unit -> int) list;
  (* conn id -> peer, for routing guest acks back *)
  ack_peer : (int, Peer.t) Hashtbl.t;
}

let fresh_conn_id b =
  let id = b.next_conn_id in
  b.next_conn_id <- id + 1;
  id

(* Reverse-path latency for out-of-band acknowledgements (guest receive
   role): roughly a wire-and-turnaround delay. *)
let ack_wire_delay = Sim.Time.us 20

(* Create the connections between one guest stack and one peer, register
   them on both ends, and hand them to the benchmark program. *)
let wire_stream b ~bench ~stack ~peer ~guest_mac =
  let cfg = b.cfg in
  let tx = ref [] and rx = ref [] in
  for _ = 1 to cfg.Config.conns_per_guest_per_nic do
    if Workload.Pattern.guest_transmits cfg.Config.pattern then begin
      let conn =
        Workload.Connection.create ~id:(fresh_conn_id b)
          ~window:cfg.Config.window ~payload_len:cfg.Config.payload
          ~src:guest_mac ~dst:(Peer.mac peer)
      in
      Peer.add_sink peer conn ~credit:(fun n ->
          Workload.Bench_program.on_credit bench conn n);
      tx := conn :: !tx;
      b.tx_conns <- conn :: b.tx_conns
    end;
    if Workload.Pattern.guest_receives cfg.Config.pattern then begin
      let conn =
        Workload.Connection.create ~id:(fresh_conn_id b)
          ~window:cfg.Config.window ~payload_len:cfg.Config.payload
          ~src:(Peer.mac peer) ~dst:guest_mac
      in
      Peer.add_source peer conn;
      Hashtbl.replace b.ack_peer (Workload.Connection.id conn) peer;
      rx := conn :: !rx;
      b.rx_conns <- conn :: b.rx_conns
    end
  done;
  Workload.Bench_program.add_stream bench ~stack ~tx:!tx ~rx:!rx

let make_bench b ~dom =
  let post_user ~cost fn = Xen.Hypervisor.user_work b.b_xen dom ~cost fn in
  let ack conn n =
    match Hashtbl.find_opt b.ack_peer (Workload.Connection.id conn) with
    | Some peer ->
        ignore
          (Sim.Engine.schedule b.b_engine ~delay:ack_wire_delay (fun () ->
               Peer.on_ack peer conn n))
    | None -> ()
  in
  Workload.Bench_program.create b.b_engine
    ~gso_segments:b.cfg.Config.gso_segments ~post_user
    ~costs:b.cm.Cost_model.guest_os ~ack ()

let nic_config b kind =
  let base =
    match (kind : Config.nic_kind) with
    | Config.Intel -> Nic.Nic_config.intel
    | Config.Ricenic -> Nic.Nic_config.ricenic
  in
  {
    base with
    Nic.Nic_config.intr_min_gap = b.cm.Cost_model.intr_min_gap;
    materialize_payloads = b.cfg.Config.materialize;
  }

(* The experiment peers do not use 802.3x pause: like the paper's
   testbed, loss and TCP-style retransmission govern overload (the
   [rx_congested] state is still surfaced for the pause ablation, and the
   uncongested hook restarts a sender that idled while the NIC was
   backed up). *)
let make_peer b ~nic_idx ~rx_congested ~set_uncongested_hook =
  ignore rx_congested;
  let peer =
    Peer.create b.b_engine ~link:b.links.(nic_idx) ~mac:(peer_mac nic_idx)
      ~rng:(Sim.Rng.split b.rng) ~materialize:b.cfg.Config.materialize ()
  in
  set_uncongested_hook (fun () -> Peer.kick peer);
  b.peers_rev <- peer :: b.peers_rev;
  peer

(* ---------- Native (bare-metal) assembly ---------- *)

let build_native b =
  let cfg = b.cfg in
  let dom =
    Xen.Hypervisor.create_domain b.b_xen ~name:"native" ~kind:Xen.Domain.Native
      ~weight:256 ~mem_pages:(16384 + (cfg.Config.nics * 2048))
  in
  let post_kernel ~cost fn = Xen.Hypervisor.kernel_work b.b_xen dom ~cost fn in
  let bench = make_bench b ~dom in
  for i = 0 to cfg.Config.nics - 1 do
    let irq = Bus.Irq.create ~name:(Printf.sprintf "nic%d" i) in
    let driver_ref = ref None in
    (* Bare metal: the interrupt line goes straight into the OS. *)
    Bus.Irq.set_handler irq (fun () ->
        Host.Cpu.post b.b_cpu (Xen.Domain.entity dom)
          ~category:(Xen.Domain.kernel dom) ~cost:b.cm.Cost_model.native_isr
          (fun () ->
            match !driver_ref with
            | Some d -> Guestos.Native_driver.handle_interrupt d
            | None -> ()));
    let mac = native_nic_mac i in
    let rx_congested, set_hook, hw =
      match cfg.Config.nic with
      | Config.Intel ->
          let nic =
            Nic.Intel_nic.create b.b_engine ~mem:b.b_mem ~dma:b.dma
              ~config:(nic_config b Config.Intel) ~irq ~dma_context:(i * 64)
              ()
          in
          Nic.Intel_nic.attach_link nic b.links.(i) ~side:Ethernet.Link.A;
          Nic.Intel_nic.enable nic ~mac;
          Nic.Intel_nic.register_metrics nic b.b_metrics
            ~labels:[ ("nic", Printf.sprintf "nic%d" i) ];
          b.stats_fns <- (fun () -> Nic.Intel_nic.stats nic) :: b.stats_fns;
          b.irq_fns <- (fun () -> Bus.Irq.count irq) :: b.irq_fns;
          ( (fun () -> Nic.Intel_nic.rx_congested nic),
            Nic.Intel_nic.set_uncongested_hook nic,
            Nic.Intel_nic.driver_if nic )
      | Config.Ricenic ->
          let nic =
            Nic.Ricenic.create b.b_engine ~mem:b.b_mem ~dma:b.dma
              ~config:(nic_config b Config.Ricenic) ~irq ~dma_context:(i * 64)
              ()
          in
          Nic.Ricenic.attach_link nic b.links.(i) ~side:Ethernet.Link.A;
          Nic.Ricenic.enable nic ~mac;
          Nic.Ricenic.register_metrics nic b.b_metrics
            ~labels:[ ("nic", Printf.sprintf "nic%d" i) ];
          b.stats_fns <- (fun () -> Nic.Ricenic.stats nic) :: b.stats_fns;
          b.irq_fns <- (fun () -> Bus.Irq.count irq) :: b.irq_fns;
          ( (fun () -> Nic.Ricenic.rx_congested nic),
            Nic.Ricenic.set_uncongested_hook nic,
            Nic.Ricenic.driver_if nic )
    in
    let driver =
      Guestos.Native_driver.create ~mem:b.b_mem ~post_kernel
        ~costs:b.cm.Cost_model.guest_os ~hw ~mac
        ~alloc_pages:(fun n -> Xen.Hypervisor.alloc_pages b.b_xen dom n)
        ~materialize:cfg.Config.materialize ()
    in
    driver_ref := Some driver;
    let stack =
      Guestos.Net_stack.create ~post_kernel ~costs:b.cm.Cost_model.guest_os
        ~netdev:(Guestos.Native_driver.netdev driver)
    in
    let peer =
      make_peer b ~nic_idx:i ~rx_congested ~set_uncongested_hook:set_hook
    in
    wire_stream b ~bench ~stack ~peer ~guest_mac:mac
  done;
  (dom, [ bench ])

(* ---------- Xen software I/O virtualization assembly ---------- *)

let build_xen b =
  let cfg = b.cfg in
  let driver_dom =
    Xen.Hypervisor.create_domain b.b_xen ~name:"driver" ~kind:Xen.Domain.Driver
      ~weight:cfg.Config.driver_weight
      ~mem_pages:(32768 + (cfg.Config.nics * 2048))
  in
  let post_driver ~cost fn =
    Xen.Hypervisor.kernel_work b.b_xen driver_dom ~cost fn
  in
  let netback =
    Guestos.Netback.create ~hyp:b.b_xen ~gnt:b.b_gnt ~dom:driver_dom
      ~costs:b.cm.Cost_model.netback ~pool_pages:8192
      ~materialize:cfg.Config.materialize ()
  in
  (* Physical NICs, owned by the driver domain. *)
  let nic_peers =
    Array.init cfg.Config.nics (fun i ->
        let irq = Bus.Irq.create ~name:(Printf.sprintf "nic%d" i) in
        let mac = native_nic_mac i in
        let rx_congested, set_hook, hw =
          match cfg.Config.nic with
          | Config.Intel ->
              let nic =
                Nic.Intel_nic.create b.b_engine ~mem:b.b_mem ~dma:b.dma
                  ~config:(nic_config b Config.Intel) ~irq
                  ~dma_context:(i * 64) ()
              in
              Nic.Intel_nic.attach_link nic b.links.(i) ~side:Ethernet.Link.A;
              Nic.Intel_nic.enable nic ~mac;
              Nic.Intel_nic.register_metrics nic b.b_metrics
                ~labels:[ ("nic", Printf.sprintf "nic%d" i) ];
              b.stats_fns <- (fun () -> Nic.Intel_nic.stats nic) :: b.stats_fns;
              b.irq_fns <- (fun () -> Bus.Irq.count irq) :: b.irq_fns;
              ( (fun () -> Nic.Intel_nic.rx_congested nic),
                Nic.Intel_nic.set_uncongested_hook nic,
                Nic.Intel_nic.driver_if nic )
          | Config.Ricenic ->
              let nic =
                Nic.Ricenic.create b.b_engine ~mem:b.b_mem ~dma:b.dma
                  ~config:(nic_config b Config.Ricenic) ~irq
                  ~dma_context:(i * 64) ()
              in
              Nic.Ricenic.attach_link nic b.links.(i) ~side:Ethernet.Link.A;
              Nic.Ricenic.enable nic ~mac;
              Nic.Ricenic.register_metrics nic b.b_metrics
                ~labels:[ ("nic", Printf.sprintf "nic%d" i) ];
              b.stats_fns <- (fun () -> Nic.Ricenic.stats nic) :: b.stats_fns;
              b.irq_fns <- (fun () -> Bus.Irq.count irq) :: b.irq_fns;
              ( (fun () -> Nic.Ricenic.rx_congested nic),
                Nic.Ricenic.set_uncongested_hook nic,
                Nic.Ricenic.driver_if nic )
        in
        let driver =
          Guestos.Native_driver.create ~mem:b.b_mem ~post_kernel:post_driver
            ~costs:b.cm.Cost_model.driver_os ~hw ~mac
            ~alloc_pages:(fun n ->
              Xen.Hypervisor.alloc_pages b.b_xen driver_dom n)
            ~materialize:cfg.Config.materialize ()
        in
        (* The hypervisor captures the NIC interrupt and forwards it to the
           driver domain as a virtual interrupt. *)
        let chan =
          Xen.Event_channel.create b.b_xen ~target:driver_dom
            ~isr_cost:b.cm.Cost_model.nic_evtchn_isr ~handler:(fun () ->
              Guestos.Native_driver.handle_interrupt driver)
        in
        Xen.Hypervisor.route_irq b.b_xen irq (fun () ->
            Xen.Event_channel.notify_from_hypervisor chan);
        Guestos.Netback.add_physical netback
          (Guestos.Native_driver.netdev driver)
          ~remote_macs:[ peer_mac i ];
        let peer =
          make_peer b ~nic_idx:i ~rx_congested ~set_uncongested_hook:set_hook
        in
        peer)
  in
  (* Guests with paravirtualized interfaces. *)
  let guests = ref [] and benches = ref [] in
  for g = 0 to cfg.Config.guests - 1 do
    let dom =
      Xen.Hypervisor.create_domain b.b_xen
        ~name:(Printf.sprintf "guest%d" g)
        ~kind:Xen.Domain.Guest ~weight:256 ~mem_pages:8192
    in
    let mac = xen_guest_mac g in
    let xchan = Guestos.Xchan.create ~capacity:256 in
    let chan_to_driver =
      Xen.Event_channel.create b.b_xen ~target:driver_dom
        ~isr_cost:b.cm.Cost_model.nic_evtchn_isr ~handler:(fun () ->
          Guestos.Netback.schedule netback)
    in
    let netfront =
      Guestos.Netfront.create ~hyp:b.b_xen ~gnt:b.b_gnt ~dom
        ~costs:b.cm.Cost_model.guest_os ~xchan ~mac
        ~notify_backend:(fun () ->
          Xen.Event_channel.notify chan_to_driver ~from:dom)
        ~materialize:cfg.Config.materialize ()
    in
    let chan_to_guest =
      Xen.Event_channel.create b.b_xen ~target:dom
        ~isr_cost:b.cm.Cost_model.evtchn_isr ~handler:(fun () ->
          Guestos.Netfront.handle_event netfront)
    in
    ignore
      (Guestos.Netback.add_interface netback ~guest_dom:dom ~guest_mac:mac
         ~xchan
         ~notify_frontend:(fun () ->
           Xen.Event_channel.notify chan_to_guest ~from:driver_dom));
    Guestos.Netfront.register_metrics netfront b.b_metrics;
    let post_kernel ~cost fn = Xen.Hypervisor.kernel_work b.b_xen dom ~cost fn in
    let stack =
      Guestos.Net_stack.create ~post_kernel ~costs:b.cm.Cost_model.guest_os
        ~netdev:(Guestos.Netfront.netdev netfront)
    in
    let bench = make_bench b ~dom in
    Array.iter
      (fun peer -> wire_stream b ~bench ~stack ~peer ~guest_mac:mac)
      nic_peers;
    guests := dom :: !guests;
    benches := bench :: !benches
  done;
  (driver_dom, netback, List.rev !guests, List.rev !benches)

(* ---------- CDNA assembly ---------- *)

let build_cdna b =
  let cfg = b.cfg in
  (* The driver domain still exists for control functions and other
     devices (paper section 3), but does no network work here. *)
  let driver_dom =
    Xen.Hypervisor.create_domain b.b_xen ~name:"driver" ~kind:Xen.Domain.Driver
      ~weight:256 ~mem_pages:8192
  in
  let cdna_hyp =
    Cdna.Hyp.create b.b_xen ~costs:b.cm.Cost_model.cdna
      ~protection:cfg.Config.protection ()
  in
  (* More guests than hardware contexts per NIC: let the hypervisor page
     contexts in and out instead of failing assignment. Gated so the
     at-capacity configurations keep their exact historical behaviour
     (including the metric set). *)
  if cfg.Config.guests > Cdna.Cnic.num_contexts then
    Cdna.Hyp.enable_paging cdna_hyp;
  let cdna_cfg =
    {
      Cdna.Cnic.default_config with
      Nic.Nic_config.intr_min_gap = b.cm.Cost_model.intr_min_gap;
      materialize_payloads = cfg.Config.materialize;
    }
  in
  let nics =
    Array.init cfg.Config.nics (fun i ->
        let irq = Bus.Irq.create ~name:(Printf.sprintf "cdna-nic%d" i) in
        let intr_page =
          match Xen.Hypervisor.alloc_hyp_pages b.b_xen 1 with
          | [ p ] -> p
          | _ -> assert false
        in
        let nic =
          Cdna.Cnic.create b.b_engine ~mem:b.b_mem ~dma:b.dma ~config:cdna_cfg
            ~irq ~dma_context_base:(i * 64)
            ~intr_base:(Memory.Addr.base_of_pfn intr_page)
            ()
        in
        Cdna.Cnic.attach_link nic b.links.(i) ~side:Ethernet.Link.A;
        Cdna.Hyp.add_nic cdna_hyp nic;
        Cdna.Cnic.register_metrics nic b.b_metrics
          ~labels:[ ("nic", Printf.sprintf "cnic%d" i) ];
        b.stats_fns <- (fun () -> Cdna.Cnic.stats nic) :: b.stats_fns;
        b.irq_fns <- (fun () -> Cdna.Cnic.interrupts_raised nic) :: b.irq_fns;
        let peer =
          make_peer b ~nic_idx:i
            ~rx_congested:(fun () -> Cdna.Cnic.rx_congested nic)
            ~set_uncongested_hook:(Cdna.Cnic.set_uncongested_hook nic)
        in
        (nic, peer))
  in
  let guests = ref [] and benches = ref [] and handles = ref [] in
  for g = 0 to cfg.Config.guests - 1 do
    let dom =
      Xen.Hypervisor.create_domain b.b_xen
        ~name:(Printf.sprintf "guest%d" g)
        ~kind:Xen.Domain.Guest ~weight:256 ~mem_pages:8192
    in
    let post_kernel ~cost fn = Xen.Hypervisor.kernel_work b.b_xen dom ~cost fn in
    let bench = make_bench b ~dom in
    Array.iteri
      (fun i (nic, peer) ->
        let mac = cdna_guest_mac ~guest:g ~nic:i in
        match
          Cdna.Hyp.assign_context cdna_hyp ~nic ~guest:dom ~mac
            ~isr_cost:b.cm.Cost_model.evtchn_isr
        with
        | Error `No_free_context ->
            invalid_arg "Testbed: out of CDNA contexts"
        | Ok handle ->
            handles := handle :: !handles;
            let driver =
              Cdna.Driver.create ~hyp:cdna_hyp ~handle
                ~costs:b.cm.Cost_model.guest_os
                ~materialize:cfg.Config.materialize ()
            in
            let stack =
              Guestos.Net_stack.create ~post_kernel
                ~costs:b.cm.Cost_model.guest_os
                ~netdev:(Cdna.Driver.netdev driver)
            in
            wire_stream b ~bench ~stack ~peer ~guest_mac:mac)
      nics;
    guests := dom :: !guests;
    benches := bench :: !benches
  done;
  (driver_dom, cdna_hyp, List.rev !handles, List.rev !guests, List.rev !benches, nics)

(* ---------- Entry point ---------- *)

let build (cfg : Config.t) =
  let cm = Cost_model.for_config cfg.Config.system cfg.Config.nic in
  let engine = Sim.Engine.create () in
  let profile = Host.Profile.create () in
  let cpu =
    Host.Cpu.create engine ~cpus:cfg.Config.cpus ?slice:cfg.Config.slice
      ~migration_cost:cm.Cost_model.cpu_migration ~profile ()
  in
  let total_pages = 65536 + (cfg.Config.guests * 10240) + (cfg.Config.nics * 4096) in
  let mem = Memory.Phys_mem.create ~total_pages () in
  let xen = Xen.Hypervisor.create engine ~cpu ~mem ~costs:cm.Cost_model.xen () in
  let gnt = Xen.Grant_table.create xen in
  let metrics = Sim.Metrics.create () in
  let dma = Bus.Dma_engine.create engine ~mem () in
  let links =
    Array.init cfg.Config.nics (fun _ -> Ethernet.Link.create engine ())
  in
  let b =
    {
      cfg;
      cm;
      b_engine = engine;
      b_cpu = cpu;
      b_mem = mem;
      b_xen = xen;
      b_gnt = gnt;
      b_metrics = metrics;
      dma;
      links;
      rng = Sim.Rng.create ~seed:cfg.Config.seed;
      next_conn_id = 0;
      tx_conns = [];
      rx_conns = [];
      peers_rev = [];
      stats_fns = [];
      irq_fns = [];
      ack_peer = Hashtbl.create 64;
    }
  in
  let driver_dom, guest_doms, benches, cdna_hyp, cdna_handles, netback =
    match cfg.Config.system with
    | Config.Native ->
        let dom, benches = build_native b in
        (None, [ dom ], benches, None, [], None)
    | Config.Xen_sw ->
        let driver_dom, netback, guests, benches = build_xen b in
        (Some driver_dom, guests, benches, None, [], Some netback)
    | Config.Cdna_sys ->
        let driver_dom, cdna_hyp, handles, guests, benches, _nics =
          build_cdna b
        in
        (Some driver_dom, guests, benches, Some cdna_hyp, handles, None)
  in
  (* Registered after assembly so every scheduler entity and domain
     exists; NIC and netfront gauges were registered as they were built. *)
  Sim.Engine.register_metrics engine metrics;
  Host.Cpu.register_metrics cpu metrics;
  Bus.Dma_engine.register_metrics dma metrics;
  Xen.Hypervisor.register_metrics xen metrics;
  (match cdna_hyp with
  | Some h -> Cdna.Hyp.register_metrics h metrics
  | None -> ());
  (match netback with
  | Some nb -> Guestos.Netback.register_metrics nb metrics
  | None -> ());
  let nic_stats () = List.rev_map (fun f -> f ()) b.stats_fns in
  let nic_irqs () = List.fold_left (fun acc f -> acc + f ()) 0 b.irq_fns in
  let peers = List.rev b.peers_rev in
  let start () =
    List.iter Peer.start peers;
    List.iter Workload.Bench_program.start benches
  in
  {
    config = cfg;
    model = cm;
    engine;
    cpu;
    profile;
    mem;
    xen;
    grant_table = gnt;
    metrics;
    driver_dom;
    guest_doms;
    benches;
    conns_tx = List.rev b.tx_conns;
    conns_rx = List.rev b.rx_conns;
    peers;
    cdna_hyp;
    cdna_handles;
    netback;
    nic_stats;
    nic_interrupts = nic_irqs;
    start;
  }
