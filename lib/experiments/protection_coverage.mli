(** Protection-coverage experiment: fault injection x protection mode.

    The paper argues (sections 3.3 and 5.3) that CDNA's software
    protection — hypercall validation, sequence-stamped descriptors,
    context revocation — contains a malicious or faulty guest driver as
    well as an IOMMU would, and that without either the NIC is an open
    DMA channel. This experiment tests that claim end to end: a rogue
    guest mounts each attack class through the strongest channel each
    mode leaves open (hypercalls under [Full], direct ring tampering
    under [Iommu], an unmodified native driver in malicious mode under
    [Disabled]), while injected bus and link faults exercise the
    recovery path on benign guests. Two benign guests carry paced
    traffic throughout; the untargeted ones must stay within 1% of a
    fault-free baseline run.

    All randomness is drawn from a seeded {!Sim.Fault_inject} instance:
    identical seeds reproduce identical reports. *)

type fault_class =
  | Out_of_sequence  (** Forged descriptor sequence number. *)
  | Foreign_page  (** Transmit descriptor aimed at another guest's page. *)
  | Over_length  (** Descriptor length running pages past the buffer. *)
  | Dma_access  (** Injected bus fault on a benign context (recovery path). *)
  | Link_drop  (** Probabilistic frame loss on the wire. *)
  | Link_corrupt  (** Probabilistic payload corruption on the wire. *)

val all_classes : fault_class list
val class_name : fault_class -> string
val mode_name : Cdna.Cdna_costs.protection -> string

type row = {
  r_mode : Cdna.Cdna_costs.protection;
  r_fault : fault_class;
  r_mechanism : string;  (** The mechanism on the hook for this cell. *)
  r_injected : int;  (** Faults/forgeries actually launched. *)
  r_detected : int;  (** Protection events attributable to them. *)
  r_leaked : int;  (** Rogue-sourced frames that reached the wire sink. *)
  r_contained : bool;
      (** Untargeted benign delivery within 1% of the baseline. *)
  r_victim : (int * int) option;
      (** (delivered, baseline) for the targeted benign flow, if any. *)
  r_others : int * int;  (** (delivered, baseline) for untargeted flows. *)
  r_recoveries : int;  (** Automatic context reassign + rebind completions. *)
}

(** Run the sweep. [quick] shrinks the per-cell traffic (60 frames per
    guest instead of 200). Deterministic for a given [seed]. *)
val sweep :
  ?quick:bool ->
  ?seed:int ->
  ?modes:Cdna.Cdna_costs.protection list ->
  ?faults:fault_class list ->
  unit ->
  row list

val print : row list -> unit
