(** Guest-count scaling beyond the paper (the [scale-guests] sweep).

    The paper's Figure 3/4 stops at 24 guests — below the NIC's 32
    hardware contexts, so every CDNA guest always holds a context. This
    sweep keeps going: with hypervisor-mediated context paging
    ({!Cdna.Hyp.enable_paging}, turned on by {!Testbed} whenever
    [guests > Cdna.Cnic.num_contexts]) hundreds of guests can share the 32
    contexts, at the price of {!Cdna.Cdna_costs.t.context_swap} hypervisor
    work per context save/restore. Points are measured for both CDNA and
    Xen software I/O across a guests × host-CPUs grid; the interesting
    output is the {e crossover} — the guest count at which swap overhead
    (plus lost receive traffic while paged out) eats CDNA's advantage.

    Single-CPU points at or below 32 guests are the degenerate case and
    reproduce the pre-paging scheduler and datapath event-for-event. *)

type point = {
  guests : int;
  cpus : int;
  xen : Run.measurement;
  cdna : Run.measurement;
  ctx_swaps : int;
      (** CDNA context save/restore operations during the measured window. *)
}

(** The paper's oversubscription-free guest counts (all ≤ 24). *)
val paper_guest_counts : int list

(** 8..256 guests: through the 32-context boundary and well past it. *)
val default_guest_counts : int list

val default_cpu_counts : int list

(** [sweep ()] measures every (cpus, guests) cell, CDNA and Xen_sw each.
    Runs are sequential and deterministic; the result list is ordered by
    CPU count, then guest count. Each run is driven through the sharded
    engine (one LP), so results are byte-identical for every [shards]
    value. *)
val sweep :
  ?quick:bool ->
  ?shards:int ->
  ?pattern:Workload.Pattern.t ->
  ?slice:Sim.Time.t ->
  ?guest_counts:int list ->
  ?cpu_counts:int list ->
  unit ->
  point list

(** Scheduler slice used by the [--preset rx-heavy] sweep (100 us vs the
    1 ms default): with receive-dominated traffic it maximizes context
    touches per unit time, probing for a CDNA/Xen crossover. *)
val rx_heavy_slice : Sim.Time.t

(** Smallest guest count at which CDNA throughput falls to or below
    Xen's, for the given CPU count. *)
val crossover : point list -> cpus:int -> int option

val swaps_per_sec : point -> float

(** Table of every point plus the per-CPU-count crossover summary. *)
val print_table : point list -> unit

(** ASCII chart of one CPU count's CDNA-vs-Xen series. *)
val chart : point list -> cpus:int -> string

val csv : point list -> string
