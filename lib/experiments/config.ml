type system = Native | Xen_sw | Cdna_sys
type nic_kind = Intel | Ricenic

type t = {
  system : system;
  nic : nic_kind;
  nics : int;
  guests : int;
  cpus : int;
  driver_weight : int;
  pattern : Workload.Pattern.t;
  conns_per_guest_per_nic : int;
  window : int;
  payload : int;
  gso_segments : int;
  protection : Cdna.Cdna_costs.protection;
  materialize : bool;
  seed : int;
  warmup : Sim.Time.t;
  duration : Sim.Time.t;
  slice : Sim.Time.t option;
}

let default =
  {
    system = Cdna_sys;
    nic = Ricenic;
    nics = 2;
    guests = 1;
    cpus = 1;
    driver_weight = 256;
    pattern = Workload.Pattern.Tx;
    conns_per_guest_per_nic = 2;
    window = 48;
    payload = 1500;
    gso_segments = 1;
    protection = Cdna.Cdna_costs.Full;
    materialize = false;
    seed = 42;
    warmup = Sim.Time.ms 60;
    duration = Sim.Time.ms 200;
    slice = None;
  }

let system_name = function
  | Native -> "Native"
  | Xen_sw -> "Xen"
  | Cdna_sys -> "CDNA"

let nic_name = function Intel -> "Intel" | Ricenic -> "RiceNIC"

let describe t =
  Printf.sprintf "%s/%s %d-NIC %d-guest %s (window=%d, payload=%d)"
    (system_name t.system) (nic_name t.nic) t.nics t.guests
    (Workload.Pattern.to_string t.pattern)
    t.window t.payload
