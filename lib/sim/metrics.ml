type kind =
  | Counter of Stats.Counter.t
  | Gauge of (unit -> int)
  | Gauge_f of (unit -> float)
  | Meter of Stats.Meter.t
  | Histogram of Stats.Histogram.t

type t = { table : (string, kind) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

(* Canonical series key: name{k1=v1,k2=v2} with labels sorted by key, so
   the same (name, labels) always lands on the same series. *)
let key name labels =
  match labels with
  | [] -> name
  | labels ->
      let labels =
        List.sort (fun (a, _) (b, _) -> String.compare a b) labels
      in
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

let register t k kind = Hashtbl.replace t.table k kind

let counter t ?(labels = []) name =
  let k = key name labels in
  match Hashtbl.find_opt t.table k with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics: " ^ k ^ " registered with another kind")
  | None ->
      let c = Stats.Counter.create () in
      register t k (Counter c);
      c

let meter t ?(labels = []) name =
  let k = key name labels in
  match Hashtbl.find_opt t.table k with
  | Some (Meter m) -> m
  | Some _ -> invalid_arg ("Metrics: " ^ k ^ " registered with another kind")
  | None ->
      let m = Stats.Meter.create () in
      register t k (Meter m);
      m

let histogram t ?(labels = []) name =
  let k = key name labels in
  match Hashtbl.find_opt t.table k with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg ("Metrics: " ^ k ^ " registered with another kind")
  | None ->
      let h = Stats.Histogram.create () in
      register t k (Histogram h);
      h

let gauge t ?(labels = []) name read = register t (key name labels) (Gauge read)

let gauge_f t ?(labels = []) name read =
  register t (key name labels) (Gauge_f read)

let value_json = function
  | Counter c -> Json.Int (Stats.Counter.value c)
  | Gauge read -> Json.Int (read ())
  | Gauge_f read -> Json.Float (read ())
  | Meter m ->
      Json.Obj
        [
          ("events", Json.Int (Stats.Meter.events m));
          ("bytes", Json.Int (Stats.Meter.bytes m));
        ]
  | Histogram h ->
      let p q = Json.Int (Stats.Histogram.percentile h q) in
      Json.Obj
        [
          ("count", Json.Int (Stats.Histogram.count h));
          ("mean", Json.Float (Stats.Histogram.mean h));
          ("min", Json.Int (Stats.Histogram.min_value h));
          ("p50", p 50.);
          ("p90", p 90.);
          ("p99", p 99.);
          ("max", Json.Int (Stats.Histogram.max_value h));
        ]

let snapshot t =
  Hashtbl.fold (fun k kind acc -> (k, value_json kind) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json t = Json.Obj (snapshot t)
let to_string t = Json.to_string (to_json t)
let size t = Hashtbl.length t.table

let pp ppf t =
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%s = %a@." k Json.pp v)
    (snapshot t)
