(** Structured event tracing.

    Tracing is off by default and every emit point first checks
    {!tag_enabled}, so datapath code can trace freely. Each record carries
    the simulated timestamp, a subsystem tag (its Chrome [cat]), a name,
    a phase (instant, span begin/end, or a complete slice with duration),
    a [pid]/[tid] pair locating it on the timeline, and typed arguments.

    Conventions used across the simulator:
    - [pid] 0 is the hypervisor / host machinery; domain [d] maps to
      [pid = d + 1]. {!Recorder.set_process_name} labels them in the UI.
    - [tid] disambiguates within a process: scheduler entity id, NIC
      hardware context, DMA context.
    - Well-known tags: ["sched"] (CPU slices), ["hypercall"], ["dma"],
      ["irq"] (physical and virtual interrupt deliveries), plus one tag
      per NIC instance for datapath events.

    Sinks: {!formatter_sink} prints human-readable lines; {!Recorder}
    accumulates events and exports Chrome [trace_event] JSON loadable in
    [about://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

type arg =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type phase =
  | Instant
  | Span_begin
  | Span_end
  | Complete of Time.t  (** a finished slice carrying its duration *)

type event = {
  time : Time.t;
  tag : string;
  name : string;
  phase : phase;
  pid : int;
  tid : int;
  args : (string * arg) list;
}

type sink = event -> unit

(** [set_sink (Some f)] enables tracing through [f]; [None] disables.

    The sink (and filter) are per-OS-domain state: setting a sink on one
    domain does not affect events emitted from another. {!Shard} relies
    on this to record each simulation partition under its own recorder
    while partitions drain on different domains. Code that never spawns
    domains sees the old global-ref behavior unchanged. *)
val set_sink : sink option -> unit

(** The sink currently installed on this domain ([None] when disabled).
    Lets a caller save and restore the sink around a scoped override. *)
val current_sink : unit -> sink option

val enabled : unit -> bool

(** [set_filter (Some f)] drops events whose tag fails [f]; [None] passes
    every tag. The filter only applies while a sink is installed. *)
val set_filter : (string -> bool) option -> unit

(** True when a sink is installed and [tag] passes the filter: guard for
    emit sites that build argument lists. *)
val tag_enabled : string -> bool

val instant :
  ?pid:int ->
  ?tid:int ->
  ?args:(string * arg) list ->
  time:Time.t ->
  tag:string ->
  string ->
  unit

(** [complete ~time ~dur ~tag name] records a finished slice that started
    at [time] and ran for [dur]. *)
val complete :
  ?pid:int ->
  ?tid:int ->
  ?args:(string * arg) list ->
  time:Time.t ->
  dur:Time.t ->
  tag:string ->
  string ->
  unit

val span_begin :
  ?pid:int ->
  ?tid:int ->
  ?args:(string * arg) list ->
  time:Time.t ->
  tag:string ->
  string ->
  unit

val span_end :
  ?pid:int ->
  ?tid:int ->
  ?args:(string * arg) list ->
  time:Time.t ->
  tag:string ->
  string ->
  unit

(** [emit ~time ~tag msg] sends a free-text instant record. [msg] is lazy
    so formatting costs nothing when disabled or filtered out. *)
val emit : time:Time.t -> tag:string -> (unit -> string) -> unit

(** A sink that prints ["\[time\] tag: name (dur) k=v"] lines. *)
val formatter_sink : Format.formatter -> sink

(** Event recorder with Chrome [trace_event] export. *)
module Recorder : sig
  type t

  (** [create ?limit ()] — at most [limit] events are kept (default 2M);
      later events are counted in {!dropped}. *)
  val create : ?limit:int -> unit -> t

  val sink : t -> sink
  val count : t -> int
  val dropped : t -> int
  val events : t -> event list
  val clear : t -> unit

  (** Label [pid] in the trace viewer (emitted as "M"-phase metadata). *)
  val set_process_name : t -> pid:int -> string -> unit

  (** The whole recording as a [{"traceEvents": [...]}] document. Event
      order is emission order, so identically seeded runs are
      byte-identical. *)
  val to_chrome_json : t -> Json.t

  val to_chrome_string : t -> string
end
