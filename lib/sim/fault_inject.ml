type trigger =
  | Always
  | One_shot
  | Nth of int
  | Every_nth of int
  | Probability of float

type plan = {
  trigger : trigger;
  ctx_range : (int * int) option;
  addr_range : (int * int) option;
}

(* A plan armed at a site: match/fire counters plus a private random
   stream so concurrent plans cannot perturb one another's decisions. *)
type armed = {
  plan : plan;
  rng : Rng.t;
  mutable matches : int;
  mutable fired : int;
}

type site_state = {
  mutable plans : armed list; (* in arming order *)
  mutable observed : int;
  mutable injected : int;
}

type t = {
  master : Rng.t;
  sites : (string, site_state) Hashtbl.t;
  mutable total_injected : int;
}

let plan ?ctx ?addr trigger =
  let check_range name = function
    | Some (lo, hi) when lo > hi ->
        invalid_arg ("Fault_inject.plan: empty " ^ name ^ " range")
    | Some _ | None -> ()
  in
  check_range "ctx" ctx;
  check_range "addr" addr;
  (match trigger with
  | Nth n | Every_nth n ->
      if n < 1 then invalid_arg "Fault_inject.plan: n must be >= 1"
  | Probability p ->
      if not (p >= 0. && p <= 1.) then
        invalid_arg "Fault_inject.plan: probability outside [0, 1]"
  | Always | One_shot -> ());
  { trigger; ctx_range = ctx; addr_range = addr }

let create ~seed = { master = Rng.create ~seed; sites = Hashtbl.create 8; total_injected = 0 }

let site_state t site =
  match Hashtbl.find_opt t.sites site with
  | Some s -> s
  | None ->
      let s = { plans = []; observed = 0; injected = 0 } in
      Hashtbl.add t.sites site s;
      s

let arm t ~site p =
  let s = site_state t site in
  let armed = { plan = p; rng = Rng.split t.master; matches = 0; fired = 0 } in
  s.plans <- s.plans @ [ armed ]

let disarm t ~site =
  match Hashtbl.find_opt t.sites site with
  | Some s -> s.plans <- []
  | None -> ()

let in_range v = function
  | None -> true
  | Some (lo, hi) -> ( match v with None -> false | Some v -> lo <= v && v <= hi)

let decide (a : armed) =
  a.matches <- a.matches + 1;
  let fire =
    match a.plan.trigger with
    | Always -> true
    | One_shot -> a.fired = 0
    | Nth n -> a.matches = n
    | Every_nth n -> a.matches mod n = 0
    | Probability p -> Rng.float a.rng 1.0 < p
  in
  if fire then a.fired <- a.fired + 1;
  fire

let fire t ~site ?ctx ?addr () =
  match Hashtbl.find_opt t.sites site with
  | None -> false
  | Some s ->
      s.observed <- s.observed + 1;
      (* Every matching plan advances its own counters and stream, so a
         plan's decisions do not depend on which other plans are armed. *)
      let hit =
        List.fold_left
          (fun hit a ->
            if
              in_range ctx a.plan.ctx_range && in_range addr a.plan.addr_range
            then decide a || hit
            else hit)
          false s.plans
      in
      if hit then begin
        s.injected <- s.injected + 1;
        t.total_injected <- t.total_injected + 1
      end;
      hit

let observed t ~site =
  match Hashtbl.find_opt t.sites site with Some s -> s.observed | None -> 0

let injected t ~site =
  match Hashtbl.find_opt t.sites site with Some s -> s.injected | None -> 0

let total_injected t = t.total_injected
