(* Events live in the heap as their bare callbacks — no per-event
   record. A boxed event record per schedule is the single largest cost
   of the event loop: every pending record stays live in the queue, so
   each one is promoted out of the minor heap and churns the write
   barrier. Instead, the heap key carries the time, the heap's FIFO seq
   carries the ordering, and cancellation goes through the heap's
   stable entry handles: cancelling replaces the stored callback with
   the private [cancelled] marker, which the pop loop skips by physical
   equality. Handles go stale on pop, so cancelling an event that
   already fired is a no-op without any per-event [fired] flag. *)

type event_id = int

type t = {
  mutable now : Time.t;
  mutable fired : int;
  mutable live : int;
  queue : (unit -> unit) Heap.t;
}

(* Marker closures, distinguished from user callbacks by physical
   equality. [dummy_fn] fills vacated heap slots (never popped);
   [cancelled] replaces the callback of a cancelled event. *)
let dummy_fn : unit -> unit = fun () -> ()
let cancelled : unit -> unit = fun () -> ()

let create ?max_pending () =
  {
    now = Time.zero;
    fired = 0;
    live = 0;
    queue = Heap.create ?max_entries:max_pending ~dummy:dummy_fn ();
  }

let[@cdna.hot] now t = t.now
let fired_count t = t.fired
let pending_count t = Heap.length t.queue
let live_pending_count t = t.live

let[@cdna.hot] schedule_at t time fn =
  if Time.compare time t.now < 0 then
    invalid_arg "Engine.schedule_at: time in the past";
  (* Count the event only after the push succeeded: [push_handle] raises
     on heap exhaustion without mutating the heap, and bumping [live]
     first would leave the gauge permanently off by one. *)
  let id = Heap.push_handle t.queue ~key:(Time.to_ns time) fn in
  t.live <- t.live + 1;
  id

let[@cdna.hot] schedule t ~delay fn =
  if Time.compare delay Time.zero < 0 then
    invalid_arg "Engine.schedule: negative delay";
  schedule_at t (Time.add t.now delay) fn

let cancel t id =
  match Heap.get t.queue id with
  | Some fn when fn != cancelled ->
      ignore (Heap.set t.queue id cancelled);
      t.live <- t.live - 1
  | Some _ | None -> ()

let[@inline] [@cdna.hot] fire t ~time fn =
  t.now <- time;
  t.fired <- t.fired + 1;
  t.live <- t.live - 1;
  fn ()

(* Dispatch is built on the heap's [_exn] accessors guarded by
   [is_empty], so draining an event allocates no option per iteration. *)
let[@cdna.hot] rec step t =
  if Heap.is_empty t.queue then false
  else begin
    let k = Heap.min_key_exn t.queue in
    let fn = Heap.pop_exn t.queue in
    if fn == cancelled then step t
    else begin
      fire t ~time:(Time.ns k) fn;
      true
    end
  end

(* The horizon check applies uniformly before any pop — including
   cancelled entries. Sweeping a cancelled entry whose key lies beyond
   [until_ns] would shrink [pending_count] for events the drain window
   never reached, diverging from [step]'s accounting. *)
let[@cdna.hot] rec drain t ~until_ns =
  if not (Heap.is_empty t.queue) then begin
    let k = Heap.min_key_exn t.queue in
    if k <= until_ns then begin
      let fn = Heap.pop_exn t.queue in
      if fn == cancelled then drain t ~until_ns
      else begin
        fire t ~time:(Time.ns k) fn;
        drain t ~until_ns
      end
    end
  end

let[@cdna.hot] run t ~until =
  drain t ~until_ns:(Time.to_ns until);
  t.now <- Time.max t.now until

let run_to_completion ?(limit = max_int) t =
  let rec loop n =
    if n >= limit then `Event_limit
    else if step t then loop (n + 1)
    else `Completed
  in
  loop 0

let register_metrics t m =
  Metrics.gauge m "engine.pending" (fun () -> live_pending_count t);
  Metrics.gauge m "engine.fired" (fun () -> t.fired)
