(* Parallel deterministic simulation core.

   The unit of partitioning is the {e logical process} (LP): a set of
   simulation components that share an {!Engine} and whose events may
   therefore reorder freely against each other only in ways the engine's
   (time, FIFO-seq) order already fixes. LPs share no mutable state;
   every cross-LP interaction must go through {!send} on a channel
   declared with {!Partition.connect}, and every channel carries a
   minimum latency (its {e lookahead}).

   Execution proceeds in conservative windows of the global lookahead L
   (the minimum over all channel latencies — the classic null-message
   bound): within a window [w, w+L) every LP drains its own engine
   independently, because a message sent at [x >= w] cannot be delivered
   before [x + L >= w + L]. At the barrier between windows, all messages
   sent during the finished window are merged in the fixed order
   (delivery time, source LP id, per-source send seq) and pushed into
   their destination engines, whose FIFO tie-breaking then pins
   same-instant deliveries to exactly that order.

   Why outputs are byte-identical for every shard count and backend:
   an LP's observable behavior is a function of (a) its own engine's
   deterministic event order and (b) the sequence of messages delivered
   to it. (a) never changes — each LP keeps its own heap. (b) is fixed
   by the barrier merge order above, and barriers fall on the same
   global window grid no matter how LPs are grouped into shards or
   whether shards run on one OS domain or many. Shard count and worker
   count are therefore pure execution policy; per-LP traces, metrics and
   goldens cannot tell the difference. *)

type msg = {
  deliver_ns : int;
  src_id : int;
  dst_id : int;
  seq : int; (* per-source send counter: FIFO among a source's sends *)
  fn : unit -> unit;
}

type lp = {
  lp_id : int;
  lp_name : string;
  lp_engine : Engine.t;
  mutable lp_sink : Trace.sink option;
  mutable lp_chans : (int * int) list; (* dst id, min latency ns *)
  mutable lp_out_seq : int;
  mutable lp_outbox : msg list; (* messages sent this window, reversed *)
}

module Partition = struct
  type nonrec lp = lp

  type t = {
    mutable lps_rev : lp list;
    mutable count : int;
    mutable lookahead_ns : int; (* min over channels; max_int = none *)
  }

  let create () = { lps_rev = []; count = 0; lookahead_ns = max_int }

  let add t ~name engine =
    let lp =
      {
        lp_id = t.count;
        lp_name = name;
        lp_engine = engine;
        lp_sink = None;
        lp_chans = [];
        lp_out_seq = 0;
        lp_outbox = [];
      }
    in
    t.count <- t.count + 1;
    t.lps_rev <- lp :: t.lps_rev;
    lp

  let connect t ~src ~dst ~min_latency =
    let lat = Time.to_ns min_latency in
    if lat <= 0 then
      invalid_arg "Shard.Partition.connect: lookahead must be positive";
    if Int.equal src.lp_id dst.lp_id then
      invalid_arg "Shard.Partition.connect: a channel must cross LPs";
    src.lp_chans <- (dst.lp_id, lat) :: src.lp_chans;
    t.lookahead_ns <- Stdlib.min t.lookahead_ns lat

  let lp_count t = t.count

  let lookahead t =
    if t.lookahead_ns = max_int then None else Some (Time.ns t.lookahead_ns)

  let name lp = lp.lp_name
  let engine lp = lp.lp_engine
  let set_sink lp s = lp.lp_sink <- s
end

type t = {
  lps : lp array; (* indexed by lp_id *)
  chan_lat : int array array; (* src id -> dst id -> latency ns, -1 = none *)
  shards : int;
  workers : int;
  lookahead_ns : int;
  mutable now_ns : int;
  mutable sent : int; (* cross-shard messages routed so far *)
}

(* Ethernet-derived lookahead: nothing can cross a link faster than one
   maximum-size frame serializes plus the propagation delay, so that sum
   is a sound conservative window for partitions cut at link boundaries
   (paper-testbed links: 1 Gb/s, 500 ns propagation, 1538 B wire frame
   -> ~12.8 us). *)
let[@cdna.hot] lookahead_of_link ~rate_bps ~propagation ~mtu_bytes =
  if mtu_bytes <= 0 then invalid_arg "Shard.lookahead_of_link: bad mtu";
  Time.add (Time.bits_time ~bits:(mtu_bytes * 8) ~rate_bps) propagation

let create ?(shards = 1) ?workers (p : Partition.t) =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  let lps = Array.of_list (List.rev p.Partition.lps_rev) in
  let n = Array.length lps in
  let chan_lat = Array.make_matrix (Stdlib.max 1 n) (Stdlib.max 1 n) (-1) in
  Array.iter
    (fun lp ->
      List.iter
        (fun (dst, lat) -> chan_lat.(lp.lp_id).(dst) <- lat)
        lp.lp_chans)
    lps;
  let shards = Stdlib.min shards (Stdlib.max 1 n) in
  let workers =
    match workers with
    | Some w ->
        if w < 1 then invalid_arg "Shard.create: workers must be >= 1";
        Stdlib.min w shards
    | None -> Stdlib.min shards (Domain.recommended_domain_count ())
  in
  {
    lps;
    chan_lat;
    shards;
    workers;
    lookahead_ns = p.Partition.lookahead_ns;
    now_ns = 0;
    sent = 0;
  }

let shards t = t.shards
let workers t = t.workers
let messages_routed t = t.sent

(* Cross-LP event: validated against the declared channel's lookahead,
   then parked in the source's outbox until the window barrier. The
   outbox is only ever touched by the worker currently draining [src],
   so no synchronization is needed here. *)
let[@cdna.hot] send t ~src ~dst ~delay fn =
  let d = Time.to_ns delay in
  let l = t.chan_lat.(src.lp_id).(dst.lp_id) in
  if l < 0 then invalid_arg "Shard.send: no channel declared src -> dst";
  if d < l then invalid_arg "Shard.send: delay below the channel lookahead";
  let deliver_ns = Time.to_ns (Engine.now src.lp_engine) + d in
  let seq = src.lp_out_seq in
  src.lp_out_seq <- seq + 1;
  src.lp_outbox <-
    ({ deliver_ns; src_id = src.lp_id; dst_id = dst.lp_id; seq; fn }
     :: src.lp_outbox
    [@cdna.alloc_ok
      "one boxed message per cross-shard send; sends are bounded to one \
       per lookahead window per channel pair, orders of magnitude rarer \
       than intra-shard events"])

let msg_compare a b =
  let c = Int.compare a.deliver_ns b.deliver_ns in
  if c <> 0 then c
  else
    let c = Int.compare a.src_id b.src_id in
    if c <> 0 then c else Int.compare a.seq b.seq

(* Barrier step: merge every outbox in fixed (deliver, src, seq) order
   and schedule into the destination engines. Runs single-threaded
   between windows; the conservative send rule guarantees every
   delivery time is at or after the barrier's window boundary, so
   [schedule_at] never sees the past. *)
let route t =
  let pending = ref [] in
  Array.iter
    (fun lp ->
      match lp.lp_outbox with
      | [] -> ()
      | out ->
          lp.lp_outbox <- [];
          pending := List.rev_append out !pending)
    t.lps;
  match !pending with
  | [] -> ()
  | msgs ->
      List.iter
        (fun m ->
          t.sent <- t.sent + 1;
          ignore
            (Engine.schedule_at
               t.lps.(m.dst_id).lp_engine
               (Time.ns m.deliver_ns) m.fn))
        (List.sort msg_compare msgs)

(* Drain one LP to the window end under its own trace sink. The previous
   sink of this OS domain is restored afterwards, so a caller-installed
   global sink (the legacy single-partition path) is untouched by LPs
   that carry no sink of their own. *)
let drain_lp lp ~until_ns =
  match lp.lp_sink with
  | None -> Engine.run lp.lp_engine ~until:(Time.ns until_ns)
  | Some _ as sink ->
      let saved = Trace.current_sink () in
      Trace.set_sink sink;
      Fun.protect
        ~finally:(fun () -> Trace.set_sink saved)
        (fun () -> Engine.run lp.lp_engine ~until:(Time.ns until_ns))

(* Worker [w]'s share: LPs whose logical shard ((lp_id mod shards)) maps
   onto this worker, in increasing lp_id order. The mapping is fixed per
   run; only the owning worker touches an LP between barriers. *)
let drain_share t ~w ~until_ns =
  let n = Array.length t.lps in
  for i = 0 to n - 1 do
    if Int.equal (i mod t.shards mod t.workers) w then
      drain_lp t.lps.(i) ~until_ns
  done

(* ---------- Parallel backend: persistent worker pool ---------- *)

type pool = {
  m : Mutex.t;
  cv : Condition.t;
  mutable phase : int; (* window counter; -1 = shut down *)
  mutable until_ns : int; (* current window end *)
  mutable arrived : int;
  mutable failed : exn option;
}

let pool_worker t pool w =
  let continue = ref true in
  let next = ref 1 in
  while !continue do
    Mutex.lock pool.m;
    while pool.phase < !next && pool.phase >= 0 do
      Condition.wait pool.cv pool.m
    done;
    let ph = pool.phase in
    let until_ns = pool.until_ns in
    Mutex.unlock pool.m;
    if ph < 0 then continue := false
    else begin
      (try drain_share t ~w ~until_ns
       with e -> (
         Mutex.lock pool.m;
         (match pool.failed with
         | None -> pool.failed <- Some e
         | Some _ -> ());
         Mutex.unlock pool.m));
      Mutex.lock pool.m;
      pool.arrived <- pool.arrived + 1;
      Condition.broadcast pool.cv;
      Mutex.unlock pool.m;
      next := ph + 1
    end
  done

(* One simulation window on [workers] OS domains: announce the window,
   drain this domain's share, wait for the others, then route at the
   barrier. Mutex acquire/release pairs give the cross-domain
   happens-before edges: everything a worker wrote while draining is
   visible to the router, and everything the router scheduled is visible
   to next window's owner. *)
let run_window_parallel t pool ~w_end =
  Mutex.lock pool.m;
  pool.until_ns <- w_end;
  pool.arrived <- 0;
  pool.phase <- pool.phase + 1;
  Condition.broadcast pool.cv;
  Mutex.unlock pool.m;
  drain_share t ~w:0 ~until_ns:w_end;
  Mutex.lock pool.m;
  while pool.arrived < t.workers - 1 do
    Condition.wait pool.cv pool.m
  done;
  Mutex.unlock pool.m;
  (match pool.failed with
  | Some e ->
      pool.failed <- None;
      raise e
  | None -> ());
  route t

let run_window_sequential t ~w_end =
  let n = Array.length t.lps in
  for i = 0 to n - 1 do
    drain_lp t.lps.(i) ~until_ns:w_end
  done;
  route t

let shutdown_pool pool domains =
  Mutex.lock pool.m;
  pool.phase <- -1;
  Condition.broadcast pool.cv;
  Mutex.unlock pool.m;
  List.iter Domain.join domains

let run t ~until =
  let until_ns = Time.to_ns until in
  if until_ns < t.now_ns then invalid_arg "Shard.run: time going backwards";
  if Array.length t.lps = 0 then t.now_ns <- until_ns
  else begin
    let step run_window =
      if t.lookahead_ns = max_int then begin
        (* No channels: LPs are causally independent, one window. *)
        run_window ~w_end:until_ns;
        t.now_ns <- until_ns
      end
      else
        while t.now_ns < until_ns do
          let w_end =
            Stdlib.min until_ns (t.now_ns + t.lookahead_ns)
          in
          run_window ~w_end;
          t.now_ns <- w_end
        done
    in
    if t.workers <= 1 then step (fun ~w_end -> run_window_sequential t ~w_end)
    else begin
      let pool =
        {
          m = Mutex.create ();
          cv = Condition.create ();
          phase = 0;
          until_ns = 0;
          arrived = 0;
          failed = None;
        }
      in
      let domains =
        List.init (t.workers - 1) (fun i ->
            Domain.spawn (fun () -> pool_worker t pool (i + 1)))
      in
      Fun.protect
        ~finally:(fun () -> shutdown_pool pool domains)
        (fun () -> step (fun ~w_end -> run_window_parallel t pool ~w_end))
    end
  end

let now t = Time.ns t.now_ns
