(* Unboxed 4-ary min-heap keyed by int, with stable entry handles.

   Layout is chosen for the sift-down cache behavior that dominates the
   event-queue hot path:

   - [nodes] interleaves (key, slot) pairs at stride 2, so the four
     children of a node occupy 8 contiguous words — one or two cache
     lines per level instead of one line per array per level. A 4-ary
     tree also halves the depth (and therefore the chain of dependent
     cache misses) relative to a binary heap.
   - Values never move: they live in a slot arena ([vals]) addressed by
     the slot stored in the node, so sifting shuffles only plain ints
     and performs no write barriers.
   - FIFO tie-breaking seqs are also per-slot ([seqs]); sift compares
     consult them only when two keys are actually equal, which keeps
     the common sift step at one key load per child.

   The per-slot seq doubles as a generation: a handle packs
   (seq lsl 24) lor slot, and [seqs.(slot)] is reset to -1 when the slot
   is freed, so handles to popped entries go stale automatically. This
   is what lets the engine cancel events in O(1) without boxing a
   per-event record (keeping every pending event's record live is the
   single largest GC cost of a boxed design).

   Vacated [vals] slots are overwritten with [dummy] so a popped
   payload is not pinned by the heap until the slot is reused. *)

type 'a t = {
  dummy : 'a;
  limit : int; (* hard cap on concurrently pending entries *)
  mutable nodes : int array; (* stride 2: key, slot *)
  mutable vals : 'a array; (* arena, indexed by slot *)
  mutable seqs : int array; (* arena: seq while pending, -1 when free *)
  mutable free : int array; (* stack of reusable slots *)
  mutable free_top : int;
  mutable arena_used : int;
  mutable size : int;
  mutable next_seq : int;
}

let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1

let create ?(max_entries = slot_mask + 1) ~dummy () =
  if max_entries <= 0 || max_entries > slot_mask + 1 then
    invalid_arg "Heap.create: max_entries out of range";
  {
    dummy;
    limit = max_entries;
    nodes = [||];
    vals = [||];
    seqs = [||];
    free = [||];
    free_top = 0;
    arena_used = 0;
    size = 0;
    next_seq = 0;
  }

let[@cdna.hot] length h = h.size
let[@cdna.hot] is_empty h = h.size = 0

let grow h =
  let cap = Array.length h.vals in
  if cap >= h.limit then invalid_arg "Heap: too many pending entries";
  let nc = Stdlib.min h.limit (if cap = 0 then 16 else cap * 2) in
  let nodes = Array.make (2 * nc) 0 in
  let vals = Array.make nc h.dummy in
  let seqs = Array.make nc (-1) in
  Array.blit h.nodes 0 nodes 0 (2 * h.size);
  Array.blit h.vals 0 vals 0 h.arena_used;
  Array.blit h.seqs 0 seqs 0 h.arena_used;
  h.nodes <- nodes;
  h.vals <- vals;
  h.seqs <- seqs

(* The free stack is grown lazily on first pop (and never shrinks), so a
   push-only phase pays no allocation or zero-init for it at all. *)
let ensure_free h =
  if Array.length h.free <= h.free_top then begin
    let nc = max 16 (Array.length h.vals) in
    let free = Array.make nc 0 in
    Array.blit h.free 0 free 0 h.free_top;
    h.free <- free
  end

let[@cdna.hot] push_handle h ~key v =
  if h.size = Array.length h.vals then
    (grow h [@cdna.alloc_ok "amortized capacity doubling, not steady state"]);
  let slot =
    if h.free_top > 0 then begin
      let t = h.free_top - 1 in
      h.free_top <- t;
      Array.unsafe_get h.free t
    end
    else begin
      let s = h.arena_used in
      h.arena_used <- s + 1;
      s
    end
  in
  Array.unsafe_set h.vals slot v;
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  Array.unsafe_set h.seqs slot seq;
  let nodes = h.nodes in
  let i = ref h.size in
  h.size <- h.size + 1;
  (* Sift up. Every existing entry has a smaller seq than the new one,
     so an equal-key parent stays the parent: only [pk > key] moves. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) lsr 2 in
    let pk = Array.unsafe_get nodes (2 * p) in
    if pk > key then begin
      Array.unsafe_set nodes (2 * !i) pk;
      Array.unsafe_set nodes ((2 * !i) + 1)
        (Array.unsafe_get nodes ((2 * p) + 1));
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set nodes (2 * !i) key;
  Array.unsafe_set nodes ((2 * !i) + 1) slot;
  (seq lsl slot_bits) lor slot

let[@cdna.hot] push h ~key v = ignore (push_handle h ~key v)

let[@inline] [@cdna.hot] handle_live h handle =
  let slot = handle land slot_mask in
  slot < Array.length h.seqs
  && Array.unsafe_get h.seqs slot = handle lsr slot_bits

let get h handle =
  if handle_live h handle then
    Some (Array.unsafe_get h.vals (handle land slot_mask))
  else None

let[@cdna.hot] set h handle v =
  if handle_live h handle then begin
    Array.unsafe_set h.vals (handle land slot_mask) v;
    true
  end
  else false

(* The [_exn] accessors are the primitives: they return unboxed results
   and raise only off the steady-state path, so the engine's dispatch
   loop never allocates an option per event. The option-returning
   variants below wrap them for callers off the hot path. *)

let[@cdna.hot] peek_exn h =
  if h.size = 0 then invalid_arg "Heap.peek_exn: empty heap"
  else Array.unsafe_get h.vals (Array.unsafe_get h.nodes 1)

let[@cdna.hot] min_key_exn h =
  if h.size = 0 then invalid_arg "Heap.min_key_exn: empty heap"
  else Array.unsafe_get h.nodes 0

let peek h = if h.size = 0 then None else Some (peek_exn h)
let min_key h = if h.size = 0 then None else Some (min_key_exn h)

let[@cdna.hot] pop_exn h =
  if h.size = 0 then invalid_arg "Heap.pop_exn: empty heap"
  else begin
    let nodes = h.nodes in
    let seqs = h.seqs in
    let slot0 = Array.unsafe_get nodes 1 in
    let v = Array.unsafe_get h.vals slot0 in
    (* Release the slot so the heap does not pin [v], and stale any
       handle to it. *)
    Array.unsafe_set h.vals slot0 h.dummy;
    Array.unsafe_set seqs slot0 (-1);
    (ensure_free h
    [@cdna.alloc_ok "lazy one-time free-stack growth, not steady state"]);
    Array.unsafe_set h.free h.free_top slot0;
    h.free_top <- h.free_top + 1;
    let n = h.size - 1 in
    h.size <- n;
    if n > 0 then begin
      (* Hole-based sift-down of the last entry: move min children up
         into the hole, then write the entry once at its final spot. *)
      let lk = Array.unsafe_get nodes (2 * n)
      and lv = Array.unsafe_get nodes ((2 * n) + 1) in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let c0 = (4 * !i) + 1 in
        if c0 >= n then continue := false
        else begin
          let nc = n - c0 in
          let c = ref c0 in
          let ck = ref (Array.unsafe_get nodes (2 * c0)) in
          let limit = if nc > 4 then 4 else nc in
          for d = 1 to limit - 1 do
            let j = c0 + d in
            let jk = Array.unsafe_get nodes (2 * j) in
            if jk < !ck then begin
              c := j;
              ck := jk
            end
            else if
              jk = !ck
              && Array.unsafe_get seqs (Array.unsafe_get nodes ((2 * j) + 1))
                 < Array.unsafe_get seqs
                     (Array.unsafe_get nodes ((2 * !c) + 1))
            then c := j
          done;
          if
            !ck < lk
            || !ck = lk
               && Array.unsafe_get seqs
                    (Array.unsafe_get nodes ((2 * !c) + 1))
                  < Array.unsafe_get seqs lv
          then begin
            Array.unsafe_set nodes (2 * !i) !ck;
            Array.unsafe_set nodes ((2 * !i) + 1)
              (Array.unsafe_get nodes ((2 * !c) + 1));
            i := !c
          end
          else continue := false
        end
      done;
      Array.unsafe_set nodes (2 * !i) lk;
      Array.unsafe_set nodes ((2 * !i) + 1) lv
    end;
    v
  end

let pop h = if h.size = 0 then None else Some (pop_exn h)

let clear h =
  h.size <- 0;
  h.free_top <- 0;
  h.arena_used <- 0;
  h.nodes <- [||];
  h.vals <- [||];
  h.seqs <- [||];
  h.free <- [||]

let to_list h =
  let rec build i acc =
    if i < 0 then acc
    else build (i - 1) (h.vals.(h.nodes.((2 * i) + 1)) :: acc)
  in
  build (h.size - 1) []
