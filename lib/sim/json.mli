(** Minimal JSON tree, printer and parser.

    Dependency-free substrate for the observability layer: Chrome
    [trace_event] files, metrics exports, and the tests that validate
    emitted artifacts round-trip. Printing is deterministic — object keys
    appear in construction order and floats have a canonical image — so
    identically seeded runs produce byte-identical files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Parse a complete JSON document. Numbers without a fraction or exponent
    become [Int]; everything else numeric becomes [Float]. *)
val parse : string -> (t, string) result

(** [member key v] is the field [key] of object [v], if any. *)
val member : string -> t -> t option
