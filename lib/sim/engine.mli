(** Discrete-event simulation engine.

    A single-threaded event loop over simulated {!Time.t}. Events scheduled
    for the same instant fire in scheduling order (FIFO), which makes runs
    deterministic. Event callbacks may schedule and cancel further events. *)

type t

(** Handle for a scheduled event, usable with {!cancel}. *)
type event_id

(** [create ()] makes an empty engine. [max_pending] caps concurrently
    pending events (default [2^24]); a schedule beyond the cap raises
    [Invalid_argument] leaving every counter and the queue untouched. *)
val create : ?max_pending:int -> unit -> t

(** Current simulated time. *)
val now : t -> Time.t

(** Number of events that have fired so far. *)
val fired_count : t -> int

(** Number of events currently pending (including cancelled-but-unswept). *)
val pending_count : t -> int

(** Number of pending events that will actually fire: cancelled events
    still sitting in the queue are not counted. This is the number the
    [engine.pending] gauge reports. *)
val live_pending_count : t -> int

(** [schedule t ~delay fn] runs [fn] at [now t + delay].
    @raise Invalid_argument if [delay] is negative. *)
val schedule : t -> delay:Time.t -> (unit -> unit) -> event_id

(** [schedule_at t time fn] runs [fn] at absolute [time].
    @raise Invalid_argument if [time] is in the past. *)
val schedule_at : t -> Time.t -> (unit -> unit) -> event_id

(** [cancel t id] prevents the event from firing. Cancelling an event that
    already fired or was already cancelled is a no-op. *)
val cancel : t -> event_id -> unit

(** [run t ~until] fires events in order until the queue empties or the next
    event is strictly after [until]; time then advances to [until]. *)
val run : t -> until:Time.t -> unit

(** [run_to_completion ?limit t] fires events until none remain, or [limit]
    events have fired. Returns [`Completed] or [`Event_limit]. *)
val run_to_completion : ?limit:int -> t -> [ `Completed | `Event_limit ]

(** [step t] fires the single next event; [false] if the queue is empty. *)
val step : t -> bool

(** Expose the engine's counters as gauges: [engine.pending] (live
    events only, via {!live_pending_count}) and [engine.fired]. *)
val register_metrics : t -> Metrics.t -> unit
