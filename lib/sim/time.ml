type t = int

let zero = 0
let[@cdna.hot] ns n = n
let[@cdna.hot] us n = n * 1_000
let[@cdna.hot] ms n = n * 1_000_000
let[@cdna.hot] sec n = n * 1_000_000_000

let of_sec_f s =
  if not (Float.is_finite s) || s < 0. then
    invalid_arg "Time.of_sec_f: negative or non-finite";
  int_of_float (Float.round (s *. 1e9))

let of_us_f u =
  if not (Float.is_finite u) || u < 0. then
    invalid_arg "Time.of_us_f: negative or non-finite";
  int_of_float (Float.round (u *. 1e3))

let[@cdna.hot] to_ns t = t
let to_sec_f t = float_of_int t /. 1e9
let to_us_f t = float_of_int t /. 1e3
let[@cdna.hot] add a b = a + b
let[@cdna.hot] sub a b = a - b
let[@cdna.hot] diff a b = if a > b then a - b else 0

let[@cdna.hot] mul_int d n =
  if n < 0 then invalid_arg "Time.mul_int: negative factor";
  d * n

let[@cdna.hot] div_int d n =
  if n <= 0 then invalid_arg "Time.div_int: non-positive divisor";
  d / n

let[@cdna.hot] compare (a : t) b = Int.compare a b
let[@cdna.hot] equal (a : t) b = Int.equal a b
let[@cdna.hot] min (a : t) b = if a < b then a else b
let[@cdna.hot] max (a : t) b = if a > b then a else b

let rate_per_sec ~events ~elapsed =
  if elapsed = 0 then 0. else float_of_int events /. to_sec_f elapsed

let[@cdna.hot] bits_time ~bits ~rate_bps =
  if rate_bps <= 0 then invalid_arg "Time.bits_time: non-positive rate";
  if bits < 0 then invalid_arg "Time.bits_time: negative bits";
  (* bits * 1e9 / rate could overflow a 63-bit int only for absurd sizes;
     frames here are <= 64 KB so the product stays far below 2^62. *)
  bits * 1_000_000_000 / rate_bps

let pp ppf t =
  if t >= 1_000_000_000 then Format.fprintf ppf "%.3fs" (to_sec_f t)
  else if t >= 1_000_000 then
    Format.fprintf ppf "%.3fms" (float_of_int t /. 1e6)
  else if t >= 1_000 then Format.fprintf ppf "%.3fus" (float_of_int t /. 1e3)
  else Format.fprintf ppf "%dns" t

let to_string t = Format.asprintf "%a" pp t
