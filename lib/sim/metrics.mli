(** Metrics registry.

    A registry names the simulator's measurement instruments so a run can
    export one coherent snapshot. Series are keyed by a metric name plus
    labels (e.g. [("domain", "guest0")] or [("nic", "nic0"); ("ctx", "3")]);
    labels are sorted into a canonical [name{k=v,...}] key, so the same
    (name, labels) pair always resolves to the same series.

    Instruments come in two flavours:
    - owned: {!counter}, {!meter} and {!histogram} get-or-create a
      {!Stats} value that callers update directly;
    - pulled: {!gauge} / {!gauge_f} register a closure evaluated at
      snapshot time — the cheap way to expose a counter a component
      already maintains.

    {!to_json} is deterministic: series sorted by key, canonical float
    images (see {!Json}). *)

type t

val create : unit -> t

(** Get or create the counter for (name, labels). Raises [Invalid_argument]
    if the key exists with a different kind. *)
val counter : t -> ?labels:(string * string) list -> string -> Stats.Counter.t

val meter : t -> ?labels:(string * string) list -> string -> Stats.Meter.t

val histogram :
  t -> ?labels:(string * string) list -> string -> Stats.Histogram.t

(** Register (or replace) a pull gauge read at snapshot time. *)
val gauge : t -> ?labels:(string * string) list -> string -> (unit -> int) -> unit

val gauge_f :
  t -> ?labels:(string * string) list -> string -> (unit -> float) -> unit

(** Current values of every series, sorted by canonical key. Meters render
    as [{events, bytes}]; histograms as
    [{count, mean, min, p50, p90, p99, max}]. *)
val snapshot : t -> (string * Json.t) list

val to_json : t -> Json.t
val to_string : t -> string
val size : t -> int
val pp : Format.formatter -> t -> unit
