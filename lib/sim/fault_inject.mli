(** Deterministic, seed-driven fault injection.

    A fault-injection harness for stressing the protection machinery: the
    experiment arms {e plans} at named {e sites} (one site per hook point
    — a DMA engine, a link direction, a driver), and the instrumented
    subsystem asks {!fire} on every candidate event. Plans select events
    by DMA context id and address range and decide via their trigger
    whether the event is perturbed.

    The decision sequence is a pure function of the creation seed, the
    arming order and the (deterministic) event sequence of the
    simulation: every probabilistic plan draws from its own split-off
    {!Rng.t} stream, so plans never perturb one another's decisions and
    identical seeds reproduce identical injections. This module knows
    nothing about buses or frames — higher layers install closures that
    translate a positive {!fire} into their own fault (see
    [Bus.Dma_engine.set_fault_injector], [Ethernet.Link.set_tamper]). *)

type t

type trigger =
  | Always  (** every matching event *)
  | One_shot  (** exactly the first matching event *)
  | Nth of int  (** exactly the [n]th matching event (1-based) *)
  | Every_nth of int  (** every [n]th matching event *)
  | Probability of float  (** each matching event independently, seeded *)

type plan

(** [plan ?ctx ?addr trigger] selects events whose DMA context id falls in
    the inclusive [ctx] range and whose address falls in the inclusive
    [addr] range (omitted filter = match all; events fired without the
    corresponding attribute only match plans without that filter).
    @raise Invalid_argument on an empty range, [Nth]/[Every_nth] with
    [n < 1], or a probability outside [0, 1]. *)
val plan :
  ?ctx:int * int -> ?addr:int * int -> trigger -> plan

val create : seed:int -> t

(** [arm t ~site p] adds a plan at [site]. Plans at a site are consulted
    in arming order; each gets an independent random stream split off the
    master seed at arming time. *)
val arm : t -> site:string -> plan -> unit

(** Remove every plan armed at [site]. *)
val disarm : t -> site:string -> unit

(** [fire t ~site ?ctx ?addr ()] reports one candidate event and returns
    true when any armed plan decides to inject. A site with no armed
    plans always answers false (and costs one hash lookup). *)
val fire : t -> site:string -> ?ctx:int -> ?addr:int -> unit -> bool

(** Events seen / injections decided at a site so far. *)
val observed : t -> site:string -> int

val injected : t -> site:string -> int

(** Total injections across all sites. *)
val total_injected : t -> int
